package ascylib_test

import (
	"testing"

	ascylib "repro"
	"repro/internal/core"
	"repro/internal/settest"
)

// TestExtendedConformance runs the v2 conformance suite (Update atomicity,
// GetOrInsert insert-once, Range contracts, fallback-vs-native parity) for
// every registry entry.
func TestExtendedConformance(t *testing.T) {
	for _, a := range ascylib.Algorithms() {
		settest.RunExtendedRegistered(t, a.Name, ascylib.Capacity(256))
	}
}

// TestCapabilitiesConsistent pins the capability matrix to the registry
// metadata: the Ordered flag must match a native Range implementation,
// every algorithm must be enumerable, and the headline native operations
// the redesign added must actually be native.
func TestCapabilitiesConsistent(t *testing.T) {
	for _, a := range ascylib.Algorithms() {
		c := a.Caps()
		if !c.NativeForEach {
			t.Errorf("%s: no native ForEach; the surface cannot be served", a.Name)
		}
		if a.Ordered != c.NativeRange {
			t.Errorf("%s: registry Ordered=%v but native Range=%v", a.Name, a.Ordered, c.NativeRange)
		}
		wantOrdered := a.Structure != ascylib.HashTable
		if a.Ordered != wantOrdered {
			t.Errorf("%s: Ordered=%v, want %v for structure %s", a.Name, a.Ordered, wantOrdered, a.Structure)
		}
		// Snapshot (the consistent-cut enumeration) is native exactly for
		// the ordered families: lists, skip lists, and BSTs serve it
		// through their single-walk Ascend (OrderedVia); the hash tables
		// take the ForEach fallback.
		if wantNative := a.Structure != ascylib.HashTable; c.NativeSnapshot != wantNative {
			t.Errorf("%s: NativeSnapshot=%v, want %v for structure %s", a.Name, c.NativeSnapshot, wantNative, a.Structure)
		}
	}
	for _, name := range []string{"ht-clht-lb", "ht-clht-lf"} {
		a, ok := core.Get(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if !a.Caps().NativeGetOrInsert {
			t.Errorf("%s: GetOrInsert should be native (one bucket pass)", name)
		}
	}
	if a, _ := core.Get("ht-clht-lb"); !a.Caps().NativeUpdate {
		t.Error("ht-clht-lb: Update should be native (in-place under the bucket lock)")
	}
}

// TestConfigValidation pins the option-validation behaviour the v2 New
// gained: nonsense configurations fail construction instead of misbehaving.
func TestConfigValidation(t *testing.T) {
	if _, err := ascylib.New("ht-clht-lb", ascylib.Capacity(0)); err == nil {
		t.Error("Capacity(0) accepted")
	}
	if _, err := ascylib.New("ht-clht-lb", ascylib.Capacity(-4)); err == nil {
		t.Error("Capacity(-4) accepted")
	}
	if _, err := ascylib.New("sl-fraser-opt", ascylib.MaxLevel(0)); err == nil {
		t.Error("MaxLevel(0) accepted")
	}
	if _, err := ascylib.New("sl-fraser-opt", ascylib.MaxLevel(65)); err == nil {
		t.Error("MaxLevel(65) accepted")
	}
	if s, err := ascylib.New("sl-fraser-opt", ascylib.MaxLevel(16), ascylib.Capacity(64)); err != nil || s == nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

// TestNewExtendedFacade smoke-tests the facade-level constructors.
func TestNewExtendedFacade(t *testing.T) {
	e, err := ascylib.NewExtended("ht-clht-lf", ascylib.Capacity(64))
	if err != nil {
		t.Fatal(err)
	}
	if v, inserted := e.GetOrInsert(3, 30); !inserted || v != 30 {
		t.Fatalf("GetOrInsert = (%d,%v)", v, inserted)
	}
	if v, ok := e.Update(3, func(old ascylib.Value, ok bool) (ascylib.Value, bool) {
		return old + 1, true
	}); !ok || v != 31 {
		t.Fatalf("Update = (%d,%v)", v, ok)
	}
	if _, err := ascylib.NewExtended("nope"); err == nil {
		t.Fatal("NewExtended on unknown algorithm did not error")
	}
	s := ascylib.MustNew("sl-fraser-opt")
	if o, native := ascylib.OrderedOf(s); o == nil || !native {
		t.Fatalf("OrderedOf(skiplist) = (%v, %v), want native", o, native)
	}
	if o, native := ascylib.OrderedOf(e); o == nil || native {
		t.Fatalf("OrderedOf(hash table) should be a non-native fallback, got native=%v", native)
	}
}
