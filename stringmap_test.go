package ascylib

import (
	"fmt"
	"sync"
	"testing"
)

func TestStringMapBasic(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewStringMap[string](algo, Capacity(64))
			if _, ok := m.Get("missing"); ok {
				t.Fatal("Get on empty map reported a hit")
			}
			if !m.Insert("a", "1") {
				t.Fatal("first Insert failed")
			}
			if m.Insert("a", "2") {
				t.Fatal("duplicate Insert succeeded")
			}
			if v, ok := m.Get("a"); !ok || v != "1" {
				t.Fatalf("Get(a) = %q, %v", v, ok)
			}
			if fresh := m.Put("a", "3"); fresh {
				t.Fatal("Put on existing key reported fresh")
			}
			if v, _ := m.Get("a"); v != "3" {
				t.Fatalf("Put did not replace: %q", v)
			}
			if got, inserted := m.GetOrInsert("a", "x"); inserted || got != "3" {
				t.Fatalf("GetOrInsert(existing) = %q, %v", got, inserted)
			}
			if got, inserted := m.GetOrInsert("b", "y"); !inserted || got != "y" {
				t.Fatalf("GetOrInsert(fresh) = %q, %v", got, inserted)
			}
			if v, ok := m.Delete("a"); !ok || v != "3" {
				t.Fatalf("Delete(a) = %q, %v", v, ok)
			}
			if _, ok := m.Get("a"); ok {
				t.Fatal("Get after Delete hit")
			}
			if _, ok := m.Delete("a"); ok {
				t.Fatal("double Delete reported removal")
			}
			if n := m.Len(); n != 1 {
				t.Fatalf("Len = %d, want 1", n)
			}
			seen := map[string]string{}
			m.ForEach(func(k, v string) bool { seen[k] = v; return true })
			if len(seen) != 1 || seen["b"] != "y" {
				t.Fatalf("ForEach saw %v", seen)
			}
		})
	}
}

func TestStringMapUpdateCounter(t *testing.T) {
	m := MustNewStringMap[int]("ht-clht-lb", Capacity(64))
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.Update("ctr", func(old int, _ bool) (int, bool) { return old + 1, true })
			}
		}()
	}
	wg.Wait()
	if v, ok := m.Get("ctr"); !ok || v != workers*rounds {
		t.Fatalf("counter = %d, %v; want %d", v, ok, workers*rounds)
	}
}

func TestStringMapManyKeys(t *testing.T) {
	// Enough keys on a tiny table to exercise hash-chain collisions.
	m := MustNewStringMap[int]("ht-clht-lb", Capacity(4))
	const n = 2000
	for i := 0; i < n; i++ {
		if !m.Insert(fmt.Sprintf("key-%d", i), i) {
			t.Fatalf("Insert key-%d failed", i)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("Get(key-%d) = %d, %v", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, ok := m.Delete(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("Delete key-%d failed", i)
		}
	}
	if got := m.Len(); got != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", got, n/2)
	}
	for i := 1; i < n; i += 2 {
		if v, ok := m.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("survivor Get(key-%d) = %d, %v", i, v, ok)
		}
	}
}

func TestStringMapBytesPaths(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewStringMap[string](algo, Capacity(64))
			// Fresh insert through the bytes path materializes the key once.
			m.UpdateBytes([]byte("alpha"), func(_ string, present bool) (string, bool) {
				if present {
					t.Fatal("fresh key reported present")
				}
				return "1", true
			})
			if v, ok := m.Get("alpha"); !ok || v != "1" {
				t.Fatalf("Get after UpdateBytes = %q, %v", v, ok)
			}
			if v, ok := m.GetBytes([]byte("alpha")); !ok || v != "1" {
				t.Fatalf("GetBytes = %q, %v", v, ok)
			}
			if _, ok := m.GetBytes([]byte("beta")); ok {
				t.Fatal("GetBytes hit on absent key")
			}
			// Overwrite through bytes, read through string.
			m.UpdateBytes([]byte("alpha"), func(old string, present bool) (string, bool) {
				if !present || old != "1" {
					t.Fatalf("old = %q, %v", old, present)
				}
				return "2", true
			})
			if v, _ := m.Get("alpha"); v != "2" {
				t.Fatalf("after overwrite: %q", v)
			}
			// Remove through bytes.
			if _, present := m.UpdateBytes([]byte("alpha"), func(old string, _ bool) (string, bool) {
				return old, false
			}); present {
				t.Fatal("remove reported still present")
			}
			if _, ok := m.Get("alpha"); ok {
				t.Fatal("key survived UpdateBytes remove")
			}
		})
	}
}

// TestStringMapGetBytesZeroAlloc is one of the PR's allocation gates: a
// steady-state GetBytes hit must not allocate (no string materialization,
// no chain copying) on the headline hash-table backends.
func TestStringMapGetBytesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewStringMap[uint64](algo, Capacity(256))
			key := []byte("benchmark-key")
			m.UpdateBytes(key, func(_ uint64, _ bool) (uint64, bool) { return 42, true })
			var v uint64
			var ok bool
			if avg := testing.AllocsPerRun(200, func() {
				v, ok = m.GetBytes(key)
			}); avg != 0 {
				t.Fatalf("GetBytes allocates %.1f/op, want 0", avg)
			}
			if !ok || v != 42 {
				t.Fatalf("GetBytes = %d, %v", v, ok)
			}
		})
	}
}

// TestStringMapUpdateStagingIsolated: the staging chain reused across
// speculative Update invocations must never leak into a published chain
// that a concurrent reader still holds (values read back must always be
// internally consistent).
func TestStringMapUpdateStagingIsolated(t *testing.T) {
	m := MustNewStringMap[[2]uint64]("ht-clht-lb", Capacity(64))
	const writers, rounds = 4, 2000
	var readerErr error
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader: every observed value must be a (x, x) pair
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v, ok := m.GetBytes([]byte("pair")); ok && v[0] != v[1] {
				readerErr = fmt.Errorf("torn pair: %v", v)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				x := uint64(w*rounds + i)
				m.UpdateBytes([]byte("pair"), func(_ [2]uint64, _ bool) ([2]uint64, bool) {
					return [2]uint64{x, x}, true
				})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if v, ok := m.Get("pair"); !ok || v[0] != v[1] {
		t.Fatalf("final value torn: %v %v", v, ok)
	}
}
