package ascylib

import (
	"fmt"
	"sync"
	"testing"
)

func TestStringMapBasic(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewStringMap[string](algo, Capacity(64))
			if _, ok := m.Get("missing"); ok {
				t.Fatal("Get on empty map reported a hit")
			}
			if !m.Insert("a", "1") {
				t.Fatal("first Insert failed")
			}
			if m.Insert("a", "2") {
				t.Fatal("duplicate Insert succeeded")
			}
			if v, ok := m.Get("a"); !ok || v != "1" {
				t.Fatalf("Get(a) = %q, %v", v, ok)
			}
			if fresh := m.Put("a", "3"); fresh {
				t.Fatal("Put on existing key reported fresh")
			}
			if v, _ := m.Get("a"); v != "3" {
				t.Fatalf("Put did not replace: %q", v)
			}
			if got, inserted := m.GetOrInsert("a", "x"); inserted || got != "3" {
				t.Fatalf("GetOrInsert(existing) = %q, %v", got, inserted)
			}
			if got, inserted := m.GetOrInsert("b", "y"); !inserted || got != "y" {
				t.Fatalf("GetOrInsert(fresh) = %q, %v", got, inserted)
			}
			if v, ok := m.Delete("a"); !ok || v != "3" {
				t.Fatalf("Delete(a) = %q, %v", v, ok)
			}
			if _, ok := m.Get("a"); ok {
				t.Fatal("Get after Delete hit")
			}
			if _, ok := m.Delete("a"); ok {
				t.Fatal("double Delete reported removal")
			}
			if n := m.Len(); n != 1 {
				t.Fatalf("Len = %d, want 1", n)
			}
			seen := map[string]string{}
			m.ForEach(func(k, v string) bool { seen[k] = v; return true })
			if len(seen) != 1 || seen["b"] != "y" {
				t.Fatalf("ForEach saw %v", seen)
			}
		})
	}
}

func TestStringMapUpdateCounter(t *testing.T) {
	m := MustNewStringMap[int]("ht-clht-lb", Capacity(64))
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.Update("ctr", func(old int, _ bool) (int, bool) { return old + 1, true })
			}
		}()
	}
	wg.Wait()
	if v, ok := m.Get("ctr"); !ok || v != workers*rounds {
		t.Fatalf("counter = %d, %v; want %d", v, ok, workers*rounds)
	}
}

func TestStringMapManyKeys(t *testing.T) {
	// Enough keys on a tiny table to exercise hash-chain collisions.
	m := MustNewStringMap[int]("ht-clht-lb", Capacity(4))
	const n = 2000
	for i := 0; i < n; i++ {
		if !m.Insert(fmt.Sprintf("key-%d", i), i) {
			t.Fatalf("Insert key-%d failed", i)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("Get(key-%d) = %d, %v", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, ok := m.Delete(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("Delete key-%d failed", i)
		}
	}
	if got := m.Len(); got != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", got, n/2)
	}
	for i := 1; i < n; i += 2 {
		if v, ok := m.Get(fmt.Sprintf("key-%d", i)); !ok || v != i {
			t.Fatalf("survivor Get(key-%d) = %d, %v", i, v, ok)
		}
	}
}
