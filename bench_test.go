// Benchmarks: one testing.B entry point per table/figure of the paper's
// evaluation. Each benchmark drives the same workload as the corresponding
// figure runner in internal/harness and reports Mops/s plus the figure's
// companion metric as testing.B custom metrics. For the full tables (thread
// sweeps, all algorithms, paper protocol) use:
//
//	go run ./cmd/ascybench -all [-paper]
//
// Benchmark naming: BenchmarkFigN<What>/<algorithm>. go test -bench=Fig4
// reproduces Figure 4's comparison, and so on.
package ascylib_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/workload"

	_ "repro"
)

// measureAllocs wraps a run with process-wide allocation accounting and
// returns heap allocations per completed operation — the ASCY4 companion
// metric every figure benchmark now reports (GC pressure is where Go
// concurrent structures lose their scaling; see DESIGN.md "Allocation
// discipline"). Process-wide means the workload's own bookkeeping is
// included, so treat it as an upper bound; the AllocsPerRun gates in
// alloc_gate_test.go pin the search paths at exactly zero.
func measureAllocs(run func() workload.Result) (workload.Result, float64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := run()
	runtime.ReadMemStats(&m1)
	if res.Ops == 0 {
		return res, 0
	}
	return res, float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
}

// benchThreads is the per-benchmark worker count: the paper's 20-thread
// reference scaled to the host, floored at 4 (see harness.Options).
func benchThreads() int {
	t := runtime.GOMAXPROCS(0)
	if t < 4 {
		t = 4
	}
	if t > 20 {
		t = 20
	}
	return t
}

// runFigure executes one workload long enough to cover b.N operations and
// reports throughput metrics.
func runFigure(b *testing.B, algo string, initial, updatePct int, mutate ...func(*workload.Config)) workload.Result {
	b.Helper()
	cfg := workload.Config{
		Algorithm: algo,
		Options:   []core.Option{core.Capacity(initial)},
		Initial:   initial,
		UpdatePct: updatePct,
		Threads:   benchThreads(),
		// Scale duration with b.N so -benchtime works naturally; one
		// op costs well under 10µs on every structure here.
		Duration: time.Duration(b.N) * 2 * time.Microsecond,
		Seed:     42,
	}
	if cfg.Duration < 50*time.Millisecond {
		cfg.Duration = 50 * time.Millisecond
	}
	if cfg.Duration > 3*time.Second {
		cfg.Duration = 3 * time.Second
	}
	for _, m := range mutate {
		m(&cfg)
	}
	b.ResetTimer()
	var err error
	res, allocsPerOp := measureAllocs(func() workload.Result {
		var r workload.Result
		r, err = workload.Run(cfg)
		return r
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.Mops(), "Mops/s")
	b.ReportMetric(res.CoherencePerOp(), "coh-events/op")
	// "allocs/op" overrides -benchmem's builtin (which divides by b.N and
	// is meaningless for duration-scaled runs) but testing truncates its
	// display to an integer, so the full-resolution ledger rides on
	// allocs/kop: heap allocations per thousand operations.
	b.ReportMetric(allocsPerOp, "allocs/op")
	b.ReportMetric(1000*allocsPerOp, "allocs/kop")
	return res
}

// --- Table 1: the catalogue itself is exercised per family -----------------

func BenchmarkTable1Catalogue(b *testing.B) {
	for _, a := range core.All() {
		if !a.Safe {
			continue
		}
		b.Run(a.Name, func(b *testing.B) {
			runFigure(b, a.Name, 512, 10)
		})
	}
}

// --- Figure 2: cross-workload throughput per structure ---------------------

func benchFig2(b *testing.B, algos []string) {
	for _, w := range []struct {
		name             string
		initial, updates int
	}{
		{"avg-4096elem-10upd", 4096, 10},
		{"high-512elem-25upd", 512, 25},
		{"low-16384elem-10upd", 16384, 10},
	} {
		b.Run(w.name, func(b *testing.B) {
			for _, algo := range algos {
				b.Run(algo, func(b *testing.B) {
					runFigure(b, algo, w.initial, w.updates)
				})
			}
		})
	}
}

func BenchmarkFig2aLinkedList(b *testing.B) {
	benchFig2(b, []string{"ll-async", "ll-lazy", "ll-pugh", "ll-copy", "ll-coupling", "ll-harris", "ll-michael"})
}

func BenchmarkFig2bHashTable(b *testing.B) {
	benchFig2(b, []string{"ht-async", "ht-coupling", "ht-lazy", "ht-pugh", "ht-copy", "ht-urcu", "ht-java", "ht-tbb", "ht-harris"})
}

func BenchmarkFig2cSkipList(b *testing.B) {
	benchFig2(b, []string{"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser"})
}

func BenchmarkFig2dBST(b *testing.B) {
	benchFig2(b, []string{"bst-async-int", "bst-async-ext", "bst-bronson", "bst-drachsler", "bst-ellen", "bst-howley", "bst-natarajan"})
}

// --- Figure 3: coherence events/op vs scalability (linked lists) -----------

func BenchmarkFig3CacheEvents(b *testing.B) {
	for _, algo := range []string{"ll-async", "ll-copy", "ll-coupling", "ll-harris", "ll-lazy", "ll-michael", "ll-pugh"} {
		b.Run(algo, func(b *testing.B) {
			res := runFigure(b, algo, 4096, 10)
			b.ReportMetric(res.Perf.PerOp(perf.EvStore), "stores/op")
			b.ReportMetric(res.Perf.PerOp(perf.EvLock), "locks/op")
		})
	}
}

// --- Figure 4: ASCY1 (linked lists, search-dominated) -----------------------

func BenchmarkFig4LinkedList(b *testing.B) {
	sample := func(c *workload.Config) { c.SampleEvery = 16 }
	for _, algo := range []string{"ll-async", "ll-lazy", "ll-pugh", "ll-copy", "ll-harris", "ll-michael", "ll-harris-opt"} {
		b.Run(algo, func(b *testing.B) {
			res := runFigure(b, algo, 1024, 5, sample)
			if s := res.Latency[workload.OpSearchHit]; s.N > 0 {
				b.ReportMetric(s.MeanNS, "search-ns")
			}
		})
	}
}

// --- Figure 5: ASCY2 (skip lists, parse phase) ------------------------------

func BenchmarkFig5SkipList(b *testing.B) {
	opts := func(c *workload.Config) { c.SampleEvery = 16; c.ParseTiming = true }
	for _, algo := range []string{"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser", "sl-fraser-opt"} {
		b.Run(algo, func(b *testing.B) {
			res := runFigure(b, algo, 1024, 20, opts)
			if res.Perf.Updates > 0 {
				b.ReportMetric(100*float64(res.Perf.Count(perf.EvParseRestart))/float64(res.Perf.Updates), "parse-restart-%")
			}
		})
	}
}

// --- Figure 6: ASCY3 (hash tables, read-only failed updates) ----------------

func BenchmarkFig6HashTableASCY3(b *testing.B) {
	sample := func(c *workload.Config) { c.SampleEvery = 16 }
	for _, algo := range []string{"ht-async", "ht-lazy-no", "ht-lazy", "ht-pugh-no", "ht-pugh", "ht-copy-no", "ht-copy", "ht-java-no", "ht-java"} {
		b.Run(algo, func(b *testing.B) {
			res := runFigure(b, algo, 8192, 10, sample)
			fi, fr := res.Latency[workload.OpInsertFalse], res.Latency[workload.OpRemoveFalse]
			if n := fi.N + fr.N; n > 0 {
				b.ReportMetric((fi.MeanNS*float64(fi.N)+fr.MeanNS*float64(fr.N))/float64(n), "failed-update-ns")
			}
		})
	}
}

// --- Figure 7: ASCY4 (BSTs, modification phase) ------------------------------

func BenchmarkFig7BST(b *testing.B) {
	sample := func(c *workload.Config) { c.SampleEvery = 16 }
	for _, algo := range []string{"bst-async-int", "bst-async-ext", "bst-bronson", "bst-drachsler", "bst-ellen", "bst-howley", "bst-natarajan"} {
		b.Run(algo, func(b *testing.B) {
			res := runFigure(b, algo, 2048, 20, sample)
			if res.SuccUpdates > 0 {
				b.ReportMetric(float64(res.Perf.Count(perf.EvCAS)+res.Perf.Count(perf.EvCASFail))/float64(res.SuccUpdates), "atomics/upd")
				b.ReportMetric(float64(res.Perf.Count(perf.EvLock))/float64(res.SuccUpdates), "locks/upd")
			}
		})
	}
}

// --- Figure 8: CLHT vs pugh --------------------------------------------------

func BenchmarkFig8CLHT(b *testing.B) {
	for _, upd := range []int{0, 1, 20, 100} {
		b.Run(map[int]string{0: "0upd", 1: "1upd", 20: "20upd", 100: "100upd"}[upd], func(b *testing.B) {
			for _, algo := range []string{"ht-pugh", "ht-clht-lb", "ht-clht-lf"} {
				b.Run(algo, func(b *testing.B) {
					runFigure(b, algo, 4096, upd)
				})
			}
		})
	}
}

// --- Figure 9: BST-TK vs natarajan --------------------------------------------

func BenchmarkFig9BSTTK(b *testing.B) {
	for _, upd := range []int{0, 1, 10, 20, 100} {
		b.Run(map[int]string{0: "0upd", 1: "1upd", 10: "10upd", 20: "20upd", 100: "100upd"}[upd], func(b *testing.B) {
			for _, algo := range []string{"bst-natarajan", "bst-tk"} {
				b.Run(algo, func(b *testing.B) {
					runFigure(b, algo, 4096, upd)
				})
			}
		})
	}
}

// --- Ablations beyond the paper's figures: design choices DESIGN.md calls out

// BenchmarkAblationASCY1 isolates the search path: pure search workload over
// harris (helping searches) vs harris-opt (clean searches).
func BenchmarkAblationASCY1(b *testing.B) {
	for _, algo := range []string{"ll-harris", "ll-harris-opt"} {
		b.Run(algo, func(b *testing.B) {
			runFigure(b, algo, 1024, 0)
		})
	}
}

// BenchmarkAblationGracePeriod isolates ASCY4's memory-management choice:
// urcu's synchronous grace period vs SSMEM epochs, update-heavy.
func BenchmarkAblationGracePeriod(b *testing.B) {
	for _, algo := range []string{"ht-urcu", "ht-urcu-ssmem"} {
		b.Run(algo, func(b *testing.B) {
			runFigure(b, algo, 4096, 50)
		})
	}
}

// BenchmarkShardedKeyspace is the sharding experiment at the structure
// level: each family's representative run unsharded and with the keyspace
// hash-partitioned across 2, 4, and 8 independent instances, at equal
// thread counts. The paper's Figure 2 shows hash tables scaling because
// they are already sharded; this measures how much of that advantage the
// serialized families (lists, and to a lesser degree trees) recover when
// the same decomposition is applied one level up — and confirms CLHT, whose
// buckets are the sharding, gains little.
func BenchmarkShardedKeyspace(b *testing.B) {
	for _, algo := range []string{"ll-lazy", "ll-harris", "sl-fraser-opt", "bst-tk", "ht-clht-lb"} {
		for _, shards := range []int{1, 2, 4, 8} {
			shards := shards
			b.Run(fmt.Sprintf("%s/shards-%d", algo, shards), func(b *testing.B) {
				runFigure(b, algo, 4096, 10, func(c *workload.Config) {
					c.Options = append(c.Options, core.Shards(shards))
				})
			})
		}
	}
}

// BenchmarkAblationCLHTVariants compares the lock-based and lock-free CLHT
// under growing update pressure (the paper: lb ahead at 20 threads, lf ahead
// oversubscribed).
func BenchmarkAblationCLHTVariants(b *testing.B) {
	oversub := func(c *workload.Config) { c.Threads = 2 * benchThreads() }
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf"} {
		b.Run(algo+"/ref-threads", func(b *testing.B) {
			runFigure(b, algo, 4096, 20)
		})
		b.Run(algo+"/oversubscribed", func(b *testing.B) {
			runFigure(b, algo, 4096, 20, oversub)
		})
	}
}
