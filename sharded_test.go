package ascylib

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/settest"
)

// shardedBackends is the conformance roster the sharding PR promises: at
// least one list, one skip list, and one CLHT backend, run through the full
// v1 + v2 suites behind a 4-way sharded facade (with SSMEM recycling on
// where the structure supports it — each shard then owns an independent
// epoch domain).
var shardedBackends = []struct {
	algo    string
	recycle bool
}{
	{"ll-lazy", true},
	{"sl-fraser-opt", true},
	{"ht-clht-lb", false},
}

func shardedFactory(t *testing.T, algo string, recycle bool, shards int) settest.Factory {
	return func() core.Set {
		opts := []core.Option{core.Capacity(256), core.Shards(shards)}
		if recycle {
			opts = append(opts, core.RecycleNodes(true), core.RecycleThreshold(8))
		}
		s, err := core.New(algo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

// TestShardedConformance runs the full settest suite and the v2 extended
// suite (Update atomicity, GetOrInsert insert-once, Range contracts,
// fallback-vs-native parity — the native side routes to each shard's own
// native operations, so parity holds per shard) over the sharded variants.
// A sharded set is never natively ordered, so the suite runs with
// ordered=false: Range must still satisfy its contract via the
// snapshot-and-sort fallback.
func TestShardedConformance(t *testing.T) {
	for _, tc := range shardedBackends {
		tc := tc
		t.Run(tc.algo, func(t *testing.T) {
			t.Parallel()
			f := shardedFactory(t, tc.algo, tc.recycle, 4)
			settest.Run(t, true, f)
			settest.RunExtended(t, true, false, f)
		})
	}
}

// TestShardedSizeAndRouting pins the aggregation semantics: every inserted
// key is found again through the router, Size sums the shards, and with a
// few thousand keys the partition actually spreads (no shard is starved or
// overloaded by the routing hash).
func TestShardedSizeAndRouting(t *testing.T) {
	s, err := core.New("ll-lazy", core.Capacity(64), core.Shards(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := core.NumShards(s); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	const n = 4000
	for k := core.Key(1); k <= n; k++ {
		if !s.Insert(k, core.Value(k)*2) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	if got := s.Size(); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}
	for k := core.Key(1); k <= n; k++ {
		if v, ok := s.Search(k); !ok || v != core.Value(k)*2 {
			t.Fatalf("search(%d) = (%d,%v)", k, v, ok)
		}
	}
	for k := core.Key(1); k <= n; k += 2 {
		if _, ok := s.Remove(k); !ok {
			t.Fatalf("remove(%d) failed", k)
		}
	}
	if got := s.Size(); got != n/2 {
		t.Fatalf("Size after removals = %d, want %d", got, n/2)
	}
}

// TestShardedRecycleReuseBalance is the recycle churn test behind the
// sharded facade: concurrent insert/search/remove cycles on every backend
// that recycles, then the aggregated per-shard SSMEM counters must balance
// (frees never exceed allocations, garbage never negative) and reuse must
// actually have happened.
func TestShardedRecycleReuseBalance(t *testing.T) {
	for _, tc := range shardedBackends {
		if !tc.recycle {
			continue
		}
		tc := tc
		t.Run(tc.algo, func(t *testing.T) {
			s, err := core.New(tc.algo, core.Capacity(64), core.Shards(4),
				core.RecycleNodes(true), core.RecycleThreshold(8))
			if err != nil {
				t.Fatal(err)
			}
			const workers, rounds, span = 4, 300, 32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := core.Key(1 + w*span)
					for r := 0; r < rounds; r++ {
						for k := base; k < base+span; k++ {
							s.Insert(k, core.Value(k))
						}
						for k := base; k < base+span; k++ {
							s.Search(k)
							s.Remove(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if got := s.Size(); got != 0 {
				t.Fatalf("size after drain = %d, want 0", got)
			}
			st := s.(core.Recycler).RecycleStats()
			if st.Allocs == 0 {
				t.Fatalf("sharded recycling did no allocation accounting: %+v", st)
			}
			if st.Frees > st.Allocs {
				t.Fatalf("more frees than allocations (double free): %+v", st)
			}
			if st.Reused == 0 && !raceEnabled {
				t.Fatalf("no node reuse under churn: %+v", st)
			}
			if st.Garbage < 0 {
				t.Fatalf("negative garbage (double hand-out): %+v", st)
			}
		})
	}
}

// TestShardedMapFacade: the Sharded option through the typed Map facade —
// updates stay exact under concurrency, ordered scans degrade to the
// documented snapshot-and-sort fallback (never native), and the shard count
// is visible.
func TestShardedMapFacade(t *testing.T) {
	m := MustNewMap[int64, string]("sl-fraser-opt", Capacity(128), Sharded(4))
	if m.NativeOrder() {
		t.Fatal("sharded map claims native ordering")
	}
	if got := m.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	for i := int64(-50); i <= 50; i++ {
		m.Put(i, fmt.Sprintf("v%d", i))
	}
	if n := m.Len(); n != 101 {
		t.Fatalf("Len = %d, want 101", n)
	}
	// Range must still be sorted and complete across the shard split.
	var prev int64 = -100
	n := m.Range(-50, 50, func(k int64, v string) bool {
		if k <= prev {
			t.Fatalf("Range not ascending: %d after %d", k, prev)
		}
		if v != fmt.Sprintf("v%d", k) {
			t.Fatalf("Range value mismatch at %d: %q", k, v)
		}
		prev = k
		return true
	})
	if n != 101 {
		t.Fatalf("Range yielded %d, want 101", n)
	}
	if k, _, ok := m.Min(); !ok || k != -50 {
		t.Fatalf("Min = (%d,%v), want -50", k, ok)
	}
	if k, _, ok := m.Max(); !ok || k != 50 {
		t.Fatalf("Max = (%d,%v), want 50", k, ok)
	}
	// Concurrent counters through Update must stay exact shard by shard.
	cm := MustNewMap[uint64, uint64]("ll-lazy", Capacity(64), Sharded(4))
	const workers, rounds, keys = 8, 400, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := uint64(i%keys + 1)
				cm.Update(k, func(old uint64, _ bool) (uint64, bool) { return old + 1, true })
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, _ := cm.Get(k)
		total += v
	}
	if total != workers*rounds {
		t.Fatalf("counter total = %d, want %d (lost updates across shards)", total, workers*rounds)
	}
}

// TestShardedStringMapBasic covers the routing facade: per-key semantics
// unchanged, Len/ForEach aggregation, shard accessors consistent between
// the string and bytes paths, and the partition populated.
func TestShardedStringMapBasic(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ll-lazy", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewShardedStringMap[int](algo, 4, Capacity(64))
			if got := m.NumShards(); got != 4 {
				t.Fatalf("NumShards = %d, want 4", got)
			}
			const n = 2000
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%d", i)
				if !m.Insert(k, i) {
					t.Fatalf("Insert %s failed", k)
				}
				if m.ShardOf(k) != m.ShardOfBytes([]byte(k)) {
					t.Fatalf("ShardOf(%s) disagrees between string and bytes", k)
				}
			}
			if got := m.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			// Every shard must hold a share, and the shards must sum to the
			// whole (the router and the Shard accessor see the same maps).
			sum := 0
			for i := 0; i < m.NumShards(); i++ {
				l := m.Shard(i).Len()
				if l == 0 {
					t.Fatalf("shard %d is empty after %d inserts", i, n)
				}
				sum += l
			}
			if sum != n {
				t.Fatalf("shard lens sum to %d, want %d", sum, n)
			}
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%d", i)
				if v, ok := m.Get(k); !ok || v != i {
					t.Fatalf("Get(%s) = (%d,%v)", k, v, ok)
				}
				if v, ok := m.GetBytes([]byte(k)); !ok || v != i {
					t.Fatalf("GetBytes(%s) = (%d,%v)", k, v, ok)
				}
			}
			seen := 0
			m.ForEach(func(string, int) bool { seen++; return true })
			if seen != n {
				t.Fatalf("ForEach saw %d entries, want %d", seen, n)
			}
			// Update, GetOrInsert, Put, Delete route like Get.
			if v, present := m.Update("key-7", func(old int, p bool) (int, bool) {
				if !p || old != 7 {
					t.Fatalf("Update old = (%d,%v)", old, p)
				}
				return 77, true
			}); !present || v != 77 {
				t.Fatalf("Update = (%d,%v)", v, present)
			}
			if got, inserted := m.GetOrInsert("key-7", 0); inserted || got != 77 {
				t.Fatalf("GetOrInsert(existing) = (%d,%v)", got, inserted)
			}
			if fresh := m.Put("brand-new", 1); !fresh {
				t.Fatal("Put of fresh key not fresh")
			}
			if v, ok := m.Delete("key-7"); !ok || v != 77 {
				t.Fatalf("Delete = (%d,%v)", v, ok)
			}
			if _, ok := m.Get("key-7"); ok {
				t.Fatal("deleted key still visible")
			}
		})
	}
}

// TestShardedStringMapConcurrent hammers per-key counters through
// UpdateBytes from many goroutines: totals must be exact (no lost updates
// across the shard split) with a concurrent ForEach running throughout.
func TestShardedStringMapConcurrent(t *testing.T) {
	m := MustNewShardedStringMap[int]("ht-clht-lb", 4, Capacity(256))
	const workers, rounds, keys = 8, 500, 32
	stop := make(chan struct{})
	var scanner sync.WaitGroup
	scanner.Add(1)
	go func() {
		defer scanner.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.ForEach(func(_ string, v int) bool { return v >= 0 })
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := make([]byte, 0, 16)
			for i := 0; i < rounds; i++ {
				key = append(key[:0], "ctr-"...)
				key = append(key, byte('a'+i%keys))
				m.UpdateBytes(key, func(old int, _ bool) (int, bool) { return old + 1, true })
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scanner.Wait()
	total := 0
	m.ForEach(func(_ string, v int) bool { total += v; return true })
	if total != workers*rounds {
		t.Fatalf("counter total = %d, want %d", total, workers*rounds)
	}
}

// TestShardedStringMapGetBytesZeroAlloc extends the PR3 allocation gate to
// the sharded facade: routing must not cost an allocation — a steady-state
// GetBytes hit through the shard router stays at 0 allocs/op.
func TestShardedStringMapGetBytesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	m := MustNewShardedStringMap[uint64]("ht-clht-lb", 8, Capacity(256))
	key := []byte("benchmark-key")
	m.UpdateBytes(key, func(_ uint64, _ bool) (uint64, bool) { return 42, true })
	var v uint64
	var ok bool
	if avg := testing.AllocsPerRun(200, func() {
		v, ok = m.GetBytes(key)
	}); avg != 0 {
		t.Fatalf("sharded GetBytes allocates %.1f/op, want 0", avg)
	}
	if !ok || v != 42 {
		t.Fatalf("GetBytes = %d, %v", v, ok)
	}
}

// TestShardedStringMapGetBytesBatch: the shard-grouped batch read must
// agree with per-key GetBytes for every key — hits and misses, duplicate
// keys, every shard touched — and report results in request order.
func TestShardedStringMapGetBytesBatch(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ll-lazy", "sl-fraser-opt"} {
		t.Run(algo, func(t *testing.T) {
			m := MustNewShardedStringMap[int](algo, 8, Capacity(256))
			for i := 0; i < 64; i += 2 { // evens present, odds missing
				m.Put(fmt.Sprintf("key-%d", i), i)
			}
			keys := make([][]byte, 0, 40)
			for i := 0; i < 39; i++ {
				keys = append(keys, []byte(fmt.Sprintf("key-%d", i)))
			}
			keys = append(keys, []byte("key-0")) // duplicate
			var out []BatchGet[int]
			out = m.GetBytesBatch(keys, out)
			if len(out) != len(keys) {
				t.Fatalf("len(out) = %d, want %d", len(out), len(keys))
			}
			for i, k := range keys {
				wantV, wantOK := m.GetBytes(k)
				if out[i].OK != wantOK || out[i].Val != wantV {
					t.Fatalf("out[%d] (%s) = (%d, %v), want (%d, %v)",
						i, k, out[i].Val, out[i].OK, wantV, wantOK)
				}
			}
			// Reuse: a second, smaller batch over the same slice.
			out = m.GetBytesBatch(keys[:3], out)
			if len(out) != 3 || !out[0].OK || out[1].OK || !out[2].OK {
				t.Fatalf("reused batch wrong: %+v", out)
			}
		})
	}
}

// TestShardedStringMapGetBytesBatchZeroAlloc: once the result slice has
// grown, the shard-grouped batch read allocates nothing per call.
func TestShardedStringMapGetBytesBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under race instrumentation")
	}
	m := MustNewShardedStringMap[uint64]("ht-clht-lb", 8, Capacity(256))
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bkey-%d", i))
		m.UpdateBytes(keys[i], func(_ uint64, _ bool) (uint64, bool) { return uint64(i), true })
	}
	out := m.GetBytesBatch(keys, nil) // size the backing array
	if avg := testing.AllocsPerRun(200, func() {
		out = m.GetBytesBatch(keys, out)
	}); avg != 0 {
		t.Fatalf("GetBytesBatch allocates %.1f/op, want 0", avg)
	}
	for i := range keys {
		if !out[i].OK || out[i].Val != uint64(i) {
			t.Fatalf("out[%d] = %+v", i, out[i])
		}
	}
}

// TestShardedRecycleStatsAggregate: the facade-level RecycleStats must sum
// shard domains (and stay zero without recycling).
func TestShardedRecycleStatsAggregate(t *testing.T) {
	m := MustNewShardedStringMap[int]("ll-lazy", 4, Capacity(64),
		RecycleNodes(true), RecycleThreshold(8))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i)
		m.Put(k, i)
		m.Delete(k)
	}
	if st := m.RecycleStats(); st.Allocs == 0 || st.Frees == 0 {
		t.Fatalf("aggregated recycle stats flat after churn: %+v", st)
	}
	plain := MustNewShardedStringMap[int]("ll-lazy", 4, Capacity(64))
	plain.Put("a", 1)
	plain.Delete("a")
	if st := plain.RecycleStats(); st.Allocs != 0 {
		t.Fatalf("recycling off but stats nonzero: %+v", st)
	}
	// Map-level stats surface the same counters.
	mm := MustNewMap[uint64, uint64]("ll-lazy", Capacity(64), Sharded(4),
		RecycleNodes(true), RecycleThreshold(8))
	for k := uint64(1); k <= 500; k++ {
		mm.Put(k, k)
		mm.Delete(k)
	}
	if st := mm.RecycleStats(); st.Allocs == 0 || st.Frees == 0 {
		t.Fatalf("Map.RecycleStats flat after sharded churn: %+v", st)
	}
}
