package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptySummary(t *testing.T) {
	var r Recorder
	s := r.Summarize()
	if s.N != 0 || s.MeanNS != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.String() != "n=0" {
		t.Fatalf("empty summary string = %q", s.String())
	}
}

func TestSingleSample(t *testing.T) {
	var r Recorder
	r.Add(42)
	s := r.Summarize()
	if s.N != 1 || s.MeanNS != 42 {
		t.Fatalf("summary = %+v", s)
	}
	for _, p := range PaperPercentiles {
		if s.Percentiles[p] != 42 {
			t.Fatalf("p%v = %d, want 42", p, s.Percentiles[p])
		}
	}
}

func TestKnownPercentiles(t *testing.T) {
	var r Recorder
	for i := int64(1); i <= 100; i++ {
		r.Add(i)
	}
	s := r.Summarize()
	checks := map[float64]int64{1: 1, 25: 25, 50: 50, 75: 75, 99: 99}
	for p, want := range checks {
		if got := s.Percentiles[p]; got != want {
			t.Fatalf("p%v = %d, want %d", p, got, want)
		}
	}
	if s.MeanNS != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.MeanNS)
	}
}

func TestOrderIndependent(t *testing.T) {
	var a, b Recorder
	vals := rand.New(rand.NewSource(5)).Perm(1000)
	for _, v := range vals {
		a.Add(int64(v))
	}
	for i := 999; i >= 0; i-- {
		b.Add(int64(vals[i]))
	}
	sa, sb := a.Summarize(), b.Summarize()
	for _, p := range PaperPercentiles {
		if sa.Percentiles[p] != sb.Percentiles[p] {
			t.Fatalf("p%v differs by insertion order", p)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Recorder
	a.Add(1)
	b.Add(2)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	var r Recorder
	r.Add(3)
	r.Add(1)
	r.Add(2)
	r.Summarize()
	if r.samples[0] != 3 || r.samples[1] != 1 || r.samples[2] != 2 {
		t.Fatal("Summarize sorted the recorder in place")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var r Recorder
		for _, v := range raw {
			r.Add(int64(v))
		}
		s := r.Summarize()
		return s.Percentiles[1] <= s.Percentiles[25] &&
			s.Percentiles[25] <= s.Percentiles[50] &&
			s.Percentiles[50] <= s.Percentiles[75] &&
			s.Percentiles[75] <= s.Percentiles[99]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if m := Median(nil); m != 0 {
		t.Fatalf("median of empty = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 3 {
		t.Fatalf("even median (upper) = %v, want 3", m)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{10, 20, 30})
	if s.N != 3 || s.MeanNS != 20 {
		t.Fatalf("SummarizeInts = %+v", s)
	}
}
