// Package stats provides the latency accounting used by the benchmark
// harness: per-worker sample recorders and the 1/25/50/75/99 percentile
// summaries that the paper's latency-distribution figures report
// (Figures 4d, 5d, 6d, 7d).
package stats

import (
	"fmt"
	"sort"
	"time"
)

// Percentiles reported throughout the paper's distribution plots.
var PaperPercentiles = []float64{1, 25, 50, 75, 99}

// Recorder collects latency samples (nanoseconds) for one worker. Not
// goroutine-safe; merge after the run.
type Recorder struct {
	samples []int64
}

// Add records one sample.
func (r *Recorder) Add(ns int64) {
	r.samples = append(r.samples, ns)
}

// Reserve pre-grows the sample buffer so steady-state recording does not
// allocate (the zero-alloc load generator reserves its expected sample
// count up front).
func (r *Recorder) Reserve(n int) {
	if cap(r.samples)-len(r.samples) < n {
		grown := make([]int64, len(r.samples), len(r.samples)+n)
		copy(grown, r.samples)
		r.samples = grown
	}
}

// AddSince records the latency of an operation that started at t0. It is
// the recording helper the wire-level drivers use around a request's
// send-to-response window.
func (r *Recorder) AddSince(t0 time.Time) {
	r.samples = append(r.samples, time.Since(t0).Nanoseconds())
}

// Merge appends other's samples.
func (r *Recorder) Merge(other *Recorder) {
	r.samples = append(r.samples, other.samples...)
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Summary is a digested latency distribution.
type Summary struct {
	N           int
	MeanNS      float64
	Percentiles map[float64]int64 // percentile -> ns
}

// Summarize digests the samples into the paper's percentiles plus the mean.
// Returns a zero summary when no samples were recorded.
func (r *Recorder) Summarize() Summary {
	s := Summary{N: len(r.samples), Percentiles: map[float64]int64{}}
	if s.N == 0 {
		return s
	}
	sorted := make([]int64, s.N)
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	s.MeanNS = float64(sum) / float64(s.N)
	for _, p := range PaperPercentiles {
		s.Percentiles[p] = quantile(sorted, p/100)
	}
	return s
}

// SummarizeInts digests an arbitrary sample slice (e.g. perf parse samples).
func SummarizeInts(samples []int64) Summary {
	r := Recorder{samples: samples}
	return r.Summarize()
}

// quantile returns the q-quantile (0..1) of sorted data by nearest-rank.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// P returns the p-th percentile in nanoseconds, if it was digested
// (PaperPercentiles lists which); 0 otherwise.
func (s Summary) P(p float64) int64 { return s.Percentiles[p] }

// SummaryJSON is the machine-readable form of a Summary, in microseconds,
// as emitted into BENCH_*.json files.
type SummaryJSON struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
}

// JSON digests the summary for benchmark-file output.
func (s Summary) JSON() SummaryJSON {
	return SummaryJSON{
		N:      s.N,
		MeanUS: s.MeanNS / 1e3,
		P50US:  float64(s.P(50)) / 1e3,
		P99US:  float64(s.P(99)) / 1e3,
	}
}

// String renders the summary as the paper's 1/25/50/75/99 row.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.0fns p1/25/50/75/99=%d/%d/%d/%d/%dns",
		s.N, s.MeanNS,
		s.Percentiles[1], s.Percentiles[25], s.Percentiles[50],
		s.Percentiles[75], s.Percentiles[99])
}

// Median returns the middle element of values (by sorted order); used for
// the paper's "median of 11 repetitions" protocol.
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
