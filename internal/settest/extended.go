// Conformance suite for the v2 operation surface (Extended + Ordered):
// Update atomicity under contention, GetOrInsert insert-once semantics,
// Range's sorted/duplicate-free contract under churn, and parity between an
// algorithm's native operations and the generic fallbacks in core. Every
// registry entry runs the whole suite (see RunExtendedRegistered): the
// operations are served natively or by fallback, and both paths must obey
// the same contracts.
package settest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// RunExtended executes the v2 conformance suite. safe mirrors the registry
// Safe flag (unsynchronized structures only get the sequential portion);
// ordered mirrors the registry Ordered flag (asserting the native Range
// claim).
func RunExtended(t *testing.T, safe, ordered bool, f Factory) {
	t.Helper()
	t.Run("UpdateModel", func(t *testing.T) { testUpdateModel(t, f) })
	t.Run("UpdateLifecycle", func(t *testing.T) { testUpdateLifecycle(t, f) })
	t.Run("GetOrInsertSequential", func(t *testing.T) { testGetOrInsertSeq(t, f) })
	t.Run("ForEachModel", func(t *testing.T) { testForEachModel(t, f) })
	t.Run("ForEachEarlyStop", func(t *testing.T) { testForEachEarlyStop(t, f) })
	t.Run("RangeModel", func(t *testing.T) { testRangeModel(t, f, ordered) })
	t.Run("MinMax", func(t *testing.T) { testMinMax(t, f) })
	t.Run("FallbackParity", func(t *testing.T) { testFallbackParity(t, f) })
	t.Run("SearchBatchModel", func(t *testing.T) { testSearchBatchModel(t, f) })
	if safe {
		t.Run("ConcurrentUpdateCounter", func(t *testing.T) { testUpdateCounter(t, f) })
		t.Run("ConcurrentUpdateManyKeys", func(t *testing.T) { testUpdateManyKeys(t, f) })
		t.Run("ConcurrentGetOrInsertOnce", func(t *testing.T) { testGetOrInsertOnce(t, f) })
		t.Run("ConcurrentRangeChurn", func(t *testing.T) { testRangeChurn(t, f) })
		t.Run("ConcurrentSearchBatchChurn", func(t *testing.T) { testSearchBatchChurn(t, f) })
	}
}

// testSearchBatchModel: a batched read must agree, key by key, with serial
// Search on a quiescent set — through BatcherOf (native or fallback) and
// through the Extend wrapper, for hit/miss mixes including duplicates.
func testSearchBatchModel(t *testing.T, f Factory) {
	s := f()
	rng := rand.New(rand.NewSource(7))
	present := map[core.Key]core.Value{}
	for i := 0; i < 200; i++ {
		k := core.Key(rng.Intn(400) + 1)
		v := core.Value(rng.Uint64())
		if s.Insert(k, v) {
			present[k] = v
		}
	}
	keys := make([]core.Key, 0, 256)
	for i := 0; i < 250; i++ {
		keys = append(keys, core.Key(rng.Intn(500)+1))
	}
	keys = append(keys, keys[0], keys[1]) // duplicates are legal
	check := func(name string, b core.Batcher) {
		vals := make([]core.Value, len(keys))
		found := make([]bool, len(keys))
		b.SearchBatch(keys, vals, found)
		for i, k := range keys {
			wv, wok := s.Search(k)
			if found[i] != wok || (wok && vals[i] != wv) {
				t.Fatalf("%s: key %d -> (%d, %v), Search says (%d, %v)",
					name, k, vals[i], found[i], wv, wok)
			}
			if wok {
				if mv, ok := present[k]; !ok || mv != wv {
					t.Fatalf("model drift at key %d", k)
				}
			}
		}
	}
	b, _ := core.BatcherOf(s)
	check("BatcherOf", b)
	check("Extend", core.Extend(s))
}

// testSearchBatchChurn: under concurrent inserts and removes on a disjoint
// key range, a batched read over a stable key range must keep returning
// exactly the stable keys — the batch shares one epoch bracket, and that
// bracket must not let churn-freed nodes corrupt later lookups in the same
// batch.
func testSearchBatchChurn(t *testing.T, f Factory) {
	s := f()
	const stable = 64
	keys := make([]core.Key, stable)
	for i := range keys {
		keys[i] = core.Key(2*i + 2) // even keys: stable
		if !s.Insert(keys[i], core.Value(i)) {
			t.Fatalf("insert %d", keys[i])
		}
	}
	b, _ := core.BatcherOf(s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := core.Key(2*rng.Intn(4096) + 1) // odd keys: churn
				if rng.Intn(2) == 0 {
					s.Insert(k, core.Value(k))
				} else {
					s.Remove(k)
				}
			}
		}(int64(w))
	}
	vals := make([]core.Value, stable)
	found := make([]bool, stable)
	for round := 0; round < 200; round++ {
		b.SearchBatch(keys, vals, found)
		for i := range keys {
			if !found[i] || vals[i] != core.Value(i) {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: stable key %d -> (%d, %v)", round, keys[i], vals[i], found[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// testUpdateModel replays a random tape of all five mutating operations
// against a model map.
func testUpdateModel(t *testing.T, f Factory) {
	s := f()
	e := core.Extend(s)
	model := map[core.Key]core.Value{}
	r := rand.New(rand.NewSource(11))
	const keyRange = 96
	for i := 0; i < 4000; i++ {
		k := core.Key(r.Intn(keyRange) + 1)
		switch r.Intn(5) {
		case 0: // plain insert
			_, in := model[k]
			if got := e.Insert(k, core.Value(i)); got == in {
				t.Fatalf("op %d: insert(%d) = %v with present=%v", i, k, got, in)
			}
			if !in {
				model[k] = core.Value(i)
			}
		case 1: // plain remove
			wantV, want := model[k]
			gotV, got := e.Remove(k)
			if got != want || (got && gotV != wantV) {
				t.Fatalf("op %d: remove(%d) = (%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
			delete(model, k)
		case 2: // update: increment-or-initialize
			old, in := model[k]
			want := old + 1
			if !in {
				want = core.Value(1000)
			}
			gotV, present := e.Update(k, func(v core.Value, ok bool) (core.Value, bool) {
				if !ok {
					return 1000, true
				}
				return v + 1, true
			})
			if !present || gotV != want {
				t.Fatalf("op %d: update(%d) = (%d,%v), want (%d,true)", i, k, gotV, present, want)
			}
			model[k] = want
		case 3: // update: conditional delete of even values
			old, in := model[k]
			gotV, present := e.Update(k, func(v core.Value, ok bool) (core.Value, bool) {
				if !ok {
					return 0, false
				}
				return v, v%2 != 0
			})
			switch {
			case !in:
				if present {
					t.Fatalf("op %d: delete-update materialized %d", i, k)
				}
			case old%2 == 0: // deleted
				if present || gotV != old {
					t.Fatalf("op %d: delete-update(%d) = (%d,%v), want (%d,false)", i, k, gotV, present, old)
				}
				delete(model, k)
			default: // kept
				if !present || gotV != old {
					t.Fatalf("op %d: keep-update(%d) = (%d,%v), want (%d,true)", i, k, gotV, present, old)
				}
			}
		default: // search
			wantV, want := model[k]
			gotV, got := e.Search(k)
			if got != want || (got && gotV != wantV) {
				t.Fatalf("op %d: search(%d) = (%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		}
	}
	if got := e.Size(); got != len(model) {
		t.Fatalf("final size = %d, model has %d", got, len(model))
	}
}

// testUpdateLifecycle drives one key through insert → modify → no-op →
// remove, all via Update.
func testUpdateLifecycle(t *testing.T, f Factory) {
	e := core.Extend(f())
	if v, ok := e.Update(9, func(_ core.Value, ok bool) (core.Value, bool) { return 0, false }); ok || v != 0 {
		t.Fatalf("removing update on absent key = (%d,%v)", v, ok)
	}
	if v, ok := e.Update(9, func(_ core.Value, ok bool) (core.Value, bool) { return 90, true }); !ok || v != 90 {
		t.Fatalf("inserting update = (%d,%v), want (90,true)", v, ok)
	}
	if v, ok := e.Search(9); !ok || v != 90 {
		t.Fatalf("search after inserting update = (%d,%v)", v, ok)
	}
	if v, ok := e.Update(9, func(old core.Value, ok bool) (core.Value, bool) { return old + 1, true }); !ok || v != 91 {
		t.Fatalf("modifying update = (%d,%v), want (91,true)", v, ok)
	}
	if v, ok := e.Update(9, func(old core.Value, ok bool) (core.Value, bool) { return old, true }); !ok || v != 91 {
		t.Fatalf("no-op update = (%d,%v), want (91,true)", v, ok)
	}
	if v, ok := e.Update(9, func(old core.Value, ok bool) (core.Value, bool) { return 0, false }); ok || v != 91 {
		t.Fatalf("removing update = (%d,%v), want (91,false)", v, ok)
	}
	if _, ok := e.Search(9); ok {
		t.Fatal("key survived removing update")
	}
	if e.Size() != 0 {
		t.Fatalf("size = %d after lifecycle", e.Size())
	}
}

func testGetOrInsertSeq(t *testing.T, f Factory) {
	e := core.Extend(f())
	if v, inserted := e.GetOrInsert(4, 40); !inserted || v != 40 {
		t.Fatalf("first GetOrInsert = (%d,%v), want (40,true)", v, inserted)
	}
	if v, inserted := e.GetOrInsert(4, 41); inserted || v != 40 {
		t.Fatalf("second GetOrInsert = (%d,%v), want (40,false)", v, inserted)
	}
	if v, ok := e.Search(4); !ok || v != 40 {
		t.Fatalf("value overwritten: (%d,%v)", v, ok)
	}
	if e.Size() != 1 {
		t.Fatalf("size = %d", e.Size())
	}
}

func testForEachModel(t *testing.T, f Factory) {
	e := core.Extend(f())
	model := map[core.Key]core.Value{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		k := core.Key(r.Intn(1000) + 1)
		if e.Insert(k, core.Value(k)*3) {
			model[k] = core.Value(k) * 3
		}
	}
	seen := map[core.Key]core.Value{}
	e.ForEach(func(k core.Key, v core.Value) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("ForEach yielded key %d twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("ForEach yielded %d elements, model has %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("ForEach[%d] = %d, want %d", k, seen[k], v)
		}
	}
}

func testForEachEarlyStop(t *testing.T, f Factory) {
	e := core.Extend(f())
	for k := core.Key(1); k <= 50; k++ {
		e.Insert(k, core.Value(k))
	}
	n := 0
	e.ForEach(func(core.Key, core.Value) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("ForEach visited %d elements after stop at 7", n)
	}
}

// testRangeModel checks Range/OrderedOf against a model on a quiescent set:
// sorted, duplicate-free, complete, and count-correct over several windows.
func testRangeModel(t *testing.T, f Factory, ordered bool) {
	s := f()
	o, native := core.OrderedOf(s)
	if o == nil {
		t.Fatal("OrderedOf returned nil")
	}
	if ordered != native {
		t.Fatalf("registry Ordered=%v but OrderedOf native=%v", ordered, native)
	}
	e := core.Extend(s)
	model := map[core.Key]core.Value{}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		k := core.Key(r.Intn(2000) + 1)
		if e.Insert(k, core.Value(k)+7) {
			model[k] = core.Value(k) + 7
		}
	}
	windows := [][2]core.Key{
		{1, 2000}, {100, 600}, {601, 601}, {1999, 2100}, {500, 400}, {2500, 3000},
	}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		want := 0
		for k := range model {
			if k >= lo && k <= hi {
				want++
			}
		}
		if hi < lo {
			want = 0
		}
		var got []core.Key
		n := o.Range(lo, hi, func(k core.Key, v core.Value) bool {
			if k < lo || k > hi {
				t.Fatalf("range [%d,%d] yielded out-of-window key %d", lo, hi, k)
			}
			if mv, in := model[k]; !in || mv != v {
				t.Fatalf("range [%d,%d] yielded (%d,%d), model has (%d,%v)", lo, hi, k, v, mv, in)
			}
			if len(got) > 0 && k <= got[len(got)-1] {
				t.Fatalf("range [%d,%d] not strictly ascending: %d after %d", lo, hi, k, got[len(got)-1])
			}
			got = append(got, k)
			return true
		})
		if n != want || len(got) != want {
			t.Fatalf("range [%d,%d] yielded %d (returned %d), want %d", lo, hi, len(got), n, want)
		}
	}
	// Early termination: the count includes the element that stopped it.
	if len(model) >= 3 {
		n := o.Range(1, 2000, func(core.Key, core.Value) bool { return false })
		if n != 1 {
			t.Fatalf("stopped range returned %d, want 1", n)
		}
	}
}

func testMinMax(t *testing.T, f Factory) {
	s := f()
	o, _ := core.OrderedOf(s)
	if _, _, ok := o.Min(); ok {
		t.Fatal("Min on empty set reported an element")
	}
	if _, _, ok := o.Max(); ok {
		t.Fatal("Max on empty set reported an element")
	}
	e := core.Extend(s)
	keys := []core.Key{500, 3, 999, 42, 77}
	for _, k := range keys {
		e.Insert(k, core.Value(k)*2)
	}
	if k, v, ok := o.Min(); !ok || k != 3 || v != 6 {
		t.Fatalf("Min = (%d,%d,%v), want (3,6,true)", k, v, ok)
	}
	if k, v, ok := o.Max(); !ok || k != 999 || v != 1998 {
		t.Fatalf("Max = (%d,%d,%v), want (999,1998,true)", k, v, ok)
	}
}

// testFallbackParity runs one op tape through the algorithm's own surface
// (Extend: native where available) and through the forced generic fallbacks
// (core.Fallback), and requires identical observable behaviour.
func testFallbackParity(t *testing.T, f Factory) {
	nat := core.Extend(f())
	fb := core.Fallback(f())
	r := rand.New(rand.NewSource(29))
	const keyRange = 64
	for i := 0; i < 2000; i++ {
		k := core.Key(r.Intn(keyRange) + 1)
		switch r.Intn(4) {
		case 0:
			nv, np := nat.Update(k, func(v core.Value, ok bool) (core.Value, bool) {
				if !ok {
					return core.Value(k), true
				}
				return v + 1, v%5 != 0
			})
			fv, fp := fb.Update(k, func(v core.Value, ok bool) (core.Value, bool) {
				if !ok {
					return core.Value(k), true
				}
				return v + 1, v%5 != 0
			})
			if nv != fv || np != fp {
				t.Fatalf("op %d: Update(%d) native (%d,%v) != fallback (%d,%v)", i, k, nv, np, fv, fp)
			}
		case 1:
			nv, ni := nat.GetOrInsert(k, core.Value(i))
			fv, fi := fb.GetOrInsert(k, core.Value(i))
			if nv != fv || ni != fi {
				t.Fatalf("op %d: GetOrInsert(%d) native (%d,%v) != fallback (%d,%v)", i, k, nv, ni, fv, fi)
			}
		case 2:
			nv, nk := nat.Remove(k)
			fv, fk := fb.Remove(k)
			if nv != fv || nk != fk {
				t.Fatalf("op %d: Remove(%d) native (%d,%v) != fallback (%d,%v)", i, k, nv, nk, fv, fk)
			}
		default:
			nv, nk := nat.Search(k)
			fv, fk := fb.Search(k)
			if nv != fv || nk != fk {
				t.Fatalf("op %d: Search(%d) native (%d,%v) != fallback (%d,%v)", i, k, nv, nk, fv, fk)
			}
		}
	}
	if nat.Size() != fb.Size() {
		t.Fatalf("final sizes diverge: native %d, fallback %d", nat.Size(), fb.Size())
	}
	// The ordered views must agree element-for-element too.
	no, _ := core.OrderedOf(nat)
	fo, _ := core.OrderedOf(fb)
	var nkeys, fkeys []core.Key
	no.Range(1, keyRange, func(k core.Key, _ core.Value) bool { nkeys = append(nkeys, k); return true })
	fo.Range(1, keyRange, func(k core.Key, _ core.Value) bool { fkeys = append(fkeys, k); return true })
	if len(nkeys) != len(fkeys) {
		t.Fatalf("range views diverge: %d vs %d keys", len(nkeys), len(fkeys))
	}
	for i := range nkeys {
		if nkeys[i] != fkeys[i] {
			t.Fatalf("range views diverge at %d: %d vs %d", i, nkeys[i], fkeys[i])
		}
	}
}

// OrderedOf on the Extended wrappers: nat wraps the raw set, so the view
// falls back — that is fine for parity, both sides sort the same elements.

// testUpdateCounter is the atomicity check: concurrent increments through
// one shared Extended must never lose an update.
func testUpdateCounter(t *testing.T, f Factory) {
	e := core.Extend(f())
	workers := 8
	perWorker := 1500
	if testing.Short() {
		workers, perWorker = 4, 400
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e.Update(55, func(v core.Value, ok bool) (core.Value, bool) {
					if !ok {
						return 1, true
					}
					return v + 1, true
				})
			}
		}()
	}
	wg.Wait()
	v, ok := e.Search(55)
	if !ok || v != core.Value(workers*perWorker) {
		t.Fatalf("counter = (%d,%v), want (%d,true): lost updates", v, ok, workers*perWorker)
	}
}

// testUpdateManyKeys spreads concurrent increments over a small hot range so
// stripe sharing and neighbouring-node conflicts get exercised.
func testUpdateManyKeys(t *testing.T, f Factory) {
	e := core.Extend(f())
	const keyRange = 32
	workers := 8
	perWorker := 1200
	if testing.Short() {
		workers, perWorker = 4, 300
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 31)))
			for i := 0; i < perWorker; i++ {
				k := core.Key(r.Intn(keyRange) + 1)
				e.Update(k, func(v core.Value, ok bool) (core.Value, bool) {
					if !ok {
						return 1, true
					}
					return v + 1, true
				})
			}
		}(w)
	}
	wg.Wait()
	var total core.Value
	for k := core.Key(1); k <= keyRange; k++ {
		if v, ok := e.Search(k); ok {
			total += v
		}
	}
	if total != core.Value(workers*perWorker) {
		t.Fatalf("sum of counters = %d, want %d: lost updates", total, workers*perWorker)
	}
}

// testGetOrInsertOnce: all racers for one absent key observe the same value
// and exactly one inserts.
func testGetOrInsertOnce(t *testing.T, f Factory) {
	e := core.Extend(f())
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	const workers = 8
	for round := 0; round < rounds; round++ {
		k := core.Key(round + 1)
		var inserted atomic.Int64
		got := make([]core.Value, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v, ins := e.GetOrInsert(k, core.Value(w+1))
				if ins {
					inserted.Add(1)
				}
				got[w] = v
			}(w)
		}
		wg.Wait()
		if n := inserted.Load(); n != 1 {
			t.Fatalf("round %d: %d workers inserted, want exactly 1", round, n)
		}
		winner, ok := e.Search(k)
		if !ok {
			t.Fatalf("round %d: key missing after GetOrInsert race", round)
		}
		for w := 0; w < workers; w++ {
			if got[w] != winner {
				t.Fatalf("round %d: worker %d observed %d, winner is %d", round, w, got[w], winner)
			}
		}
	}
}

// testRangeChurn: writers churn odd keys inside the window while readers
// scan; every scan must be strictly ascending, in-window, duplicate-free,
// and must contain every stable (even) key.
func testRangeChurn(t *testing.T, f Factory) {
	s := f()
	o, _ := core.OrderedOf(s)
	e := core.Extend(s)
	const lo, hi = core.Key(100), core.Key(300)
	for k := lo; k <= hi; k += 2 {
		e.Insert(k, core.Value(k))
	}
	stableCount := int(hi-lo)/2 + 1
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 200)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := lo + 1 + 2*core.Key(r.Intn(int(hi-lo)/2))
				if r.Intn(2) == 0 {
					e.Insert(k, core.Value(k))
				} else {
					e.Remove(k)
				}
			}
		}(w)
	}
	scans := 60
	if testing.Short() {
		scans = 15
	}
	for i := 0; i < scans; i++ {
		var prev core.Key
		evens := 0
		n := o.Range(lo, hi, func(k core.Key, v core.Value) bool {
			if k < lo || k > hi {
				t.Errorf("scan %d: out-of-window key %d", i, k)
				return false
			}
			if prev != 0 && k <= prev {
				t.Errorf("scan %d: key %d after %d (not strictly ascending)", i, k, prev)
				return false
			}
			if v != core.Value(k) {
				t.Errorf("scan %d: key %d carries value %d", i, k, v)
				return false
			}
			prev = k
			if k%2 == 0 {
				evens++
			}
			return true
		})
		if t.Failed() {
			break
		}
		if evens != stableCount {
			t.Errorf("scan %d: saw %d stable keys, want %d", i, evens, stableCount)
			break
		}
		if n < evens {
			t.Errorf("scan %d: returned count %d < %d yielded", i, n, evens)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// RunExtendedRegistered pulls the algorithm from the registry and runs the
// v2 suite with its Safe and Ordered flags.
func RunExtendedRegistered(t *testing.T, name string, opts ...core.Option) {
	t.Helper()
	a, ok := core.Get(name)
	if !ok {
		t.Fatalf("algorithm %q not registered", name)
	}
	t.Run(name, func(t *testing.T) {
		if a.Safe {
			t.Parallel()
		}
		RunExtended(t, a.Safe, a.Ordered, func() core.Set {
			s, err := core.New(name, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
}
