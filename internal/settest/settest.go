// Package settest is the conformance suite that every CSDS implementation in
// the library must pass. It checks the paper's set semantics (§2) —
// search/insert/remove with unique keys — sequentially against a model map,
// property-based via testing/quick, and under concurrency via invariants
// that hold for any linearizable implementation.
package settest

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Factory builds a fresh empty set for one subtest.
type Factory func() core.Set

// Run executes the full conformance suite. safe must reflect the registry's
// Safe flag: unsynchronized structures (the async upper bounds) only get the
// sequential portion of the suite.
func Run(t *testing.T, safe bool, f Factory) {
	t.Helper()
	t.Run("EmptySearch", func(t *testing.T) { testEmptySearch(t, f) })
	t.Run("SingleElement", func(t *testing.T) { testSingleElement(t, f) })
	t.Run("DuplicateInsert", func(t *testing.T) { testDuplicateInsert(t, f) })
	t.Run("RemoveMissing", func(t *testing.T) { testRemoveMissing(t, f) })
	t.Run("ReinsertAfterRemove", func(t *testing.T) { testReinsert(t, f) })
	t.Run("BulkAscending", func(t *testing.T) { testBulk(t, f, genAscending) })
	t.Run("BulkDescending", func(t *testing.T) { testBulk(t, f, genDescending) })
	t.Run("BulkRandom", func(t *testing.T) { testBulk(t, f, genShuffled) })
	t.Run("Boundaries", func(t *testing.T) { testBoundaries(t, f) })
	t.Run("ValueFidelity", func(t *testing.T) { testValueFidelity(t, f) })
	t.Run("DrainAll", func(t *testing.T) { testDrain(t, f) })
	t.Run("ModelSequence", func(t *testing.T) { testModelSequence(t, f) })
	t.Run("QuickModel", func(t *testing.T) { testQuickModel(t, f) })
	t.Run("ChurnDrainCycles", func(t *testing.T) { testChurnDrainCycles(t, f) })
	if safe {
		t.Run("ConcurrentDisjointInserts", func(t *testing.T) { testDisjointInserts(t, f) })
		t.Run("ConcurrentOwnerRemove", func(t *testing.T) { testOwnerRemove(t, f) })
		t.Run("ConcurrentChurn", func(t *testing.T) { testChurn(t, f) })
		t.Run("ConcurrentReadersStable", func(t *testing.T) { testReadersStable(t, f) })
		t.Run("ConcurrentSingleKey", func(t *testing.T) { testSingleKey(t, f) })
		t.Run("ConcurrentDrainRace", func(t *testing.T) { testDrainRace(t, f) })
		t.Run("ConcurrentInterleavedRanges", func(t *testing.T) { testInterleavedRanges(t, f) })
	}
}

// testChurnDrainCycles exercises slot/garbage reuse paths: grow, drain to
// empty, and repeat; every cycle must behave like the first.
func testChurnDrainCycles(t *testing.T, f Factory) {
	s := f()
	for cycle := 0; cycle < 4; cycle++ {
		base := core.Value(cycle * 1000)
		for k := core.Key(1); k <= 100; k++ {
			if !s.Insert(k, base+core.Value(k)) {
				t.Fatalf("cycle %d: insert(%d) failed", cycle, k)
			}
		}
		if got := s.Size(); got != 100 {
			t.Fatalf("cycle %d: size = %d, want 100", cycle, got)
		}
		for k := core.Key(1); k <= 100; k++ {
			v, ok := s.Remove(k)
			if !ok || v != base+core.Value(k) {
				t.Fatalf("cycle %d: remove(%d) = (%d,%v)", cycle, k, v, ok)
			}
		}
		if got := s.Size(); got != 0 {
			t.Fatalf("cycle %d: size after drain = %d", cycle, got)
		}
	}
}

// testDrainRace: concurrent removers race over a full set; every key must be
// removed exactly once across all workers.
func testDrainRace(t *testing.T, f Factory) {
	s := f()
	const n = 2048
	for k := core.Key(1); k <= n; k++ {
		s.Insert(k, core.Value(k))
	}
	var removed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 7)))
			// Random order sweeps plus a final linear sweep.
			for i := 0; i < n; i++ {
				if _, ok := s.Remove(core.Key(r.Intn(n) + 1)); ok {
					removed.Add(1)
				}
			}
			for k := core.Key(1); k <= n; k++ {
				if _, ok := s.Remove(k); ok {
					removed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := removed.Load(); got != n {
		t.Fatalf("removed %d keys total, want exactly %d", got, n)
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("size after concurrent drain = %d", got)
	}
}

// testInterleavedRanges: workers insert interleaved residue classes so that
// adjacent keys are always owned by different workers (maximizing
// neighbouring-node conflicts), then verify the union.
func testInterleavedRanges(t *testing.T, f Factory) {
	s := f()
	const workers = 4
	const perWorker = 600
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := core.Key(i*workers + w + 1)
				if !s.Insert(k, core.Value(w)) {
					t.Errorf("worker %d: insert(%d) failed", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.Size(); got != workers*perWorker {
		t.Fatalf("size = %d, want %d", got, workers*perWorker)
	}
	for k := core.Key(1); k <= workers*perWorker; k++ {
		v, ok := s.Search(k)
		if !ok || v != core.Value((int(k)-1)%workers) {
			t.Fatalf("search(%d) = (%d,%v)", k, v, ok)
		}
	}
	// Remove the interleaved classes from opposite ends concurrently.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := perWorker - 1; i >= 0; i-- {
				k := core.Key(i*workers + w + 1)
				if _, ok := s.Remove(k); !ok {
					t.Errorf("worker %d: remove(%d) failed", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Size(); got != 0 {
		t.Fatalf("size after interleaved drain = %d", got)
	}
}

// maxTestKey stays clear of the tail sentinel (MaxUint64).
const maxTestKey = core.Key(math.MaxUint64 - 1)

func testEmptySearch(t *testing.T, f Factory) {
	s := f()
	if _, ok := s.Search(42); ok {
		t.Fatal("search on empty set reported a hit")
	}
	if _, ok := s.Remove(42); ok {
		t.Fatal("remove on empty set succeeded")
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("empty set size = %d", got)
	}
}

func testSingleElement(t *testing.T, f Factory) {
	s := f()
	if !s.Insert(7, 70) {
		t.Fatal("insert into empty set failed")
	}
	v, ok := s.Search(7)
	if !ok || v != 70 {
		t.Fatalf("search(7) = (%d, %v), want (70, true)", v, ok)
	}
	if _, ok := s.Search(6); ok {
		t.Fatal("search(6) hit on a set containing only 7")
	}
	if _, ok := s.Search(8); ok {
		t.Fatal("search(8) hit on a set containing only 7")
	}
	if got := s.Size(); got != 1 {
		t.Fatalf("size = %d, want 1", got)
	}
	v, ok = s.Remove(7)
	if !ok || v != 70 {
		t.Fatalf("remove(7) = (%d, %v), want (70, true)", v, ok)
	}
	if _, ok := s.Search(7); ok {
		t.Fatal("search found 7 after removal")
	}
}

func testDuplicateInsert(t *testing.T, f Factory) {
	s := f()
	if !s.Insert(5, 1) {
		t.Fatal("first insert failed")
	}
	if s.Insert(5, 2) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, _ := s.Search(5); v != 1 {
		t.Fatalf("duplicate insert overwrote value: got %d, want 1", v)
	}
	if got := s.Size(); got != 1 {
		t.Fatalf("size after duplicate insert = %d, want 1", got)
	}
}

func testRemoveMissing(t *testing.T, f Factory) {
	s := f()
	s.Insert(10, 0)
	s.Insert(30, 0)
	for _, k := range []core.Key{5, 20, 40} {
		if _, ok := s.Remove(k); ok {
			t.Fatalf("remove(%d) succeeded on set {10,30}", k)
		}
	}
	if got := s.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

func testReinsert(t *testing.T, f Factory) {
	s := f()
	for round := 0; round < 5; round++ {
		if !s.Insert(3, core.Value(round)) {
			t.Fatalf("round %d: insert failed", round)
		}
		v, ok := s.Remove(3)
		if !ok || v != core.Value(round) {
			t.Fatalf("round %d: remove = (%d, %v)", round, v, ok)
		}
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("size = %d, want 0", got)
	}
}

func genAscending(n int) []core.Key {
	ks := make([]core.Key, n)
	for i := range ks {
		ks[i] = core.Key(2*i + 1)
	}
	return ks
}

func genDescending(n int) []core.Key {
	ks := genAscending(n)
	for i, j := 0, len(ks)-1; i < j; i, j = i+1, j-1 {
		ks[i], ks[j] = ks[j], ks[i]
	}
	return ks
}

func genShuffled(n int) []core.Key {
	ks := genAscending(n)
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	return ks
}

func testBulk(t *testing.T, f Factory, gen func(int) []core.Key) {
	const n = 256
	s := f()
	keys := gen(n)
	for _, k := range keys {
		if !s.Insert(k, core.Value(k)*10) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	if got := s.Size(); got != n {
		t.Fatalf("size = %d, want %d", got, n)
	}
	for _, k := range keys {
		v, ok := s.Search(k)
		if !ok || v != core.Value(k)*10 {
			t.Fatalf("search(%d) = (%d, %v)", k, v, ok)
		}
	}
	// Keys between inserted odd keys must be absent.
	for i := 0; i < n; i += 7 {
		if _, ok := s.Search(core.Key(2*i + 2)); ok {
			t.Fatalf("search(%d) hit an absent key", 2*i+2)
		}
	}
	// Remove every other key, verify the partition.
	for i, k := range keys {
		if i%2 == 0 {
			if _, ok := s.Remove(k); !ok {
				t.Fatalf("remove(%d) failed", k)
			}
		}
	}
	for i, k := range keys {
		_, ok := s.Search(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("after partial removal search(%d) = %v, want %v", k, ok, want)
		}
	}
	if got := s.Size(); got != n/2 {
		t.Fatalf("size = %d, want %d", got, n/2)
	}
}

func testBoundaries(t *testing.T, f Factory) {
	s := f()
	for _, k := range []core.Key{1, maxTestKey} {
		if !s.Insert(k, core.Value(k)) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for _, k := range []core.Key{1, maxTestKey} {
		v, ok := s.Search(k)
		if !ok || v != core.Value(k) {
			t.Fatalf("search(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := s.Search(2); ok {
		t.Fatal("search(2) hit")
	}
	for _, k := range []core.Key{1, maxTestKey} {
		if _, ok := s.Remove(k); !ok {
			t.Fatalf("remove(%d) failed", k)
		}
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("size = %d, want 0", got)
	}
}

func testValueFidelity(t *testing.T, f Factory) {
	s := f()
	const n = 64
	for i := 1; i <= n; i++ {
		s.Insert(core.Key(i), core.Value(i*i))
	}
	for i := 1; i <= n; i++ {
		v, ok := s.Remove(core.Key(i))
		if !ok || v != core.Value(i*i) {
			t.Fatalf("remove(%d) = (%d, %v), want (%d, true)", i, v, ok, i*i)
		}
	}
}

func testDrain(t *testing.T, f Factory) {
	s := f()
	keys := genShuffled(300)
	for _, k := range keys {
		s.Insert(k, 0)
	}
	for _, k := range genShuffled(300) {
		if _, ok := s.Remove(k); !ok {
			t.Fatalf("drain: remove(%d) failed", k)
		}
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("size after drain = %d", got)
	}
	for _, k := range keys[:32] {
		if _, ok := s.Search(k); ok {
			t.Fatalf("search(%d) hit after drain", k)
		}
	}
}

// testModelSequence replays a long pseudo-random op sequence against a model
// map and requires identical results op by op.
func testModelSequence(t *testing.T, f Factory) {
	s := f()
	model := map[core.Key]core.Value{}
	r := rand.New(rand.NewSource(7))
	const keyRange = 128
	for i := 0; i < 6000; i++ {
		k := core.Key(r.Intn(keyRange) + 1)
		switch r.Intn(3) {
		case 0:
			v := core.Value(i)
			want := false
			if _, in := model[k]; !in {
				model[k] = v
				want = true
			}
			if got := s.Insert(k, v); got != want {
				t.Fatalf("op %d: insert(%d) = %v, want %v", i, k, got, want)
			}
		case 1:
			wantV, want := model[k]
			if want {
				delete(model, k)
			}
			gotV, got := s.Remove(k)
			if got != want || (got && gotV != wantV) {
				t.Fatalf("op %d: remove(%d) = (%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		default:
			wantV, want := model[k]
			gotV, got := s.Search(k)
			if got != want || (got && gotV != wantV) {
				t.Fatalf("op %d: search(%d) = (%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		}
	}
	if got := s.Size(); got != len(model) {
		t.Fatalf("final size = %d, model has %d", got, len(model))
	}
}

// testQuickModel drives the set with testing/quick-generated op tapes.
func testQuickModel(t *testing.T, f Factory) {
	check := func(tape []uint16) bool {
		s := f()
		model := map[core.Key]core.Value{}
		for i, w := range tape {
			k := core.Key(w%97 + 1)
			op := (w / 97) % 3
			switch op {
			case 0:
				_, in := model[k]
				if s.Insert(k, core.Value(i)) == in {
					return false
				}
				if !in {
					model[k] = core.Value(i)
				}
			case 1:
				wantV, want := model[k]
				gotV, got := s.Remove(k)
				if got != want || (got && gotV != wantV) {
					return false
				}
				delete(model, k)
			default:
				wantV, want := model[k]
				gotV, got := s.Search(k)
				if got != want || (got && gotV != wantV) {
					return false
				}
			}
		}
		return s.Size() == len(model)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func testDisjointInserts(t *testing.T, f Factory) {
	s := f()
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := core.Key(w*perWorker + 1)
			for i := core.Key(0); i < perWorker; i++ {
				if !s.Insert(base+i, core.Value(base+i)) {
					t.Errorf("worker %d: insert(%d) failed on a disjoint range", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := s.Size(); got != workers*perWorker {
		t.Fatalf("size = %d, want %d", got, workers*perWorker)
	}
	for k := core.Key(1); k <= workers*perWorker; k++ {
		v, ok := s.Search(k)
		if !ok || v != core.Value(k) {
			t.Fatalf("search(%d) = (%d,%v) after disjoint inserts", k, v, ok)
		}
	}
}

// testOwnerRemove: if a worker's insert of the shared key succeeds, the key
// is present and no other worker removes it, so the same worker's remove
// must succeed and return the worker's own value.
func testOwnerRemove(t *testing.T, f Factory) {
	s := f()
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			myVal := core.Value(w + 1)
			for i := 0; i < rounds; i++ {
				if s.Insert(99, myVal) {
					v, ok := s.Remove(99)
					if !ok {
						t.Errorf("worker %d: remove failed after own successful insert", w)
						return
					}
					if v != myVal {
						t.Errorf("worker %d: removed value %d, want %d", w, v, myVal)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// testChurn runs a mixed workload over a small hot range and checks the
// per-key net-presence invariant at quiescence.
func testChurn(t *testing.T, f Factory) {
	s := f()
	const workers = 8
	const keyRange = 64
	const opsPerWorker = 5000
	var present [keyRange + 1]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < opsPerWorker; i++ {
				k := core.Key(r.Intn(keyRange) + 1)
				switch r.Intn(3) {
				case 0:
					if s.Insert(k, core.Value(k)) {
						present[k].Add(1)
					}
				case 1:
					if _, ok := s.Remove(k); ok {
						present[k].Add(-1)
					}
				default:
					s.Search(k)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for k := core.Key(1); k <= keyRange; k++ {
		n := present[k].Load()
		if n != 0 && n != 1 {
			t.Fatalf("key %d: net presence %d, want 0 or 1", k, n)
		}
		_, ok := s.Search(k)
		if ok != (n == 1) {
			t.Fatalf("key %d: search=%v but net presence=%d", k, ok, n)
		}
		if n == 1 {
			total++
		}
	}
	if got := s.Size(); got != total {
		t.Fatalf("size = %d, want %d", got, total)
	}
}

// testReadersStable: keys outside the churn range must stay found while
// writers churn a disjoint range.
func testReadersStable(t *testing.T, f Factory) {
	s := f()
	const stable = 128
	for k := core.Key(1); k <= stable; k++ {
		s.Insert(k, core.Value(k))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 100)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := core.Key(stable + 1 + r.Intn(64))
				if r.Intn(2) == 0 {
					s.Insert(k, 0)
				} else {
					s.Remove(k)
				}
			}
		}(w)
	}
	for round := 0; round < 40; round++ {
		for k := core.Key(1); k <= stable; k += 9 {
			v, ok := s.Search(k)
			if !ok || v != core.Value(k) {
				close(stop)
				wg.Wait()
				t.Fatalf("stable key %d lost during churn: (%d,%v)", k, v, ok)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// testSingleKey hammers one key with inserts and removes from all workers
// and validates global accounting: successes alternate globally.
func testSingleKey(t *testing.T, f Factory) {
	s := f()
	const workers = 8
	const opsPerWorker = 4000
	var inserts, removes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w + 42)))
			for i := 0; i < opsPerWorker; i++ {
				if r.Intn(2) == 0 {
					if s.Insert(77, 1) {
						inserts.Add(1)
					}
				} else {
					if _, ok := s.Remove(77); ok {
						removes.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	net := inserts.Load() - removes.Load()
	if net != 0 && net != 1 {
		t.Fatalf("net successful inserts-removes = %d, want 0 or 1", net)
	}
	_, ok := s.Search(77)
	if ok != (net == 1) {
		t.Fatalf("final presence %v inconsistent with net %d", ok, net)
	}
}

// RunRegistered is a convenience wrapper that pulls the algorithm from the
// core registry and names the subtest after it.
func RunRegistered(t *testing.T, name string, opts ...core.Option) {
	t.Helper()
	a, ok := core.Get(name)
	if !ok {
		t.Fatalf("algorithm %q not registered", name)
	}
	t.Run(name, func(t *testing.T) {
		if a.Safe {
			t.Parallel()
		}
		Run(t, a.Safe, func() core.Set {
			s, err := core.New(name, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
}
