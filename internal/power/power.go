// Package power estimates CPU power from the harness's activity counters.
//
// Substitution note (see DESIGN.md): the paper measures wall power with
// platform instrumentation that Go cannot reach portably. Its causal account
// of the measurements, however, is explicit: ASCY-compliant algorithms draw
// less power because they perform fewer cache-line transfers per operation
// (§5, e.g. "this is achieved by decreasing the number of cache-line
// transfers"). This package makes that causal model executable:
//
//	P = Pstatic + Pactive·threads + e_op·(ops/s) + e_coh·(coherence events/s)
//
// with constants in the range published for Xeon-class parts (tens of watts
// static, a few watts per active core, nanojoules per operation/transfer).
// The figure runners only ever *compare* estimates — power relative to the
// async baseline, exactly like the paper's Figures 4b–7b — so the constants'
// absolute calibration affects nothing but the scale.
package power

// Model holds the energy coefficients.
type Model struct {
	StaticW     float64 // package idle watts
	ActiveWCore float64 // watts per busy hardware thread
	OpJ         float64 // joules per completed operation (core work)
	CoherenceJ  float64 // joules per coherence event (line transfer)
}

// Default is a Xeon-like calibration.
var Default = Model{
	StaticW:     50,
	ActiveWCore: 2.5,
	OpJ:         5e-9,
	CoherenceJ:  2e-8,
}

// Estimate returns modelled watts for a run with the given active thread
// count, operation rate, and coherence-event rate (both per second).
func (m Model) Estimate(threads int, opsPerSec, cohPerSec float64) float64 {
	return m.StaticW + m.ActiveWCore*float64(threads) + m.OpJ*opsPerSec + m.CoherenceJ*cohPerSec
}

// Relative returns p/base — the "ratio to async" the paper plots.
func Relative(p, base float64) float64 {
	if base == 0 {
		return 0
	}
	return p / base
}

// EnergyPerOpNJ returns nanojoules per operation, the metric behind the
// paper's "drachsler and howley consume 41% and 49% more energy per
// operation than natarajan" comparison (§5).
func (m Model) EnergyPerOpNJ(threads int, opsPerSec, cohPerSec float64) float64 {
	if opsPerSec == 0 {
		return 0
	}
	return m.Estimate(threads, opsPerSec, cohPerSec) / opsPerSec * 1e9
}
