package power

import "testing"

func TestEstimateMonotone(t *testing.T) {
	m := Default
	base := m.Estimate(4, 1e6, 1e6)
	if m.Estimate(8, 1e6, 1e6) <= base {
		t.Fatal("power not increasing in threads")
	}
	if m.Estimate(4, 2e6, 1e6) <= base {
		t.Fatal("power not increasing in ops rate")
	}
	if m.Estimate(4, 1e6, 2e6) <= base {
		t.Fatal("power not increasing in coherence rate")
	}
}

func TestStaticFloor(t *testing.T) {
	if got := Default.Estimate(0, 0, 0); got != Default.StaticW {
		t.Fatalf("idle power = %v, want %v", got, Default.StaticW)
	}
}

func TestRelative(t *testing.T) {
	if r := Relative(110, 100); r != 1.1 {
		t.Fatalf("relative = %v", r)
	}
	if r := Relative(5, 0); r != 0 {
		t.Fatalf("relative with zero base = %v", r)
	}
}

// TestCoherenceDominatesAtEqualThroughput captures the paper's causal claim:
// at the same throughput and thread count, the algorithm with more coherence
// events draws more power, and energy/op orders the same way.
func TestCoherenceDominatesAtEqualThroughput(t *testing.T) {
	lean := Default.Estimate(8, 1e7, 1e7)  // ~1 coherence event/op
	heavy := Default.Estimate(8, 1e7, 5e7) // ~5 events/op
	if heavy <= lean {
		t.Fatal("more coherence traffic did not cost more power")
	}
	el := Default.EnergyPerOpNJ(8, 1e7, 1e7)
	eh := Default.EnergyPerOpNJ(8, 1e7, 5e7)
	if eh <= el {
		t.Fatal("energy/op not ordered by coherence traffic")
	}
}

func TestEnergyPerOpZeroThroughput(t *testing.T) {
	if e := Default.EnergyPerOpNJ(8, 0, 0); e != 0 {
		t.Fatalf("energy/op at zero throughput = %v", e)
	}
}
