// Sharded keyspace decomposition: one structure becomes S independent ones.
//
// The paper's Figure 2 explanation for why hash tables scale — independent
// buckets spread contention — applies one level up to any structure: hash-
// partitioning the key domain across S complete instances turns a single hot
// list (or skip list, or tree) into S cool ones, each with its own locks,
// nodes, and SSMEM epoch domain. Nothing in any per-structure algorithm
// changes; the decomposition is entirely in the routing layer here.
//
// What aggregates and what does not: Search/Insert/Remove/Update/GetOrInsert
// route to exactly one shard and keep their single-structure semantics; Size
// and ForEach aggregate across shards (with ForEach's usual no-snapshot
// caveat); RecycleStats sums the per-shard allocator counters. Ordering does
// NOT survive: a sharded set is never natively Ordered, so Range/Min/Max are
// served by OrderedOf's snapshot-and-sort fallback.
package core

import (
	"math/bits"

	"repro/internal/perf"
	"repro/internal/ssmem"
)

// shardedSet routes the whole Extended surface across cfg.Shards instances
// built by the algorithm's own constructor. Each inner instance is wrapped
// with Extend, so Update and GetOrInsert are native exactly where the
// backing algorithm has them — per shard, which is what the fallback-parity
// conformance checks assert.
type shardedSet struct {
	shards []Extended
	raw    []Set          // the unwrapped instances (capability probing, stats)
	insts  []Instrumented // insts[i] non-nil when raw[i] is Instrumented
}

// newShardedSet builds cfg.Shards instances of a, each with its share of the
// bucket budget and (with cfg.Recycle) its own SSMEM domain.
func newShardedSet(a Algorithm, cfg Config) *shardedSet {
	n := cfg.Shards
	per := cfg
	per.Shards = 1
	per.Buckets = cfg.Buckets / n
	if per.Buckets < 1 {
		per.Buckets = 1
	}
	s := &shardedSet{
		shards: make([]Extended, n),
		raw:    make([]Set, n),
		insts:  make([]Instrumented, n),
	}
	for i := 0; i < n; i++ {
		inner := a.New(per)
		s.raw[i] = inner
		s.shards[i] = Extend(inner)
		s.insts[i], _ = inner.(Instrumented)
	}
	return s
}

// shardOf routes a key. The Fibonacci multiply plus xorshift folds
// decorrelate the route from arithmetic key patterns, and the multiply-shift
// range reduction consumes the scramble's top bits — deliberately disjoint
// from the low bits the power-of-two hash tables mask for their bucket
// index, so sharding never collapses a shard's keys onto a fraction of its
// buckets.
func (s *shardedSet) shardOf(k Key) int {
	h := uint64(k) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	hi, _ := bits.Mul64(h, uint64(len(s.shards)))
	return int(hi)
}

func (s *shardedSet) Search(k Key) (Value, bool) { return s.shards[s.shardOf(k)].Search(k) }

func (s *shardedSet) Insert(k Key, v Value) bool { return s.shards[s.shardOf(k)].Insert(k, v) }

func (s *shardedSet) Remove(k Key) (Value, bool) { return s.shards[s.shardOf(k)].Remove(k) }

// Size sums the shards; like every Size in the library it is linear time and
// quiescently exact.
func (s *shardedSet) Size() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Size()
	}
	return n
}

// Update implements Updater by routing: atomicity is the backing shard's
// (native where the algorithm has it, the per-wrapper stripe fallback
// elsewhere) — keys never cross shards, so the guarantee is unchanged.
func (s *shardedSet) Update(k Key, f UpdateFunc) (Value, bool) {
	return s.shards[s.shardOf(k)].Update(k, f)
}

// GetOrInsert implements GetOrInserter by routing.
func (s *shardedSet) GetOrInsert(k Key, v Value) (Value, bool) {
	return s.shards[s.shardOf(k)].GetOrInsert(k, v)
}

// ForEach enumerates shard by shard. Enumeration order is the route order,
// not key order; concurrency semantics are each shard's own.
func (s *shardedSet) ForEach(yield func(k Key, v Value) bool) {
	for _, sh := range s.shards {
		stopped := false
		sh.ForEach(func(k Key, v Value) bool {
			if !yield(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// SearchCtx, InsertCtx, RemoveCtx implement Instrumented by forwarding the
// perf context into the routed shard, so the harness's memory-event and
// phase accounting keeps working under sharding. (Every structure in the
// library is Instrumented; the plain fallback covers out-of-tree sets.)
func (s *shardedSet) SearchCtx(c *perf.Ctx, k Key) (Value, bool) {
	i := s.shardOf(k)
	if inst := s.insts[i]; inst != nil {
		return inst.SearchCtx(c, k)
	}
	return s.shards[i].Search(k)
}

func (s *shardedSet) InsertCtx(c *perf.Ctx, k Key, v Value) bool {
	i := s.shardOf(k)
	if inst := s.insts[i]; inst != nil {
		return inst.InsertCtx(c, k, v)
	}
	return s.shards[i].Insert(k, v)
}

func (s *shardedSet) RemoveCtx(c *perf.Ctx, k Key) (Value, bool) {
	i := s.shardOf(k)
	if inst := s.insts[i]; inst != nil {
		return inst.RemoveCtx(c, k)
	}
	return s.shards[i].Remove(k)
}

// RecycleStats implements Recycler: the sum of every shard's allocator
// counters (zero for shards — or builds — without recycling).
func (s *shardedSet) RecycleStats() ssmem.Stats {
	var agg ssmem.Stats
	for _, r := range s.raw {
		if rec, ok := r.(Recycler); ok {
			agg.Add(rec.RecycleStats())
		}
	}
	return agg
}

// NumShards reports the shard count of a set built with Config.Shards > 1,
// and 1 for any other Set.
func NumShards(s Set) int {
	if sh, ok := s.(*shardedSet); ok {
		return len(sh.shards)
	}
	return 1
}
