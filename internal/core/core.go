// Package core defines the concurrent-search-data-structure (CSDS) interface
// shared by every implementation in the library, together with the algorithm
// registry that backs the public facade and the benchmark harness.
//
// The interface is the paper's basic search-data-structure interface (§2):
// a set of (key, value) elements with search, insert, and remove, where keys
// are 64-bit and values are 64-bit opaque words. Updates conceptually run in
// two phases — parse, then modify — and the ASCY patterns constrain how each
// phase may touch shared memory.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/perf"
	"repro/internal/ssmem"
)

// Key is a 64-bit element key. Key 0 is reserved as the "no element"
// sentinel (the in-place CLHT buckets use 0 to mean an empty slot); workloads
// draw keys from [1..2N] exactly as in the paper, so 0 never occurs.
type Key uint64

// Value is a 64-bit opaque value word, as in the paper's evaluation
// ("we use 64-bit long keys and values"). Store an index or a handle to
// attach larger records; examples/kvstore shows the pattern.
type Value uint64

// Set is the basic CSDS interface from §2 of the paper. Implementations are
// safe for concurrent use by any number of goroutines unless their registry
// entry has Safe == false (the deliberately unsynchronized "async" upper
// bounds).
type Set interface {
	// Search looks for the element with the given key and returns its
	// value. The second result reports whether the element was found.
	Search(k Key) (Value, bool)
	// Insert adds the element if no element with the same key exists.
	// It reports whether the insertion took place.
	Insert(k Key, v Value) bool
	// Remove deletes the element with the given key, returning its value.
	// The second result reports whether an element was removed.
	Remove(k Key) (Value, bool)
	// Size counts the elements currently in the set. It is linear time,
	// not linearizable under concurrency, and intended for tests and
	// quiescent verification — exactly like ASCYLIB's size().
	Size() int
}

// Instrumented is implemented by every structure in this library. The *Ctx
// variants thread a worker-local perf context through the operation so the
// harness can account memory events and phase timings exactly and without
// contention. Passing a nil context is equivalent to the plain methods.
type Instrumented interface {
	Set
	SearchCtx(c *perf.Ctx, k Key) (Value, bool)
	InsertCtx(c *perf.Ctx, k Key, v Value) bool
	RemoveCtx(c *perf.Ctx, k Key) (Value, bool)
}

// Structure identifies one of the four data-structure families studied in
// the paper.
type Structure string

// The four families of Table 1.
const (
	LinkedList Structure = "linkedlist"
	HashTable  Structure = "hashtable"
	SkipList   Structure = "skiplist"
	BST        Structure = "bst"
)

// Structures returns the four families in the paper's presentation order.
func Structures() []Structure {
	return []Structure{LinkedList, HashTable, SkipList, BST}
}

// Class is the paper's synchronization classification (Table 1).
type Class string

// Synchronization classes: sequential, fully lock-based, (hybrid)
// lock-based, and lock-free.
const (
	Seq            Class = "seq"
	FullyLockBased Class = "flb"
	LockBased      Class = "lb"
	LockFree       Class = "lf"
)

// Config carries construction parameters shared across implementations.
// Use the Option helpers; zero fields are replaced by defaults.
type Config struct {
	// Buckets is the (initial) bucket count for hash tables. CLHT rounds
	// it up to a power of two.
	Buckets int
	// MaxLevel bounds skip-list towers.
	MaxLevel int
	// ReadOnlyFail enables ASCY3: an update whose parse is unsuccessful
	// performs no stores and fails read-only. The "-no" variants in
	// Figure 6 are the same algorithms with this disabled.
	ReadOnlyFail bool
	// AsyncStepLimit bounds traversal length in the unsynchronized
	// sequential structures when they are raced, so that a malformed
	// structure (the paper observes these) cannot hang the harness.
	// 0 means no bound.
	AsyncStepLimit int
	// Recycle enables SSMEM node recycling (ASCY4, §3) in the dynamic-node
	// structures that support it: removed nodes are routed through
	// per-goroutine epoch allocators and reused once provably unreachable,
	// instead of being handed to the Go GC. Off by default to keep the
	// paper-faithful baselines unchanged; structures that recycle expose
	// their allocator counters through the Recycler interface.
	Recycle bool
	// RecycleThreshold is the per-allocator garbage bound before a freed
	// batch is stamped for collection; <= 0 uses ssmem.DefaultThreshold
	// (the paper's 512 locations).
	RecycleThreshold int
	// Shards partitions the key domain across that many independent
	// instances of the structure (the paper's Figure 2 observation that
	// hash tables scale because they are already sharded, applied one
	// level up): each shard is a complete structure with its own locks,
	// nodes, and — with Recycle — its own SSMEM epoch domain, so a hot
	// list or tree becomes S cool ones. 0 or 1 builds a single instance.
	// Sharding destroys structure-level ordering: a sharded set is never
	// natively Ordered, and Range/Min/Max are served by the
	// snapshot-and-sort fallback. Buckets is a total: each shard gets
	// Buckets/Shards (floored at 1).
	Shards int
}

// DefaultConfig returns the defaults used throughout the evaluation:
// 1024 buckets, skip lists up to 2^21 expected elements, ASCY3 on, and a
// generous async traversal bound.
func DefaultConfig() Config {
	return Config{
		Buckets:        1024,
		MaxLevel:       21,
		ReadOnlyFail:   true,
		AsyncStepLimit: 1 << 22,
	}
}

// Validate reports whether the configuration is constructible. New applies
// it after the options, so nonsense like Capacity(0) is rejected before a
// structure is built instead of failing obscurely later.
func (c Config) Validate() error {
	if c.Buckets < 1 {
		return fmt.Errorf("core: Buckets must be >= 1, got %d (Capacity option)", c.Buckets)
	}
	if c.MaxLevel < 1 || c.MaxLevel > 64 {
		return fmt.Errorf("core: MaxLevel must be in [1, 64], got %d", c.MaxLevel)
	}
	if c.AsyncStepLimit < 0 {
		return fmt.Errorf("core: AsyncStepLimit must be >= 0, got %d", c.AsyncStepLimit)
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("core: Shards must be in [0, %d], got %d", MaxShards, c.Shards)
	}
	return nil
}

// MaxShards bounds Config.Shards: far above any useful core count, low
// enough that a typo cannot allocate millions of structures.
const MaxShards = 1 << 10

// Option mutates a Config.
type Option func(*Config)

// Capacity sets the (initial) hash-table bucket count.
func Capacity(n int) Option { return func(c *Config) { c.Buckets = n } }

// MaxLevel sets the maximum skip-list level.
func MaxLevel(n int) Option { return func(c *Config) { c.MaxLevel = n } }

// ReadOnlyFail toggles ASCY3 (read-only unsuccessful updates).
func ReadOnlyFail(b bool) Option { return func(c *Config) { c.ReadOnlyFail = b } }

// RecycleNodes toggles SSMEM node recycling (ASCY4) where supported.
func RecycleNodes(b bool) Option { return func(c *Config) { c.Recycle = b } }

// RecycleThreshold sets the per-allocator garbage bound before collection.
func RecycleThreshold(n int) Option { return func(c *Config) { c.RecycleThreshold = n } }

// Shards partitions the key domain across n independent instances of the
// structure (see Config.Shards); 0 or 1 builds a single instance.
func Shards(n int) Option { return func(c *Config) { c.Shards = n } }

// Recycler is implemented by structures that integrate an SSMEM allocator
// (natively, like ht-urcu-ssmem, or behind Config.Recycle). RecycleStats
// aggregates the allocator counters so the harness and EXPERIMENTS can
// report node reuse rates; a structure built without recycling returns a
// zero Stats.
type Recycler interface {
	RecycleStats() ssmem.Stats
}

// Algorithm is a registry entry: one named CSDS implementation.
type Algorithm struct {
	// Name is the registry key, e.g. "ll-harris", "ht-clht-lf", "bst-tk".
	Name string
	// Structure is the data-structure family.
	Structure Structure
	// Class is the synchronization classification from Table 1.
	Class Class
	// Desc is the one-line description (mirrors Table 1).
	Desc string
	// Safe reports whether the implementation is linearizable under
	// concurrency. The "async" sequential upper bounds set this false.
	Safe bool
	// ASCY flags the implementations the paper identifies as
	// ASCY-compliant (the re-engineered and from-scratch designs).
	ASCY bool
	// Ordered reports that the structure stores elements in key order and
	// implements the Ordered interface natively (sorted linked lists,
	// skip lists, BSTs). Unordered structures still serve Range through
	// the OrderedOf fallback.
	Ordered bool
	// New constructs an instance.
	New func(cfg Config) Set
}

// Capabilities reports which parts of the v2 surface an algorithm implements
// natively; the rest are served by the generic fallbacks in Extend and
// OrderedOf. Probed by constructing a small throwaway instance, so it always
// reflects the implementation rather than hand-maintained flags.
type Capabilities struct {
	// NativeUpdate: Update is atomic against every operation (not just
	// other Updates; see Extend's fallback contract).
	NativeUpdate bool
	// NativeGetOrInsert: get-or-insert in one structure pass.
	NativeGetOrInsert bool
	// NativeForEach: the structure enumerates its own elements.
	NativeForEach bool
	// NativeRange: ordered scans traverse the structure directly instead
	// of snapshot-and-sort.
	NativeRange bool
	// NativeSnapshot: consistent-cut enumeration walks the structure
	// under a single traversal (one epoch bracket where the family
	// recycles) instead of the ForEach fallback. See Snapshotter.
	NativeSnapshot bool
	// NativeSearchBatch: batched reads amortize real per-operation cost
	// (one SSMEM epoch bracket for a whole batch, or shard-grouped routing)
	// instead of looping Search.
	NativeSearchBatch bool
}

// Caps probes the algorithm's native capabilities.
func (a Algorithm) Caps() Capabilities {
	cfg := DefaultConfig()
	cfg.Buckets = 8
	cfg.MaxLevel = 4
	s := a.New(cfg)
	var c Capabilities
	_, c.NativeUpdate = s.(Updater)
	_, c.NativeGetOrInsert = s.(GetOrInserter)
	_, c.NativeForEach = s.(Iterable)
	_, c.NativeRange = s.(Ordered)
	_, c.NativeSnapshot = s.(Snapshotter)
	_, c.NativeSearchBatch = s.(Batcher)
	return c
}

var (
	regMu    sync.RWMutex
	registry = map[string]Algorithm{}
)

// Register adds an algorithm to the registry. It panics on duplicate names
// or a nil constructor; registration happens in package init functions, so
// misuse is a programming error.
func Register(a Algorithm) {
	if a.New == nil {
		panic("core: Register with nil constructor: " + a.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[a.Name]; dup {
		panic("core: duplicate algorithm " + a.Name)
	}
	registry[a.Name] = a
}

// Get looks up an algorithm by name.
func Get(name string) (Algorithm, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// New constructs an instance of the named algorithm with the given options
// applied over DefaultConfig.
func New(name string, opts ...Option) (Set, error) {
	a, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", name)
	}
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid configuration for %q: %w", name, err)
	}
	if cfg.Shards > 1 {
		return newShardedSet(a, cfg), nil
	}
	return a.New(cfg), nil
}

// NewExtended constructs the named algorithm and wraps it with the full v2
// operation surface (Extend): native methods where the implementation has
// them, generic fallbacks elsewhere.
func NewExtended(name string, opts ...Option) (Extended, error) {
	s, err := New(name, opts...)
	if err != nil {
		return nil, err
	}
	return Extend(s), nil
}

// MustNew is New for contexts where the name is a compile-time constant.
func MustNew(name string, opts ...Option) Set {
	s, err := New(name, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every registered algorithm sorted by structure then name.
func All() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Structure != out[j].Structure {
			return out[i].Structure < out[j].Structure
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByStructure returns the registered algorithms of one family, sorted by
// name.
func ByStructure(s Structure) []Algorithm {
	var out []Algorithm
	for _, a := range All() {
		if a.Structure == s {
			out = append(out, a)
		}
	}
	return out
}
