package core

import (
	"strings"
	"testing"
)

type fakeSet struct{}

func (fakeSet) Search(Key) (Value, bool) { return 0, false }
func (fakeSet) Insert(Key, Value) bool   { return false }
func (fakeSet) Remove(Key) (Value, bool) { return 0, false }
func (fakeSet) Size() int                { return 0 }

func TestRegistryRoundTrip(t *testing.T) {
	Register(Algorithm{
		Name:      "test-fake",
		Structure: LinkedList,
		Class:     Seq,
		Desc:      "test entry",
		New:       func(cfg Config) Set { return fakeSet{} },
	})
	a, ok := Get("test-fake")
	if !ok || a.Desc != "test entry" {
		t.Fatal("registered algorithm not found")
	}
	s, err := New("test-fake")
	if err != nil || s == nil {
		t.Fatalf("New failed: %v", err)
	}
	if _, err := New("no-such-algo"); err == nil {
		t.Fatal("New on unknown name did not error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Algorithm{Name: "test-dup", New: func(Config) Set { return fakeSet{} }})
	Register(Algorithm{Name: "test-dup", New: func(Config) Set { return fakeSet{} }})
}

func TestNilConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil constructor did not panic")
		}
	}()
	Register(Algorithm{Name: "test-nil"})
}

func TestOptions(t *testing.T) {
	cfg := DefaultConfig()
	for _, o := range []Option{Capacity(9), MaxLevel(5), ReadOnlyFail(false)} {
		o(&cfg)
	}
	if cfg.Buckets != 9 || cfg.MaxLevel != 5 || cfg.ReadOnlyFail {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestDefaultsSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Buckets <= 0 || cfg.MaxLevel <= 0 || !cfg.ReadOnlyFail || cfg.AsyncStepLimit <= 0 {
		t.Fatalf("suspicious defaults: %+v", cfg)
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Structure > b.Structure || (a.Structure == b.Structure && a.Name >= b.Name) {
			t.Fatalf("All() not sorted at %d: %s/%s then %s/%s", i, a.Structure, a.Name, b.Structure, b.Name)
		}
	}
}

func TestByStructureFilters(t *testing.T) {
	for _, s := range Structures() {
		for _, a := range ByStructure(s) {
			if a.Structure != s {
				t.Fatalf("ByStructure(%s) returned %s algorithm %s", s, a.Structure, a.Name)
			}
		}
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(error).Error(), "unknown") {
			t.Fatal("MustNew on unknown name did not panic usefully")
		}
	}()
	MustNew("definitely-not-registered")
}
