// Extended operation surface over the paper's basic CSDS interface.
//
// The paper's interface (§2) is search/insert/remove over 64-bit words,
// which reproduces the evaluation but is too narrow for building services on
// top of the library: real workloads need read-modify-write primitives and
// ordered scans. This file adds the v2 surface in two interfaces — Extended
// (Update, GetOrInsert, ForEach) and Ordered (Range, Min, Max) — together
// with correct generic fallbacks so that every registered algorithm serves
// every operation, natively or not. The registry's Capabilities report which
// path an algorithm takes, so callers and the harness can pick native
// implementations when the operation is on a hot path.
package core

import (
	"sort"
	"sync"
)

// UpdateFunc is one read-modify-write step. It receives the current value of
// the key (present reports whether the key is in the set) and returns the
// value to store and whether the key should be present afterwards:
// (v, true) sets the key to v (inserting if absent); (_, false) removes the
// key if present. An UpdateFunc must be pure: implementations may invoke it
// more than once while resolving conflicts, and only the last invocation
// takes effect.
type UpdateFunc func(old Value, present bool) (Value, bool)

// Updater is the native read-modify-write interface.
type Updater interface {
	// Update atomically transforms the entry for k with f. It returns the
	// value associated with k after the update and whether k is present.
	// When the update removes the entry, the removed value is returned
	// with present == false.
	Update(k Key, f UpdateFunc) (Value, bool)
}

// GetOrInserter is the native get-or-insert interface.
type GetOrInserter interface {
	// GetOrInsert returns the existing value for k (inserted == false),
	// or inserts v and returns it (inserted == true). Exactly one of any
	// set of concurrent GetOrInsert calls for an absent key inserts.
	GetOrInsert(k Key, v Value) (v2 Value, inserted bool)
}

// Iterable is the native enumeration interface. Every structure in this
// library implements it.
type Iterable interface {
	// ForEach calls yield for every element until yield returns false.
	// Like Size, the traversal is linear time and not linearizable under
	// concurrency: it observes each element at some point during the
	// call, but not a single atomic snapshot.
	ForEach(yield func(k Key, v Value) bool)
}

// Extended is the v2 operation surface: the paper's set interface plus
// read-modify-write, get-or-insert, enumeration, and batched reads. Obtain
// one for any registered algorithm with Extend (or NewExtended); SearchBatch
// is served natively where the structure amortizes something real (see
// Batcher) and by the serial fallback elsewhere.
type Extended interface {
	Set
	Updater
	GetOrInserter
	Iterable
	Batcher
}

// Ordered is the sorted-scan interface, implemented natively by the ordered
// families (sorted linked lists, skip lists, BSTs) and served through a
// sort-on-read fallback for the hash tables via OrderedOf.
type Ordered interface {
	// Range calls yield for the elements with keys in [lo, hi] in
	// strictly ascending key order and returns the number of elements
	// yielded. The scan is "snapshot-consistent enough": keys are sorted
	// and duplicate-free, every element present for the whole call is
	// yielded, and elements concurrently inserted or removed may or may
	// not appear.
	Range(lo, hi Key, yield func(k Key, v Value) bool) int
	// Min returns the smallest element, if any.
	Min() (Key, Value, bool)
	// Max returns the largest element, if any. Max may take linear time:
	// the singly-linked structures scan to the end, and the tree
	// implementations currently reuse their in-order iterator rather
	// than a rightmost descent.
	Max() (Key, Value, bool)
}

// updateStripes is the lock-stripe count of the fallback Update path.
const updateStripes = 64

// extWrap serves the Extended surface over any Set, using native methods
// when the implementation provides them and generic fallbacks otherwise.
type extWrap struct {
	Set
	u  Updater
	g  GetOrInserter
	it Iterable
	b  Batcher
	sn Snapshotter
	mu [updateStripes]sync.Mutex
}

// Extend returns s itself when it natively implements the whole Extended
// surface, and otherwise wraps it, serving each operation natively when the
// implementation provides it and through a generic fallback when not.
//
// Fallback atomicity contract: Update calls through the same wrapper are
// atomic with respect to each other (they serialize on an internal lock
// stripe), so read-modify-write sequences such as counters are exact as long
// as every writer of the key uses Update through the same Extended value.
// Mixing fallback Update with plain Insert/Remove on the same key stays
// linearizable per primitive, but the plain writer's value may be consumed
// by the in-flight update (as with ConcurrentMap.compute in Java). Because
// the fallback replaces a value by Remove-then-Insert, concurrent readers
// (Search, Range) can observe the key briefly absent while its value is
// being replaced. Native implementations (see Capabilities) are atomic
// against all operations and update in place with no absence window.
func Extend(s Set) Extended {
	if e, ok := s.(Extended); ok {
		return e
	}
	w := &extWrap{Set: s}
	w.u, _ = s.(Updater)
	w.g, _ = s.(GetOrInserter)
	w.it, _ = s.(Iterable)
	w.b, _ = s.(Batcher)
	w.sn, _ = s.(Snapshotter)
	if o, ok := s.(Ordered); ok {
		// Keep the native ordered surface visible through the wrapper,
		// so OrderedOf(Extend(s)) does not silently downgrade a sorted
		// structure to the snapshot-and-sort fallback.
		return &orderedExtWrap{extWrap: w, ord: o}
	}
	return w
}

// orderedExtWrap is extWrap for natively ordered structures: the Ordered
// surface delegates straight to the implementation.
type orderedExtWrap struct {
	*extWrap
	ord Ordered
}

func (w *orderedExtWrap) Range(lo, hi Key, yield func(Key, Value) bool) int {
	return w.ord.Range(lo, hi, yield)
}

func (w *orderedExtWrap) Min() (Key, Value, bool) { return w.ord.Min() }

func (w *orderedExtWrap) Max() (Key, Value, bool) { return w.ord.Max() }

// Fallback wraps s like Extend but ignores native Update and GetOrInsert
// implementations, always taking the generic paths. It exists so the
// conformance suite can check fallback-vs-native parity; library code should
// use Extend.
func Fallback(s Set) Extended {
	w := &extWrap{Set: s}
	w.it, _ = s.(Iterable)
	return w
}

func (w *extWrap) stripe(k Key) *sync.Mutex {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return &w.mu[h>>(64-6)] // top 6 bits: updateStripes == 64
}

// Update implements Updater. The fallback takes a lock stripe (see Extend's
// atomicity contract) and replays f until the transition applies cleanly
// against the set's own atomic primitives.
func (w *extWrap) Update(k Key, f UpdateFunc) (Value, bool) {
	if w.u != nil {
		return w.u.Update(k, f)
	}
	mu := w.stripe(k)
	mu.Lock()
	defer mu.Unlock()
	for {
		old, present := w.Search(k)
		nv, keep := f(old, present)
		if !present {
			if !keep {
				return 0, false
			}
			if w.Insert(k, nv) {
				return nv, true
			}
			continue // lost to a concurrent plain insert; re-read
		}
		if keep && nv == old {
			return nv, true // no-op transition: nothing to write
		}
		cur, ok := w.Remove(k)
		if !ok {
			continue // a concurrent remover beat us; re-read
		}
		if cur != old {
			// A plain writer replaced the value between the search
			// and the remove; apply f to the authoritative value.
			nv, keep = f(cur, true)
		}
		for {
			if !keep {
				return cur, false
			}
			if w.Insert(k, nv) {
				return nv, true
			}
			// A plain insert slipped into the remove window; fold
			// its value into this update.
			cur, ok = w.Remove(k)
			if !ok {
				continue // and it vanished again; retry our insert
			}
			nv, keep = f(cur, true)
		}
	}
}

// SearchBatch implements Batcher, so batched reads survive the Extend
// wrapper: native where the implementation amortizes (single epoch bracket,
// shard grouping), the serial fallback elsewhere. The wrapper always
// answers — like Search itself, batched reads have no capability gap.
func (w *extWrap) SearchBatch(keys []Key, vals []Value, found []bool) {
	if w.b != nil {
		w.b.SearchBatch(keys, vals, found)
		return
	}
	serialSearchBatch(w.Set, keys, vals, found)
}

// GetOrInsert implements GetOrInserter. The fallback loop needs no stripe:
// insert-once follows from Insert's own atomicity.
func (w *extWrap) GetOrInsert(k Key, v Value) (Value, bool) {
	if w.g != nil {
		return w.g.GetOrInsert(k, v)
	}
	for {
		if got, ok := w.Search(k); ok {
			return got, false
		}
		if w.Insert(k, v) {
			return v, true
		}
	}
}

// ForEach implements Iterable. There is no generic way to enumerate an
// opaque Set, so a structure that lacks a native ForEach cannot be extended;
// every structure in this library has one.
func (w *extWrap) ForEach(yield func(Key, Value) bool) {
	if w.it == nil {
		panic("core: set does not implement Iterable; ForEach has no generic fallback")
	}
	w.it.ForEach(yield)
}

// OrderedOf returns an ordered view of s: s itself when the implementation
// is natively ordered (native reports true), else a fallback that snapshots
// the structure via ForEach and sorts (native false). The fallback costs
// O(n log n) per Range/Min/Max call; it returns nil only for a Set outside
// this library that implements neither Ordered nor Iterable.
func OrderedOf(s Set) (o Ordered, native bool) {
	if o, ok := s.(Ordered); ok {
		return o, true
	}
	if it, ok := s.(Iterable); ok {
		return sortedView{it}, false
	}
	return nil, false
}

type kvPair struct {
	k Key
	v Value
}

// sortedView serves Ordered over any Iterable by collect-and-sort.
type sortedView struct{ it Iterable }

func (s sortedView) Range(lo, hi Key, yield func(Key, Value) bool) int {
	if hi < lo {
		return 0
	}
	var items []kvPair
	s.it.ForEach(func(k Key, v Value) bool {
		if k >= lo && k <= hi {
			items = append(items, kvPair{k, v})
		}
		return true
	})
	sort.Slice(items, func(i, j int) bool { return items[i].k < items[j].k })
	n := 0
	for i, e := range items {
		if i > 0 && e.k == items[i-1].k {
			continue // concurrent reinsertion can snapshot a key twice
		}
		n++
		if !yield(e.k, e.v) {
			break
		}
	}
	return n
}

func (s sortedView) Min() (Key, Value, bool) {
	var mk Key
	var mv Value
	found := false
	s.it.ForEach(func(k Key, v Value) bool {
		if !found || k < mk {
			mk, mv, found = k, v, true
		}
		return true
	})
	return mk, mv, found
}

func (s sortedView) Max() (Key, Value, bool) {
	var mk Key
	var mv Value
	found := false
	s.it.ForEach(func(k Key, v Value) bool {
		if !found || k > mk {
			mk, mv, found = k, v, true
		}
		return true
	})
	return mk, mv, found
}

// AscendFunc is the iterator shape the ordered implementations expose
// internally: visit elements with keys >= lo in ascending order until yield
// returns false. The helpers below derive the whole Ordered + Iterable
// surface from it.
type AscendFunc func(lo Key, yield func(k Key, v Value) bool)

// RangeAscend builds Ordered.Range from an ascend iterator. It enforces the
// Range contract — strictly ascending, duplicate-free, within [lo, hi] —
// even when concurrent structural changes (e.g. a tree rotation mid-walk)
// would make the raw traversal misbehave.
func RangeAscend(ascend AscendFunc, lo, hi Key, yield func(Key, Value) bool) int {
	if hi < lo {
		return 0
	}
	n := 0
	var last Key
	ascend(lo, func(k Key, v Value) bool {
		if k > hi {
			return false
		}
		if k < lo || (n > 0 && k <= last) {
			return true
		}
		last = k
		n++
		return yield(k, v)
	})
	return n
}

// MinAscend builds Ordered.Min from an ascend iterator.
func MinAscend(ascend AscendFunc) (Key, Value, bool) {
	var mk Key
	var mv Value
	found := false
	ascend(0, func(k Key, v Value) bool {
		mk, mv, found = k, v, true
		return false
	})
	return mk, mv, found
}

// MaxAscend builds Ordered.Max from an ascend iterator by scanning to the
// last element.
func MaxAscend(ascend AscendFunc) (Key, Value, bool) {
	var mk Key
	var mv Value
	found := false
	ascend(0, func(k Key, v Value) bool {
		if !found || k > mk {
			mk, mv, found = k, v, true
		}
		return true
	})
	return mk, mv, found
}

// ForEachAscend builds Iterable.ForEach from an ascend iterator.
func ForEachAscend(ascend AscendFunc, yield func(Key, Value) bool) {
	ascend(0, yield)
}

// OrderedVia implements the whole Iterable + Ordered surface over one
// AscendFunc. The ordered implementations embed it and point Ascend at
// their own iterator in the constructor, so the four delegation methods
// exist once here instead of once per structure.
type OrderedVia struct {
	Ascend AscendFunc
}

// ForEach implements Iterable.
func (o OrderedVia) ForEach(yield func(Key, Value) bool) { ForEachAscend(o.Ascend, yield) }

// Range implements Ordered.
func (o OrderedVia) Range(lo, hi Key, yield func(Key, Value) bool) int {
	return RangeAscend(o.Ascend, lo, hi, yield)
}

// Min implements Ordered.
func (o OrderedVia) Min() (Key, Value, bool) { return MinAscend(o.Ascend) }

// Max implements Ordered. Max may take linear time: singly-linked
// structures scan to the end, and the trees currently reuse their in-order
// iterator rather than a rightmost descent.
func (o OrderedVia) Max() (Key, Value, bool) { return MaxAscend(o.Ascend) }
