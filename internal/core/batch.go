// Batched reads: the amortization capability of the v2 surface.
//
// The paper's argument (§2, §7) is that a search structure's scaling is
// limited by the fixed synchronization cost around each operation, not by
// the search itself. For the SSMEM-recycling structures that fixed cost is
// the per-operation epoch bracket (allocator lease + OpStart/OpEnd); for a
// sharded set it is the route. A caller that already holds n keys — a
// pipelined server batch, a multi-get, an analytical scan — can hand the
// structure the whole set at once and pay those costs once per batch (or
// once per shard group) instead of once per key. Batcher is that contract;
// BatcherOf serves it for every registered algorithm, natively where the
// implementation amortizes something real and through a serial fallback
// elsewhere, mirroring how Extend and OrderedOf treat the rest of the v2
// surface.
package core

import "sync"

// Batcher is the batched-read capability. A batch is read-only and carries
// no atomicity across its keys: each lookup is linearizable on its own,
// exactly as n independent Search calls would be — the batch buys
// amortization, never a snapshot.
type Batcher interface {
	// SearchBatch looks up every keys[i], storing the value in vals[i] and
	// whether it was found in found[i]. vals and found must each have at
	// least len(keys) elements; keys may contain duplicates.
	SearchBatch(keys []Key, vals []Value, found []bool)
}

// serialSearchBatch is the generic fallback: n independent searches.
func serialSearchBatch(s Set, keys []Key, vals []Value, found []bool) {
	for i, k := range keys {
		vals[i], found[i] = s.Search(k)
	}
}

// serialBatcher adapts any Set to Batcher through the fallback.
type serialBatcher struct{ s Set }

func (b serialBatcher) SearchBatch(keys []Key, vals []Value, found []bool) {
	serialSearchBatch(b.s, keys, vals, found)
}

// BatcherOf returns a batched-read view of s: s itself when the
// implementation batches natively (native true), else the serial fallback
// (native false). Unlike ForEach, every Set can be batch-read.
func BatcherOf(s Set) (b Batcher, native bool) {
	if b, ok := s.(Batcher); ok {
		return b, true
	}
	return serialBatcher{s}, false
}

// --- sharded batching ---------------------------------------------------

// shardScratch is the reusable grouping state of shardedSet.SearchBatch:
// per-key routes plus one shard group's gathered keys and scattered
// results. Pooled because a sharded set is shared by many goroutines and
// cannot hold per-instance scratch.
type shardScratch struct {
	sh    []int32
	keys  []Key
	idx   []int32
	vals  []Value
	found []bool
}

var shardScratchPool = sync.Pool{New: func() any { return &shardScratch{} }}

// grow sizes the scratch for an n-key batch.
func (sc *shardScratch) grow(n int) {
	if cap(sc.sh) < n {
		sc.sh = make([]int32, n)
		sc.keys = make([]Key, 0, n)
		sc.idx = make([]int32, 0, n)
		sc.vals = make([]Value, n)
		sc.found = make([]bool, n)
	}
	sc.sh = sc.sh[:n]
}

// SearchBatch implements Batcher for the sharded router: keys are routed
// once, then each distinct shard's keys are gathered and handed to that
// shard as one contiguous sub-batch — so a recycling shard pays one epoch
// bracket per group, and every shard's memory is walked consecutively. The
// results scatter back into request order.
func (s *shardedSet) SearchBatch(keys []Key, vals []Value, found []bool) {
	n := len(keys)
	if n == 0 {
		return
	}
	sc := shardScratchPool.Get().(*shardScratch)
	sc.grow(n)
	for i, k := range keys {
		sc.sh[i] = int32(s.shardOf(k))
	}
	for i := 0; i < n; i++ {
		if sc.sh[i] < 0 {
			continue // already resolved in an earlier shard group
		}
		sh := sc.sh[i]
		sc.keys, sc.idx = sc.keys[:0], sc.idx[:0]
		for j := i; j < n; j++ {
			if sc.sh[j] == sh {
				sc.keys = append(sc.keys, keys[j])
				sc.idx = append(sc.idx, int32(j))
				sc.sh[j] = -1
			}
		}
		g := len(sc.keys)
		// Extended embeds Batcher, so the shard batches natively or
		// through its wrapper's serial fallback — its call, not ours.
		s.shards[sh].SearchBatch(sc.keys, sc.vals[:g], sc.found[:g])
		for t, j := range sc.idx {
			vals[j], found[j] = sc.vals[t], sc.found[t]
		}
	}
	shardScratchPool.Put(sc)
}
