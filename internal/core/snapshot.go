// Snapshotter: the consistent-cut enumeration capability.
//
// A snapshot differs from a plain ForEach in what it promises under
// concurrency. ForEach observes each element "at some point during the
// call"; Snapshot promises a *cut*: one traversal in which every yielded
// (key, value) pair was simultaneously live at some instant during the
// call, no key is yielded twice, and — for the ordered families — the walk
// runs under a single epoch bracket, so no node it touches is recycled
// mid-traversal. That is exactly the guarantee a persistence layer needs:
// each record in the snapshot file was a real state of its key inside the
// snapshot window.
//
// The ordered families (sorted lists, skip lists, BSTs) get this natively:
// their Ascend iterators are already single-epoch-bracket walks (lists and
// skip lists pin the SSMEM domain for the whole traversal; the BSTs are
// safe concurrent traversals over immutable-key nodes), so OrderedVia —
// which every one of them embeds — serves Snapshot straight through
// Ascend. The hash tables fall back to ForEach, which still observes each
// bucket at one instant; callers that need the stronger per-structure
// bracket should prefer a natively Snapshotter backend (Caps reports
// which is which, like Ordered and Batcher).
package core

// Snapshotter is the consistent-cut enumeration interface.
type Snapshotter interface {
	// Snapshot calls yield for every element until yield returns false.
	// Each yielded pair was live at some instant during the call and no
	// key is yielded twice. Enumeration order is unspecified (the ordered
	// families happen to ascend).
	Snapshot(yield func(k Key, v Value) bool)
}

// iterSnapshotter adapts any Iterable to Snapshotter through the fallback:
// ForEach already observes each element at one instant and visits each key
// at most once, which satisfies the cut contract per element — it just
// lacks the ordered families' whole-walk epoch bracket.
type iterSnapshotter struct{ it Iterable }

func (s iterSnapshotter) Snapshot(yield func(Key, Value) bool) { s.it.ForEach(yield) }

// SnapshotterOf returns a consistent-cut enumerator for s and reports
// whether it is the structure's own (native == true) or the ForEach
// fallback. Mirrors BatcherOf. The second return is false for sets that
// implement neither interface (no structure in this library does — every
// registered algorithm is at least Iterable — but out-of-tree sets may);
// in that case the Snapshotter is nil.
func SnapshotterOf(s Set) (sn Snapshotter, native bool) {
	if sn, ok := s.(Snapshotter); ok {
		return sn, true
	}
	if it, ok := s.(Iterable); ok {
		return iterSnapshotter{it}, false
	}
	return nil, false
}

// Snapshot serves the consistent-cut enumeration over the single Ascend
// walk. Every ordered structure in the library embeds OrderedVia, so the
// whole ordered matrix — lists, skip lists, BSTs — gains native Snapshotter
// here: one iterator pass, one epoch bracket where the family recycles.
func (o OrderedVia) Snapshot(yield func(Key, Value) bool) { o.Ascend(0, yield) }

// Snapshot enumerates shard by shard, taking each shard's own cut. The
// combined enumeration is a per-shard cut, not a cross-shard atomic
// snapshot — the same composition the server store documents for its
// sharded keyspace.
func (s *shardedSet) Snapshot(yield func(k Key, v Value) bool) {
	for _, raw := range s.raw {
		sn, _ := SnapshotterOf(raw)
		stopped := false
		sn.Snapshot(func(k Key, v Value) bool {
			if !yield(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Snapshot on the generic wrapper forwards to the implementation's own cut
// when it has one and falls back to ForEach otherwise, so SnapshotterOf
// never downgrades a native structure that reaches it wrapped. (Snapshotter
// is deliberately not part of the Extended interface: it is a cold-path
// capability, probed on demand.)
func (w *extWrap) Snapshot(yield func(Key, Value) bool) {
	if w.sn != nil {
		w.sn.Snapshot(yield)
		return
	}
	w.ForEach(yield)
}
