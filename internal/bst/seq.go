package bst

import (
	"repro/internal/core"
	"repro/internal/perf"
)

// ---------------------------------------------------------------------------
// Sequential internal BST (async-int).

type siNode struct {
	key         core.Key
	val         core.Value
	left, right *siNode
}

// SeqInt is a textbook internal BST. Shared unsynchronized it is the
// async-int upper bound; traversals are bounded by AsyncStepLimit because
// racing updates can malform the tree.
type SeqInt struct {
	core.OrderedVia
	root  *siNode // sentinel: real tree hangs off root.left
	limit int
}

// NewSeqInt returns an empty sequential internal BST.
func NewSeqInt(cfg core.Config) *SeqInt {
	s := &SeqInt{root: &siNode{key: sentinelKey}, limit: cfg.AsyncStepLimit}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// SearchCtx implements core.Instrumented.
func (t *SeqInt) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	curr := t.root.left
	steps := 0
	for curr != nil {
		c.Inc(perf.EvTraverse)
		if k == curr.key {
			return curr.val, true
		}
		if k < curr.key {
			curr = curr.left
		} else {
			curr = curr.right
		}
		if steps++; t.limit > 0 && steps > t.limit {
			return 0, false
		}
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (t *SeqInt) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	c.ParseBegin()
	pred, curr := t.root, t.root.left
	goLeft := true
	steps := 0
	for curr != nil {
		c.Inc(perf.EvTraverse)
		if k == curr.key {
			c.ParseEnd()
			return false
		}
		pred = curr
		if k < curr.key {
			curr, goLeft = curr.left, true
		} else {
			curr, goLeft = curr.right, false
		}
		if steps++; t.limit > 0 && steps > t.limit {
			c.ParseEnd()
			return false
		}
	}
	c.ParseEnd()
	n := &siNode{key: k, val: v}
	if goLeft {
		pred.left = n
	} else {
		pred.right = n
	}
	c.Inc(perf.EvStore)
	return true
}

// RemoveCtx implements core.Instrumented. Standard internal deletion: a node
// with two children is replaced by its in-order successor's key/value.
func (t *SeqInt) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	c.ParseBegin()
	pred, curr := t.root, t.root.left
	goLeft := true
	steps := 0
	for curr != nil && curr.key != k {
		c.Inc(perf.EvTraverse)
		pred = curr
		if k < curr.key {
			curr, goLeft = curr.left, true
		} else {
			curr, goLeft = curr.right, false
		}
		if steps++; t.limit > 0 && steps > t.limit {
			curr = nil
		}
	}
	c.ParseEnd()
	if curr == nil {
		return 0, false
	}
	v := curr.val
	// Children are read once into locals: when this tree is raced (the
	// async-int upper bound), re-reading a field can observe another
	// thread's nil and crash rather than merely misbehave.
	cl, cr := curr.left, curr.right
	if cl != nil && cr != nil {
		// Two children: splice the in-order successor.
		sPred, succ := curr, cr
		for {
			sl := succ.left
			if sl == nil {
				break
			}
			c.Inc(perf.EvTraverse)
			sPred, succ = succ, sl
			if steps++; t.limit > 0 && steps > t.limit {
				return 0, false // malformed under races; bail out
			}
		}
		curr.key, curr.val = succ.key, succ.val
		c.Inc(perf.EvStore)
		if sPred == curr {
			sPred.right = succ.right
		} else {
			sPred.left = succ.right
		}
		c.Inc(perf.EvStore)
		return v, true
	}
	child := cl
	if child == nil {
		child = cr
	}
	if goLeft {
		pred.left = child
	} else {
		pred.right = child
	}
	c.Inc(perf.EvStore)
	return v, true
}

// Search looks up k.
func (t *SeqInt) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *SeqInt) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *SeqInt) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts elements iteratively (bounded). Quiescent use only.
func (t *SeqInt) Size() int {
	n, steps := 0, 0
	stack := []*siNode{t.root.left}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd == nil {
			continue
		}
		n++
		if steps++; t.limit > 0 && steps > t.limit {
			break
		}
		stack = append(stack, nd.left, nd.right)
	}
	return n
}

// ---------------------------------------------------------------------------
// Sequential external BST (async-ext).

type seNode struct {
	key         core.Key
	val         core.Value
	left, right *seNode // nil for leaves
}

func (n *seNode) leaf() bool { return n.left == nil }

// SeqExt is a textbook external BST (elements in leaves, routers internal);
// the async-ext upper bound when shared unsynchronized.
type SeqExt struct {
	core.OrderedVia
	root  *seNode // sentinel router; tree hangs off root.left
	limit int
}

// NewSeqExt returns an empty sequential external BST.
func NewSeqExt(cfg core.Config) *SeqExt {
	root := &seNode{key: sentinelKey}
	root.left = &seNode{key: sentinelKey} // sentinel leaf
	root.right = &seNode{key: sentinelKey}
	s := &SeqExt{root: root, limit: cfg.AsyncStepLimit}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// parse returns (grandparent, parent, leaf) for k.
func (t *SeqExt) parse(c *perf.Ctx, k core.Key) (gp, p, l *seNode) {
	gp, p, l = nil, t.root, t.root.left
	steps := 0
	for !l.leaf() {
		c.Inc(perf.EvTraverse)
		gp, p = p, l
		if k < l.key {
			l = l.left
		} else {
			l = l.right
		}
		if steps++; t.limit > 0 && steps > t.limit {
			return gp, p, &seNode{key: sentinelKey}
		}
	}
	return gp, p, l
}

// SearchCtx implements core.Instrumented.
func (t *SeqExt) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	_, _, l := t.parse(c, k)
	if l.key == k {
		return l.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (t *SeqExt) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	c.ParseBegin()
	_, p, l := t.parse(c, k)
	c.ParseEnd()
	if l.key == k {
		return false
	}
	nl := &seNode{key: k, val: v}
	router := &seNode{}
	if k < l.key {
		router.key, router.left, router.right = l.key, nl, l
	} else {
		router.key, router.left, router.right = k, l, nl
	}
	if l == p.left {
		p.left = router
	} else {
		p.right = router
	}
	c.Inc(perf.EvStore)
	return true
}

// RemoveCtx implements core.Instrumented.
func (t *SeqExt) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	c.ParseBegin()
	gp, p, l := t.parse(c, k)
	c.ParseEnd()
	if l.key != k {
		return 0, false
	}
	sibling := p.left
	if l == p.left {
		sibling = p.right
	}
	if gp == nil {
		t.root.left = sibling
	} else if p == gp.left {
		gp.left = sibling
	} else {
		gp.right = sibling
	}
	c.Inc(perf.EvStore)
	return l.val, true
}

// Search looks up k.
func (t *SeqExt) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *SeqExt) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *SeqExt) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts non-sentinel leaves. Quiescent use only.
func (t *SeqExt) Size() int {
	n, steps := 0, 0
	stack := []*seNode{t.root.left}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd == nil {
			continue
		}
		if nd.leaf() {
			if nd.key != sentinelKey {
				n++
			}
			continue
		}
		if steps++; t.limit > 0 && steps > t.limit {
			break
		}
		stack = append(stack, nd.left, nd.right)
	}
	return n
}
