package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// Drachsler, Vechev & Yahav (PPoPP'14): an internal BST with *logical
// ordering* — every node is also a member of a sorted doubly-linked list
// (pred/succ). Searches traverse the tree and then confirm the answer on
// the list, which makes them effectively sequential reads; updates take the
// list locks (succLock of the predecessor, succLock of the node) plus tree
// locks for the physical restructuring, which is where the paper's
// "acquires ≥ 3 locks for removals" (Table 1, Figure 7) comes from.
//
// Physical maintenance notes: like the original, a two-child removal
// transplants the successor *node* into the removed position (keys never
// move between nodes); tree locks are taken with try-lock + full release on
// conflict, so lock acquisition order cannot deadlock. Rebalancing is not
// implemented (the original's relaxed balancing is orthogonal to its
// synchronization, and workloads here use uniform random keys).
type drNode struct {
	key    core.Key
	val    core.Value
	left   atomic.Pointer[drNode]
	right  atomic.Pointer[drNode]
	parent atomic.Pointer[drNode]
	pred   atomic.Pointer[drNode]
	succ   atomic.Pointer[drNode]

	treeLock locks.TAS
	succLock locks.TAS
	marked   atomic.Bool
}

// Drachsler is the drachsler tree of Table 1.
type Drachsler struct {
	core.OrderedVia
	head *drNode // list head, key 0; also the tree root sentinel
	tail *drNode // list tail, key MaxUint64
}

// NewDrachsler returns an empty tree.
func NewDrachsler(cfg core.Config) *Drachsler {
	head := &drNode{key: 0}
	tail := &drNode{key: sentinelKey}
	head.succ.Store(tail)
	tail.pred.Store(head)
	head.right.Store(tail)
	tail.parent.Store(head)
	s := &Drachsler{head: head, tail: tail}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// locate runs the tree traversal and then the logical-ordering walk,
// returning the list node with the smallest key >= k.
func (t *Drachsler) locate(c *perf.Ctx, k core.Key) *drNode {
	// Phase 1: plain BST descent (may be momentarily inconsistent under
	// concurrent transplants; phase 2 repairs that).
	curr := t.head
	for {
		c.Inc(perf.EvTraverse)
		var next *drNode
		if k == curr.key {
			break
		} else if k < curr.key {
			next = curr.left.Load()
		} else {
			next = curr.right.Load()
		}
		if next == nil {
			break
		}
		curr = next
	}
	// Phase 2: logical ordering. Walk back while too big, forward while
	// too small; the list is the ground truth.
	for k < curr.key {
		c.Inc(perf.EvTraverse)
		curr = curr.pred.Load()
	}
	for k > curr.key {
		c.Inc(perf.EvTraverse)
		curr = curr.succ.Load()
	}
	return curr
}

// SearchCtx implements core.Instrumented: tree descent plus list
// confirmation; no stores, no locks.
func (t *Drachsler) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	n := t.locate(c, k)
	if n.key == k && !n.marked.Load() {
		return n.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented. Two lock acquisitions on the
// uncontended path: pred's succLock plus one treeLock.
func (t *Drachsler) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		pos := t.locate(c, k)
		c.ParseEnd()
		if pos.key == k && !pos.marked.Load() {
			return false // ASCY3
		}
		// p must be the live node with the largest key < k.
		p := pos
		for p.key >= k {
			p = p.pred.Load()
		}
		p.succLock.Lock()
		c.Inc(perf.EvLock)
		if p.marked.Load() {
			p.succLock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		s := p.succ.Load()
		if s.key == k {
			p.succLock.Unlock()
			return false
		}
		if p.key >= k || s.key < k {
			p.succLock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		// Tree insertion point: for consecutive (p, s), either p has no
		// right child or s has no left child.
		parent := p
		left := false
		if p.right.Load() != nil {
			parent, left = s, true
		}
		parent.treeLock.Lock()
		c.Inc(perf.EvLock)
		var slot *atomic.Pointer[drNode]
		if left {
			slot = &parent.left
		} else {
			slot = &parent.right
		}
		if parent.marked.Load() || slot.Load() != nil {
			parent.treeLock.Unlock()
			p.succLock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		n := &drNode{key: k, val: v}
		n.pred.Store(p)
		n.succ.Store(s)
		n.parent.Store(parent)
		slot.Store(n)
		c.Inc(perf.EvStore)
		// List insertion is the linearization point.
		s.pred.Store(n)
		p.succ.Store(n)
		c.Inc(perf.EvStore)
		parent.treeLock.Unlock()
		p.succLock.Unlock()
		return true
	}
}

// RemoveCtx implements core.Instrumented. Lock acquisitions on the
// uncontended path: pred succLock + node succLock + ≥2 tree locks.
func (t *Drachsler) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		c.ParseBegin()
		n := t.locate(c, k)
		c.ParseEnd()
		if n.key != k || n.marked.Load() {
			return 0, false // ASCY3
		}
		p := n.pred.Load()
		p.succLock.Lock()
		c.Inc(perf.EvLock)
		if p.marked.Load() || p.succ.Load() != n {
			p.succLock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		n.succLock.Lock()
		c.Inc(perf.EvLock)
		// n cannot be marked: marking n requires p.succLock.
		n.marked.Store(true) // logical removal: linearization point
		c.Inc(perf.EvStore)
		s := n.succ.Load()
		s.pred.Store(p)
		p.succ.Store(s)
		c.Inc(perf.EvStore)
		n.succLock.Unlock()
		p.succLock.Unlock()
		t.physicalRemove(c, n)
		return n.val, true
	}
}

// physicalRemove excises the marked node from the tree. All structural
// writes happen with the treeLocks of every touched node held; try-lock with
// full rollback avoids deadlock.
func (t *Drachsler) physicalRemove(c *perf.Ctx, n *drNode) {
	spin := 0
	for {
		parent := n.parent.Load()
		l, r := n.left.Load(), n.right.Load()
		if l != nil && r != nil {
			if t.transplant(c, n, parent) {
				return
			}
		} else {
			if t.splice(c, n, parent, l, r) {
				return
			}
		}
		spin = locks.Pause(spin)
	}
}

func childSlot(parent, child *drNode) *atomic.Pointer[drNode] {
	if parent.left.Load() == child {
		return &parent.left
	}
	if parent.right.Load() == child {
		return &parent.right
	}
	return nil
}

// splice removes a node with at most one child.
func (t *Drachsler) splice(c *perf.Ctx, n, parent, l, r *drNode) bool {
	if !parent.treeLock.TryLock() {
		return false
	}
	c.Inc(perf.EvLock)
	defer parent.treeLock.Unlock()
	if n.parent.Load() != parent {
		return false
	}
	if !n.treeLock.TryLock() {
		return false
	}
	c.Inc(perf.EvLock)
	defer n.treeLock.Unlock()
	l, r = n.left.Load(), n.right.Load() // re-read under locks
	if l != nil && r != nil {
		return false // grew a second child; caller switches to transplant
	}
	child := l
	if child == nil {
		child = r
	}
	if child != nil {
		if !child.treeLock.TryLock() {
			return false
		}
		c.Inc(perf.EvLock)
		defer child.treeLock.Unlock()
	}
	slot := childSlot(parent, n)
	if slot == nil {
		return false
	}
	slot.Store(child)
	c.Inc(perf.EvStore)
	if child != nil {
		child.parent.Store(parent)
		c.Inc(perf.EvStore)
	}
	return true
}

// transplant replaces a two-child node with its in-tree successor node
// (which, n being removed and list-unlinked already, is the leftmost node of
// n's right subtree).
func (t *Drachsler) transplant(c *perf.Ctx, n, parent *drNode) bool {
	// Find the successor and its parent optimistically.
	sp, s := n, n.right.Load()
	if s == nil {
		return false // shrunk meanwhile; caller re-examines
	}
	for {
		nl := s.left.Load()
		if nl == nil {
			break
		}
		sp, s = s, nl
	}
	// Lock set: parent, n, sp (if != n), s, s.right (if any), and n's
	// children. Any try-lock failure rolls everything back.
	var held []*locks.TAS
	lock := func(l *locks.TAS) bool {
		if !l.TryLock() {
			return false
		}
		c.Inc(perf.EvLock)
		held = append(held, l)
		return true
	}
	unlockAll := func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].Unlock()
		}
	}
	if !lock(&parent.treeLock) {
		return false
	}
	ok := func() bool {
		if n.parent.Load() != parent {
			return false
		}
		if !lock(&n.treeLock) {
			return false
		}
		l, r := n.left.Load(), n.right.Load()
		if l == nil || r == nil {
			return false // changed shape; retry as splice
		}
		if sp != n && !lock(&sp.treeLock) {
			return false
		}
		if !lock(&s.treeLock) {
			return false
		}
		// Validate the successor snapshot under locks.
		if s.left.Load() != nil || s.parent.Load() != sp {
			return false
		}
		if sp == n && r != s {
			return false
		}
		if sp != n && sp.left.Load() != s {
			return false
		}
		sr := s.right.Load()
		if sr != nil && !lock(&sr.treeLock) {
			return false
		}
		if !lock(&l.treeLock) {
			return false
		}
		// r needs locking only when it is not already held: it is held
		// as sp when s is r's direct left child, and it is s itself
		// when sp == n.
		if sp != n && r != sp && !lock(&r.treeLock) {
			return false
		}
		// Excise s from its position.
		if sp != n {
			sp.left.Store(sr)
			if sr != nil {
				sr.parent.Store(sp)
			}
			s.right.Store(r)
			r.parent.Store(s)
		} else if sr != nil {
			// s == r: s keeps its right subtree.
			sr.parent.Store(s)
		}
		c.Inc(perf.EvStore)
		// Put s where n was.
		s.left.Store(l)
		l.parent.Store(s)
		slot := childSlot(parent, n)
		if slot == nil {
			return false
		}
		slot.Store(s)
		s.parent.Store(parent)
		c.Inc(perf.EvStore)
		return true
	}()
	unlockAll()
	return ok
}

// Search looks up k.
func (t *Drachsler) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Drachsler) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Drachsler) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size walks the list. Quiescent use only.
func (t *Drachsler) Size() int {
	n := 0
	for curr := t.head.succ.Load(); curr != t.tail; curr = curr.succ.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}
