// Package bst implements the binary-search-tree algorithms of Table 1 —
// sequential internal and external trees (async bounds), bronson, drachsler,
// ellen, howley, natarajan — plus BST-TK, the paper's new external tree with
// versioned ticket locks (§6.2, Figure 10).
//
// Conventions shared by the external trees (async-ext, ellen, natarajan,
// bst-tk): internal "router" nodes hold keys only, elements live in leaves,
// and routing is "go left iff k < node.key". A router created for keys
// {a < b} gets key b, left child a, right child b. Sentinel routers/leaves
// use key MaxUint64, so user keys must be at most MaxUint64-1.
package bst

import (
	"math"

	"repro/internal/core"
)

const sentinelKey = core.Key(math.MaxUint64)

func register(name string, class core.Class, desc string, safe, ascy bool, f func(cfg core.Config) core.Set) {
	core.Register(core.Algorithm{
		Name:      "bst-" + name,
		Structure: core.BST,
		Class:     class,
		Desc:      desc,
		Safe:      safe,
		ASCY:      ascy,
		Ordered:   true, // in-order traversal enumerates keys sorted
		New:       f,
	})
}

func init() {
	register("async-int", core.Seq,
		"sequential internal BST run unsynchronized; async upper bound",
		false, false, func(cfg core.Config) core.Set { return NewSeqInt(cfg) })
	register("async-ext", core.Seq,
		"sequential external BST run unsynchronized; async upper bound",
		false, false, func(cfg core.Config) core.Set { return NewSeqExt(cfg) })
	register("tk", core.LockBased,
		"BST-TK: external tree, versioned ticket locks; 1 lock per insert, 2 per remove (the paper's new design)",
		true, true, func(cfg core.Config) core.Set { return NewTK(cfg) })
	register("natarajan", core.LockFree,
		"external lock-free tree with edge flagging/tagging; minimal atomics (Natarajan & Mittal)",
		true, true, func(cfg core.Config) core.Set { return NewNatarajan(cfg) })
	register("ellen", core.LockFree,
		"external lock-free tree with Info-record helping (Ellen et al.)",
		true, false, func(cfg core.Config) core.Set { return NewEllen(cfg) })
	register("howley", core.LockFree,
		"internal lock-free tree with per-node operation records; helping on all operations (Howley & Jones)",
		true, false, func(cfg core.Config) core.Set { return NewHowley(cfg) })
	register("drachsler", core.LockBased,
		"internal tree with logical ordering (pred/succ list); >=3 locks per removal (Drachsler et al.)",
		true, false, func(cfg core.Config) core.Set { return NewDrachsler(cfg) })
	register("bronson", core.LockBased,
		"partially external optimistic tree with version numbers; readers may wait on in-flight updates (Bronson et al.)",
		true, false, func(cfg core.Config) core.Set { return NewBronson(cfg) })
}
