package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
)

// Howley & Jones (SPAA'12): a non-blocking *internal* BST. Every node
// carries an operation word; any thread that encounters a pending operation
// helps it before proceeding — including searches, which is precisely the
// ASCY1/2 violation the paper charges howley for ("howley employs helping
// even while searching or parsing the tree", §5/Figure 7). Deleting a node
// with two children relocates the successor's key/value into it via a
// RELOCATE state machine.

// Operation-word states.
const (
	hwNone int32 = iota
	hwMark
	hwChildCAS
	hwRelocate
)

// Relocation states.
const (
	relocOngoing int32 = iota
	relocSuccessful
	relocFailed
)

// hwOp is an immutable operation record; the containing node's op word
// points at one, and all hand-offs are CASes on that word (object identity
// plays the role of the C version's pointer tagging).
type hwOp struct {
	state int32
	child *hwChildCASOp
	reloc *hwRelocateOp
}

// hwNoneOp is the initial "no operation" word of a fresh node. It must only
// ever be *installed* at node creation: the C original distinguishes op-word
// generations with tagged pointers, and the Go equivalent is releasing an op
// word with a *fresh* none op (newHWNoneOp) each time. Re-installing this
// singleton would let a node's op word return to a previously-observed
// pointer (None -> ChildCAS -> None), and a racer that read its child
// pointers against the first None could then CAS its own op in against a
// stale snapshot and lose an insert (ABA).
var hwNoneOp = &hwOp{state: hwNone}

func newHWNoneOp() *hwOp { return &hwOp{state: hwNone} }

type hwChildCASOp struct {
	isLeft           bool
	expected, update *hwNode
}

type hwRelocateOp struct {
	state                 atomic.Int32 // relocOngoing/Successful/Failed
	dest                  *hwNode
	destOp                *hwOp
	removeKey, replaceKey uint64
	replaceValue          uint64
}

type hwNode struct {
	key   atomic.Uint64 // mutable: relocation overwrites it
	value atomic.Uint64
	left  atomic.Pointer[hwNode]
	right atomic.Pointer[hwNode]
	op    atomic.Pointer[hwOp]
}

func newHWNode(k core.Key, v core.Value) *hwNode {
	n := &hwNode{}
	n.key.Store(uint64(k))
	n.value.Store(uint64(v))
	n.op.Store(hwNoneOp)
	return n
}

// Howley is the howley tree of Table 1.
type Howley struct {
	core.OrderedVia
	root *hwNode // sentinel, key 0 (< every user key); tree in root.right
}

// NewHowley returns an empty tree.
func NewHowley(cfg core.Config) *Howley {
	s := &Howley{root: newHWNode(0, 0)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// find results.
const (
	hwFound int32 = iota
	hwNotFoundL
	hwNotFoundR
	hwAbort
)

// find locates k starting at root (the subtree root for successor searches),
// helping any pending operation it meets and restarting after. It returns
// the last node visited (curr) and its parent, with the op words observed
// while they were quiescent.
func (t *Howley) find(c *perf.Ctx, k core.Key, root *hwNode) (pred *hwNode, predOp *hwOp, curr *hwNode, currOp *hwOp, result int32) {
retry:
	for {
		result = hwNotFoundR
		pred, predOp = nil, nil
		curr = root
		currOp = curr.op.Load()
		if currOp.state != hwNone {
			if root == t.root {
				c.Inc(perf.EvHelp)
				t.helpChildCAS(c, currOp, curr)
				continue retry
			}
			return nil, nil, nil, nil, hwAbort
		}
		var lastRight *hwNode = curr
		var lastRightOp *hwOp = currOp
		next := curr.right.Load()
		for next != nil {
			pred, predOp = curr, currOp
			curr = next
			currOp = curr.op.Load()
			if currOp.state != hwNone {
				c.Inc(perf.EvHelp)
				t.help(c, pred, predOp, curr, currOp)
				continue retry
			}
			c.Inc(perf.EvTraverse)
			ckey := core.Key(curr.key.Load())
			switch {
			case k < ckey:
				result = hwNotFoundL
				next = curr.left.Load()
			case k > ckey:
				result = hwNotFoundR
				next = curr.right.Load()
				lastRight, lastRightOp = curr, currOp
			default:
				return pred, predOp, curr, currOp, hwFound
			}
		}
		if lastRightOp != lastRight.op.Load() {
			// A deletion may have moved things behind our back.
			c.Inc(perf.EvRestart)
			continue retry
		}
		return pred, predOp, curr, currOp, result
	}
}

func (t *Howley) help(c *perf.Ctx, pred *hwNode, predOp *hwOp, curr *hwNode, currOp *hwOp) {
	switch currOp.state {
	case hwChildCAS:
		t.helpChildCAS(c, currOp, curr)
	case hwRelocate:
		t.helpRelocate(c, currOp.reloc, pred, predOp, curr)
	case hwMark:
		t.helpMarked(c, pred, predOp, curr)
	}
}

// helpChildCAS completes a pending child swap and releases the op word.
func (t *Howley) helpChildCAS(c *perf.Ctx, op *hwOp, dest *hwNode) {
	if op.state != hwChildCAS {
		return
	}
	addr := &dest.right
	if op.child.isLeft {
		addr = &dest.left
	}
	if addr.CompareAndSwap(op.child.expected, op.child.update) {
		c.Inc(perf.EvCAS)
	}
	if dest.op.CompareAndSwap(op, newHWNoneOp()) {
		c.Inc(perf.EvCAS)
	}
}

// helpMarked splices a marked (≤1 child) node out from under pred via a
// ChildCAS on pred.
func (t *Howley) helpMarked(c *perf.Ctx, pred *hwNode, predOp *hwOp, curr *hwNode) {
	newRef := curr.left.Load()
	if newRef == nil {
		newRef = curr.right.Load()
	}
	isLeft := curr == pred.left.Load()
	casOp := &hwOp{state: hwChildCAS, child: &hwChildCASOp{isLeft: isLeft, expected: curr, update: newRef}}
	if pred.op.CompareAndSwap(predOp, casOp) {
		c.Inc(perf.EvCAS)
		t.helpChildCAS(c, casOp, pred)
	} else {
		c.Inc(perf.EvCASFail)
	}
}

// helpRelocate drives the two-node relocation state machine: claim the
// destination, copy the successor's pair into it, then mark and excise the
// successor.
func (t *Howley) helpRelocate(c *perf.Ctx, op *hwRelocateOp, pred *hwNode, predOp *hwOp, curr *hwNode) bool {
	seen := op.state.Load()
	if seen == relocOngoing {
		claimOp := &hwOp{state: hwRelocate, reloc: op}
		claimed := op.dest.op.CompareAndSwap(op.destOp, claimOp)
		if claimed {
			c.Inc(perf.EvCAS)
		} else {
			c.Inc(perf.EvCASFail)
		}
		w := op.dest.op.Load()
		if claimed || (w.state == hwRelocate && w.reloc == op) {
			op.state.CompareAndSwap(relocOngoing, relocSuccessful)
			seen = relocSuccessful
		} else {
			op.state.CompareAndSwap(relocOngoing, relocFailed)
			seen = op.state.Load()
		}
	}
	if seen == relocSuccessful {
		// Copy the pair into dest (idempotent: all helpers write the
		// same values) and release dest's op word.
		op.dest.key.Store(op.replaceKey)
		op.dest.value.Store(op.replaceValue)
		c.Inc(perf.EvStore)
		if w := op.dest.op.Load(); w.state == hwRelocate && w.reloc == op {
			if op.dest.op.CompareAndSwap(w, newHWNoneOp()) {
				c.Inc(perf.EvCAS)
			}
		}
	}
	// Resolve the successor node (curr): marked for excision on success,
	// restored on failure.
	if w := curr.op.Load(); w.state == hwRelocate && w.reloc == op {
		target := newHWNoneOp()
		if seen == relocSuccessful {
			target = &hwOp{state: hwMark}
		}
		if curr.op.CompareAndSwap(w, target) {
			c.Inc(perf.EvCAS)
			if seen == relocSuccessful {
				// predOp may be stale by now (when pred == dest,
				// the claim above replaced its op word); splice
				// against pred's current op so the excision does
				// not silently fail and leave the marked node to
				// a later traversal.
				t.helpMarked(c, pred, pred.op.Load(), curr)
			}
		}
	}
	return seen == relocSuccessful
}

// SearchCtx implements core.Instrumented. Note: find helps pending
// operations and restarts — howley's searches are not ASCY1, by design.
func (t *Howley) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	_, _, curr, _, res := t.find(c, k, t.root)
	if res == hwFound {
		return core.Value(curr.value.Load()), true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (t *Howley) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		_, _, curr, currOp, res := t.find(c, k, t.root)
		c.ParseEnd()
		if res == hwFound {
			return false
		}
		n := newHWNode(k, v)
		isLeft := res == hwNotFoundL
		var old *hwNode
		if isLeft {
			old = curr.left.Load()
		} else {
			old = curr.right.Load()
		}
		casOp := &hwOp{state: hwChildCAS, child: &hwChildCASOp{isLeft: isLeft, expected: old, update: n}}
		if curr.op.CompareAndSwap(currOp, casOp) {
			c.Inc(perf.EvCAS)
			t.helpChildCAS(c, casOp, curr)
			return true
		}
		c.Inc(perf.EvCASFail)
		c.Inc(perf.EvRestart)
	}
}

// RemoveCtx implements core.Instrumented.
func (t *Howley) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		c.ParseBegin()
		pred, predOp, curr, currOp, res := t.find(c, k, t.root)
		c.ParseEnd()
		if res != hwFound {
			return 0, false
		}
		val := core.Value(curr.value.Load())
		if curr.right.Load() == nil || curr.left.Load() == nil {
			// At most one child: mark, then splice out.
			if curr.op.CompareAndSwap(currOp, &hwOp{state: hwMark}) {
				c.Inc(perf.EvCAS)
				t.helpMarked(c, pred, predOp, curr)
				return val, true
			}
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvRestart)
			continue
		}
		// Two children: relocate the in-order successor's pair here.
		pred2, predOp2, succ, succOp, res2 := t.find(c, k, curr)
		if res2 == hwAbort {
			c.Inc(perf.EvRestart)
			continue
		}
		if res2 == hwFound {
			// Another relocation already moved k into the subtree;
			// retry from the top.
			c.Inc(perf.EvRestart)
			continue
		}
		if succ == curr {
			// The successor walk restarted after helping and found
			// curr's right subtree gone: curr no longer has two
			// children, so the relocation no longer applies (a
			// self-relocation would "succeed" without removing
			// anything). Re-evaluate from the top.
			c.Inc(perf.EvRestart)
			continue
		}
		reloc := &hwRelocateOp{
			dest:         curr,
			destOp:       currOp,
			removeKey:    uint64(k),
			replaceKey:   succ.key.Load(),
			replaceValue: succ.value.Load(),
		}
		if succ.op.CompareAndSwap(succOp, &hwOp{state: hwRelocate, reloc: reloc}) {
			c.Inc(perf.EvCAS)
			if t.helpRelocate(c, reloc, pred2, predOp2, succ) {
				return val, true
			}
		} else {
			c.Inc(perf.EvCASFail)
		}
		c.Inc(perf.EvRestart)
	}
}

// Search looks up k.
func (t *Howley) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Howley) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Howley) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts reachable live nodes (excluding the sentinel and nodes whose
// op word is MARK: those are logically deleted, awaiting excision by the
// next traversal that helps them). Quiescent use only.
func (t *Howley) Size() int {
	n := 0
	stack := []*hwNode{t.root.right.Load()}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd == nil {
			continue
		}
		if nd.op.Load().state != hwMark {
			n++
		}
		stack = append(stack, nd.left.Load(), nd.right.Load())
	}
	return n
}
