package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// Bronson et al. (PPoPP'10): a partially external BST with optimistic
// hand-over-hand validation over per-node version numbers. Readers descend
// without locks, validating each step against the version observed before
// following the edge; if they meet a node whose version has the CHANGING
// bit set they *block* (spin) until the structural change completes — the
// behaviour Table 1 records as "a search/parse can block waiting for a
// concurrent update to complete". Deleting a node with two children merely
// clears its value, leaving a routing node that a later insert of the same
// key can revive — the "partially external" part.
//
// Divergence note: the original couples this scheme with relaxed AVL
// rebalancing; rebalancing is not implemented here (uniform random keys
// keep expected depth logarithmic), so CHANGING covers unlinks rather than
// rotations. The synchronization protocol — version validation, blocking
// waits, per-node locks — is the original's.

const (
	bvChanging uint64 = 1 // structural change in progress
	bvUnlinked uint64 = 2 // node removed from the tree
	bvStep     uint64 = 4 // version increment
)

type brNode struct {
	key core.Key
	// val is atomic: a routing-node revival writes it under the node
	// lock while searches read it lock-free after checking hasVal.
	val     atomic.Uint64
	hasVal  atomic.Bool
	version atomic.Uint64
	left    atomic.Pointer[brNode]
	right   atomic.Pointer[brNode]
	lock    locks.TAS
}

// result codes for the attempt functions.
const (
	brRetry int32 = iota // version changed: caller revalidates
	brFound
	brNotFound
)

// Bronson is the bronson tree of Table 1.
type Bronson struct {
	core.OrderedVia
	root *brNode // sentinel, key 0; user tree entirely in root.right
}

// NewBronson returns an empty tree.
func NewBronson(cfg core.Config) *Bronson {
	s := &Bronson{root: &brNode{key: 0}}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

func (n *brNode) child(k core.Key) *atomic.Pointer[brNode] {
	if k < n.key {
		return &n.left
	}
	return &n.right
}

// waitUntilNotChanging spins while n's structural change is in flight.
func waitUntilNotChanging(c *perf.Ctx, n *brNode) {
	if n.version.Load()&bvChanging == 0 {
		return
	}
	c.Inc(perf.EvWait)
	for i := 0; n.version.Load()&bvChanging != 0; {
		i = locks.Pause(i)
	}
}

// SearchCtx implements core.Instrumented.
func (t *Bronson) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		v, res := t.attemptGet(c, k, t.root, t.root.version.Load())
		if res != brRetry {
			return v, res == brFound
		}
		c.Inc(perf.EvRestart)
	}
}

// attemptGet searches for k under node, which was observed at version nodeV.
func (t *Bronson) attemptGet(c *perf.Ctx, k core.Key, node *brNode, nodeV uint64) (core.Value, int32) {
	for {
		child := node.child(k).Load()
		if node.version.Load() != nodeV {
			return 0, brRetry
		}
		if child == nil {
			return 0, brNotFound // validated: edge was null at version nodeV
		}
		c.Inc(perf.EvTraverse)
		if child.key == k {
			// Value nodes answer found; routing nodes answer not
			// found. No version check needed: the pair is
			// immutable while hasVal, and hasVal is atomic.
			if child.hasVal.Load() {
				return core.Value(child.val.Load()), brFound
			}
			return 0, brNotFound
		}
		childV := child.version.Load()
		if childV&bvChanging != 0 {
			waitUntilNotChanging(c, child)
			continue // re-read the edge
		}
		if childV&bvUnlinked != 0 {
			continue // stale edge; re-read
		}
		if node.child(k).Load() != child {
			continue
		}
		v, res := t.attemptGet(c, k, child, childV)
		if res != brRetry {
			return v, res
		}
		// Child-level retry: revalidate our own version before
		// descending again; if we changed too, propagate up.
		if node.version.Load() != nodeV {
			return 0, brRetry
		}
	}
}

// InsertCtx implements core.Instrumented.
func (t *Bronson) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		ok, res := t.attemptInsert(c, k, v, t.root, t.root.version.Load())
		if res != brRetry {
			return ok
		}
		c.Inc(perf.EvRestart)
	}
}

func (t *Bronson) attemptInsert(c *perf.Ctx, k core.Key, v core.Value, node *brNode, nodeV uint64) (bool, int32) {
	for {
		slot := node.child(k)
		child := slot.Load()
		if node.version.Load() != nodeV {
			return false, brRetry
		}
		if child == nil {
			// Try to link a fresh node here.
			node.lock.Lock()
			c.Inc(perf.EvLock)
			if node.version.Load()&bvUnlinked != 0 {
				node.lock.Unlock()
				return false, brRetry
			}
			if slot.Load() != nil {
				node.lock.Unlock()
				continue // someone linked first; re-examine
			}
			n := &brNode{key: k}
			n.val.Store(uint64(v))
			n.hasVal.Store(true)
			slot.Store(n)
			c.Inc(perf.EvStore)
			node.lock.Unlock()
			return true, brFound
		}
		c.Inc(perf.EvTraverse)
		if child.key == k {
			if child.hasVal.Load() {
				return false, brFound // ASCY3: read-only duplicate fail
			}
			// Routing node: revive it with our value.
			child.lock.Lock()
			c.Inc(perf.EvLock)
			if child.version.Load()&bvUnlinked != 0 {
				child.lock.Unlock()
				continue
			}
			if child.hasVal.Load() {
				child.lock.Unlock()
				return false, brFound
			}
			child.val.Store(uint64(v))
			child.hasVal.Store(true)
			c.Inc(perf.EvStore)
			child.lock.Unlock()
			return true, brFound
		}
		childV := child.version.Load()
		if childV&bvChanging != 0 {
			waitUntilNotChanging(c, child)
			continue
		}
		if childV&bvUnlinked != 0 {
			continue
		}
		if slot.Load() != child {
			continue
		}
		ok, res := t.attemptInsert(c, k, v, child, childV)
		if res != brRetry {
			return ok, res
		}
		if node.version.Load() != nodeV {
			return false, brRetry
		}
	}
}

// RemoveCtx implements core.Instrumented.
func (t *Bronson) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		v, res := t.attemptRemove(c, k, t.root, t.root.version.Load())
		if res != brRetry {
			return v, res == brFound
		}
		c.Inc(perf.EvRestart)
	}
}

func (t *Bronson) attemptRemove(c *perf.Ctx, k core.Key, node *brNode, nodeV uint64) (core.Value, int32) {
	for {
		slot := node.child(k)
		child := slot.Load()
		if node.version.Load() != nodeV {
			return 0, brRetry
		}
		if child == nil {
			return 0, brNotFound // ASCY3: fail read-only
		}
		c.Inc(perf.EvTraverse)
		if child.key == k {
			if !child.hasVal.Load() {
				return 0, brNotFound // routing node: absent, read-only
			}
			if child.left.Load() != nil && child.right.Load() != nil {
				// Two children: partially external removal —
				// demote to a routing node under one lock.
				child.lock.Lock()
				c.Inc(perf.EvLock)
				if child.version.Load()&bvUnlinked != 0 || !child.hasVal.Load() {
					child.lock.Unlock()
					continue
				}
				if child.left.Load() == nil || child.right.Load() == nil {
					child.lock.Unlock()
					continue // shape changed; unlink instead
				}
				val := core.Value(child.val.Load())
				child.hasVal.Store(false)
				c.Inc(perf.EvStore)
				child.lock.Unlock()
				return val, brFound
			}
			// At most one child: unlink under parent + node locks.
			node.lock.Lock()
			c.Inc(perf.EvLock)
			if node.version.Load()&bvUnlinked != 0 || slot.Load() != child {
				node.lock.Unlock()
				continue
			}
			child.lock.Lock()
			c.Inc(perf.EvLock)
			if !child.hasVal.Load() {
				child.lock.Unlock()
				node.lock.Unlock()
				return 0, brNotFound
			}
			l, r := child.left.Load(), child.right.Load()
			if l != nil && r != nil {
				child.lock.Unlock()
				node.lock.Unlock()
				continue // grew a second child; demote instead
			}
			grand := l
			if grand == nil {
				grand = r
			}
			// Publish the shrink: CHANGING while the edge swings.
			child.version.Add(bvChanging)
			slot.Store(grand)
			c.Inc(perf.EvStore)
			child.version.Store((child.version.Load()+bvStep)&^bvChanging | bvUnlinked)
			val := core.Value(child.val.Load())
			child.hasVal.Store(false)
			child.lock.Unlock()
			node.lock.Unlock()
			return val, brFound
		}
		childV := child.version.Load()
		if childV&bvChanging != 0 {
			waitUntilNotChanging(c, child)
			continue
		}
		if childV&bvUnlinked != 0 {
			continue
		}
		if slot.Load() != child {
			continue
		}
		v, res := t.attemptRemove(c, k, child, childV)
		if res != brRetry {
			return v, res
		}
		if node.version.Load() != nodeV {
			return 0, brRetry
		}
	}
}

// Search looks up k.
func (t *Bronson) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Bronson) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Bronson) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts value-bearing nodes. Quiescent use only.
func (t *Bronson) Size() int {
	n := 0
	stack := []*brNode{t.root.right.Load()}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd == nil {
			continue
		}
		if nd.hasVal.Load() {
			n++
		}
		stack = append(stack, nd.left.Load(), nd.right.Load())
	}
	return n
}
