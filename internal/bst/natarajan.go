package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
)

// nmEdge is an immutable (child, flag, tag) record: the Go rendering of
// Natarajan & Mittal's packed pointer bits. flag marks an edge whose child
// leaf is under deletion; tag freezes a sibling edge during the splice.
// Flags only ever appear on edges to leaves; tagged or flagged edges are
// never modified except by the splice that removes them, which is what lets
// a whole chain of retired routers be cut out with a single CAS.
type nmEdge struct {
	n    *nmNode
	flag bool
	tag  bool
}

type nmNode struct {
	key      core.Key
	val      core.Value
	left     atomic.Pointer[nmEdge]
	right    atomic.Pointer[nmEdge]
	internal bool
}

func newNMLeaf(k core.Key, v core.Value) *nmNode {
	return &nmNode{key: k, val: v}
}

func (n *nmNode) edge(left bool) *atomic.Pointer[nmEdge] {
	if left {
		return &n.left
	}
	return &n.right
}

// nmRec is the seek record: ancestor→successor is the deepest clean edge on
// the path; parent→leaf is the final edge. succEdge/leafEdge are the exact
// records read, for the callers' CASes.
type nmRec struct {
	ancestor, successor, parent, leaf *nmNode
	succEdge, leafEdge                *nmEdge
}

// Natarajan is the natarajan tree of Table 1 (Natarajan & Mittal, PPoPP'14):
// an external lock-free BST that marks *edges* rather than nodes and
// "minimizes the number of atomic operations and optimistically
// searches/parses the tree" — the paper measures it at ~2 atomics per
// update, closest to the asynchronized bound of all prior BSTs (Figure 7).
// Searches are pure traversals (ASCY1); deletion injects a flag on the leaf
// edge, then tags the sibling edge and splices at the ancestor.
type Natarajan struct {
	core.OrderedVia
	root *nmNode // sentinel R; R.left -> sentinel S; user tree under S.left
}

// NewNatarajan returns an empty tree with the R/S sentinel structure.
func NewNatarajan(cfg core.Config) *Natarajan {
	r := &nmNode{key: sentinelKey, internal: true}
	s := &nmNode{key: sentinelKey, internal: true}
	s.left.Store(&nmEdge{n: newNMLeaf(sentinelKey, 0)})
	s.right.Store(&nmEdge{n: newNMLeaf(sentinelKey, 0)})
	r.left.Store(&nmEdge{n: s})
	r.right.Store(&nmEdge{n: newNMLeaf(sentinelKey, 0)})
	t := &Natarajan{root: r}
	t.OrderedVia = core.OrderedVia{Ascend: t.ascend}
	return t
}

// seek descends to the leaf for k, maintaining the deepest untagged edge on
// the path as (ancestor → successor): everything below that edge may belong
// to in-flight deletions (tagged/flagged edges are frozen), so that is where
// a cleanup splice must happen. Flags only appear on edges to leaves, which
// is why testing the tag bit on edges into internal nodes suffices — the
// original algorithm's invariant.
func (t *Natarajan) seek(c *perf.Ctx, k core.Key) nmRec {
	rEdge := t.root.left.Load() // R → S
	s := rEdge.n
	sEdge := s.left.Load() // S → first node
	rec := nmRec{
		ancestor:  t.root,
		successor: s,
		parent:    s,
		leaf:      sEdge.n,
		succEdge:  rEdge,
		leafEdge:  sEdge,
	}
	parentField := sEdge // edge into rec.leaf
	for rec.leaf.internal {
		c.Inc(perf.EvTraverse)
		currentField := rec.leaf.edge(k < rec.leaf.key).Load()
		if !parentField.tag {
			rec.ancestor, rec.successor, rec.succEdge = rec.parent, rec.leaf, parentField
		}
		rec.parent = rec.leaf
		rec.leaf = currentField.n
		rec.leafEdge = currentField
		parentField = currentField
	}
	return rec
}

// cleanup completes (or helps complete) the deletion whose flag sits at the
// parent recorded in rec, by tagging the surviving sibling edge and splicing
// it up to the ancestor with one CAS. Returns whether the splice succeeded.
func (t *Natarajan) cleanup(c *perf.Ctx, k core.Key, rec nmRec) bool {
	ancestor, parent := rec.ancestor, rec.parent
	succAddr := ancestor.edge(k < ancestor.key)
	childLeft := k < parent.key
	childAddr := parent.edge(childLeft)
	siblingAddr := parent.edge(!childLeft)
	if !childAddr.Load().flag {
		// The deletion in progress is for the other child; our side
		// survives as the "sibling".
		siblingAddr = childAddr
	}
	// Freeze the surviving edge with a tag.
	for {
		f := siblingAddr.Load()
		if f.tag {
			break
		}
		if siblingAddr.CompareAndSwap(f, &nmEdge{n: f.n, flag: f.flag, tag: true}) {
			c.Inc(perf.EvCAS)
			break
		}
		c.Inc(perf.EvCASFail)
	}
	f := siblingAddr.Load()
	// Splice: ancestor adopts the sibling; its flag (a pending deletion of
	// the sibling leaf) survives the move, the tag does not.
	if succAddr.CompareAndSwap(rec.succEdge, &nmEdge{n: f.n, flag: f.flag}) {
		c.Inc(perf.EvCAS)
		c.Inc(perf.EvCleanup)
		return true
	}
	c.Inc(perf.EvCASFail)
	return false
}

// SearchCtx implements core.Instrumented: the sequential search, untouched.
func (t *Natarajan) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	curr := t.root.left.Load().n
	for curr.internal {
		c.Inc(perf.EvTraverse)
		if k < curr.key {
			curr = curr.left.Load().n
		} else {
			curr = curr.right.Load().n
		}
	}
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (t *Natarajan) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		rec := t.seek(c, k)
		c.ParseEnd()
		if rec.leaf.key == k {
			return false // ASCY3 comes for free: no stores so far
		}
		parent := rec.parent
		childAddr := parent.edge(k < parent.key)
		leaf := rec.leaf
		nl := newNMLeaf(k, v)
		router := &nmNode{internal: true}
		if k < leaf.key {
			router.key = leaf.key
			router.left.Store(&nmEdge{n: nl})
			router.right.Store(&nmEdge{n: leaf})
		} else {
			router.key = k
			router.left.Store(&nmEdge{n: leaf})
			router.right.Store(&nmEdge{n: nl})
		}
		if childAddr.CompareAndSwap(rec.leafEdge, &nmEdge{n: router}) {
			c.Inc(perf.EvCAS)
			return true
		}
		c.Inc(perf.EvCASFail)
		// Help a pending deletion at this edge before retrying.
		cur := childAddr.Load()
		if cur.n == leaf && (cur.flag || cur.tag) {
			c.Inc(perf.EvHelp)
			t.cleanup(c, k, rec)
		}
		c.Inc(perf.EvRestart)
	}
}

// RemoveCtx implements core.Instrumented: injection (flag the leaf edge)
// then cleanup (tag sibling, splice at ancestor), helping as needed.
func (t *Natarajan) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	injected := false
	var leaf *nmNode
	var val core.Value
	for {
		c.ParseBegin()
		rec := t.seek(c, k)
		c.ParseEnd()
		if !injected {
			leaf = rec.leaf
			if leaf.key != k {
				return 0, false // ASCY3
			}
			val = leaf.val
			parent := rec.parent
			childAddr := parent.edge(k < parent.key)
			if rec.leafEdge.flag || rec.leafEdge.tag || rec.leafEdge.n != leaf {
				c.Inc(perf.EvRestart)
				continue
			}
			if childAddr.CompareAndSwap(rec.leafEdge, &nmEdge{n: leaf, flag: true}) {
				c.Inc(perf.EvCAS)
				injected = true
				if t.cleanup(c, k, rec) {
					return val, true
				}
			} else {
				c.Inc(perf.EvCASFail)
				cur := childAddr.Load()
				if cur.n == leaf && (cur.flag || cur.tag) {
					c.Inc(perf.EvHelp)
					t.cleanup(c, k, rec)
				}
				c.Inc(perf.EvRestart)
			}
			continue
		}
		// Cleanup mode: our flag is planted; finish unless someone
		// already did.
		if rec.leaf != leaf {
			return val, true // helped to completion by another thread
		}
		if t.cleanup(c, k, rec) {
			return val, true
		}
		c.Inc(perf.EvRestart)
	}
}

// Search looks up k.
func (t *Natarajan) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Natarajan) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Natarajan) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts non-sentinel leaves. Quiescent use only.
func (t *Natarajan) Size() int {
	n := 0
	stack := []*nmNode{t.root.left.Load().n}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !nd.internal {
			if nd.key != sentinelKey {
				n++
			}
			continue
		}
		stack = append(stack, nd.left.Load().n, nd.right.Load().n)
	}
	return n
}
