// Ordered iteration (v2 surface) for the BSTs: in-order traversals with
// lo-side pruning (a subtree is descended only if it can hold keys >= lo;
// the hi bound cuts the walk off via yield). Each type embeds
// core.OrderedVia, which derives ForEach/Range/Min/Max from ascend
// (constructors wire it up). Traversals are read-only — no locks, no
// helping — and, like Size, observe each element at some point during the
// call rather than one atomic snapshot; core.RangeAscend enforces the
// sorted, duplicate-free Range contract even when a concurrent rotation
// moves nodes mid-walk. The async trees bound their walks with
// AsyncStepLimit exactly like their Size methods.
package bst

import "repro/internal/core"

// --- SeqInt (internal tree, async bound) ---

func siAscend(nd *siNode, lo core.Key, steps *int, limit int, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if *steps++; limit > 0 && *steps > limit {
		return false
	}
	if lo < nd.key && !siAscend(nd.left, lo, steps, limit, yield) {
		return false
	}
	if nd.key >= lo && nd.key != sentinelKey && !yield(nd.key, nd.val) {
		return false
	}
	return siAscend(nd.right, lo, steps, limit, yield)
}

// ascend implements core.AscendFunc.
func (t *SeqInt) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	steps := 0
	siAscend(t.root.left, lo, &steps, t.limit, yield)
}

// --- SeqExt (external tree, async bound) ---

func seAscend(nd *seNode, lo core.Key, steps *int, limit int, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if nd.leaf() {
		if nd.key == sentinelKey || nd.key < lo {
			return true
		}
		return yield(nd.key, nd.val)
	}
	if *steps++; limit > 0 && *steps > limit {
		return false
	}
	// Router: left subtree holds keys < nd.key, right holds >= nd.key.
	if lo < nd.key && !seAscend(nd.left, lo, steps, limit, yield) {
		return false
	}
	return seAscend(nd.right, lo, steps, limit, yield)
}

// ascend implements core.AscendFunc.
func (t *SeqExt) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	steps := 0
	seAscend(t.root.left, lo, &steps, t.limit, yield)
}

// --- BST-TK (external) ---

func tkAscend(nd *tkNode, lo core.Key, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if nd.leaf {
		if nd.key == sentinelKey || nd.key < lo {
			return true
		}
		return yield(nd.key, nd.val)
	}
	if lo < nd.key && !tkAscend(nd.left.Load(), lo, yield) {
		return false
	}
	return tkAscend(nd.right.Load(), lo, yield)
}

// ascend implements core.AscendFunc.
func (t *TK) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	tkAscend(t.groot.left.Load(), lo, yield)
}

// --- Natarajan (external, flagged/tagged edges) ---

func nmAscend(nd *nmNode, lo core.Key, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if !nd.internal {
		if nd.key == sentinelKey || nd.key < lo {
			return true
		}
		return yield(nd.key, nd.val)
	}
	if lo < nd.key && !nmAscend(nd.left.Load().n, lo, yield) {
		return false
	}
	return nmAscend(nd.right.Load().n, lo, yield)
}

// ascend implements core.AscendFunc.
func (t *Natarajan) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	nmAscend(t.root.left.Load().n, lo, yield)
}

// --- Ellen (external, Info-record helping; scans never help) ---

func eAscend(nd *eNode, lo core.Key, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if !nd.internal {
		if nd.key == sentinelKey || nd.key < lo {
			return true
		}
		return yield(nd.key, nd.val)
	}
	if lo < nd.key && !eAscend(nd.left.Load(), lo, yield) {
		return false
	}
	return eAscend(nd.right.Load(), lo, yield)
}

// ascend implements core.AscendFunc.
func (t *Ellen) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	eAscend(t.root.left.Load(), lo, yield)
}

// --- Howley (internal; keys are mutable under relocation) ---

func hwAscend(nd *hwNode, lo core.Key, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
restart:
	k := core.Key(nd.key.Load())
	if lo < k && !hwAscend(nd.left.Load(), lo, yield) {
		return false
	}
	// Nodes whose op word is MARK are logically deleted (awaiting
	// excision), exactly as in Size.
	if k >= lo && nd.op.Load().state != hwMark {
		v := core.Value(nd.value.Load())
		if core.Key(nd.key.Load()) != k {
			// A concurrent relocation moved the successor's pair
			// into this node between the key and value reads
			// (helpRelocate stores key, then value); re-visit so
			// we never yield a torn (old-key, new-value) pair.
			// Re-yields from the repeated left descent are
			// filtered by core.RangeAscend's ordering guard.
			goto restart
		}
		if !yield(k, v) {
			return false
		}
	}
	return hwAscend(nd.right.Load(), lo, yield)
}

// ascend implements core.AscendFunc.
func (t *Howley) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	hwAscend(t.root.right.Load(), lo, yield)
}

// --- Bronson (partially external: routing nodes carry no value) ---

func brAscend(nd *brNode, lo core.Key, yield func(core.Key, core.Value) bool) bool {
	if nd == nil {
		return true
	}
	if lo < nd.key && !brAscend(nd.left.Load(), lo, yield) {
		return false
	}
	if nd.key >= lo && nd.hasVal.Load() &&
		!yield(nd.key, core.Value(nd.val.Load())) {
		return false
	}
	return brAscend(nd.right.Load(), lo, yield)
}

// ascend implements core.AscendFunc.
func (t *Bronson) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	brAscend(t.root.right.Load(), lo, yield)
}

// --- Drachsler (the pred/succ logical-ordering list IS the sorted order) ---

// ascend implements core.AscendFunc.
func (t *Drachsler) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	start := t.locate(nil, lo)
	if start == t.head {
		start = start.succ.Load()
	}
	for curr := start; curr != t.tail; curr = curr.succ.Load() {
		if curr.key >= lo && !curr.marked.Load() && !yield(curr.key, curr.val) {
			return
		}
	}
}
