package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
)

// Ellen, Fatourou, Ruppert & van Breugel (PODC'10): the classic non-blocking
// *external* BST. Every internal node carries an update word = (state, Info
// record); updates flag the nodes they are about to modify (IFLAG for
// inserts at the parent, DFLAG at the grandparent and MARK at the parent for
// deletes) and any thread that runs into a flag helps the owning operation
// finish before retrying — "updates help outstanding operations on the nodes
// that they intend to modify" (Table 1). Searches are plain traversals.
//
// The C original packs state into the info pointer's low bits; here the
// update word is an atomic pointer to an immutable eUpd record, and all
// hand-offs are CASes on record identity.

// Update-word states.
const (
	eClean int32 = iota
	eIFlag
	eDFlag
	eMark
)

type eUpd struct {
	state int32
	info  any // *eIInfo or *eDInfo
}

type eIInfo struct {
	p           *eNode // parent being IFLAGged
	newInternal *eNode
	l           *eNode // leaf being replaced
	flagUpd     *eUpd  // the IFLAG record installed on p
}

type eDInfo struct {
	gp, p   *eNode // grandparent (DFLAGged), parent (to MARK)
	l       *eNode // leaf being deleted
	pupdate *eUpd  // p's update word as observed by the deleter
	flagUpd *eUpd  // the DFLAG record installed on gp
}

type eNode struct {
	key      core.Key
	val      core.Value
	update   atomic.Pointer[eUpd]
	left     atomic.Pointer[eNode]
	right    atomic.Pointer[eNode]
	internal bool
}

func newELeaf(k core.Key, v core.Value) *eNode {
	return &eNode{key: k, val: v}
}

func newEInternal(k core.Key) *eNode {
	n := &eNode{key: k, internal: true}
	n.update.Store(&eUpd{state: eClean})
	return n
}

// Ellen is the ellen tree of Table 1, with the R/S sentinel structure shared
// with the natarajan tree.
type Ellen struct {
	core.OrderedVia
	root *eNode
}

// NewEllen returns an empty tree.
func NewEllen(cfg core.Config) *Ellen {
	r := newEInternal(sentinelKey)
	s := newEInternal(sentinelKey)
	s.left.Store(newELeaf(sentinelKey, 0))
	s.right.Store(newELeaf(sentinelKey, 0))
	r.left.Store(s)
	r.right.Store(newELeaf(sentinelKey, 0))
	t := &Ellen{root: r}
	t.OrderedVia = core.OrderedVia{Ascend: t.ascend}
	return t
}

// search descends to the leaf for k, recording grandparent/parent and the
// update words read *before* following each edge (the algorithm's ordering
// requirement: an update installed after the read will fail its CAS).
func (t *Ellen) search(c *perf.Ctx, k core.Key) (gp, p, l *eNode, gpupdate, pupdate *eUpd) {
	p = t.root
	pupdate = p.update.Load()
	l = p.left.Load()
	for l.internal {
		c.Inc(perf.EvTraverse)
		gp, p = p, l
		gpupdate = pupdate
		pupdate = p.update.Load()
		if k < p.key {
			l = p.left.Load()
		} else {
			l = p.right.Load()
		}
	}
	return gp, p, l, gpupdate, pupdate
}

// SearchCtx implements core.Instrumented: no helping on the read path.
func (t *Ellen) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	curr := t.root.left.Load()
	for curr.internal {
		c.Inc(perf.EvTraverse)
		if k < curr.key {
			curr = curr.left.Load()
		} else {
			curr = curr.right.Load()
		}
	}
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// casChild swaps old for new under parent, on whichever side currently holds
// old.
func casChild(c *perf.Ctx, parent, old, new *eNode) {
	if parent.left.Load() == old {
		if parent.left.CompareAndSwap(old, new) {
			c.Inc(perf.EvCAS)
			return
		}
		c.Inc(perf.EvCASFail)
	}
	if parent.right.Load() == old {
		if parent.right.CompareAndSwap(old, new) {
			c.Inc(perf.EvCAS)
		} else {
			c.Inc(perf.EvCASFail)
		}
	}
}

func (t *Ellen) help(c *perf.Ctx, u *eUpd) {
	c.Inc(perf.EvHelp)
	switch u.state {
	case eIFlag:
		t.helpInsert(c, u.info.(*eIInfo))
	case eDFlag:
		t.helpDelete(c, u.info.(*eDInfo))
	case eMark:
		t.helpMarked(c, u.info.(*eDInfo))
	}
}

func (t *Ellen) helpInsert(c *perf.Ctx, op *eIInfo) {
	casChild(c, op.p, op.l, op.newInternal)                           // ichild
	if op.p.update.CompareAndSwap(op.flagUpd, &eUpd{state: eClean}) { // iunflag
		c.Inc(perf.EvCAS)
	}
}

// helpDelete tries to MARK the parent; on success the deletion commits, on
// failure (someone else got to p first) the grandparent is unflagged and the
// deletion reports failure so its owner re-seeks.
func (t *Ellen) helpDelete(c *perf.Ctx, op *eDInfo) bool {
	markUpd := &eUpd{state: eMark, info: op}
	ok := op.p.update.CompareAndSwap(op.pupdate, markUpd)
	if ok {
		c.Inc(perf.EvCAS)
	} else {
		c.Inc(perf.EvCASFail)
	}
	u := op.p.update.Load()
	if ok || (u.state == eMark && u.info == op) {
		t.helpMarked(c, op)
		return true
	}
	t.help(c, u)                                                       // whatever beat us to p
	if op.gp.update.CompareAndSwap(op.flagUpd, &eUpd{state: eClean}) { // backtrack
		c.Inc(perf.EvCAS)
	}
	return false
}

// helpMarked splices p (and the deleted leaf) out from under gp and cleans
// the DFLAG.
func (t *Ellen) helpMarked(c *perf.Ctx, op *eDInfo) {
	other := op.p.right.Load()
	if other == op.l {
		other = op.p.left.Load()
	}
	casChild(c, op.gp, op.p, other)                                    // dchild
	if op.gp.update.CompareAndSwap(op.flagUpd, &eUpd{state: eClean}) { // dunflag
		c.Inc(perf.EvCAS)
	}
}

// InsertCtx implements core.Instrumented.
func (t *Ellen) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		_, p, l, _, pupdate := t.search(c, k)
		c.ParseEnd()
		if l.key == k {
			return false // ASCY3 for free
		}
		if pupdate.state != eClean {
			t.help(c, pupdate)
			c.Inc(perf.EvRestart)
			continue
		}
		nl := newELeaf(k, v)
		var ni *eNode
		if k < l.key {
			ni = newEInternal(l.key)
			ni.left.Store(nl)
			ni.right.Store(l)
		} else {
			ni = newEInternal(k)
			ni.left.Store(l)
			ni.right.Store(nl)
		}
		op := &eIInfo{p: p, newInternal: ni, l: l}
		op.flagUpd = &eUpd{state: eIFlag, info: op}
		if p.update.CompareAndSwap(pupdate, op.flagUpd) { // iflag
			c.Inc(perf.EvCAS)
			t.helpInsert(c, op)
			return true
		}
		c.Inc(perf.EvCASFail)
		t.help(c, p.update.Load())
		c.Inc(perf.EvRestart)
	}
}

// RemoveCtx implements core.Instrumented.
func (t *Ellen) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		c.ParseBegin()
		gp, p, l, gpupdate, pupdate := t.search(c, k)
		c.ParseEnd()
		if l.key != k {
			return 0, false // ASCY3
		}
		if gpupdate.state != eClean {
			t.help(c, gpupdate)
			c.Inc(perf.EvRestart)
			continue
		}
		if pupdate.state != eClean {
			t.help(c, pupdate)
			c.Inc(perf.EvRestart)
			continue
		}
		op := &eDInfo{gp: gp, p: p, l: l, pupdate: pupdate}
		op.flagUpd = &eUpd{state: eDFlag, info: op}
		if gp.update.CompareAndSwap(gpupdate, op.flagUpd) { // dflag
			c.Inc(perf.EvCAS)
			if t.helpDelete(c, op) {
				return l.val, true
			}
		} else {
			c.Inc(perf.EvCASFail)
			t.help(c, gp.update.Load())
		}
		c.Inc(perf.EvRestart)
	}
}

// Search looks up k.
func (t *Ellen) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Ellen) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Ellen) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts non-sentinel leaves. Quiescent use only.
func (t *Ellen) Size() int {
	n := 0
	stack := []*eNode{t.root.left.Load()}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !nd.internal {
			if nd.key != sentinelKey {
				n++
			}
			continue
		}
		stack = append(stack, nd.left.Load(), nd.right.Load())
	}
	return n
}
