package bst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
)

// dualLock is BST-TK's pair of small versioned ticket locks packed into one
// word (§6.2: "we further optimize the tree by assigning two smaller ticket
// locks to each node, so that the left and the right pointers can be locked
// separately"). Layout, high to low: left ticket:16, left version:16,
// right ticket:16, right version:16. A half is unlocked iff ticket ==
// version; acquiring "version v" is a single CAS that simultaneously
// validates (the version the parse observed is still current) and locks —
// steps 3–4 and 6–7 of Figure 10 collapsed into the lock word.
//
// 16-bit versions wrap after 65535 updates of one edge; a parse would have
// to stall across exactly 65536 updates of the same edge to be fooled,
// which is beyond any practical exposure (the C original has the same
// property at 32 bits).
type dualLock struct {
	w atomic.Uint64
}

const (
	ltShift = 48
	lvShift = 32
	rtShift = 16
	rvShift = 0
	half16  = 0xFFFF
)

func lockedHalf(w uint64, left bool) bool {
	if left {
		return (w>>ltShift)&half16 != (w>>lvShift)&half16
	}
	return (w>>rtShift)&half16 != (w>>rvShift)&half16
}

func versionHalf(w uint64, left bool) uint16 {
	if left {
		return uint16(w >> lvShift)
	}
	return uint16(w >> rvShift)
}

// tryLockEdge acquires the left or right half iff its version is still v.
// The CAS retries only when the *other* half moved underneath (that does not
// invalidate this half's version).
func (l *dualLock) tryLockEdge(left bool, v uint16) bool {
	for {
		w := l.w.Load()
		if lockedHalf(w, left) || versionHalf(w, left) != v {
			return false
		}
		var nw uint64
		if left {
			nw = w&^(uint64(half16)<<ltShift) | uint64(v+1)<<ltShift
		} else {
			nw = w&^(uint64(half16)<<rtShift) | uint64(v+1)<<rtShift
		}
		if l.w.CompareAndSwap(w, nw) {
			return true
		}
	}
}

// unlockEdge releases a held half, publishing the new version.
func (l *dualLock) unlockEdge(left bool) {
	for {
		w := l.w.Load()
		var nw uint64
		if left {
			v := uint16(w >> ltShift) // ticket = version+1 while held
			nw = w&^(uint64(half16)<<lvShift) | uint64(v)<<lvShift
		} else {
			v := uint16(w >> rtShift)
			nw = w&^(uint64(half16)<<rvShift) | uint64(v)<<rvShift
		}
		if l.w.CompareAndSwap(w, nw) {
			return
		}
	}
}

// tryLockBoth acquires both halves at the observed versions with one CAS.
// Used by removals to freeze the node being spliced out; the node is never
// unlocked (it is retired), so any later parse that reaches it fails its
// acquisition and restarts.
func (l *dualLock) tryLockBoth(lv, rv uint16) bool {
	old := uint64(lv)<<ltShift | uint64(lv)<<lvShift | uint64(rv)<<rtShift | uint64(rv)<<rvShift
	nw := uint64(lv+1)<<ltShift | uint64(lv)<<lvShift | uint64(rv+1)<<rtShift | uint64(rv)<<rvShift
	return l.w.CompareAndSwap(old, nw)
}

type tkNode struct {
	key   core.Key
	val   core.Value
	left  atomic.Pointer[tkNode]
	right atomic.Pointer[tkNode]
	lock  dualLock
	leaf  bool
}

func (n *tkNode) child(left bool) *atomic.Pointer[tkNode] {
	if left {
		return &n.left
	}
	return &n.right
}

// TK is BST-TK (§6.2): an external tree whose internal (router) nodes carry
// the dualLock version/lock word. Updates parse optimistically, recording
// edge versions; the update then acquires exactly the observed versions
// (1 edge for an insert, the grandparent edge plus both halves of the parent
// for a remove) — failure means a concurrent update intervened, so the
// operation restarts, exactly as in Figure 10. Searches are pure traversals
// (ASCY1); unsuccessful updates return after the parse (ASCY3).
type TK struct {
	core.OrderedVia
	groot *tkNode // sentinel router above the user tree
}

// NewTK returns an empty BST-TK.
func NewTK(cfg core.Config) *TK {
	groot := &tkNode{key: sentinelKey}
	groot.left.Store(&tkNode{key: sentinelKey, leaf: true})
	groot.right.Store(&tkNode{key: sentinelKey, leaf: true})
	s := &TK{groot: groot}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// SearchCtx implements core.Instrumented: the sequential external-tree
// search, untouched.
func (t *TK) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	curr := t.groot.left.Load()
	for !curr.leaf {
		c.Inc(perf.EvTraverse)
		curr = curr.child(k < curr.key).Load()
	}
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// parse walks to the leaf for k, recording the parent edge (and grandparent
// edge) with the lock versions observed *before* loading each child, so a
// successful TryLock*(version) proves the edge did not change since.
func (t *TK) parse(c *perf.Ctx, k core.Key) (gp *tkNode, gpLeft bool, vGP uint16,
	p *tkNode, pLeft bool, vP uint16, leaf *tkNode) {
	p, pLeft = t.groot, true
	vP = versionHalf(p.lock.w.Load(), true)
	curr := p.left.Load()
	for !curr.leaf {
		c.Inc(perf.EvTraverse)
		gp, gpLeft, vGP = p, pLeft, vP
		dir := k < curr.key
		v := versionHalf(curr.lock.w.Load(), dir)
		next := curr.child(dir).Load()
		p, pLeft, vP = curr, dir, v
		curr = next
	}
	return gp, gpLeft, vGP, p, pLeft, vP, curr
}

// InsertCtx implements core.Instrumented. One lock acquisition per
// successful insert.
func (t *TK) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	for {
		c.ParseBegin()
		_, _, _, p, pLeft, vP, leaf := t.parse(c, k)
		c.ParseEnd()
		if leaf.key == k {
			return false // ASCY3: no stores on unsuccessful parse
		}
		nl := &tkNode{key: k, val: v, leaf: true}
		router := &tkNode{}
		if k < leaf.key {
			router.key = leaf.key
			router.left.Store(nl)
			router.right.Store(leaf)
		} else {
			router.key = k
			router.left.Store(leaf)
			router.right.Store(nl)
		}
		if !p.lock.tryLockEdge(pLeft, vP) {
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvRestart)
			continue
		}
		c.Inc(perf.EvLock)
		p.child(pLeft).Store(router)
		c.Inc(perf.EvStore)
		p.lock.unlockEdge(pLeft)
		return true
	}
}

// RemoveCtx implements core.Instrumented. Two lock acquisitions per
// successful remove: the grandparent edge and the parent's full lock word.
func (t *TK) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	for {
		c.ParseBegin()
		gp, gpLeft, vGP, p, pLeft, _, leaf := t.parse(c, k)
		c.ParseEnd()
		if leaf.key != k {
			return 0, false // ASCY3
		}
		if gp == nil {
			// Only the initial sentinel leaf hangs directly off the
			// sentinel router, and its key never matches.
			return 0, false
		}
		// Take a consistent view of the parent's two versions, then
		// re-validate the leaf edge under that view.
		w := p.lock.w.Load()
		if lockedHalf(w, true) || lockedHalf(w, false) {
			c.Inc(perf.EvRestart)
			continue
		}
		lv, rv := versionHalf(w, true), versionHalf(w, false)
		if p.child(pLeft).Load() != leaf {
			c.Inc(perf.EvRestart)
			continue
		}
		if !gp.lock.tryLockEdge(gpLeft, vGP) {
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvRestart)
			continue
		}
		c.Inc(perf.EvLock)
		if !p.lock.tryLockBoth(lv, rv) {
			c.Inc(perf.EvCASFail)
			gp.lock.unlockEdge(gpLeft)
			c.Inc(perf.EvRestart)
			continue
		}
		c.Inc(perf.EvLock)
		sibling := p.child(!pLeft).Load()
		gp.child(gpLeft).Store(sibling)
		c.Inc(perf.EvStore)
		gp.lock.unlockEdge(gpLeft)
		// p stays locked forever: it is retired, and the dead lock
		// word makes any straggler's version acquisition fail.
		return leaf.val, true
	}
}

// Search looks up k.
func (t *TK) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *TK) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *TK) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts non-sentinel leaves. Quiescent use only.
func (t *TK) Size() int {
	n := 0
	stack := []*tkNode{t.groot.left.Load()}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.leaf {
			if nd.key != sentinelKey {
				n++
			}
			continue
		}
		stack = append(stack, nd.left.Load(), nd.right.Load())
	}
	return n
}
