package bst

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	for _, name := range []string{
		"bst-async-int", "bst-async-ext", "bst-tk", "bst-natarajan",
		"bst-ellen", "bst-howley", "bst-drachsler", "bst-bronson",
	} {
		settest.RunRegistered(t, name)
	}
}

// orderInvariant checks BST ordering over the external trees' leaves by
// draining via Search on the full key range after a churn.
func TestTKStructure(t *testing.T) {
	tr := NewTK(core.DefaultConfig())
	for k := core.Key(1); k <= 200; k++ {
		if !tr.Insert(k, core.Value(k)) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := core.Key(2); k <= 200; k += 2 {
		if _, ok := tr.Remove(k); !ok {
			t.Fatalf("remove(%d) failed", k)
		}
	}
	checkExternalOrder(t, tr.groot.left.Load(), 0, sentinelKey)
	for k := core.Key(1); k <= 200; k++ {
		_, ok := tr.Search(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("search(%d) = %v, want %v", k, ok, want)
		}
	}
}

func checkExternalOrder(t *testing.T, n *tkNode, lo, hi core.Key) {
	t.Helper()
	if n.leaf {
		if n.key != sentinelKey && (n.key < lo || n.key >= hi) {
			t.Fatalf("leaf %d outside (%d, %d)", n.key, lo, hi)
		}
		return
	}
	checkExternalOrder(t, n.left.Load(), lo, n.key)
	checkExternalOrder(t, n.right.Load(), n.key, hi)
}

// TestTKLockAccounting checks the paper's headline property: one lock per
// successful insert, two per successful remove (§6.2).
func TestTKLockAccounting(t *testing.T) {
	tr := NewTK(core.DefaultConfig())
	ctx := &perf.Ctx{}
	const n = 500
	for k := core.Key(1); k <= n; k++ {
		tr.InsertCtx(ctx, k, 0)
	}
	if got := ctx.Count(perf.EvLock); got != n {
		t.Fatalf("locks for %d uncontended inserts = %d, want %d", n, got, n)
	}
	ctx.Reset()
	for k := core.Key(1); k <= n; k++ {
		tr.RemoveCtx(ctx, k)
	}
	if got := ctx.Count(perf.EvLock); got != 2*n {
		t.Fatalf("locks for %d uncontended removes = %d, want %d", n, got, 2*n)
	}
}

// TestNatarajanAtomicsPerUpdate checks §5/Figure 7's accounting: natarajan
// uses about two atomic operations per uncontended successful update.
func TestNatarajanAtomicsPerUpdate(t *testing.T) {
	tr := NewNatarajan(core.DefaultConfig())
	ctx := &perf.Ctx{}
	const n = 500
	for k := core.Key(1); k <= n; k++ {
		tr.InsertCtx(ctx, k, 0)
	}
	if got := ctx.Count(perf.EvCAS); got != n {
		t.Fatalf("CAS for %d uncontended inserts = %d, want %d (1 per insert)", n, got, n)
	}
	ctx.Reset()
	for k := core.Key(1); k <= n; k++ {
		tr.RemoveCtx(ctx, k)
	}
	got := ctx.Count(perf.EvCAS)
	if got != 3*n {
		// injection + tag + splice = 3 CASes; the paper's "two atomic
		// operations" counts the tag fetch-and-or separately.
		t.Fatalf("CAS for %d uncontended removes = %d, want %d", n, got, 3*n)
	}
}

// TestASCY1BSTSearchReadOnly: searches of the ASCY-compliant trees do no
// stores, CAS, or locks.
func TestASCY1BSTSearchReadOnly(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    core.Instrumented
	}{
		{"tk", NewTK(core.DefaultConfig())},
		{"natarajan", NewNatarajan(core.DefaultConfig())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for k := core.Key(1); k <= 300; k++ {
				tc.s.Insert(k, 0)
			}
			for k := core.Key(3); k <= 300; k += 3 {
				tc.s.Remove(k)
			}
			ctx := &perf.Ctx{}
			for k := core.Key(1); k <= 320; k++ {
				tc.s.SearchCtx(ctx, k)
			}
			n := ctx.Count(perf.EvStore) + ctx.Count(perf.EvCAS) +
				ctx.Count(perf.EvCASFail) + ctx.Count(perf.EvLock)
			if n != 0 {
				t.Errorf("search performed %d coherence events; ASCY1 requires 0", n)
			}
		})
	}
}

// TestHowleySearchHelps constructs the helping window deterministically: a
// node carrying a MARK operation record (as if a remover stalled before the
// splice). Howley's find must help complete the excision — the ASCY1
// violation the paper charges it for — whereas natarajan's search must not
// synchronize at all in the same situation.
func TestHowleySearchHelps(t *testing.T) {
	h := NewHowley(core.DefaultConfig())
	for k := core.Key(1); k <= 10; k++ {
		h.Insert(k, core.Value(k))
	}
	// Find the node for key 10 (a leaf-ish node) and mark it.
	_, _, curr, currOp, res := h.find(nil, 10, h.root)
	if res != hwFound {
		t.Fatal("key 10 not found")
	}
	if curr.left.Load() != nil && curr.right.Load() != nil {
		t.Skip("key 10 grew two children; pick a leaf for the planted mark")
	}
	if !curr.op.CompareAndSwap(currOp, &hwOp{state: hwMark}) {
		t.Fatal("could not plant MARK op")
	}
	ctx := &perf.Ctx{}
	if _, ok := h.SearchCtx(ctx, 10); ok {
		t.Fatal("marked node reported found")
	}
	if ctx.Count(perf.EvHelp) == 0 {
		t.Fatal("howley search did not help the pending operation")
	}
	if ctx.Count(perf.EvCAS) == 0 {
		t.Fatal("howley search helped without CASing (impossible)")
	}
}

// TestNatarajanSearchIgnoresFlags: plant a flagged edge (a deletion whose
// owner stalled after injection); the search must traverse past it without
// a single synchronization event.
func TestNatarajanSearchIgnoresFlags(t *testing.T) {
	tr := NewNatarajan(core.DefaultConfig())
	for k := core.Key(1); k <= 10; k++ {
		tr.Insert(k, core.Value(k))
	}
	rec := tr.seek(nil, 5)
	if rec.leaf.key != 5 {
		t.Fatal("seek did not land on 5")
	}
	parent := rec.parent
	addr := parent.edge(core.Key(5) < parent.key)
	if !addr.CompareAndSwap(rec.leafEdge, &nmEdge{n: rec.leaf, flag: true}) {
		t.Fatal("could not plant flag")
	}
	ctx := &perf.Ctx{}
	for k := core.Key(1); k <= 10; k++ {
		tr.SearchCtx(ctx, k)
	}
	if n := ctx.Count(perf.EvCAS) + ctx.Count(perf.EvCASFail) + ctx.Count(perf.EvStore) + ctx.Count(perf.EvHelp); n != 0 {
		t.Fatalf("natarajan search synchronized %d times across a flagged edge; ASCY1 requires 0", n)
	}
	// The flagged deletion is completed by the next UPDATE that runs into
	// it (helping belongs to updates under ASCY).
	if tr.Insert(5, 99) {
		t.Fatal("insert of flagged-but-present key succeeded")
	}
}

// TestEllenSearchIgnoresInfoRecords: plant an IFLAG on an internal node (an
// insert whose owner stalled); ellen's *search* must pass it untouched —
// helping in ellen belongs to updates ("updates help outstanding operations
// on the nodes that they intend to modify", Table 1) — while a conflicting
// update must help complete it.
func TestEllenHelpOnUpdateNotSearch(t *testing.T) {
	tr := NewEllen(core.DefaultConfig())
	for k := core.Key(1); k <= 8; k++ {
		tr.Insert(k, core.Value(k))
	}
	// Build a stalled insert of key 9 by hand: flag the parent without
	// completing the child swap.
	gp, p, l, _, pupdate := tr.search(nil, 9)
	_ = gp
	nl := newELeaf(9, 90)
	var ni *eNode
	if core.Key(9) < l.key {
		ni = newEInternal(l.key)
		ni.left.Store(nl)
		ni.right.Store(l)
	} else {
		ni = newEInternal(9)
		ni.left.Store(l)
		ni.right.Store(nl)
	}
	op := &eIInfo{p: p, newInternal: ni, l: l}
	op.flagUpd = &eUpd{state: eIFlag, info: op}
	if !p.update.CompareAndSwap(pupdate, op.flagUpd) {
		t.Fatal("could not plant IFLAG")
	}
	// Searches pass through without helping (and don't see key 9 yet:
	// the stalled insert has not linked its subtree).
	ctx := &perf.Ctx{}
	if _, ok := tr.SearchCtx(ctx, 9); ok {
		t.Fatal("key 9 visible before the insert's child CAS")
	}
	if n := ctx.Count(perf.EvCAS) + ctx.Count(perf.EvHelp) + ctx.Count(perf.EvStore); n != 0 {
		t.Fatalf("ellen search performed %d events while passing a flag", n)
	}
	// An update in the flagged region must help the stalled insert to
	// completion first — afterwards key 9 is present.
	if tr.Insert(9, 91) {
		t.Fatal("insert(9) succeeded; it should have helped the stalled insert of 9 and failed")
	}
	if v, ok := tr.Search(9); !ok || v != 90 {
		t.Fatalf("after helping, search(9) = (%d,%v), want (90,true)", v, ok)
	}
}

// TestBronsonRoutingNodeLifecycle: removing a node with two children demotes
// it to a routing node (partial externality); a later insert of the same key
// revives it in place.
func TestBronsonRoutingNodeLifecycle(t *testing.T) {
	tr := NewBronson(core.DefaultConfig())
	// 20 is the root of a small balanced region with two children.
	for _, k := range []core.Key{20, 10, 30, 5, 15, 25, 35} {
		tr.Insert(k, core.Value(k*10))
	}
	if v, ok := tr.Remove(20); !ok || v != 200 {
		t.Fatalf("remove(20) = (%d,%v)", v, ok)
	}
	if _, ok := tr.Search(20); ok {
		t.Fatal("demoted routing node still reported found")
	}
	// The node object remains as a router; other keys stay reachable.
	for _, k := range []core.Key{5, 10, 15, 25, 30, 35} {
		if _, ok := tr.Search(k); !ok {
			t.Fatalf("key %d lost after routing demotion", k)
		}
	}
	// Reviving insert: same key, new value, no structural change.
	if !tr.Insert(20, 999) {
		t.Fatal("revival insert failed")
	}
	if v, ok := tr.Search(20); !ok || v != 999 {
		t.Fatalf("revived search(20) = (%d,%v)", v, ok)
	}
	if tr.Size() != 7 {
		t.Fatalf("size = %d, want 7", tr.Size())
	}
}

// TestBronsonSearchWaitsOnChanging: a reader that meets a node whose version
// has the CHANGING bit set must wait for it to clear (Table 1: "a
// search/parse can block waiting for a concurrent update to complete").
func TestBronsonSearchWaitsOnChanging(t *testing.T) {
	tr := NewBronson(core.DefaultConfig())
	for _, k := range []core.Key{20, 10, 30} {
		tr.Insert(k, core.Value(k))
	}
	// Set CHANGING on the node for 10 by hand.
	n := tr.root.right.Load() // 20
	child := n.left.Load()    // 10
	child.version.Add(bvChanging)
	done := make(chan struct{})
	go func() {
		ctx := &perf.Ctx{}
		tr.SearchCtx(ctx, 5) // must pass through 10's edge checks
		if ctx.Count(perf.EvWait) == 0 {
			t.Error("search did not record a wait on a CHANGING node")
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("search completed while the node was CHANGING")
	case <-time.After(100 * time.Millisecond):
	}
	child.version.Store((child.version.Load() + bvStep) &^ bvChanging)
	select {
	case <-done:
	case <-time.After(30 * time.Second): // generous: -race + parallel packages on small hosts
		t.Fatal("search did not resume after CHANGING cleared")
	}
}

// TestDrachslerTransplantKeepsOrder: force the two-children removal path
// repeatedly and audit the logical list and tree agreement.
func TestDrachslerTransplantKeepsOrder(t *testing.T) {
	tr := NewDrachsler(core.DefaultConfig())
	// Perfectly balanced insert order: every internal node has 2 children.
	var build func(lo, hi core.Key)
	build = func(lo, hi core.Key) {
		if lo > hi {
			return
		}
		mid := (lo + hi) / 2
		tr.Insert(mid, core.Value(mid))
		build(lo, mid-1)
		build(mid+1, hi)
	}
	build(1, 63)
	// Remove internal nodes (two children) in root-first order.
	for _, k := range []core.Key{32, 16, 48, 8, 24, 40, 56} {
		if _, ok := tr.Remove(k); !ok {
			t.Fatalf("remove(%d) failed", k)
		}
	}
	// List order must be strictly ascending and agree with Search.
	prev := core.Key(0)
	count := 0
	for n := tr.head.succ.Load(); n != tr.tail; n = n.succ.Load() {
		if n.marked.Load() {
			continue
		}
		if n.key <= prev {
			t.Fatalf("list order violated: %d after %d", n.key, prev)
		}
		prev = n.key
		count++
	}
	if count != 63-7 {
		t.Fatalf("list has %d live nodes, want %d", count, 63-7)
	}
	for k := core.Key(1); k <= 63; k++ {
		removed := k == 32 || k == 16 || k == 48 || k == 8 || k == 24 || k == 40 || k == 56
		if _, ok := tr.Search(k); ok == removed {
			t.Fatalf("search(%d) = %v after transplants", k, ok)
		}
	}
}
