package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	key      string
	data     string
	flags    uint32
	expireAt int64
}

func writeTestFile(t *testing.T, path string, h Header, recs []rec) int64 {
	t.Helper()
	size, err := WriteFile(path, func(f io.Writer) error {
		w, err := NewWriter(f, h)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := w.Add([]byte(r.key), r.flags, r.expireAt, []byte(r.data)); err != nil {
				return err
			}
		}
		return w.Close()
	})
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return size
}

func readAll(path string) ([]rec, Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Header{}, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, Header{}, err
	}
	var out []rec
	for {
		rr, err := r.Next()
		if err == io.EOF {
			return out, r.Header(), nil
		}
		if err != nil {
			return out, r.Header(), err
		}
		out = append(out, rec{
			key:      string(rr.Key),
			data:     string(rr.Data),
			flags:    rr.Flags,
			expireAt: rr.ExpireAt,
		})
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var recs []rec
	for i := 0; i < 5000; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		recs = append(recs, rec{
			key:      fmt.Sprintf("key-%06d", i),
			data:     string(data),
			flags:    rng.Uint32(),
			expireAt: rng.Int63n(1 << 40),
		})
	}
	// Include the degenerate record shapes.
	recs = append(recs, rec{key: "", data: "", flags: 0, expireAt: 0})

	path := filepath.Join(t.TempDir(), "snap.db")
	h := Header{Algo: "sl-fraser-opt", Shards: 4, Ordered: true, CreatedUnix: 1_754_000_000}
	size := writeTestFile(t, path, h, recs)
	st, err := os.Stat(path)
	if err != nil || st.Size() != size {
		t.Fatalf("size: stat=%v want %d err=%v", st, size, err)
	}

	gh, n, err := VerifyFile(path)
	if err != nil {
		t.Fatalf("VerifyFile: %v", err)
	}
	if n != uint64(len(recs)) {
		t.Fatalf("VerifyFile items = %d, want %d", n, len(recs))
	}
	if gh.Algo != h.Algo || gh.Shards != h.Shards || !gh.Ordered || gh.CreatedUnix != h.CreatedUnix || gh.Version != Version {
		t.Fatalf("header mismatch: %+v", gh)
	}

	got, _, err := readAll(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestSnapshotEmptyFileOfRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	writeTestFile(t, path, Header{Algo: "ht-clht-lb", Shards: 1}, nil)
	got, _, err := readAll(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot: got %d records, err %v", len(got), err)
	}
	if _, n, err := VerifyFile(path); err != nil || n != 0 {
		t.Fatalf("VerifyFile: n=%d err=%v", n, err)
	}
}

// TestSnapshotCorruptionMatrix is the satellite corruption matrix: every
// damaged shape must be detected (ErrCorrupt or a read error), and none may
// panic. The cases mirror what a crash or bit-rot can actually produce.
func TestSnapshotCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.db")
	var recs []rec
	for i := 0; i < 2000; i++ {
		recs = append(recs, rec{
			key:  fmt.Sprintf("key-%06d", i),
			data: fmt.Sprintf("value-%06d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		})
	}
	writeTestFile(t, good, Header{Algo: "ll-lazy", Shards: 2}, recs)
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"zero-length", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-mid-block", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-trailer", func(b []byte) []byte { return b[:len(b)-6] }},
		{"flipped-byte-mid-record", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"flipped-byte-in-header", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[12] ^= 0x01
			return c
		}},
		{"bad-file-crc", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"absurd-length-field", func(b []byte) []byte {
			// Overwrite the first block's length prefix with a huge
			// value; the reader must refuse, not allocate gigabytes.
			c := append([]byte(nil), b...)
			off := headerSize(t, c)
			c[off] = 0xFF
			c[off+1] = 0xFF
			c[off+2] = 0xFF
			c[off+3] = 0x7F
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".db")
			if err := os.WriteFile(path, tc.mutate(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := VerifyFile(path); err == nil {
				t.Fatalf("VerifyFile accepted %s", tc.name)
			}
			// Reading directly must error out too (possibly after a
			// prefix of valid records), and must never panic.
			if _, _, err := readAll(path); err == nil {
				t.Fatalf("readAll accepted %s", tc.name)
			}
		})
	}
}

// headerSize computes the byte offset just past the header of an encoded
// snapshot, by re-parsing the algo length at its fixed position.
func headerSize(t *testing.T, b []byte) int {
	t.Helper()
	// magic(8) version(4) flags(4) shards(4) created(8) algoLen(4)
	if len(b) < 32 {
		t.Fatalf("blob too short for header")
	}
	algoLen := int(uint32(b[28]) | uint32(b[29])<<8 | uint32(b[30])<<16 | uint32(b[31])<<24)
	return 32 + algoLen + 4 // + header CRC
}

// TestSnapshotTamperedCountRejected: trailer says N but the stream has
// fewer records (a targeted splice rather than random damage).
func TestSnapshotTamperedCountRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Algo: "ht-clht-lb", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.Add([]byte("a"), 0, 0, []byte("1"))
	w.items = 7 // lie
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("tampered count accepted")
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			return
		}
	}
}

// TestWriteFileErrorLeavesOldIntact: a fill that fails mid-way (the
// in-process analogue of dying mid-snapshot) must leave the previous file
// byte-identical and clean up its temp file.
func TestWriteFileErrorLeavesOldIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	writeTestFile(t, path, Header{Algo: "ht-clht-lb", Shards: 1}, []rec{{key: "k", data: "v"}})
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	_, err = WriteFile(path, func(f io.Writer) error {
		w, err := NewWriter(f, Header{Algo: "ht-clht-lb", Shards: 1})
		if err != nil {
			return err
		}
		for i := 0; i < 100_000; i++ {
			if err := w.Add([]byte("kkkkkkkkkk"), 0, 0, []byte("vvvvvvvvvvvvvvvvvvvv")); err != nil {
				return err
			}
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFile error = %v, want boom", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed WriteFile modified the previous snapshot")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
	// A stray temp file from a SIGKILLed writer must not confuse a
	// subsequent load (loads go by path, never by temp globs) and must
	// not block the next successful write.
	stray := filepath.Join(dir, "snap.db.tmp-killed")
	if err := os.WriteFile(stray, []byte("torn half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyFile(path); err != nil {
		t.Fatalf("old file no longer verifies: %v", err)
	}
	writeTestFile(t, path, Header{Algo: "ht-clht-lb", Shards: 1}, []rec{{key: "k2", data: "v2"}})
	got, _, err := readAll(path)
	if err != nil || len(got) != 1 || got[0].key != "k2" {
		t.Fatalf("rewrite over stray temp failed: %v %v", got, err)
	}
}
