// Package snapshot defines ascyserve's on-disk snapshot format and the
// crash-safe file protocol around it.
//
// # Format (all integers little-endian)
//
//	header:
//	  magic    [8]byte  "ASCYSNP1"
//	  version  uint32   schema version (currently 1)
//	  flags    uint32   bit0: ordered keyspace
//	  shards   uint32   shard count of the writing store (informational)
//	  created  int64    unix seconds the snapshot was taken
//	  algoLen  uint32 + algo bytes (backing algorithm name, informational)
//	  hdrCRC   uint32   CRC32 (IEEE) of every header byte above
//	blocks (repeated):
//	  blockLen uint32   payload length; 0 terminates the block stream
//	  blockCRC uint32   CRC32 of the payload
//	  payload            records packed back to back:
//	    keyLen   uint32 + key bytes
//	    flags    uint32   item flags
//	    expireAt int64    absolute unix expiry (0 = never) — wallclock, so
//	                      TTLs survive restart
//	    dataLen  uint32 + data bytes
//	trailer:
//	  items    uint64   total records written
//	  fileCRC  uint32   CRC32 of every preceding byte in the file
//
// Length prefixes make truncation detectable, per-block CRCs localize
// bit-flips to the record stream, and the whole-file CRC plus the item
// count in the trailer prove the file is complete: a reader that consumes
// the terminator, matches the count, and matches the file CRC has
// validated every byte it returned.
//
// # Crash safety
//
// WriteFile never touches the destination path until the new snapshot is
// complete and durable: it writes to a same-directory temp file, fsyncs
// it, atomically renames it over the destination, then fsyncs the
// directory. A crash — SIGKILL included — at any instant leaves either the
// previous complete file or the new complete file at the path, never a
// torn one; at worst a stray *.tmp-* sibling remains, which the next
// successful write cannot be confused with.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Magic identifies a snapshot file; the trailing digit is the major format
// generation (bumped only on incompatible layout changes — additive changes
// bump the header version field).
const Magic = "ASCYSNP1"

// Version is the current schema version written into headers.
const Version = 1

const (
	flagOrdered = 1 << 0

	// blockTarget is the payload size a Writer accumulates before
	// flushing a block: big enough to amortize the CRC and syscall,
	// small enough that a flipped byte invalidates little.
	blockTarget = 64 << 10

	// Sanity caps applied while reading, so a corrupt length field costs
	// an error, not an absurd allocation. Keys on the wire are ≤250
	// bytes and values ≤ the server's item cap (default 1 MiB,
	// configurable); these caps sit far above both.
	maxKeyLen   = 1 << 16
	maxDataLen  = 1 << 30
	maxBlockLen = 1 << 26
	maxAlgoLen  = 1 << 10
)

// ErrCorrupt wraps every integrity failure (bad magic, CRC mismatch,
// truncation, implausible length). errors.Is(err, ErrCorrupt) holds for
// all of them.
var ErrCorrupt = errors.New("snapshot: corrupt file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Header describes a snapshot stream.
type Header struct {
	Algo        string // backing algorithm of the writing store
	Shards      uint32 // shard count of the writing store
	Ordered     bool   // ordered keyspace (order-preserving key encoding)
	CreatedUnix int64  // unix seconds the snapshot was taken
	Version     uint32 // schema version read from the file (writers use Version)
}

// Record is one item. Key and Data alias the Reader's block buffer and are
// valid only until the next call to Next — copy them to retain.
type Record struct {
	Key      []byte
	Data     []byte
	Flags    uint32
	ExpireAt int64 // absolute unix seconds; 0 = never expires
}

// Writer streams records into the format. Errors are sticky: after any
// write error, Add and Close keep returning it.
type Writer struct {
	w     *bufio.Writer
	crc   hash.Hash32 // whole-file CRC, fed by everything written
	block []byte      // current block payload
	items uint64
	err   error
	done  bool
}

// NewWriter writes the header for h and returns a Writer for the record
// stream. The caller owns durability (flush/fsync) of the underlying
// writer; see WriteFile for the crash-safe file protocol.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	sw := &Writer{
		w:     bufio.NewWriterSize(w, 64<<10),
		crc:   crc32.NewIEEE(),
		block: make([]byte, 0, blockTarget+4<<10),
	}
	var flags uint32
	if h.Ordered {
		flags |= flagOrdered
	}
	hdr := make([]byte, 0, 40+len(h.Algo))
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, h.Shards)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(h.CreatedUnix))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(h.Algo)))
	hdr = append(hdr, h.Algo...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if err := sw.write(hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

func (w *Writer) write(p []byte) error {
	if w.err != nil {
		return w.err
	}
	w.crc.Write(p) // hash.Hash Write never errors
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
	return w.err
}

// Add appends one record.
func (w *Writer) Add(key []byte, flags uint32, expireAt int64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		w.err = errors.New("snapshot: Add after Close")
		return w.err
	}
	w.block = binary.LittleEndian.AppendUint32(w.block, uint32(len(key)))
	w.block = append(w.block, key...)
	w.block = binary.LittleEndian.AppendUint32(w.block, flags)
	w.block = binary.LittleEndian.AppendUint64(w.block, uint64(expireAt))
	w.block = binary.LittleEndian.AppendUint32(w.block, uint32(len(data)))
	w.block = append(w.block, data...)
	w.items++
	if len(w.block) >= blockTarget {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if len(w.block) == 0 {
		return w.err
	}
	var pfx [8]byte
	binary.LittleEndian.PutUint32(pfx[0:4], uint32(len(w.block)))
	binary.LittleEndian.PutUint32(pfx[4:8], crc32.ChecksumIEEE(w.block))
	if err := w.write(pfx[:]); err != nil {
		return err
	}
	err := w.write(w.block)
	w.block = w.block[:0]
	return err
}

// Items reports how many records have been added.
func (w *Writer) Items() uint64 { return w.items }

// Close flushes the final block and writes the terminator and trailer. It
// does not sync or close the underlying writer.
func (w *Writer) Close() error {
	if w.done {
		return w.err
	}
	w.done = true
	if err := w.flushBlock(); err != nil {
		return err
	}
	var term [4]byte // blockLen == 0 terminates the record stream
	if err := w.write(term[:]); err != nil {
		return err
	}
	var items [8]byte
	binary.LittleEndian.PutUint64(items[:], w.items)
	if err := w.write(items[:]); err != nil {
		return err
	}
	var fcrc [4]byte
	binary.LittleEndian.PutUint32(fcrc[:], w.crc.Sum32())
	if _, err := w.w.Write(fcrc[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Reader validates and iterates a snapshot stream. Every integrity check
// the format affords runs as the stream is consumed; Next never returns a
// record from a block whose CRC has not already been verified.
type Reader struct {
	r      *bufio.Reader
	crc    hash.Hash32
	hdr    Header
	block  []byte // current verified block payload
	off    int    // read offset into block
	items  uint64 // records returned so far
	err    error
	atEOF  bool
	record Record
}

// NewReader parses and verifies the header.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReaderSize(r, 64<<10), crc: crc32.NewIEEE()}
	fixed := make([]byte, len(Magic)+4+4+4+8+4)
	if err := sr.read(fixed); err != nil {
		return nil, corruptf("short header: %v", err)
	}
	if string(fixed[:len(Magic)]) != Magic {
		return nil, corruptf("bad magic %q", fixed[:len(Magic)])
	}
	p := fixed[len(Magic):]
	ver := binary.LittleEndian.Uint32(p[0:4])
	if ver == 0 || ver > Version {
		return nil, corruptf("unsupported version %d", ver)
	}
	flags := binary.LittleEndian.Uint32(p[4:8])
	shards := binary.LittleEndian.Uint32(p[8:12])
	created := int64(binary.LittleEndian.Uint64(p[12:20]))
	algoLen := binary.LittleEndian.Uint32(p[20:24])
	if algoLen > maxAlgoLen {
		return nil, corruptf("implausible algo length %d", algoLen)
	}
	algo := make([]byte, algoLen)
	if err := sr.read(algo); err != nil {
		return nil, corruptf("short header algo: %v", err)
	}
	hcrc := crc32.NewIEEE()
	hcrc.Write(fixed)
	hcrc.Write(algo)
	var crcBuf [4]byte
	if err := sr.read(crcBuf[:]); err != nil {
		return nil, corruptf("short header crc: %v", err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != hcrc.Sum32() {
		return nil, corruptf("header crc mismatch")
	}
	sr.hdr = Header{
		Algo:        string(algo),
		Shards:      shards,
		Ordered:     flags&flagOrdered != 0,
		CreatedUnix: created,
		Version:     ver,
	}
	return sr, nil
}

// read fills p fully, feeding the whole-file CRC.
func (r *Reader) read(p []byte) error {
	if _, err := io.ReadFull(r.r, p); err != nil {
		return err
	}
	r.crc.Write(p)
	return nil
}

// Header returns the parsed header.
func (r *Reader) Header() Header { return r.hdr }

// Items reports how many records Next has returned.
func (r *Reader) Items() uint64 { return r.items }

// Next returns the next record, io.EOF after the final record once the
// terminator, item count, and whole-file CRC have all verified, or an
// ErrCorrupt-wrapped error. Record contents are valid until the next call.
func (r *Reader) Next() (*Record, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.off >= len(r.block) {
		if err := r.nextBlock(); err != nil {
			r.err = err
			return nil, err
		}
		if r.atEOF {
			r.err = io.EOF
			return nil, io.EOF
		}
	}
	b := r.block[r.off:]
	// keyLen key flags expireAt dataLen data
	if len(b) < 4 {
		r.err = corruptf("truncated record header")
		return nil, r.err
	}
	keyLen := binary.LittleEndian.Uint32(b[0:4])
	if keyLen > maxKeyLen {
		r.err = corruptf("implausible key length %d", keyLen)
		return nil, r.err
	}
	need := 4 + int(keyLen) + 4 + 8 + 4
	if len(b) < need {
		r.err = corruptf("record overruns block")
		return nil, r.err
	}
	key := b[4 : 4+keyLen]
	p := b[4+keyLen:]
	flags := binary.LittleEndian.Uint32(p[0:4])
	expireAt := int64(binary.LittleEndian.Uint64(p[4:12]))
	dataLen := binary.LittleEndian.Uint32(p[12:16])
	if dataLen > maxDataLen {
		r.err = corruptf("implausible data length %d", dataLen)
		return nil, r.err
	}
	if len(p) < 16+int(dataLen) {
		r.err = corruptf("record data overruns block")
		return nil, r.err
	}
	r.record = Record{
		Key:      key,
		Data:     p[16 : 16+dataLen],
		Flags:    flags,
		ExpireAt: expireAt,
	}
	r.off += need + int(dataLen)
	r.items++
	return &r.record, nil
}

// nextBlock reads and CRC-verifies the next block, or — on the zero-length
// terminator — verifies the trailer and sets atEOF.
func (r *Reader) nextBlock() error {
	var lenBuf [4]byte
	if err := r.read(lenBuf[:]); err != nil {
		return corruptf("truncated block stream: %v", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 {
		return r.readTrailer()
	}
	if n > maxBlockLen {
		return corruptf("implausible block length %d", n)
	}
	var crcBuf [4]byte
	if err := r.read(crcBuf[:]); err != nil {
		return corruptf("truncated block crc: %v", err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if cap(r.block) < int(n) {
		r.block = make([]byte, n)
	}
	r.block = r.block[:n]
	if err := r.read(r.block); err != nil {
		return corruptf("truncated block payload: %v", err)
	}
	if crc32.ChecksumIEEE(r.block) != want {
		return corruptf("block crc mismatch")
	}
	r.off = 0
	return nil
}

func (r *Reader) readTrailer() error {
	var items [8]byte
	if err := r.read(items[:]); err != nil {
		return corruptf("truncated trailer: %v", err)
	}
	if got := binary.LittleEndian.Uint64(items[:]); got != r.items {
		return corruptf("item count mismatch: trailer says %d, stream had %d", got, r.items)
	}
	want := r.crc.Sum32() // covers everything up to and including the item count
	var fcrc [4]byte
	if _, err := io.ReadFull(r.r, fcrc[:]); err != nil {
		return corruptf("truncated file crc: %v", err)
	}
	if binary.LittleEndian.Uint32(fcrc[:]) != want {
		return corruptf("file crc mismatch")
	}
	// Trailing garbage after the trailer is tolerated deliberately: the
	// validated region is self-delimiting, and rejecting appended junk
	// would make the format fragile to block-granular storage.
	r.atEOF = true
	return nil
}

// VerifyFile streams through the whole file running every integrity check
// and returns the header and record count. It allocates only the Reader's
// block buffer, so verifying before loading (the server's empty-or-previous
// guarantee: a file that fails any check loads nothing, rather than loading
// a prefix and erroring mid-way) costs one extra sequential read.
func VerifyFile(path string) (Header, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, 0, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return Header{}, 0, err
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return r.Header(), r.Items(), nil
			}
			return r.Header(), 0, err
		}
	}
}

// WriteFile runs the crash-safe file protocol: fill writes a complete
// snapshot stream (NewWriter through Writer.Close) into a same-directory
// temp file, which is then fsynced, renamed over path, and made durable
// with a directory fsync. On any error the temp file is removed and path
// is untouched. Returns the byte size of the new file.
func WriteFile(path string, fill func(f io.Writer) error) (size int64, err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = fill(f); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if err = f.Close(); err != nil {
		return 0, err
	}
	if err = os.Rename(tmp, path); err != nil {
		return 0, err
	}
	// Make the rename itself durable. Some filesystems reject directory
	// fsync; the rename is still atomic there, so this is best-effort.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return st.Size(), nil
}
