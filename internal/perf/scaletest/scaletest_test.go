package scaletest

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// TestRunMeasuresConfiguredPoints: the harness itself must work everywhere,
// single-core machines included — it measures whatever CPU points it is
// given and restores GOMAXPROCS. (Whether the curve *scales* is the gate's
// question, and that one needs real cores.)
func TestRunMeasuresConfiguredPoints(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	res, err := Run(Config{
		CPUs:     []int{1, 2},
		Duration: 60 * time.Millisecond,
		Conns:    2,
		Keys:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != prev {
		t.Fatalf("GOMAXPROCS left at %d, want restored %d", got, prev)
	}
	if len(res.Points) != 2 {
		t.Fatalf("measured %d points, want 2", len(res.Points))
	}
	for i, want := range []int{1, 2} {
		p := res.Points[i]
		if p.CPUs != want {
			t.Fatalf("point %d ran at cpus=%d, want %d", i, p.CPUs, want)
		}
		if p.Ops == 0 || p.Throughput <= 0 {
			t.Fatalf("point %d measured nothing: %+v", i, p)
		}
	}
	if res.Speedup() <= 0 || res.Efficiency() <= 0 {
		t.Fatalf("degenerate curve: speedup=%v efficiency=%v", res.Speedup(), res.Efficiency())
	}
}

// TestResultMath pins the speedup/efficiency arithmetic the gate trusts.
func TestResultMath(t *testing.T) {
	r := Result{Points: []Point{
		{CPUs: 1, Throughput: 100},
		{CPUs: 4, Throughput: 300},
	}}
	if s := r.Speedup(); s != 3.0 {
		t.Fatalf("Speedup = %v, want 3.0", s)
	}
	if e := r.Efficiency(); e != 0.75 {
		t.Fatalf("Efficiency = %v, want 0.75", e)
	}
	if s := (Result{}).Speedup(); s != 0 {
		t.Fatalf("empty Speedup = %v, want 0", s)
	}
}

// TestServerScalingGate is the regression gate on the scaling curve: a
// short 1-core vs N-core run of the served hash table must show a real
// speedup. The floor is deliberately lenient (shared CI runners are noisy;
// perfect scaling is the figure benches' business, not a pass/fail line) and
// overridable via SCALETEST_MIN_SPEEDUP; a borderline first measurement is
// retried once before failing. Machines that cannot measure scaling skip
// loudly instead of vacuously passing.
func TestServerScalingGate(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("scaling gate needs >= 2 CPUs, have %d: cannot measure multi-core scaling on this machine", runtime.NumCPU())
	}
	if raceEnabled {
		t.Skip("scaling gate is meaningless under race instrumentation (throughput ratios are distorted)")
	}
	if testing.Short() {
		t.Skip("scaling gate measures wall-clock throughput; skipped in -short")
	}
	minSpeedup := 1.15
	if env := os.Getenv("SCALETEST_MIN_SPEEDUP"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad SCALETEST_MIN_SPEEDUP %q: %v", env, err)
		}
		minSpeedup = v
	}
	n := runtime.NumCPU()
	if n > 4 {
		n = 4
	}
	cfg := Config{CPUs: []int{1, n}, Duration: 400 * time.Millisecond}

	var last Result
	for attempt := 0; attempt < 2; attempt++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
		t.Logf("attempt %d: %s", attempt+1, curveString(res))
		if res.Speedup() >= minSpeedup {
			return
		}
	}
	t.Fatalf("scaling regression: %s — speedup %.2f < floor %.2f (1→%d cores); "+
		"a store-global hot line is back on the request path, or this runner's cores are oversubscribed",
		curveString(last), last.Speedup(), minSpeedup, n)
}

func curveString(r Result) string {
	s := fmt.Sprintf("%s/%d-shard:", r.Algo, r.Shards)
	for _, p := range r.Points {
		s += fmt.Sprintf(" %d-core %.0f req/s", p.CPUs, p.Throughput)
	}
	return s + fmt.Sprintf(" (speedup %.2fx, efficiency %.2f)", r.Speedup(), r.Efficiency())
}
