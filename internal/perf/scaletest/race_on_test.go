//go:build race

package scaletest

// raceEnabled: race instrumentation multiplies every memory access's cost
// unevenly across code paths, so throughput ratios measured under it say
// nothing about production scaling. The gate skips; the harness tests run.
const raceEnabled = true
