//go:build !race

package scaletest

const raceEnabled = false
