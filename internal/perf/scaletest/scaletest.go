// Package scaletest measures and gates the server's multi-core scaling
// curve — the paper's headline claim (portable scalability of ASCY-compliant
// designs, Figures 4–9) turned into a CI check.
//
// The harness boots a fresh in-process server per core count, drives it with
// the wire load generator at GOMAXPROCS 1, then N, and reports the speedup
// and scaling efficiency between the points. A change that reintroduces a
// store-global hot line (a shared counter on the request path, a serialized
// accept queue, an allocator that bounces between cores) flattens the curve
// and fails the gate on multi-core runners; single-core machines skip with
// an explicit reason rather than pretending to have measured scaling.
package scaletest

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// Config configures one scaling measurement.
type Config struct {
	// Algo is the served structure (default ht-clht-lb, the paper's
	// fastest server backend).
	Algo string
	// Shards is the keyspace partition count (default 4 — sharding is
	// what lets a single structure family use the extra cores at all).
	Shards int
	// CPUs are the GOMAXPROCS points, in measurement order (default
	// [1, min(4, NumCPU)]). Each point gets its own freshly booted server:
	// the curve compares cold-start-equal configurations, not a warmed
	// server against a cold one.
	CPUs []int
	// Duration is the measured window per point (default 300ms — long
	// enough to swamp setup, short enough for CI).
	Duration time.Duration
	// Conns / Pipeline / Keys / UpdatePct / Seed mirror LoadgenConfig
	// (defaults: 4 conns, 8 deep, 2048 keys, 10% updates, seed 1).
	Conns     int
	Pipeline  int
	Keys      int
	UpdatePct int
	Seed      uint64
}

func (c *Config) fill() {
	if c.Algo == "" {
		c.Algo = "ht-clht-lb"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if len(c.CPUs) == 0 {
		n := runtime.NumCPU()
		if n > 4 {
			n = 4
		}
		c.CPUs = []int{1, n}
	}
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Keys <= 0 {
		c.Keys = 2048
	}
	if c.UpdatePct <= 0 {
		c.UpdatePct = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Point is one measured core count.
type Point struct {
	CPUs       int
	Throughput float64 // requests per second
	Ops        uint64
}

// Result is one measured scaling curve.
type Result struct {
	Algo   string
	Shards int
	Points []Point
}

// Speedup is T(last)/T(first): how much faster the highest core count ran
// than the lowest. 0 until two points exist.
func (r Result) Speedup() float64 {
	if len(r.Points) < 2 || r.Points[0].Throughput <= 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].Throughput / r.Points[0].Throughput
}

// Efficiency is the scaling efficiency between the first and last points:
// Speedup divided by the core-count ratio — 1.0 is perfect linear scaling.
func (r Result) Efficiency() float64 {
	if len(r.Points) < 2 || r.Points[0].CPUs <= 0 {
		return 0
	}
	ratio := float64(r.Points[len(r.Points)-1].CPUs) / float64(r.Points[0].CPUs)
	if ratio <= 0 {
		return 0
	}
	return r.Speedup() / ratio
}

// Run measures the curve: for each configured core count, boot a fresh
// in-process server (its accept workers, shards, and stat slots sized for
// that GOMAXPROCS), drive it with the wire load generator, tear it down.
// GOMAXPROCS is restored before Run returns.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	res := Result{Algo: cfg.Algo, Shards: cfg.Shards}
	err := server.RunCPUSweep(cfg.CPUs, func(c int) error {
		s, err := server.New(server.Config{
			Addr:   "127.0.0.1:0",
			Algo:   cfg.Algo,
			Shards: cfg.Shards,
		})
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		done := make(chan struct{})
		go func() { s.Serve(); close(done) }()
		lr, lerr := server.RunLoadgen(server.LoadgenConfig{
			Addr:        s.Addr().String(),
			Conns:       cfg.Conns,
			Pipeline:    cfg.Pipeline,
			Duration:    cfg.Duration,
			Keys:        cfg.Keys,
			Mix:         workload.Mix{UpdatePct: cfg.UpdatePct},
			Seed:        cfg.Seed,
			SampleEvery: 64, // latency is not the measurement here; sample thinly
		})
		s.Close()
		<-done
		if lerr != nil {
			return fmt.Errorf("scaletest: cpus=%d: %w", c, lerr)
		}
		res.Points = append(res.Points, Point{CPUs: lr.CPUs, Throughput: lr.Throughput(), Ops: lr.Ops})
		return nil
	})
	return res, err
}
