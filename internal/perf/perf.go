// Package perf provides per-operation event accounting for the CSDS
// implementations.
//
// The ASPLOS'15 paper measures hardware cache misses and argues that they are
// caused by stores and atomic operations on shared cache lines ("stores cause
// cache-line invalidations, which in turn generate cache misses", §4). Go has
// no portable access to hardware performance counters, so this package counts
// the causes instead of the symptom: shared-memory stores, CAS attempts and
// failures, lock acquisitions, operation restarts, helping, cleanup unlinks,
// and traversal lengths. Figure 3's miss/scalability correlation and the
// power model (internal/power) are rebuilt on top of these counts.
//
// A Ctx is owned by exactly one worker goroutine and is threaded through the
// instrumented operation entry points (core.Instrumented). Because every
// worker has its own Ctx, accounting is contention-free and exact. All Ctx
// methods are safe to call on a nil receiver, so implementations
// unconditionally instrument their hot paths; with a nil Ctx the cost is a
// single predictable branch.
package perf

import "time"

// Event identifies a class of instrumented memory or control events.
type Event int

// The instrumented event classes. EvStore through EvLock are "coherence
// events": each one writes a shared cache line and, on real hardware, forces
// a cache-line transfer on the next remote access.
const (
	// EvStore counts plain stores to shared structure memory
	// (pointer swings, mark bits, in-place value updates).
	EvStore Event = iota
	// EvCAS counts successful compare-and-swap operations.
	EvCAS
	// EvCASFail counts failed compare-and-swap attempts. A failed CAS
	// still acquires the line in exclusive state, so it is a coherence
	// event too.
	EvCASFail
	// EvLock counts lock acquisitions (each is at least one atomic
	// read-modify-write plus a release store).
	EvLock
	// EvRestart counts whole-operation restarts (e.g. a failed validation
	// or a failed cleanup that forces re-traversal).
	EvRestart
	// EvParseRestart counts restarts of the parse phase of an update.
	EvParseRestart
	// EvHelp counts helping steps performed on behalf of other threads'
	// pending operations (lock-free helping protocols).
	EvHelp
	// EvCleanup counts physical unlinks of logically deleted nodes
	// performed during traversals or updates.
	EvCleanup
	// EvTraverse counts node hops during traversals.
	EvTraverse
	// EvWait counts bounded-wait episodes (spinning on another thread's
	// in-flight update, as in bronson's version wait).
	EvWait

	numEvents
)

var eventNames = [numEvents]string{
	"stores", "cas", "cas-fail", "locks", "restarts",
	"parse-restarts", "helps", "cleanups", "traversals", "waits",
}

// String returns the short accounting name of the event.
func (e Event) String() string {
	if e < 0 || e >= numEvents {
		return "unknown"
	}
	return eventNames[e]
}

// Events returns all instrumented event classes in display order.
func Events() []Event {
	evs := make([]Event, numEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// Ctx accumulates events for a single worker goroutine. The zero value is
// ready to use. A nil *Ctx is valid and records nothing.
type Ctx struct {
	counts [numEvents]uint64

	// Op-level tallies, maintained by the workload driver.
	Ops, Updates, SuccUpdates uint64

	// Parse-phase timing (Figure 5d). Enabled by EnableParseTiming.
	timing       bool
	parseStart   time.Time
	ParseSamples []int64 // nanoseconds per parse phase
}

// Inc records one occurrence of event e.
func (c *Ctx) Inc(e Event) {
	if c != nil {
		c.counts[e]++
	}
}

// Add records n occurrences of event e.
func (c *Ctx) Add(e Event, n uint64) {
	if c != nil {
		c.counts[e] += n
	}
}

// Count returns the number of recorded occurrences of e.
func (c *Ctx) Count(e Event) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[e]
}

// EnableParseTiming turns on per-parse latency sampling (used by the
// skip-list parse-distribution experiment, Figure 5d).
func (c *Ctx) EnableParseTiming() {
	if c != nil {
		c.timing = true
	}
}

// ParseBegin marks the start of an update's parse phase.
func (c *Ctx) ParseBegin() {
	if c != nil && c.timing {
		c.parseStart = time.Now()
	}
}

// ParseEnd marks the end of an update's parse phase and records its latency.
func (c *Ctx) ParseEnd() {
	if c != nil && c.timing {
		c.ParseSamples = append(c.ParseSamples, time.Since(c.parseStart).Nanoseconds())
	}
}

// Coherence returns the number of coherence events: memory operations that,
// on real hardware, dirty a shared cache line and force a transfer on the
// next remote access. Locks count twice (acquire RMW + release store).
func (c *Ctx) Coherence() uint64 {
	if c == nil {
		return 0
	}
	return c.counts[EvStore] + c.counts[EvCAS] + c.counts[EvCASFail] + 2*c.counts[EvLock]
}

// Merge adds other's counters into c. Used by the workload driver to
// aggregate per-worker contexts after a run.
func (c *Ctx) Merge(other *Ctx) {
	if c == nil || other == nil {
		return
	}
	for i := range c.counts {
		c.counts[i] += other.counts[i]
	}
	c.Ops += other.Ops
	c.Updates += other.Updates
	c.SuccUpdates += other.SuccUpdates
	c.ParseSamples = append(c.ParseSamples, other.ParseSamples...)
}

// Reset clears all counters and samples.
func (c *Ctx) Reset() {
	if c == nil {
		return
	}
	*c = Ctx{timing: c.timing}
}

// PerOp returns event count per completed operation, or 0 if no operations
// were recorded.
func (c *Ctx) PerOp(e Event) float64 {
	if c == nil || c.Ops == 0 {
		return 0
	}
	return float64(c.counts[e]) / float64(c.Ops)
}

// CoherencePerOp returns coherence events per completed operation.
func (c *Ctx) CoherencePerOp() float64 {
	if c == nil || c.Ops == 0 {
		return 0
	}
	return float64(c.Coherence()) / float64(c.Ops)
}
