package perf

import "testing"

func TestNilCtxIsSafe(t *testing.T) {
	var c *Ctx
	c.Inc(EvStore)
	c.Add(EvCAS, 5)
	c.ParseBegin()
	c.ParseEnd()
	c.Reset()
	c.Merge(&Ctx{})
	if c.Count(EvStore) != 0 || c.Coherence() != 0 || c.PerOp(EvStore) != 0 {
		t.Fatal("nil ctx reported nonzero counts")
	}
}

func TestCounting(t *testing.T) {
	c := &Ctx{}
	c.Inc(EvStore)
	c.Inc(EvStore)
	c.Add(EvCAS, 3)
	c.Inc(EvCASFail)
	c.Inc(EvLock)
	if got := c.Count(EvStore); got != 2 {
		t.Fatalf("stores = %d", got)
	}
	// Coherence: 2 stores + 3 CAS + 1 CAS-fail + 2*1 lock = 8.
	if got := c.Coherence(); got != 8 {
		t.Fatalf("coherence = %d, want 8", got)
	}
	c.Ops = 4
	if got := c.PerOp(EvCAS); got != 0.75 {
		t.Fatalf("cas/op = %v, want 0.75", got)
	}
	if got := c.CoherencePerOp(); got != 2 {
		t.Fatalf("coherence/op = %v, want 2", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := &Ctx{}, &Ctx{}
	a.Inc(EvStore)
	b.Inc(EvStore)
	b.Inc(EvRestart)
	b.Ops = 7
	b.ParseSamples = []int64{10, 20}
	a.Merge(b)
	if a.Count(EvStore) != 2 || a.Count(EvRestart) != 1 || a.Ops != 7 {
		t.Fatal("merge lost counts")
	}
	if len(a.ParseSamples) != 2 {
		t.Fatal("merge lost parse samples")
	}
}

func TestParseTiming(t *testing.T) {
	c := &Ctx{}
	c.ParseBegin()
	c.ParseEnd()
	if len(c.ParseSamples) != 0 {
		t.Fatal("samples recorded without EnableParseTiming")
	}
	c.EnableParseTiming()
	for i := 0; i < 3; i++ {
		c.ParseBegin()
		c.ParseEnd()
	}
	if len(c.ParseSamples) != 3 {
		t.Fatalf("samples = %d, want 3", len(c.ParseSamples))
	}
	for _, s := range c.ParseSamples {
		if s < 0 {
			t.Fatalf("negative sample %d", s)
		}
	}
}

func TestResetKeepsTimingFlag(t *testing.T) {
	c := &Ctx{}
	c.EnableParseTiming()
	c.Inc(EvStore)
	c.Reset()
	if c.Count(EvStore) != 0 {
		t.Fatal("reset did not clear counts")
	}
	c.ParseBegin()
	c.ParseEnd()
	if len(c.ParseSamples) != 1 {
		t.Fatal("reset dropped the timing flag")
	}
}

func TestEventNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Events() {
		n := e.String()
		if n == "" || n == "unknown" {
			t.Fatalf("event %d has no name", e)
		}
		if seen[n] {
			t.Fatalf("duplicate event name %q", n)
		}
		seen[n] = true
	}
	if Event(-1).String() != "unknown" || Event(999).String() != "unknown" {
		t.Fatal("out-of-range events must stringify as unknown")
	}
}
