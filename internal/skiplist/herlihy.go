package skiplist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// hNode is a node of the optimistic skip list: marked is the logical-delete
// flag, fullyLinked is set once the whole tower is linked, and the lock
// guards the node's forward pointers.
type hNode struct {
	key         core.Key
	val         core.Value
	next        []atomic.Pointer[hNode]
	lock        locks.TAS
	marked      atomic.Bool
	fullyLinked atomic.Bool
	topLevel    int
}

// Herlihy is the simple optimistic skip list of Herlihy, Lev, Luchangco and
// Shavit (Table 1): updates optimistically find the target, lock the
// predecessors at every level, validate, and apply; searches traverse
// without locks and consult the marked/fullyLinked flags. With ReadOnlyFail
// (ASCY3, applied by the paper to this algorithm), failed updates return
// without locking.
type Herlihy struct {
	core.OrderedVia
	head         *hNode
	maxLevel     int
	readOnlyFail bool
}

// NewHerlihy returns an empty optimistic skip list.
func NewHerlihy(cfg core.Config) *Herlihy {
	ml := clampLevel(cfg)
	tail := newHNode(tailKey, 0, ml)
	tail.fullyLinked.Store(true)
	head := newHNode(headKey, 0, ml)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	head.fullyLinked.Store(true)
	s := &Herlihy{head: head, maxLevel: ml, readOnlyFail: cfg.ReadOnlyFail}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

func newHNode(k core.Key, v core.Value, h int) *hNode {
	return &hNode{key: k, val: v, next: make([]atomic.Pointer[hNode], h), topLevel: h}
}

// parse fills preds/succs and returns the highest level at which a node
// with key k was found (-1 if none).
func (l *Herlihy) parse(c *perf.Ctx, k core.Key, preds, succs []*hNode) int {
	found := -1
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			c.Inc(perf.EvTraverse)
			pred = curr
			curr = curr.next[lvl].Load()
		}
		if found < 0 && curr.key == k {
			found = lvl
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
	return found
}

// SearchCtx implements core.Instrumented: wait-free traversal; the result is
// decided by the (fullyLinked, marked) flags of the candidate.
func (l *Herlihy) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	pred := l.head
	var cand *hNode
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			c.Inc(perf.EvTraverse)
			pred = curr
			curr = curr.next[lvl].Load()
		}
		if curr.key == k {
			cand = curr
			if curr.fullyLinked.Load() && !curr.marked.Load() {
				return curr.val, true
			}
		}
	}
	if cand != nil && cand.fullyLinked.Load() && !cand.marked.Load() {
		return cand.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Herlihy) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	var preds, succs [maxHeight]*hNode
	h := randomLevel(l.maxLevel)
	for {
		c.ParseBegin()
		found := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
		c.ParseEnd()
		if found >= 0 {
			cand := succs[found]
			if !cand.marked.Load() {
				// Present (ASCY3: fail read-only). A candidate
				// that is not yet fully linked will be the
				// moment its inserter finishes, so wait for
				// the flag before reporting failure.
				for i := 0; !cand.fullyLinked.Load(); {
					i = locks.Pause(i)
					c.Inc(perf.EvWait)
				}
				return false
			}
			// Marked: its removal is in progress; retry.
			c.Inc(perf.EvParseRestart)
			continue
		}
		// Lock all predecessors up to the new tower's height and
		// validate adjacency and liveness.
		highest := -1
		valid := true
		for lvl := 0; valid && lvl < h; lvl++ {
			pred := preds[lvl]
			if lvl == 0 || pred != preds[lvl-1] {
				pred.lock.Lock()
				c.Inc(perf.EvLock)
			}
			highest = lvl
			valid = !pred.marked.Load() && !succs[lvl].marked.Load() &&
				pred.next[lvl].Load() == succs[lvl]
		}
		if !valid {
			unlockPreds(preds[:], highest)
			c.Inc(perf.EvParseRestart)
			continue
		}
		node := newHNode(k, v, h)
		for lvl := 0; lvl < h; lvl++ {
			node.next[lvl].Store(succs[lvl])
		}
		for lvl := 0; lvl < h; lvl++ {
			preds[lvl].next[lvl].Store(node)
			c.Inc(perf.EvStore)
		}
		node.fullyLinked.Store(true) // linearization point
		c.Inc(perf.EvStore)
		unlockPreds(preds[:], highest)
		return true
	}
}

// unlockPreds unlocks preds[0..highest], skipping duplicates (the same pred
// can guard several levels and is locked once).
func unlockPreds(preds []*hNode, highest int) {
	for lvl := 0; lvl <= highest; lvl++ {
		if lvl == 0 || preds[lvl] != preds[lvl-1] {
			preds[lvl].lock.Unlock()
		}
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Herlihy) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	var preds, succs [maxHeight]*hNode
	var victim *hNode
	isMarked := false
	topLevel := -1
	for {
		c.ParseBegin()
		found := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
		c.ParseEnd()
		if found >= 0 {
			victim = succs[found]
		}
		if !isMarked {
			okToDelete := found >= 0 && victim.fullyLinked.Load() &&
				victim.topLevel-1 == found && !victim.marked.Load()
			if !okToDelete {
				return 0, false // ASCY3: fail without locking
			}
			topLevel = victim.topLevel
			victim.lock.Lock()
			c.Inc(perf.EvLock)
			if victim.marked.Load() {
				victim.lock.Unlock()
				return 0, false // lost the race to another remover
			}
			victim.marked.Store(true) // linearization point
			c.Inc(perf.EvStore)
			isMarked = true
		}
		// Lock predecessors and validate, then unlink every level.
		highest := -1
		valid := true
		for lvl := 0; valid && lvl < topLevel; lvl++ {
			pred := preds[lvl]
			if lvl == 0 || pred != preds[lvl-1] {
				pred.lock.Lock()
				c.Inc(perf.EvLock)
			}
			highest = lvl
			valid = !pred.marked.Load() && pred.next[lvl].Load() == victim
		}
		if !valid {
			unlockPreds(preds[:], highest)
			c.Inc(perf.EvParseRestart)
			continue
		}
		for lvl := topLevel - 1; lvl >= 0; lvl-- {
			preds[lvl].next[lvl].Store(victim.next[lvl].Load())
			c.Inc(perf.EvStore)
		}
		victim.lock.Unlock()
		unlockPreds(preds[:], highest)
		return victim.val, true
	}
}

// Search looks up k.
func (l *Herlihy) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Herlihy) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Herlihy) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts live, fully linked elements at level 0. Quiescent use only.
func (l *Herlihy) Size() int {
	n := 0
	for curr := l.head.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}
