package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestFraserOptChurnRegression guards against the marked-ref parse bug: the
// optimistic parse can hand an update a ref read from a predecessor that was
// fully removed during the level descent; CASing such a ref used to lose
// inserts and admit duplicates. The test churns hard and then audits
// presence accounting and the level-0 structure.
func TestFraserOptChurnRegression(t *testing.T) {
	for round := 0; round < 6; round++ {
		l := NewFraser(core.DefaultConfig(), true)
		const workers = 8
		const keyRange = 64
		var present [keyRange + 1]atomic.Int64
		var insT, remT [keyRange + 1]atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*100 + w)))
				for i := 0; i < 5000; i++ {
					k := core.Key(r.Intn(keyRange) + 1)
					switch r.Intn(3) {
					case 0:
						if l.Insert(k, core.Value(k)) {
							present[k].Add(1)
							insT[k].Add(1)
						}
					case 1:
						if _, ok := l.Remove(k); ok {
							present[k].Add(-1)
							remT[k].Add(1)
						}
					default:
						l.Search(k)
					}
				}
			}(w)
		}
		wg.Wait()
		for k := core.Key(1); k <= keyRange; k++ {
			n := present[k].Load()
			_, ok := l.Search(k)
			if ok != (n == 1) {
				// Dump level-0 neighbourhood of k.
				t.Logf("round %d key %d: search=%v presence=%d inserts=%d removes=%d", round, k, ok, n, insT[k].Load(), remT[k].Load())
				found := false
				for curr := l.head.next[0].Load().n; curr != l.tail; {
					ref := curr.next[0].Load()
					if curr.key == k {
						t.Logf("  level0 has key %d marked=%v height=%d", curr.key, ref.marked, len(curr.next))
						if !ref.marked {
							found = true
						}
					}
					curr = ref.n
				}
				t.Logf("  level0 reachable unmarked: %v", found)
				// Check upper levels for the key.
				for lvl := 1; lvl < l.maxLevel; lvl++ {
					for curr := l.head.next[lvl].Load().n; curr != nil && curr != l.tail; {
						ref := curr.next[lvl].Load()
						if curr.key == k {
							t.Logf("  level%d has key %d marked=%v", lvl, curr.key, ref.marked)
						}
						curr = ref.n
					}
				}
				t.Fatalf("inconsistency found in round %d", round)
			}
		}
	}
}
