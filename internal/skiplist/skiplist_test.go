package skiplist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	for _, name := range []string{
		"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser", "sl-fraser-opt",
	} {
		settest.RunRegistered(t, name)
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	const samples = 200000
	counts := make([]int, maxHeight+1)
	for i := 0; i < samples; i++ {
		h := randomLevel(20)
		if h < 1 || h > 20 {
			t.Fatalf("level %d out of range", h)
		}
		counts[h]++
	}
	// P(h=1) = 1/2: allow generous slack.
	if f := float64(counts[1]) / samples; f < 0.45 || f > 0.55 {
		t.Fatalf("P(level=1) = %.3f, want ~0.5", f)
	}
	if f := float64(counts[2]) / samples; f < 0.20 || f > 0.30 {
		t.Fatalf("P(level=2) = %.3f, want ~0.25", f)
	}
}

// TestFraserTowerContainment: every key linked at an upper level must be
// linked (unmarked) at level 0 after quiescence.
func TestFraserTowerContainment(t *testing.T) {
	for _, opt := range []bool{false, true} {
		l := NewFraser(core.DefaultConfig(), opt)
		for k := core.Key(1); k <= 500; k++ {
			l.Insert(k, core.Value(k))
		}
		for k := core.Key(2); k <= 500; k += 2 {
			l.Remove(k)
		}
		level0 := map[core.Key]bool{}
		for curr := l.head.next[0].Load().n; curr != l.tail; {
			ref := curr.next[0].Load()
			if !ref.marked {
				level0[curr.key] = true
			}
			curr = ref.n
		}
		for lvl := 1; lvl < l.maxLevel; lvl++ {
			for curr := l.head.next[lvl].Load().n; curr != nil && curr != l.tail; {
				ref := curr.next[lvl].Load()
				if !ref.marked && !level0[curr.key] {
					t.Fatalf("opt=%v: key %d at level %d but not live at level 0", opt, curr.key, lvl)
				}
				curr = ref.n
			}
		}
	}
}

// TestHerlihySortedLevel0 checks level-0 ordering after churn.
func TestHerlihySortedLevel0(t *testing.T) {
	l := NewHerlihy(core.DefaultConfig())
	for k := core.Key(1); k <= 300; k++ {
		l.Insert(k, 0)
	}
	for k := core.Key(3); k <= 300; k += 3 {
		l.Remove(k)
	}
	prev := core.Key(0)
	for curr := l.head.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.key <= prev {
			t.Fatalf("order violated: %d after %d", curr.key, prev)
		}
		prev = curr.key
	}
}

// TestASCY12SkipListParse: compliant skip lists' searches do no stores; the
// optimized fraser parse does not restart.
func TestASCY12SkipListParse(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    core.Instrumented
	}{
		{"pugh", NewPugh(core.DefaultConfig())},
		{"herlihy", NewHerlihy(core.DefaultConfig())},
		{"fraser-opt", NewFraser(core.DefaultConfig(), true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for k := core.Key(1); k <= 200; k++ {
				tc.s.Insert(k, 0)
			}
			for k := core.Key(2); k <= 200; k += 2 {
				tc.s.Remove(k)
			}
			ctx := &perf.Ctx{}
			for k := core.Key(1); k <= 220; k++ {
				tc.s.SearchCtx(ctx, k)
			}
			n := ctx.Count(perf.EvStore) + ctx.Count(perf.EvCAS) +
				ctx.Count(perf.EvCASFail) + ctx.Count(perf.EvLock) + ctx.Count(perf.EvRestart)
			if n != 0 {
				t.Errorf("search performed %d synchronization events; ASCY1 requires 0", n)
			}
		})
	}
}

// TestFraserSearchCleansUp: the original fraser physically unlinks marked
// towers during searches; fraser-opt leaves them but still answers correctly.
func TestFraserSearchCleansUp(t *testing.T) {
	l := NewFraser(core.DefaultConfig(), false)
	for k := core.Key(1); k <= 100; k++ {
		l.Insert(k, 0)
	}
	for k := core.Key(2); k <= 100; k += 2 {
		l.Remove(k)
	}
	for k := core.Key(1); k <= 100; k++ {
		l.Search(k)
	}
	for curr := l.head.next[0].Load().n; curr != l.tail; {
		ref := curr.next[0].Load()
		if ref.marked {
			t.Fatalf("marked node %d still reachable after cleaning searches", curr.key)
		}
		curr = ref.n
	}
}
