// SSMEM node recycling for the skip lists (ASCY4 behind core.Config.Recycle).
//
// Skip-list towers complicate the "who may free" question: a node of height
// h is linked at h levels, each unlinked by a possibly different thread, so
// no single thread cheaply proves full detachment for a tall tower. The
// geometric level distribution makes this mostly irrelevant — half of all
// nodes have height 1, and a height-1 node is fully detached by exactly one
// level-0 unlink. So recycling here is deliberately partial: height-1 nodes
// are freed by the thread whose level-0 store/CAS detaches them, and taller
// towers are left to the Go GC. The reuse-rate counters reflect this (about
// half of the churned nodes recycle); EXPERIMENTS.md discusses the trade.
//
// The epoch rules are the same as for the lists: every operation, including
// searches and scans, brackets itself with OpStart/OpEnd, so a freed node's
// fields are never reinitialized while any traversal that could have
// reached it is still running. CASes compare *fRef record pointers, which
// are never recycled, so node reuse cannot cause ABA.
package skiplist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ssmem"
)

// newNodePool builds the shared allocator pool when cfg asks for
// recycling; nil means recycling is off and the nil-safe ssmem helpers
// (Pin/Unpin/FreeTo/PoolStats) all no-op.
func newNodePool[T any](cfg core.Config) *ssmem.Pool[T] {
	if !cfg.Recycle {
		return nil
	}
	return ssmem.NewPool[T](cfg.RecycleThreshold)
}

// allocF returns a Fraser node of height h, recycling only height-1 nodes.
func allocF(a *ssmem.Allocator[fNode], k core.Key, v core.Value, h int) *fNode {
	if a == nil || h != 1 {
		return newFNode(k, v, h)
	}
	n := a.Alloc()
	n.key, n.val = k, v
	if n.next == nil {
		n.next = make([]atomic.Pointer[fRef], 1)
	}
	return n
}

// freeF1 frees n if it is a recyclable height-1 node.
func freeF1(a *ssmem.Allocator[fNode], n *fNode) {
	if a != nil && n != nil && len(n.next) == 1 {
		a.Free(n)
	}
}

// freeF0Span walks the physically detached level-0 segment [from, to) —
// all marked, with frozen level-0 records — freeing its height-1 members.
func freeF0Span(a *ssmem.Allocator[fNode], from, to *fNode) {
	if a == nil {
		return
	}
	for n := from; n != to; {
		next := n.next[0].Load().n
		if len(n.next) == 1 {
			a.Free(n)
		}
		n = next
	}
}

// allocP returns a Pugh node of height h, recycling only height-1 nodes.
func allocP(a *ssmem.Allocator[pNode], k core.Key, v core.Value, h int) *pNode {
	if a == nil || h != 1 {
		return newPNode(k, v, h)
	}
	n := a.Alloc()
	n.key, n.val = k, v
	n.deleted.Store(false)
	if n.next == nil {
		n.next = make([]atomic.Pointer[pNode], 1)
	}
	return n
}

// freeP1 frees n if it is a recyclable height-1 node.
func freeP1(a *ssmem.Allocator[pNode], n *pNode) {
	if a != nil && n != nil && len(n.next) == 1 {
		a.Free(n)
	}
}
