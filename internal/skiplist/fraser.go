package skiplist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/ssmem"
)

// fRef is an immutable (successor, marked) record for one level of a tower;
// marked on node.next[lvl] means the node is logically deleted at lvl.
type fRef struct {
	n      *fNode
	marked bool
}

type fNode struct {
	key  core.Key
	val  core.Value
	next []atomic.Pointer[fRef]
}

func newFNode(k core.Key, v core.Value, h int) *fNode {
	return &fNode{key: k, val: v, next: make([]atomic.Pointer[fRef], h)}
}

// Fraser is Fraser's lock-free skip list (Table 1): updates CAS one level at
// a time; deletion marks every level top-down and linearizes at the level-0
// mark. In the original, searches and parses unlink the marked nodes they
// meet and restart when a cleanup CAS fails or a marked node is met when
// switching levels — the ASCY1/2 violations Figure 5 quantifies.
//
// With optimized == true this is fraser-opt (§5, based on the wait-free-
// contains idea of Herlihy/Lev/Shavit): searches and parses skip over marked
// nodes with plain reads, never CAS, and never restart; physical cleanup is
// deferred to the update CASes, which naturally swallow marked spans.
// With cfg.Recycle, height-1 nodes are recycled through SSMEM epochs by the
// thread whose level-0 CAS detaches them (see recycle.go for why recycling
// is height-1-only).
type Fraser struct {
	core.OrderedVia
	head, tail *fNode
	maxLevel   int
	optimized  bool
	rec        *ssmem.Pool[fNode]
}

// NewFraser returns an empty Fraser skip list; optimized selects fraser-opt.
func NewFraser(cfg core.Config, optimized bool) *Fraser {
	ml := clampLevel(cfg)
	tail := newFNode(tailKey, 0, ml)
	head := newFNode(headKey, 0, ml)
	for i := 0; i < ml; i++ {
		tail.next[i].Store(&fRef{})
		head.next[i].Store(&fRef{n: tail})
	}
	s := &Fraser{head: head, tail: tail, maxLevel: ml, optimized: optimized, rec: newNodePool[fNode](cfg)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// RecycleStats implements core.Recycler.
func (l *Fraser) RecycleStats() ssmem.Stats { return ssmem.PoolStats(l.rec) }

// search is Fraser's original search: positions preds/succs at every level,
// unlinking marked nodes on the way; restarts from the top on any conflict.
// refs[lvl] receives the exact record in preds[lvl].next[lvl] that points at
// succs[lvl], as needed by the callers' CASes.
func (l *Fraser) search(a *ssmem.Allocator[fNode], c *perf.Ctx, k core.Key, preds, succs []*fNode, refs []*fRef) {
retry:
	for {
		pred := l.head
		for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
			predRef := pred.next[lvl].Load()
			if predRef.marked {
				// pred got deleted while we were descending:
				// the "marked element met when switching
				// levels" restart.
				c.Inc(perf.EvRestart)
				continue retry
			}
			curr := predRef.n
			for {
				cRef := curr.next[lvl].Load()
				for cRef.marked {
					// Unlink the deleted node; restart on failure.
					nr := &fRef{n: cRef.n}
					if !pred.next[lvl].CompareAndSwap(predRef, nr) {
						c.Inc(perf.EvCASFail)
						c.Inc(perf.EvRestart)
						continue retry
					}
					c.Inc(perf.EvCAS)
					c.Inc(perf.EvCleanup)
					if lvl == 0 {
						// Our CAS detached curr at its only level.
						freeF1(a, curr)
					}
					predRef = nr
					curr = cRef.n
					cRef = curr.next[lvl].Load()
				}
				if curr.key < k {
					c.Inc(perf.EvTraverse)
					pred = curr
					predRef = cRef
					curr = cRef.n
					continue
				}
				break
			}
			preds[lvl] = pred
			succs[lvl] = curr
			refs[lvl] = predRef
		}
		return
	}
}

// parseOpt is the ASCY1/2 walk: skip marked nodes with plain loads, never
// store, never restart. refs[lvl] is pred's record at walk time; an update
// CAS against it atomically swallows any marked span between pred and succ.
func (l *Fraser) parseOpt(c *perf.Ctx, k core.Key, preds, succs []*fNode, refs []*fRef) {
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		predRef := pred.next[lvl].Load()
		curr := predRef.n
		for curr != l.tail {
			cRef := curr.next[lvl].Load()
			if cRef.marked {
				c.Inc(perf.EvTraverse)
				curr = cRef.n // skip deleted; no helping
				continue
			}
			if curr.key < k {
				c.Inc(perf.EvTraverse)
				pred = curr
				predRef = cRef
				curr = cRef.n
				continue
			}
			break
		}
		preds[lvl] = pred
		succs[lvl] = curr
		refs[lvl] = predRef
	}
}

func (l *Fraser) parse(a *ssmem.Allocator[fNode], c *perf.Ctx, k core.Key, preds, succs []*fNode, refs []*fRef) {
	if l.optimized {
		l.parseOpt(c, k, preds, succs, refs)
	} else {
		l.search(a, c, k, preds, succs, refs)
	}
}

// SearchCtx implements core.Instrumented.
func (l *Fraser) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	return l.searchPinned(a, c, k)
}

// SearchBatch implements core.Batcher: the whole batch of tower descents
// runs under one SSMEM epoch bracket instead of one per key, amortizing
// the allocator lease and OpStart/OpEnd that dominate a short descent's
// fixed cost. Reclamation of towers freed meanwhile is delayed by at most
// the batch's lifetime.
func (l *Fraser) SearchBatch(keys []core.Key, vals []core.Value, found []bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for i, k := range keys {
		vals[i], found[i] = l.searchPinned(a, nil, k)
	}
}

// searchPinned is the search body; the caller holds the epoch bracket.
func (l *Fraser) searchPinned(a *ssmem.Allocator[fNode], c *perf.Ctx, k core.Key) (core.Value, bool) {
	if l.optimized {
		// ASCY1: pure traversal.
		pred := l.head
		var cand *fNode
		for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load().n
			for curr != l.tail {
				cRef := curr.next[lvl].Load()
				if cRef.marked {
					c.Inc(perf.EvTraverse)
					curr = cRef.n
					continue
				}
				if curr.key < k {
					c.Inc(perf.EvTraverse)
					pred = curr
					curr = cRef.n
					continue
				}
				break
			}
			if curr != l.tail && curr.key == k {
				cand = curr
			}
		}
		if cand != nil && !cand.next[0].Load().marked {
			return cand.val, true
		}
		return 0, false
	}
	var preds, succs [maxHeight]*fNode
	var refs [maxHeight]*fRef
	l.search(a, c, k, preds[:l.maxLevel], succs[:l.maxLevel], refs[:l.maxLevel])
	if s := succs[0]; s != l.tail && s.key == k {
		return s.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Fraser) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var preds, succs [maxHeight]*fNode
	var refs [maxHeight]*fRef
	h := randomLevel(l.maxLevel)
	var node *fNode // allocated once, reused across CAS retries
	for {
		c.ParseBegin()
		l.parse(a, c, k, preds[:l.maxLevel], succs[:l.maxLevel], refs[:l.maxLevel])
		c.ParseEnd()
		if s := succs[0]; s != l.tail && s.key == k {
			freeF1(a, node) // allocated on an earlier retry, never published
			return false
		}
		// The optimistic parse may hand back a ref read from a
		// predecessor that was fully removed while we descended; its
		// record is marked. CASing it would link the new node under a
		// dead node (and resurrect the dead node's next pointer), so
		// such parses must be redone — this residual restart is why
		// fraser-opt's parse-restart rate is small but not zero in the
		// paper (§5: 0.09% vs fraser's 1.07% at 20 threads).
		if refs[0].marked {
			c.Inc(perf.EvParseRestart)
			continue
		}
		if node == nil {
			node = allocF(a, k, v, h)
		}
		for lvl := 0; lvl < h; lvl++ {
			node.next[lvl].Store(&fRef{n: succs[lvl]})
		}
		// Level 0 linearizes the insert.
		if !preds[0].next[0].CompareAndSwap(refs[0], &fRef{n: node}) {
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvParseRestart)
			continue
		}
		c.Inc(perf.EvCAS)
		// The CAS also swallowed the marked level-0 span the optimized
		// parse stepped over; free its height-1 members.
		freeF0Span(a, refs[0].n, succs[0])
		// Link the upper levels; conflicts refresh via a (cleaning)
		// search, as in Fraser's original.
		for lvl := 1; lvl < h; lvl++ {
			for {
				own := node.next[lvl].Load()
				if own.marked {
					return true // node already being deleted
				}
				// A marked ref means the recorded predecessor
				// died at this level; fall through to the
				// cleaning search for fresh positions.
				if !refs[lvl].marked && preds[lvl].next[lvl].CompareAndSwap(refs[lvl], &fRef{n: node}) {
					c.Inc(perf.EvCAS)
					break
				}
				c.Inc(perf.EvCASFail)
				l.search(a, c, k, preds[:l.maxLevel], succs[:l.maxLevel], refs[:l.maxLevel])
				if succs[0] != node {
					return true // unlinked already; stop building
				}
				if succs[lvl] != own.n {
					// Retarget our own pointer before retrying.
					if !node.next[lvl].CompareAndSwap(own, &fRef{n: succs[lvl]}) {
						return true // marked under us
					}
				}
			}
		}
		return true
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Fraser) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var preds, succs [maxHeight]*fNode
	var refs [maxHeight]*fRef
	c.ParseBegin()
	l.parse(a, c, k, preds[:l.maxLevel], succs[:l.maxLevel], refs[:l.maxLevel])
	c.ParseEnd()
	node := succs[0]
	if node == l.tail || node.key != k {
		return 0, false
	}
	// Mark top-down; level 0 decides the winner.
	for lvl := len(node.next) - 1; lvl >= 1; lvl-- {
		for {
			r := node.next[lvl].Load()
			if r.marked {
				break
			}
			if node.next[lvl].CompareAndSwap(r, &fRef{n: r.n, marked: true}) {
				c.Inc(perf.EvCAS)
				break
			}
			c.Inc(perf.EvCASFail)
		}
	}
	for {
		r := node.next[0].Load()
		if r.marked {
			return 0, false // another remover linearized first
		}
		if node.next[0].CompareAndSwap(r, &fRef{n: r.n, marked: true}) {
			c.Inc(perf.EvCAS)
			break
		}
		c.Inc(perf.EvCASFail)
	}
	val := node.val // we won the level-0 mark; read before any free
	if l.optimized {
		// Single best-effort unlink; otherwise future update CASes
		// swallow the marked span. Never CAS a marked ref: that would
		// resurrect a dead predecessor's next pointer.
		target := node.next[0].Load().n // frozen by the mark
		if !refs[0].marked && preds[0].next[0].CompareAndSwap(refs[0], &fRef{n: target}) {
			c.Inc(perf.EvCAS)
			c.Inc(perf.EvCleanup)
			// Detached [refs[0].n .. target): node plus any marked
			// span the parse stepped over.
			freeF0Span(a, refs[0].n, target)
		}
	} else {
		// Fraser: eager cleanup via a fresh search (which frees what
		// its CASes detach).
		l.search(a, c, k, preds[:l.maxLevel], succs[:l.maxLevel], refs[:l.maxLevel])
	}
	return val, true
}

// Search looks up k.
func (l *Fraser) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Fraser) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Fraser) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts unmarked elements at level 0. Quiescent use only.
func (l *Fraser) Size() int {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	n := 0
	for curr := l.head.next[0].Load().n; curr != l.tail; {
		ref := curr.next[0].Load()
		if !ref.marked {
			n++
		}
		curr = ref.n
	}
	return n
}
