//go:build race

package skiplist_test

// raceEnabled: under the race detector sync.Pool randomly drops Puts, so
// per-goroutine epoch allocators churn and their pending garbage strands
// (reclaimed by the Go GC, never reused). The reuse-rate assertions only
// hold without -race; the safety assertions hold always.
const raceEnabled = true
