package skiplist_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/settest"
	"repro/internal/skiplist"
)

func recycleCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxLevel = 8
	cfg.Recycle = true
	cfg.RecycleThreshold = 8 // tiny batches so reuse happens fast in tests
	return cfg
}

// TestRecycleConformance: the recycling variants must be semantically
// indistinguishable from the GC-backed defaults (run with -race for the
// epoch-protocol guarantees).
func TestRecycleConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() core.Set
	}{
		{"fraser", func() core.Set { return skiplist.NewFraser(recycleCfg(), false) }},
		{"fraser-opt", func() core.Set { return skiplist.NewFraser(recycleCfg(), true) }},
		{"pugh", func() core.Set { return skiplist.NewPugh(recycleCfg()) }},
	} {
		t.Run(tc.name, func(t *testing.T) { settest.Run(t, true, tc.mk) })
	}
}

// TestRecycleReuseHappens churns hard enough that height-1 towers recycle,
// and checks the counters balance (no double free, no double hand-out).
func TestRecycleReuseHappens(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() core.Set
	}{
		{"fraser", func() core.Set { return skiplist.NewFraser(recycleCfg(), false) }},
		{"fraser-opt", func() core.Set { return skiplist.NewFraser(recycleCfg(), true) }},
		{"pugh", func() core.Set { return skiplist.NewPugh(recycleCfg()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			const workers, rounds, span = 4, 300, 32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := core.Key(1 + w*span)
					for r := 0; r < rounds; r++ {
						for k := base; k < base+span; k++ {
							s.Insert(k, core.Value(k))
						}
						for k := base; k < base+span; k++ {
							s.Search(k)
							s.Remove(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if got := s.Size(); got != 0 {
				t.Fatalf("size after drain = %d, want 0", got)
			}
			st := s.(core.Recycler).RecycleStats()
			if st.Frees > st.Allocs {
				t.Fatalf("more frees than allocations (double free): %+v", st)
			}
			if st.Reused == 0 && !raceEnabled {
				t.Fatalf("no node reuse under churn: %+v", st)
			}
			if st.Garbage < 0 {
				t.Fatalf("negative garbage (double hand-out): %+v", st)
			}
		})
	}
}
