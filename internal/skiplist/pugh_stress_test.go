package skiplist

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xrand"
)

func TestPughLevelCycleHunt(t *testing.T) {
	for round := 0; round < 40; round++ {
		l := NewPugh(core.DefaultConfig())
		const workers = 8
		const keyRange = 512
		var inserts int64 = 1 << 40 // bound computed loosely below
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := xrand.New(uint64(round*100 + w + 1))
				for i := 0; i < 8000; i++ {
					k := core.Key(r.Uint64n(keyRange) + 1)
					switch r.Intn(3) {
					case 0:
						l.Insert(k, core.Value(k))
					case 1:
						l.Remove(k)
					default:
						l.Search(k)
					}
				}
			}(w)
		}
		wg.Wait()
		_ = inserts
		// Cycle detection per level: bounded walk.
		const maxSteps = 8 * 8000 * 2
		for lvl := 0; lvl < l.maxLevel; lvl++ {
			steps := 0
			prev := core.Key(0)
			descents := 0
			for curr := l.head.next[lvl].Load(); curr.key != tailKey; curr = curr.next[lvl].Load() {
				if curr.key < prev {
					descents++
				}
				prev = curr.key
				if steps++; steps > maxSteps {
					t.Fatalf("round %d: level %d walk exceeded %d steps (cycle); descents=%d", round, lvl, maxSteps, descents)
				}
			}
			if descents > 0 {
				t.Logf("round %d level %d: %d key descents (backward edges) in %d steps", round, lvl, descents, steps)
			}
		}
	}
}

// TestPughStaleUpperLinkRegression reconstructs the livelock found by the
// benchmark harness: a removal can leave a deleted node linked at upper
// levels (when its level predecessor could not be locked). Traversals that
// adopted such a node as their descent predecessor then followed its frozen
// pointers, missing live territory: removals retried forever and quiescent
// searches could miss present keys. The fixed traversals adopt only live
// predecessors, and getLock splices deleted leftovers.
func TestPughStaleUpperLinkRegression(t *testing.T) {
	l := NewPugh(core.DefaultConfig())
	// Build a list where node 50 certainly has height >= 2 by retrying.
	var x *pNode
	for attempt := 0; ; attempt++ {
		l = NewPugh(core.DefaultConfig())
		for _, k := range []core.Key{10, 30, 50, 70, 90} {
			l.Insert(k, core.Value(k))
		}
		for n := l.head.next[0].Load(); n.key != tailKey; n = n.next[0].Load() {
			if n.key == 50 && len(n.next) >= 2 {
				x = n
			}
		}
		if x != nil {
			break
		}
		if attempt > 200 {
			t.Fatal("could not build a tall node 50")
		}
	}
	// Simulate the race leftover: 50 is deleted and unlinked at level 0
	// but still linked at level >= 1 with frozen pointers.
	x.deleted.Store(true)
	for n := l.head.next[0].Load(); n.key != tailKey; n = n.next[0].Load() {
		if n.next[0].Load() == x {
			n.next[0].Store(x.next[0].Load())
		}
	}
	// Insert 60 — it links on the live path, invisible to x's frozen
	// level-0 pointer (which still jumps 50 -> 70).
	if !l.Insert(60, 600) {
		t.Fatal("insert(60) failed")
	}
	// A search for 60 must not descend through the stale node 50.
	if v, ok := l.Search(60); !ok || v != 600 {
		t.Fatalf("search(60) = (%d,%v); stale-path descent hid a live key", v, ok)
	}
	// A removal of 60 must terminate (the old code live-locked here).
	done := make(chan struct{})
	go func() {
		if _, ok := l.Remove(60); !ok {
			t.Error("remove(60) failed")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("remove(60) live-locked on the stale upper link")
	}
	if _, ok := l.Search(60); ok {
		t.Fatal("60 still present")
	}
}
