package skiplist

import (
	"repro/internal/core"
	"repro/internal/perf"
)

type seqNode struct {
	key  core.Key
	val  core.Value
	next []*seqNode
}

// Seq is the textbook sequential skip list; shared unsynchronized it is the
// paper's async skip-list upper bound. As the paper observes, racing updates
// can leave tower pointers inconsistent ("longer average path lengths"), so
// traversals carry the AsyncStepLimit bail-out.
type Seq struct {
	core.OrderedVia
	head     *seqNode
	maxLevel int
	limit    int
}

// NewSeq returns an empty sequential skip list.
func NewSeq(cfg core.Config) *Seq {
	ml := clampLevel(cfg)
	tail := &seqNode{key: tailKey, next: make([]*seqNode, ml)}
	head := &seqNode{key: headKey, next: make([]*seqNode, ml)}
	for i := range head.next {
		head.next[i] = tail
	}
	s := &Seq{head: head, maxLevel: ml, limit: cfg.AsyncStepLimit}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// parse fills preds/succs and returns the level-0 candidate.
func (l *Seq) parse(c *perf.Ctx, k core.Key, preds, succs []*seqNode) *seqNode {
	pred := l.head
	steps := 0
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl]
		for curr != nil && curr.key < k {
			c.Inc(perf.EvTraverse)
			pred = curr
			curr = curr.next[lvl]
			if steps++; l.limit > 0 && steps > l.limit {
				curr = nil
			}
		}
		if curr == nil { // malformed under races; treat as tail
			curr = &seqNode{key: tailKey, next: make([]*seqNode, l.maxLevel)}
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
	return succs[0]
}

// SearchCtx implements core.Instrumented.
func (l *Seq) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	var preds, succs [maxHeight]*seqNode
	n := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
	if n.key == k {
		return n.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Seq) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	var preds, succs [maxHeight]*seqNode
	c.ParseBegin()
	n := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
	c.ParseEnd()
	if n.key == k {
		return false
	}
	h := randomLevel(l.maxLevel)
	node := &seqNode{key: k, val: v, next: make([]*seqNode, h)}
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl] = succs[lvl]
		preds[lvl].next[lvl] = node
		c.Inc(perf.EvStore)
	}
	return true
}

// RemoveCtx implements core.Instrumented.
func (l *Seq) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	var preds, succs [maxHeight]*seqNode
	c.ParseBegin()
	n := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
	c.ParseEnd()
	if n.key != k {
		return 0, false
	}
	for lvl := 0; lvl < len(n.next); lvl++ {
		if preds[lvl].next[lvl] == n {
			preds[lvl].next[lvl] = n.next[lvl]
			c.Inc(perf.EvStore)
		}
	}
	return n.val, true
}

// Search looks up k.
func (l *Seq) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Seq) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Seq) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts elements at level 0. Quiescent use only.
func (l *Seq) Size() int {
	n := 0
	steps := 0
	for curr := l.head.next[0]; curr != nil && curr.key != tailKey; curr = curr.next[0] {
		n++
		if steps++; l.limit > 0 && steps > l.limit {
			break
		}
	}
	return n
}
