package skiplist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
	"repro/internal/ssmem"
)

// pNode is a Pugh skip-list node: one lock guards the node's forward
// pointers at every level; parse reads them optimistically.
type pNode struct {
	key     core.Key
	val     core.Value
	next    []atomic.Pointer[pNode]
	lock    locks.TAS
	deleted atomic.Bool
}

// Pugh is Pugh's concurrent skip list (Table 1): "maintains several levels
// of pugh lists. Parses towards the target node without locking." Updates
// lock one level at a time and link/unlink level by level; membership is
// decided at level 0, so partially linked towers are benign. The parse does
// no stores and never restarts (ASCY2); failed updates are read-only
// (ASCY3, with ReadOnlyFail).
// With cfg.Recycle, height-1 nodes are recycled through SSMEM epochs: the
// remover is their unique level-0 unlinker (it holds the predecessor's
// lock, and a deleted node is only ever deleted-and-linked at level 0 while
// that same lock is held), so it frees them after the unlink. Taller towers
// stay GC-backed (see recycle.go).
type Pugh struct {
	core.OrderedVia
	head         *pNode
	maxLevel     int
	readOnlyFail bool
	rec          *ssmem.Pool[pNode]
}

// NewPugh returns an empty Pugh skip list.
func NewPugh(cfg core.Config) *Pugh {
	ml := clampLevel(cfg)
	tail := newPNode(tailKey, 0, ml)
	head := newPNode(headKey, 0, ml)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	s := &Pugh{head: head, maxLevel: ml, readOnlyFail: cfg.ReadOnlyFail, rec: newNodePool[pNode](cfg)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// RecycleStats implements core.Recycler.
func (l *Pugh) RecycleStats() ssmem.Stats { return ssmem.PoolStats(l.rec) }

func newPNode(k core.Key, v core.Value, h int) *pNode {
	return &pNode{key: k, val: v, next: make([]atomic.Pointer[pNode], h)}
}

// parse fills preds/succs without any synchronization. A node that is being
// (or has been) removed can linger at upper levels with *frozen* forward
// pointers that predate newer insertions, so the descent must only adopt
// live nodes as predecessors: a live node's pointers are maintained under
// its lock and always describe the current list. Deleted nodes are used as
// stepping stones only.
func (l *Pugh) parse(c *perf.Ctx, k core.Key, preds, succs []*pNode) *pNode {
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			c.Inc(perf.EvTraverse)
			if !curr.deleted.Load() {
				pred = curr
			}
			curr = curr.next[lvl].Load()
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
	return succs[0]
}

// getLock returns the locked, live predecessor of k at the given level:
// pred.key < k, pred unlocked-deleted == false, and pred.next[lvl].key >= k
// after splicing out any deleted span that sits between (a cleanup store,
// permitted within parses by ASCY2). Returns nil if the starting point died,
// in which case the caller re-parses from the head.
func (l *Pugh) getLock(c *perf.Ctx, start *pNode, k core.Key, lvl int) *pNode {
	pred := start
	for {
		for curr := pred.next[lvl].Load(); curr.key < k; curr = curr.next[lvl].Load() {
			c.Inc(perf.EvTraverse)
			if !curr.deleted.Load() {
				pred = curr
			}
		}
		if pred.deleted.Load() {
			return nil
		}
		pred.lock.Lock()
		c.Inc(perf.EvLock)
		if pred.deleted.Load() {
			pred.lock.Unlock()
			return nil
		}
		// Under the lock, pred's successor chain may still open with
		// nodes that a concurrent removal has marked but not yet
		// unlinked at this level; splice them out while we hold the
		// only lock that guards this edge.
		first := pred.next[lvl].Load()
		curr := first
		for curr.key < k && curr.deleted.Load() {
			curr = curr.next[lvl].Load()
		}
		if curr.key >= k {
			if curr != first {
				pred.next[lvl].Store(curr)
				c.Inc(perf.EvStore)
				c.Inc(perf.EvCleanup)
			}
			return pred
		}
		// A live node with key < k appeared behind pred; hand over.
		pred.lock.Unlock()
		pred = curr
	}
}

// SearchCtx implements core.Instrumented. ASCY1: no stores or retries. The
// descent adopts only live predecessors (see parse) so that a stale frozen
// pointer can never hide a live key from a quiescent search.
func (l *Pugh) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	return l.searchPinned(c, k)
}

// searchPinned is the search body; the caller holds the epoch bracket.
func (l *Pugh) searchPinned(c *perf.Ctx, k core.Key) (core.Value, bool) {
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			c.Inc(perf.EvTraverse)
			if !curr.deleted.Load() {
				pred = curr
			}
			curr = curr.next[lvl].Load()
		}
		// A live match can be reported from any level; a deleted match
		// must not short-circuit — a reinserted live tower may exist
		// below, so keep descending.
		if curr.key == k && !curr.deleted.Load() {
			return curr.val, true
		}
	}
	return 0, false
}

// SearchBatch implements core.Batcher: one epoch bracket for the whole
// batch of descents (see Fraser.SearchBatch).
func (l *Pugh) SearchBatch(keys []core.Key, vals []core.Value, found []bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for i, k := range keys {
		vals[i], found[i] = l.searchPinned(nil, k)
	}
}

// InsertCtx implements core.Instrumented.
func (l *Pugh) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var preds, succs [maxHeight]*pNode
	h := randomLevel(l.maxLevel)
	var node *pNode // allocated once, reused across parse restarts
	for {
		c.ParseBegin()
		cand := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
		c.ParseEnd()
		if l.readOnlyFail && cand.key == k && !cand.deleted.Load() {
			freeP1(a, node) // allocated on an earlier retry, never published
			return false    // ASCY3
		}
		if node == nil {
			node = allocP(a, k, v, h)
		}
		// Level 0 decides membership.
		pred := l.getLock(c, preds[0], k, 0)
		if pred == nil {
			c.Inc(perf.EvParseRestart)
			continue
		}
		succ := pred.next[0].Load()
		if succ.key == k {
			pred.lock.Unlock()
			freeP1(a, node) // never published
			return false
		}
		node.next[0].Store(succ)
		pred.next[0].Store(node)
		c.Inc(perf.EvStore)
		pred.lock.Unlock()
		// Upper levels: link one at a time; partially linked towers
		// are fine (membership is level 0).
		for lvl := 1; lvl < h; lvl++ {
			if node.deleted.Load() {
				break // concurrently removed; stop building
			}
			pred := l.getLock(c, preds[lvl], k, lvl)
			if pred == nil {
				break
			}
			succ := pred.next[lvl].Load()
			if succ == node || succ.key == k {
				// Tower already reaches here (e.g. remove+
				// reinsert race landed elsewhere); stop.
				pred.lock.Unlock()
				break
			}
			node.next[lvl].Store(succ)
			pred.next[lvl].Store(node)
			c.Inc(perf.EvStore)
			pred.lock.Unlock()
		}
		return true
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Pugh) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var preds, succs [maxHeight]*pNode
	for {
		c.ParseBegin()
		cand := l.parse(c, k, preds[:l.maxLevel], succs[:l.maxLevel])
		c.ParseEnd()
		if l.readOnlyFail && (cand.key != k || cand.deleted.Load()) {
			return 0, false // ASCY3
		}
		// Claim the node: setting deleted under its lock makes this
		// remover the unique owner of the unlink.
		pred := l.getLock(c, preds[0], k, 0)
		if pred == nil {
			c.Inc(perf.EvParseRestart)
			continue
		}
		node := pred.next[0].Load()
		if node.key != k {
			pred.lock.Unlock()
			return 0, false
		}
		node.lock.Lock()
		c.Inc(perf.EvLock)
		node.deleted.Store(true)
		c.Inc(perf.EvStore)
		// Unlink level 0 immediately (we hold its pred).
		pred.next[0].Store(node.next[0].Load())
		c.Inc(perf.EvStore)
		val := node.val
		node.lock.Unlock()
		pred.lock.Unlock()
		// Unlink remaining levels top-down, one lock at a time,
		// resuming from the parse's predecessors rather than the head.
		for lvl := len(node.next) - 1; lvl >= 1; lvl-- {
			start := l.head
			if lvl < l.maxLevel && preds[lvl] != nil && !preds[lvl].deleted.Load() {
				start = preds[lvl]
			}
			p := l.lockPredOf(c, start, node, k, lvl)
			if p == nil {
				continue // not linked at this level (or already unlinked)
			}
			p.next[lvl].Store(node.next[lvl].Load())
			c.Inc(perf.EvStore)
			p.lock.Unlock()
		}
		// A height-1 node was linked at level 0 only; our unlink above
		// fully detached it.
		freeP1(a, node)
		return val, true
	}
}

// lockPredOf finds and locks the live node whose next[lvl] is node, scanning
// forward from start; nil if node is not linked at lvl from that path (a
// stale link, if any, is later spliced out by getLock's cleanup).
func (l *Pugh) lockPredOf(c *perf.Ctx, start, node *pNode, k core.Key, lvl int) *pNode {
	pred := start
	curr := pred.next[lvl].Load()
	for curr != node && curr.key <= k {
		if !curr.deleted.Load() {
			pred = curr
		}
		curr = curr.next[lvl].Load()
	}
	if curr != node {
		return nil
	}
	pred.lock.Lock()
	c.Inc(perf.EvLock)
	for {
		if pred.deleted.Load() {
			pred.lock.Unlock()
			return nil
		}
		curr = pred.next[lvl].Load()
		if curr == node {
			return pred
		}
		// Walk the locked window forward over any deleted span to see
		// whether node is still ahead of pred's current edge.
		scan := curr
		for scan != node && scan.key <= k && scan.deleted.Load() {
			scan = scan.next[lvl].Load()
		}
		if scan == node {
			// pred -> (deleted span) -> node: unlink node together
			// with the span in one splice under pred's lock.
			pred.next[lvl].Store(node.next[lvl].Load())
			c.Inc(perf.EvStore)
			pred.lock.Unlock()
			return nil // already unlinked; nothing left for the caller
		}
		if curr.key > k {
			pred.lock.Unlock()
			return nil
		}
		pred.lock.Unlock()
		if curr.deleted.Load() {
			return nil
		}
		pred = curr
		pred.lock.Lock()
		c.Inc(perf.EvLock)
	}
}

// Search looks up k.
func (l *Pugh) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Pugh) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Pugh) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts live elements at level 0. Quiescent use only.
func (l *Pugh) Size() int {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	n := 0
	for curr := l.head.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if !curr.deleted.Load() {
			n++
		}
	}
	return n
}
