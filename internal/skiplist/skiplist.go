// Package skiplist implements the skip-list algorithms of Table 1: the
// sequential list (async bound), Pugh's concurrent maintenance, the
// Herlihy–Lev–Luchangco–Shavit optimistic skip list, and Fraser's lock-free
// skip list together with fraser-opt, the paper's ASCY1–2 re-engineering
// (§5, Figure 5).
//
// All variants share the geometric (p = 1/2) level distribution and
// head/tail sentinels. The lock-free variants encode Fraser's per-level
// marked pointers as immutable (successor, marked) records, as in
// internal/linkedlist.
package skiplist

import (
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/core"
)

const (
	headKey = core.Key(0)
	tailKey = core.Key(math.MaxUint64)
	// maxHeight bounds towers regardless of configuration; parse buffers
	// are fixed-size arrays of this height.
	maxHeight = 32
)

// randomLevel draws a tower height in [1, maxLevel] with P(h) = 2^-h,
// using the runtime's per-thread generator so level generation adds no
// shared-memory traffic (the C library uses per-thread seeds for the same
// reason).
func randomLevel(maxLevel int) int {
	h := bits.TrailingZeros64(rand.Uint64()|1<<63) + 1
	if h > maxLevel {
		h = maxLevel
	}
	return h
}

func clampLevel(cfg core.Config) int {
	l := cfg.MaxLevel
	if l < 1 {
		l = 1
	}
	if l > maxHeight {
		l = maxHeight
	}
	return l
}

func register(name string, class core.Class, desc string, safe, ascy bool, f func(cfg core.Config) core.Set) {
	core.Register(core.Algorithm{
		Name:      "sl-" + name,
		Structure: core.SkipList,
		Class:     class,
		Desc:      desc,
		Safe:      safe,
		ASCY:      ascy,
		Ordered:   true, // skip lists enumerate level 0 in key order
		New:       f,
	})
}

func init() {
	register("async", core.Seq,
		"sequential skip list run unsynchronized; the async upper bound",
		false, false, func(cfg core.Config) core.Set { return NewSeq(cfg) })
	register("pugh", core.LockBased,
		"several levels of pugh lists; unlocked parse, per-node locks level by level (Pugh '90)",
		true, true, func(cfg core.Config) core.Set { return NewPugh(cfg) })
	register("herlihy", core.LockBased,
		"optimistic skip list: lock all preds, validate, link; marked+fullyLinked flags (Herlihy et al.)",
		true, true, func(cfg core.Config) core.Set { return NewHerlihy(cfg) })
	register("fraser", core.LockFree,
		"Fraser's lock-free skip list: CAS per level; parse restarts on failed cleanup or marked level switch",
		true, false, func(cfg core.Config) core.Set { return NewFraser(cfg, false) })
	register("fraser-opt", core.LockFree,
		"fraser re-engineered with ASCY1-2: searches/parses skip marked nodes without helping or restarting",
		true, true, func(cfg core.Config) core.Set { return NewFraser(cfg, true) })
}
