// Ordered iteration (v2 surface) for the skip lists. ascend seeks the first
// candidate with a read-only tower descent (the same O(log n) path a search
// takes, never storing or locking — ASCY1 applies to scans too), then walks
// level 0 yielding live elements. Each type embeds core.OrderedVia, which
// derives ForEach/Range/Min/Max from ascend (constructors wire it up). Like
// Size, a scan observes each element at some point during the call, not one
// atomic snapshot.
package skiplist

import (
	"repro/internal/core"
	"repro/internal/ssmem"
)

// ascend implements core.AscendFunc over the async list, bounded like every
// Seq traversal.
func (l *Seq) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	pred := l.head
	steps := 0
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl]; curr != nil && curr.key < lo; curr = pred.next[lvl] {
			pred = curr
			if steps++; l.limit > 0 && steps > l.limit {
				return
			}
		}
	}
	for curr := pred.next[0]; curr != nil && curr.key != tailKey; curr = curr.next[0] {
		if steps++; l.limit > 0 && steps > l.limit {
			return
		}
		if curr.key >= lo && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc, skipping logically deleted nodes.
// Epoch-pinned for the whole scan under recycling, like the searches.
//
// The descent must never rest pred on a deleted node (here and in the
// Herlihy and Fraser descents below): a logically deleted node stays
// physically linked until a later operation splices it out, but its own
// next pointers are frozen at deletion time — elements inserted after its
// position since then are reachable only through the live chain, so a walk
// resuming from a dead pred would skip them. Deleted nodes are stepped
// over without moving pred, exactly like the searches' parse walks.
func (l *Pugh) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl].Load(); curr != nil && curr.key < lo; curr = pred.next[lvl].Load() {
			if curr.deleted.Load() {
				break // resume the hunt one level down from live pred
			}
			pred = curr
		}
	}
	for curr := pred.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.key >= lo && !curr.deleted.Load() && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc, yielding fully linked, unmarked nodes.
func (l *Herlihy) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl].Load(); curr != nil && curr.key < lo; curr = pred.next[lvl].Load() {
			if curr.marked.Load() {
				break // never rest pred on a dead node (see Pugh.ascend)
			}
			pred = curr
		}
	}
	for curr := pred.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.key >= lo && curr.fullyLinked.Load() && !curr.marked.Load() &&
			!yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc over the marked (successor, marked)
// records, as in the searches. Epoch-pinned under recycling.
// The descent steps over marked nodes via their frozen pointers without
// resting pred on them, exactly like parseOpt: a marked node stays
// physically linked until some later CAS swallows it, but its own next
// records are frozen at marking time — an element inserted after that
// (which detached the dead node from the live chain at that level) is
// only reachable through the live chain, so a pred resting on the dead
// node would start the level-0 walk on a stale chain and skip it. The
// level-0 walk itself may pass through marked nodes safely: a marked node
// still reachable from a live level-0 predecessor has not been bypassed
// by any insert, so its frozen next skips no live element.
func (l *Fraser) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load().n
		for curr != nil && curr != l.tail {
			cRef := curr.next[lvl].Load()
			if cRef.marked {
				curr = cRef.n // dead: step over, keep pred live
				continue
			}
			if curr.key >= lo {
				break
			}
			pred = curr
			curr = cRef.n
		}
	}
	for curr := pred.next[0].Load().n; curr != l.tail; {
		ref := curr.next[0].Load()
		if curr.key >= lo && !ref.marked && !yield(curr.key, curr.val) {
			return
		}
		curr = ref.n
	}
}
