// Ordered iteration (v2 surface) for the skip lists. ascend seeks the first
// candidate with a read-only tower descent (the same O(log n) path a search
// takes, never storing or locking — ASCY1 applies to scans too), then walks
// level 0 yielding live elements. Each type embeds core.OrderedVia, which
// derives ForEach/Range/Min/Max from ascend (constructors wire it up). Like
// Size, a scan observes each element at some point during the call, not one
// atomic snapshot.
package skiplist

import (
	"repro/internal/core"
	"repro/internal/ssmem"
)

// ascend implements core.AscendFunc over the async list, bounded like every
// Seq traversal.
func (l *Seq) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	pred := l.head
	steps := 0
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl]; curr != nil && curr.key < lo; curr = pred.next[lvl] {
			pred = curr
			if steps++; l.limit > 0 && steps > l.limit {
				return
			}
		}
	}
	for curr := pred.next[0]; curr != nil && curr.key != tailKey; curr = curr.next[0] {
		if steps++; l.limit > 0 && steps > l.limit {
			return
		}
		if curr.key >= lo && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc, skipping logically deleted nodes.
// Epoch-pinned for the whole scan under recycling, like the searches.
func (l *Pugh) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl].Load(); curr != nil && curr.key < lo; curr = pred.next[lvl].Load() {
			pred = curr
		}
	}
	for curr := pred.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.key >= lo && !curr.deleted.Load() && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc, yielding fully linked, unmarked nodes.
func (l *Herlihy) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for curr := pred.next[lvl].Load(); curr != nil && curr.key < lo; curr = pred.next[lvl].Load() {
			pred = curr
		}
	}
	for curr := pred.next[0].Load(); curr.key != tailKey; curr = curr.next[0].Load() {
		if curr.key >= lo && curr.fullyLinked.Load() && !curr.marked.Load() &&
			!yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc over the marked (successor, marked)
// records, as in the searches. Epoch-pinned under recycling.
func (l *Fraser) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	pred := l.head
	for lvl := l.maxLevel - 1; lvl >= 0; lvl-- {
		for {
			curr := pred.next[lvl].Load().n
			if curr == nil || curr == l.tail || curr.key >= lo {
				break
			}
			pred = curr
		}
	}
	for curr := pred.next[0].Load().n; curr != l.tail; {
		ref := curr.next[0].Load()
		if curr.key >= lo && !ref.marked && !yield(curr.key, curr.val) {
			return
		}
		curr = ref.n
	}
}
