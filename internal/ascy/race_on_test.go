//go:build race

package ascy

// raceEnabled reports that the race detector is active. The compliance
// probe's thresholds are statistical and calibrated for uninstrumented
// timing; race instrumentation widens conflict windows enough that failed
// updates of the optimistic algorithms legitimately observe (and restart
// on) transient states they almost never see otherwise. The classification
// tests therefore skip under -race; the same code paths run race-clean in
// the settest conformance suites.
const raceEnabled = true
