package ascy

import (
	"testing"

	_ "repro" // register the catalogue
)

var probe = Probe{Workers: 4, OpsPerWorker: 8000, Keys: 128, Seed: 7}

func report(t *testing.T, name string) Report {
	t.Helper()
	r, err := CheckRegistered(name, probe)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestASCY1Classification asserts the paper's search-path classification
// (§5/Table 1): compliant searches are store/lock/retry/wait-free; the
// algorithms the paper calls out as violating ASCY1 measurably do.
func TestASCY1Classification(t *testing.T) {
	if raceEnabled {
		t.Skip("probe thresholds are calibrated for uninstrumented timing; see race_on_test.go")
	}
	pass := []string{
		"ll-lazy", "ll-pugh", "ll-harris-opt", "ll-copy",
		"ht-lazy", "ht-pugh", "ht-harris", "ht-java", "ht-clht-lb", "ht-clht-lf",
		"sl-pugh", "sl-herlihy", "sl-fraser-opt",
		"bst-tk", "bst-natarajan", "bst-ellen", "bst-drachsler",
	}
	fail := []string{
		"ll-coupling", // hand-over-hand locks every hop
		"ht-coupling",
		"ht-tbb", // reader locks on the search path
	}
	for _, name := range pass {
		if r := report(t, name); !r.ASCY1 {
			t.Errorf("%s should satisfy ASCY1; searches did %+v", name, r.Searches)
		}
	}
	for _, name := range fail {
		if r := report(t, name); r.ASCY1 {
			t.Errorf("%s should violate ASCY1 (it synchronizes on the search path) but probed clean", name)
		}
	}
}

// Note on harris/michael/howley: their ASCY1 violations (searches that help
// unlink logically deleted nodes and restart) only manifest when a search
// observes another thread's removal mid-flight. On hosts with coarse
// scheduling granularity the probe may never catch that window, so the
// black-box probe cannot assert the violation reliably; the white-box tests
// in internal/linkedlist (TestHarrisSearchHelpsCleanup) and internal/bst
// (TestHowleySearchHelps) construct the window deterministically instead.

// TestASCY3Classification: with ReadOnlyFail (the default), failed updates
// are read-only; the -no ablations lock.
func TestASCY3Classification(t *testing.T) {
	if raceEnabled {
		t.Skip("probe thresholds are calibrated for uninstrumented timing; see race_on_test.go")
	}
	pass := []string{
		"ll-lazy", "ll-pugh", "ll-copy", "ll-harris-opt",
		"ht-lazy", "ht-pugh", "ht-java", "ht-clht-lb", "ht-clht-lf",
		"sl-herlihy", "sl-fraser-opt",
		"bst-tk", "bst-natarajan",
	}
	fail := []string{"ll-lazy-no", "ll-pugh-no", "ll-copy-no", "ht-java-no", "ht-lazy-no"}
	for _, name := range pass {
		if r := report(t, name); !r.ASCY3 {
			t.Errorf("%s should satisfy ASCY3; failed updates did %+v", name, r.FailedUpdates)
		}
	}
	for _, name := range fail {
		if r := report(t, name); r.ASCY3 {
			t.Errorf("%s disables ASCY3 but its failed updates probed read-only", name)
		}
	}
}

// TestASCY4Ordering asserts the paper's Figure 7 accounting in relative
// form: natarajan and bst-tk touch fewer shared words per successful update
// than the helping/locking trees.
func TestASCY4Ordering(t *testing.T) {
	nat := report(t, "bst-natarajan").CoherencePerSuccUpdate
	tk := report(t, "bst-tk").CoherencePerSuccUpdate
	howley := report(t, "bst-howley").CoherencePerSuccUpdate
	drachsler := report(t, "bst-drachsler").CoherencePerSuccUpdate
	if nat <= 0 || tk <= 0 || howley <= 0 || drachsler <= 0 {
		t.Fatalf("probe produced empty profiles: nat=%v tk=%v howley=%v drachsler=%v", nat, tk, howley, drachsler)
	}
	if nat >= howley {
		t.Errorf("natarajan (%.2f coh/upd) should beat howley (%.2f)", nat, howley)
	}
	if tk >= drachsler {
		t.Errorf("bst-tk (%.2f coh/upd) should beat drachsler (%.2f)", tk, drachsler)
	}
}

// TestASCY2FraserOptRestartReduction: the paper's §5 measurement — applying
// ASCY2 to fraser cuts parse restarts by an order of magnitude.
func TestASCY2FraserOptRestartReduction(t *testing.T) {
	fraser := report(t, "sl-fraser").ParseRestartsPerUpdate
	opt := report(t, "sl-fraser-opt").ParseRestartsPerUpdate
	if opt > fraser {
		t.Errorf("fraser-opt restarts more than fraser: %.4f vs %.4f per update", opt, fraser)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := CheckRegistered("nope", probe); err == nil {
		t.Fatal("unknown algorithm did not error")
	}
}

func TestReportShape(t *testing.T) {
	r := report(t, "ht-clht-lb")
	total := r.Searches.Ops + r.FailedUpdates.Ops + r.SuccUpdates.Ops
	want := uint64(probe.Workers * probe.OpsPerWorker)
	if total != want {
		t.Fatalf("bucket ops = %d, want %d", total, want)
	}
	if r.SuccUpdates.Ops == 0 || r.FailedUpdates.Ops == 0 || r.Searches.Ops == 0 {
		t.Fatalf("probe produced an empty bucket: %+v", r)
	}
}
