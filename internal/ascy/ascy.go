// Package ascy makes the paper's four ASCY patterns (§5) machine-checkable.
//
// It probes a structure with a seeded concurrent workload, attributing every
// instrumented memory event to the operation class that caused it (each
// operation runs under a fresh worker-local perf context, merged into a
// per-outcome bucket afterwards). From the buckets it derives:
//
//   - ASCY1 as a hard boolean: searches performed no stores, CAS, locks,
//     restarts, or bounded waits;
//   - ASCY3 as a near-hard boolean: unsuccessful updates performed no
//     synchronization beyond parse-phase cleanup (a small tolerance absorbs
//     races like a remove that loses its final CAS after helping);
//   - ASCY2 and ASCY4 as quantitative signals: parse restarts per update,
//     and coherence events per successful update — the number the paper
//     compares against the asynchronized baseline.
//
// The compliance test in this package asserts the paper's classification:
// e.g. lazy, pugh, harris-opt, CLHT and BST-TK pass ASCY1; coupling, tbb,
// harris, michael, howley and bronson do not.
package ascy

import (
	"sync"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/xrand"
)

// Probe configures a compliance run.
type Probe struct {
	// Workers is the concurrency level (default 4 — enough to exercise
	// helping, cleanup, and validation failures).
	Workers int
	// OpsPerWorker is the probe length (default 20000).
	OpsPerWorker int
	// Keys is the hot-set size (default 256; small, to force conflicts).
	Keys int
	// Seed makes probes reproducible.
	Seed uint64
}

func (p *Probe) fill() {
	if p.Workers == 0 {
		p.Workers = 4
	}
	if p.OpsPerWorker == 0 {
		p.OpsPerWorker = 20000
	}
	if p.Keys == 0 {
		p.Keys = 256
	}
	if p.Seed == 0 {
		p.Seed = 0xA5C1
	}
}

// PerOp is an event profile normalized per operation of a bucket.
type PerOp struct {
	Ops      uint64
	Stores   float64
	CAS      float64 // successful + failed
	Locks    float64
	Restarts float64 // full restarts + parse restarts
	Waits    float64
	Cleanups float64
}

func perOp(c *perf.Ctx, ops uint64) PerOp {
	if ops == 0 {
		return PerOp{}
	}
	f := func(e perf.Event) float64 { return float64(c.Count(e)) / float64(ops) }
	return PerOp{
		Ops:      ops,
		Stores:   f(perf.EvStore),
		CAS:      f(perf.EvCAS) + f(perf.EvCASFail),
		Locks:    f(perf.EvLock),
		Restarts: f(perf.EvRestart) + f(perf.EvParseRestart),
		Waits:    f(perf.EvWait),
		Cleanups: f(perf.EvCleanup),
	}
}

// sync returns the profile's synchronization footprint net of parse-phase
// cleanup, which ASCY2/ASCY3 explicitly permit.
func (p PerOp) syncEvents() float64 {
	cas := p.CAS - p.Cleanups
	if cas < 0 {
		cas = 0
	}
	return p.Stores + cas + p.Locks
}

// Report is the outcome of a compliance probe.
type Report struct {
	Algorithm string

	Searches      PerOp // all searches (hits and misses)
	FailedUpdates PerOp // inserts of present keys, removes of absent keys
	SuccUpdates   PerOp // updates that took effect

	// ASCY1: searches performed no stores, CAS, locks, restarts, waits.
	ASCY1 bool
	// ASCY3: failed updates performed (almost) no synchronization beyond
	// parse cleanup.
	ASCY3 bool
	// ParseRestartsPerUpdate is the ASCY2 signal (lower is better;
	// compliant algorithms sit near zero).
	ParseRestartsPerUpdate float64
	// CoherencePerSuccUpdate is the ASCY4 signal: stores + CAS + 2*locks
	// per successful update (compare against the async baseline's).
	CoherencePerSuccUpdate float64
}

// ascy3Tolerance absorbs rare race artifacts (e.g. a remove that helped mark
// upper skip-list levels and then lost the deciding CAS).
const ascy3Tolerance = 0.05

// Check probes s and derives its compliance report.
func Check(name string, s core.Instrumented, p Probe) Report {
	p.fill()
	keyRange := uint64(2 * p.Keys)

	// Populate to half-full, as the paper's workloads do.
	seedRng := xrand.New(p.Seed)
	for n := 0; n < p.Keys; {
		if s.Insert(core.Key(seedRng.Uint64n(keyRange)+1), 1) {
			n++
		}
	}

	type buckets struct {
		search, failUpd, succUpd     perf.Ctx
		searches, failUpds, succUpds uint64
		restarts                     uint64
		updates                      uint64
	}
	all := make([]*buckets, p.Workers)
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		b := &buckets{}
		all[w] = b
		wg.Add(1)
		go func(w int, b *buckets) {
			defer wg.Done()
			rng := xrand.New(p.Seed + uint64(w) + 1)
			var tmp perf.Ctx
			for i := 0; i < p.OpsPerWorker; i++ {
				k := core.Key(rng.Uint64n(keyRange) + 1)
				tmp.Reset()
				switch rng.Intn(3) {
				case 0:
					s.SearchCtx(&tmp, k)
					b.search.Merge(&tmp)
					b.searches++
				case 1:
					ok := s.InsertCtx(&tmp, k, core.Value(k))
					b.updates++
					b.restarts += tmp.Count(perf.EvParseRestart) + tmp.Count(perf.EvRestart)
					if ok {
						b.succUpd.Merge(&tmp)
						b.succUpds++
					} else {
						b.failUpd.Merge(&tmp)
						b.failUpds++
					}
				default:
					_, ok := s.RemoveCtx(&tmp, k)
					b.updates++
					b.restarts += tmp.Count(perf.EvParseRestart) + tmp.Count(perf.EvRestart)
					if ok {
						b.succUpd.Merge(&tmp)
						b.succUpds++
					} else {
						b.failUpd.Merge(&tmp)
						b.failUpds++
					}
				}
			}
		}(w, b)
	}
	wg.Wait()

	var search, failUpd, succUpd perf.Ctx
	var searches, failUpds, succUpds, restarts, updates uint64
	for _, b := range all {
		search.Merge(&b.search)
		failUpd.Merge(&b.failUpd)
		succUpd.Merge(&b.succUpd)
		searches += b.searches
		failUpds += b.failUpds
		succUpds += b.succUpds
		restarts += b.restarts
		updates += b.updates
	}

	r := Report{
		Algorithm:     name,
		Searches:      perOp(&search, searches),
		FailedUpdates: perOp(&failUpd, failUpds),
		SuccUpdates:   perOp(&succUpd, succUpds),
	}
	r.ASCY1 = r.Searches.Stores == 0 && r.Searches.CAS == 0 &&
		r.Searches.Locks == 0 && r.Searches.Restarts == 0 && r.Searches.Waits == 0
	r.ASCY3 = r.FailedUpdates.syncEvents() <= ascy3Tolerance
	if updates > 0 {
		r.ParseRestartsPerUpdate = float64(restarts) / float64(updates)
	}
	if succUpds > 0 {
		r.CoherencePerSuccUpdate = float64(succUpd.Coherence()) / float64(succUpds)
	}
	return r
}

// CheckRegistered probes a registry algorithm by name.
func CheckRegistered(name string, p Probe) (Report, error) {
	set, err := core.New(name, core.Capacity(256))
	if err != nil {
		return Report{}, err
	}
	inst, ok := set.(core.Instrumented)
	if !ok {
		return Report{}, errNotInstrumented(name)
	}
	return Check(name, inst, p), nil
}

type errNotInstrumented string

func (e errNotInstrumented) Error() string {
	return "ascy: algorithm " + string(e) + " is not instrumented"
}
