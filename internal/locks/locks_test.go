package locks

import (
	"sync"
	"sync/atomic"
	"testing"
)

// exclusion hammers a lock with a plain counter; any mutual-exclusion
// violation shows up as a lost update.
func exclusion(t *testing.T, lock, unlock func()) {
	t.Helper()
	const workers = 8
	const rounds = 20000
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lock()
				counter++
				unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*rounds)
	}
}

func TestTASExclusion(t *testing.T) {
	var l TAS
	exclusion(t, l.Lock, l.Unlock)
}

func TestTicketExclusion(t *testing.T) {
	var l Ticket
	exclusion(t, l.Lock, l.Unlock)
}

func TestTASTryLock(t *testing.T) {
	var l TAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestTicketTryLock(t *testing.T) {
	var l Ticket
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

// TestTicketFIFO checks first-come-first-served service order: a goroutine
// that takes an earlier ticket enters first.
func TestTicketFIFO(t *testing.T) {
	var l Ticket
	var order []int
	var mu sync.Mutex

	l.Lock() // hold so waiters queue up
	var started, wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Ticket acquisition order == goroutine start order
			// because each waits for the previous to take its
			// ticket. Serialize ticket pulls with a handshake.
			started.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}(i)
		// Wait until the goroutine has (very likely) pulled its
		// ticket before starting the next. The ticket counter is the
		// authoritative signal.
		for int(l.next.Load()) != i+2 {
		}
	}
	started.Wait()
	l.Unlock()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want ascending", order)
		}
	}
}

func TestVTicketVersionLifecycle(t *testing.T) {
	var l VTicket
	if v := l.Version(); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	if l.Locked() {
		t.Fatal("new lock reports locked")
	}
	if !l.TryLockVersion(0) {
		t.Fatal("TryLockVersion(0) on fresh lock failed")
	}
	if !l.Locked() {
		t.Fatal("lock not reported held")
	}
	// While held, acquiring the observed version must fail.
	if l.TryLockVersion(0) {
		t.Fatal("TryLockVersion succeeded while lock held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("lock reported held after unlock")
	}
	if v := l.Version(); v != 1 {
		t.Fatalf("version after one update = %d, want 1", v)
	}
	// Stale version must be rejected — this is BST-TK's validation.
	if l.TryLockVersion(0) {
		t.Fatal("stale version accepted")
	}
	if !l.TryLockVersion(1) {
		t.Fatal("current version rejected")
	}
	l.Unlock()
}

// TestVTicketValidatesConcurrentUpdate: a writer that parsed version v must
// fail once another writer completes an update.
func TestVTicketValidatesConcurrentUpdate(t *testing.T) {
	var l VTicket
	const workers = 8
	const rounds = 5000
	var applied atomic.Int64
	var shared int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					v := l.Version()
					if l.Locked() {
						continue
					}
					if l.TryLockVersion(v) {
						shared++
						applied.Add(1)
						l.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := applied.Load(); got != workers*rounds {
		t.Fatalf("applied %d updates, want %d", got, workers*rounds)
	}
	if shared != workers*rounds {
		t.Fatalf("shared counter %d, want %d (exclusion violated)", shared, workers*rounds)
	}
	if v := l.Version(); v != uint32(workers*rounds) {
		t.Fatalf("final version %d, want %d", v, workers*rounds)
	}
}

func TestVTicketExclusion(t *testing.T) {
	var l VTicket
	lock := func() {
		for {
			v := l.Version()
			if l.TryLockVersion(v) {
				return
			}
		}
	}
	exclusion(t, lock, l.Unlock)
}
