// Package locks implements the spin locks used by the lock-based structures:
// a test-and-set lock, a ticket lock, and the versioned ticket lock that is
// the core mechanism of BST-TK (§6.2).
//
// These are user-level spin locks rather than sync.Mutex because the
// algorithms under study embed fine-grained per-node locks whose acquire and
// release paths must cost exactly one atomic read-modify-write and one store
// — the coherence behaviour the paper reasons about. All locks yield to the
// Go scheduler while spinning so that oversubscribed runs (more workers than
// cores, §4) make progress.
package locks

import (
	"runtime"
	"sync/atomic"
)

// spinThreshold is the number of busy iterations between scheduler yields.
const spinThreshold = 128

// Pause burns one spin iteration, yielding to the runtime every
// spinThreshold calls. The returned value is the next iteration count.
func Pause(i int) int {
	if i%spinThreshold == spinThreshold-1 {
		runtime.Gosched()
	}
	return i + 1
}

// TAS is a test-and-set spin lock. The zero value is unlocked.
type TAS struct {
	v atomic.Uint32
}

// TryLock attempts to acquire the lock without spinning.
func (l *TAS) TryLock() bool {
	return l.v.Load() == 0 && l.v.CompareAndSwap(0, 1)
}

// Lock acquires the lock, spinning (with test-and-test-and-set to avoid
// hammering the line) until it is free.
func (l *TAS) Lock() {
	for i := 0; ; {
		if l.TryLock() {
			return
		}
		for l.v.Load() != 0 {
			i = Pause(i)
		}
	}
}

// Unlock releases the lock with a single store.
func (l *TAS) Unlock() {
	l.v.Store(0)
}

// Locked reports whether the lock is currently held. Advisory only.
func (l *TAS) Locked() bool {
	return l.v.Load() != 0
}

// Ticket is a FIFO ticket lock. The zero value is unlocked.
type Ticket struct {
	next    atomic.Uint32
	serving atomic.Uint32
}

// Lock takes a ticket and spins until it is served. Acquisition order is
// first-come-first-served.
func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	for i := 0; l.serving.Load() != t; {
		i = Pause(i)
	}
}

// TryLock acquires the lock only if no other thread holds or awaits it.
func (l *Ticket) TryLock() bool {
	s := l.serving.Load()
	return l.next.Load() == s && l.next.CompareAndSwap(s, s+1)
}

// Unlock serves the next ticket.
func (l *Ticket) Unlock() {
	l.serving.Add(1)
}

// VTicket is the versioned ticket lock of BST-TK. The paper's observation
// (§6.2) is that a ticket lock already contains a version field: the
// "now serving" counter. BST-TK's parse records that version; its update
// then tries to acquire *that specific version* with a single CAS, which
// simultaneously validates that no concurrent update intervened and locks
// the node. Unlocking increments the version, publishing the change.
//
// The lock packs ticket (high 32 bits) and version/serving (low 32 bits)
// into one word so the acquire-and-validate is one CAS, and so two VTickets
// (left and right child locks) fit in 16 bytes of a tree node, mirroring the
// paper's two 32-bit locks per node.
type VTicket struct {
	w atomic.Uint64
}

// Version returns the current version. If the lock is held the version is
// mid-update and the caller's subsequent TryLockVersion will fail, so no
// separate "locked" check is needed on the read side.
func (l *VTicket) Version() uint32 {
	return uint32(l.w.Load())
}

// Locked reports whether the lock is currently held (ticket ahead of
// serving). Advisory; used by tests and the contention-avoidance wait.
func (l *VTicket) Locked() bool {
	w := l.w.Load()
	return uint32(w>>32) != uint32(w)
}

// TryLockVersion atomically acquires the lock iff its version is still v —
// i.e. iff the node is unlocked and unchanged since the caller's parse
// observed version v. This is steps 3–4 of the paper's Figure 10 collapsed
// into one CAS.
func (l *VTicket) TryLockVersion(v uint32) bool {
	old := uint64(v)<<32 | uint64(v)
	return l.w.CompareAndSwap(old, uint64(v+1)<<32|uint64(v))
}

// Unlock releases the lock and increments the version (steps 6–7 of
// Figure 10). Only the holder may call it.
func (l *VTicket) Unlock() {
	w := l.w.Load()
	v := uint32(w) + 1
	l.w.Store(uint64(v)<<32 | uint64(v))
}
