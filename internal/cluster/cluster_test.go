package cluster

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// startNodes boots n independent in-process servers on loopback ephemeral
// ports and returns their addresses in cluster (routing) order. Each node is
// a complete, cluster-oblivious ascyserve: its own store, its own stats, no
// knowledge of its siblings — the deployment shape the launcher script boots
// as separate processes.
func startNodes(t *testing.T, algo string, n int) []string {
	return startNodesOrdered(t, algo, n, false)
}

// startNodesOrdered is startNodes with the servers' ordered-keyspace mode
// selectable — the scan differentials need ordered nodes, everything else
// keeps the default.
func startNodesOrdered(t *testing.T, algo string, n int, ordered bool) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo, Ordered: ordered})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen(); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { s.Serve(); close(done) }()
		t.Cleanup(func() { s.Close(); <-done })
		addrs[i] = s.Addr().String()
	}
	return addrs
}

// TestClusterBasicOps drives the synchronous surface across 4 nodes: every
// key must be stored, readable, countable, and deletable through the router,
// and with a few hundred keys every node must end up serving some of them.
func TestClusterBasicOps(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	for i := 0; i < n; i++ {
		k := "k" + strconv.Itoa(i)
		if err := c.Set(k, uint32(i), 0, []byte("v"+strconv.Itoa(i))); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	for i := 0; i < n; i++ {
		k := "k" + strconv.Itoa(i)
		e, ok, err := c.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
		}
		if string(e.Data) != "v"+strconv.Itoa(i) || e.Flags != uint32(i) {
			t.Fatalf("get %s: entry %+v", k, e)
		}
	}
	if _, ok, _ := c.Get("absent"); ok {
		t.Fatal("absent key found")
	}
	if v, ok, err := c.Incr("k0", 0); err == nil && ok {
		t.Fatalf("incr of non-numeric value unexpectedly ok (%d)", v)
	}
	if err := c.Set("ctr", 0, 0, []byte("41")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Incr("ctr", 1); err != nil || !ok || v != 42 {
		t.Fatalf("incr: %d %v %v", v, ok, err)
	}
	if v, ok, err := c.Decr("ctr", 2); err != nil || !ok || v != 40 {
		t.Fatalf("decr: %d %v %v", v, ok, err)
	}
	if stored, err := c.Add("k0", 0, 0, []byte("nope")); err != nil || stored {
		t.Fatalf("add over existing key: stored=%v err=%v", stored, err)
	}
	for i := 0; i < n; i += 2 {
		k := "k" + strconv.Itoa(i)
		if ok, err := c.Delete(k); err != nil || !ok {
			t.Fatalf("delete %s: ok=%v err=%v", k, ok, err)
		}
		if _, ok, _ := c.Get(k); ok {
			t.Fatalf("deleted key %s still visible", k)
		}
	}
	for i, r := range c.NodeReqs() {
		if r == 0 {
			t.Fatalf("node %d (%s) served no requests over %d keys", i, addrs[i], n)
		}
	}
}

// TestClusterGetMulti: a multi-key get spanning all nodes must return
// exactly the present keys, whatever nodes they live on.
func TestClusterGetMulti(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]string, 32)
	for i := range keys {
		keys[i] = "mk" + strconv.Itoa(i)
		if i%2 == 0 {
			if err := c.Set(keys[i], 0, 0, []byte("val"+strconv.Itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := c.GetMulti(keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		e, ok := got[k]
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %s: present=%v want %v", k, ok, want)
		}
		if ok && string(e.Data) != "val"+strconv.Itoa(i) {
			t.Fatalf("key %s: data %q", k, e.Data)
		}
	}
}

// TestClusterPipelined queues a mixed burst through the explicit Send*/Recv*
// halves — the loadgen shape — and checks the responses come back in request
// order across the node fan-out, including split multi-gets mid-burst.
func TestClusterPipelined(t *testing.T) {
	addrs := startNodes(t, "ll-lazy", 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := c.SendStore("set", "p"+strconv.Itoa(i), 0, 0, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.SendStore("set", "d"+strconv.Itoa(i), 0, 0, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*n; i++ {
		if ok, err := c.RecvStored(); err != nil || !ok {
			t.Fatalf("set %d: stored=%v err=%v", i, ok, err)
		}
	}

	// Interleave single gets (hit and miss), split multi-gets, and deletes.
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			if err := c.SendGet1(false, "p"+strconv.Itoa(i)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := c.SendGet(false, "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := c.SendGet1(false, "missing"+strconv.Itoa(i)); err != nil {
				t.Fatal(err)
			}
		case 3:
			// Deletes target the d-range so the pipelined multi-gets above
			// and below still see all eight p-keys.
			if err := c.SendDelete("d" + strconv.Itoa(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			if es, _, err := c.RecvGetN(); err != nil || es != 1 {
				t.Fatalf("get %d: entries=%d err=%v", i, es, err)
			}
		case 1:
			if es, bytes, err := c.RecvGetN(); err != nil || es != 8 || bytes != 8 {
				t.Fatalf("multi-get %d: entries=%d bytes=%d err=%v", i, es, bytes, err)
			}
		case 2:
			if es, _, err := c.RecvGetN(); err != nil || es != 0 {
				t.Fatalf("miss %d: entries=%d err=%v", i, es, err)
			}
		case 3:
			if ok, err := c.RecvDeleted(); err != nil || !ok {
				t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
			}
		}
	}
	// Receive with nothing outstanding must fail loudly, not hang or lie.
	if _, _, err := c.RecvGetN(); err == nil {
		t.Fatal("RecvGetN with no pending request did not error")
	}
}

// TestClusterFlushAll: the one mutating broadcast must empty every node.
func TestClusterFlushAll(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 64; i++ {
		if err := c.Set("f"+strconv.Itoa(i), 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, ok, _ := c.Get("f" + strconv.Itoa(i)); ok {
			t.Fatalf("key f%d survived flush_all", i)
		}
	}
	per, err := c.NodeStats()
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range per {
		if st["curr_items"] != "0" {
			t.Fatalf("node %d holds %s items after flush_all", i, st["curr_items"])
		}
	}
}

// TestClusterStats: the aggregate view must sum the additive counters,
// recompute the batch-depth quotient, and expose the cluster-level fields.
func TestClusterStats(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 3)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const sets, gets = 90, 60
	for i := 0; i < sets; i++ {
		if err := c.Set("s"+strconv.Itoa(i), 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < gets; i++ {
		if _, _, err := c.Get("s" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cluster_nodes"] != "3" {
		t.Fatalf("cluster_nodes = %q", st["cluster_nodes"])
	}
	if st["algo"] != "ht-clht-lb" {
		t.Fatalf("algo = %q", st["algo"])
	}
	if got, _ := strconv.Atoi(st["cmd_set"]); got != sets {
		t.Fatalf("cmd_set = %s, want %d (summed across nodes)", st["cmd_set"], sets)
	}
	if got, _ := strconv.Atoi(st["cmd_get"]); got != gets {
		t.Fatalf("cmd_get = %s, want %d", st["cmd_get"], gets)
	}
	if got, _ := strconv.Atoi(st["get_hits"]); got != gets {
		t.Fatalf("get_hits = %s, want %d", st["get_hits"], gets)
	}
	var nodeReqs uint64
	for i := range addrs {
		v, ok := st["node"+strconv.Itoa(i)+"_reqs"]
		if !ok {
			t.Fatalf("missing node%d_reqs in aggregated stats", i)
		}
		n, _ := strconv.ParseUint(v, 10, 64)
		nodeReqs += n
	}
	if want := uint64(sets + gets); nodeReqs != want {
		t.Fatalf("per-node reqs sum to %d, want %d", nodeReqs, want)
	}
	if _, err := strconv.ParseFloat(st["batch_depth_avg"], 64); err != nil {
		t.Fatalf("batch_depth_avg = %q: %v", st["batch_depth_avg"], err)
	}
}

// TestClusterGetPathZeroAlloc is the scale-out allocation gate: the routed
// get path — rendezvous route, route-ring push, node send, flush, ring pop,
// discarding receive — must allocate nothing per operation in steady state,
// for both the single-key hot path and the counting-sort split multi-get.
// The servers run in-process, so the measurement covers their (also
// allocation-free) serving path too: the whole process must be silent.
func TestClusterGetPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so the server's Pin() allocates")
	}
	addrs := startNodes(t, "ht-clht-lb", 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = "alloc" + strconv.Itoa(i)
		if err := c.Set(keys[i], 0, 0, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	steps := map[string]func(){
		"get1": func() {
			if err := c.SendGet1(false, keys[3]); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if es, _, err := c.RecvGetN(); err != nil || es != 1 {
				t.Fatalf("entries=%d err=%v", es, err)
			}
		},
		"multiget-split": func() {
			if err := c.SendGet(false, keys...); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if es, _, err := c.RecvGetN(); err != nil || es != len(keys) {
				t.Fatalf("entries=%d err=%v", es, err)
			}
		},
	}
	for name, step := range steps {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 256; i++ {
				step() // steady state: scratch sized, ring grown, pools primed
			}
			if avg := testing.AllocsPerRun(512, step); avg != 0 {
				t.Fatalf("cluster %s allocates %.2f/op, want 0", name, avg)
			}
		})
	}
}

// TestLoadgenCluster runs the real load generator against a 4-node cluster
// through the Conn seam: the run must complete, spread server-side load over
// every node, and surface the per-node accounting the BENCH artifact and
// stdout report.
func TestLoadgenCluster(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 4)
	cfg := server.LoadgenConfig{
		Addr:     "cluster",
		Conns:    2,
		Pipeline: 8,
		Duration: 150 * time.Millisecond,
		Keys:     512,
		Mix:      workload.Mix{UpdatePct: 20, RangePct: 5},
		Seed:     7,
		Dial: func() (server.Conn, error) {
			return DialRetry(2*time.Second, addrs...)
		},
	}
	res, err := server.RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("loadgen completed no operations")
	}
	if res.Algo != "ht-clht-lb" {
		t.Fatalf("algo = %q (cluster stats aggregation broken?)", res.Algo)
	}
	if len(res.NodeLoads) != len(addrs) {
		t.Fatalf("NodeLoads has %d entries, want %d", len(res.NodeLoads), len(addrs))
	}
	var total uint64
	for i, nl := range res.NodeLoads {
		if nl.Reqs == 0 {
			t.Fatalf("node %d (%s) served no requests", i, nl.Addr)
		}
		if nl.Addr != addrs[i] {
			t.Fatalf("node %d addr = %q, want %q", i, nl.Addr, addrs[i])
		}
		total += nl.Reqs
	}
	if total == 0 {
		t.Fatal("no server-side requests recorded")
	}
	b := server.BenchRunOf(res)
	if b.Nodes != 4 || len(b.NodeReqs) != 4 || len(b.NodeBatchDepthAvg) != 4 {
		t.Fatalf("BenchRun v3 fields: nodes=%d node_reqs=%d node_batch_depth_avg=%d",
			b.Nodes, len(b.NodeReqs), len(b.NodeBatchDepthAvg))
	}
}

// TestClusterDialRetry: the cluster dial must absorb a node that binds late
// (the CI launcher races loadgen against N booting processes), and a
// failed dial must close the connections it already opened.
func TestClusterDialRetry(t *testing.T) {
	addrs := startNodes(t, "ht-clht-lb", 2)
	// A port nobody is listening on yet, grabbed and released.
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: "ht-clht-lb"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	late := s.Addr().String()
	s.Close()

	if _, err := Dial(append([]string{late}, addrs...)...); err == nil {
		t.Fatal("Dial of a dead node did not error")
	}

	go func() {
		time.Sleep(100 * time.Millisecond)
		s2, err := server.New(server.Config{Addr: late, Algo: "ht-clht-lb"})
		if err != nil {
			return
		}
		if err := s2.Listen(); err != nil {
			return
		}
		go s2.Serve()
		t.Cleanup(func() { s2.Close() })
	}()
	c, err := DialRetry(5*time.Second, append([]string{late}, addrs...)...)
	if err != nil {
		t.Fatalf("DialRetry did not absorb the late-bound node: %v", err)
	}
	defer c.Close()
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("k"); err != nil || !ok {
		t.Fatalf("cluster unusable after retry dial: %v %v", ok, err)
	}
}

var _ = fmt.Sprintf // keep fmt imported for future debug use
