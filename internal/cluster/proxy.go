package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/server"
)

// ServeStream serves one memcached-protocol request stream through the
// cluster: requests are parsed from r with the server's own batched framing
// (server.ReadBatchInto — same parser, same limits, same error and
// resynchronization behavior), routed and executed across the nodes, and the
// responses written to w exactly as a single server would write them. It is
// the differential-testing vehicle: for any stream avoiding the operations
// that are inherently per-node (gets/cas tokens are issued independently by
// each node, stats is aggregated), the bytes written here are identical to
// the bytes a single big server produces for the same stream — including
// noreply suppression, in-order error responses for malformed frames,
// flush_all broadcast, and fatal-error truncation.
//
// Execution is two-phase per batch, the cluster analog of the server's
// pin-amortized batch: every command in the batch is first forwarded to its
// node (multi-key gets split group-by-node), then all touched nodes are
// flushed at once, then responses are collected in request order — so a
// pipelined burst reaches all nodes concurrently instead of serializing one
// round trip per command.
//
// noreply commands are forwarded *without* noreply and their node responses
// are read and discarded: the proxy must consume exactly one response per
// forwarded request to keep its per-node pipelines aligned, and suppression
// is applied locally, where the single server applies it too.
//
// ServeStream owns the client's node connections while it runs; do not
// interleave it with other Send*/Recv* calls on the same Client. It returns
// when the stream ends (EOF, quit, or a fatal protocol error — all normal,
// nil-error endings, as for a server connection) or on a node I/O failure.
func (c *Client) ServeStream(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 64<<10)
	bw := bufio.NewWriterSize(w, 64<<10)
	defer bw.Flush()
	var batch server.Batch
	var plans []streamPlan
	cursors := make([]int, len(c.nstates))
	groups := make([][]server.Entry, len(c.nstates))
	for {
		n, err := server.ReadBatchInto(br, server.DefaultMaxItemSize, server.DefaultMaxBatch, &batch)
		if n == 0 {
			// Transport end (clean EOF or a mid-frame cut): the server closes
			// without a response either way.
			return nil
		}
		plans = plans[:0]
		closing := false
		for i := range batch.Entries {
			p, stop, perr := c.planEntry(&batch.Entries[i])
			if perr != nil {
				return perr
			}
			plans = append(plans, p)
			if stop {
				closing = true
				break
			}
		}
		if err := c.Flush(); err != nil {
			return err
		}
		for i := range plans {
			if err := c.deliver(bw, &plans[i], cursors, groups); err != nil {
				return err
			}
		}
		if closing || err != nil {
			return bw.Flush()
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// planKind discriminates the receive action a planned batch entry needs.
type planKind uint8

const (
	planLocal    planKind = iota // respond from the proxy itself (errors, version, quit)
	planLine                     // one single-line response from one node
	planGet                      // a (possibly split) get: per-node sub-responses reassembled
	planBcast                    // flush_all: one line from every node, one line out
	planStats                    // stats: fan-out, aggregate, emit
	planMRange                   // mrange: fan-out, k-way merge the sorted streams
	planMExtreme                 // mmin/mmax: fan-out, keep the best entry
)

// streamPlan is one batch entry's routing decision, recorded during the send
// phase and consumed in order by the receive phase.
type streamPlan struct {
	kind    planKind
	node    int32
	noreply bool
	close   bool   // close the stream after responding (quit, fatal error)
	line    string // planLocal's literal response ("" = respond with nothing)

	// degraded marks a fail-fast get whose keyset touches a down node: the
	// live sub-responses are still consumed (pipeline alignment), but the
	// client-facing response is the degraded error line.
	degraded bool

	// planGet reassembly state: the request-order keys, each key's node, and
	// the ascending list of nodes holding an outstanding sub-response.
	// planBcast and planStats reuse touched for the nodes actually sent to.
	withCAS bool
	keys    []string
	nodeOf  []int32
	touched []int32

	// planMRange/planMExtreme state: the (clamped) scan limit, and which
	// extreme an mmin/mmax wants (see scan.go).
	limit uint64
	isMax bool
}

// planEntry forwards one parsed batch entry to its node(s) and returns the
// receive-phase plan. stop reports that the stream must close after this
// entry's response (quit or a fatal protocol error — both are always the
// batch's last entry).
func (c *Client) planEntry(e *server.BatchEntry) (p streamPlan, stop bool, err error) {
	if e.Err != nil {
		// The proxy runs the same parser as the server, so protocol errors
		// surface here, in order, and are answered locally — never forwarded.
		p = streamPlan{kind: planLocal, noreply: e.Err.NoReply, line: e.Err.Resp, close: e.Err.Fatal}
		return p, e.Err.Fatal, nil
	}
	cmd := &e.Cmd
	switch cmd.Op {
	case server.OpQuit:
		return streamPlan{kind: planLocal, noreply: true, close: true}, true, nil

	case server.OpGet, server.OpGets:
		p = streamPlan{
			kind:    planGet,
			withCAS: cmd.Op == server.OpGets,
			keys:    make([]string, len(cmd.Keys)),
			nodeOf:  make([]int32, len(cmd.Keys)),
		}
		for i, k := range cmd.Keys {
			p.keys[i] = string(k)
			p.nodeOf[i] = int32(c.router.NodeOf(p.keys[i]))
		}
		// One sub-get per touched node, nodes ascending, each group in
		// request order — the order reassembly (deliverGet) replays. A group
		// owned by a down node degrades per policy: under miss-reads the
		// group simply misses (no sub-get, no reassembly entries); under
		// fail-fast the whole get answers the degraded error line, though
		// live sub-gets already sent are still consumed for alignment.
		for nd := range c.nstates {
			c.sub = c.sub[:0]
			for i, key := range p.keys {
				if p.nodeOf[i] == int32(nd) {
					c.sub = append(c.sub, key)
				}
			}
			if len(c.sub) == 0 {
				continue
			}
			c.reqs[nd]++
			queued := false
			if nc := c.sendEnter(nd); nc != nil {
				serr := nc.SendGet(p.withCAS, c.sub...)
				queued = c.sendExit(nd, nc, serr)
			}
			if !queued {
				if c.opts.Policy == DegradedMissReads {
					c.degMisses.Add(1)
				} else {
					c.degErrors.Add(1)
					p.degraded = true
				}
				continue
			}
			p.touched = append(p.touched, int32(nd))
		}
		return p, false, nil

	case server.OpSet, server.OpAdd, server.OpReplace, server.OpCas:
		nd := c.router.NodeOfBytes(cmd.Key)
		return c.planWrite(nd, cmd.NoReply, func(nc *server.Client) error {
			return nc.SendStore(cmd.Op.String(), string(cmd.Key), cmd.Flags, cmd.Exptime, cmd.Data, cmd.CasID)
		}), false, nil

	case server.OpDelete:
		nd := c.router.NodeOfBytes(cmd.Key)
		return c.planWrite(nd, cmd.NoReply, func(nc *server.Client) error {
			return nc.SendDelete(string(cmd.Key))
		}), false, nil

	case server.OpIncr, server.OpDecr:
		nd := c.router.NodeOfBytes(cmd.Key)
		return c.planWrite(nd, cmd.NoReply, func(nc *server.Client) error {
			return nc.SendIncrDecr(string(cmd.Key), cmd.Delta, cmd.Op == server.OpIncr)
		}), false, nil

	case server.OpFlushAll:
		// The one mutating broadcast: every live node flushes, one response
		// line comes back to the client (the parser already rejected negative
		// delays, matching the server's only local error path for flush_all).
		p = streamPlan{kind: planBcast, noreply: cmd.NoReply}
		for nd := range c.nstates {
			c.reqs[nd]++
			if nc := c.sendEnter(nd); nc != nil {
				serr := nc.SendFlushAll(cmd.Exptime)
				if c.sendExit(nd, nc, serr) {
					p.touched = append(p.touched, int32(nd))
				}
			}
		}
		return p, false, nil

	case server.OpStats:
		p = streamPlan{kind: planStats}
		for nd := range c.nstates {
			if nc := c.sendEnter(nd); nc != nil {
				serr := nc.SendStats()
				if c.sendExit(nd, nc, serr) {
					p.touched = append(p.touched, int32(nd))
				}
			}
		}
		return p, false, nil

	case server.OpMRange:
		// The scatter-gather scan: every node enumerates its slice of the
		// range (already sorted, already clamped), the receive phase merges.
		// The bounds must outlive this batch entry's read buffer, so they
		// are materialized here like a get's keys.
		lo, hi := string(cmd.Keys[0]), string(cmd.Keys[1])
		limit := clampScanLimit(cmd.Delta)
		return c.planScan(planMRange, cmd, func(nc *server.Client) error {
			return nc.SendMRange(lo, hi, limit)
		}), false, nil

	case server.OpMMin:
		return c.planScan(planMExtreme, cmd, func(nc *server.Client) error {
			return nc.SendMMin()
		}), false, nil

	case server.OpMMax:
		return c.planScan(planMExtreme, cmd, func(nc *server.Client) error {
			return nc.SendMMax()
		}), false, nil

	case server.OpVersion:
		// Identical on every node by construction; answered locally.
		return streamPlan{kind: planLocal, line: "VERSION " + server.Version}, false, nil
	}
	return p, false, fmt.Errorf("cluster: unhandled op %v", cmd.Op)
}

// planWrite forwards one single-node write command, degrading to a local
// error line when the node is not serving: writes always fail fast — an
// acknowledgment must mean a node holds the write.
func (c *Client) planWrite(nd int, noreply bool, send func(*server.Client) error) streamPlan {
	c.reqs[nd]++
	if nc := c.sendEnter(nd); nc != nil {
		serr := send(nc)
		if c.sendExit(nd, nc, serr) {
			return streamPlan{kind: planLine, node: int32(nd), noreply: noreply}
		}
	}
	c.degErrors.Add(1)
	return streamPlan{kind: planLocal, noreply: noreply, line: degradedLine}
}

// deliver collects one plan's node responses and writes the client-facing
// response bytes.
func (c *Client) deliver(bw *bufio.Writer, p *streamPlan, cursors []int, groups [][]server.Entry) error {
	switch p.kind {
	case planLocal:
		if !p.noreply && p.line != "" {
			bw.WriteString(p.line)
			bw.WriteString("\r\n")
		}
		return nil

	case planLine:
		n := int(p.node)
		line := degradedLine
		nc, synth := c.recvEnter(n)
		if !synth {
			l, rerr := nc.RecvLine()
			var out error
			synth, out = c.recvExit(n, nc, rerr)
			if out != nil {
				return out
			}
			if !synth {
				line = l
			}
		}
		if synth {
			c.degErrors.Add(1)
		}
		if !p.noreply {
			bw.WriteString(line)
			bw.WriteString("\r\n")
		}
		return nil

	case planGet:
		return c.deliverGet(bw, p, cursors, groups)

	case planMRange, planMExtreme:
		return c.deliverScan(bw, p, groups)

	case planBcast:
		first := ""
		for _, nd := range p.touched {
			n := int(nd)
			nc, synth := c.recvEnter(n)
			if !synth {
				line, rerr := nc.RecvLine()
				var out error
				synth, out = c.recvExit(n, nc, rerr)
				if out != nil {
					return out
				}
				if !synth && first == "" {
					first = line
				}
			}
		}
		if first == "" {
			// No node answered (all down, or all died mid-broadcast).
			c.degErrors.Add(1)
			first = degradedLine
		}
		if !p.noreply {
			bw.WriteString(first)
			bw.WriteString("\r\n")
		}
		return nil

	case planStats:
		per := make([]map[string]string, len(c.nstates))
		for _, nd := range p.touched {
			n := int(nd)
			nc, synth := c.recvEnter(n)
			if synth {
				continue
			}
			st, rerr := nc.RecvStats()
			synth, out := c.recvExit(n, nc, rerr)
			if out != nil {
				return out
			}
			if !synth {
				per[n] = st
			}
		}
		agg := c.aggregateStats(per)
		keys := make([]string, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bw.WriteString("STAT " + k + " " + agg[k] + "\r\n")
		}
		bw.WriteString("END\r\n")
		return nil
	}
	return fmt.Errorf("cluster: unhandled plan kind %d", p.kind)
}

// deliverGet reassembles a split get into the single server's response: each
// touched node returns its hits in sub-request order, and since the
// sub-requests were carved from the request order, a per-node cursor walk
// over the request-order keys restores it — each key occurrence either
// matches its node's next pending entry (a hit: emit the VALUE stanza) or
// does not (a miss, or a duplicate the node answered once: emit nothing),
// byte-identical either way.
func (c *Client) deliverGet(bw *bufio.Writer, p *streamPlan, cursors []int, groups [][]server.Entry) error {
	for _, nd := range p.touched {
		n := int(nd)
		groups[nd] = nil
		cursors[nd] = 0
		nc, synth := c.recvEnter(n)
		if !synth {
			es, rerr := nc.RecvGet()
			var out error
			synth, out = c.recvExit(n, nc, rerr)
			if out != nil {
				return out
			}
			if !synth {
				groups[nd] = es
			}
		}
		if synth {
			// The node died with this sub-response in flight: the group
			// degrades per policy, exactly as a send-time degrade would.
			if c.opts.Policy == DegradedMissReads {
				c.degMisses.Add(1)
			} else {
				c.degErrors.Add(1)
				p.degraded = true
			}
		}
	}
	if p.degraded {
		// Fail-fast: the whole get answers the degraded error (live groups
		// were still consumed above, keeping every node pipeline aligned).
		_, err := bw.WriteString(degradedLine + "\r\n")
		return err
	}
	for i, key := range p.keys {
		nd := p.nodeOf[i]
		cur := cursors[nd]
		if cur < len(groups[nd]) && groups[nd][cur].Key == key {
			writeValue(bw, &groups[nd][cur], p.withCAS)
			cursors[nd] = cur + 1
		}
	}
	_, err := bw.WriteString("END\r\n")
	return err
}

// writeValue renders one VALUE stanza exactly as the server does.
func writeValue(bw *bufio.Writer, e *server.Entry, withCAS bool) {
	fmt.Fprintf(bw, "VALUE %s %d %d", e.Key, e.Flags, len(e.Data))
	if withCAS {
		fmt.Fprintf(bw, " %d", e.CAS)
	}
	bw.WriteString("\r\n")
	bw.Write(e.Data)
	bw.WriteString("\r\n")
}
