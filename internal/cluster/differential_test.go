package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/xrand"
)

// This file is the cluster's differential gate: for randomized pipelined
// command streams, an N-node cluster fronted by Client.ServeStream must
// answer byte-identically to one big server holding the whole keyspace —
// same hit/miss pattern, same error lines, same noreply suppression, same
// truncation on fatal frames. The proxy parses with the server's own
// ReadBatchInto, so every protocol decision (limits, error spelling,
// fatal-vs-recoverable) has exactly one implementation to diverge from.
//
// Two command families are deliberately absent from the generated streams:
//
//   - gets/cas: CAS tokens are per-node counters, so an N-node cluster
//     hands out different tokens than one server would. Real memcached
//     clusters behave the same way (tokens are only comparable against the
//     node that issued them); byte equality is the wrong spec for them.
//   - stats: aggregated values include wall-clock and per-process fields.
//
// Everything else — including flush_all, which the proxy broadcasts — must
// match to the byte.

// genClusterStream mirrors the server package's genStream minus gets/cas.
// With withScans, ordered-keyspace commands join the mix: well-formed
// mrange (narrow, wide, and inverted bounds — the server answers a bare END
// for inverted, and the cluster must too), mmin/mmax, and the malformed
// variants (zero limit, wrong arity, a noreply that the scan verbs do not
// accept) whose error lines must come back identical.
func genClusterStream(rng *xrand.State, n int, withFatal, withScans bool) []byte {
	var b strings.Builder
	key := func() string { return fmt.Sprintf("k%d", rng.Uint64n(24)) }
	noreply := func() string {
		if rng.Uint64n(4) == 0 {
			return " noreply"
		}
		return ""
	}
	ops := uint64(10)
	if withScans {
		ops = 13
	}
	for i := 0; i < n; i++ {
		switch rng.Uint64n(ops) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "get %s\r\n", key())
		case 3:
			// Multi-key get: almost always spans nodes, exercising the
			// split/reassemble path (duplicates included).
			fmt.Fprintf(&b, "get %s %s %s\r\n", key(), key(), key())
		case 4, 5:
			val := strings.Repeat("v", int(rng.Uint64n(80)))
			fmt.Fprintf(&b, "set %s %d 0 %d%s\r\n%s\r\n", key(), rng.Uint64n(100), len(val), noreply(), val)
		case 6:
			fmt.Fprintf(&b, "add %s 0 0 2%s\r\nhi\r\n", key(), noreply())
		case 7:
			fmt.Fprintf(&b, "replace %s 0 -1 2\r\nxx\r\n", key()) // stored already expired
		case 8:
			switch rng.Uint64n(3) {
			case 0:
				fmt.Fprintf(&b, "delete %s%s\r\n", key(), noreply())
			case 1:
				fmt.Fprintf(&b, "incr %s %d\r\n", key(), rng.Uint64n(1000))
			case 2:
				fmt.Fprintf(&b, "decr %s 1%s\r\n", key(), noreply())
			}
		case 9:
			// Protocol noise, recoverable: an unknown verb, a keyless get,
			// a malformed storage line whose block must be swallowed, a
			// flush_all broadcast, or a version check.
			switch rng.Uint64n(5) {
			case 0:
				b.WriteString("bogus line\r\n")
			case 1:
				b.WriteString("get\r\n")
			case 2:
				fmt.Fprintf(&b, "set %s 0 notanumber 3%s\r\nxyz\r\n", key(), noreply())
			case 3:
				b.WriteString("flush_all 0\r\n")
			case 4:
				b.WriteString("version\r\n")
			}
		case 10, 11:
			// Ordered scan: random bounds (inverted about half the time —
			// both sides answer a bare END), random truncating limit. The
			// interleaved sets/deletes above make the scanned window churn,
			// so the merge is exercised against a moving keyspace.
			fmt.Fprintf(&b, "mrange %s %s %d\r\n", key(), key(), 1+rng.Uint64n(30))
			if rng.Uint64n(4) == 0 {
				// Wide scan spanning every stored key ("k" < "k0" < … < "kz"),
				// truncated: the k-way merge must cut at exactly the same key
				// a single sorted enumeration would.
				fmt.Fprintf(&b, "mrange k kz %d\r\n", 1+rng.Uint64n(12))
			}
		case 12:
			switch rng.Uint64n(5) {
			case 0:
				b.WriteString("mmin\r\n")
			case 1:
				b.WriteString("mmax\r\n")
			case 2:
				fmt.Fprintf(&b, "mrange %s %s 0\r\n", key(), key()) // zero limit: client error
			case 3:
				fmt.Fprintf(&b, "mrange %s\r\n", key()) // wrong arity
			case 4:
				fmt.Fprintf(&b, "mrange %s %s 5 noreply\r\n", key(), key()) // scans have no noreply form
			}
		}
	}
	if withFatal {
		// A storage line whose size field cannot be parsed is fatal: both
		// sides must answer the error and truncate at exactly this point.
		b.WriteString("set k 0 0 nosize\r\n")
	}
	b.WriteString("quit\r\n")
	return []byte(b.String())
}

// collectSingle feeds the stream over TCP to one server holding the whole
// keyspace and returns every response byte, written in `chunk`-sized pieces
// to exercise partial-frame reads.
func collectSingle(t *testing.T, algo string, ordered bool, stream []byte, chunk int) []byte {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo, Ordered: ordered})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	defer func() { s.Close(); <-done }()

	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if _, err := c.Write(stream[off:end]); err != nil {
				return
			}
		}
	}()
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("reading responses: %v", err)
	}
	return out
}

// chunkReader yields at most `chunk` bytes per Read, forcing the proxy's
// parser through the same partial-frame regime the TCP side sees.
type chunkReader struct {
	rest  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.rest) {
		n = len(r.rest)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.rest[:n])
	r.rest = r.rest[n:]
	return n, nil
}

// collectCluster feeds the stream to a fresh 4-node cluster through
// ServeStream and returns every response byte.
func collectCluster(t *testing.T, algo string, ordered bool, stream []byte, chunk int) []byte {
	t.Helper()
	addrs := startNodesOrdered(t, algo, 4, ordered)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out bytes.Buffer
	if err := c.ServeStream(&chunkReader{rest: stream, chunk: chunk}, &out); err != nil {
		t.Fatalf("ServeStream: %v", err)
	}
	return out.Bytes()
}

// TestClusterMatchesSingleServer is the differential gate proper. The
// ordered cases carry the scan verbs: a 4-node scatter-gather mrange must
// merge to exactly the bytes one sorted server emits, on both a natively
// sorted backend (sl-fraser-opt) and a snapshot+sort hash table, under the
// stream's interleaved sets and deletes. The unordered-with-scans case
// checks the refusal passthrough: every node answers the ordered-disabled
// error line, and the proxy must forward exactly one copy of it, like the
// single server.
func TestClusterMatchesSingleServer(t *testing.T) {
	for _, tc := range []struct {
		algo      string
		ordered   bool
		withScans bool
	}{
		{"ht-clht-lb", false, false},
		{"ll-lazy", false, false},
		{"sl-fraser-opt", true, true},
		{"ht-clht-lb", true, true},
		{"ht-clht-lb", false, true}, // scans refused: error-line passthrough
	} {
		mode := "plain"
		if tc.withScans {
			mode = "scans"
			if !tc.ordered {
				mode = "scans-refused"
			}
		}
		for seed := uint64(1); seed <= 4; seed++ {
			for _, chunk := range []int{1 << 20, 257} {
				name := fmt.Sprintf("%s/%s/seed%d/chunk%d", tc.algo, mode, seed, chunk)
				t.Run(name, func(t *testing.T) {
					rng := xrand.New(seed)
					stream := genClusterStream(rng, 400, seed%2 == 0, tc.withScans)
					single := collectSingle(t, tc.algo, tc.ordered, stream, chunk)
					clustered := collectCluster(t, tc.algo, tc.ordered, stream, chunk)
					if !bytes.Equal(single, clustered) {
						i := 0
						for i < len(single) && i < len(clustered) && single[i] == clustered[i] {
							i++
						}
						lo := i - 120
						if lo < 0 {
							lo = 0
						}
						t.Fatalf("responses diverge at byte %d\nsingle:  %q\ncluster: %q",
							i, tail(single, lo, i+120), tail(clustered, lo, i+120))
					}
				})
			}
		}
	}
}

func tail(b []byte, lo, hi int) []byte {
	if hi > len(b) {
		hi = len(b)
	}
	if lo > len(b) {
		lo = len(b)
	}
	return b[lo:hi]
}
