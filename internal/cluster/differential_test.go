package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/xrand"
)

// This file is the cluster's differential gate: for randomized pipelined
// command streams, an N-node cluster fronted by Client.ServeStream must
// answer byte-identically to one big server holding the whole keyspace —
// same hit/miss pattern, same error lines, same noreply suppression, same
// truncation on fatal frames. The proxy parses with the server's own
// ReadBatchInto, so every protocol decision (limits, error spelling,
// fatal-vs-recoverable) has exactly one implementation to diverge from.
//
// Two command families are deliberately absent from the generated streams:
//
//   - gets/cas: CAS tokens are per-node counters, so an N-node cluster
//     hands out different tokens than one server would. Real memcached
//     clusters behave the same way (tokens are only comparable against the
//     node that issued them); byte equality is the wrong spec for them.
//   - stats: aggregated values include wall-clock and per-process fields.
//
// Everything else — including flush_all, which the proxy broadcasts — must
// match to the byte.

// genClusterStream mirrors the server package's genStream minus gets/cas.
func genClusterStream(rng *xrand.State, n int, withFatal bool) []byte {
	var b strings.Builder
	key := func() string { return fmt.Sprintf("k%d", rng.Uint64n(24)) }
	noreply := func() string {
		if rng.Uint64n(4) == 0 {
			return " noreply"
		}
		return ""
	}
	for i := 0; i < n; i++ {
		switch rng.Uint64n(10) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "get %s\r\n", key())
		case 3:
			// Multi-key get: almost always spans nodes, exercising the
			// split/reassemble path (duplicates included).
			fmt.Fprintf(&b, "get %s %s %s\r\n", key(), key(), key())
		case 4, 5:
			val := strings.Repeat("v", int(rng.Uint64n(80)))
			fmt.Fprintf(&b, "set %s %d 0 %d%s\r\n%s\r\n", key(), rng.Uint64n(100), len(val), noreply(), val)
		case 6:
			fmt.Fprintf(&b, "add %s 0 0 2%s\r\nhi\r\n", key(), noreply())
		case 7:
			fmt.Fprintf(&b, "replace %s 0 -1 2\r\nxx\r\n", key()) // stored already expired
		case 8:
			switch rng.Uint64n(3) {
			case 0:
				fmt.Fprintf(&b, "delete %s%s\r\n", key(), noreply())
			case 1:
				fmt.Fprintf(&b, "incr %s %d\r\n", key(), rng.Uint64n(1000))
			case 2:
				fmt.Fprintf(&b, "decr %s 1%s\r\n", key(), noreply())
			}
		case 9:
			// Protocol noise, recoverable: an unknown verb, a keyless get,
			// a malformed storage line whose block must be swallowed, a
			// flush_all broadcast, or a version check.
			switch rng.Uint64n(5) {
			case 0:
				b.WriteString("bogus line\r\n")
			case 1:
				b.WriteString("get\r\n")
			case 2:
				fmt.Fprintf(&b, "set %s 0 notanumber 3%s\r\nxyz\r\n", key(), noreply())
			case 3:
				b.WriteString("flush_all 0\r\n")
			case 4:
				b.WriteString("version\r\n")
			}
		}
	}
	if withFatal {
		// A storage line whose size field cannot be parsed is fatal: both
		// sides must answer the error and truncate at exactly this point.
		b.WriteString("set k 0 0 nosize\r\n")
	}
	b.WriteString("quit\r\n")
	return []byte(b.String())
}

// collectSingle feeds the stream over TCP to one server holding the whole
// keyspace and returns every response byte, written in `chunk`-sized pieces
// to exercise partial-frame reads.
func collectSingle(t *testing.T, algo string, stream []byte, chunk int) []byte {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	defer func() { s.Close(); <-done }()

	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if _, err := c.Write(stream[off:end]); err != nil {
				return
			}
		}
	}()
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("reading responses: %v", err)
	}
	return out
}

// chunkReader yields at most `chunk` bytes per Read, forcing the proxy's
// parser through the same partial-frame regime the TCP side sees.
type chunkReader struct {
	rest  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.rest) {
		n = len(r.rest)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.rest[:n])
	r.rest = r.rest[n:]
	return n, nil
}

// collectCluster feeds the stream to a fresh 4-node cluster through
// ServeStream and returns every response byte.
func collectCluster(t *testing.T, algo string, stream []byte, chunk int) []byte {
	t.Helper()
	addrs := startNodes(t, algo, 4)
	c, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out bytes.Buffer
	if err := c.ServeStream(&chunkReader{rest: stream, chunk: chunk}, &out); err != nil {
		t.Fatalf("ServeStream: %v", err)
	}
	return out.Bytes()
}

// TestClusterMatchesSingleServer is the differential gate proper.
func TestClusterMatchesSingleServer(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ll-lazy"} {
		for seed := uint64(1); seed <= 4; seed++ {
			for _, chunk := range []int{1 << 20, 257} {
				name := fmt.Sprintf("%s/seed%d/chunk%d", algo, seed, chunk)
				t.Run(name, func(t *testing.T) {
					rng := xrand.New(seed)
					stream := genClusterStream(rng, 400, seed%2 == 0)
					single := collectSingle(t, algo, stream, chunk)
					clustered := collectCluster(t, algo, stream, chunk)
					if !bytes.Equal(single, clustered) {
						i := 0
						for i < len(single) && i < len(clustered) && single[i] == clustered[i] {
							i++
						}
						lo := i - 120
						if lo < 0 {
							lo = 0
						}
						t.Fatalf("responses diverge at byte %d\nsingle:  %q\ncluster: %q",
							i, tail(single, lo, i+120), tail(clustered, lo, i+120))
					}
				})
			}
		}
	}
}

func tail(b []byte, lo, hi int) []byte {
	if hi > len(b) {
		hi = len(b)
	}
	if lo > len(b) {
		lo = len(b)
	}
	return b[lo:hi]
}
