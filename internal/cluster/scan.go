package cluster

import (
	"bufio"
	"errors"

	"repro/internal/server"
)

// Ordered scans across the cluster: scatter-gather. A key's node is a hash
// draw, so a lexicographic range [lo, hi] touches every node — the scan is
// the one operation with no locality to route on. The client fans the
// bounded scan to all nodes (each node enumerates its own slice of the
// range in sorted order, already clamped to the limit), then k-way merges
// the sorted streams and truncates to the limit. Correctness of the
// truncation: every one of the global first-limit keys lives on some node,
// and on that node the keys of the global prefix form a prefix of its own
// sorted in-range stream no longer than limit — so the global answer is
// always contained in the union of the per-node answers, and the merge
// reproduces exactly the bytes one big ordered server would emit.
//
// mmin/mmax are the degenerate form: every node answers its own extreme,
// the client keeps the best.

// clampScanLimit applies the server's own response cap, so the merged
// result obeys the same bound a single server enforces.
func clampScanLimit(limit uint64) uint64 {
	if limit > server.MaxRangeKeys {
		return server.MaxRangeKeys
	}
	return limit
}

// pushScanLimit / popScanLimit keep the pending mrange limits aligned with
// the route ring's broadcasts (same SPSC discipline: each scan's send is
// sequenced before its receive).
func (c *Client) pushScanLimit(limit uint64) {
	c.scanMu.Lock()
	c.scanLimits = append(c.scanLimits, limit)
	c.scanMu.Unlock()
}

func (c *Client) popScanLimit() uint64 {
	c.scanMu.Lock()
	defer c.scanMu.Unlock()
	if len(c.scanLimits) == 0 {
		return server.MaxRangeKeys
	}
	limit := c.scanLimits[0]
	c.scanLimits = c.scanLimits[1:]
	return limit
}

// broadcastRead queues one read-class request on every node: one route tag
// per node, routeMore chaining all but the last, down nodes degrading per
// the read policy — the same shape a split get's group chain has, so the
// receive half's pop loop needs no new cases.
func (c *Client) broadcastRead(send func(nc *server.Client) error) {
	last := len(c.nstates) - 1
	for n := range c.nstates {
		c.reqs[n]++
		tag := uint32(n)
		if n < last {
			tag |= routeMore
		}
		queued := false
		if nc := c.sendEnter(n); nc != nil {
			err := send(nc)
			queued = c.sendExit(n, nc, err)
		}
		if !queued {
			tag |= c.degTagRead()
		}
		c.routes.push(tag)
	}
}

// SendMRange queues an ordered range scan, fanned to every node. Pair with
// RecvMRange.
func (c *Client) SendMRange(lo, hi string, limit uint64) error {
	limit = clampScanLimit(limit)
	c.pushScanLimit(limit)
	c.broadcastRead(func(nc *server.Client) error { return nc.SendMRange(lo, hi, limit) })
	return nil
}

// SendMMin queues a cluster-wide minimum; pair with RecvMExtreme.
func (c *Client) SendMMin() error {
	c.broadcastRead(func(nc *server.Client) error { return nc.SendMMin() })
	return nil
}

// SendMMax queues a cluster-wide maximum; pair with RecvMExtreme.
func (c *Client) SendMMax() error {
	c.broadcastRead(func(nc *server.Client) error { return nc.SendMMax() })
	return nil
}

// recvScanGroups consumes one broadcast's per-node responses, returning the
// live nodes' (sorted) entry groups. A node that answered with a protocol
// error line (a non-ordered backend refusing the scan) surfaces as that
// *server.ServerError — after every group has still been consumed, so the
// pipelines stay aligned. Degraded nodes synthesize per policy: a miss-read
// degrade silently shortens the scan (that slice of the keyspace is down),
// fail-fast yields ErrNodeDown.
func (c *Client) recvScanGroups() ([][]server.Entry, error) {
	var groups [][]server.Entry
	var firstErr error
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return groups, errNoRoute
		}
		switch {
		case tag&routeDegMiss != 0:
			c.degMisses.Add(1)
		case tag&routeDegErr != 0:
			c.degErrors.Add(1)
			if firstErr == nil {
				firstErr = ErrNodeDown
			}
		default:
			n := int(tag & routeNodeMask)
			nc, synth := c.recvEnter(n)
			if !synth {
				es, rerr := nc.RecvGet()
				var out error
				synth, out = c.recvExit(n, nc, rerr)
				if out != nil && firstErr == nil {
					firstErr = out
				}
				if !synth && out == nil {
					groups = append(groups, es)
				}
			}
			if synth {
				firstErr = c.degradeRead(firstErr)
			}
		}
		if tag&routeMore == 0 {
			return groups, firstErr
		}
	}
}

// mergeScan k-way merges sorted, key-disjoint per-node groups (cluster
// routing puts each key on exactly one node, so no deduplication is
// needed), truncating to limit (0 means unbounded). Linear scan over the
// heads: k is the node count and limit at most MaxRangeKeys, so the merge
// is O(k·limit) on trivially small constants.
func mergeScan(groups [][]server.Entry, limit int) []server.Entry {
	var out []server.Entry
	for limit <= 0 || len(out) < limit {
		best := -1
		for n := range groups {
			if len(groups[n]) == 0 {
				continue
			}
			if best < 0 || groups[n][0].Key < groups[best][0].Key {
				best = n
			}
		}
		if best < 0 {
			break
		}
		out = append(out, groups[best][0])
		groups[best] = groups[best][1:]
	}
	return out
}

// RecvMRange consumes one SendMRange's fan-out and returns the merged scan:
// ascending lexicographic order, truncated to the request's (clamped)
// limit — the same entries, in the same order, a single ordered server
// holding the whole keyspace would return.
func (c *Client) RecvMRange() ([]server.Entry, error) {
	limit := c.popScanLimit()
	groups, err := c.recvScanGroups()
	if err != nil {
		return nil, err
	}
	return mergeScan(groups, int(limit)), nil
}

// RecvMRangeN consumes one SendMRange's fan-out without materializing
// entries: each live node's stream is drained through the discarding
// counting receive, and the summed count is truncated to the request's
// (clamped) limit — valid because routing makes the per-node streams
// key-disjoint, so the merge never discards duplicates, only the overflow
// past the limit. dataBytes stays the transport-level total (every byte the
// nodes sent, including merged-away overflow): it is the load generator's
// wire-traffic measure, not a result size. This is the allocation-free
// receive half the load generator drives scans through.
func (c *Client) RecvMRangeN() (entries int, dataBytes int64, err error) {
	limit := c.popScanLimit()
	var firstErr error
	total := 0
	var bytes int64
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return 0, 0, errNoRoute
		}
		switch {
		case tag&routeDegMiss != 0:
			c.degMisses.Add(1)
		case tag&routeDegErr != 0:
			c.degErrors.Add(1)
			if firstErr == nil {
				firstErr = ErrNodeDown
			}
		default:
			n := int(tag & routeNodeMask)
			nc, synth := c.recvEnter(n)
			if !synth {
				es, db, rerr := nc.RecvGetN()
				var out error
				synth, out = c.recvExit(n, nc, rerr)
				if out != nil && firstErr == nil {
					firstErr = out
				}
				if !synth && out == nil {
					total += es
					bytes += db
				}
			}
			if synth {
				firstErr = c.degradeRead(firstErr)
			}
		}
		if tag&routeMore == 0 {
			break
		}
	}
	if firstErr != nil {
		return 0, 0, firstErr
	}
	if uint64(total) > limit {
		total = int(limit)
	}
	return total, bytes, nil
}

// RecvMExtreme consumes one SendMMin/SendMMax fan-out, keeping the globally
// smallest (wantMax false) or largest (wantMax true) entry.
func (c *Client) RecvMExtreme(wantMax bool) (server.Entry, bool, error) {
	groups, err := c.recvScanGroups()
	if err != nil {
		return server.Entry{}, false, err
	}
	var best server.Entry
	found := false
	for _, g := range groups {
		for _, e := range g {
			if !found || (wantMax && e.Key > best.Key) || (!wantMax && e.Key < best.Key) {
				best, found = e, true
			}
		}
	}
	return best, found, nil
}

// MRange scans [lo, hi] synchronously across the cluster.
func (c *Client) MRange(lo, hi string, limit uint64) ([]server.Entry, error) {
	if err := c.SendMRange(lo, hi, limit); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvMRange()
}

// --- proxy-side scatter-gather (ServeStream's mrange/mmin/mmax) ---

// planScan forwards one ordered-scan command (mrange, or mmin/mmax via the
// zero-limit extreme form) to every node and returns the receive plan.
// Down nodes degrade like a split get's groups: silently shorter results
// under miss-reads, the degraded error line under fail-fast.
func (c *Client) planScan(kind planKind, cmd *server.Command, send func(nc *server.Client) error) streamPlan {
	p := streamPlan{kind: kind, limit: clampScanLimit(cmd.Delta), isMax: cmd.Op == server.OpMMax}
	for nd := range c.nstates {
		c.reqs[nd]++
		queued := false
		if nc := c.sendEnter(nd); nc != nil {
			serr := send(nc)
			queued = c.sendExit(nd, nc, serr)
		}
		if !queued {
			if c.opts.Policy == DegradedMissReads {
				c.degMisses.Add(1)
			} else {
				c.degErrors.Add(1)
				p.degraded = true
			}
			continue
		}
		p.touched = append(p.touched, int32(nd))
	}
	return p
}

// deliverScan collects a scan plan's per-node responses and writes the
// merged client-facing response: for planMRange the k-way merged VALUE
// stanzas (then END), for planMExtreme the single best VALUE (then END).
// A node that refused the scan (non-ordered backend) makes the whole
// response that node's error line — exactly what the single non-ordered
// server answers — emitted only after every group is consumed, so the
// node pipelines stay aligned.
func (c *Client) deliverScan(bw *bufio.Writer, p *streamPlan, groups [][]server.Entry) error {
	errLine := ""
	for _, nd := range p.touched {
		n := int(nd)
		groups[nd] = nil
		nc, synth := c.recvEnter(n)
		if !synth {
			es, rerr := nc.RecvGet()
			var out error
			synth, out = c.recvExit(n, nc, rerr)
			if out != nil {
				var se *server.ServerError
				if !errors.As(out, &se) {
					return out
				}
				if errLine == "" {
					errLine = se.Line
				}
			} else if !synth {
				groups[nd] = es
			}
		}
		if synth {
			if c.opts.Policy == DegradedMissReads {
				c.degMisses.Add(1)
			} else {
				c.degErrors.Add(1)
				p.degraded = true
			}
		}
	}
	if errLine != "" {
		_, err := bw.WriteString(errLine + "\r\n")
		return err
	}
	if p.degraded {
		_, err := bw.WriteString(degradedLine + "\r\n")
		return err
	}
	if p.kind == planMExtreme {
		best := -1
		for _, nd := range p.touched {
			if len(groups[nd]) == 0 {
				continue
			}
			if best < 0 ||
				(p.isMax && groups[nd][0].Key > groups[best][0].Key) ||
				(!p.isMax && groups[nd][0].Key < groups[best][0].Key) {
				best = int(nd)
			}
		}
		if best >= 0 {
			writeValue(bw, &groups[best][0], false)
		}
		_, err := bw.WriteString("END\r\n")
		return err
	}
	for emitted := 0; emitted < int(p.limit); emitted++ {
		best := -1
		for _, nd := range p.touched {
			if len(groups[nd]) == 0 {
				continue
			}
			if best < 0 || groups[nd][0].Key < groups[best][0].Key {
				best = int(nd)
			}
		}
		if best < 0 {
			break
		}
		writeValue(bw, &groups[best][0], false)
		groups[best] = groups[best][1:]
	}
	_, err := bw.WriteString("END\r\n")
	return err
}
