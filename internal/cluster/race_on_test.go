//go:build race

package cluster

// raceEnabled: the allocation gates are skipped under the race detector —
// its instrumentation (and race-mode sync.Pool, which drops Puts at
// random) introduces allocations the production build does not have.
const raceEnabled = true
