// Package cluster scales the server horizontally: a client-side router that
// hash-partitions a string keyspace across N independent ascyserve processes,
// the same decomposition the sharded facade applies inside one process taken
// one level up. The design goal is the ASCY thesis at cluster scale — no
// coordination on the data path: nodes never talk to each other, the server
// binary does not know clusters exist, and the only shared state is the
// client's routing function. Per-key operations touch exactly one node;
// multi-key gets split group-by-node and fan out; only flush_all and stats
// are deliberately broadcast.
//
// Routing is rendezvous (highest-random-weight) hashing over the same
// xorshift-multiply finalized FNV-1a hash the sharded facade routes with: for
// a key hash h, every node i scores mix(h ^ seed_i) and the highest score
// wins. Rendezvous rather than a ring: no token tables to build or rebalance,
// placement is a pure function of (key, node count), and growing N→N+1 moves
// exactly the keys the new node wins — an expected 1/(N+1) fraction — while
// every other key stays put. Node identity is the position in the address
// list, so a cluster restarted with the same ordered list routes identically
// across restarts.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	ascylib "repro"
	"repro/internal/server"
)

// Router maps key hashes onto node indices by rendezvous hashing. A Router
// is immutable and safe for concurrent use.
type Router struct {
	seeds []uint64
}

// NewRouter builds a router over n nodes (n < 1 is treated as 1). Node i's
// score stream is seeded from its position, so the mapping is a pure,
// restart-stable function of (key, n).
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{seeds: make([]uint64, n)}
	x := uint64(0xA5C1_5E4D)
	for i := range r.seeds {
		r.seeds[i] = splitmix64(&x)
	}
	return r
}

// Nodes returns the node count.
func (r *Router) Nodes() int { return len(r.seeds) }

// splitmix64 is the standard seed sequencer (same as the xrand package's).
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NodeOf returns the node index key routes to.
func (r *Router) NodeOf(key string) int { return r.NodeOfHash(ascylib.HashString(key)) }

// NodeOfBytes is NodeOf for a []byte key (zero-alloc, same placement).
func (r *Router) NodeOfBytes(key []byte) int { return r.NodeOfHash(ascylib.HashBytes(key)) }

// NodeOfHash routes a raw key hash (ascylib.HashString/HashBytes): the
// xorshift-multiply finalizer the sharded facade scrambles FNV with — raw
// FNV's top bits are too weak to route on — then the highest-random-weight
// draw across the nodes. With one node it degenerates to 0 at no cost.
func (r *Router) NodeOfHash(h uint64) int {
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	best, bestScore := 0, hrwScore(h, r.seeds[0])
	for i := 1; i < len(r.seeds); i++ {
		if s := hrwScore(h, r.seeds[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// hrwScore mixes a finalized key hash with a node seed into that node's
// weight for the key. The mix must decorrelate nodes per key (the finalized
// hash alone orders every key the same way for every node); splitmix64's
// finalizer does, cheaply.
func hrwScore(h, seed uint64) uint64 {
	z := h ^ seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// routeMore tags a route-ring entry whose logical request continues in the
// next entry (a multi-key get split across nodes pushes one entry per
// touched node; all but the last carry the tag).
const routeMore = 1 << 31

// routeRing is a FIFO of pending response routes: which node (and, for split
// gets, nodes) each queued request went to, so the receive half can replay
// the send half's routing decisions in order. Power-of-two ring, grow-on-full
// — steady state allocates nothing.
//
// The mutex covers the one sanctioned concurrency in the client: a pipelined
// caller may run the send half and the receive half on two goroutines (the
// load generator does), which makes the ring a single-producer single-
// consumer queue. Each request's push happens-before its own pop (the caller
// must sequence a request's send before its receive to mean anything), but
// the indices are shared between a later push and an earlier concurrent pop;
// an uncontended mutex is nanoseconds and allocation-free.
type routeRing struct {
	mu   sync.Mutex
	buf  []uint32
	head int
	n    int
}

func (r *routeRing) push(v uint32) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		grown := make([]uint32, max(64, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
	r.mu.Unlock()
}

func (r *routeRing) pop() (uint32, bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	r.mu.Unlock()
	return v, true
}

// errNoRoute means a Recv* was called with no queued request to receive —
// the send and receive halves fell out of step.
var errNoRoute = errors.New("cluster: receive with no pending request")

// errNoKeys mirrors the single-node client's rejection of a keyless get.
var errNoKeys = errors.New("cluster: get requires at least one key")

// Client routes memcached-protocol requests across the nodes of a cluster,
// one pipelined server.Client connection per node. It mirrors the
// single-node client's surface — synchronous conveniences plus explicit
// Send*/Recv* pipelining halves — and keeps its contract: not safe for
// general concurrent use, open one per goroutine (the connection pool a
// concurrent caller wants is a pool of Clients). The one sanctioned split,
// matching how the load generator drives the single-node client: ONE
// goroutine running the send half (Send*, Flush) while ONE other runs the
// receive half (Recv*), each request's send sequenced before its receive.
// The route ring is the only state both halves touch; it locks internally.
//
// The heart is batch-aware routing. Per-key requests route to one node and
// push that node onto a route FIFO; the receive half pops the FIFO and reads
// from the same node, so responses come back in request order without any
// cross-node coordination. A multi-key get is split group-by-node with a
// pooled counting-sort permutation — exactly the shape Store.GetBatch uses
// to group keys by shard — and one sub-get per touched node goes out; all
// touched nodes then serve their slices concurrently. The steady-state send
// and discard-receive paths allocate nothing, so the load generator's
// zero-alloc discipline survives the hop to cluster mode.
type Client struct {
	router *Router
	addrs  []string
	nodes  []*server.Client

	routes routeRing
	reqs   []uint64 // requests routed per node, lifetime of the client

	// Pooled group-by-node scratch for multi-key gets (see SendGet): the
	// counting-sort workspace, per-key routes, the permutation, and the
	// gathered per-node key batch.
	counts []int32
	nodeOf []int32
	perm   []int32
	sub    []string
}

// Dial connects one pipelined connection to every node. The address list
// order is the cluster's identity: the same ordered list routes the same
// keys to the same nodes, across clients and across restarts.
func Dial(addrs ...string) (*Client, error) {
	return dial(addrs, func(a string) (*server.Client, error) { return server.Dial(a) })
}

// DialRetry is Dial with per-node bounded-backoff retry (server.DialRetry):
// the form launcher scripts and CI smokes want, where the cluster's
// processes are still booting when the client starts.
func DialRetry(timeout time.Duration, addrs ...string) (*Client, error) {
	return dial(addrs, func(a string) (*server.Client, error) { return server.DialRetry(a, timeout) })
}

func dial(addrs []string, connect func(string) (*server.Client, error)) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	c := &Client{
		router: NewRouter(len(addrs)),
		addrs:  append([]string(nil), addrs...),
		nodes:  make([]*server.Client, len(addrs)),
		reqs:   make([]uint64, len(addrs)),
		counts: make([]int32, len(addrs)),
	}
	for i, a := range c.addrs {
		nc, err := connect(a)
		if err != nil {
			for _, open := range c.nodes[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("cluster: node %d (%s): %w", i, a, err)
		}
		c.nodes[i] = nc
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.nodes) }

// Addrs returns the node address list (the cluster identity, in routing
// order). The returned slice is the client's own; do not mutate it.
func (c *Client) Addrs() []string { return c.addrs }

// NodeReqs returns how many requests this client has routed to each node —
// the client-side view of load balance (a broadcast counts once per node).
func (c *Client) NodeReqs() []uint64 { return append([]uint64(nil), c.reqs...) }

// Router returns the routing function, shared and immutable.
func (c *Client) Router() *Router { return c.router }

// Close sends quit to every node and closes the connections, returning the
// first error.
func (c *Client) Close() error {
	var first error
	for _, nc := range c.nodes {
		if err := nc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Abort closes every node transport without touching buffers; like the
// single-node Abort it may be called from another goroutine to unblock the
// owner.
func (c *Client) Abort() error {
	var first error
	for _, nc := range c.nodes {
		if err := nc.Abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush pushes every node's queued requests to the wire. Flushing a node
// with an empty buffer is a no-op, so this costs only the touched nodes
// anything.
func (c *Client) Flush() error {
	var first error
	for _, nc := range c.nodes {
		if err := nc.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- pipelined send half ---

// SendGet1 queues a single-key get on the key's node. The loadgen hot path:
// one route, one node write, one ring push, no allocation.
func (c *Client) SendGet1(withCAS bool, key string) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	c.routes.push(uint32(n))
	return c.nodes[n].SendGet1(withCAS, key)
}

// SendGet queues a get (or gets) for the given keys, split group-by-node:
// keys are routed, a counting-sort permutation groups them (request order
// preserved within each group — the property response reassembly relies on),
// and each touched node receives one sub-get for its group. The touched
// nodes all hold their slice after the next Flush, so they serve the batch
// concurrently. Zero allocations once the scratch has grown to the caller's
// batch size.
func (c *Client) SendGet(withCAS bool, keys ...string) error {
	switch len(keys) {
	case 0:
		return errNoKeys
	case 1:
		return c.SendGet1(withCAS, keys[0])
	}
	n := len(keys)
	if cap(c.nodeOf) < n {
		c.nodeOf = make([]int32, n)
		c.perm = make([]int32, n)
	}
	c.nodeOf = c.nodeOf[:n]
	c.perm = c.perm[:n]
	for i := range c.counts {
		c.counts[i] = 0
	}
	for i, k := range keys {
		nd := c.router.NodeOf(k)
		c.nodeOf[i] = int32(nd)
		c.counts[nd]++
	}
	// Counting sort: counts become group start offsets, then each key's
	// index is scattered into its node's slot range (identical in shape to
	// Store.GetBatch's group-by-shard).
	off := int32(0)
	for nd, cnt := range c.counts {
		c.counts[nd] = off
		off += cnt
	}
	for i := 0; i < n; i++ {
		nd := c.nodeOf[i]
		c.perm[c.counts[nd]] = int32(i)
		c.counts[nd]++
	}
	for j := 0; j < n; {
		nd := c.nodeOf[c.perm[j]]
		c.sub = c.sub[:0]
		for ; j < n && c.nodeOf[c.perm[j]] == nd; j++ {
			c.sub = append(c.sub, keys[c.perm[j]])
		}
		c.reqs[nd]++
		tag := uint32(nd)
		if j < n { // more groups follow for this logical request
			tag |= routeMore
		}
		c.routes.push(tag)
		if err := c.nodes[nd].SendGet(withCAS, c.sub...); err != nil {
			return err
		}
	}
	return nil
}

// SendStore queues a storage command on the key's node (verb as in the
// single-node client; casid only used for "cas").
func (c *Client) SendStore(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	c.routes.push(uint32(n))
	return c.nodes[n].SendStore(verb, key, flags, exptime, data, casid)
}

// SendDelete queues a delete on the key's node.
func (c *Client) SendDelete(key string) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	c.routes.push(uint32(n))
	return c.nodes[n].SendDelete(key)
}

// SendIncrDecr queues an incr or decr on the key's node.
func (c *Client) SendIncrDecr(key string, delta uint64, incr bool) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	c.routes.push(uint32(n))
	return c.nodes[n].SendIncrDecr(key, delta, incr)
}

// --- pipelined receive half ---

// RecvGetN consumes the response of one SendGet1/SendGet, discarding
// payloads and returning entry and byte counts — the allocation-free
// accounting receive the load generator drives. For a split get it sums the
// touched nodes' sub-responses.
func (c *Client) RecvGetN() (entries int, dataBytes int64, err error) {
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return entries, dataBytes, errNoRoute
		}
		e, b, err := c.nodes[tag&^routeMore].RecvGetN()
		entries += e
		dataBytes += b
		if err != nil {
			return entries, dataBytes, err
		}
		if tag&routeMore == 0 {
			return entries, dataBytes, nil
		}
	}
}

// RecvGet consumes the response of one SendGet1/SendGet, materializing the
// entries. For a split get the entries come back grouped by node (each
// group in request order) — callers that need exact request order across
// nodes get it from ServeStream's reassembly, or key the results (GetMulti).
func (c *Client) RecvGet() ([]server.Entry, error) {
	var out []server.Entry
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return out, errNoRoute
		}
		es, err := c.nodes[tag&^routeMore].RecvGet()
		out = append(out, es...)
		if err != nil {
			return out, err
		}
		if tag&routeMore == 0 {
			return out, nil
		}
	}
}

// RecvStored consumes one storage response (see server.Client.RecvStored).
func (c *Client) RecvStored() (bool, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return false, errNoRoute
	}
	return c.nodes[tag&^routeMore].RecvStored()
}

// RecvDeleted consumes one delete response.
func (c *Client) RecvDeleted() (bool, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return false, errNoRoute
	}
	return c.nodes[tag&^routeMore].RecvDeleted()
}

// RecvLine consumes one single-line response.
func (c *Client) RecvLine() (string, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return "", errNoRoute
	}
	return c.nodes[tag&^routeMore].RecvLine()
}

// --- synchronous conveniences ---

// Get retrieves one key from its node.
func (c *Client) Get(key string) (server.Entry, bool, error) {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Get(key)
}

// GetMulti retrieves several keys in one fan-out round trip: sub-gets to
// every touched node, served concurrently, results keyed.
func (c *Client) GetMulti(keys ...string) (map[string]server.Entry, error) {
	if err := c.SendGet(false, keys...); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	es, err := c.RecvGet()
	if err != nil {
		return nil, err
	}
	out := make(map[string]server.Entry, len(es))
	for _, e := range es {
		out[e.Key] = e
	}
	return out, nil
}

// Set stores unconditionally on the key's node.
func (c *Client) Set(key string, flags uint32, exptime int64, data []byte) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Set(key, flags, exptime, data)
}

// Add stores only if absent; reports whether it stored.
func (c *Client) Add(key string, flags uint32, exptime int64, data []byte) (bool, error) {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Add(key, flags, exptime, data)
}

// Delete removes a key from its node.
func (c *Client) Delete(key string) (bool, error) {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Delete(key)
}

// Incr adjusts the decimal value under key upward on its node.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Incr(key, delta)
}

// Decr adjusts the decimal value under key downward on its node.
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	return c.nodes[n].Decr(key, delta)
}

// FlushAll empties every node's store — the one mutating broadcast in the
// protocol. The requests pipeline to all nodes before any response is read.
func (c *Client) FlushAll() error {
	for n, nc := range c.nodes {
		c.reqs[n]++
		if err := nc.SendFlushAll(0); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}
	for _, nc := range c.nodes {
		line, err := nc.RecvLine()
		if err != nil {
			return err
		}
		if line != "OK" {
			return fmt.Errorf("cluster: unexpected flush_all response %q", line)
		}
	}
	return nil
}

// NodeStats retrieves every node's statistics, pipelined (one fan-out round
// trip), indexed like Addrs.
func (c *Client) NodeStats() ([]map[string]string, error) {
	for _, nc := range c.nodes {
		if err := nc.SendStats(); err != nil {
			return nil, err
		}
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	out := make([]map[string]string, len(c.nodes))
	for i, nc := range c.nodes {
		st, err := nc.RecvStats()
		if err != nil {
			return nil, fmt.Errorf("cluster: stats from node %d (%s): %w", i, c.addrs[i], err)
		}
		out[i] = st
	}
	return out, nil
}

// Stats fans out to every node and aggregates: additive counters (command
// and hit/miss counts, byte counts, batch and value-pool counters, item and
// connection counts, shard totals) are summed, batch_depth_avg is recomputed
// from the summed counters, and identity fields (algo, version, …) are taken
// from node 0. Cluster-level fields are added on top: cluster_nodes, and
// node<i>_reqs — each node's served-command count, so uneven routing is
// visible in one place.
func (c *Client) Stats() (map[string]string, error) {
	per, err := c.NodeStats()
	if err != nil {
		return nil, err
	}
	return c.aggregateStats(per), nil
}

// aggregateStats folds per-node stats maps (indexed like Addrs) into the
// cluster view Stats documents.
func (c *Client) aggregateStats(per []map[string]string) map[string]string {
	agg := make(map[string]string, len(per[0])+len(per)+1)
	for k, v := range per[0] {
		agg[k] = v
	}
	for _, st := range per[1:] {
		for k, v := range st {
			if !statSummable(k) {
				continue
			}
			a, err1 := strconv.ParseUint(agg[k], 10, 64)
			b, err2 := strconv.ParseUint(v, 10, 64)
			if err1 == nil && err2 == nil {
				agg[k] = strconv.FormatUint(a+b, 10)
			}
		}
	}
	// The summed batches/cmd_batched make node 0's quotient stale.
	if batches, err := strconv.ParseUint(agg["batches"], 10, 64); err == nil && batches > 0 {
		if batched, err := strconv.ParseUint(agg["cmd_batched"], 10, 64); err == nil {
			agg["batch_depth_avg"] = strconv.FormatFloat(float64(batched)/float64(batches), 'f', 2, 64)
		}
	}
	agg["cluster_nodes"] = strconv.Itoa(len(c.nodes))
	for i, st := range per {
		agg["node"+strconv.Itoa(i)+"_reqs"] = strconv.FormatUint(server.ReqsServed(st), 10)
	}
	return agg
}

// statSummable reports whether a stats field aggregates across nodes by
// summation. batch_depth_avg is a quotient (recomputed after summing);
// uptime/time/version/algo and the like are identity fields (node 0 wins).
func statSummable(name string) bool {
	switch name {
	case "curr_connections", "total_connections", "curr_items",
		"batches", "cmd_batched", "protocol_errors", "shards", "threads":
		return true
	case "batch_depth_avg":
		return false
	}
	for _, p := range [...]string{"cmd_", "get_", "delete_", "incr_", "decr_",
		"cas_", "bytes_", "value_pool_", "batch_depth_"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
