// Package cluster scales the server horizontally: a client-side router that
// hash-partitions a string keyspace across N independent ascyserve processes,
// the same decomposition the sharded facade applies inside one process taken
// one level up. The design goal is the ASCY thesis at cluster scale — no
// coordination on the data path: nodes never talk to each other, the server
// binary does not know clusters exist, and the only shared state is the
// client's routing function. Per-key operations touch exactly one node;
// multi-key gets split group-by-node and fan out; only flush_all and stats
// are deliberately broadcast.
//
// Routing is rendezvous (highest-random-weight) hashing over the same
// xorshift-multiply finalized FNV-1a hash the sharded facade routes with: for
// a key hash h, every node i scores mix(h ^ seed_i) and the highest score
// wins. Rendezvous rather than a ring: no token tables to build or rebalance,
// placement is a pure function of (key, node count), and growing N→N+1 moves
// exactly the keys the new node wins — an expected 1/(N+1) fraction — while
// every other key stays put. Node identity is the position in the address
// list, so a cluster restarted with the same ordered list routes identically
// across restarts.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"
	"repro/internal/server"
)

// Router maps key hashes onto node indices by rendezvous hashing. A Router
// is immutable and safe for concurrent use.
type Router struct {
	seeds []uint64
}

// NewRouter builds a router over n nodes (n < 1 is treated as 1). Node i's
// score stream is seeded from its position, so the mapping is a pure,
// restart-stable function of (key, n).
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{seeds: make([]uint64, n)}
	x := uint64(0xA5C1_5E4D)
	for i := range r.seeds {
		r.seeds[i] = splitmix64(&x)
	}
	return r
}

// Nodes returns the node count.
func (r *Router) Nodes() int { return len(r.seeds) }

// splitmix64 is the standard seed sequencer (same as the xrand package's).
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NodeOf returns the node index key routes to.
func (r *Router) NodeOf(key string) int { return r.NodeOfHash(ascylib.HashString(key)) }

// NodeOfBytes is NodeOf for a []byte key (zero-alloc, same placement).
func (r *Router) NodeOfBytes(key []byte) int { return r.NodeOfHash(ascylib.HashBytes(key)) }

// NodeOfHash routes a raw key hash (ascylib.HashString/HashBytes): the
// xorshift-multiply finalizer the sharded facade scrambles FNV with — raw
// FNV's top bits are too weak to route on — then the highest-random-weight
// draw across the nodes. With one node it degenerates to 0 at no cost.
func (r *Router) NodeOfHash(h uint64) int {
	h ^= h >> 33
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	best, bestScore := 0, hrwScore(h, r.seeds[0])
	for i := 1; i < len(r.seeds); i++ {
		if s := hrwScore(h, r.seeds[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// hrwScore mixes a finalized key hash with a node seed into that node's
// weight for the key. The mix must decorrelate nodes per key (the finalized
// hash alone orders every key the same way for every node); splitmix64's
// finalizer does, cheaply.
func hrwScore(h, seed uint64) uint64 {
	z := h ^ seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Route-ring tag bits. The low bits are the node index; the high bits carry
// per-entry routing facts the receive half replays:
//
//   - routeMore: the logical request continues in the next entry (a
//     multi-key get split across nodes pushes one entry per touched node;
//     all but the last carry the tag).
//   - routeDegMiss: the request degraded at send time under the miss-reads
//     policy — synthesize an empty (miss) response, touch no connection.
//   - routeDegErr: the request degraded at send time under fail-fast (or it
//     is a write, which always fails fast) — synthesize ErrNodeDown.
const (
	routeMore     = 1 << 31
	routeDegMiss  = 1 << 30
	routeDegErr   = 1 << 29
	routeDeg      = routeDegMiss | routeDegErr
	routeNodeMask = routeDegErr - 1
)

// routeRing is a FIFO of pending response routes: which node (and, for split
// gets, nodes) each queued request went to, so the receive half can replay
// the send half's routing decisions in order. Power-of-two ring, grow-on-full
// — steady state allocates nothing.
//
// The mutex covers the one sanctioned concurrency in the client: a pipelined
// caller may run the send half and the receive half on two goroutines (the
// load generator does), which makes the ring a single-producer single-
// consumer queue. Each request's push happens-before its own pop (the caller
// must sequence a request's send before its receive to mean anything), but
// the indices are shared between a later push and an earlier concurrent pop;
// an uncontended mutex is nanoseconds and allocation-free.
type routeRing struct {
	mu   sync.Mutex
	buf  []uint32
	head int
	n    int
}

func (r *routeRing) push(v uint32) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		grown := make([]uint32, max(64, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
	r.mu.Unlock()
}

func (r *routeRing) pop() (uint32, bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	r.mu.Unlock()
	return v, true
}

// errNoRoute means a Recv* was called with no queued request to receive —
// the send and receive halves fell out of step.
var errNoRoute = errors.New("cluster: receive with no pending request")

// errNoKeys mirrors the single-node client's rejection of a keyless get.
var errNoKeys = errors.New("cluster: get requires at least one key")

// Client routes memcached-protocol requests across the nodes of a cluster,
// one pipelined server.Client connection per node. It mirrors the
// single-node client's surface — synchronous conveniences plus explicit
// Send*/Recv* pipelining halves — and keeps its contract: not safe for
// general concurrent use, open one per goroutine (the connection pool a
// concurrent caller wants is a pool of Clients). The one sanctioned split,
// matching how the load generator drives the single-node client: ONE
// goroutine running the send half (Send*, Flush) while ONE other runs the
// receive half (Recv*), each request's send sequenced before its receive.
// The route ring is the only state both halves touch; it locks internally.
//
// The heart is batch-aware routing. Per-key requests route to one node and
// push that node onto a route FIFO; the receive half pops the FIFO and reads
// from the same node, so responses come back in request order without any
// cross-node coordination. A multi-key get is split group-by-node with a
// pooled counting-sort permutation — exactly the shape Store.GetBatch uses
// to group keys by shard — and one sub-get per touched node goes out; all
// touched nodes then serve their slices concurrently. The steady-state send
// and discard-receive paths allocate nothing, so the load generator's
// zero-alloc discipline survives the hop to cluster mode.
type Client struct {
	router *Router
	addrs  []string
	opts   Options

	// nstates is the per-node failover machine: connection, health state,
	// and the pending/poisoned pipeline accounting (see failover.go).
	nstates []nodeState
	stop    chan struct{} // closed once, on Close/Abort: stops reconnectors
	stopped sync.Once

	// Degraded-mode accounting: responses synthesized as misses and as
	// errors, lifetime of the client.
	degMisses atomic.Uint64
	degErrors atomic.Uint64

	routes routeRing
	reqs   []uint64 // requests routed per node, lifetime of the client

	// scanLimits is the pending-mrange limit FIFO, aligned with the route
	// ring's scan broadcasts (see SendMRange/RecvMRange in scan.go); it
	// follows the ring's SPSC discipline and locks the same way.
	scanMu     sync.Mutex
	scanLimits []uint64

	// Pooled group-by-node scratch for multi-key gets (see SendGet): the
	// counting-sort workspace, per-key routes, the permutation, and the
	// gathered per-node key batch.
	counts []int32
	nodeOf []int32
	perm   []int32
	sub    []string
}

// Dial connects one pipelined connection to every node. The address list
// order is the cluster's identity: the same ordered list routes the same
// keys to the same nodes, across clients and across restarts.
func Dial(addrs ...string) (*Client, error) {
	return DialOptions(Options{}, addrs...)
}

// DialRetry is Dial with per-node bounded-backoff retry (server.DialRetry):
// the form launcher scripts and CI smokes want, where the cluster's
// processes are still booting when the client starts.
func DialRetry(timeout time.Duration, addrs ...string) (*Client, error) {
	return DialOptions(Options{DialTimeout: timeout}, addrs...)
}

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.nstates) }

// Addrs returns the node address list (the cluster identity, in routing
// order). The returned slice is the client's own; do not mutate it.
func (c *Client) Addrs() []string { return c.addrs }

// NodeReqs returns how many requests this client has routed to each node —
// the client-side view of load balance (a broadcast counts once per node).
func (c *Client) NodeReqs() []uint64 { return append([]uint64(nil), c.reqs...) }

// Router returns the routing function, shared and immutable.
func (c *Client) Router() *Router { return c.router }

// Close stops the reconnectors, sends quit to every live node, and closes
// the connections, returning the first error.
func (c *Client) Close() error {
	return c.shutdown(func(nc *server.Client) error { return nc.Close() })
}

// Abort closes every node transport without touching buffers; like the
// single-node Abort it may be called from another goroutine to unblock the
// owner.
func (c *Client) Abort() error {
	return c.shutdown(func(nc *server.Client) error { return nc.Abort() })
}

func (c *Client) shutdown(closeConn func(*server.Client) error) error {
	c.stopped.Do(func() { close(c.stop) })
	var first error
	for i := range c.nstates {
		ns := &c.nstates[i]
		ns.mu.Lock()
		nc := ns.conn
		ns.conn = nil
		ns.state = NodeDown
		ns.mu.Unlock()
		if nc == nil {
			continue
		}
		if err := closeConn(nc); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush pushes every live node's queued requests to the wire. Flushing a
// node with an empty buffer is a no-op, so this costs only the touched
// nodes anything. A node whose flush fails fails over (its in-flight
// pipeline is poisoned and will be synthesized); Flush itself reports
// nothing — degradation surfaces per request, on the receive side.
func (c *Client) Flush() error {
	for n := range c.nstates {
		ns := &c.nstates[n]
		ns.mu.Lock()
		nc := ns.conn
		if ns.state != NodeUp {
			nc = nil
		}
		ns.mu.Unlock()
		if nc == nil {
			continue
		}
		if err := nc.Flush(); err != nil {
			ns.mu.Lock()
			if ns.conn == nc && ns.state == NodeUp {
				failLocked(ns, nc)
			}
			ns.mu.Unlock()
		}
	}
	return nil
}

// --- pipelined send half ---

// SendGet1 queues a single-key get on the key's node. The loadgen hot path:
// one route, one node write, one ring push, no allocation. A key owned by a
// non-up node (or whose node fails under the write) degrades per policy:
// the ring entry carries the degraded tag and the receive half synthesizes,
// so the pipeline never misaligns and the caller sees no send-side error.
func (c *Client) SendGet1(withCAS bool, key string) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	if nc := c.sendEnter(n); nc != nil {
		err := nc.SendGet1(withCAS, key)
		if c.sendExit(n, nc, err) {
			c.routes.push(uint32(n))
			return nil
		}
	}
	c.routes.push(uint32(n) | c.degTagRead())
	return nil
}

// SendGet queues a get (or gets) for the given keys, split group-by-node:
// keys are routed, a counting-sort permutation groups them (request order
// preserved within each group — the property response reassembly relies on),
// and each touched node receives one sub-get for its group. The touched
// nodes all hold their slice after the next Flush, so they serve the batch
// concurrently. Zero allocations once the scratch has grown to the caller's
// batch size.
func (c *Client) SendGet(withCAS bool, keys ...string) error {
	switch len(keys) {
	case 0:
		return errNoKeys
	case 1:
		return c.SendGet1(withCAS, keys[0])
	}
	n := len(keys)
	if cap(c.nodeOf) < n {
		c.nodeOf = make([]int32, n)
		c.perm = make([]int32, n)
	}
	c.nodeOf = c.nodeOf[:n]
	c.perm = c.perm[:n]
	for i := range c.counts {
		c.counts[i] = 0
	}
	for i, k := range keys {
		nd := c.router.NodeOf(k)
		c.nodeOf[i] = int32(nd)
		c.counts[nd]++
	}
	// Counting sort: counts become group start offsets, then each key's
	// index is scattered into its node's slot range (identical in shape to
	// Store.GetBatch's group-by-shard).
	off := int32(0)
	for nd, cnt := range c.counts {
		c.counts[nd] = off
		off += cnt
	}
	for i := 0; i < n; i++ {
		nd := c.nodeOf[i]
		c.perm[c.counts[nd]] = int32(i)
		c.counts[nd]++
	}
	for j := 0; j < n; {
		nd := c.nodeOf[c.perm[j]]
		c.sub = c.sub[:0]
		for ; j < n && c.nodeOf[c.perm[j]] == nd; j++ {
			c.sub = append(c.sub, keys[c.perm[j]])
		}
		c.reqs[nd]++
		tag := uint32(nd)
		if j < n { // more groups follow for this logical request
			tag |= routeMore
		}
		queued := false
		if nc := c.sendEnter(int(nd)); nc != nil {
			err := nc.SendGet(withCAS, c.sub...)
			queued = c.sendExit(int(nd), nc, err)
		}
		if !queued {
			tag |= c.degTagRead()
		}
		c.routes.push(tag)
	}
	return nil
}

// SendStore queues a storage command on the key's node (verb as in the
// single-node client; casid only used for "cas"). Writes to a non-up node
// always fail fast — the receive half answers ErrNodeDown — never a
// silently dropped acknowledged write.
func (c *Client) SendStore(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	if nc := c.sendEnter(n); nc != nil {
		err := nc.SendStore(verb, key, flags, exptime, data, casid)
		if c.sendExit(n, nc, err) {
			c.routes.push(uint32(n))
			return nil
		}
	}
	c.routes.push(uint32(n) | routeDegErr)
	return nil
}

// SendDelete queues a delete on the key's node (fails fast when the node is
// not up, as all writes do).
func (c *Client) SendDelete(key string) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	if nc := c.sendEnter(n); nc != nil {
		err := nc.SendDelete(key)
		if c.sendExit(n, nc, err) {
			c.routes.push(uint32(n))
			return nil
		}
	}
	c.routes.push(uint32(n) | routeDegErr)
	return nil
}

// SendIncrDecr queues an incr or decr on the key's node (fails fast when
// the node is not up, as all writes do).
func (c *Client) SendIncrDecr(key string, delta uint64, incr bool) error {
	n := c.router.NodeOf(key)
	c.reqs[n]++
	if nc := c.sendEnter(n); nc != nil {
		err := nc.SendIncrDecr(key, delta, incr)
		if c.sendExit(n, nc, err) {
			c.routes.push(uint32(n))
			return nil
		}
	}
	c.routes.push(uint32(n) | routeDegErr)
	return nil
}

// --- pipelined receive half ---

// degradeRead counts one synthesized read response and folds it into the
// running first-error per the policy: a miss-reads degrade is a clean miss
// (no error), a fail-fast degrade is ErrNodeDown.
func (c *Client) degradeRead(firstErr error) error {
	if c.opts.Policy == DegradedMissReads {
		c.degMisses.Add(1)
		return firstErr
	}
	c.degErrors.Add(1)
	if firstErr == nil {
		firstErr = ErrNodeDown
	}
	return firstErr
}

// RecvGetN consumes the response of one SendGet1/SendGet, discarding
// payloads and returning entry and byte counts — the allocation-free
// accounting receive the load generator drives. For a split get it sums the
// touched nodes' sub-responses; a degraded group (its node down at send
// time, or failed while the response was in flight) is synthesized per
// policy, and the remaining groups are still consumed so the pipeline stays
// aligned.
func (c *Client) RecvGetN() (entries int, dataBytes int64, err error) {
	var firstErr error
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return entries, dataBytes, errNoRoute
		}
		switch {
		case tag&routeDegMiss != 0:
			c.degMisses.Add(1)
		case tag&routeDegErr != 0:
			c.degErrors.Add(1)
			if firstErr == nil {
				firstErr = ErrNodeDown
			}
		default:
			n := int(tag & routeNodeMask)
			nc, synth := c.recvEnter(n)
			if !synth {
				e, b, rerr := nc.RecvGetN()
				entries += e
				dataBytes += b
				var out error
				synth, out = c.recvExit(n, nc, rerr)
				if out != nil && firstErr == nil {
					firstErr = out
				}
			}
			if synth {
				firstErr = c.degradeRead(firstErr)
			}
		}
		if tag&routeMore == 0 {
			return entries, dataBytes, firstErr
		}
	}
}

// RecvGet consumes the response of one SendGet1/SendGet, materializing the
// entries. For a split get the entries come back grouped by node (each
// group in request order) — callers that need exact request order across
// nodes get it from ServeStream's reassembly, or key the results (GetMulti).
// Degraded groups synthesize per policy (see RecvGetN).
func (c *Client) RecvGet() ([]server.Entry, error) {
	var out []server.Entry
	var firstErr error
	for {
		tag, ok := c.routes.pop()
		if !ok {
			return out, errNoRoute
		}
		switch {
		case tag&routeDegMiss != 0:
			c.degMisses.Add(1)
		case tag&routeDegErr != 0:
			c.degErrors.Add(1)
			if firstErr == nil {
				firstErr = ErrNodeDown
			}
		default:
			n := int(tag & routeNodeMask)
			nc, synth := c.recvEnter(n)
			if !synth {
				es, rerr := nc.RecvGet()
				out = append(out, es...)
				var oerr error
				synth, oerr = c.recvExit(n, nc, rerr)
				if oerr != nil && firstErr == nil {
					firstErr = oerr
				}
			}
			if synth {
				firstErr = c.degradeRead(firstErr)
			}
		}
		if tag&routeMore == 0 {
			return out, firstErr
		}
	}
}

// RecvStored consumes one storage response (see server.Client.RecvStored).
// A degraded write answers (false, ErrNodeDown): the store was never
// acknowledged by any node.
func (c *Client) RecvStored() (bool, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return false, errNoRoute
	}
	if tag&routeDeg == 0 {
		n := int(tag & routeNodeMask)
		nc, synth := c.recvEnter(n)
		if !synth {
			stored, rerr := nc.RecvStored()
			synth2, out := c.recvExit(n, nc, rerr)
			if !synth2 {
				return stored, out
			}
		}
	}
	c.degErrors.Add(1)
	return false, ErrNodeDown
}

// RecvDeleted consumes one delete response; degraded deletes answer
// (false, ErrNodeDown).
func (c *Client) RecvDeleted() (bool, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return false, errNoRoute
	}
	if tag&routeDeg == 0 {
		n := int(tag & routeNodeMask)
		nc, synth := c.recvEnter(n)
		if !synth {
			deleted, rerr := nc.RecvDeleted()
			synth2, out := c.recvExit(n, nc, rerr)
			if !synth2 {
				return deleted, out
			}
		}
	}
	c.degErrors.Add(1)
	return false, ErrNodeDown
}

// RecvLine consumes one single-line response; degraded requests answer
// ("", ErrNodeDown).
func (c *Client) RecvLine() (string, error) {
	tag, ok := c.routes.pop()
	if !ok {
		return "", errNoRoute
	}
	if tag&routeDeg == 0 {
		n := int(tag & routeNodeMask)
		nc, synth := c.recvEnter(n)
		if !synth {
			line, rerr := nc.RecvLine()
			synth2, out := c.recvExit(n, nc, rerr)
			if !synth2 {
				return line, out
			}
		}
	}
	c.degErrors.Add(1)
	return "", ErrNodeDown
}

// --- synchronous conveniences ---

// Get retrieves one key from its node.
func (c *Client) Get(key string) (server.Entry, bool, error) {
	if err := c.SendGet1(false, key); err != nil {
		return server.Entry{}, false, err
	}
	if err := c.Flush(); err != nil {
		return server.Entry{}, false, err
	}
	es, err := c.RecvGet()
	if err != nil || len(es) == 0 {
		return server.Entry{}, false, err
	}
	return es[0], true, nil
}

// GetMulti retrieves several keys in one fan-out round trip: sub-gets to
// every touched node, served concurrently, results keyed.
func (c *Client) GetMulti(keys ...string) (map[string]server.Entry, error) {
	if err := c.SendGet(false, keys...); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	es, err := c.RecvGet()
	if err != nil {
		return nil, err
	}
	out := make(map[string]server.Entry, len(es))
	for _, e := range es {
		out[e.Key] = e
	}
	return out, nil
}

// storeSync drives one storage verb through the pipelined halves.
func (c *Client) storeSync(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) (bool, error) {
	if err := c.SendStore(verb, key, flags, exptime, data, casid); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvStored()
}

// Set stores unconditionally on the key's node.
func (c *Client) Set(key string, flags uint32, exptime int64, data []byte) error {
	ok, err := c.storeSync("set", key, flags, exptime, data, 0)
	if err == nil && !ok {
		return fmt.Errorf("cluster: set of %q not stored", key)
	}
	return err
}

// Add stores only if absent; reports whether it stored.
func (c *Client) Add(key string, flags uint32, exptime int64, data []byte) (bool, error) {
	return c.storeSync("add", key, flags, exptime, data, 0)
}

// Delete removes a key from its node.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.SendDelete(key); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvDeleted()
}

// Incr adjusts the decimal value under key upward on its node.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr(key, delta, true)
}

// Decr adjusts the decimal value under key downward on its node.
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr(key, delta, false)
}

func (c *Client) incrDecr(key string, delta uint64, incr bool) (uint64, bool, error) {
	if err := c.SendIncrDecr(key, delta, incr); err != nil {
		return 0, false, err
	}
	if err := c.Flush(); err != nil {
		return 0, false, err
	}
	line, err := c.RecvLine()
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" {
		return 0, false, nil
	}
	if line == "ERROR" || strings.HasPrefix(line, "CLIENT_ERROR") || strings.HasPrefix(line, "SERVER_ERROR") {
		return 0, false, &server.ServerError{Line: line}
	}
	v, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("cluster: unexpected incr/decr response %q", line)
	}
	return v, true, nil
}

// FlushAll empties every live node's store — the one mutating broadcast in
// the protocol. The requests pipeline to all nodes before any response is
// read. Nodes currently down are skipped (their stores restart empty
// anyway); only protocol-level surprises from live nodes are errors.
func (c *Client) FlushAll() error {
	for n := range c.nstates {
		c.reqs[n]++
		queued := false
		if nc := c.sendEnter(n); nc != nil {
			err := nc.SendFlushAll(0)
			queued = c.sendExit(n, nc, err)
		}
		tag := uint32(n)
		if !queued {
			tag |= routeDegErr
		}
		c.routes.push(tag)
	}
	c.Flush()
	var firstErr error
	for range c.nstates {
		line, err := c.RecvLine()
		if err != nil {
			if firstErr == nil && !server.IsDegraded(err) {
				firstErr = err
			}
			continue
		}
		if line != "OK" && firstErr == nil {
			firstErr = fmt.Errorf("cluster: unexpected flush_all response %q", line)
		}
	}
	return firstErr
}

// NodeStats retrieves every live node's statistics, pipelined (one fan-out
// round trip), indexed like Addrs. A node that is down — or dies during the
// fan-out — contributes a nil map rather than failing the call, so stats
// stay observable through an outage (which is exactly when they matter).
func (c *Client) NodeStats() ([]map[string]string, error) {
	queued := make([]bool, len(c.nstates))
	for n := range c.nstates {
		nc := c.sendEnter(n)
		if nc == nil {
			continue
		}
		err := nc.SendStats()
		queued[n] = c.sendExit(n, nc, err)
	}
	c.Flush()
	out := make([]map[string]string, len(c.nstates))
	for n := range c.nstates {
		if !queued[n] {
			continue
		}
		nc, synth := c.recvEnter(n)
		if synth {
			continue
		}
		st, rerr := nc.RecvStats()
		synth, out2 := c.recvExit(n, nc, rerr)
		if synth {
			continue
		}
		if out2 != nil {
			return nil, fmt.Errorf("cluster: stats from node %d (%s): %w", n, c.addrs[n], out2)
		}
		out[n] = st
	}
	return out, nil
}

// Stats fans out to every node and aggregates: additive counters (command
// and hit/miss counts, byte counts, batch and value-pool counters, item and
// connection counts, shard totals) are summed, batch_depth_avg is recomputed
// from the summed counters, and identity fields (algo, version, …) are taken
// from node 0. Cluster-level fields are added on top: cluster_nodes, and
// node<i>_reqs — each node's served-command count, so uneven routing is
// visible in one place.
func (c *Client) Stats() (map[string]string, error) {
	per, err := c.NodeStats()
	if err != nil {
		return nil, err
	}
	return c.aggregateStats(per), nil
}

// aggregateStats folds per-node stats maps (indexed like Addrs; nil entries
// are nodes that were down) into the cluster view Stats documents. On top
// of the summed counters it reports the failover layer's own view: each
// node's health state and failover count, and the cluster totals including
// how many responses were synthesized under degraded mode.
func (c *Client) aggregateStats(per []map[string]string) map[string]string {
	base := -1
	for i, st := range per {
		if st != nil {
			base = i
			break
		}
	}
	agg := make(map[string]string, 64)
	if base >= 0 {
		for k, v := range per[base] {
			agg[k] = v
		}
		for _, st := range per[base+1:] {
			if st == nil {
				continue
			}
			for k, v := range st {
				if !statSummable(k) {
					continue
				}
				a, err1 := strconv.ParseUint(agg[k], 10, 64)
				b, err2 := strconv.ParseUint(v, 10, 64)
				if err1 == nil && err2 == nil {
					agg[k] = strconv.FormatUint(a+b, 10)
				}
			}
		}
	}
	// The summed batches/cmd_batched make the base node's quotient stale.
	if batches, err := strconv.ParseUint(agg["batches"], 10, 64); err == nil && batches > 0 {
		if batched, err := strconv.ParseUint(agg["cmd_batched"], 10, 64); err == nil {
			agg["batch_depth_avg"] = strconv.FormatFloat(float64(batched)/float64(batches), 'f', 2, 64)
		}
	}
	agg["cluster_nodes"] = strconv.Itoa(len(c.nstates))
	up := 0
	var failovers, reconnects uint64
	for i, st := range per {
		h := c.Health(i)
		if h.State == NodeUp {
			up++
		}
		failovers += h.Failovers
		reconnects += h.Reconnects
		pfx := "node" + strconv.Itoa(i)
		agg[pfx+"_state"] = h.State.String()
		agg[pfx+"_failovers"] = strconv.FormatUint(h.Failovers, 10)
		if st != nil {
			agg[pfx+"_reqs"] = strconv.FormatUint(server.ReqsServed(st), 10)
		}
	}
	agg["cluster_nodes_up"] = strconv.Itoa(up)
	agg["cluster_failovers"] = strconv.FormatUint(failovers, 10)
	agg["cluster_reconnects"] = strconv.FormatUint(reconnects, 10)
	agg["cluster_degraded_misses"] = strconv.FormatUint(c.degMisses.Load(), 10)
	agg["cluster_degraded_errors"] = strconv.FormatUint(c.degErrors.Load(), 10)
	return agg
}

// statSummable reports whether a stats field aggregates across nodes by
// summation. batch_depth_avg is a quotient (recomputed after summing);
// uptime/time/version/algo and the like are identity fields (node 0 wins).
func statSummable(name string) bool {
	switch name {
	case "curr_connections", "total_connections", "curr_items",
		"batches", "cmd_batched", "protocol_errors", "shards", "threads",
		"handler_panics", "conns_shed":
		return true
	case "batch_depth_avg":
		return false
	}
	for _, p := range [...]string{"cmd_", "get_", "delete_", "incr_", "decr_",
		"cas_", "bytes_", "value_pool_", "batch_depth_", "range_"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
