package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// startNodeServers is startNodes, but hands back the servers too so tests
// can kill and resurrect them.
func startNodeServers(t *testing.T, algo string, n int) ([]*server.Server, []string) {
	t.Helper()
	srvs := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Listen(); err != nil {
			t.Fatal(err)
		}
		go s.Serve()
		t.Cleanup(func() { s.Close() })
		srvs[i] = s
		addrs[i] = s.Addr().String()
	}
	return srvs, addrs
}

// restartNode rebinds a killed node on its old address with an empty store —
// a process reboot, as far as clients can tell.
func restartNode(t *testing.T, algo, addr string) *server.Server {
	t.Helper()
	var s *server.Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		s, err = server.New(server.Config{Addr: addr, Algo: algo})
		if err != nil {
			t.Fatal(err)
		}
		if err = s.Listen(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

// deadAddr reserves a loopback port nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// keysOwnedBy returns distinct keys that route to node n (prefix-distinct so
// they never collide across calls).
func keysOwnedBy(r *Router, n, count int, prefix string) []string {
	keys := make([]string, 0, count)
	for i := 0; len(keys) < count; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.NodeOf(k) == n {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestDialPartialFailureLeaksNothing: when one node of N is unreachable and
// AllowInitialDown is off, Dial must fail AND close the connections it had
// already made to the reachable nodes — a failed boot leaves no sockets
// behind.
func TestDialPartialFailureLeaksNothing(t *testing.T) {
	srvs, addrs := startNodeServers(t, "ht-clht-lb", 2)
	all := append(append([]string(nil), addrs...), deadAddr(t))

	if _, err := Dial(all...); err == nil {
		t.Fatal("Dial with an unreachable node succeeded")
	} else if !strings.Contains(err.Error(), "node 2") {
		t.Fatalf("error does not identify the failed node: %v", err)
	}

	// The two reachable nodes were dialed before the failure; their
	// connections must be gone again. Conn teardown is asynchronous on the
	// server side, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		open := 0
		for _, s := range srvs {
			if v := s.StatsMap()["curr_connections"]; v != "0" {
				open++
			}
		}
		if open == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d nodes still hold connections after failed Dial", open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialAllowInitialDown: with AllowInitialDown, an unreachable node boots
// as NodeDown with the reconnector chasing it, and joins once it appears.
func TestDialAllowInitialDown(t *testing.T) {
	_, addrs := startNodeServers(t, "ht-clht-lb", 2)
	hole := deadAddr(t)
	all := append(append([]string(nil), addrs...), hole)

	c, err := DialOptions(Options{
		AllowInitialDown: true,
		Policy:           DegradedMissReads,
		ReconnectWindow:  50 * time.Millisecond,
	}, all...)
	if err != nil {
		t.Fatalf("DialOptions with AllowInitialDown: %v", err)
	}
	defer c.Close()

	if st := c.Health(2).State; st != NodeDown {
		t.Fatalf("unreachable node state = %v, want down", st)
	}
	// Reads owned by the hole degrade to misses; the rest of the cluster
	// serves.
	ghost := keysOwnedBy(c.router, 2, 1, "aid-ghost")[0]
	if _, ok, err := c.Get(ghost); err != nil || ok {
		t.Fatalf("read of down node's key = ok=%v err=%v, want clean miss", ok, err)
	}

	// Bring the node up; the reconnector must adopt it without help.
	restartNode(t, "ht-clht-lb", hole)
	if !c.WaitHealthy(10 * time.Second) {
		t.Fatal("cluster never became healthy after the missing node appeared")
	}
	if err := c.Set(ghost, 0, 0, []byte("v")); err != nil {
		t.Fatalf("write after join: %v", err)
	}
	if e, ok, err := c.Get(ghost); err != nil || !ok || string(e.Data) != "v" {
		t.Fatalf("read-back after join: %+v %v %v", e, ok, err)
	}
}

// TestFailoverDegradedMissReads: kill one node of three under the miss-reads
// policy. Reads of its keys degrade to misses, writes fail fast with
// ErrNodeDown, survivors are untouched, and the circuit stays open (no
// routing to the dead node) until recovery.
func TestFailoverDegradedMissReads(t *testing.T) {
	srvs, addrs := startNodeServers(t, "ht-clht-lb", 3)
	c, err := DialOptions(Options{
		Policy:          DegradedMissReads,
		ReconnectWindow: 50 * time.Millisecond,
	}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const victim = 1
	vkeys := keysOwnedBy(c.router, victim, 4, "miss-v")
	skeys := keysOwnedBy(c.router, 0, 4, "miss-s")
	for _, k := range append(append([]string(nil), vkeys...), skeys...) {
		if err := c.Set(k, 0, 0, []byte("pre")); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	srvs[victim].Close()

	// The first op after the kill eats the transport error and fails over;
	// from then on the circuit is open. All of these must degrade per
	// policy — reads to misses, writes to ErrNodeDown.
	for i, k := range vkeys {
		if _, ok, err := c.Get(k); err != nil || ok {
			t.Fatalf("read %d of dead node's key: ok=%v err=%v, want miss", i, ok, err)
		}
	}
	for _, k := range vkeys {
		err := c.Set(k, 0, 0, []byte("lost?"))
		if !server.IsDegraded(err) {
			t.Fatalf("write to dead node's key: %v, want degraded ErrNodeDown", err)
		}
	}
	// Multi-get spanning live and dead nodes: dead node's keys miss, live
	// node's keys hit.
	got, err := c.GetMulti(vkeys[0], skeys[0], vkeys[1], skeys[1])
	if err != nil {
		t.Fatalf("GetMulti across a dead node: %v", err)
	}
	if len(got) != 2 || string(got[skeys[0]].Data) != "pre" || string(got[skeys[1]].Data) != "pre" {
		t.Fatalf("GetMulti = %v, want only the two live keys", got)
	}

	// Survivors are fully served.
	for _, k := range skeys {
		if e, ok, err := c.Get(k); err != nil || !ok || string(e.Data) != "pre" {
			t.Fatalf("survivor %s: %+v %v %v", k, e, ok, err)
		}
	}

	if h := c.Health(victim); h.State == NodeUp || h.Failovers == 0 {
		t.Fatalf("victim health = %+v, want failed over", h)
	}
	misses, errs := c.DegradedCounts()
	if misses == 0 || errs == 0 {
		t.Fatalf("DegradedCounts = %d misses, %d errs; want both > 0", misses, errs)
	}
	fo, _ := c.NodeFailovers()
	if fo == 0 {
		t.Fatal("NodeFailovers reports no failovers after a kill")
	}

	// Aggregated stats survive the outage and expose the health.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats with a node down: %v", err)
	}
	if st["cluster_nodes_up"] != "2" {
		t.Fatalf("cluster_nodes_up = %q, want 2", st["cluster_nodes_up"])
	}
	if got := st[fmt.Sprintf("node%d_state", victim)]; got == "up" {
		t.Fatalf("node%d_state = %q, want suspect or down", victim, got)
	}
}

// TestFailoverFailFast: under the default policy, everything owned by a dead
// node answers ErrNodeDown — reads included.
func TestFailoverFailFast(t *testing.T) {
	srvs, addrs := startNodeServers(t, "ht-clht-lb", 3)
	c, err := DialOptions(Options{ReconnectWindow: 50 * time.Millisecond}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const victim = 2
	vkey := keysOwnedBy(c.router, victim, 1, "ff-v")[0]
	skey := keysOwnedBy(c.router, 0, 1, "ff-s")[0]
	if err := c.Set(skey, 0, 0, []byte("s")); err != nil {
		t.Fatal(err)
	}

	srvs[victim].Close()

	if _, _, err := c.Get(vkey); !server.IsDegraded(err) {
		t.Fatalf("fail-fast read of dead node's key: %v, want ErrNodeDown", err)
	}
	if err := c.Set(vkey, 0, 0, []byte("x")); !server.IsDegraded(err) {
		t.Fatalf("fail-fast write: %v, want ErrNodeDown", err)
	}
	if _, ok, err := c.Get(skey); err != nil || !ok {
		t.Fatalf("survivor read under fail-fast: ok=%v err=%v", ok, err)
	}
	if _, errs := c.DegradedCounts(); errs < 2 {
		t.Fatalf("degraded errors = %d, want >= 2", errs)
	}
}

// TestFailoverReconnect: a killed node that comes back is re-adopted by the
// background reconnector — no client calls required — and serves again.
func TestFailoverReconnect(t *testing.T) {
	srvs, addrs := startNodeServers(t, "ht-clht-lb", 3)
	c, err := DialOptions(Options{
		Policy:          DegradedMissReads,
		ReconnectWindow: 50 * time.Millisecond,
		DownAfter:       1,
	}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const victim = 0
	vkey := keysOwnedBy(c.router, victim, 1, "rc-v")[0]
	if err := c.Set(vkey, 0, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}

	srvs[victim].Close()
	if _, ok, err := c.Get(vkey); err != nil || ok {
		t.Fatalf("read after kill: ok=%v err=%v, want miss", ok, err)
	}
	// With DownAfter=1 the first failed reconnect round confirms NodeDown.
	deadline := time.Now().Add(5 * time.Second)
	for c.Health(victim).State != NodeDown {
		if time.Now().After(deadline) {
			t.Fatalf("victim never confirmed down; state=%v", c.Health(victim).State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	restartNode(t, "ht-clht-lb", addrs[victim])
	if !c.WaitHealthy(10 * time.Second) {
		t.Fatal("cluster did not recover after the node restarted")
	}
	h := c.Health(victim)
	if h.Failovers == 0 || h.Reconnects == 0 {
		t.Fatalf("victim health after recovery = %+v, want failover and reconnect counted", h)
	}

	// The store restarted empty: the old value is gone (a real restart), and
	// new writes land and read back through the same client.
	if _, ok, err := c.Get(vkey); err != nil || ok {
		t.Fatalf("restarted node should miss: ok=%v err=%v", ok, err)
	}
	if err := c.Set(vkey, 0, 0, []byte("after")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if e, ok, err := c.Get(vkey); err != nil || !ok || string(e.Data) != "after" {
		t.Fatalf("read-back after recovery: %+v %v %v", e, ok, err)
	}
}

// TestFailoverFaultyDialer: run a keyspace workload through connections that
// randomly inject resets (the faultnet NodeDialer seam). Every operation
// must finish as a success, a miss, or a degraded error — never a raw
// transport error or a hang — and the client must end the run recoverable.
func TestFailoverFaultyDialer(t *testing.T) {
	_, addrs := startNodeServers(t, "ht-clht-lb", 3)
	dialer := func(addr string, timeout time.Duration) (*server.Client, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return server.NewClientConn(faultnet.New(nc, faultnet.Config{
			Seed:      0xfa117,
			ResetProb: 0.003,
		})), nil
	}
	c, err := DialOptions(Options{
		Policy:          DegradedMissReads,
		ReconnectWindow: 100 * time.Millisecond,
		NodeDialer:      dialer,
	}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := xrand.New(7)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("fd-%d", rng.Uint64n(64))
		var err error
		switch rng.Uint64n(3) {
		case 0:
			err = c.Set(k, 0, 0, []byte("v"))
		case 1:
			_, _, err = c.Get(k)
		case 2:
			_, err = c.Delete(k)
		}
		if err != nil && !server.IsDegraded(err) {
			t.Fatalf("op %d: non-degraded error leaked through failover: %v", i, err)
		}
	}
	// The servers are healthy; once the chaos conns settle the client must
	// be able to recover every node.
	if !c.WaitHealthy(10 * time.Second) {
		for i := range c.nstates {
			t.Logf("node %d: %+v", i, c.Health(i))
		}
		t.Fatal("client not recoverable after faulty-dialer run")
	}
}

// TestLoadgenChaosTolerateDegraded: RunLoadgen with TolerateDegraded drives
// straight through a mid-run kill+restart. The run must complete without a
// connection error, count the synthesized responses, and carry the failover
// accounting into the BENCH artifact (schema v5 fields).
func TestLoadgenChaosTolerateDegraded(t *testing.T) {
	srvs, addrs := startNodeServers(t, "ht-clht-lb", 3)
	const victim = 1
	cfg := server.LoadgenConfig{
		Addr:     "cluster",
		Conns:    2,
		Pipeline: 8,
		Duration: 700 * time.Millisecond,
		Keys:     512,
		Mix:      workload.Mix{UpdatePct: 20, RangePct: 5},
		Seed:     11,
		Dial: func() (server.Conn, error) {
			return DialOptions(Options{
				Policy:           DegradedMissReads,
				ReconnectWindow:  50 * time.Millisecond,
				DialTimeout:      2 * time.Second,
				AllowInitialDown: true,
			}, addrs...)
		},
		TolerateDegraded: true,
	}

	go func() {
		time.Sleep(120 * time.Millisecond)
		srvs[victim].Close()
		time.Sleep(160 * time.Millisecond)
		restartNode(t, "ht-clht-lb", addrs[victim])
	}()

	res, err := server.RunLoadgen(cfg)
	if err != nil {
		t.Fatalf("chaos loadgen run failed: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.NodeFailovers == 0 {
		t.Fatal("run recorded no node failovers — the kill never hit the wire")
	}
	if res.Degraded == 0 || res.DegradedMisses+res.DegradedErrors == 0 {
		t.Fatalf("degraded accounting empty: receiver=%d misses=%d errors=%d",
			res.Degraded, res.DegradedMisses, res.DegradedErrors)
	}
	b := server.BenchRunOf(res)
	if b.NodeFailovers != res.NodeFailovers || b.DegradedMisses != res.DegradedMisses ||
		b.DegradedErrors != res.DegradedErrors || b.NodeReconnects != res.NodeReconnects {
		t.Fatalf("BenchRun failover fields not carried: %+v vs result %+v", b, res)
	}
}

// ---------------------------------------------------------------------------
// The chaos gate: kill and restart a node mid-stream, under load, and demand
// byte-identical responses to a single reference server.
//
// The stream touches two key families:
//
//   - survivor keys: owned by nodes that stay up. Their reads, writes,
//     deletes, and counters must behave exactly as on the reference server
//     throughout the outage — acknowledged writes on survivors cannot be
//     lost or reordered by a failover elsewhere.
//   - ghost keys: owned by the victim, and NEVER written anywhere. A get
//     answers END on the reference (never stored), END from the live victim
//     (not found), and END synthesized under the miss-reads policy while the
//     victim is down or mid-reconnect — byte-identical in every phase, no
//     matter when the kill lands.
//
// That construction makes the differential fully deterministic even though
// the kill/restart timing races the stream.
// ---------------------------------------------------------------------------

// genChaosStream builds n batches of commands over survivor and ghost keys.
func genChaosStream(rng *xrand.State, r *Router, victim, batches int) [][]byte {
	skey := func() string {
		for {
			k := fmt.Sprintf("ck%d", rng.Uint64n(48))
			if r.NodeOf(k) != victim {
				return k
			}
		}
	}
	gkey := func() string {
		for {
			k := fmt.Sprintf("ghost%d", rng.Uint64n(16))
			if r.NodeOf(k) == victim {
				return k
			}
		}
	}
	out := make([][]byte, 0, batches)
	for i := 0; i < batches; i++ {
		var b strings.Builder
		for j := 0; j < 4; j++ {
			switch rng.Uint64n(8) {
			case 0, 1:
				fmt.Fprintf(&b, "get %s\r\n", skey())
			case 2:
				// Mixed multi-get: survivors hit or miss, ghosts always miss.
				fmt.Fprintf(&b, "get %s %s %s\r\n", skey(), gkey(), skey())
			case 3:
				fmt.Fprintf(&b, "get %s\r\n", gkey())
			case 4, 5:
				val := strings.Repeat("w", int(rng.Uint64n(40)))
				nr := ""
				if rng.Uint64n(4) == 0 {
					nr = " noreply"
				}
				fmt.Fprintf(&b, "set %s %d 0 %d%s\r\n%s\r\n", skey(), rng.Uint64n(9), len(val), nr, val)
			case 6:
				fmt.Fprintf(&b, "delete %s\r\n", skey())
			case 7:
				fmt.Fprintf(&b, "incr %s %d\r\n", skey(), rng.Uint64n(100))
			}
		}
		out = append(out, []byte(b.String()))
	}
	return out
}

// runStream feeds batches to w with a small pacing delay, invoking chaos
// hooks keyed by batch index, then closes the stream.
func runStream(t *testing.T, w io.WriteCloser, batches [][]byte, hooks map[int]func()) {
	t.Helper()
	defer w.Close()
	for i, b := range batches {
		if hook := hooks[i]; hook != nil {
			hook()
		}
		if _, err := w.Write(b); err != nil {
			t.Errorf("stream write %d: %v", i, err)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := w.Write([]byte("quit\r\n")); err != nil {
		t.Errorf("stream quit: %v", err)
	}
}

// TestChaosKillRestartDifferential is the chaos gate proper.
func TestChaosKillRestartDifferential(t *testing.T) {
	const (
		algo    = "ht-clht-lb"
		victim  = 1
		batches = 300
		killAt  = 60
		bootAt  = 180
	)
	rng := xrand.New(42)
	stream := genChaosStream(rng, NewRouter(3), victim, batches)

	// Reference: one server, whole keyspace, same bytes in.
	var flat []byte
	for _, b := range stream {
		flat = append(flat, b...)
	}
	flat = append(flat, []byte("quit\r\n")...)
	want := collectSingle(t, algo, false, flat, 1<<20)

	// Cluster under chaos.
	srvs, addrs := startNodeServers(t, algo, 3)
	c, err := DialOptions(Options{
		Policy:          DegradedMissReads,
		ReconnectWindow: 50 * time.Millisecond,
	}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pr, pw := io.Pipe()
	hooks := map[int]func(){
		killAt: func() { srvs[victim].Close() },
		bootAt: func() { srvs[victim] = restartNode(t, algo, addrs[victim]) },
	}
	go runStream(t, pw, stream, hooks)

	var got bytes.Buffer
	if err := c.ServeStream(pr, &got); err != nil {
		t.Fatalf("ServeStream under chaos: %v", err)
	}

	if !bytes.Equal(want, got.Bytes()) {
		g := got.Bytes()
		i := 0
		for i < len(want) && i < len(g) && want[i] == g[i] {
			i++
		}
		lo := i - 160
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("chaos run diverges from reference at byte %d\nsingle:  %q\ncluster: %q",
			i, tail(want, lo, i+160), tail(g, lo, i+160))
	}

	// The kill must actually have been seen and healed: at least one
	// failover, and full recovery without intervention.
	fo, _ := c.NodeFailovers()
	if fo == 0 {
		t.Fatal("chaos run recorded no failovers — the kill window never hit the wire")
	}
	if !c.WaitHealthy(10 * time.Second) {
		t.Fatal("cluster did not recover after the restart")
	}
	if h := c.Health(victim); h.Reconnects == 0 {
		t.Fatalf("victim reconnects = 0 after recovery; health %+v", h)
	}

	// No acknowledged-write loss on survivors: the reference server and the
	// recovered cluster agree on every surviving key's final value.
	ref := dialRef(t, algo, flat)
	defer ref.Close()
	for i := 0; i < 48; i++ {
		k := fmt.Sprintf("ck%d", i)
		if NewRouter(3).NodeOf(k) == victim {
			continue
		}
		re, rok, rerr := ref.Get(k)
		ce, cok, cerr := c.Get(k)
		if rerr != nil || cerr != nil {
			t.Fatalf("final verify %s: ref err %v, cluster err %v", k, rerr, cerr)
		}
		if rok != cok || (rok && !bytes.Equal(re.Data, ce.Data)) {
			t.Fatalf("final verify %s: ref ok=%v %q, cluster ok=%v %q",
				k, rok, re.Data, cok, ce.Data)
		}
	}
}

// dialRef replays the stream into a fresh reference server and returns a
// client on it, for final-state comparison.
func dialRef(t *testing.T, algo string, stream []byte) *server.Client {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })

	// Replay on a throwaway conn (the stream ends in quit), then hand back a
	// clean client for the final-state reads.
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go nc.Write(stream)
	io.Copy(io.Discard, nc)
	nc.Close()

	c, err := server.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return c
}
