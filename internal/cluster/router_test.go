package cluster

import (
	"strconv"
	"testing"

	ascylib "repro"
)

// testHashes precomputes the key hashes of a keyspace once; every router
// property below is a pure function of these.
func testHashes(n int) []uint64 {
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = ascylib.HashString("key:" + strconv.Itoa(i))
	}
	return hs
}

// TestRouterDeterministic: placement is a pure function of (key, node
// count) — two routers over the same node count route every key
// identically (this is what makes the mapping stable across client and
// cluster restarts: there is no per-process randomness to disagree about),
// and string and byte forms of a key agree.
func TestRouterDeterministic(t *testing.T) {
	for n := 1; n <= 8; n++ {
		a, b := NewRouter(n), NewRouter(n)
		for i := 0; i < 10000; i++ {
			key := "key:" + strconv.Itoa(i)
			na, nb := a.NodeOf(key), b.NodeOf(key)
			if na != nb {
				t.Fatalf("n=%d key %q: %d vs %d across router instances", n, key, na, nb)
			}
			if nByte := a.NodeOfBytes([]byte(key)); nByte != na {
				t.Fatalf("n=%d key %q: string routes to %d, bytes to %d", n, key, na, nByte)
			}
			if na < 0 || na >= n {
				t.Fatalf("n=%d key %q: node %d out of range", n, key, na)
			}
		}
	}
}

// TestRouterBalance: at 1M keys the per-node key counts stay within 15% of
// uniform for every cluster size 2..8. Rendezvous over a well-mixed score is
// a balls-into-bins process; the observed deviation should be a small
// fraction of a percent, so 15% also guards against a silently broken mix
// (raw FNV top bits, a constant seed) that still "works".
func TestRouterBalance(t *testing.T) {
	const keys = 1_000_000
	hs := testHashes(keys)
	for n := 2; n <= 8; n++ {
		r := NewRouter(n)
		counts := make([]int, n)
		for _, h := range hs {
			counts[r.NodeOfHash(h)]++
		}
		want := float64(keys) / float64(n)
		for nd, got := range counts {
			dev := (float64(got) - want) / want
			if dev < -0.15 || dev > 0.15 {
				t.Fatalf("n=%d node %d holds %d keys, %.1f%% off uniform (%.0f)",
					n, nd, got, 100*dev, want)
			}
		}
	}
}

// TestRouterRemap: growing the cluster N→N+1 must move about 1/(N+1) of the
// keys — the minimal disruption rendezvous hashing promises — and every key
// that moves must move TO the new node (node identity is the position in the
// address list, so existing nodes keep their positions and can only lose
// keys to the newcomer, never trade among themselves).
func TestRouterRemap(t *testing.T) {
	const keys = 1_000_000
	hs := testHashes(keys)
	for n := 1; n <= 7; n++ {
		before, after := NewRouter(n), NewRouter(n+1)
		moved := 0
		for _, h := range hs {
			a, b := before.NodeOfHash(h), after.NodeOfHash(h)
			if a == b {
				continue
			}
			if b != n {
				t.Fatalf("n=%d→%d: a key moved from node %d to old node %d", n, n+1, a, b)
			}
			moved++
		}
		frac := float64(moved) / float64(keys)
		want := 1 / float64(n+1)
		if frac < want-0.02 || frac > want+0.02 {
			t.Fatalf("n=%d→%d: remapped fraction %.4f, want ≈ %.4f (±0.02)", n, n+1, frac, want)
		}
	}
}
