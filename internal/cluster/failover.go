package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/server"
)

// NodeState is one node's health as the client sees it.
//
// The lifecycle: a node is NodeUp while its connection serves; the first
// transport error fails it over to NodeSuspect (conn torn down, circuit
// opened, reconnector kicked); after Options.DownAfter consecutive failed
// reconnect rounds the suspicion is confirmed as NodeDown. A verified
// reconnect returns the node to NodeUp from either state. The routing
// circuit is open for both NodeSuspect and NodeDown — a node without a live
// connection cannot be routed to regardless of how sure the client is that
// it is gone — so the distinction is observability: suspect is "just
// failed, reconnect still in its first rounds", down is "confirmed gone".
type NodeState int32

const (
	NodeUp NodeState = iota
	NodeSuspect
	NodeDown
)

func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeSuspect:
		return "suspect"
	case NodeDown:
		return "down"
	}
	return "invalid"
}

// DegradedPolicy decides what a request owned by a non-up node gets back
// while the circuit is open. Writes always fail fast regardless of policy —
// acknowledging a write that reached no node would be a silent data loss —
// so the policy only varies reads.
type DegradedPolicy int

const (
	// DegradedFailFast answers every request for a down node's keys with an
	// error ("SERVER_ERROR node down" over the wire, ErrNodeDown in-process)
	// — the caller learns immediately and decides for itself.
	DegradedFailFast DegradedPolicy = iota
	// DegradedMissReads treats reads of a down node's keys as misses —
	// exactly what a cache contract promises anyway — while writes still
	// fail fast. The cache keeps absorbing read traffic through the outage.
	DegradedMissReads
)

// ErrNodeDown is the degraded-mode error: the request was owned by a node
// whose circuit is open (or that failed while the request was in flight),
// and the response was synthesized locally. It implements
// server.DegradedError, so server.IsDegraded(err) is true — the pipeline is
// still aligned and the caller may simply continue.
var ErrNodeDown error = nodeDownError{}

type nodeDownError struct{}

func (nodeDownError) Error() string  { return "cluster: SERVER_ERROR node down" }
func (nodeDownError) Degraded() bool { return true }

// degradedLine is the wire form of ErrNodeDown (what ServeStream emits for
// a failed-fast request).
const degradedLine = "SERVER_ERROR node down"

// Options tunes the failover behavior of a cluster client.
type Options struct {
	// DialTimeout bounds the initial per-node connect retry window
	// (server.DialRetry's backoff); <= 0 makes one attempt per node.
	DialTimeout time.Duration
	// Policy selects the degraded mode (see DegradedPolicy); the zero value
	// is DegradedFailFast.
	Policy DegradedPolicy
	// DownAfter is how many consecutive failed reconnect rounds confirm a
	// suspect node as down; <= 0 means 2.
	DownAfter int
	// ReconnectWindow bounds each reconnect round (one verified-dial backoff
	// window, see server.DialRetryVerified); <= 0 means 250ms.
	ReconnectWindow time.Duration
	// AllowInitialDown makes Dial tolerate unreachable nodes at boot: they
	// start in NodeDown with the reconnector already chasing them, instead
	// of failing the whole Dial. The default (false) fails fast and closes
	// the connections already made.
	AllowInitialDown bool
	// NodeDialer overrides how node connections are (re)established — the
	// chaos harness's seam, wrapping conns in faultnet. nil uses
	// server.DialRetry for the initial dial and server.DialRetryVerified
	// (dial + version probe per attempt) for reconnects.
	NodeDialer func(addr string, timeout time.Duration) (*server.Client, error)
}

func (o *Options) fill() {
	if o.DownAfter <= 0 {
		o.DownAfter = 2
	}
	if o.ReconnectWindow <= 0 {
		o.ReconnectWindow = 250 * time.Millisecond
	}
}

func (o *Options) dialInitial(addr string) (*server.Client, error) {
	if o.NodeDialer != nil {
		return o.NodeDialer(addr, o.DialTimeout)
	}
	return server.DialRetry(addr, o.DialTimeout)
}

func (o *Options) dialReconnect(addr string) (*server.Client, error) {
	if o.NodeDialer != nil {
		return o.NodeDialer(addr, o.ReconnectWindow)
	}
	return server.DialRetryVerified(addr, o.ReconnectWindow)
}

// NodeHealth is one node's health snapshot.
type NodeHealth struct {
	State      NodeState
	Failovers  uint64 // up→suspect transitions (one per lost connection)
	Reconnects uint64 // successful verified reconnects
}

// nodeState is one node's failover machine. The mutex guards every field;
// the hot paths take it twice per request (once around the conn snapshot,
// once to settle), which an uncontended mutex serves in nanoseconds and
// zero allocations — the routed get path's 0 allocs/op gate still holds.
//
// pending counts requests on the current connection's wire whose responses
// have not been received. When the connection fails, pending becomes
// poisoned: that many responses will never arrive, and — critically — must
// never be read from a reconnected connection, which only carries responses
// for requests sent after recovery. The receive path consumes poisoned
// entries synthetically before it touches the connection, and the route
// ring's FIFO order guarantees the poisoned requests pop before any
// post-recovery request pushed behind them, so the pipeline realigns
// exactly.
type nodeState struct {
	mu         sync.Mutex
	conn       *server.Client
	state      NodeState
	pending    int64
	poisoned   int64
	failovers  uint64
	reconnects uint64
	kick       chan struct{} // wakes the node's reconnector (capacity 1)
}

// failLocked fails node state ns over: tear the connection down, open the
// circuit, poison the in-flight pipeline, and kick the reconnector. Caller
// holds ns.mu with ns.conn == nc and ns.state == NodeUp.
func failLocked(ns *nodeState, nc *server.Client) {
	nc.Abort()
	ns.conn = nil
	ns.state = NodeSuspect
	ns.poisoned += ns.pending
	ns.pending = 0
	ns.failovers++
	select {
	case ns.kick <- struct{}{}:
	default:
	}
}

// sendEnter snapshots node n's connection for a queueing write; nil means
// the circuit is open and the request must degrade without touching the
// wire.
func (c *Client) sendEnter(n int) *server.Client {
	ns := &c.nstates[n]
	ns.mu.Lock()
	nc := ns.conn
	if ns.state != NodeUp {
		nc = nil
	}
	ns.mu.Unlock()
	return nc
}

// sendExit settles a queueing write made on nc: true means the request is
// owed a response (pending++). false means it must be synthesized — either
// the write failed (this call performs the failover), or the node failed
// over underneath the write, in which case the bytes went to the torn-down
// connection and die with it.
func (c *Client) sendExit(n int, nc *server.Client, err error) bool {
	ns := &c.nstates[n]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.conn != nc || ns.state != NodeUp {
		return false
	}
	if err != nil {
		failLocked(ns, nc)
		return false
	}
	ns.pending++
	return true
}

// recvEnter begins one response receive on node n. synth reports that the
// response must be synthesized without touching any connection: the request
// was poisoned by a failover, so its response will never arrive — and must
// not be read from a reconnected connection (see nodeState).
func (c *Client) recvEnter(n int) (nc *server.Client, synth bool) {
	ns := &c.nstates[n]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.poisoned > 0 {
		ns.poisoned--
		return nil, true
	}
	if ns.state != NodeUp || ns.conn == nil {
		return nil, true
	}
	return ns.conn, false
}

// recvExit settles one receive performed on nc. A protocol error line
// (*server.ServerError) leaves the stream aligned and the node healthy, so
// it passes through as err. Any other error is transport: the node fails
// over (if this receive is the first to notice), the in-flight slot that
// died with it — this request's — is consumed from the poison count, and
// the caller synthesizes. A success settled after a concurrent failover
// consumes its poisoned slot too, keeping the count exact: the response was
// received, so it is not among the ones that will never arrive.
func (c *Client) recvExit(n int, nc *server.Client, err error) (synth bool, out error) {
	ns := &c.nstates[n]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if err == nil {
		if ns.conn == nc {
			ns.pending--
		} else if ns.poisoned > 0 {
			ns.poisoned--
		}
		return false, nil
	}
	// se lives on the error path only: taking its address for errors.As
	// heap-allocates it, which the zero-alloc gate on the success path
	// forbids.
	var se *server.ServerError
	if errors.As(err, &se) {
		if ns.conn == nc {
			ns.pending--
		} else if ns.poisoned > 0 {
			ns.poisoned--
		}
		return false, err
	}
	if ns.conn == nc && ns.state == NodeUp {
		failLocked(ns, nc)
	}
	if ns.poisoned > 0 {
		ns.poisoned--
	}
	return true, nil
}

// degTagRead returns the degraded route tag for a read under the client's
// policy: a synthesized miss, or a synthesized error.
func (c *Client) degTagRead() uint32 {
	if c.opts.Policy == DegradedMissReads {
		return routeDegMiss
	}
	return routeDegErr
}

// reconnectLoop is node i's background reconnector: woken by a failover
// kick, it runs verified-dial rounds (each bounded by ReconnectWindow's
// backoff) until the node answers, confirming the node down after DownAfter
// consecutive failed rounds. It installs the new connection and closes the
// circuit atomically with the health transition, then sleeps until the next
// failover.
func (c *Client) reconnectLoop(i int) {
	ns := &c.nstates[i]
	for {
		select {
		case <-c.stop:
			return
		case <-ns.kick:
		}
		rounds := 0
		for {
			select {
			case <-c.stop:
				return
			default:
			}
			nc, err := c.opts.dialReconnect(c.addrs[i])
			if err != nil {
				rounds++
				if rounds >= c.opts.DownAfter {
					ns.mu.Lock()
					if ns.state == NodeSuspect {
						ns.state = NodeDown
					}
					ns.mu.Unlock()
				}
				// A custom NodeDialer may fail instantly; don't spin.
				time.Sleep(5 * time.Millisecond)
				continue
			}
			ns.mu.Lock()
			select {
			case <-c.stop:
				ns.mu.Unlock()
				nc.Abort()
				return
			default:
			}
			ns.conn = nc
			ns.state = NodeUp
			ns.reconnects++
			ns.mu.Unlock()
			break
		}
	}
}

// DialOptions connects one pipelined connection to every node with explicit
// failover options. The address list order is the cluster's identity: the
// same ordered list routes the same keys to the same nodes, across clients
// and across restarts. Unless AllowInitialDown is set, a node that cannot
// be reached fails the whole call — with every connection already made
// closed, so a failed Dial leaks nothing.
func DialOptions(opts Options, addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	opts.fill()
	c := &Client{
		router:  NewRouter(len(addrs)),
		addrs:   append([]string(nil), addrs...),
		nstates: make([]nodeState, len(addrs)),
		reqs:    make([]uint64, len(addrs)),
		counts:  make([]int32, len(addrs)),
		stop:    make(chan struct{}),
		opts:    opts,
	}
	for i, a := range c.addrs {
		ns := &c.nstates[i]
		ns.kick = make(chan struct{}, 1)
		nc, err := opts.dialInitial(a)
		if err != nil {
			if !opts.AllowInitialDown {
				// Close the nodes already connected: a failed Dial must not
				// leak the partial progress it made.
				for j := 0; j < i; j++ {
					if pc := c.nstates[j].conn; pc != nil {
						pc.Close()
					}
				}
				return nil, fmt.Errorf("cluster: node %d (%s): %w", i, a, err)
			}
			ns.state = NodeDown
			ns.failovers++
			ns.kick <- struct{}{}
			continue
		}
		ns.conn = nc
		ns.state = NodeUp
	}
	for i := range c.nstates {
		go c.reconnectLoop(i)
	}
	return c, nil
}

// Health returns node i's health snapshot.
func (c *Client) Health(i int) NodeHealth {
	ns := &c.nstates[i]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return NodeHealth{State: ns.state, Failovers: ns.failovers, Reconnects: ns.reconnects}
}

// NodeFailovers sums failover and reconnect events across the nodes — the
// load generator's one-line health view of a run.
func (c *Client) NodeFailovers() (failovers, reconnects uint64) {
	for i := range c.nstates {
		h := c.Health(i)
		failovers += h.Failovers
		reconnects += h.Reconnects
	}
	return failovers, reconnects
}

// DegradedCounts reports how many responses this client synthesized under
// degraded mode: reads answered as misses, and requests answered with
// ErrNodeDown.
func (c *Client) DegradedCounts() (misses, errs uint64) {
	return c.degMisses.Load(), c.degErrors.Load()
}

// WaitHealthy blocks until every node is NodeUp or the timeout passes,
// reporting whether it got there — the chaos harness's recovery barrier.
func (c *Client) WaitHealthy(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for i := range c.nstates {
			if c.Health(i).State != NodeUp {
				all = false
				break
			}
		}
		if all {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
