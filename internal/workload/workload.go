// Package workload is the benchmark driver, a port of the ASCYLIB harness's
// methodology (§4 "Experimental settings"): the structure is initialized
// with N elements, every operation draws a key uniformly from [1..2N] (so on
// average half the updates succeed and the size hovers around N), the update
// percentage is split into half insertions and half removals, and each
// reported number is the median of R repetitions of D seconds.
package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config describes one benchmark run.
type Config struct {
	// Algorithm is the registry name, e.g. "ll-harris".
	Algorithm string
	// Options passed to the constructor (bucket counts etc.).
	Options []core.Option
	// Initial is N, the initial element count.
	Initial int
	// KeyRange is the key universe size; 0 means the paper's 2N.
	KeyRange uint64
	// UpdatePct is the percentage of operations that are updates.
	UpdatePct int
	// RangePct is the percentage of operations that are range scans —
	// a workload the paper does not have, enabled by the v2 Ordered
	// surface. Scans use the native Range of the ordered families and
	// the snapshot-and-sort fallback elsewhere.
	RangePct int
	// RangeSpan is the key-span of each range scan (default 100): a scan
	// covers [k, k+RangeSpan-1] for a uniformly drawn k.
	RangeSpan uint64
	// InsertBias is the percentage of updates that are insertions
	// (default 50, the paper's half-insert/half-remove split; the
	// non-uniform growing-structure experiment raises it).
	InsertBias int
	// Threads is the worker count.
	Threads int
	// Duration of the measured window.
	Duration time.Duration
	// SampleEvery samples the latency of every n-th operation per kind
	// (0 disables latency measurement).
	SampleEvery int
	// ParseTiming enables parse-phase latency sampling (Figure 5d).
	ParseTiming bool
	// Seed makes runs reproducible; worker i uses Seed+i.
	Seed uint64
}

func (c Config) keyRange() uint64 {
	if c.KeyRange != 0 {
		return c.KeyRange
	}
	return uint64(2 * c.Initial)
}

// Mix returns the operation mix of the configuration, for drivers (such as
// the network load generator) that draw the same op sequence the in-process
// harness would.
func (c Config) Mix() Mix {
	return Mix{UpdatePct: c.UpdatePct, RangePct: c.RangePct, InsertBias: c.InsertBias}
}

// Kind is the drawn operation kind of a workload mix. Unlike OpClass it
// carries no outcome: the draw happens before the operation runs.
type Kind uint8

// Operation kinds a Mix can draw.
const (
	KindSearch Kind = iota
	KindInsert
	KindRemove
	KindRange
)

// Mix is a workload operation mix: the paper's update-percentage protocol
// (updates split into insertions and removals by InsertBias, default
// half/half) plus the v2 range-scan fraction. It is the single source of
// truth for op drawing — the in-process harness and the wire-level load
// generator both call Next, so a 10%-update run means the same thing
// against a structure and against a server.
type Mix struct {
	// UpdatePct is the percentage of operations that are updates.
	UpdatePct int
	// RangePct is the percentage of operations that are range scans.
	RangePct int
	// InsertBias is the percentage of updates that are insertions
	// (0 means the default 50).
	InsertBias int
}

// Next draws the kind of the next operation. The draw consumes one random
// value, plus a second one for the insert/remove split when the operation
// is an update — exactly the sequence the harness has always used, so
// seeded runs stay reproducible across the refactor.
func (m Mix) Next(rng *xrand.State) Kind {
	draw := int(rng.Uint64n(100))
	switch {
	case draw < m.UpdatePct:
		bias := m.InsertBias
		if bias == 0 {
			bias = 50
		}
		if int(rng.Uint64n(100)) < bias {
			return KindInsert
		}
		return KindRemove
	case draw < m.UpdatePct+m.RangePct:
		return KindRange
	default:
		return KindSearch
	}
}

// OpClass identifies an operation kind and outcome for latency accounting.
type OpClass int

// Operation classes, as broken out in Figures 6d and 7d, plus the range
// scans of the v2 surface.
const (
	OpSearchHit OpClass = iota
	OpSearchMiss
	OpInsertTrue
	OpInsertFalse
	OpRemoveTrue
	OpRemoveFalse
	OpRange
	numOpClasses
)

var opClassNames = [numOpClasses]string{
	"search-hit", "search-miss", "insert-true", "insert-false",
	"remove-true", "remove-false", "range",
}

// String names the class as in the figure legends.
func (o OpClass) String() string { return opClassNames[o] }

// Result aggregates one run.
type Result struct {
	Cfg         Config
	Ops         uint64
	Elapsed     time.Duration
	Perf        perf.Ctx // merged per-worker contexts
	Latency     [numOpClasses]stats.Summary
	ParseLat    stats.Summary
	FinalSize   int
	SuccUpdates uint64
	// RangeOps and RangeItems account the scan mix: scans executed and
	// elements they yielded in total.
	RangeOps   uint64
	RangeItems uint64
}

// ItemsPerScan returns the mean number of elements a range scan yielded.
func (r Result) ItemsPerScan() float64 {
	if r.RangeOps == 0 {
		return 0
	}
	return float64(r.RangeItems) / float64(r.RangeOps)
}

// Throughput returns operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Mops returns millions of operations per second, the paper's unit.
func (r Result) Mops() float64 { return r.Throughput() / 1e6 }

// CoherencePerOp returns modelled cache-line transfers per operation.
func (r Result) CoherencePerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Perf.Coherence()) / float64(r.Ops)
}

// Populate fills set with cfg.Initial random elements, as the ASCYLIB
// harness does before the timed window.
func Populate(set core.Set, cfg Config) {
	r := xrand.New(cfg.Seed + 0x5eed)
	kr := cfg.keyRange()
	for n := 0; n < cfg.Initial; {
		k := core.Key(r.Uint64n(kr) + 1)
		if set.Insert(k, core.Value(k)) {
			n++
		}
	}
}

// Run executes one measured run and returns its aggregate result.
func Run(cfg Config) (Result, error) {
	set, err := core.New(cfg.Algorithm, cfg.Options...)
	if err != nil {
		return Result{}, err
	}
	return RunOn(set, cfg), nil
}

// RunOn executes cfg against an existing (already constructed) set.
func RunOn(set core.Set, cfg Config) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	// The async upper bounds are sequential structures run unsynchronized
	// — the paper's deliberately incorrect baselines. Racing updates can
	// malform them; in Go that surfaces as a panic rather than silent
	// corruption, so their operations run behind a recover barrier. The
	// linearizable implementations never pay this cost.
	crashTolerant := false
	if a, ok := core.Get(cfg.Algorithm); ok && !a.Safe {
		crashTolerant = true
	}
	Populate(set, cfg)

	inst, instrumented := set.(core.Instrumented)
	var ord core.Ordered
	if cfg.RangePct > 0 {
		ord, _ = core.OrderedOf(set)
		if cfg.RangeSpan == 0 {
			cfg.RangeSpan = 100
		}
	}
	type workerState struct {
		ctx        perf.Ctx
		lat        [numOpClasses]stats.Recorder
		ops        uint64
		succ       uint64
		rangeOps   uint64
		rangeItems uint64
	}
	workers := make([]*workerState, cfg.Threads)
	var start, stop atomic.Bool
	var wg sync.WaitGroup
	kr := cfg.keyRange()
	mix := cfg.Mix()

	for i := 0; i < cfg.Threads; i++ {
		ws := &workerState{}
		if cfg.ParseTiming {
			ws.ctx.EnableParseTiming()
		}
		workers[i] = ws
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			// Approximate the paper's thread pinning: one OS thread
			// per worker for the duration of the run.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			rng := xrand.New(cfg.Seed + uint64(i) + 1)
			for !start.Load() {
				if stop.Load() {
					return
				}
			}
			execute := func(k core.Key, kind Kind) (class OpClass) {
				switch kind {
				case KindRange:
					n := ord.Range(k, k+core.Key(cfg.RangeSpan-1),
						func(core.Key, core.Value) bool { return true })
					ws.rangeOps++
					ws.rangeItems += uint64(n)
					class = OpRange
				case KindSearch:
					var ok bool
					if instrumented {
						_, ok = inst.SearchCtx(&ws.ctx, k)
					} else {
						_, ok = set.Search(k)
					}
					class = OpSearchHit
					if !ok {
						class = OpSearchMiss
					}
				case KindInsert:
					var ok bool
					if instrumented {
						ok = inst.InsertCtx(&ws.ctx, k, core.Value(k))
					} else {
						ok = set.Insert(k, core.Value(k))
					}
					class = OpInsertTrue
					if !ok {
						class = OpInsertFalse
					} else {
						ws.succ++
					}
				default:
					var ok bool
					if instrumented {
						_, ok = inst.RemoveCtx(&ws.ctx, k)
					} else {
						_, ok = set.Remove(k)
					}
					class = OpRemoveTrue
					if !ok {
						class = OpRemoveFalse
					} else {
						ws.succ++
					}
				}
				return class
			}
			guarded := func(k core.Key, kind Kind) (class OpClass) {
				class = OpSearchMiss // result if the op panics mid-flight
				defer func() { _ = recover() }()
				return execute(k, kind)
			}
			var sampleCountdown int
			for !stop.Load() {
				k := core.Key(rng.Uint64n(kr) + 1)
				kind := mix.Next(rng)
				sample := false
				if cfg.SampleEvery > 0 {
					if sampleCountdown == 0 {
						sample = true
						sampleCountdown = cfg.SampleEvery
					}
					sampleCountdown--
				}
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				var class OpClass
				if crashTolerant {
					class = guarded(k, kind)
				} else {
					class = execute(k, kind)
				}
				if sample {
					ws.lat[class].Add(time.Since(t0).Nanoseconds())
				}
				ws.ops++
				if kind == KindInsert || kind == KindRemove {
					ws.ctx.Updates++
				}
			}
		}(i, ws)
	}

	begin := time.Now()
	start.Store(true)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	res := Result{Cfg: cfg, Elapsed: elapsed}
	var lat [numOpClasses]stats.Recorder
	for _, ws := range workers {
		res.Ops += ws.ops
		res.SuccUpdates += ws.succ
		res.RangeOps += ws.rangeOps
		res.RangeItems += ws.rangeItems
		ws.ctx.Ops = ws.ops
		ws.ctx.SuccUpdates = ws.succ
		res.Perf.Merge(&ws.ctx)
		for cl := range ws.lat {
			lat[cl].Merge(&ws.lat[cl])
		}
	}
	for cl := range lat {
		res.Latency[cl] = lat[cl].Summarize()
	}
	res.ParseLat = stats.SummarizeInts(res.Perf.ParseSamples)
	res.FinalSize = set.Size()
	return res
}

// RunMedian runs cfg reps times and returns the run with the median
// throughput, following the paper's "median value of 11 repetitions"
// protocol.
func RunMedian(cfg Config, reps int) (Result, error) {
	if reps < 1 {
		reps = 1
	}
	results := make([]Result, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i*1000)
		r, err := Run(c)
		if err != nil {
			return Result{}, err
		}
		results = append(results, r)
	}
	// Pick the median-throughput run so all its metrics stay consistent.
	best := results[0]
	tputs := make([]float64, len(results))
	for i, r := range results {
		tputs[i] = r.Throughput()
	}
	med := stats.Median(tputs)
	for _, r := range results {
		if r.Throughput() == med {
			best = r
			break
		}
	}
	return best, nil
}
