package workload

import (
	"testing"
	"time"

	"repro/internal/core"

	_ "repro/internal/linkedlist"
)

func quickCfg(algo string) Config {
	return Config{
		Algorithm: algo,
		Initial:   128,
		UpdatePct: 20,
		Threads:   4,
		Duration:  40 * time.Millisecond,
		Seed:      99,
	}
}

func TestPopulateReachesInitialSize(t *testing.T) {
	cfg := quickCfg("ll-lazy")
	s, err := core.New(cfg.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	Populate(s, cfg)
	if got := s.Size(); got != cfg.Initial {
		t.Fatalf("populated size = %d, want %d", got, cfg.Initial)
	}
}

func TestRunProducesOps(t *testing.T) {
	res, err := Run(quickCfg("ll-lazy"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations executed")
	}
	if res.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if res.Mops() != res.Throughput()/1e6 {
		t.Fatal("Mops inconsistent with Throughput")
	}
	// Size hovers near Initial: updates split insert/remove on a 2N key
	// range keeps it within a loose band.
	if res.FinalSize < res.Cfg.Initial/2 || res.FinalSize > res.Cfg.Initial*2 {
		t.Fatalf("final size %d drifted outside [%d, %d]", res.FinalSize, res.Cfg.Initial/2, res.Cfg.Initial*2)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	_, err := Run(Config{Algorithm: "nope"})
	if err == nil {
		t.Fatal("Run with unknown algorithm did not error")
	}
}

func TestUpdateMixRespected(t *testing.T) {
	cfg := quickCfg("ll-lazy")
	cfg.UpdatePct = 50
	cfg.Duration = 100 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Perf.Updates) / float64(res.Ops)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("update fraction = %.3f, want ~0.50", frac)
	}
	// Roughly half of updates succeed (keys drawn from [1..2N]).
	succ := float64(res.SuccUpdates) / float64(res.Perf.Updates)
	if succ < 0.3 || succ > 0.7 {
		t.Fatalf("successful-update fraction = %.3f, want ~0.5", succ)
	}
}

func TestZeroAndFullUpdateRates(t *testing.T) {
	for _, pct := range []int{0, 100} {
		cfg := quickCfg("ll-lazy")
		cfg.UpdatePct = pct
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pct == 0 && res.Perf.Updates != 0 {
			t.Fatalf("0%% updates but %d updates ran", res.Perf.Updates)
		}
		if pct == 100 && res.Perf.Updates != res.Ops {
			t.Fatalf("100%% updates but %d/%d updates", res.Perf.Updates, res.Ops)
		}
	}
}

func TestLatencySampling(t *testing.T) {
	cfg := quickCfg("ll-lazy")
	cfg.SampleEvery = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Latency {
		total += s.N
	}
	if total == 0 {
		t.Fatal("sampling enabled but no latency samples")
	}
	// Sampled every 4th op: sample count should be within a loose factor
	// of ops/4.
	want := int(res.Ops) / 4
	if total < want/2 || total > want*2 {
		t.Fatalf("samples = %d, want ~%d", total, want)
	}
}

func TestParseTiming(t *testing.T) {
	cfg := quickCfg("ll-lazy")
	cfg.ParseTiming = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParseLat.N == 0 {
		t.Fatal("parse timing enabled but no parse samples")
	}
}

func TestInstrumentationFlows(t *testing.T) {
	res, err := Run(quickCfg("ll-coupling")) // coupling locks every hop
	if err != nil {
		t.Fatal(err)
	}
	if res.Perf.Coherence() == 0 {
		t.Fatal("instrumented run recorded no coherence events")
	}
	if res.CoherencePerOp() <= 1 {
		t.Fatalf("coupling should lock >1 time per op, got %.2f events/op", res.CoherencePerOp())
	}
}

func TestRunMedianPicksExistingRun(t *testing.T) {
	res, err := RunMedian(quickCfg("ll-lazy"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("median run has no ops")
	}
}

func TestOpClassNames(t *testing.T) {
	seen := map[string]bool{}
	for cl := OpClass(0); cl < numOpClasses; cl++ {
		n := cl.String()
		if n == "" || seen[n] {
			t.Fatalf("bad class name %q", n)
		}
		seen[n] = true
	}
}
