package harness

import (
	"fmt"

	"repro/internal/perf"
)

// Figure 2: cross-platform results per data structure on three workloads —
// average contention (throughput vs thread count; 4096 elements, 10%
// updates), high contention (reference thread count, 512 elements, 25%
// updates), and low contention (reference thread count, 16384 elements, 10%
// updates) — with scalability ratios versus single-threaded execution.

type fig2Spec struct {
	id, title string
	algos     []string
}

var fig2Specs = []fig2Spec{
	{"fig2a", "Linked lists: cross-workload throughput + scalability (Fig. 2a)",
		[]string{"ll-async", "ll-lazy", "ll-pugh", "ll-copy", "ll-coupling", "ll-harris", "ll-michael"}},
	{"fig2b", "Hash tables: cross-workload throughput + scalability (Fig. 2b)",
		[]string{"ht-async", "ht-coupling", "ht-lazy", "ht-pugh", "ht-copy", "ht-urcu", "ht-java", "ht-tbb", "ht-harris"}},
	{"fig2c", "Skip lists: cross-workload throughput + scalability (Fig. 2c)",
		[]string{"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser"}},
	{"fig2d", "BSTs: cross-workload throughput + scalability (Fig. 2d)",
		[]string{"bst-async-int", "bst-async-ext", "bst-bronson", "bst-drachsler", "bst-ellen", "bst-howley", "bst-natarajan"}},
}

func init() {
	for _, spec := range fig2Specs {
		spec := spec
		registerExperiment(Experiment{
			ID:    spec.id,
			Title: spec.title,
			Run:   func(o Options) { runFig2(o, spec) },
		})
	}
}

func runFig2(o Options, spec fig2Spec) {
	// Top graphs: throughput vs threads, average contention.
	fmt.Fprintf(o.Out, "-- average contention: 4096 elements, 10%% updates; Mops/s by thread count --\n")
	sweep := o.threadSweep()
	cols := []string{"algorithm"}
	for _, t := range sweep {
		cols = append(cols, fmt.Sprintf("%dthr", t))
	}
	header(o.Out, cols...)
	for _, algo := range spec.algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, t := range sweep {
			r := o.run(algo, 4096, 10, t)
			fmt.Fprintf(o.Out, " %12.3f", r.Mops())
		}
		fmt.Fprintln(o.Out)
	}
	// Bottom histograms: high and low contention at the reference thread
	// count, with the scalability ratio printed on top of each bar.
	for _, w := range []struct {
		name             string
		initial, updates int
	}{
		{"high contention: 512 elements, 25% updates", 512, 25},
		{"low contention: 16384 elements, 10% updates", 16384, 10},
	} {
		fmt.Fprintf(o.Out, "-- %s; %d threads --\n", w.name, o.Threads)
		header(o.Out, "algorithm", "Mops/s", "scalability")
		for _, algo := range spec.algos {
			single := o.run(algo, w.initial, w.updates, 1)
			multi := o.run(algo, w.initial, w.updates, o.Threads)
			scal := 0.0
			if single.Throughput() > 0 {
				scal = multi.Throughput() / single.Throughput()
			}
			fmt.Fprintf(o.Out, "%-16s %12.3f %12.1f\n", algo, multi.Mops(), scal)
		}
	}
}

// Figure 3: cache-line transfer events per operation vs scalability for the
// linked lists (4096 elements, 10% updates, reference thread count). The
// hardware cache-miss counter is substituted by the perf event accounting —
// see DESIGN.md.
func init() {
	registerExperiment(Experiment{
		ID:    "fig3",
		Title: "Linked lists: coherence events/op vs scalability (Fig. 3)",
		Run:   runFig3,
	})
}

func runFig3(o Options) {
	algos := []string{"ll-async", "ll-copy", "ll-coupling", "ll-harris", "ll-lazy", "ll-michael", "ll-pugh"}
	fmt.Fprintf(o.Out, "-- 4096 elements, 10%% updates, %d threads; events counted per op --\n", o.Threads)
	header(o.Out, "algorithm", "coh/op", "stores/op", "cas/op", "locks/op", "scalability")
	for _, algo := range algos {
		single := o.run(algo, 4096, 10, 1)
		multi := o.run(algo, 4096, 10, o.Threads)
		scal := 0.0
		if single.Throughput() > 0 {
			scal = multi.Throughput() / single.Throughput()
		}
		fmt.Fprintf(o.Out, "%-16s %12.2f %12.2f %12.2f %12.2f %12.1f\n",
			algo,
			multi.CoherencePerOp(),
			multi.Perf.PerOp(perf.EvStore),
			multi.Perf.PerOp(perf.EvCAS)+multi.Perf.PerOp(perf.EvCASFail),
			multi.Perf.PerOp(perf.EvLock),
			scal)
	}
	fmt.Fprintln(o.Out, "expected shape: fewer coherence events/op <=> better scalability; async fewest, coupling/copy most")
}
