package harness

import "fmt"

// Figure 8: CLHT vs pugh hash table — 4096 elements, reference thread count,
// update rates {0, 1, 20, 100}%, with scalability ratios on the bars.
func init() {
	registerExperiment(Experiment{
		ID:    "fig8",
		Title: "CLHT vs pugh hash table across update rates (Fig. 8)",
		Run:   runFig8,
	})
}

func runFig8(o Options) {
	algos := []string{"ht-pugh", "ht-clht-lb", "ht-clht-lf"}
	rates := []int{0, 1, 20, 100}
	fmt.Fprintf(o.Out, "-- 4096 elements, %d threads; Mops/s (scalability) by update rate --\n", o.Threads)
	cols := []string{"algorithm"}
	for _, u := range rates {
		cols = append(cols, fmt.Sprintf("%d%%upd", u))
	}
	header(o.Out, cols...)
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, u := range rates {
			single := o.run(algo, 4096, u, 1)
			multi := o.run(algo, 4096, u, o.Threads)
			scal := 0.0
			if single.Throughput() > 0 {
				scal = multi.Throughput() / single.Throughput()
			}
			fmt.Fprintf(o.Out, " %7.1f(%4.1f)", multi.Mops(), scal)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "expected shape: clht-lb ~23% and clht-lf ~13% above pugh on average; clht-lb ahead at the reference thread count")
}

// Figure 9: BST-TK vs natarajan — 4096 elements, reference thread count,
// update rates {0, 1, 10, 20, 100}%.
func init() {
	registerExperiment(Experiment{
		ID:    "fig9",
		Title: "BST-TK vs natarajan across update rates (Fig. 9)",
		Run:   runFig9,
	})
}

func runFig9(o Options) {
	algos := []string{"bst-natarajan", "bst-tk"}
	rates := []int{0, 1, 10, 20, 100}
	fmt.Fprintf(o.Out, "-- 4096 elements, %d threads; Mops/s (scalability) by update rate --\n", o.Threads)
	cols := []string{"algorithm"}
	for _, u := range rates {
		cols = append(cols, fmt.Sprintf("%d%%upd", u))
	}
	header(o.Out, cols...)
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, u := range rates {
			single := o.run(algo, 4096, u, 1)
			multi := o.run(algo, 4096, u, o.Threads)
			scal := 0.0
			if single.Throughput() > 0 {
				scal = multi.Throughput() / single.Throughput()
			}
			fmt.Fprintf(o.Out, " %7.1f(%4.1f)", multi.Mops(), scal)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "expected shape: bst-tk within ~1% of natarajan on average (slightly ahead or behind by workload)")
}

// summary reproduces the §4 headline numbers: per-structure best-concurrent
// vs async gap and average scalability by contention level.
func init() {
	registerExperiment(Experiment{
		ID:    "summary",
		Title: "§4 headline: best-concurrent vs async gap; scalability by contention",
		Run:   runSummary,
	})
}

func runSummary(o Options) {
	type family struct {
		name   string
		async  string
		concur []string
	}
	families := []family{
		{"linkedlist", "ll-async", []string{"ll-lazy", "ll-pugh", "ll-copy", "ll-coupling", "ll-harris", "ll-michael", "ll-harris-opt"}},
		{"hashtable", "ht-async", []string{"ht-coupling", "ht-lazy", "ht-pugh", "ht-copy", "ht-urcu", "ht-java", "ht-tbb", "ht-harris", "ht-clht-lb", "ht-clht-lf"}},
		{"skiplist", "sl-async", []string{"sl-pugh", "sl-herlihy", "sl-fraser", "sl-fraser-opt"}},
		{"bst", "bst-async-ext", []string{"bst-bronson", "bst-drachsler", "bst-ellen", "bst-howley", "bst-natarajan", "bst-tk"}},
	}
	contentions := []struct {
		name             string
		initial, updates int
	}{
		{"high", 512, 25},
		{"average", 4096, 10},
		{"low", 16384, 10},
	}
	for _, c := range contentions {
		fmt.Fprintf(o.Out, "-- %s contention (%d elem, %d%% upd), %d threads --\n", c.name, c.initial, c.updates, o.Threads)
		header(o.Out, "structure", "async-Mops", "best-Mops", "best-algo", "gap%", "best-scal")
		for _, f := range families {
			async := o.run(f.async, c.initial, c.updates, o.Threads)
			bestName, bestT, bestScal := "", 0.0, 0.0
			for _, algo := range f.concur {
				r := o.run(algo, c.initial, c.updates, o.Threads)
				if r.Throughput() > bestT {
					bestT = r.Throughput()
					bestName = algo
					s := o.run(algo, c.initial, c.updates, 1)
					if s.Throughput() > 0 {
						bestScal = r.Throughput() / s.Throughput()
					}
				}
			}
			gap := 0.0
			if async.Throughput() > 0 {
				gap = 100 * (1 - bestT/async.Throughput())
			}
			fmt.Fprintf(o.Out, "%-16s %12.3f %12.3f %12s %12.1f %12.1f\n",
				f.name, async.Mops(), bestT/1e6, bestName, gap, bestScal)
		}
	}
	fmt.Fprintln(o.Out, "expected shape: best concurrent within ~10-30% of async per structure; scalability ordered low >= average >= high contention")
}
