package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	_ "repro" // register the full catalogue
)

func tinyOpts(buf *bytes.Buffer) Options {
	return Options{
		Out:        buf,
		Duration:   10 * time.Millisecond,
		Reps:       1,
		Threads:    2,
		MaxThreads: 2,
		Seed:       1,
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig2d", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "summary",
		// §4 text experiments beyond the numbered figures.
		"oversub", "nonuniform",
		// v2 surface: the range-scan mix the paper does not have.
		"rangemix",
	}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("figure %s has no runner", id)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestExperimentsSorted(t *testing.T) {
	es := Experiments()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("experiments not sorted: %s >= %s", es[i-1].ID, es[i].ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := RunExperiment("fig99", Quick(nil)); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// Each runner must execute end to end and print its table; these are smoke
// tests with tiny durations, not measurements.
func TestRunnersSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("figure runners execute the deliberately-unsynchronized async baselines; their races are the paper's methodology")
	}
	for _, id := range []string{"fig3", "fig8", "fig9", "oversub", "nonuniform"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunExperiment(id, tinyOpts(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "algorithm") && !strings.Contains(out, "family") {
				t.Fatalf("%s produced no table:\n%s", id, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Fatalf("%s produced NaN/Inf:\n%s", id, out)
			}
		})
	}
}

// rangemix runs only linearizable algorithms, so unlike the figure runners
// it smokes under -race as well.
func TestRangeMixSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("rangemix", tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "algorithm") {
		t.Fatalf("rangemix produced no table:\n%s", out)
	}
	if !strings.Contains(out, "native") || !strings.Contains(out, "fallback") {
		t.Fatalf("rangemix table missing the range-mode column:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("rangemix produced NaN/Inf:\n%s", out)
	}
}

func TestFig4SmokeHasAllSections(t *testing.T) {
	if raceEnabled {
		t.Skip("figure runners execute the deliberately-unsynchronized async baselines; their races are the paper's methodology")
	}
	var buf bytes.Buffer
	if err := RunExperiment("fig4", tinyOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"(a) total throughput", "(b) power relative", "(c) mean search latency", "(d) search latency distribution"} {
		if !strings.Contains(out, section) {
			t.Fatalf("fig4 output missing section %q:\n%s", section, out)
		}
	}
}

func TestThreadSweepShape(t *testing.T) {
	o := Options{MaxThreads: 32}
	o.fill()
	sweep := o.threadSweep()
	if sweep[0] != 1 {
		t.Fatalf("sweep starts at %d", sweep[0])
	}
	if sweep[len(sweep)-1] != 32 {
		t.Fatalf("sweep ends at %d, want 32", sweep[len(sweep)-1])
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("sweep not increasing: %v", sweep)
		}
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.Duration == 0 || o.Reps == 0 || o.Threads < 4 || o.MaxThreads < o.Threads || o.Seed == 0 {
		t.Fatalf("fill left zero fields: %+v", o)
	}
	p := Paper(nil)
	if p.Duration != 5*time.Second || p.Reps != 11 {
		t.Fatalf("Paper protocol wrong: %+v", p)
	}
}
