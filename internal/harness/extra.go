package harness

import (
	"fmt"

	"repro/internal/workload"
)

// oversub reproduces the §4 observation the figures do not plot: "Lock-
// freedom is more important when we employ more threads than hardware
// contexts. In these deployments, lock-freedom provides better scalability
// than lock-based designs." Lock-based and lock-free siblings are compared
// at the reference thread count and at 4x oversubscription.
func init() {
	registerExperiment(Experiment{
		ID:    "oversub",
		Title: "§4: lock-based vs lock-free under oversubscription",
		Run:   runOversub,
	})
}

func runOversub(o Options) {
	pairs := []struct {
		family, lb, lf string
		initial        int
	}{
		{"linkedlist", "ll-lazy", "ll-harris-opt", 1024},
		{"hashtable", "ht-clht-lb", "ht-clht-lf", 4096},
		{"skiplist", "sl-herlihy", "sl-fraser-opt", 1024},
		{"bst", "bst-tk", "bst-natarajan", 2048},
	}
	over := 4 * o.MaxThreads
	fmt.Fprintf(o.Out, "-- 20%% updates; Mops/s at %d threads vs %d threads (oversubscribed) --\n", o.Threads, over)
	header(o.Out, "family", "lb@ref", "lf@ref", "lb@over", "lf@over", "lf/lb@over")
	for _, p := range pairs {
		lbRef := o.run(p.lb, p.initial, 20, o.Threads)
		lfRef := o.run(p.lf, p.initial, 20, o.Threads)
		lbOver := o.run(p.lb, p.initial, 20, over)
		lfOver := o.run(p.lf, p.initial, 20, over)
		ratio := 0.0
		if lbOver.Throughput() > 0 {
			ratio = lfOver.Throughput() / lbOver.Throughput()
		}
		fmt.Fprintf(o.Out, "%-16s %12.3f %12.3f %12.3f %12.3f %12.2f\n",
			p.family, lbRef.Mops(), lfRef.Mops(), lbOver.Mops(), lfOver.Mops(), ratio)
	}
	fmt.Fprintln(o.Out, "expected shape: the lf/lb ratio grows when threads exceed hardware contexts")
}

// nonuniform reproduces the §4 remark: "We briefly experiment with
// non-uniform workloads ... such as those with update spikes and
// continuously increasing structure size. We notice that our observations
// are valid in these scenarios as well."
func init() {
	registerExperiment(Experiment{
		ID:    "nonuniform",
		Title: "§4: non-uniform workloads (update spike; growing structure)",
		Run:   runNonuniform,
	})
}

func runNonuniform(o Options) {
	algos := []string{"ll-async", "ll-lazy", "ll-pugh", "ll-harris", "ll-harris-opt"}

	// Update spike: a read-mostly phase, a 100%-update burst, then
	// read-mostly again; the per-phase throughput ordering must match the
	// uniform results.
	fmt.Fprintf(o.Out, "-- update spike: 2%% -> 80%% -> 2%% updates, 1024 elem, %d threads; Mops/s per phase --\n", o.Threads)
	header(o.Out, "algorithm", "calm-1", "spike", "calm-2")
	for _, algo := range algos {
		var phases []float64
		for _, upd := range []int{2, 80, 2} {
			r := o.run(algo, 1024, upd, o.Threads)
			phases = append(phases, r.Mops())
		}
		fmt.Fprintf(o.Out, "%-16s %12.3f %12.3f %12.3f\n", algo, phases[0], phases[1], phases[2])
	}

	// Growing structure: inserts outnumber removes 3:1, so the set grows
	// throughout the run; throughput is reported alongside growth.
	fmt.Fprintf(o.Out, "-- growing structure: insert-biased updates, %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "Mops/s", "start-size", "end-size")
	for _, algo := range algos {
		cfg := workload.Config{
			Algorithm:  algo,
			Initial:    256,
			KeyRange:   1 << 20, // huge key space: most inserts succeed
			UpdatePct:  40,
			Threads:    o.Threads,
			Duration:   o.Duration,
			Seed:       o.Seed,
			InsertBias: 75,
		}
		res, err := workload.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(o.Out, "%-16s %12.3f %12d %12d\n", algo, res.Mops(), 256, res.FinalSize)
	}
	fmt.Fprintln(o.Out, "expected shape: per-phase and growth-phase orderings match the uniform workloads'")
}
