//go:build race

package harness

// raceEnabled reports that the race detector is active. The figure runners
// deliberately execute the paper's *asynchronized* baselines — sequential
// structures shared without synchronization, the paper's §1 methodology —
// so their data races are the object of study, not defects; runner smoke
// tests skip under -race.
const raceEnabled = true
