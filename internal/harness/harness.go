// Package harness regenerates every table and figure of the paper's
// evaluation (§4–§6). Each figure has a runner that executes the paper's
// workload (scaled to this host) and prints the same rows/series the paper
// plots; cmd/ascybench is the CLI front end and bench_test.go exposes one
// testing.B benchmark per figure.
//
// The experiment parameters are the paper's: initial sizes, update rates,
// key range = 2N, update split half insert / half remove, medians over
// repetitions. Thread counts scale to the host ("20 threads" in the paper
// maps to min(20, GOMAXPROCS) unless overridden).
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options tune how experiments run. Zero value = quick mode.
type Options struct {
	// Out receives the report.
	Out io.Writer
	// Duration per measured run (paper: 5s). Quick default: 150ms.
	Duration time.Duration
	// Reps per data point, median reported (paper: 11). Quick default: 1.
	Reps int
	// Threads overrides the paper's "20 threads" reference point.
	Threads int
	// MaxThreads caps thread sweeps. Default: 2*GOMAXPROCS (the paper
	// sweeps into oversubscription on several platforms).
	MaxThreads int
	// Seed for reproducibility.
	Seed uint64
}

// Paper returns the paper's measurement protocol: 5-second runs, median of
// 11 repetitions.
func Paper(out io.Writer) Options {
	return Options{Out: out, Duration: 5 * time.Second, Reps: 11}
}

// Quick returns a fast protocol for smoke runs and CI.
func Quick(out io.Writer) Options {
	return Options{Out: out, Duration: 150 * time.Millisecond, Reps: 1}
}

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Duration == 0 {
		o.Duration = 150 * time.Millisecond
	}
	if o.Reps == 0 {
		o.Reps = 1
	}
	if o.Threads == 0 {
		// The paper's reference point is 20 threads; scale to the host
		// but keep at least 4 workers so concurrency effects manifest
		// even on small (or single-core) machines, where every worker
		// beyond the first is oversubscription — a regime the paper
		// also probes ("more threads than hardware contexts").
		o.Threads = min(20, max(4, runtime.GOMAXPROCS(0)))
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = max(16, 2*runtime.GOMAXPROCS(0))
	}
	if o.Seed == 0 {
		o.Seed = 0xA5CF
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// threadSweep mirrors the paper's x axes: 1 up to MaxThreads, denser at the
// low end.
func (o Options) threadSweep() []int {
	var ts []int
	for t := 1; t <= o.MaxThreads; {
		ts = append(ts, t)
		switch {
		case t < 4:
			t++
		case t < 16:
			t += 4
		default:
			t += 8
		}
	}
	if last := ts[len(ts)-1]; last != o.MaxThreads {
		ts = append(ts, o.MaxThreads)
	}
	return ts
}

func (o Options) run(algo string, initial, updatePct, threads int, extra ...func(*workload.Config)) workload.Result {
	cfg := workload.Config{
		Algorithm: algo,
		Initial:   initial,
		UpdatePct: updatePct,
		Threads:   threads,
		Duration:  o.Duration,
		Seed:      o.Seed,
	}
	// Hash tables use one bucket per expected element, as in the paper's
	// setups (e.g. "8192 elements, 8192 (initial) buckets").
	cfg.Options = []core.Option{core.Capacity(initial)}
	for _, f := range extra {
		f(&cfg)
	}
	res, err := workload.RunMedian(cfg, o.Reps)
	if err != nil {
		panic(err) // unknown algorithm: programming error in a runner table
	}
	return res
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string // e.g. "fig2a"
	Title string
	Run   func(o Options)
}

var experiments []Experiment

func registerExperiment(e Experiment) { experiments = append(experiments, e) }

// Experiments lists all registered figure/table runners in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunExperiment executes the experiment with the given ID.
func RunExperiment(id string, o Options) error {
	for _, e := range Experiments() {
		if e.ID == id {
			o.fill()
			fmt.Fprintf(o.Out, "== %s: %s ==\n", e.ID, e.Title)
			e.Run(o)
			return nil
		}
	}
	return fmt.Errorf("harness: unknown experiment %q (use -list)", id)
}

// RunAll executes every experiment.
func RunAll(o Options) {
	for _, e := range Experiments() {
		o2 := o
		o2.fill()
		fmt.Fprintf(o2.Out, "== %s: %s ==\n", e.ID, e.Title)
		e.Run(o2)
		fmt.Fprintln(o2.Out)
	}
}

// header prints a table header row.
func header(w io.Writer, cols ...string) {
	fmt.Fprintf(w, "%-16s", cols[0])
	for _, c := range cols[1:] {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 16+13*(len(cols)-1)))
}

// powerOf computes the modelled watts of a run.
func powerOf(r workload.Result) float64 {
	sec := r.Elapsed.Seconds()
	if sec == 0 {
		return 0
	}
	return power.Default.Estimate(r.Cfg.Threads, r.Throughput(), float64(r.Perf.Coherence())/sec)
}

// latNS extracts a mean latency in nanoseconds for an op class, merging hit
// and miss for searches.
func searchLatNS(r workload.Result) float64 {
	hit, miss := r.Latency[workload.OpSearchHit], r.Latency[workload.OpSearchMiss]
	n := hit.N + miss.N
	if n == 0 {
		return 0
	}
	return (hit.MeanNS*float64(hit.N) + miss.MeanNS*float64(miss.N)) / float64(n)
}

func updateLatNS(r workload.Result) float64 {
	var sum float64
	var n int
	for _, cl := range []workload.OpClass{workload.OpInsertTrue, workload.OpInsertFalse, workload.OpRemoveTrue, workload.OpRemoveFalse} {
		s := r.Latency[cl]
		sum += s.MeanNS * float64(s.N)
		n += s.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func pctRow(s stats.Summary) string {
	if s.N == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d/%d/%d/%d",
		s.Percentiles[1], s.Percentiles[25], s.Percentiles[50],
		s.Percentiles[75], s.Percentiles[99])
}
