package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// rangemix is a workload the paper does not have, opened by the v2 Ordered
// surface: a serving mix of point reads, updates, and short ordered scans
// (10% updates, 10% scans of 100 keys), the shape of an LSM memtable or a
// secondary-index read path. It compares the ordered families' native
// in-structure Range against the snapshot-and-sort fallback a hash table
// must use, so the capability matrix (ascybench list) has a measured
// counterpart.
func init() {
	registerExperiment(Experiment{
		ID:    "rangemix",
		Title: "v2 surface: mixed point/update/range-scan workload (beyond the paper)",
		Run:   runRangeMix,
	})
}

func runRangeMix(o Options) {
	const (
		initial   = 4096
		updatePct = 10
		rangePct  = 10
		span      = 100
	)
	algos := []string{
		"ll-lazy", "ll-harris-opt",
		"sl-herlihy", "sl-fraser-opt",
		"bst-tk", "bst-natarajan",
		"ht-clht-lb", "ht-clht-lf", // fallback scans: snapshot and sort
	}
	fmt.Fprintf(o.Out, "-- %d elem, %d%% updates, %d%% scans of %d keys, %d threads --\n",
		initial, updatePct, rangePct, span, o.Threads)
	header(o.Out, "algorithm", "range", "Mops/s", "scans/s", "items/scan")
	for _, algo := range algos {
		a, ok := core.Get(algo)
		if !ok {
			continue
		}
		mode := "native"
		if !a.Caps().NativeRange {
			mode = "fallback"
		}
		r := o.run(algo, initial, updatePct, o.Threads, func(c *workload.Config) {
			c.RangePct = rangePct
			c.RangeSpan = span
		})
		scansPerSec := float64(r.RangeOps) / r.Elapsed.Seconds()
		fmt.Fprintf(o.Out, "%-16s %12s %12.3f %12.0f %12.1f\n",
			algo, mode, r.Mops(), scansPerSec, r.ItemsPerScan())
	}
	fmt.Fprintln(o.Out, "expected shape: native scans cost O(span) inside the structure; the")
	fmt.Fprintln(o.Out, "fallback pays a full snapshot + sort per scan and falls off with size")
}
