package harness

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/power"
	"repro/internal/workload"
)

// Figure 4 (ASCY1, linked lists): 1024 elements, 5% updates (2.5%
// successful): (a) total throughput vs threads, (b) power relative to async,
// (c) average search latency, (d) search-latency distribution.
func init() {
	registerExperiment(Experiment{
		ID:    "fig4",
		Title: "ASCY1 on linked lists: 1024 elem, 5% updates (Fig. 4)",
		Run:   runFig4,
	})
}

func runFig4(o Options) {
	algos := []string{"ll-async", "ll-lazy", "ll-pugh", "ll-copy", "ll-harris", "ll-michael", "ll-harris-opt"}
	sample := func(c *workload.Config) { c.SampleEvery = 8 }

	fmt.Fprintln(o.Out, "-- (a) total throughput (Mops/s) by threads --")
	sweep := o.threadSweep()
	cols := []string{"algorithm"}
	for _, t := range sweep {
		cols = append(cols, fmt.Sprintf("%dthr", t))
	}
	header(o.Out, cols...)
	results := map[string]map[int]workload.Result{}
	for _, algo := range algos {
		results[algo] = map[int]workload.Result{}
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, t := range sweep {
			r := o.run(algo, 1024, 5, t, sample)
			results[algo][t] = r
			fmt.Fprintf(o.Out, " %12.3f", r.Mops())
		}
		fmt.Fprintln(o.Out)
	}

	fmt.Fprintf(o.Out, "-- (b) power relative to async at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "rel-power")
	asyncP := powerOf(results["ll-async"][o.Threads])
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s %12.3f\n", algo, power.Relative(powerOf(results[algo][o.Threads]), asyncP))
	}

	fmt.Fprintf(o.Out, "-- (c) mean search latency (ns) at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "search-ns")
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s %12.0f\n", algo, searchLatNS(results[algo][o.Threads]))
	}

	fmt.Fprintf(o.Out, "-- (d) search latency distribution (1/25/50/75/99 pct, ns) at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "p1/25/50/75/99")
	for _, algo := range algos {
		r := results[algo][o.Threads]
		fmt.Fprintf(o.Out, "%-16s %24s\n", algo, pctRow(r.Latency[workload.OpSearchHit]))
	}
	fmt.Fprintln(o.Out, "expected shape: lazy/pugh within ~10% of async; harris-opt 10-30% faster searches than harris/michael with a tighter distribution")
}

// Figure 5 (ASCY2, skip lists): 1024 elements, 20% updates (10% successful):
// (a) throughput, (b) relative power, (c) update latency, (d) parse-phase
// latency distribution, plus the parse-restart overhead percentages the
// paper quotes for fraser vs fraser-opt.
func init() {
	registerExperiment(Experiment{
		ID:    "fig5",
		Title: "ASCY2 on skip lists: 1024 elem, 20% updates (Fig. 5)",
		Run:   runFig5,
	})
}

func runFig5(o Options) {
	algos := []string{"sl-async", "sl-pugh", "sl-herlihy", "sl-fraser", "sl-fraser-opt"}
	opts := func(c *workload.Config) {
		c.SampleEvery = 8
		c.ParseTiming = true
	}
	fmt.Fprintln(o.Out, "-- (a) throughput (Mops/s) by threads --")
	sweep := o.threadSweep()
	cols := []string{"algorithm"}
	for _, t := range sweep {
		cols = append(cols, fmt.Sprintf("%dthr", t))
	}
	header(o.Out, cols...)
	ref := map[string]workload.Result{}
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, t := range sweep {
			r := o.run(algo, 1024, 20, t, opts)
			if t == o.Threads {
				ref[algo] = r
			}
			fmt.Fprintf(o.Out, " %12.3f", r.Mops())
		}
		fmt.Fprintln(o.Out)
	}

	fmt.Fprintf(o.Out, "-- (b) power relative to async, (c) update latency, (d) parse distribution at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "rel-power", "update-ns", "parse-restart%", "parse-p1/25/50/75/99")
	asyncP := powerOf(ref["sl-async"])
	for _, algo := range algos {
		r := ref[algo]
		restartPct := 0.0
		if r.Perf.Updates > 0 {
			restartPct = 100 * float64(r.Perf.Count(perf.EvParseRestart)) / float64(r.Perf.Updates)
		}
		fmt.Fprintf(o.Out, "%-16s %12.3f %12.0f %14.3f %24s\n",
			algo, power.Relative(powerOf(r), asyncP), updateLatNS(r), restartPct, pctRow(r.ParseLat))
	}
	fmt.Fprintln(o.Out, "expected shape: fraser-opt >= fraser throughput with ~10x fewer parse restarts (paper: 1.07% -> 0.09% at 20 thr)")
}

// Figure 6 (ASCY3, hash tables): 8192 elements, 8192 buckets, 10% updates
// (5% successful): throughput / relative power / unsuccessful-update latency
// / update-latency distribution by op class, for ASCY3 vs "-no" variants.
func init() {
	registerExperiment(Experiment{
		ID:    "fig6",
		Title: "ASCY3 on hash tables: 8192 elem, read-only vs locking failed updates (Fig. 6)",
		Run:   runFig6,
	})
}

func runFig6(o Options) {
	algos := []string{
		"ht-async",
		"ht-lazy-no", "ht-lazy",
		"ht-pugh-no", "ht-pugh",
		"ht-copy-no", "ht-copy",
		"ht-java-no", "ht-java",
	}
	sample := func(c *workload.Config) { c.SampleEvery = 8 }

	fmt.Fprintln(o.Out, "-- (a) throughput (Mops/s) by threads --")
	sweep := o.threadSweep()
	cols := []string{"algorithm"}
	for _, t := range sweep {
		cols = append(cols, fmt.Sprintf("%dthr", t))
	}
	header(o.Out, cols...)
	ref := map[string]workload.Result{}
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, t := range sweep {
			r := o.run(algo, 8192, 10, t, sample)
			if t == o.Threads {
				ref[algo] = r
			}
			fmt.Fprintf(o.Out, " %12.3f", r.Mops())
		}
		fmt.Fprintln(o.Out)
	}

	fmt.Fprintf(o.Out, "-- (b,c) power vs async and unsuccessful-update latency at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "rel-power", "failupd-ns")
	asyncP := powerOf(ref["ht-async"])
	for _, algo := range algos {
		r := ref[algo]
		fi, fr := r.Latency[workload.OpInsertFalse], r.Latency[workload.OpRemoveFalse]
		var failNS float64
		if n := fi.N + fr.N; n > 0 {
			failNS = (fi.MeanNS*float64(fi.N) + fr.MeanNS*float64(fr.N)) / float64(n)
		}
		fmt.Fprintf(o.Out, "%-16s %12.3f %12.0f\n", algo, power.Relative(powerOf(r), asyncP), failNS)
	}

	fmt.Fprintf(o.Out, "-- (d) update latency distribution by class (1/25/50/75/99 pct, ns) at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "ins-true", "ins-false", "rem-true", "rem-false")
	for _, algo := range algos {
		r := ref[algo]
		fmt.Fprintf(o.Out, "%-16s %22s %22s %22s %22s\n", algo,
			pctRow(r.Latency[workload.OpInsertTrue]), pctRow(r.Latency[workload.OpInsertFalse]),
			pctRow(r.Latency[workload.OpRemoveTrue]), pctRow(r.Latency[workload.OpRemoveFalse]))
	}
	fmt.Fprintln(o.Out, "expected shape: ASCY3 variants up to ~12.5% higher throughput; 1.5-4x lower unsuccessful-update latency than -no variants")
}

// Figure 7 (ASCY4, BSTs): 2048 elements, 20% updates (10% successful):
// throughput / relative power / update latency / successful-op latency
// distribution, plus atomics-per-update accounting (natarajan ~2 vs >3).
func init() {
	registerExperiment(Experiment{
		ID:    "fig7",
		Title: "ASCY4 on BSTs: 2048 elem, 20% updates (Fig. 7)",
		Run:   runFig7,
	})
}

func runFig7(o Options) {
	algos := []string{"bst-async-int", "bst-async-ext", "bst-bronson", "bst-drachsler", "bst-ellen", "bst-howley", "bst-natarajan"}
	sample := func(c *workload.Config) { c.SampleEvery = 8 }

	fmt.Fprintln(o.Out, "-- (a) throughput (Mops/s) by threads --")
	sweep := o.threadSweep()
	cols := []string{"algorithm"}
	for _, t := range sweep {
		cols = append(cols, fmt.Sprintf("%dthr", t))
	}
	header(o.Out, cols...)
	ref := map[string]workload.Result{}
	for _, algo := range algos {
		fmt.Fprintf(o.Out, "%-16s", algo)
		for _, t := range sweep {
			r := o.run(algo, 2048, 20, t, sample)
			if t == o.Threads {
				ref[algo] = r
			}
			fmt.Fprintf(o.Out, " %12.3f", r.Mops())
		}
		fmt.Fprintln(o.Out)
	}

	fmt.Fprintf(o.Out, "-- (b,c) power vs async-int, update latency, atomics & locks per successful update at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "rel-power", "update-ns", "atomics/upd", "locks/upd", "nJ/op")
	asyncP := powerOf(ref["bst-async-int"])
	for _, algo := range algos {
		r := ref[algo]
		atomics, lcks := 0.0, 0.0
		if r.SuccUpdates > 0 {
			atomics = float64(r.Perf.Count(perf.EvCAS)+r.Perf.Count(perf.EvCASFail)) / float64(r.SuccUpdates)
			lcks = float64(r.Perf.Count(perf.EvLock)) / float64(r.SuccUpdates)
		}
		sec := r.Elapsed.Seconds()
		nj := power.Default.EnergyPerOpNJ(r.Cfg.Threads, r.Throughput(), float64(r.Perf.Coherence())/sec)
		fmt.Fprintf(o.Out, "%-16s %12.3f %12.0f %12.2f %12.2f %12.1f\n",
			algo, power.Relative(powerOf(r), asyncP), updateLatNS(r), atomics, lcks, nj)
	}

	fmt.Fprintf(o.Out, "-- (d) successful-op latency distribution (1/25/50/75/99 pct, ns) at %d threads --\n", o.Threads)
	header(o.Out, "algorithm", "search-hit", "ins-true", "rem-true")
	for _, algo := range algos {
		r := ref[algo]
		fmt.Fprintf(o.Out, "%-16s %22s %22s %22s\n", algo,
			pctRow(r.Latency[workload.OpSearchHit]),
			pctRow(r.Latency[workload.OpInsertTrue]),
			pctRow(r.Latency[workload.OpRemoveTrue]))
	}
	fmt.Fprintln(o.Out, "expected shape: natarajan best prior BST, ~2-3 atomics/update vs >3 for others; drachsler >=3 locks/removal; howley/ellen pay for helping")
}
