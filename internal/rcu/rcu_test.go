package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSynchronizeWaitsForReader(t *testing.T) {
	d := NewDomain()
	rd := d.ReadLock()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a reader was active")
	case <-time.After(20 * time.Millisecond):
	}
	rd.Unlock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Synchronize did not return after the reader left")
	}
}

// TestSynchronizeNotStarvedByNewReaders: a continuous stream of read-side
// critical sections must not starve Synchronize — only readers that began
// before the grace period are waited for.
func TestSynchronizeNotStarvedByNewReaders(t *testing.T) {
	d := NewDomain()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd := d.ReadLock()
				rd.Unlock()
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			d.Synchronize()
		}
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Synchronize starved by a stream of new readers")
	}
	close(stop)
	wg.Wait()
}

// TestGracePeriodProtectsUnlinkedData models the urcu pattern: unlink, wait,
// reuse. After Synchronize, no reader may still observe the unlinked value.
func TestGracePeriodProtectsUnlinkedData(t *testing.T) {
	d := NewDomain()
	var shared atomic.Pointer[int]
	v1 := new(int)
	*v1 = 1
	shared.Store(v1)

	var misuse atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd := d.ReadLock()
				p := shared.Load()
				if *p == -1 { // reclaimed value observed inside a critical section
					misuse.Add(1)
				}
				rd.Unlock()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		old := shared.Load()
		next := new(int)
		*next = i + 2
		shared.Store(next)
		d.Synchronize()
		*old = -1 // "reuse" — safe only after the grace period
	}
	close(stop)
	wg.Wait()
	if misuse.Load() != 0 {
		t.Fatalf("readers observed reclaimed memory %d times", misuse.Load())
	}
}

func TestReaderPoolBounded(t *testing.T) {
	d := NewDomain()
	const workers = 64
	const iters = 100
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				rd := d.ReadLock()
				rd.Unlock()
			}
		}()
	}
	wg.Wait()
	// Slots are pooled, so the registry must grow far slower than one
	// per critical section. (Under -race, sync.Pool deliberately drops
	// items to shake out bugs, so the bound is loose.)
	if n := d.Readers(); n >= workers*iters/2 {
		t.Fatalf("reader registry grew per-ReadLock: %d slots for %d sections", n, workers*iters)
	}
}

func TestConcurrentSynchronize(t *testing.T) {
	d := NewDomain()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rd := d.ReadLock()
				rd.Unlock()
				d.Synchronize()
			}
		}()
	}
	wg.Wait() // must terminate
}
