// Package rcu implements user-space read-copy-update grace periods, the
// substrate under the paper's urcu hash table (Table 1: "after each
// successful removal, it waits for all ongoing operations to complete before
// freeing the memory").
//
// The paper uses URCU 0.8. This port provides the same two-sided contract:
// readers bracket structure traversals with ReadLock/Unlock and never write
// shared memory; writers call Synchronize, which blocks until every reader
// that was inside a critical section when Synchronize began has left it.
// That wait is precisely what makes the urcu table's update path expensive
// relative to ASCY4-style designs — the behaviour Figure 2b exposes — so it
// is implemented faithfully rather than elided, even though Go's GC would
// make the wait unnecessary for safety.
//
// The implementation is epoch-based, like URCU's QSBR flavour: a global
// grace-period counter plus one padded per-reader state word. Reader
// registration is pooled so that plain goroutines (which have no thread
// identity) can participate with two atomic stores per critical section.
package rcu

import (
	"sync"
	"sync/atomic"

	"repro/internal/locks"
	"repro/internal/pad"
)

// Domain is an independent RCU domain: one per data structure.
type Domain struct {
	gp atomic.Uint64 // grace-period counter

	mu      sync.Mutex // guards readers slice (append-only) and serializes Synchronize
	readers []*Reader

	pool sync.Pool
}

// Reader is a read-side handle. Obtain with ReadLock, release with Unlock.
type Reader struct {
	d *Domain
	// state: 0 when quiescent; 2*gp+1 while inside a critical section
	// entered during grace period gp.
	state pad.Padded
}

// NewDomain returns an empty RCU domain.
func NewDomain() *Domain {
	d := &Domain{}
	d.pool.New = func() any {
		r := &Reader{d: d}
		d.mu.Lock()
		d.readers = append(d.readers, r)
		d.mu.Unlock()
		return r
	}
	return d
}

// ReadLock enters a read-side critical section and returns the handle that
// must be passed to Unlock. Critical sections must not nest on the same
// handle and must not block on writers.
func (d *Domain) ReadLock() *Reader {
	r := d.pool.Get().(*Reader)
	// Publish: active during the current grace period. Sequentially
	// consistent store orders this before any structure access.
	atomic.StoreUint64(&r.state.Value, d.gp.Load()<<1|1)
	return r
}

// Unlock leaves the critical section.
func (r *Reader) Unlock() {
	atomic.StoreUint64(&r.state.Value, 0)
	r.d.pool.Put(r)
}

// Synchronize waits for a full grace period: every read-side critical
// section that began before the call is guaranteed to have completed when it
// returns. Concurrent Synchronize calls serialize, as in URCU.
func (d *Domain) Synchronize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.gp.Add(1)
	for _, r := range d.readers {
		for i := 0; ; {
			s := atomic.LoadUint64(&r.state.Value)
			if s == 0 || s>>1 >= g {
				break // quiescent, or entered after this grace period began
			}
			i = locks.Pause(i)
		}
	}
}

// Readers reports how many reader slots have been registered (grows to the
// maximum read-side concurrency seen). Exposed for tests and stats.
func (d *Domain) Readers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.readers)
}
