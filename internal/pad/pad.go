// Package pad provides cache-line-size constants and padding types.
//
// The paper's algorithms are designed around 64-byte cache lines (CLHT's
// bucket is exactly one line; per-node locks are placed to avoid false
// sharing). Go gives no direct control over allocation alignment, but
// padding fields to line size prevents false sharing between adjacent
// fields and between pool-allocated objects, which preserves the behaviour
// the paper's C layout achieves.
package pad

// CacheLineSize is the coherence granularity assumed throughout the library,
// matching all six platforms evaluated in the paper.
const CacheLineSize = 64

// CacheLinePad occupies one full cache line. Embed it between fields that
// must not share a line.
type CacheLinePad [CacheLineSize]byte

// Padded wraps a uint64 so that consecutive array elements live on distinct
// cache lines. Used for per-thread counters (SSMEM timestamps, RCU reader
// epochs) that are written by one thread and scanned by others.
type Padded struct {
	Value uint64
	_     [CacheLineSize - 8]byte
}
