package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a connected TCP pair on loopback (net.Pipe lacks the
// TCPConn linger behavior the reset path exercises).
func pipePair(t *testing.T) (client, srv net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srv = c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); srv.Close() })
	return client, srv
}

// TestTransparentWhenUnconfigured: Config{} must be a no-op wrapper — the
// chaos harness with all knobs at zero is the production path.
func TestTransparentWhenUnconfigured(t *testing.T) {
	a, b := pipePair(t)
	fc := New(a, Config{Seed: 1})
	msg := []byte("hello through no faults at all")
	go fc.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

// TestLatencyInjection: with LatencyProb 1 every operation waits at least
// LatencyMin.
func TestLatencyInjection(t *testing.T) {
	a, b := pipePair(t)
	fc := New(a, Config{Seed: 2, LatencyProb: 1, LatencyMin: 30 * time.Millisecond, LatencyMax: 40 * time.Millisecond})
	start := time.Now()
	go fc.Write([]byte("x"))
	one := make([]byte, 1)
	if _, err := io.ReadFull(b, one); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write arrived after %v, want >= 30ms of injected latency", d)
	}
}

// TestPartialWritesDeliverEverything: fragmented writes shred the framing
// but must not lose or reorder a byte.
func TestPartialWritesDeliverEverything(t *testing.T) {
	a, b := pipePair(t)
	fc := New(a, Config{Seed: 3, PartialWriteProb: 1})
	msg := bytes.Repeat([]byte("0123456789"), 100)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if n, err := fc.Write(msg); err != nil || n != len(msg) {
			t.Errorf("write: n=%d err=%v", n, err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, msg) {
		t.Fatal("fragmented write corrupted the stream")
	}
}

// TestResetInjection: ResetProb 1 must fail the first operation with the
// injected sentinel and leave the transport dead.
func TestResetInjection(t *testing.T) {
	a, b := pipePair(t)
	fc := New(a, Config{Seed: 4, ResetProb: 1})
	if _, err := fc.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error = %v, want ErrInjectedReset", err)
	}
	// The peer must observe a dead transport (RST or EOF), not silence.
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
}

// TestTruncateDeliversPrefixThenDies: truncation must deliver a strict
// prefix and then kill the transport.
func TestTruncateDeliversPrefixThenDies(t *testing.T) {
	a, b := pipePair(t)
	fc := New(a, Config{Seed: 5, TruncateProb: 1})
	msg := bytes.Repeat([]byte("z"), 4096)
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error = %v, want ErrInjectedReset", err)
	}
	if n >= len(msg) {
		t.Fatalf("truncated write reported %d of %d bytes", n, len(msg))
	}
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(b) // ends in RST/EOF either way
	if len(got) > n {
		t.Fatalf("peer read %d bytes, more than the %d written", len(got), n)
	}
}

// TestDeterministicSchedule: the same seed must produce the same fault
// decisions — a chaos failure must reproduce from its seed.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed uint64) []bool {
		a, b := pipePair(t)
		defer a.Close()
		defer b.Close()
		fc := New(a, Config{Seed: seed, ResetProb: 0.5})
		go io.Copy(io.Discard, b)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := fc.Write([]byte("p"))
			out = append(out, err != nil)
			if err != nil {
				break // transport gone; schedule prefix is what matters
			}
		}
		return out
	}
	s1, s2 := schedule(42), schedule(42)
	if len(s1) != len(s2) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

// TestListenerCloseOnAccept: the first N connections must be reset without
// ever surfacing to the accept loop, and the N+1th must pass through.
func TestListenerCloseOnAccept(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", Config{Seed: 6, CloseOnAccept: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A trivial echo server over the surviving connections.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()

	ok := 0
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			// The RST can land before the client's connect completes —
			// also a correctly injected reset, just observed earlier.
			continue
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		_, werr := c.Write([]byte("ping"))
		got := make([]byte, 4)
		_, rerr := io.ReadFull(c, got)
		if werr == nil && rerr == nil && string(got) == "ping" {
			ok++
		}
		c.Close()
	}
	if ok != 2 {
		t.Fatalf("%d of 4 connections survived, want exactly 2 (CloseOnAccept=2)", ok)
	}
	if got := ln.Accepted(); got != 4 {
		t.Fatalf("listener accepted %d, want 4", got)
	}
}
