// Package faultnet is the chaos harness's transport layer: net.Conn and
// net.Listener wrappers that inject the failures a production network
// actually delivers — added latency, writes split into fragments, abrupt
// connection resets, and truncated payloads — under a seeded PRNG, so a
// fault schedule that kills a test reproduces exactly from its seed.
//
// The wrappers sit below the protocol code they torment: a server accepts
// through a faultnet.Listener, or a client dials and wraps the returned
// conn, and neither side's protocol logic knows the difference. The point
// (shared with "In the Search of Optimal Concurrency"'s argument about
// adversarial schedules) is that failure-path code that is never executed
// is not tested: faultnet makes the failure paths the common case.
//
// Faults are decided per operation: each Read and each Write draws from the
// conn's own generator, so two conns from one listener see different but
// deterministic schedules (conn i is seeded from the listener seed and i).
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/xrand"
)

// ErrInjectedReset marks a failure manufactured by this package; transports
// report it wrapped, so tests can tell an injected fault from a real one.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Config describes a fault schedule. Probabilities are per operation in
// [0, 1]; zero values inject nothing, so Config{} is a transparent wrapper.
type Config struct {
	// Seed makes the schedule reproducible. Conns derived from one
	// Listener mix the accept index in, so each gets its own stream.
	Seed uint64

	// LatencyProb delays an operation by a uniform draw from
	// [LatencyMin, LatencyMax] before it touches the transport.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// PartialWriteProb splits a Write into two or more separate transport
	// writes (with a latency draw between fragments when latency is
	// configured) — the regime that flushes out parsers assuming whole
	// frames arrive in one piece. The bytes all arrive; only the framing
	// is shredded.
	PartialWriteProb float64

	// ResetProb aborts an operation: the transport is torn down (with
	// SO_LINGER zeroed on TCP, so the peer sees a hard RST rather than a
	// clean FIN) and the operation returns ErrInjectedReset.
	ResetProb float64

	// TruncateProb delivers a strict prefix of a Write and then resets —
	// the mid-frame cut a crashing peer produces.
	TruncateProb float64

	// CloseOnAccept makes a Listener reset the first N accepted
	// connections immediately (accept, linger-0 close, keep listening):
	// the accept-then-die window a half-booted or crashing server shows
	// its clients. Connection N+1 onward passes through normally.
	CloseOnAccept int
}

// Conn wraps a net.Conn with fault injection. Reads and writes may be run
// from two goroutines (the usual send/receive split); the internal generator
// is mutex-guarded so the schedule stays well-defined under that split.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	rng *xrand.State
}

// New wraps c with the fault schedule cfg.
func New(c net.Conn, cfg Config) *Conn {
	return &Conn{Conn: c, cfg: cfg, rng: xrand.New(cfg.Seed)}
}

// draw returns a uniform float in [0, 1).
func (c *Conn) draw() float64 {
	c.mu.Lock()
	v := float64(c.rng.Uint64n(1<<53)) / (1 << 53)
	c.mu.Unlock()
	return v
}

// drawN returns a uniform integer in [0, n).
func (c *Conn) drawN(n uint64) uint64 {
	c.mu.Lock()
	v := c.rng.Uint64n(n)
	c.mu.Unlock()
	return v
}

// maybeLatency sleeps a uniform draw from the configured window.
func (c *Conn) maybeLatency() {
	if c.cfg.LatencyProb <= 0 || c.draw() >= c.cfg.LatencyProb {
		return
	}
	lo, hi := c.cfg.LatencyMin, c.cfg.LatencyMax
	if hi < lo {
		hi = lo
	}
	d := lo
	if span := hi - lo; span > 0 {
		d += time.Duration(c.drawN(uint64(span)))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// reset tears the transport down so the peer sees an abrupt failure, not a
// graceful close, and returns the injected error.
func (c *Conn) reset(op string) error {
	Reset(c.Conn)
	return fmt.Errorf("faultnet: %s: %w", op, ErrInjectedReset)
}

// Reset hard-closes a connection: on TCP, SO_LINGER is zeroed first so the
// close emits RST and any unread peer data is destroyed — the shape of a
// crashed process, not an orderly shutdown.
func Reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	c.maybeLatency()
	if c.cfg.ResetProb > 0 && c.draw() < c.cfg.ResetProb {
		return 0, c.reset("read")
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	c.maybeLatency()
	if c.cfg.ResetProb > 0 && c.draw() < c.cfg.ResetProb {
		return 0, c.reset("write")
	}
	if c.cfg.TruncateProb > 0 && len(p) > 1 && c.draw() < c.cfg.TruncateProb {
		keep := int(c.drawN(uint64(len(p))))
		n, _ := c.Conn.Write(p[:keep])
		err := c.reset("write")
		return n, err
	}
	if c.cfg.PartialWriteProb > 0 && len(p) > 1 && c.draw() < c.cfg.PartialWriteProb {
		// Deliver everything, but in fragments with a latency draw between
		// them, so the peer's reads observe torn frames.
		written := 0
		for written < len(p) {
			rest := len(p) - written
			frag := 1 + int(c.drawN(uint64(rest)))
			n, err := c.Conn.Write(p[written : written+frag])
			written += n
			if err != nil {
				return written, err
			}
			if written < len(p) {
				c.maybeLatency()
			}
		}
		return written, nil
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener: accepted connections come back wrapped
// with the listener's fault schedule, each seeded from its accept index.
type Listener struct {
	net.Listener
	cfg Config

	mu       sync.Mutex
	accepted int
}

// Listen binds a TCP listener on addr with the fault schedule cfg.
func Listen(addr string, cfg Config) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(ln, cfg), nil
}

// WrapListener wraps an existing listener with the fault schedule cfg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept returns the next surviving connection. The first CloseOnAccept
// connections are reset immediately and never surface to the caller — from
// the server's perspective they simply never existed, which is exactly how
// an accept-then-crash window looks from the outside.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.accepted
		l.accepted++
		l.mu.Unlock()
		if i < l.cfg.CloseOnAccept {
			Reset(c)
			continue
		}
		cfg := l.cfg
		cfg.Seed = l.cfg.Seed*0x9E3779B97F4A7C15 + uint64(i) + 1
		return New(c, cfg), nil
	}
}

// Accepted reports how many connections the listener has accepted,
// including the ones it reset.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}
