package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"
	"repro/internal/pad"
	"repro/internal/ssmem"
)

// Item is one stored cache entry.
type Item struct {
	// Flags is the client-opaque word stored with the value.
	Flags uint32
	// Data is the value block. With value pooling (the server default)
	// the block lives in an SSMEM buffer pool and is recycled once no
	// pinned reader can still hold it; read it only under the Pin that
	// produced it, or via a copy.
	Data []byte
	// CAS is the item's unique compare-and-swap token, bumped on every
	// successful store.
	CAS uint64
	// ExpireAt is the absolute expiry (unix seconds); 0 means never.
	ExpireAt int64
}

// expired reports whether the item is past its expiry at time now.
func (it Item) expired(now int64) bool {
	return it.ExpireAt != 0 && it.ExpireAt <= now
}

// CasStatus is the outcome of a compare-and-swap store.
type CasStatus int

// Cas outcomes, mapping 1:1 onto the protocol's STORED/EXISTS/NOT_FOUND.
const (
	CasStored CasStatus = iota
	CasExists
	CasNotFound
)

// IncrStatus is the outcome of an incr/decr.
type IncrStatus int

// Incr/decr outcomes.
const (
	IncrOK IncrStatus = iota
	IncrNotFound
	IncrNonNumeric
)

// Store provides memcached item semantics — flags, unique CAS tokens, lazy
// expiry, and atomic arithmetic — over any registered algorithm, through
// ascylib.ShardedStringMap. Every mutation is a single UpdateBytes, so the
// store's atomicity is exactly the facade's: in-place and atomic against
// everything on structures with native Update (CLHT-LB), serialized against
// other mutations elsewhere. Keys arrive as []byte straight from the wire
// and are materialized as strings only when a fresh entry is inserted.
//
// Sharding: the keyspace is hash-partitioned across Shards independent
// structure instances, each with its own value-block pool and its own
// expired-item reaper — so a list or tree backend stops serializing every
// request on one hot structure. A Pin opens only the epochs of the shards a
// request actually touches ("pin only the shard you touch"): a single-key
// request costs exactly one epoch bracket regardless of the shard count,
// and a multi-get pays one per distinct shard it reads.
//
// Memory discipline (ASCY4 on the serving path): value blocks are copied
// into the touched shard's SSMEM buffer pool on store and freed back to it
// when a mutation retires them; a freed block is reused only after every
// reader pinned into that shard has unpinned, so a get can hand its Data to
// the response writer without copying. Callers bracket work with Pin/Unpin
// — one pin per request in the server's loop.
//
// Expiry is lazy, as in memcached: expired items are invisible to reads
// and treated as absent by mutations, and are physically removed when a
// mutation next touches their key. Reads also reap: a Get that observes a
// dead item removes it opportunistically (bounded to one reaper per shard
// at a time, never blocking the read), so read-heavy workloads cannot
// accumulate corpses.
type Store struct {
	sm   *ascylib.ShardedStringMap[Item]
	bufs []*ssmem.BufPool // per shard; nil slice: value pooling off
	pins sync.Pool        // *pinFrame, recycled so Pin() is allocation-free
	cas  atomic.Uint64
	now  func() int64
	algo string
	// reaping bounds opportunistic expired-item removal to one goroutine
	// per shard at a time; readers that lose the flag skip, never wait.
	// Padded: the flags are written on the read path of distinct shards.
	reaping []reapFlag
	// reapHook, when non-nil, runs on the reap path after the reaper flag
	// is taken — the test seam for the panic-survival regression test (the
	// real panic sources, like the facade's arena-exhaustion panic inside
	// UpdateBytes, cannot be triggered deterministically from out here).
	reapHook func()
	// flush_all bookkeeping, the analog of memcached's oldest_live rule
	// with CAS tokens as the store-order clock (tokens are unique and
	// monotonic store-wide, so "existing at flush time" is exact even
	// within one wall-clock second and across shards): at flushAt (unix
	// seconds; 0 = no flush), every item whose CAS token is <= flushCAS
	// dies.
	flushAt  atomic.Int64
	flushCAS atomic.Uint64
}

// reapFlag is a cache-line-isolated per-shard reaper bound.
type reapFlag struct {
	flag atomic.Bool
	_    [pad.CacheLineSize - 1]byte
}

// NewStore builds a store on the named algorithm. capacity sizes the backing
// structures in total across shards (<= 0 picks a service-appropriate
// default of 2^16 hash-table buckets). poolValues enables SSMEM recycling of
// value blocks. shards is the keyspace partition count (< 1 means 1).
// ordered selects the order-preserving keyspace: keys route by their
// big-endian 8-byte prefix (range partitioning across shards) instead of
// the hash, which lights up RangeScan/MinItem/MaxItem — the store-level
// carriers of the wire's mrange/mmin/mmax.
func NewStore(algo string, capacity int, poolValues bool, shards int, ordered bool) (*Store, error) {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if shards < 1 {
		shards = 1
	}
	var sm *ascylib.ShardedStringMap[Item]
	var err error
	if ordered {
		sm, err = ascylib.NewOrderedShardedStringMap[Item](algo, shards, ascylib.Capacity(capacity))
	} else {
		sm, err = ascylib.NewShardedStringMap[Item](algo, shards, ascylib.Capacity(capacity))
	}
	if err != nil {
		return nil, err
	}
	s := &Store{
		sm:      sm,
		now:     func() int64 { return time.Now().Unix() },
		algo:    algo,
		reaping: make([]reapFlag, shards),
	}
	if poolValues {
		s.bufs = make([]*ssmem.BufPool, shards)
		for i := range s.bufs {
			s.bufs[i] = ssmem.NewBufPool(0)
		}
	}
	s.pins.New = func() any {
		return &pinFrame{
			as:      make([]*ssmem.BufAllocator, shards),
			touched: make([]int, 0, shards),
			counts:  make([]int32, shards),
		}
	}
	return s, nil
}

// Algo returns the backing algorithm's registry name.
func (s *Store) Algo() string { return s.algo }

// Shards returns the keyspace partition count.
func (s *Store) Shards() int { return s.sm.NumShards() }

// BufStats returns the value-block pool counters summed across shards (zero
// when pooling is off).
func (s *Store) BufStats() ssmem.Stats {
	var agg ssmem.Stats
	for _, p := range s.bufs {
		agg.Add(p.Stats())
	}
	return agg
}

// pinFrame carries one Pin's per-shard allocator leases plus the batched-get
// scratch tables; frames are pooled so the request loop never allocates one.
// touched lists the shards holding a lease, so Unpin's cost scales with the
// shards a request used, not with the store's shard count.
type pinFrame struct {
	as      []*ssmem.BufAllocator // indexed by shard; nil until the shard is touched
	touched []int
	// Batched-get scratch (see GetBatch): per-key routes, the shard-grouped
	// index permutation, and the result staging that restores request order.
	// counts is the per-shard counting-sort workspace, sized to the store's
	// shard count at frame construction; the rest grow to the largest batch
	// the frame has served.
	counts []int32
	shOf   []int32
	hashes []uint64
	perm   []int32
	items  []Item
	hits   []bool
}

// ensureBatch sizes the per-key tables for an n-key batch.
func (f *pinFrame) ensureBatch(n int) {
	if cap(f.shOf) < n {
		f.shOf = make([]int32, n)
		f.hashes = make([]uint64, n)
		f.perm = make([]int32, n)
		f.items = make([]Item, n)
		f.hits = make([]bool, n)
	}
	f.shOf = f.shOf[:n]
	f.hashes = f.hashes[:n]
	f.perm = f.perm[:n]
	f.items = f.items[:n]
	f.hits = f.hits[:n]
}

// Pin leases the calling goroutine into the store's epochs, shard by shard
// as they are touched: Item.Data returned by Get stays unrecycled until
// Unpin. Pins are cheap (a pooled frame, plus a pool get and one atomic
// increment per distinct shard touched) and must not be held across
// blocking waits longer than a request's lifetime.
//
// A Pin also fixes the request's clock: s.now() is read once at Pin() and
// every operation under the pin shares that timestamp — expiry checks,
// relative-expiry conversion, and the opportunistic reaper all see one
// instant. The server pins per batch, so a pipelined burst of n commands
// costs one clock read, not n (and within one command, Get → live →
// reapDead no longer re-read the clock either). The staleness bound is the
// pin's lifetime — microseconds on the request path, against one-second
// expiry resolution.
type Pin struct {
	s   *Store
	f   *pinFrame
	now int64
}

// Pin opens an epoch lease and captures the request timestamp. The zero Pin
// is invalid; pins always come from this method.
func (s *Store) Pin() Pin {
	return Pin{s: s, f: s.pins.Get().(*pinFrame), now: s.now()}
}

// Unpin closes the lease: every shard epoch the pin opened ends, and the
// leased allocators and the frame go back to their pools.
func (p Pin) Unpin() {
	if p.f == nil {
		return
	}
	for _, sh := range p.f.touched {
		a := p.f.as[sh]
		a.OpEnd()
		p.s.bufs[sh].Put(a)
		p.f.as[sh] = nil
	}
	p.f.touched = p.f.touched[:0]
	p.s.pins.Put(p.f)
}

// enter opens shard sh's epoch for this pin (idempotent, no-op without
// pooling) and returns its allocator. Every store operation calls it before
// touching the shard: the open epoch is what keeps an Item.Data block —
// including one read inside a speculative update callback — from being
// recycled under the request.
func (p Pin) enter(sh int) *ssmem.BufAllocator {
	if p.s.bufs == nil {
		return nil
	}
	if a := p.f.as[sh]; a != nil {
		return a
	}
	a := p.s.bufs[sh].Get()
	a.OpStart()
	p.f.as[sh] = a
	p.f.touched = append(p.f.touched, sh)
	return a
}

// alloc copies data into a block from shard sh's pool (plain copy without
// pooling).
func (p Pin) alloc(sh int, data []byte) []byte {
	a := p.enter(sh)
	if a == nil {
		if len(data) == 0 {
			return []byte{}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	b := a.Alloc(len(data))
	copy(b, data)
	return b
}

// free returns a retired block to shard sh's pool (no-op without pooling,
// or for nil blocks).
func (p Pin) free(sh int, b []byte) {
	if p.s.bufs == nil || b == nil {
		return
	}
	p.enter(sh).Free(b)
}

// absExpiry converts a protocol exptime to an absolute unix time: 0 never
// expires, negative is already expired, values up to 30 days are relative
// to now, larger values are absolute.
func absExpiry(now, exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // the epoch: expired since long ago
	case exptime <= thirtyDays:
		return now + exptime
	default:
		return exptime
	}
}

// nextCAS issues a fresh token. Tokens are unique per store (across every
// shard) and never 0.
func (s *Store) nextCAS() uint64 { return s.cas.Add(1) }

// newItem builds a fresh item whose Data is an owned copy of data in shard
// sh's pool; the pin's timestamp anchors a relative expiry.
func (s *Store) newItem(p Pin, sh int, flags uint32, exptime int64, data []byte) Item {
	return Item{
		Flags:    flags,
		Data:     p.alloc(sh, data),
		CAS:      s.nextCAS(),
		ExpireAt: absExpiry(p.now, exptime),
	}
}

// live reports whether the item is visible at time now: not expired and
// not invalidated by a reached flush_all epoch.
func (s *Store) live(it Item, now int64) bool {
	if it.expired(now) {
		return false
	}
	if fa := s.flushAt.Load(); fa != 0 && now >= fa && it.CAS <= s.flushCAS.Load() {
		return false
	}
	return true
}

// Get returns the live item under key. The Data block is valid while p is
// pinned. A dead item observed here is reaped opportunistically. Liveness is
// judged at the pin's timestamp: one clock read covers the lookup, the
// liveness check, and the reap (which used to each read the clock).
func (s *Store) Get(p Pin, key []byte) (Item, bool) {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	it, ok := s.sm.GetBytesHashed(sh, h, key)
	if !ok {
		return Item{}, false
	}
	if s.live(it, p.now) {
		return it, true
	}
	s.reapDead(p, sh, h, key, it.CAS)
	return Item{}, false
}

// GetBatch looks up every keys[i] under one pin, one clock read, and one
// epoch enter per distinct shard: all keys are routed first, then grouped by
// shard through a counting-sort index permutation staged in the pooled pin
// frame, and each shard's keys are walked consecutively (the shard's bucket
// lines stay warm across its group). fn is invoked once per key in request
// order — the permutation is only the walk order; the staged items restore
// the response order the protocol requires. Item Data blocks obey the usual
// pin contract: valid until p unpins. Dead items observed on the walk are
// reaped opportunistically, exactly as Get does.
func (s *Store) GetBatch(p Pin, keys [][]byte, fn func(i int, it Item, ok bool)) {
	n := len(keys)
	if n == 0 {
		return
	}
	if n == 1 {
		it, ok := s.Get(p, keys[0])
		fn(0, it, ok)
		return
	}
	f := p.f
	f.ensureBatch(n)
	for i := range f.counts {
		f.counts[i] = 0
	}
	for i, k := range keys {
		sh, h := s.sm.RouteBytes(k)
		f.shOf[i] = int32(sh)
		f.hashes[i] = h
		f.counts[sh]++
	}
	// Counting sort: counts become group start offsets, then the keys'
	// indices are scattered into their shard's slot range.
	off := int32(0)
	for sh, c := range f.counts {
		f.counts[sh] = off
		off += c
	}
	for i := 0; i < n; i++ {
		sh := f.shOf[i]
		f.perm[f.counts[sh]] = int32(i)
		f.counts[sh]++
	}
	for j := 0; j < n; j++ {
		i := f.perm[j]
		sh := int(f.shOf[i])
		if j == 0 || sh != int(f.shOf[f.perm[j-1]]) {
			p.enter(sh) // one epoch bracket per shard group
		}
		it, ok := s.sm.GetBytesHashed(sh, f.hashes[i], keys[i])
		if ok && !s.live(it, p.now) {
			s.reapDead(p, sh, f.hashes[i], keys[i], it.CAS)
			it, ok = Item{}, false
		}
		f.items[i], f.hits[i] = it, ok
	}
	for i := 0; i < n; i++ {
		fn(i, f.items[i], f.hits[i])
	}
	// Drop the staged Data references: the frame outlives the pin in the
	// pool, and (with value pooling off) retained blocks would otherwise
	// stay GC-reachable until the frame serves another batch this large.
	for i := range f.items {
		f.items[i] = Item{}
	}
}

// reapDead removes the corpse under key if it still carries token cas and
// is still dead — bounded to one reaper per shard at a time so a stampede
// of readers on a hot expired key cannot pile onto the mutation path, and
// non-blocking for everyone who loses the flag. The flag clear is deferred:
// a panic on the reap path (the facade's value-arena exhaustion panic
// surfaces through UpdateBytes, and an injected clock can throw too) must
// not leave the flag stuck and permanently disable reaping for the shard.
func (s *Store) reapDead(p Pin, sh int, h uint64, key []byte, cas uint64) {
	if !s.reaping[sh].flag.CompareAndSwap(false, true) {
		return
	}
	defer s.reaping[sh].flag.Store(false)
	if s.reapHook != nil {
		s.reapHook()
	}
	now := p.now
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			return old, false
		}
		if old.CAS != cas || s.live(old, now) {
			return old, true // superseded or resurrected: keep
		}
		retired = old.Data
		return old, false
	})
	p.free(sh, retired)
}

// Set unconditionally stores the value and returns its CAS token.
func (s *Store) Set(p Pin, key []byte, flags uint32, exptime int64, data []byte) uint64 {
	sh, h := s.sm.RouteBytes(key)
	it := s.newItem(p, sh, flags, exptime, data)
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		return it, true
	})
	p.free(sh, retired)
	return it.CAS
}

// Add stores the value only if the key holds no live item.
func (s *Store) Add(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	now := p.now
	it := s.newItem(p, sh, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present && s.live(old, now) {
			stored = false
			return old, true
		}
		if present {
			retired = old.Data // replacing a corpse
		}
		stored = true
		return it, true
	})
	if stored {
		p.free(sh, retired)
	} else {
		p.free(sh, it.Data) // never published
	}
	return stored
}

// Replace stores the value only if the key holds a live item.
func (s *Store) Replace(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	now := p.now
	it := s.newItem(p, sh, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			stored = false
			return old, false
		}
		retired = old.Data
		if !s.live(old, now) {
			stored = false
			return old, false // purge the corpse
		}
		stored = true
		return it, true
	})
	p.free(sh, retired)
	if !stored {
		p.free(sh, it.Data) // never published
	}
	return stored
}

// CompareAndSwap stores the value only if the key's live item still carries
// the token casid.
func (s *Store) CompareAndSwap(p Pin, key []byte, flags uint32, exptime int64, data []byte, casid uint64) CasStatus {
	sh, h := s.sm.RouteBytes(key)
	now := p.now
	it := s.newItem(p, sh, flags, exptime, data)
	status := CasNotFound
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = CasNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = CasNotFound
			retired = old.Data // purge the corpse
			return old, false
		}
		if old.CAS != casid {
			status = CasExists
			return old, true
		}
		status = CasStored
		retired = old.Data
		return it, true
	})
	p.free(sh, retired)
	if status != CasStored {
		p.free(sh, it.Data) // never published
	}
	return status
}

// Delete removes the key's live item and reports whether one was removed.
func (s *Store) Delete(p Pin, key []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	now := p.now
	deleted := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		deleted = present && s.live(old, now)
		return old, false
	})
	p.free(sh, retired)
	return deleted
}

// IncrDecr atomically adjusts the decimal value under key by delta (incr
// wraps at 2^64, decr floors at 0, as memcached specifies) and returns the
// new value. The stored value must be an ASCII decimal uint64.
func (s *Store) IncrDecr(p Pin, key []byte, delta uint64, incr bool) (uint64, IncrStatus) {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	now := p.now
	var newVal uint64
	status := IncrNotFound
	var retired []byte
	var staged []byte // pooled block reused across speculative invocations
	var digits [20]byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = IncrNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = IncrNotFound
			retired = old.Data
			return old, false
		}
		cur, ok := parseU64(old.Data)
		if !ok {
			status = IncrNonNumeric
			return old, true
		}
		if incr {
			newVal = cur + delta
		} else if cur < delta {
			newVal = 0
		} else {
			newVal = cur - delta
		}
		status = IncrOK
		out := strconv.AppendUint(digits[:0], newVal, 10)
		if cap(staged) < len(out) {
			staged = p.alloc(sh, out)
		} else {
			staged = staged[:len(out)]
			copy(staged, out)
		}
		next := old
		retired = old.Data
		next.Data = staged
		next.CAS = s.nextCAS()
		return next, true
	})
	p.free(sh, retired)
	if status != IncrOK {
		p.free(sh, staged) // never published
	}
	return newVal, status
}

// FlushAll invalidates every item stored up to now, after delay seconds
// (0 = immediately; negative is clamped to 0 — the wire layer rejects
// negative delays before they get here). Like memcached's oldest_live rule,
// the epoch applies lazily through liveness checks — items stored after the
// call stay live — and an immediate flush additionally sweeps the
// structures, shard by shard, so the memory is released. A later FlushAll
// supersedes a pending one.
//
// The flush epoch anchors at p.now, the same timestamp every other command
// under the pin judges liveness with: a batch that pipelines flush_all
// followed by a get must miss on the flushed item exactly as the serial
// path would, even if the wall clock ticks mid-batch.
func (s *Store) FlushAll(p Pin, delay int64) {
	now := p.now
	if delay < 0 {
		delay = 0
	}
	s.flushCAS.Store(s.cas.Load())
	s.flushAt.Store(now + delay)
	if delay > 0 {
		return
	}
	// Physically collect what the epoch just killed, one shard at a time,
	// under one pin per shard — holding earlier shards' epochs open across
	// the whole sweep would stall their block reclamation, exactly the
	// cross-shard coupling the per-shard pools exist to avoid. Not atomic:
	// items stored while the sweep runs are (correctly) kept.
	for sh := 0; sh < s.sm.NumShards(); sh++ {
		s.flushShard(sh)
	}
}

// flushShard collects shard sh's epoch-killed items under a shard-local pin,
// judging liveness at that pin's single timestamp (one clock per pin, as
// everywhere).
func (s *Store) flushShard(sh int) {
	p := s.Pin()
	defer p.Unpin()
	p.enter(sh)
	shard := s.sm.Shard(sh)
	var keys []string
	shard.ForEach(func(k string, it Item) bool {
		if !s.live(it, p.now) {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		var retired []byte
		shard.Update(k, func(old Item, present bool) (Item, bool) {
			retired = nil
			keep := present && s.live(old, p.now)
			if present && !keep {
				retired = old.Data
			}
			return old, keep
		})
		p.free(sh, retired)
	}
}

// Items counts stored entries (including not-yet-collected expired ones)
// across all shards; linear time, quiescent use.
func (s *Store) Items() int { return s.sm.Len() }

// Ordered reports whether the store carries the order-preserving keyspace
// (built with ordered = true): RangeScan, MinItem, and MaxItem only work
// there. The server refuses mrange/mmin/mmax on unordered stores with a
// recoverable error, so the capability is part of the wire contract.
func (s *Store) Ordered() bool { return s.sm.Ordered() }

// RangeScan yields the live items with lo <= key <= hi in ascending
// lexicographic order, at most limit of them (limit <= 0 means unbounded),
// and returns how many were yielded. Shards are range partitions in
// ordered mode, so the scan walks the covering shards in index order —
// opening each shard's epoch exactly once, mirroring GetBatch's
// shard-grouped bracketing — and needs no merge. Item Data blocks obey the
// pin contract: valid until p unpins (the epochs of every shard the scan
// entered stay open until then). A nil hi means no upper bound.
//
// Dead items (expired, or killed by a flush epoch) are skipped without
// counting against limit and without reaping: a scan is a read of many
// keys, and turning it into a mutation storm on a corpse-heavy range would
// break its bounded cost. The per-key reaper on the Get path stays the
// collector.
func (s *Store) RangeScan(p Pin, lo, hi []byte, limit int, fn func(key string, it Item) bool) int {
	slo, shi := s.sm.OrderedShardSpan(lo, hi)
	n := 0
	for sh := slo; sh <= shi; sh++ {
		p.enter(sh)
		stop := false
		s.sm.ShardRangeBytes(sh, lo, hi, 0, func(k string, it Item) bool {
			if !s.live(it, p.now) {
				return true
			}
			if limit > 0 && n >= limit {
				stop = true
				return false
			}
			n++
			if !fn(k, it) {
				stop = true
				return false
			}
			return true
		})
		if stop || (limit > 0 && n >= limit) {
			break
		}
	}
	return n
}

// MinItem returns the live item under the smallest key (ordered stores
// only). It walks shards in ascending range order and stops at the first
// live item; dead items are skipped, not reaped, as in RangeScan.
func (s *Store) MinItem(p Pin) (string, Item, bool) {
	var (
		key   string
		item  Item
		found bool
	)
	for sh := 0; sh < s.sm.NumShards() && !found; sh++ {
		p.enter(sh)
		s.sm.ShardRangeBytes(sh, nil, nil, 0, func(k string, it Item) bool {
			if !s.live(it, p.now) {
				return true
			}
			key, item, found = k, it, true
			return false
		})
	}
	return key, item, found
}

// MaxItem returns the live item under the largest key (ordered stores
// only). Shards are walked in descending range order; within a shard the
// structures only enumerate ascending, so the shard is scanned forward
// keeping its last live item — O(shard) for the highest populated shard,
// which a rare mmax amortizes fine.
func (s *Store) MaxItem(p Pin) (string, Item, bool) {
	for sh := s.sm.NumShards() - 1; sh >= 0; sh-- {
		p.enter(sh)
		var (
			key   string
			item  Item
			found bool
		)
		s.sm.ShardRangeBytes(sh, nil, nil, 0, func(k string, it Item) bool {
			if s.live(it, p.now) {
				key, item, found = k, it, true
			}
			return true
		})
		if found {
			return key, item, true
		}
	}
	return "", Item{}, false
}
