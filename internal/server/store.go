package server

import (
	"strconv"
	"sync/atomic"
	"time"

	ascylib "repro"
	"repro/internal/ssmem"
)

// Item is one stored cache entry.
type Item struct {
	// Flags is the client-opaque word stored with the value.
	Flags uint32
	// Data is the value block. With value pooling (the server default)
	// the block lives in an SSMEM buffer pool and is recycled once no
	// pinned reader can still hold it; read it only under the Pin that
	// produced it, or via a copy.
	Data []byte
	// CAS is the item's unique compare-and-swap token, bumped on every
	// successful store.
	CAS uint64
	// ExpireAt is the absolute expiry (unix seconds); 0 means never.
	ExpireAt int64
}

// expired reports whether the item is past its expiry at time now.
func (it Item) expired(now int64) bool {
	return it.ExpireAt != 0 && it.ExpireAt <= now
}

// CasStatus is the outcome of a compare-and-swap store.
type CasStatus int

// Cas outcomes, mapping 1:1 onto the protocol's STORED/EXISTS/NOT_FOUND.
const (
	CasStored CasStatus = iota
	CasExists
	CasNotFound
)

// IncrStatus is the outcome of an incr/decr.
type IncrStatus int

// Incr/decr outcomes.
const (
	IncrOK IncrStatus = iota
	IncrNotFound
	IncrNonNumeric
)

// Store provides memcached item semantics — flags, unique CAS tokens, lazy
// expiry, and atomic arithmetic — over any registered algorithm, through
// ascylib.StringMap. Every mutation is a single StringMap.UpdateBytes, so
// the store's atomicity is exactly the facade's: in-place and atomic
// against everything on structures with native Update (CLHT-LB), serialized
// against other mutations elsewhere. Keys arrive as []byte straight from
// the wire and are materialized as strings only when a fresh entry is
// inserted.
//
// Memory discipline (ASCY4 on the serving path): value blocks are copied
// into an SSMEM buffer pool on store and freed back to it when a mutation
// retires them; a freed block is reused only after every pinned reader has
// unpinned, so a get can hand its Data to the response writer without
// copying. Callers bracket work with Pin/Unpin — one pin per request in
// the server's loop.
//
// Expiry is lazy, as in memcached: expired items are invisible to reads
// and treated as absent by mutations, and are physically removed when a
// mutation next touches their key. Reads also reap: a Get that observes a
// dead item removes it opportunistically (bounded to one reaper at a time,
// never blocking the read), so read-heavy workloads cannot accumulate
// corpses.
type Store struct {
	sm   *ascylib.StringMap[Item]
	bufs *ssmem.BufPool // nil: value pooling off (blocks go to the Go GC)
	cas  atomic.Uint64
	now  func() int64
	algo string
	// reaping bounds opportunistic expired-item removal to one goroutine
	// at a time; readers that lose the flag skip, never wait.
	reaping atomic.Bool
	// flush_all bookkeeping, the analog of memcached's oldest_live rule
	// with CAS tokens as the store-order clock (tokens are unique and
	// monotonic, so "existing at flush time" is exact even within one
	// wall-clock second): at flushAt (unix seconds; 0 = no flush), every
	// item whose CAS token is <= flushCAS dies.
	flushAt  atomic.Int64
	flushCAS atomic.Uint64
}

// NewStore builds a store on the named algorithm. capacity sizes the hash
// tables (<= 0 picks a service-appropriate default of 2^16 buckets).
// poolValues enables SSMEM recycling of value blocks.
func NewStore(algo string, capacity int, poolValues bool) (*Store, error) {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	sm, err := ascylib.NewStringMap[Item](algo, ascylib.Capacity(capacity))
	if err != nil {
		return nil, err
	}
	s := &Store{sm: sm, now: func() int64 { return time.Now().Unix() }, algo: algo}
	if poolValues {
		s.bufs = ssmem.NewBufPool(0)
	}
	return s, nil
}

// Algo returns the backing algorithm's registry name.
func (s *Store) Algo() string { return s.algo }

// BufStats returns the value-block pool counters (zero when pooling is
// off).
func (s *Store) BufStats() ssmem.Stats {
	if s.bufs == nil {
		return ssmem.Stats{}
	}
	return s.bufs.Stats()
}

// Pin leases the calling goroutine into the store's epoch: Item.Data
// returned by Get stays unrecycled until Unpin. Pins are cheap (a pool get
// and one atomic increment) and must not be held across blocking waits
// longer than a request's lifetime.
type Pin struct {
	s *Store
	a *ssmem.BufAllocator
}

// Pin opens an epoch lease. The zero Pin is valid and inert (for a store
// without pooling).
func (s *Store) Pin() Pin {
	if s.bufs == nil {
		return Pin{s: s}
	}
	a := s.bufs.Get()
	a.OpStart()
	return Pin{s: s, a: a}
}

// Unpin closes the lease.
func (p Pin) Unpin() {
	if p.a != nil {
		p.a.OpEnd()
		p.s.bufs.Put(p.a)
	}
}

// alloc copies data into a (pooled, when enabled) block.
func (p Pin) alloc(data []byte) []byte {
	if p.a == nil {
		if len(data) == 0 {
			return []byte{}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	b := p.a.Alloc(len(data))
	copy(b, data)
	return b
}

// free returns a retired block to the pool (no-op without pooling, or for
// nil blocks).
func (p Pin) free(b []byte) {
	if p.a != nil && b != nil {
		p.a.Free(b)
	}
}

// absExpiry converts a protocol exptime to an absolute unix time: 0 never
// expires, negative is already expired, values up to 30 days are relative
// to now, larger values are absolute.
func (s *Store) absExpiry(exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // the epoch: expired since long ago
	case exptime <= thirtyDays:
		return s.now() + exptime
	default:
		return exptime
	}
}

// nextCAS issues a fresh token. Tokens are unique per store and never 0.
func (s *Store) nextCAS() uint64 { return s.cas.Add(1) }

// newItem builds a fresh item whose Data is an owned (pooled) copy of data.
func (s *Store) newItem(p Pin, flags uint32, exptime int64, data []byte) Item {
	return Item{
		Flags:    flags,
		Data:     p.alloc(data),
		CAS:      s.nextCAS(),
		ExpireAt: s.absExpiry(exptime),
	}
}

// live reports whether the item is visible at time now: not expired and
// not invalidated by a reached flush_all epoch.
func (s *Store) live(it Item, now int64) bool {
	if it.expired(now) {
		return false
	}
	if fa := s.flushAt.Load(); fa != 0 && now >= fa && it.CAS <= s.flushCAS.Load() {
		return false
	}
	return true
}

// Get returns the live item under key. The Data block is valid while p is
// pinned. A dead item observed here is reaped opportunistically.
func (s *Store) Get(p Pin, key []byte) (Item, bool) {
	it, ok := s.sm.GetBytes(key)
	if !ok {
		return Item{}, false
	}
	if s.live(it, s.now()) {
		return it, true
	}
	s.reapDead(p, key, it.CAS)
	return Item{}, false
}

// reapDead removes the corpse under key if it still carries token cas and
// is still dead — bounded to one reaper at a time so a stampede of readers
// on a hot expired key cannot pile onto the mutation path, and non-blocking
// for everyone who loses the flag.
func (s *Store) reapDead(p Pin, key []byte, cas uint64) {
	if !s.reaping.CompareAndSwap(false, true) {
		return
	}
	now := s.now()
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			return old, false
		}
		if old.CAS != cas || s.live(old, now) {
			return old, true // superseded or resurrected: keep
		}
		retired = old.Data
		return old, false
	})
	s.reaping.Store(false)
	p.free(retired)
}

// Set unconditionally stores the value and returns its CAS token.
func (s *Store) Set(p Pin, key []byte, flags uint32, exptime int64, data []byte) uint64 {
	it := s.newItem(p, flags, exptime, data)
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		return it, true
	})
	p.free(retired)
	return it.CAS
}

// Add stores the value only if the key holds no live item.
func (s *Store) Add(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	now := s.now()
	it := s.newItem(p, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present && s.live(old, now) {
			stored = false
			return old, true
		}
		if present {
			retired = old.Data // replacing a corpse
		}
		stored = true
		return it, true
	})
	if stored {
		p.free(retired)
	} else {
		p.free(it.Data) // never published
	}
	return stored
}

// Replace stores the value only if the key holds a live item.
func (s *Store) Replace(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	now := s.now()
	it := s.newItem(p, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			stored = false
			return old, false
		}
		retired = old.Data
		if !s.live(old, now) {
			stored = false
			return old, false // purge the corpse
		}
		stored = true
		return it, true
	})
	p.free(retired)
	if !stored {
		p.free(it.Data) // never published
	}
	return stored
}

// CompareAndSwap stores the value only if the key's live item still carries
// the token casid.
func (s *Store) CompareAndSwap(p Pin, key []byte, flags uint32, exptime int64, data []byte, casid uint64) CasStatus {
	now := s.now()
	it := s.newItem(p, flags, exptime, data)
	status := CasNotFound
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = CasNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = CasNotFound
			retired = old.Data // purge the corpse
			return old, false
		}
		if old.CAS != casid {
			status = CasExists
			return old, true
		}
		status = CasStored
		retired = old.Data
		return it, true
	})
	p.free(retired)
	if status != CasStored {
		p.free(it.Data) // never published
	}
	return status
}

// Delete removes the key's live item and reports whether one was removed.
func (s *Store) Delete(p Pin, key []byte) bool {
	now := s.now()
	deleted := false
	var retired []byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		deleted = present && s.live(old, now)
		return old, false
	})
	p.free(retired)
	return deleted
}

// IncrDecr atomically adjusts the decimal value under key by delta (incr
// wraps at 2^64, decr floors at 0, as memcached specifies) and returns the
// new value. The stored value must be an ASCII decimal uint64.
func (s *Store) IncrDecr(p Pin, key []byte, delta uint64, incr bool) (uint64, IncrStatus) {
	now := s.now()
	var newVal uint64
	status := IncrNotFound
	var retired []byte
	var staged []byte // pooled block reused across speculative invocations
	var digits [20]byte
	s.sm.UpdateBytes(key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = IncrNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = IncrNotFound
			retired = old.Data
			return old, false
		}
		cur, ok := parseU64(old.Data)
		if !ok {
			status = IncrNonNumeric
			return old, true
		}
		if incr {
			newVal = cur + delta
		} else if cur < delta {
			newVal = 0
		} else {
			newVal = cur - delta
		}
		status = IncrOK
		out := strconv.AppendUint(digits[:0], newVal, 10)
		if cap(staged) < len(out) {
			staged = p.alloc(out)
		} else {
			staged = staged[:len(out)]
			copy(staged, out)
		}
		next := old
		retired = old.Data
		next.Data = staged
		next.CAS = s.nextCAS()
		return next, true
	})
	if status == IncrOK {
		p.free(retired)
	} else {
		p.free(retired)
		p.free(staged) // never published
	}
	return newVal, status
}

// FlushAll invalidates every item stored up to now, after delay seconds
// (0 = immediately). Like memcached's oldest_live rule, the epoch applies
// lazily through liveness checks — items stored after the call stay live —
// and an immediate flush additionally sweeps the structure so the memory
// is released. A later FlushAll supersedes a pending one.
func (s *Store) FlushAll(delay int64) {
	now := s.now()
	if delay < 0 {
		delay = 0
	}
	s.flushCAS.Store(s.cas.Load())
	s.flushAt.Store(now + delay)
	if delay > 0 {
		return
	}
	// Physically collect what the epoch just killed. Not atomic: items
	// stored while the sweep runs are (correctly) kept.
	p := s.Pin()
	defer p.Unpin()
	var keys []string
	s.sm.ForEach(func(k string, it Item) bool {
		if !s.live(it, now) {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		var retired []byte
		s.sm.Update(k, func(old Item, present bool) (Item, bool) {
			retired = nil
			keep := present && s.live(old, s.now())
			if present && !keep {
				retired = old.Data
			}
			return old, keep
		})
		p.free(retired)
	}
}

// Items counts stored entries (including not-yet-collected expired ones);
// linear time, quiescent use.
func (s *Store) Items() int { return s.sm.Len() }
