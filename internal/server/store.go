package server

import (
	"strconv"
	"sync/atomic"
	"time"

	ascylib "repro"
)

// Item is one stored cache entry.
type Item struct {
	// Flags is the client-opaque word stored with the value.
	Flags uint32
	// Data is the value block.
	Data []byte
	// CAS is the item's unique compare-and-swap token, bumped on every
	// successful store.
	CAS uint64
	// ExpireAt is the absolute expiry (unix seconds); 0 means never.
	ExpireAt int64
}

// expired reports whether the item is past its expiry at time now.
func (it Item) expired(now int64) bool {
	return it.ExpireAt != 0 && it.ExpireAt <= now
}

// CasStatus is the outcome of a compare-and-swap store.
type CasStatus int

// Cas outcomes, mapping 1:1 onto the protocol's STORED/EXISTS/NOT_FOUND.
const (
	CasStored CasStatus = iota
	CasExists
	CasNotFound
)

// IncrStatus is the outcome of an incr/decr.
type IncrStatus int

// Incr/decr outcomes.
const (
	IncrOK IncrStatus = iota
	IncrNotFound
	IncrNonNumeric
)

// Store provides memcached item semantics — flags, unique CAS tokens, lazy
// expiry, and atomic arithmetic — over any registered algorithm, through
// ascylib.StringMap. Every mutation is a single StringMap.Update, so the
// store's atomicity is exactly the facade's: in-place and atomic against
// everything on structures with native Update (CLHT-LB), serialized
// against other mutations elsewhere.
//
// Expiry is lazy, as in memcached: expired items are invisible to reads
// and treated as absent by mutations, and are physically removed when a
// mutation next touches their key (there is no background sweeper).
type Store struct {
	sm   *ascylib.StringMap[Item]
	cas  atomic.Uint64
	now  func() int64
	algo string
	// flush_all bookkeeping, the analog of memcached's oldest_live rule
	// with CAS tokens as the store-order clock (tokens are unique and
	// monotonic, so "existing at flush time" is exact even within one
	// wall-clock second): at flushAt (unix seconds; 0 = no flush), every
	// item whose CAS token is <= flushCAS dies.
	flushAt  atomic.Int64
	flushCAS atomic.Uint64
}

// NewStore builds a store on the named algorithm. capacity sizes the hash
// tables (<= 0 picks a service-appropriate default of 2^16 buckets).
func NewStore(algo string, capacity int) (*Store, error) {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	sm, err := ascylib.NewStringMap[Item](algo, ascylib.Capacity(capacity))
	if err != nil {
		return nil, err
	}
	return &Store{sm: sm, now: func() int64 { return time.Now().Unix() }, algo: algo}, nil
}

// Algo returns the backing algorithm's registry name.
func (s *Store) Algo() string { return s.algo }

// absExpiry converts a protocol exptime to an absolute unix time: 0 never
// expires, negative is already expired, values up to 30 days are relative
// to now, larger values are absolute.
func (s *Store) absExpiry(exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // the epoch: expired since long ago
	case exptime <= thirtyDays:
		return s.now() + exptime
	default:
		return exptime
	}
}

// nextCAS issues a fresh token. Tokens are unique per store and never 0.
func (s *Store) nextCAS() uint64 { return s.cas.Add(1) }

// newItem builds a fresh item.
func (s *Store) newItem(flags uint32, exptime int64, data []byte) Item {
	return Item{
		Flags:    flags,
		Data:     data,
		CAS:      s.nextCAS(),
		ExpireAt: s.absExpiry(exptime),
	}
}

// live reports whether the item is visible at time now: not expired and
// not invalidated by a reached flush_all epoch.
func (s *Store) live(it Item, now int64) bool {
	if it.expired(now) {
		return false
	}
	if fa := s.flushAt.Load(); fa != 0 && now >= fa && it.CAS <= s.flushCAS.Load() {
		return false
	}
	return true
}

// Get returns the live item under key.
func (s *Store) Get(key string) (Item, bool) {
	it, ok := s.sm.Get(key)
	if !ok || !s.live(it, s.now()) {
		return Item{}, false
	}
	return it, true
}

// Set unconditionally stores the value and returns its CAS token.
func (s *Store) Set(key string, flags uint32, exptime int64, data []byte) uint64 {
	it := s.newItem(flags, exptime, data)
	s.sm.Put(key, it)
	return it.CAS
}

// Add stores the value only if the key holds no live item.
func (s *Store) Add(key string, flags uint32, exptime int64, data []byte) bool {
	now := s.now()
	it := s.newItem(flags, exptime, data)
	stored := false
	s.sm.Update(key, func(old Item, present bool) (Item, bool) {
		if present && s.live(old, now) {
			stored = false
			return old, true
		}
		stored = true
		return it, true
	})
	return stored
}

// Replace stores the value only if the key holds a live item.
func (s *Store) Replace(key string, flags uint32, exptime int64, data []byte) bool {
	now := s.now()
	it := s.newItem(flags, exptime, data)
	stored := false
	s.sm.Update(key, func(old Item, present bool) (Item, bool) {
		if !present {
			stored = false
			return old, false
		}
		if !s.live(old, now) {
			stored = false
			return old, false // purge the corpse
		}
		stored = true
		return it, true
	})
	return stored
}

// CompareAndSwap stores the value only if the key's live item still carries
// the token casid.
func (s *Store) CompareAndSwap(key string, flags uint32, exptime int64, data []byte, casid uint64) CasStatus {
	now := s.now()
	it := s.newItem(flags, exptime, data)
	status := CasNotFound
	s.sm.Update(key, func(old Item, present bool) (Item, bool) {
		if !present {
			status = CasNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = CasNotFound
			return old, false
		}
		if old.CAS != casid {
			status = CasExists
			return old, true
		}
		status = CasStored
		return it, true
	})
	return status
}

// Delete removes the key's live item and reports whether one was removed.
func (s *Store) Delete(key string) bool {
	now := s.now()
	deleted := false
	s.sm.Update(key, func(old Item, present bool) (Item, bool) {
		deleted = present && s.live(old, now)
		return old, false
	})
	return deleted
}

// IncrDecr atomically adjusts the decimal value under key by delta (incr
// wraps at 2^64, decr floors at 0, as memcached specifies) and returns the
// new value. The stored value must be an ASCII decimal uint64.
func (s *Store) IncrDecr(key string, delta uint64, incr bool) (uint64, IncrStatus) {
	now := s.now()
	var newVal uint64
	status := IncrNotFound
	s.sm.Update(key, func(old Item, present bool) (Item, bool) {
		if !present {
			status = IncrNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = IncrNotFound
			return old, false
		}
		cur, err := strconv.ParseUint(string(old.Data), 10, 64)
		if err != nil {
			status = IncrNonNumeric
			return old, true
		}
		if incr {
			newVal = cur + delta
		} else if cur < delta {
			newVal = 0
		} else {
			newVal = cur - delta
		}
		status = IncrOK
		next := old
		next.Data = []byte(strconv.FormatUint(newVal, 10))
		next.CAS = s.nextCAS()
		return next, true
	})
	return newVal, status
}

// FlushAll invalidates every item stored up to now, after delay seconds
// (0 = immediately). Like memcached's oldest_live rule, the epoch applies
// lazily through liveness checks — items stored after the call stay live —
// and an immediate flush additionally sweeps the structure so the memory
// is released. A later FlushAll supersedes a pending one.
func (s *Store) FlushAll(delay int64) {
	now := s.now()
	if delay < 0 {
		delay = 0
	}
	s.flushCAS.Store(s.cas.Load())
	s.flushAt.Store(now + delay)
	if delay > 0 {
		return
	}
	// Physically collect what the epoch just killed. Not atomic: items
	// stored while the sweep runs are (correctly) kept.
	var keys []string
	s.sm.ForEach(func(k string, it Item) bool {
		if !s.live(it, now) {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		s.sm.Update(k, func(old Item, present bool) (Item, bool) {
			return old, present && s.live(old, s.now())
		})
	}
}

// Items counts stored entries (including not-yet-collected expired ones);
// linear time, quiescent use.
func (s *Store) Items() int { return s.sm.Len() }
