package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	ascylib "repro"
	"repro/internal/pad"
	"repro/internal/ssmem"
)

// Item is one stored cache entry.
type Item struct {
	// Flags is the client-opaque word stored with the value.
	Flags uint32
	// Data is the value block. With value pooling (the server default)
	// the block lives in an SSMEM buffer pool and is recycled once no
	// pinned reader can still hold it; read it only under the Pin that
	// produced it, or via a copy.
	Data []byte
	// CAS is the item's unique compare-and-swap token, bumped on every
	// successful store.
	CAS uint64
	// ExpireAt is the absolute expiry (unix seconds); 0 means never.
	ExpireAt int64
}

// expired reports whether the item is past its expiry at time now.
func (it Item) expired(now int64) bool {
	return it.ExpireAt != 0 && it.ExpireAt <= now
}

// CasStatus is the outcome of a compare-and-swap store.
type CasStatus int

// Cas outcomes, mapping 1:1 onto the protocol's STORED/EXISTS/NOT_FOUND.
const (
	CasStored CasStatus = iota
	CasExists
	CasNotFound
)

// IncrStatus is the outcome of an incr/decr.
type IncrStatus int

// Incr/decr outcomes.
const (
	IncrOK IncrStatus = iota
	IncrNotFound
	IncrNonNumeric
)

// Store provides memcached item semantics — flags, unique CAS tokens, lazy
// expiry, and atomic arithmetic — over any registered algorithm, through
// ascylib.ShardedStringMap. Every mutation is a single UpdateBytes, so the
// store's atomicity is exactly the facade's: in-place and atomic against
// everything on structures with native Update (CLHT-LB), serialized against
// other mutations elsewhere. Keys arrive as []byte straight from the wire
// and are materialized as strings only when a fresh entry is inserted.
//
// Sharding: the keyspace is hash-partitioned across Shards independent
// structure instances, each with its own value-block pool and its own
// expired-item reaper — so a list or tree backend stops serializing every
// request on one hot structure. A Pin opens only the epochs of the shards a
// request actually touches ("pin only the shard you touch"): a single-key
// request costs exactly one epoch bracket regardless of the shard count,
// and a multi-get pays one per distinct shard it reads.
//
// Memory discipline (ASCY4 on the serving path): value blocks are copied
// into the touched shard's SSMEM buffer pool on store and freed back to it
// when a mutation retires them; a freed block is reused only after every
// reader pinned into that shard has unpinned, so a get can hand its Data to
// the response writer without copying. Callers bracket work with Pin/Unpin
// — one pin per request in the server's loop.
//
// Expiry is lazy, as in memcached: expired items are invisible to reads
// and treated as absent by mutations, and are physically removed when a
// mutation next touches their key. Reads also reap: a Get that observes a
// dead item removes it opportunistically (bounded to one reaper per shard
// at a time, never blocking the read), so read-heavy workloads cannot
// accumulate corpses.
type Store struct {
	sm   *ascylib.ShardedStringMap[Item]
	bufs []*ssmem.BufPool // per shard; nil slice: value pooling off
	pins sync.Pool        // *pinFrame, recycled so Pin() is allocation-free
	cas  atomic.Uint64
	now  func() int64
	algo string
	// reaping bounds opportunistic expired-item removal to one goroutine
	// per shard at a time; readers that lose the flag skip, never wait.
	// Padded: the flags are written on the read path of distinct shards.
	reaping []reapFlag
	// flush_all bookkeeping, the analog of memcached's oldest_live rule
	// with CAS tokens as the store-order clock (tokens are unique and
	// monotonic store-wide, so "existing at flush time" is exact even
	// within one wall-clock second and across shards): at flushAt (unix
	// seconds; 0 = no flush), every item whose CAS token is <= flushCAS
	// dies.
	flushAt  atomic.Int64
	flushCAS atomic.Uint64
}

// reapFlag is a cache-line-isolated per-shard reaper bound.
type reapFlag struct {
	flag atomic.Bool
	_    [pad.CacheLineSize - 1]byte
}

// NewStore builds a store on the named algorithm. capacity sizes the backing
// structures in total across shards (<= 0 picks a service-appropriate
// default of 2^16 hash-table buckets). poolValues enables SSMEM recycling of
// value blocks. shards is the keyspace partition count (< 1 means 1).
func NewStore(algo string, capacity int, poolValues bool, shards int) (*Store, error) {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if shards < 1 {
		shards = 1
	}
	sm, err := ascylib.NewShardedStringMap[Item](algo, shards, ascylib.Capacity(capacity))
	if err != nil {
		return nil, err
	}
	s := &Store{
		sm:      sm,
		now:     func() int64 { return time.Now().Unix() },
		algo:    algo,
		reaping: make([]reapFlag, shards),
	}
	if poolValues {
		s.bufs = make([]*ssmem.BufPool, shards)
		for i := range s.bufs {
			s.bufs[i] = ssmem.NewBufPool(0)
		}
	}
	s.pins.New = func() any {
		return &pinFrame{
			as:      make([]*ssmem.BufAllocator, shards),
			touched: make([]int, 0, shards),
		}
	}
	return s, nil
}

// Algo returns the backing algorithm's registry name.
func (s *Store) Algo() string { return s.algo }

// Shards returns the keyspace partition count.
func (s *Store) Shards() int { return s.sm.NumShards() }

// BufStats returns the value-block pool counters summed across shards (zero
// when pooling is off).
func (s *Store) BufStats() ssmem.Stats {
	var agg ssmem.Stats
	for _, p := range s.bufs {
		agg.Add(p.Stats())
	}
	return agg
}

// pinFrame carries one Pin's per-shard allocator leases; frames are pooled
// so the request loop never allocates one. touched lists the shards holding
// a lease, so Unpin's cost scales with the shards a request used, not with
// the store's shard count.
type pinFrame struct {
	as      []*ssmem.BufAllocator // indexed by shard; nil until the shard is touched
	touched []int
}

// Pin leases the calling goroutine into the store's epochs, shard by shard
// as they are touched: Item.Data returned by Get stays unrecycled until
// Unpin. Pins are cheap (a pooled frame, plus a pool get and one atomic
// increment per distinct shard touched) and must not be held across
// blocking waits longer than a request's lifetime.
type Pin struct {
	s *Store
	f *pinFrame
}

// Pin opens an epoch lease. The zero Pin is valid and inert (for a store
// without pooling).
func (s *Store) Pin() Pin {
	if s.bufs == nil {
		return Pin{s: s}
	}
	return Pin{s: s, f: s.pins.Get().(*pinFrame)}
}

// Unpin closes the lease: every shard epoch the pin opened ends, and the
// leased allocators and the frame go back to their pools.
func (p Pin) Unpin() {
	if p.f == nil {
		return
	}
	for _, sh := range p.f.touched {
		a := p.f.as[sh]
		a.OpEnd()
		p.s.bufs[sh].Put(a)
		p.f.as[sh] = nil
	}
	p.f.touched = p.f.touched[:0]
	p.s.pins.Put(p.f)
}

// enter opens shard sh's epoch for this pin (idempotent, no-op without
// pooling) and returns its allocator. Every store operation calls it before
// touching the shard: the open epoch is what keeps an Item.Data block —
// including one read inside a speculative update callback — from being
// recycled under the request.
func (p Pin) enter(sh int) *ssmem.BufAllocator {
	if p.f == nil {
		return nil
	}
	if a := p.f.as[sh]; a != nil {
		return a
	}
	a := p.s.bufs[sh].Get()
	a.OpStart()
	p.f.as[sh] = a
	p.f.touched = append(p.f.touched, sh)
	return a
}

// alloc copies data into a block from shard sh's pool (plain copy without
// pooling).
func (p Pin) alloc(sh int, data []byte) []byte {
	a := p.enter(sh)
	if a == nil {
		if len(data) == 0 {
			return []byte{}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	b := a.Alloc(len(data))
	copy(b, data)
	return b
}

// free returns a retired block to shard sh's pool (no-op without pooling,
// or for nil blocks).
func (p Pin) free(sh int, b []byte) {
	if p.f == nil || b == nil {
		return
	}
	p.enter(sh).Free(b)
}

// absExpiry converts a protocol exptime to an absolute unix time: 0 never
// expires, negative is already expired, values up to 30 days are relative
// to now, larger values are absolute.
func (s *Store) absExpiry(exptime int64) int64 {
	const thirtyDays = 60 * 60 * 24 * 30
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return 1 // the epoch: expired since long ago
	case exptime <= thirtyDays:
		return s.now() + exptime
	default:
		return exptime
	}
}

// nextCAS issues a fresh token. Tokens are unique per store (across every
// shard) and never 0.
func (s *Store) nextCAS() uint64 { return s.cas.Add(1) }

// newItem builds a fresh item whose Data is an owned copy of data in shard
// sh's pool.
func (s *Store) newItem(p Pin, sh int, flags uint32, exptime int64, data []byte) Item {
	return Item{
		Flags:    flags,
		Data:     p.alloc(sh, data),
		CAS:      s.nextCAS(),
		ExpireAt: s.absExpiry(exptime),
	}
}

// live reports whether the item is visible at time now: not expired and
// not invalidated by a reached flush_all epoch.
func (s *Store) live(it Item, now int64) bool {
	if it.expired(now) {
		return false
	}
	if fa := s.flushAt.Load(); fa != 0 && now >= fa && it.CAS <= s.flushCAS.Load() {
		return false
	}
	return true
}

// Get returns the live item under key. The Data block is valid while p is
// pinned. A dead item observed here is reaped opportunistically.
func (s *Store) Get(p Pin, key []byte) (Item, bool) {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	it, ok := s.sm.GetBytesHashed(sh, h, key)
	if !ok {
		return Item{}, false
	}
	if s.live(it, s.now()) {
		return it, true
	}
	s.reapDead(p, sh, h, key, it.CAS)
	return Item{}, false
}

// reapDead removes the corpse under key if it still carries token cas and
// is still dead — bounded to one reaper per shard at a time so a stampede
// of readers on a hot expired key cannot pile onto the mutation path, and
// non-blocking for everyone who loses the flag. The flag clear is deferred:
// a panic on the reap path (the facade's value-arena exhaustion panic
// surfaces through UpdateBytes, and an injected clock can throw too) must
// not leave the flag stuck and permanently disable reaping for the shard.
func (s *Store) reapDead(p Pin, sh int, h uint64, key []byte, cas uint64) {
	if !s.reaping[sh].flag.CompareAndSwap(false, true) {
		return
	}
	defer s.reaping[sh].flag.Store(false)
	now := s.now()
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			return old, false
		}
		if old.CAS != cas || s.live(old, now) {
			return old, true // superseded or resurrected: keep
		}
		retired = old.Data
		return old, false
	})
	p.free(sh, retired)
}

// Set unconditionally stores the value and returns its CAS token.
func (s *Store) Set(p Pin, key []byte, flags uint32, exptime int64, data []byte) uint64 {
	sh, h := s.sm.RouteBytes(key)
	it := s.newItem(p, sh, flags, exptime, data)
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		return it, true
	})
	p.free(sh, retired)
	return it.CAS
}

// Add stores the value only if the key holds no live item.
func (s *Store) Add(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	now := s.now()
	it := s.newItem(p, sh, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present && s.live(old, now) {
			stored = false
			return old, true
		}
		if present {
			retired = old.Data // replacing a corpse
		}
		stored = true
		return it, true
	})
	if stored {
		p.free(sh, retired)
	} else {
		p.free(sh, it.Data) // never published
	}
	return stored
}

// Replace stores the value only if the key holds a live item.
func (s *Store) Replace(p Pin, key []byte, flags uint32, exptime int64, data []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	now := s.now()
	it := s.newItem(p, sh, flags, exptime, data)
	stored := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			stored = false
			return old, false
		}
		retired = old.Data
		if !s.live(old, now) {
			stored = false
			return old, false // purge the corpse
		}
		stored = true
		return it, true
	})
	p.free(sh, retired)
	if !stored {
		p.free(sh, it.Data) // never published
	}
	return stored
}

// CompareAndSwap stores the value only if the key's live item still carries
// the token casid.
func (s *Store) CompareAndSwap(p Pin, key []byte, flags uint32, exptime int64, data []byte, casid uint64) CasStatus {
	sh, h := s.sm.RouteBytes(key)
	now := s.now()
	it := s.newItem(p, sh, flags, exptime, data)
	status := CasNotFound
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = CasNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = CasNotFound
			retired = old.Data // purge the corpse
			return old, false
		}
		if old.CAS != casid {
			status = CasExists
			return old, true
		}
		status = CasStored
		retired = old.Data
		return it, true
	})
	p.free(sh, retired)
	if status != CasStored {
		p.free(sh, it.Data) // never published
	}
	return status
}

// Delete removes the key's live item and reports whether one was removed.
func (s *Store) Delete(p Pin, key []byte) bool {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	now := s.now()
	deleted := false
	var retired []byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if present {
			retired = old.Data
		}
		deleted = present && s.live(old, now)
		return old, false
	})
	p.free(sh, retired)
	return deleted
}

// IncrDecr atomically adjusts the decimal value under key by delta (incr
// wraps at 2^64, decr floors at 0, as memcached specifies) and returns the
// new value. The stored value must be an ASCII decimal uint64.
func (s *Store) IncrDecr(p Pin, key []byte, delta uint64, incr bool) (uint64, IncrStatus) {
	sh, h := s.sm.RouteBytes(key)
	p.enter(sh)
	now := s.now()
	var newVal uint64
	status := IncrNotFound
	var retired []byte
	var staged []byte // pooled block reused across speculative invocations
	var digits [20]byte
	s.sm.UpdateBytesHashed(sh, h, key, func(old Item, present bool) (Item, bool) {
		retired = nil
		if !present {
			status = IncrNotFound
			return old, false
		}
		if !s.live(old, now) {
			status = IncrNotFound
			retired = old.Data
			return old, false
		}
		cur, ok := parseU64(old.Data)
		if !ok {
			status = IncrNonNumeric
			return old, true
		}
		if incr {
			newVal = cur + delta
		} else if cur < delta {
			newVal = 0
		} else {
			newVal = cur - delta
		}
		status = IncrOK
		out := strconv.AppendUint(digits[:0], newVal, 10)
		if cap(staged) < len(out) {
			staged = p.alloc(sh, out)
		} else {
			staged = staged[:len(out)]
			copy(staged, out)
		}
		next := old
		retired = old.Data
		next.Data = staged
		next.CAS = s.nextCAS()
		return next, true
	})
	p.free(sh, retired)
	if status != IncrOK {
		p.free(sh, staged) // never published
	}
	return newVal, status
}

// FlushAll invalidates every item stored up to now, after delay seconds
// (0 = immediately; negative is clamped to 0 — the wire layer rejects
// negative delays before they get here). Like memcached's oldest_live rule,
// the epoch applies lazily through liveness checks — items stored after the
// call stay live — and an immediate flush additionally sweeps the
// structures, shard by shard, so the memory is released. A later FlushAll
// supersedes a pending one.
func (s *Store) FlushAll(delay int64) {
	now := s.now()
	if delay < 0 {
		delay = 0
	}
	s.flushCAS.Store(s.cas.Load())
	s.flushAt.Store(now + delay)
	if delay > 0 {
		return
	}
	// Physically collect what the epoch just killed, one shard at a time,
	// under one pin per shard — holding earlier shards' epochs open across
	// the whole sweep would stall their block reclamation, exactly the
	// cross-shard coupling the per-shard pools exist to avoid. Not atomic:
	// items stored while the sweep runs are (correctly) kept.
	for sh := 0; sh < s.sm.NumShards(); sh++ {
		s.flushShard(sh, now)
	}
}

// flushShard collects shard sh's epoch-killed items under a shard-local pin.
func (s *Store) flushShard(sh int, now int64) {
	p := s.Pin()
	defer p.Unpin()
	p.enter(sh)
	shard := s.sm.Shard(sh)
	var keys []string
	shard.ForEach(func(k string, it Item) bool {
		if !s.live(it, now) {
			keys = append(keys, k)
		}
		return true
	})
	for _, k := range keys {
		var retired []byte
		shard.Update(k, func(old Item, present bool) (Item, bool) {
			retired = nil
			keep := present && s.live(old, s.now())
			if present && !keep {
				retired = old.Data
			}
			return old, keep
		})
		p.free(sh, retired)
	}
}

// Items counts stored entries (including not-yet-collected expired ones)
// across all shards; linear time, quiescent use.
func (s *Store) Items() int { return s.sm.Len() }
