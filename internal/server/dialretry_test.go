package server

import (
	"net"
	"testing"
	"time"
)

// reserveAddr grabs an ephemeral loopback port and releases it, returning an
// address nothing is listening on (yet).
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestDialRetryLateListener: DialRetry must absorb a server that binds
// after the client starts dialing — the launcher-script race where loadgen
// starts while N ascyserve processes are still booting.
func TestDialRetryLateListener(t *testing.T) {
	addr := reserveAddr(t)
	go func() {
		time.Sleep(150 * time.Millisecond)
		s, err := New(Config{Addr: addr, Algo: "ht-clht-lb"})
		if err != nil {
			return
		}
		if err := s.Listen(); err != nil {
			return
		}
		go s.Serve()
		t.Cleanup(func() { s.Close() })
	}()

	start := time.Now()
	c, err := DialRetry(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("DialRetry: %v (after %v)", err, time.Since(start))
	}
	defer c.Close()
	if err := c.Set("k", 1, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	e, ok, err := c.Get("k")
	if err != nil || !ok || string(e.Data) != "v" {
		t.Fatalf("get after retry dial: ok=%v err=%v entry=%+v", ok, err, e)
	}
}

// TestDialRetryZeroTimeout: with no retry window, a dead address must fail
// immediately — DialRetry(addr, 0) is plain Dial.
func TestDialRetryZeroTimeout(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	if _, err := DialRetry(addr, 0); err == nil {
		t.Fatal("DialRetry of a dead address with zero timeout did not error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("zero-timeout dial took %v, expected an immediate failure", d)
	}
}

// TestDialRetryExpires: the retry window is a deadline, not a hint — a dead
// address must error once it elapses, not spin forever.
func TestDialRetryExpires(t *testing.T) {
	addr := reserveAddr(t)
	start := time.Now()
	if _, err := DialRetry(addr, 200*time.Millisecond); err == nil {
		t.Fatal("DialRetry of a dead address did not error after the window")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("200ms retry window took %v to give up", d)
	}
}
