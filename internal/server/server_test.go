package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// startServer boots a server on a loopback ephemeral port and returns it
// with a cleanup.
func startServer(t *testing.T, algo string) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", Algo: algo, Capacity: 1 << 10})
	if err != nil {
		t.Fatalf("New(%s): %v", algo, err)
	}
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func dialT(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerEndToEnd(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ht-clht-lf", "sl-fraser-opt", "bst-tk"} {
		t.Run(algo, func(t *testing.T) {
			s := startServer(t, algo)
			c := dialT(t, s)

			if v, err := c.Version(); err != nil || v != Version {
				t.Fatalf("Version = %q, %v", v, err)
			}
			if _, ok, err := c.Get("absent"); err != nil || ok {
				t.Fatalf("Get(absent) = %v, %v", ok, err)
			}
			if err := c.Set("greeting", 42, 0, []byte("hello world")); err != nil {
				t.Fatalf("Set: %v", err)
			}
			e, ok, err := c.Get("greeting")
			if err != nil || !ok || string(e.Data) != "hello world" || e.Flags != 42 {
				t.Fatalf("Get(greeting) = %+v, %v, %v", e, ok, err)
			}

			// add/replace discipline.
			if stored, _ := c.Add("greeting", 0, 0, []byte("nope")); stored {
				t.Fatal("Add over existing key stored")
			}
			if stored, _ := c.Add("fresh", 0, 0, []byte("first")); !stored {
				t.Fatal("Add of fresh key did not store")
			}
			if stored, _ := c.Replace("missing", 0, 0, []byte("x")); stored {
				t.Fatal("Replace of missing key stored")
			}
			if stored, _ := c.Replace("fresh", 0, 0, []byte("second")); !stored {
				t.Fatal("Replace of existing key did not store")
			}

			// gets + cas.
			e, ok, err = c.Gets("fresh")
			if err != nil || !ok || e.CAS == 0 {
				t.Fatalf("Gets = %+v, %v, %v", e, ok, err)
			}
			if stored, _ := c.Cas("fresh", 0, 0, []byte("third"), e.CAS); !stored {
				t.Fatal("Cas with fresh token did not store")
			}
			if stored, _ := c.Cas("fresh", 0, 0, []byte("stale"), e.CAS); stored {
				t.Fatal("Cas with stale token stored")
			}

			// Multi-get.
			got, err := c.GetMulti("greeting", "absent", "fresh")
			if err != nil || len(got) != 2 {
				t.Fatalf("GetMulti = %v, %v", got, err)
			}
			if string(got["fresh"].Data) != "third" {
				t.Fatalf("GetMulti[fresh] = %q", got["fresh"].Data)
			}

			// delete.
			if ok, _ := c.Delete("greeting"); !ok {
				t.Fatal("Delete of existing key missed")
			}
			if ok, _ := c.Delete("greeting"); ok {
				t.Fatal("double Delete hit")
			}

			// incr/decr.
			if err := c.Set("ctr", 0, 0, []byte("10")); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := c.Incr("ctr", 5); !ok || v != 15 {
				t.Fatalf("Incr = %d, %v", v, ok)
			}
			if v, ok, _ := c.Decr("ctr", 100); !ok || v != 0 {
				t.Fatalf("Decr floor = %d, %v", v, ok)
			}
			if _, ok, _ := c.Incr("absent", 1); ok {
				t.Fatal("Incr of absent key succeeded")
			}
			c.Set("text", 0, 0, []byte("abc"))
			if _, _, err := c.Incr("text", 1); err == nil ||
				!strings.Contains(err.Error(), "non-numeric") {
				t.Fatalf("Incr of non-numeric value: %v", err)
			}

			// stats.
			st, err := c.Stats()
			if err != nil {
				t.Fatalf("Stats: %v", err)
			}
			if st["algo"] != algo {
				t.Fatalf("stats algo = %q, want %q", st["algo"], algo)
			}
			if st["cmd_set"] == "0" || st["get_hits"] == "0" {
				t.Fatalf("stats counters flat: %v", st)
			}
		})
	}
}

func TestServerPipelining(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	c := dialT(t, s)
	const n = 200
	// Queue n sets and n gets without reading a single response.
	for i := 0; i < n; i++ {
		if err := c.SendStore("set", fmt.Sprintf("p%d", i), 0, 0,
			[]byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := c.SendGet(false, fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if ok, err := c.RecvStored(); err != nil || !ok {
			t.Fatalf("pipelined set %d: %v, %v", i, ok, err)
		}
	}
	for i := 0; i < n; i++ {
		es, err := c.RecvGet()
		if err != nil || len(es) != 1 || string(es[0].Data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("pipelined get %d: %v, %v", i, es, err)
		}
	}
}

func TestServerNoreplyAndErrors(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	// Raw-wire session: noreply suppresses responses, malformed commands
	// produce error lines without desynchronizing the connection.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw := "set k1 0 0 2 noreply\r\nhi\r\n" + // no response expected
		"bogus\r\n" + // ERROR
		"get k1\r\n" // VALUE stanza
	if _, err := conn.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	deadline := time.Now().Add(2 * time.Second)
	conn.SetReadDeadline(deadline)
	var got string
	for !strings.Contains(got, "END\r\n") {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got += string(buf[:n])
	}
	want := "ERROR\r\nVALUE k1 0 2\r\nhi\r\nEND\r\n"
	if got != want {
		t.Fatalf("wire response = %q, want %q", got, want)
	}
}

func TestServerExpiry(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	// Drive the store's clock directly to avoid sleeping.
	now := time.Now().Unix()
	s.Store().now = func() int64 { return now }
	c := dialT(t, s)
	if err := c.Set("ttl", 0, 10, []byte("short-lived")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("ttl"); !ok {
		t.Fatal("item invisible before expiry")
	}
	now += 11
	if _, ok, _ := c.Get("ttl"); ok {
		t.Fatal("item visible after expiry")
	}
	// An expired item is absent to add.
	if stored, _ := c.Add("ttl", 0, 0, []byte("new")); !stored {
		t.Fatal("Add over expired item did not store")
	}
}

func TestServerFlushAll(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	now := time.Now().Unix()
	s.Store().now = func() int64 { return now }
	c := dialT(t, s)

	// Immediate flush kills existing items, even within the same second.
	c.Set("a", 0, 0, []byte("1"))
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("a"); ok {
		t.Fatal("item survived immediate flush_all")
	}
	// Items stored after the flush are live.
	c.Set("b", 0, 0, []byte("2"))
	if _, ok, _ := c.Get("b"); !ok {
		t.Fatal("post-flush store is dead")
	}

	// Delayed flush: nothing dies until the epoch arrives. The epoch
	// anchors at the pin's timestamp, as it would for a wire flush_all.
	fp := s.Store().Pin()
	s.Store().FlushAll(fp, 60)
	fp.Unpin()
	if _, ok, _ := c.Get("b"); !ok {
		t.Fatal("item died before the flush delay elapsed")
	}
	now += 61
	if _, ok, _ := c.Get("b"); ok {
		t.Fatal("item survived past the flush epoch")
	}
	// replace/incr treat it as gone; add may take the key over.
	if stored, _ := c.Replace("b", 0, 0, []byte("x")); stored {
		t.Fatal("Replace revived a flushed item")
	}
	if stored, _ := c.Add("b", 0, 0, []byte("3")); !stored {
		t.Fatal("Add over flushed item did not store")
	}
	if e, ok, _ := c.Get("b"); !ok || string(e.Data) != "3" {
		t.Fatalf("Get after re-add = %+v, %v", e, ok)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s := startServer(t, "ht-clht-lf")
	const clients, rounds = 8, 150
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("c%d-k%d", i, r%20)
				if err := c.Set(key, 0, 0, []byte("payload")); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(key); err != nil {
					errs <- err
					return
				}
				if r%10 == 0 {
					if _, err := c.Delete(key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Shared counter across connections must be exact.
	c := dialT(t, s)
	c.Set("shared", 0, 0, []byte("0"))
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				return
			}
			defer cl.Close()
			for n := 0; n < 100; n++ {
				cl.Incr("shared", 1)
			}
		}()
	}
	cwg.Wait()
	if v, ok, _ := c.Incr("shared", 0); !ok || v != 400 {
		t.Fatalf("shared counter = %d, %v; want 400", v, ok)
	}
}

func TestLoadgen(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	cfg := LoadgenConfig{
		Addr:        s.Addr().String(),
		Conns:       2,
		Pipeline:    8,
		Duration:    200 * time.Millisecond,
		Keys:        512,
		ValueSize:   32,
		Mix:         workload.Mix{UpdatePct: 20, RangePct: 5},
		SampleEvery: 2,
		Seed:        1,
	}
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatalf("RunLoadgen: %v", err)
	}
	if res.Ops == 0 || res.Gets == 0 || res.Sets == 0 {
		t.Fatalf("loadgen did no work: %+v", res)
	}
	if res.Algo != "ht-clht-lb" {
		t.Fatalf("loadgen algo = %q", res.Algo)
	}
	if res.MGets == 0 {
		t.Fatalf("range mix did not produce multi-gets: %+v", res)
	}
	all := res.Latency["all"]
	if all.N == 0 || all.P(50) <= 0 || all.P(99) < all.P(50) {
		t.Fatalf("latency summary implausible: %+v", all)
	}
	// The BENCH file round-trips.
	path := t.TempDir() + "/BENCH_server.json"
	if err := WriteBench(path, cfg, []LoadgenResult{res}); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
}
