package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// chunkReader yields at most n bytes per Read, to prove the parser handles
// frames split across arbitrary read boundaries.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func parseOne(t *testing.T, input string) (*Command, error) {
	t.Helper()
	return ReadCommand(newReader(strings.NewReader(input), 0), 0)
}

// cmdShape is the string-typed view of a Command the table tests compare
// against (Command's own fields are byte slices into reused scratch).
type cmdShape struct {
	Op      Op
	Keys    []string
	Key     string
	Flags   uint32
	Exptime int64
	Data    string
	HasData bool
	CasID   uint64
	Delta   uint64
	NoReply bool
}

func shapeOf(c *Command) cmdShape {
	s := cmdShape{
		Op: c.Op, Key: string(c.Key), Flags: c.Flags, Exptime: c.Exptime,
		Data: string(c.Data), HasData: c.Data != nil, CasID: c.CasID,
		Delta: c.Delta, NoReply: c.NoReply,
	}
	for _, k := range c.Keys {
		s.Keys = append(s.Keys, string(k))
	}
	return s
}

func TestReadCommandWellFormed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  cmdShape
	}{
		{"get", "get foo\r\n", cmdShape{Op: OpGet, Keys: []string{"foo"}}},
		{"get multi", "get a b c\r\n", cmdShape{Op: OpGet, Keys: []string{"a", "b", "c"}}},
		{"gets", "gets a b\r\n", cmdShape{Op: OpGets, Keys: []string{"a", "b"}}},
		{"set", "set k 7 0 5\r\nhello\r\n",
			cmdShape{Op: OpSet, Key: "k", Flags: 7, Data: "hello", HasData: true}},
		{"set noreply", "set k 0 0 2 noreply\r\nhi\r\n",
			cmdShape{Op: OpSet, Key: "k", NoReply: true, Data: "hi", HasData: true}},
		{"set empty value", "set k 0 0 0\r\n\r\n",
			cmdShape{Op: OpSet, Key: "k", HasData: true}},
		{"add", "add k 1 30 3\r\nabc\r\n",
			cmdShape{Op: OpAdd, Key: "k", Flags: 1, Exptime: 30, Data: "abc", HasData: true}},
		{"replace", "replace k 0 0 1\r\nx\r\n",
			cmdShape{Op: OpReplace, Key: "k", Data: "x", HasData: true}},
		{"cas", "cas k 0 0 2 99\r\nhi\r\n",
			cmdShape{Op: OpCas, Key: "k", CasID: 99, Data: "hi", HasData: true}},
		{"delete", "delete k\r\n", cmdShape{Op: OpDelete, Key: "k"}},
		{"delete noreply", "delete k noreply\r\n",
			cmdShape{Op: OpDelete, Key: "k", NoReply: true}},
		{"incr", "incr k 5\r\n", cmdShape{Op: OpIncr, Key: "k", Delta: 5}},
		{"decr", "decr k 2 noreply\r\n",
			cmdShape{Op: OpDecr, Key: "k", Delta: 2, NoReply: true}},
		{"stats", "stats\r\n", cmdShape{Op: OpStats}},
		{"version", "version\r\n", cmdShape{Op: OpVersion}},
		{"flush_all", "flush_all\r\n", cmdShape{Op: OpFlushAll}},
		{"quit", "quit\r\n", cmdShape{Op: OpQuit}},
		{"value with binary", "set k 0 0 4\r\n\x00\x01\r\x02\r\n",
			cmdShape{Op: OpSet, Key: "k", Data: "\x00\x01\r\x02", HasData: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseOne(t, tc.input)
			if err != nil {
				t.Fatalf("ReadCommand(%q) error: %v", tc.input, err)
			}
			if gs := shapeOf(got); !reflect.DeepEqual(gs, tc.want) {
				t.Fatalf("ReadCommand(%q)\n got %+v\nwant %+v", tc.input, gs, tc.want)
			}
		})
	}
}

// TestReadCommandIntoReuse drives one Command/Scratch pair through a long
// pipelined stream and checks both correctness of each parse and that the
// steady-state parse allocates nothing.
func TestReadCommandIntoReuse(t *testing.T) {
	frame := "set bigkey-0123456789 42 0 10\r\nabcdefghij\r\nget bigkey-0123456789 other\r\nincr bigkey-0123456789 7\r\ndelete bigkey-0123456789\r\n"
	const reps = 64
	r := newReader(strings.NewReader(strings.Repeat(frame, reps)), 0)
	var cmd Command
	var sc Scratch
	for i := 0; i < reps; i++ {
		if err := ReadCommandInto(r, 0, &cmd, &sc); err != nil || cmd.Op != OpSet ||
			string(cmd.Key) != "bigkey-0123456789" || string(cmd.Data) != "abcdefghij" || cmd.Flags != 42 {
			t.Fatalf("rep %d set: %+v %v", i, shapeOf(&cmd), err)
		}
		if err := ReadCommandInto(r, 0, &cmd, &sc); err != nil || cmd.Op != OpGet ||
			len(cmd.Keys) != 2 || string(cmd.Keys[0]) != "bigkey-0123456789" {
			t.Fatalf("rep %d get: %+v %v", i, shapeOf(&cmd), err)
		}
		if err := ReadCommandInto(r, 0, &cmd, &sc); err != nil || cmd.Op != OpIncr || cmd.Delta != 7 {
			t.Fatalf("rep %d incr: %+v %v", i, shapeOf(&cmd), err)
		}
		if err := ReadCommandInto(r, 0, &cmd, &sc); err != nil || cmd.Op != OpDelete {
			t.Fatalf("rep %d delete: %+v %v", i, shapeOf(&cmd), err)
		}
	}
	if err := ReadCommandInto(r, 0, &cmd, &sc); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// TestParseNumbers covers the allocation-free numeric parsers against the
// strconv ground truth, including overflow boundaries.
func TestParseNumbers(t *testing.T) {
	for _, s := range []string{
		"0", "1", "42", "18446744073709551615", "18446744073709551616",
		"99999999999999999999999", "", "-", "x", "1x", "007",
		"0000000000000000000100", "00000000000000000000000000000000",
	} {
		got, ok := parseU64([]byte(s))
		want, err := strconv.ParseUint(s, 10, 64)
		if ok != (err == nil) || (ok && got != want) {
			t.Fatalf("parseU64(%q) = %d,%v; strconv: %d,%v", s, got, ok, want, err)
		}
	}
	for _, s := range []string{
		"0", "-1", "+5", "9223372036854775807", "-9223372036854775808",
		"9223372036854775808", "-9223372036854775809", "", "-", "--1",
	} {
		got, ok := parseI64([]byte(s))
		want, err := strconv.ParseInt(s, 10, 64)
		if ok != (err == nil) || (ok && got != want) {
			t.Fatalf("parseI64(%q) = %d,%v; strconv: %d,%v", s, got, ok, want, err)
		}
	}
}

// TestReadCommandZeroPaddedSize: zero-padded numerals of any length are
// legal, exactly as with the strconv-based parser this one replaced.
func TestReadCommandZeroPaddedSize(t *testing.T) {
	cmd, err := parseOne(t, "set k 0 0 0000000000000000000005\r\nhello\r\n")
	if err != nil || cmd.Op != OpSet || string(cmd.Data) != "hello" {
		t.Fatalf("zero-padded size: %+v, %v", cmd, err)
	}
}

// TestReadCommandNoReplyAfterDiscard: the noreply decision must survive the
// data-block discard of a malformed storage command, even when the block
// arrives in later reads that recycle the buffer the command line sat in.
func TestReadCommandNoReplyAfterDiscard(t *testing.T) {
	payload := strings.Repeat("x", 100)
	input := "set k bad 0 100 noreply\r\n" + payload + "\r\nversion\r\n"
	for _, chunk := range []int{1, 7, 25, len(input)} {
		r := newReader(&chunkReader{data: []byte(input), n: chunk}, 0)
		_, err := ReadCommand(r, 0)
		var pe *ProtoError
		if !errors.As(err, &pe) || !pe.NoReply {
			t.Fatalf("chunk=%d: want ProtoError with NoReply, got %v", chunk, err)
		}
		if cmd, err := ReadCommand(r, 0); err != nil || cmd.Op != OpVersion {
			t.Fatalf("chunk=%d: resync failed: %+v, %v", chunk, cmd, err)
		}
	}
}

func TestReadCommandSplitAcrossReads(t *testing.T) {
	input := "set key1 42 0 10\r\nabcdefghij\r\nget key1 key2\r\nincr key1 7\r\n"
	for _, chunk := range []int{1, 2, 3, 7} {
		r := newReader(&chunkReader{data: []byte(input), n: chunk}, 0)
		c1, err := ReadCommand(r, 0)
		if err != nil || c1.Op != OpSet || string(c1.Data) != "abcdefghij" || c1.Flags != 42 {
			t.Fatalf("chunk=%d: set parse = %+v, %v", chunk, c1, err)
		}
		c2, err := ReadCommand(r, 0)
		if err != nil || c2.Op != OpGet || len(c2.Keys) != 2 {
			t.Fatalf("chunk=%d: get parse = %+v, %v", chunk, c2, err)
		}
		c3, err := ReadCommand(r, 0)
		if err != nil || c3.Op != OpIncr || c3.Delta != 7 {
			t.Fatalf("chunk=%d: incr parse = %+v, %v", chunk, c3, err)
		}
		if _, err := ReadCommand(r, 0); err != io.EOF {
			t.Fatalf("chunk=%d: want clean EOF, got %v", chunk, err)
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	longKey := strings.Repeat("x", MaxKeyLen+1)
	cases := []struct {
		name    string
		input   string
		fatal   bool
		next    string // a following command that must still parse (non-fatal errors resync)
		respHas string
	}{
		{"unknown verb", "frobnicate\r\n", false, "version\r\n", "ERROR"},
		{"empty line", "\r\n", false, "version\r\n", "ERROR"},
		{"get no keys", "get\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"overlong key", "get " + longKey + "\r\n", false, "version\r\n", "CLIENT_ERROR"},
		// Storage lines whose size field parses are recoverable: the data
		// block they announce is swallowed, so the command after it must
		// still parse (no request smuggling through the block).
		{"set bad flags", "set k nope 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"set bad key", "set " + longKey + " 0 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"set trailing junk", "set k 0 0 2 0 0\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"cas missing token", "cas k 0 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		// Without a parseable size the block length is unknowable: fatal,
		// because resyncing would interpret client data as commands.
		{"set missing fields", "set k 0 5\r\n", true, "", "CLIENT_ERROR"},
		{"set negative size", "set k 0 0 -4\r\n", true, "", "CLIENT_ERROR"},
		{"set unparseable size", "set k 0 0 huge\r\n", true, "", "CLIENT_ERROR"},
		{"incr bad delta", "incr k banana\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"delete extra arg", "delete k 0 0\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"flush_all bad delay", "flush_all soon\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"bad data chunk", "set k 0 0 2\r\nhello\r\n", true, "", "bad data chunk"},
		{"line too long", "get " + strings.Repeat("k ", MaxCommandLine) + "\r\n",
			false, "version\r\n", "too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newReader(strings.NewReader(tc.input+tc.next), 0)
			_, err := ReadCommand(r, 0)
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadCommand(%q) = %v, want ProtoError", tc.input, err)
			}
			if pe.Fatal != tc.fatal {
				t.Fatalf("Fatal = %v, want %v (%q)", pe.Fatal, tc.fatal, tc.input)
			}
			if !strings.Contains(pe.Resp, tc.respHas) {
				t.Fatalf("Resp = %q, want substring %q", pe.Resp, tc.respHas)
			}
			if tc.next != "" {
				cmd, err := ReadCommand(r, 0)
				if err != nil || cmd.Op != OpVersion {
					t.Fatalf("resync failed after %q: %+v, %v", tc.input, cmd, err)
				}
			}
		})
	}
}

func TestReadCommandNoReplyErrors(t *testing.T) {
	// A malformed command that asked for noreply must carry the flag on
	// its error, so the server suppresses the response and the client's
	// pipeline stays aligned.
	for _, input := range []string{
		"set k nope 0 2 noreply\r\nhi\r\n",
		"incr k banana noreply\r\n",
	} {
		r := newReader(strings.NewReader(input+"version\r\n"), 0)
		_, err := ReadCommand(r, 0)
		var pe *ProtoError
		if !errors.As(err, &pe) || !pe.NoReply {
			t.Fatalf("ReadCommand(%q) = %v; want ProtoError with NoReply", input, err)
		}
		if cmd, err := ReadCommand(r, 0); err != nil || cmd.Op != OpVersion {
			t.Fatalf("resync after %q: %+v, %v", input, cmd, err)
		}
	}
	// The shared ErrUnknownCommand must never be mutated by the noreply
	// wrapping.
	r := newReader(strings.NewReader("bogus noreply\r\n"), 0)
	if _, err := ReadCommand(r, 0); err == nil {
		t.Fatal("bogus command parsed")
	}
	if ErrUnknownCommand.NoReply {
		t.Fatal("ErrUnknownCommand was mutated")
	}
}

func TestReadCommandFlushAllDelay(t *testing.T) {
	cmd, err := parseOne(t, "flush_all 900\r\n")
	if err != nil || cmd.Op != OpFlushAll || cmd.Exptime != 900 {
		t.Fatalf("flush_all 900 = %+v, %v", cmd, err)
	}
	cmd, err = parseOne(t, "flush_all 30 noreply\r\n")
	if err != nil || cmd.Exptime != 30 || !cmd.NoReply {
		t.Fatalf("flush_all 30 noreply = %+v, %v", cmd, err)
	}
}

func TestReadCommandOversized(t *testing.T) {
	const maxItem = 128
	big := strings.Repeat("v", maxItem+1)
	input := "set k 0 0 129\r\n" + big + "\r\nversion\r\n"
	r := newReader(strings.NewReader(input), 0)
	_, err := ReadCommand(r, maxItem)
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Fatal || !strings.Contains(pe.Resp, "too large") {
		t.Fatalf("oversized set: %v", err)
	}
	// The oversized block must have been swallowed: next command parses.
	cmd, err := ReadCommand(r, maxItem)
	if err != nil || cmd.Op != OpVersion {
		t.Fatalf("resync after oversized value: %+v, %v", cmd, err)
	}
}

func TestReadCommandTruncated(t *testing.T) {
	for _, input := range []string{
		"set k 0 0 10\r\nabc", // data block cut short
		"set k 0 0 3\r\nabc",  // missing terminator
		"get foo",             // command line without newline
	} {
		r := newReader(strings.NewReader(input), 0)
		_, err := ReadCommand(r, 0)
		if err == nil || err == io.EOF {
			t.Fatalf("ReadCommand(%q) = %v, want mid-frame error", input, err)
		}
	}
}

// FuzzReadCommand feeds arbitrary bytes through the parser: it must never
// panic, and everything it accepts must satisfy the command invariants.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("get foo bar\r\n"))
	f.Add([]byte("set k 7 0 5\r\nhello\r\nget k\r\n"))
	f.Add([]byte("cas k 0 0 2 99\r\nhi\r\n"))
	f.Add([]byte("incr k 123\r\ndecr k 1 noreply\r\n"))
	f.Add([]byte("stats\r\nversion\r\nquit\r\n"))
	f.Add([]byte("set k 0 0 1000000\r\n"))
	f.Add([]byte("\x00\xff\r\n\r\nget\r\n"))
	f.Add([]byte("mrange a z 10\r\nmmin\r\nmmax\r\n"))
	f.Add([]byte("mrange a z 0\r\nmrange a\r\nmrange a z 5 noreply\r\nmmin x\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newReader(bytes.NewReader(data), 0)
		const maxItem = 1 << 16
		for i := 0; i < 100; i++ {
			cmd, err := ReadCommand(r, maxItem)
			if err != nil {
				var pe *ProtoError
				if errors.As(err, &pe) {
					if pe.Fatal {
						return
					}
					continue // resynchronized; keep parsing
				}
				return // transport-level: stream finished or broken
			}
			switch cmd.Op {
			case OpGet, OpGets:
				if len(cmd.Keys) == 0 {
					t.Fatalf("retrieval command with no keys: %+v", cmd)
				}
				for _, k := range cmd.Keys {
					if !validKey(k) {
						t.Fatalf("invalid key accepted: %q", k)
					}
				}
			case OpSet, OpAdd, OpReplace, OpCas:
				if !validKey(cmd.Key) {
					t.Fatalf("invalid key accepted: %q", cmd.Key)
				}
				if len(cmd.Data) > maxItem {
					t.Fatalf("oversized data accepted: %d bytes", len(cmd.Data))
				}
			case OpDelete, OpIncr, OpDecr:
				if !validKey(cmd.Key) {
					t.Fatalf("invalid key accepted: %q", cmd.Key)
				}
			case OpMRange:
				if len(cmd.Keys) != 2 {
					t.Fatalf("mrange with %d bounds: %+v", len(cmd.Keys), cmd)
				}
				for _, k := range cmd.Keys {
					if !validKey(k) {
						t.Fatalf("invalid mrange bound accepted: %q", k)
					}
				}
				if cmd.Delta == 0 {
					t.Fatalf("mrange with zero limit accepted: %+v", cmd)
				}
				if cmd.NoReply {
					t.Fatalf("mrange with noreply accepted: %+v", cmd)
				}
			case OpMMin, OpMMax:
				if cmd.NoReply {
					t.Fatalf("scan extreme with noreply accepted: %+v", cmd)
				}
			}
		}
	})
}
