package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// chunkReader yields at most n bytes per Read, to prove the parser handles
// frames split across arbitrary read boundaries.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func parseOne(t *testing.T, input string) (*Command, error) {
	t.Helper()
	return ReadCommand(newReader(strings.NewReader(input), 0), 0)
}

func TestReadCommandWellFormed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Command
	}{
		{"get", "get foo\r\n", Command{Op: OpGet, Keys: []string{"foo"}}},
		{"get multi", "get a b c\r\n", Command{Op: OpGet, Keys: []string{"a", "b", "c"}}},
		{"gets", "gets a b\r\n", Command{Op: OpGets, Keys: []string{"a", "b"}}},
		{"set", "set k 7 0 5\r\nhello\r\n",
			Command{Op: OpSet, Key: "k", Flags: 7, Data: []byte("hello")}},
		{"set noreply", "set k 0 0 2 noreply\r\nhi\r\n",
			Command{Op: OpSet, Key: "k", NoReply: true, Data: []byte("hi")}},
		{"set empty value", "set k 0 0 0\r\n\r\n",
			Command{Op: OpSet, Key: "k", Data: []byte{}}},
		{"add", "add k 1 30 3\r\nabc\r\n",
			Command{Op: OpAdd, Key: "k", Flags: 1, Exptime: 30, Data: []byte("abc")}},
		{"replace", "replace k 0 0 1\r\nx\r\n",
			Command{Op: OpReplace, Key: "k", Data: []byte("x")}},
		{"cas", "cas k 0 0 2 99\r\nhi\r\n",
			Command{Op: OpCas, Key: "k", CasID: 99, Data: []byte("hi")}},
		{"delete", "delete k\r\n", Command{Op: OpDelete, Key: "k"}},
		{"delete noreply", "delete k noreply\r\n",
			Command{Op: OpDelete, Key: "k", NoReply: true}},
		{"incr", "incr k 5\r\n", Command{Op: OpIncr, Key: "k", Delta: 5}},
		{"decr", "decr k 2 noreply\r\n",
			Command{Op: OpDecr, Key: "k", Delta: 2, NoReply: true}},
		{"stats", "stats\r\n", Command{Op: OpStats}},
		{"version", "version\r\n", Command{Op: OpVersion}},
		{"flush_all", "flush_all\r\n", Command{Op: OpFlushAll}},
		{"quit", "quit\r\n", Command{Op: OpQuit}},
		{"value with binary", "set k 0 0 4\r\n\x00\x01\r\x02\r\n",
			Command{Op: OpSet, Key: "k", Data: []byte{0, 1, '\r', 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseOne(t, tc.input)
			if err != nil {
				t.Fatalf("ReadCommand(%q) error: %v", tc.input, err)
			}
			if !reflect.DeepEqual(*got, tc.want) {
				t.Fatalf("ReadCommand(%q)\n got %+v\nwant %+v", tc.input, *got, tc.want)
			}
		})
	}
}

func TestReadCommandSplitAcrossReads(t *testing.T) {
	input := "set key1 42 0 10\r\nabcdefghij\r\nget key1 key2\r\nincr key1 7\r\n"
	for _, chunk := range []int{1, 2, 3, 7} {
		r := newReader(&chunkReader{data: []byte(input), n: chunk}, 0)
		c1, err := ReadCommand(r, 0)
		if err != nil || c1.Op != OpSet || string(c1.Data) != "abcdefghij" || c1.Flags != 42 {
			t.Fatalf("chunk=%d: set parse = %+v, %v", chunk, c1, err)
		}
		c2, err := ReadCommand(r, 0)
		if err != nil || c2.Op != OpGet || len(c2.Keys) != 2 {
			t.Fatalf("chunk=%d: get parse = %+v, %v", chunk, c2, err)
		}
		c3, err := ReadCommand(r, 0)
		if err != nil || c3.Op != OpIncr || c3.Delta != 7 {
			t.Fatalf("chunk=%d: incr parse = %+v, %v", chunk, c3, err)
		}
		if _, err := ReadCommand(r, 0); err != io.EOF {
			t.Fatalf("chunk=%d: want clean EOF, got %v", chunk, err)
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	longKey := strings.Repeat("x", MaxKeyLen+1)
	cases := []struct {
		name    string
		input   string
		fatal   bool
		next    string // a following command that must still parse (non-fatal errors resync)
		respHas string
	}{
		{"unknown verb", "frobnicate\r\n", false, "version\r\n", "ERROR"},
		{"empty line", "\r\n", false, "version\r\n", "ERROR"},
		{"get no keys", "get\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"overlong key", "get " + longKey + "\r\n", false, "version\r\n", "CLIENT_ERROR"},
		// Storage lines whose size field parses are recoverable: the data
		// block they announce is swallowed, so the command after it must
		// still parse (no request smuggling through the block).
		{"set bad flags", "set k nope 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"set bad key", "set " + longKey + " 0 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"set trailing junk", "set k 0 0 2 0 0\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"cas missing token", "cas k 0 0 2\r\nhi\r\n", false, "version\r\n", "CLIENT_ERROR"},
		// Without a parseable size the block length is unknowable: fatal,
		// because resyncing would interpret client data as commands.
		{"set missing fields", "set k 0 5\r\n", true, "", "CLIENT_ERROR"},
		{"set negative size", "set k 0 0 -4\r\n", true, "", "CLIENT_ERROR"},
		{"set unparseable size", "set k 0 0 huge\r\n", true, "", "CLIENT_ERROR"},
		{"incr bad delta", "incr k banana\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"delete extra arg", "delete k 0 0\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"flush_all bad delay", "flush_all soon\r\n", false, "version\r\n", "CLIENT_ERROR"},
		{"bad data chunk", "set k 0 0 2\r\nhello\r\n", true, "", "bad data chunk"},
		{"line too long", "get " + strings.Repeat("k ", MaxCommandLine) + "\r\n",
			false, "version\r\n", "too long"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newReader(strings.NewReader(tc.input+tc.next), 0)
			_, err := ReadCommand(r, 0)
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadCommand(%q) = %v, want ProtoError", tc.input, err)
			}
			if pe.Fatal != tc.fatal {
				t.Fatalf("Fatal = %v, want %v (%q)", pe.Fatal, tc.fatal, tc.input)
			}
			if !strings.Contains(pe.Resp, tc.respHas) {
				t.Fatalf("Resp = %q, want substring %q", pe.Resp, tc.respHas)
			}
			if tc.next != "" {
				cmd, err := ReadCommand(r, 0)
				if err != nil || cmd.Op != OpVersion {
					t.Fatalf("resync failed after %q: %+v, %v", tc.input, cmd, err)
				}
			}
		})
	}
}

func TestReadCommandNoReplyErrors(t *testing.T) {
	// A malformed command that asked for noreply must carry the flag on
	// its error, so the server suppresses the response and the client's
	// pipeline stays aligned.
	for _, input := range []string{
		"set k nope 0 2 noreply\r\nhi\r\n",
		"incr k banana noreply\r\n",
	} {
		r := newReader(strings.NewReader(input+"version\r\n"), 0)
		_, err := ReadCommand(r, 0)
		var pe *ProtoError
		if !errors.As(err, &pe) || !pe.NoReply {
			t.Fatalf("ReadCommand(%q) = %v; want ProtoError with NoReply", input, err)
		}
		if cmd, err := ReadCommand(r, 0); err != nil || cmd.Op != OpVersion {
			t.Fatalf("resync after %q: %+v, %v", input, cmd, err)
		}
	}
	// The shared ErrUnknownCommand must never be mutated by the noreply
	// wrapping.
	r := newReader(strings.NewReader("bogus noreply\r\n"), 0)
	if _, err := ReadCommand(r, 0); err == nil {
		t.Fatal("bogus command parsed")
	}
	if ErrUnknownCommand.NoReply {
		t.Fatal("ErrUnknownCommand was mutated")
	}
}

func TestReadCommandFlushAllDelay(t *testing.T) {
	cmd, err := parseOne(t, "flush_all 900\r\n")
	if err != nil || cmd.Op != OpFlushAll || cmd.Exptime != 900 {
		t.Fatalf("flush_all 900 = %+v, %v", cmd, err)
	}
	cmd, err = parseOne(t, "flush_all 30 noreply\r\n")
	if err != nil || cmd.Exptime != 30 || !cmd.NoReply {
		t.Fatalf("flush_all 30 noreply = %+v, %v", cmd, err)
	}
}

func TestReadCommandOversized(t *testing.T) {
	const maxItem = 128
	big := strings.Repeat("v", maxItem+1)
	input := "set k 0 0 129\r\n" + big + "\r\nversion\r\n"
	r := newReader(strings.NewReader(input), 0)
	_, err := ReadCommand(r, maxItem)
	var pe *ProtoError
	if !errors.As(err, &pe) || pe.Fatal || !strings.Contains(pe.Resp, "too large") {
		t.Fatalf("oversized set: %v", err)
	}
	// The oversized block must have been swallowed: next command parses.
	cmd, err := ReadCommand(r, maxItem)
	if err != nil || cmd.Op != OpVersion {
		t.Fatalf("resync after oversized value: %+v, %v", cmd, err)
	}
}

func TestReadCommandTruncated(t *testing.T) {
	for _, input := range []string{
		"set k 0 0 10\r\nabc", // data block cut short
		"set k 0 0 3\r\nabc",  // missing terminator
		"get foo",             // command line without newline
	} {
		r := newReader(strings.NewReader(input), 0)
		_, err := ReadCommand(r, 0)
		if err == nil || err == io.EOF {
			t.Fatalf("ReadCommand(%q) = %v, want mid-frame error", input, err)
		}
	}
}

// FuzzReadCommand feeds arbitrary bytes through the parser: it must never
// panic, and everything it accepts must satisfy the command invariants.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("get foo bar\r\n"))
	f.Add([]byte("set k 7 0 5\r\nhello\r\nget k\r\n"))
	f.Add([]byte("cas k 0 0 2 99\r\nhi\r\n"))
	f.Add([]byte("incr k 123\r\ndecr k 1 noreply\r\n"))
	f.Add([]byte("stats\r\nversion\r\nquit\r\n"))
	f.Add([]byte("set k 0 0 1000000\r\n"))
	f.Add([]byte("\x00\xff\r\n\r\nget\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newReader(bytes.NewReader(data), 0)
		const maxItem = 1 << 16
		for i := 0; i < 100; i++ {
			cmd, err := ReadCommand(r, maxItem)
			if err != nil {
				var pe *ProtoError
				if errors.As(err, &pe) {
					if pe.Fatal {
						return
					}
					continue // resynchronized; keep parsing
				}
				return // transport-level: stream finished or broken
			}
			switch cmd.Op {
			case OpGet, OpGets:
				if len(cmd.Keys) == 0 {
					t.Fatalf("retrieval command with no keys: %+v", cmd)
				}
				for _, k := range cmd.Keys {
					if !validKey(k) {
						t.Fatalf("invalid key accepted: %q", k)
					}
				}
			case OpSet, OpAdd, OpReplace, OpCas:
				if !validKey(cmd.Key) {
					t.Fatalf("invalid key accepted: %q", cmd.Key)
				}
				if len(cmd.Data) > maxItem {
					t.Fatalf("oversized data accepted: %d bytes", len(cmd.Data))
				}
			case OpDelete, OpIncr, OpDecr:
				if !validKey(cmd.Key) {
					t.Fatalf("invalid key accepted: %q", cmd.Key)
				}
			}
		}
	})
}
