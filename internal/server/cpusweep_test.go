package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestRunCPUSweepSetsGOMAXPROCS: the -cpu sweep engine must actually vary
// GOMAXPROCS per entry — each callback observes its own requested value —
// and restore the previous setting when the sweep ends (or fails).
func TestRunCPUSweepSetsGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	var seen []int
	if err := RunCPUSweep([]int{1, 2, 3}, func(c int) error {
		got := runtime.GOMAXPROCS(0)
		if got != c {
			t.Errorf("sweep entry %d ran at GOMAXPROCS %d", c, got)
		}
		seen = append(seen, got)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("sweep ran %d entries, want 3", len(seen))
	}
	if got := runtime.GOMAXPROCS(0); got != prev {
		t.Fatalf("GOMAXPROCS left at %d after sweep, want restored %d", got, prev)
	}
	if err := RunCPUSweep([]int{0}, func(int) error { return nil }); err == nil {
		t.Fatal("sweep accepted cpu count 0")
	}
}

// TestBenchCPUSweepSchema drives a real (tiny) -cpu sweep through
// RunLoadgen + WriteBench and asserts the sweep contract on the artifact:
// every run records the GOMAXPROCS it was driven at, runs in a sweep group
// carry a scaling efficiency anchored at the fewest-cpus baseline, and the
// schema string advertises the current version.
func TestBenchCPUSweepSchema(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ht-clht-lb"})
	cfg := LoadgenConfig{
		Addr:     s.Addr().String(),
		Conns:    2,
		Pipeline: 4,
		Duration: 50 * time.Millisecond,
		Keys:     256,
		Mix:      workload.Mix{UpdatePct: 10},
		Seed:     7,
	}
	var runs []LoadgenResult
	sweep := []int{1, 2}
	if err := RunCPUSweep(sweep, func(c int) error {
		r, err := RunLoadgen(cfg)
		if err != nil {
			return err
		}
		runs = append(runs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if r.CPUs != sweep[i] {
			t.Fatalf("run %d recorded cpus=%d, want %d (GOMAXPROCS not threaded through)", i, r.CPUs, sweep[i])
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	if err := WriteBench(path, cfg, runs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "ascylib/bench-server/v7" {
		t.Fatalf("schema = %q, want ascylib/bench-server/v7", f.Schema)
	}
	if f.Schema != BenchSchema {
		t.Fatalf("schema = %q but BenchSchema = %q", f.Schema, BenchSchema)
	}
	if len(f.Runs) != len(sweep) {
		t.Fatalf("artifact has %d runs, want %d", len(f.Runs), len(sweep))
	}
	for i, r := range f.Runs {
		if r.CPUs != sweep[i] {
			t.Fatalf("artifact run %d cpus=%d, want %d", i, r.CPUs, sweep[i])
		}
		if r.ScalingEfficiency <= 0 {
			t.Fatalf("artifact run %d (cpus=%d) has no scaling efficiency; sweep groups must anchor at the cpus=%d baseline", i, r.CPUs, sweep[0])
		}
	}
	if e := f.Runs[0].ScalingEfficiency; e != 1.0 {
		t.Fatalf("baseline run efficiency = %v, want exactly 1.0", e)
	}

	// A single-point group (no sweep) must NOT claim an efficiency.
	single := []BenchRun{{Algo: "x", CPUs: 2, ThroughputOpsS: 100, Nodes: 1}}
	fillScalingEfficiency(single)
	if single[0].ScalingEfficiency != 0 {
		t.Fatalf("single-point run got efficiency %v, want 0 (no baseline measured)", single[0].ScalingEfficiency)
	}
	// Groups split on (algo, shards, pipeline, nodes): a 2-cpu run of a
	// different algo must not borrow another group's baseline.
	mixed := []BenchRun{
		{Algo: "a", CPUs: 1, ThroughputOpsS: 100, Nodes: 1},
		{Algo: "a", CPUs: 2, ThroughputOpsS: 150, Nodes: 1},
		{Algo: "b", CPUs: 2, ThroughputOpsS: 999, Nodes: 1},
	}
	fillScalingEfficiency(mixed)
	if mixed[1].ScalingEfficiency != 0.75 {
		t.Fatalf("2-cpu run efficiency = %v, want 0.75", mixed[1].ScalingEfficiency)
	}
	if mixed[2].ScalingEfficiency != 0 {
		t.Fatalf("algo-b run borrowed a baseline: efficiency %v, want 0", mixed[2].ScalingEfficiency)
	}
}
