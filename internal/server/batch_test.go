// Tests for the batched execution pipeline: framing equivalence (a batched
// parse is byte-for-byte the serial parse), execution equivalence (a batched
// server answers any pipelined stream with exactly the bytes the per-command
// server would), the single-clock-read invariant, and the SendGet empty-key
// regression.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// --- framing ------------------------------------------------------------

// batchShape is one batch slot flattened for comparison.
type batchShape struct {
	cmd     cmdShape
	errResp string
	fatal   bool
	noReply bool
}

// parseSerial drains a stream through ReadCommandInto, one command at a
// time — the reference sequence.
func parseSerial(data []byte, maxItem, limit int) []batchShape {
	r := newReader(bytes.NewReader(data), 0)
	var out []batchShape
	var cmd Command
	var sc Scratch
	for len(out) < limit {
		err := ReadCommandInto(r, maxItem, &cmd, &sc)
		if err != nil {
			var pe *ProtoError
			if errors.As(err, &pe) {
				out = append(out, batchShape{errResp: pe.Resp, fatal: pe.Fatal, noReply: pe.NoReply})
				if pe.Fatal {
					return out
				}
				continue
			}
			return out
		}
		out = append(out, batchShape{cmd: shapeOf(&cmd)})
	}
	return out
}

// parseBatched drains the same stream through repeated ReadBatchInto calls.
func parseBatched(data []byte, maxItem, maxBatch, limit int) []batchShape {
	r := newReader(bytes.NewReader(data), 0)
	var out []batchShape
	var b Batch
	for len(out) < limit {
		n, err := ReadBatchInto(r, maxItem, maxBatch, &b)
		for i := 0; i < n && len(out) < limit; i++ {
			e := &b.Entries[i]
			if e.Err != nil {
				out = append(out, batchShape{errResp: e.Err.Resp, fatal: e.Err.Fatal, noReply: e.Err.NoReply})
				if e.Err.Fatal {
					return out
				}
			} else {
				out = append(out, batchShape{cmd: shapeOf(&e.Cmd)})
			}
		}
		if err != nil {
			return out
		}
	}
	return out
}

func diffShapes(t *testing.T, serial, batched []batchShape) {
	t.Helper()
	if len(serial) != len(batched) {
		t.Fatalf("serial parsed %d entries, batched %d", len(serial), len(batched))
	}
	for i := range serial {
		s, b := serial[i], batched[i]
		if s.errResp != b.errResp || s.fatal != b.fatal || s.noReply != b.noReply {
			t.Fatalf("entry %d error mismatch: serial %+v, batched %+v", i, s, b)
		}
		if fmt.Sprintf("%+v", s.cmd) != fmt.Sprintf("%+v", b.cmd) {
			t.Fatalf("entry %d command mismatch:\n serial  %+v\n batched %+v", i, s.cmd, b.cmd)
		}
	}
}

// TestReadBatchMatchesSerial: for a representative pipelined stream — every
// verb, noreply forms, recoverable and fatal errors — the batched parse must
// produce exactly the serial parse's entry sequence, at every batch cap.
func TestReadBatchMatchesSerial(t *testing.T) {
	stream := []byte("get a\r\n" +
		"gets a b ccc\r\n" +
		"set k 7 0 5\r\nhello\r\n" +
		"add k 0 0 0\r\n\r\n" +
		"replace k 1 100 3 noreply\r\nxyz\r\n" +
		"cas k 0 0 2 99\r\nhi\r\n" +
		"bogus\r\n" +
		"get\r\n" +
		"delete k noreply\r\n" +
		"incr k 12\r\n" +
		"decr k 1\r\n" +
		"set big 0 0 999999\r\n" + string(bytes.Repeat([]byte("v"), 999999)) + "\r\n" +
		"flush_all 0\r\n" +
		"version\r\n" +
		"set k 0 bad 4\r\nabcd\r\n" + // recoverable: block discarded
		"quit\r\n" +
		"get after-quit\r\n")
	const maxItem = 1 << 16 // makes the 999999-byte set an oversized (recoverable) frame
	serial := parseSerial(stream, maxItem, 100)
	for _, cap := range []int{1, 2, 3, 7, 0} {
		batched := parseBatched(stream, maxItem, cap, 100)
		diffShapes(t, serial, batched)
	}
}

// TestReadBatchDrainsBuffered: with the whole stream buffered, one call
// must drain every complete frame; with the stream cut mid-frame, the batch
// must stop at the incomplete frame instead of blocking on it.
func TestReadBatchDrainsBuffered(t *testing.T) {
	stream := []byte("get a\r\nget b\r\nget c\r\nset k 0 0 3\r\nabc\r\nget d\r\n")
	r := newReader(bytes.NewReader(stream), 0)
	var b Batch
	n, err := ReadBatchInto(r, 0, 0, &b)
	if err != nil || n != 5 {
		t.Fatalf("ReadBatchInto = %d, %v; want all 5 complete frames", n, err)
	}

	// Cut inside the set's data block: the batch must deliver the three
	// complete gets and leave the partial storage frame for the next
	// (blocking) round rather than stalling this one.
	cut := bytes.Index(stream, []byte("abc")) + 1
	half := &halfThenBlockReader{data: stream[:cut]}
	r = newReader(half, 0)
	n, err = ReadBatchInto(r, 0, 0, &b)
	if err != nil || n != 3 {
		t.Fatalf("ReadBatchInto over cut stream = %d, %v; want 3", n, err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := string(b.Entries[i].Cmd.Keys[0]); got != want {
			t.Fatalf("entry %d key = %q, want %q", i, got, want)
		}
	}
	if half.blocked.Load() {
		t.Fatal("batch read blocked on the incomplete frame")
	}
}

// halfThenBlockReader serves its data in one read, then records (and fails)
// any further read — the test's stand-in for "would block on the network".
type halfThenBlockReader struct {
	data    []byte
	served  bool
	blocked atomic.Bool
}

func (r *halfThenBlockReader) Read(p []byte) (int, error) {
	if !r.served {
		r.served = true
		return copy(p, r.data), nil
	}
	r.blocked.Store(true)
	return 0, errors.New("unexpected blocking read")
}

// TestBatchShedsDataBuffers: a burst shape that ratchets many slots to
// large values must not pin MaxBatch × large-value bytes per connection —
// between rounds the batch sheds per-slot data buffers beyond the retention
// budget (slot 0, which serves the blocking first frame, is exempt, like
// the per-command path's single retained Scratch).
func TestBatchShedsDataBuffers(t *testing.T) {
	const valLen = 8 << 10
	val := strings.Repeat("v", valLen)
	var stream bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&stream, "set k%d 0 0 %d noreply\r\n%s\r\n", i, valLen, val)
	}
	var b Batch
	for round := 0; round < 3; round++ {
		r := newReader(bytes.NewReader(stream.Bytes()), 1<<20)
		for {
			if _, err := ReadBatchInto(r, 0, 0, &b); err != nil {
				break
			}
		}
	}
	b.shedData() // what the next round would do
	retained := int64(0)
	for i, sc := range b.scs {
		if i > 0 {
			retained += int64(cap(sc.dataBuf))
		}
	}
	// The budget plus at most one slot's overshoot.
	if max := int64(batchDataRetention + valLen); retained > max {
		t.Fatalf("non-first slots retain %d bytes of data buffers, want <= %d", retained, max)
	}
}

// FuzzReadBatch is FuzzReadCommand's differential sibling: for arbitrary
// bytes, the batched parse must equal the serial parse entry by entry —
// same commands, same recoverable errors in the same order, same fatal
// truncation point — at several batch caps.
func FuzzReadBatch(f *testing.F) {
	f.Add([]byte("get foo bar\r\nget baz\r\n"))
	f.Add([]byte("set k 7 0 5\r\nhello\r\nget k\r\nget k2\r\n"))
	f.Add([]byte("cas k 0 0 2 99\r\nhi\r\nbogus\r\ndelete k\r\n"))
	f.Add([]byte("incr k 123\r\ndecr k 1 noreply\r\nquit\r\nget x\r\n"))
	f.Add([]byte("set k 0 0 1000000\r\nget a\r\n"))
	f.Add([]byte("\x00\xff\r\n\r\nget\r\nflush_all 0\r\n"))
	f.Add([]byte("mrange a z 10\r\nmmin\r\nmmax\r\nmrange z a 1\r\n"))
	f.Add([]byte("mrange a z 0\r\nmrange a\r\nset k 0 0 2\r\nhi\r\nmrange k k 1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxItem = 1 << 16
		serial := parseSerial(data, maxItem, 200)
		for _, cap := range []int{1, 3, 0} {
			batched := parseBatched(data, maxItem, cap, 200)
			diffShapes(t, serial, batched)
		}
	})
}

// --- execution ----------------------------------------------------------

// collectResponses boots a server with the given batching cap, feeds it the
// raw stream over TCP (in chunks, exercising batch boundaries at arbitrary
// frame cuts), and returns every response byte until the server closes the
// connection (the streams end in quit or a fatal error).
func collectResponses(t *testing.T, algo string, shards, maxBatch int, stream []byte, chunk int) []byte {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", Algo: algo, Shards: shards, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	defer func() { s.Close(); <-done }()

	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if _, err := c.Write(stream[off:end]); err != nil {
				return
			}
		}
	}()
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("reading responses: %v", err)
	}
	return out
}

// genStream builds a randomized pipelined command stream: mixed verbs over a
// small hot keyspace, noreply forms, expired stores, flush_all, and
// malformed frames mid-batch. Everything emitted is deterministic to
// execute (no stats/uptime, no wall-clock-sensitive expiry), so two servers
// fed the same stream must answer identically byte for byte.
func genStream(rng *xrand.State, n int, withFatal bool) []byte {
	var b strings.Builder
	key := func() string { return fmt.Sprintf("k%d", rng.Uint64n(24)) }
	noreply := func() string {
		if rng.Uint64n(4) == 0 {
			return " noreply"
		}
		return ""
	}
	for i := 0; i < n; i++ {
		switch rng.Uint64n(12) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "get %s\r\n", key())
		case 3:
			fmt.Fprintf(&b, "gets %s %s %s\r\n", key(), key(), key())
		case 4, 5:
			val := strings.Repeat("v", int(rng.Uint64n(80)))
			fmt.Fprintf(&b, "set %s %d 0 %d%s\r\n%s\r\n", key(), rng.Uint64n(100), len(val), noreply(), val)
		case 6:
			fmt.Fprintf(&b, "add %s 0 0 2%s\r\nhi\r\n", key(), noreply())
		case 7:
			fmt.Fprintf(&b, "replace %s 0 -1 2\r\nxx\r\n", key()) // stored already expired
		case 8:
			fmt.Fprintf(&b, "cas %s 0 0 2 %d\r\nok\r\n", key(), rng.Uint64n(64))
		case 9:
			fmt.Fprintf(&b, "delete %s%s\r\n", key(), noreply())
		case 10:
			if rng.Uint64n(2) == 0 {
				fmt.Fprintf(&b, "incr %s %d\r\n", key(), rng.Uint64n(1000))
			} else {
				fmt.Fprintf(&b, "decr %s 1%s\r\n", key(), noreply())
			}
		case 11:
			// Protocol noise, recoverable: an unknown verb, a keyless
			// get, a malformed (but size-parseable) storage line whose
			// block must be swallowed, or a flush_all.
			switch rng.Uint64n(4) {
			case 0:
				b.WriteString("bogus line\r\n")
			case 1:
				b.WriteString("get\r\n")
			case 2:
				fmt.Fprintf(&b, "set %s 0 notanumber 3%s\r\nxyz\r\n", key(), noreply())
			case 3:
				b.WriteString("flush_all 0\r\n")
			}
		}
	}
	if withFatal {
		// A storage line whose size field cannot be parsed is fatal: both
		// servers must truncate the stream at exactly this point.
		b.WriteString("set k 0 0 nosize\r\n")
	}
	b.WriteString("quit\r\n")
	return []byte(b.String())
}

// TestBatchedExecutionMatchesSerial is the PR's differential gate: for
// randomized pipelined streams, a batching server must produce responses
// byte-identical to the per-command (MaxBatch 1) server — same hits, same
// CAS tokens, same error lines, same noreply suppression, same truncation
// on fatal errors — across the servable backends the CI smoke uses, at
// several shard counts and write chunkings.
func TestBatchedExecutionMatchesSerial(t *testing.T) {
	cases := []struct {
		algo   string
		shards int
	}{
		{"ht-clht-lb", 1},
		{"ll-lazy", 4},
		{"sl-fraser-opt", 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%d", tc.algo, tc.shards), func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				rng := xrand.New(seed)
				stream := genStream(rng, 150, seed == 4)
				// Serial reference: one whole-stream write. Batched: both
				// a whole-stream write (maximal batches) and a dribbled
				// one (batch boundaries land mid-frame).
				want := collectResponses(t, tc.algo, tc.shards, 1, stream, len(stream))
				for _, chunk := range []int{len(stream), 501} {
					got := collectResponses(t, tc.algo, tc.shards, 0, stream, chunk)
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d chunk %d: batched responses differ from serial\nserial  (%d bytes): %q\nbatched (%d bytes): %q",
							seed, chunk, len(want), want, len(got), got)
					}
				}
			}
		})
	}
}

// --- clocks -------------------------------------------------------------

// TestBatchSingleClockRead asserts the amortization the profile used to
// disprove: one pinned batch — however many commands, gets, mutations, and
// reaps it contains — reads the store clock exactly once, at Pin(). (The
// wire benchmarks in wire_bench_test.go are the profile-level view; this
// pins the invariant exactly.)
func TestBatchSingleClockRead(t *testing.T) {
	s, err := New(Config{Algo: "ht-clht-lb", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	base := time.Now().Unix()
	s.store.now = func() int64 { reads.Add(1); return base }

	// A burst with every command class, including an expired-item reap.
	p := s.store.Pin()
	s.store.Set(p, []byte("dead"), 0, -1, []byte("x"))
	p.Unpin()
	reads.Store(0)

	var stream bytes.Buffer
	stream.WriteString("get dead\r\n") // hits the reap path
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&stream, "get k%d\r\n", i%8)
	}
	stream.WriteString("set k0 0 100 2\r\nhi\r\nincr n 1\r\ndelete k1\r\nget k0 k2 k3\r\n")
	br := bufio.NewReaderSize(bytes.NewReader(stream.Bytes()), 1<<16)
	var b Batch
	n, err := ReadBatchInto(br, 0, 0, &b)
	if err != nil || n != 45 {
		t.Fatalf("batch = %d, %v; want 45", n, err)
	}
	bw := newWriter(io.Discard, 0)
	s.executeBatch(&b, bw, s.acquireWireStats())
	if got := reads.Load(); got != 1 {
		t.Fatalf("a %d-command batch read the clock %d times, want exactly 1", n, got)
	}
}

// --- client -------------------------------------------------------------

// TestClientSendGetNoKeys is the SendGet regression test: an empty key list
// must be rejected before anything hits the wire (it used to emit a bare
// "get\r\n" malformed frame), and the connection must stay usable.
func TestClientSendGetNoKeys(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", Algo: "ht-clht-lb"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	defer func() { s.Close(); <-done }()

	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendGet(false); err == nil {
		t.Fatal("SendGet with no keys did not error")
	}
	if _, err := c.GetMulti(); err == nil {
		t.Fatal("GetMulti with no keys did not error")
	}
	// Nothing malformed was written: the connection still serves.
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if e, ok, err := c.Get("k"); err != nil || !ok || string(e.Data) != "v" {
		t.Fatalf("connection unusable after rejected SendGet: %v %v %q", ok, err, e.Data)
	}
	if t0 := s.wireTotals(); t0.protoErrors != 0 {
		t.Fatalf("server saw %d protocol errors", t0.protoErrors)
	}
}
