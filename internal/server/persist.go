// Store persistence: the consistent-cut snapshot writer and the warm-boot
// loader over internal/snapshot's file format.
//
// SnapshotTo composes the format with the store's existing safety
// machinery instead of inventing new locking: each shard's items are
// enumerated through the facade's Snapshot capability (core.Snapshotter —
// a single traversal, one epoch bracket where the family recycles) under a
// shard-local store pin, so value blocks cannot be recycled mid-copy and
// serving continues on every other shard — and, for the lock-free
// families, on the shard being walked. Liveness is judged at each shard
// pin's single timestamp, the same rule every read path uses; expiry is
// stored as the item's absolute wallclock ExpireAt, so TTLs survive a
// restart byte-for-byte.
//
// The cut this yields is per-key linearizable: every record was that key's
// live value at some instant inside the snapshot window (the walk observes
// each entry once, under the epoch that keeps it coherent). It is not a
// cross-key atomic cut — the same contract the store already documents for
// RangeScan and the cluster layer documents across nodes — and it is
// exactly what the linearizable-cut differential test asserts.
package server

import (
	"fmt"
	"io"

	"repro/internal/snapshot"
)

// loadBatch bounds how many records load under one pin before the pin is
// recycled: boot-time loading has no concurrent readers to stall, but
// cycling the epoch keeps any one allocator lease bounded all the same.
const loadBatch = 4096

// SnapshotTo writes a consistent cut of the live keyspace to w in the
// internal/snapshot format and returns how many items it wrote. Serving
// continues while the cut is taken: the walk holds no store-wide lock,
// only one shard's epoch at a time.
func (s *Store) SnapshotTo(w io.Writer) (items uint64, err error) {
	sw, err := snapshot.NewWriter(w, snapshot.Header{
		Algo:        s.algo,
		Shards:      uint32(s.sm.NumShards()),
		Ordered:     s.sm.Ordered(),
		CreatedUnix: s.now(),
	})
	if err != nil {
		return 0, err
	}
	for sh := 0; sh < s.sm.NumShards(); sh++ {
		if err := s.snapshotShard(sw, sh); err != nil {
			return sw.Items(), err
		}
	}
	if err := sw.Close(); err != nil {
		return sw.Items(), err
	}
	return sw.Items(), nil
}

// snapshotShard walks one shard under its own pin (one epoch bracket, one
// clock read) and appends its live items.
func (s *Store) snapshotShard(sw *snapshot.Writer, sh int) error {
	p := s.Pin()
	defer p.Unpin()
	p.enter(sh)
	var werr error
	s.sm.Shard(sh).Snapshot(func(k string, it Item) bool {
		if !s.live(it, p.now) {
			return true // dead at the cut's instant: not part of the cut
		}
		// Add copies the key and data into the writer's block buffer
		// while the shard epoch is still open, so the blocks are
		// coherent even if the entry is removed and recycled right
		// after the yield.
		if err := sw.Add([]byte(k), it.Flags, it.ExpireAt, it.Data); err != nil {
			werr = err
			return false
		}
		return true
	})
	return werr
}

// LoadResult reports what a LoadFrom rebuilt.
type LoadResult struct {
	Header  snapshot.Header
	Loaded  uint64 // items inserted into the store
	Expired uint64 // records skipped: already past expiry at load time
}

// LoadFrom rebuilds the store from a snapshot stream. Records whose
// absolute expiry predates the load are dead on arrival: they are never
// inserted, so they charge neither the reaper nor the loaded count — they
// are tallied separately in Expired. Loaded items get fresh CAS tokens
// (tokens are unique per store lifetime, not per key history; a client
// holding a pre-restart token correctly fails its cas). The stream is
// validated as it is consumed; on a corruption error the store retains
// whatever loaded before it, so callers wanting all-or-nothing should
// verify first (snapshot.VerifyFile) — the server's boot path does.
func (s *Store) LoadFrom(r io.Reader) (LoadResult, error) {
	sr, err := snapshot.NewReader(r)
	if err != nil {
		return LoadResult{}, err
	}
	res := LoadResult{Header: sr.Header()}
	if want := sr.Header().Ordered; want != s.sm.Ordered() {
		return res, fmt.Errorf("snapshot ordered=%v but store ordered=%v (key routing differs; refusing to load)", want, s.sm.Ordered())
	}
	now := s.now()
	p := s.Pin()
	defer func() { p.Unpin() }()
	inBatch := 0
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		if rec.ExpireAt != 0 && rec.ExpireAt <= now {
			res.Expired++
			continue
		}
		if inBatch++; inBatch > loadBatch {
			p.Unpin()
			p = s.Pin()
			inBatch = 1
		}
		sh, h := s.sm.RouteBytes(rec.Key)
		it := Item{
			Flags:    rec.Flags,
			Data:     p.alloc(sh, rec.Data),
			CAS:      s.nextCAS(),
			ExpireAt: rec.ExpireAt,
		}
		var retired []byte
		replaced := false
		s.sm.UpdateBytesHashed(sh, h, rec.Key, func(old Item, present bool) (Item, bool) {
			retired = nil
			replaced = present
			if present {
				// Duplicate key in the stream: last record wins,
				// the earlier block goes back to the pool — and
				// Loaded stays a distinct-key count, which is what
				// the stats report against recovered keys.
				retired = old.Data
			}
			return it, true
		})
		p.free(sh, retired)
		if !replaced {
			res.Loaded++
		}
	}
}
