package server

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServerCfg boots a server with an explicit config (loopback ephemeral
// port) and returns it with a cleanup.
func startServerCfg(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServerShardedEndToEnd drives the full command surface against sharded
// servers — a hash table and a list backend, 4-way — and checks the
// aggregation points: items and flush_all must behave store-wide even
// though every key lives in one of four independent structures.
func TestServerShardedEndToEnd(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ll-lazy"} {
		t.Run(algo, func(t *testing.T) {
			s := startServerCfg(t, Config{Algo: algo, Capacity: 1 << 10, Shards: 4})
			if got := s.Store().Shards(); got != 4 {
				t.Fatalf("Shards = %d, want 4", got)
			}
			c := dialT(t, s)
			const n = 200
			for i := 0; i < n; i++ {
				if err := c.Set(fmt.Sprintf("key-%d", i), uint32(i), 0, []byte(fmt.Sprintf("value-%d", i))); err != nil {
					t.Fatalf("Set %d: %v", i, err)
				}
			}
			for i := 0; i < n; i++ {
				e, ok, err := c.Get(fmt.Sprintf("key-%d", i))
				if err != nil || !ok || string(e.Data) != fmt.Sprintf("value-%d", i) || e.Flags != uint32(i) {
					t.Fatalf("Get %d = %+v, %v, %v", i, e, ok, err)
				}
			}
			st, err := c.Stats()
			if err != nil {
				t.Fatalf("Stats: %v", err)
			}
			if st["shards"] != "4" {
				t.Fatalf("stats shards = %q, want 4", st["shards"])
			}
			if st["curr_items"] != strconv.Itoa(n) {
				t.Fatalf("curr_items = %q, want %d", st["curr_items"], n)
			}
			// Arithmetic and delete route to the right shard.
			c.Set("ctr", 0, 0, []byte("5"))
			if v, ok, _ := c.Incr("ctr", 10); !ok || v != 15 {
				t.Fatalf("Incr = %d, %v", v, ok)
			}
			if ok, _ := c.Delete("key-0"); !ok {
				t.Fatal("Delete missed")
			}
			// flush_all must kill every shard's items at once.
			if err := c.FlushAll(); err != nil {
				t.Fatalf("FlushAll: %v", err)
			}
			for i := 1; i < n; i++ {
				if _, ok, _ := c.Get(fmt.Sprintf("key-%d", i)); ok {
					t.Fatalf("key-%d survived flush_all", i)
				}
			}
			if got := s.Store().Items(); got != 0 {
				t.Fatalf("items after immediate flush sweep = %d, want 0", got)
			}
			// The store stays serviceable after the sweep.
			if err := c.Set("after", 0, 0, []byte("alive")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := c.Get("after"); !ok {
				t.Fatal("post-flush store is dead")
			}
		})
	}
}

// TestServerShardedConcurrentClients is the sharded analog of the
// concurrent-clients test, on a list backend where sharding is the whole
// point: correctness must be indistinguishable from the single-structure
// server.
func TestServerShardedConcurrentClients(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ll-lazy", Capacity: 1 << 10, Shards: 8})
	const clients, rounds = 8, 120
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("c%d-k%d", i, r%20)
				if err := c.Set(key, 0, 0, []byte("payload")); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.Get(key); err != nil {
					errs <- err
					return
				}
				if r%10 == 0 {
					if _, err := c.Delete(key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// A cross-connection counter stays exact on a sharded list.
	c := dialT(t, s)
	c.Set("shared", 0, 0, []byte("0"))
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				return
			}
			defer cl.Close()
			for n := 0; n < 100; n++ {
				cl.Incr("shared", 1)
			}
		}()
	}
	cwg.Wait()
	if v, ok, _ := c.Incr("shared", 0); !ok || v != 400 {
		t.Fatalf("shared counter = %d, %v; want 400", v, ok)
	}
}

// TestStoreShardedValuePoolsIndependent: value blocks retire into the pool
// of the shard that owns the key, and the aggregate counters balance across
// a churn that touches every shard.
func TestStoreShardedValuePools(t *testing.T) {
	st, err := NewStore("ht-clht-lb", 256, true, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'x'}, 100)
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("k%d", i%64))
		p := st.Pin()
		st.Set(p, key, 0, 0, val)
		p.Unpin()
	}
	bs := st.BufStats()
	if bs.Frees > bs.Allocs {
		t.Fatalf("more frees than allocs (double free): %+v", bs)
	}
	if bs.Garbage < 0 {
		t.Fatalf("negative garbage (double hand-out): %+v", bs)
	}
	if bs.Reused == 0 && !raceEnabled {
		t.Fatalf("no block reuse after 3000 overwrites: %+v", bs)
	}
}

// TestStoreReapSurvivesPanic is the regression test for the stuck-reaper
// bug: reapDead used to clear the per-store reaping flag without defer, so
// any panic on the reap path (the value arena's exhaustion panic surfaces
// through UpdateBytes; here an injected clock stands in for it) left the
// flag true forever and silently disabled expired-item reaping. With the
// deferred clear, a reap that panics must leave the reaper usable.
func TestStoreReapSurvivesPanic(t *testing.T) {
	st, err := NewStore("ht-clht-lb", 64, true, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1000)
	st.now = func() int64 { return now }
	p := st.Pin()
	key := []byte("ttl")
	st.Set(p, key, 0, 100, []byte("soon-dead"))
	it, ok := st.Get(p, key)
	if !ok {
		t.Fatal("stored item invisible")
	}
	p.Unpin()
	now += 200 // expire it

	// Inject a panic into the reap path, after the reaper flag is taken.
	st.reapHook = func() { panic("injected reap-path panic") }
	p = st.Pin()
	sh, h := st.sm.RouteBytes(key)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not fire")
			}
		}()
		st.reapDead(p, sh, h, key, it.CAS)
	}()
	p.Unpin()

	// The corpse is still there (the reap died), but the reaper must not
	// be: a later read has to win the flag and collect it. Re-pin so the
	// read judges liveness at the advanced clock (pins fix their timestamp
	// at creation).
	st.reapHook = nil
	if st.Items() != 1 {
		t.Fatalf("items = %d, want the corpse still present", st.Items())
	}
	p = st.Pin()
	defer p.Unpin()
	if _, ok := st.Get(p, key); ok {
		t.Fatal("expired item visible")
	}
	if st.Items() != 0 {
		t.Fatalf("reaping permanently disabled after panic: items = %d, want 0", st.Items())
	}
}

// statsDelta runs one step against a fresh connection and returns the
// change in every counter named in want.
func statsDelta(t *testing.T, c *Client, step func(), keys []string) map[string]int64 {
	t.Helper()
	before, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats before: %v", err)
	}
	step()
	after, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats after: %v", err)
	}
	d := map[string]int64{}
	for _, k := range keys {
		b, _ := strconv.ParseInt(before[k], 10, 64)
		a, ok := after[k]
		if !ok {
			t.Fatalf("stat %q missing", k)
		}
		av, _ := strconv.ParseInt(a, 10, 64)
		d[k] = av - b
	}
	return d
}

// TestServerStatsCountEveryOutcomeOnce is the stats-drift regression test:
// every command class has a cmd_* counter, and every single command lands
// in exactly one hit/miss (or equivalent outcome) bucket — including the
// previously uncounted delete commands and non-numeric incr/decr.
func TestServerStatsCountEveryOutcomeOnce(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ht-clht-lb", Capacity: 1 << 10})
	c := dialT(t, s)
	// Fixtures.
	if err := c.Set("num", 0, 0, []byte("10")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("text", 0, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}

	counterKeys := []string{
		"cmd_get", "cmd_set", "cmd_delete", "cmd_incr", "cmd_decr", "cmd_flush",
		"get_hits", "get_misses", "delete_hits", "delete_misses",
		"incr_hits", "incr_misses", "decr_hits", "decr_misses",
		"cas_hits", "cas_misses", "cas_badval",
	}
	for _, tc := range []struct {
		name string
		step func()
		want map[string]int64
	}{
		{"get hit", func() { c.Get("num") },
			map[string]int64{"cmd_get": 1, "get_hits": 1}},
		{"get miss", func() { c.Get("absent") },
			map[string]int64{"cmd_get": 1, "get_misses": 1}},
		{"multi-get mixed", func() { c.GetMulti("num", "absent", "text") },
			map[string]int64{"cmd_get": 1, "get_hits": 2, "get_misses": 1}},
		{"set", func() { c.Set("num", 0, 0, []byte("10")) },
			map[string]int64{"cmd_set": 1}},
		{"delete hit", func() { c.Set("victim", 0, 0, []byte("v")); c.Delete("victim") },
			map[string]int64{"cmd_set": 1, "cmd_delete": 1, "delete_hits": 1}},
		{"delete miss", func() { c.Delete("victim") },
			map[string]int64{"cmd_delete": 1, "delete_misses": 1}},
		{"incr hit", func() { c.Incr("num", 1) },
			map[string]int64{"cmd_incr": 1, "incr_hits": 1}},
		{"incr miss", func() { c.Incr("absent", 1) },
			map[string]int64{"cmd_incr": 1, "incr_misses": 1}},
		{"incr non-numeric counts as a hit, once", func() { c.Incr("text", 1) },
			map[string]int64{"cmd_incr": 1, "incr_hits": 1}},
		{"decr hit", func() { c.Decr("num", 1) },
			map[string]int64{"cmd_decr": 1, "decr_hits": 1}},
		{"decr miss", func() { c.Decr("absent", 1) },
			map[string]int64{"cmd_decr": 1, "decr_misses": 1}},
		{"decr non-numeric counts as a hit, once", func() { c.Decr("text", 1) },
			map[string]int64{"cmd_decr": 1, "decr_hits": 1}},
		{"cas stored", func() {
			e, _, _ := c.Gets("num")
			c.Cas("num", 0, 0, []byte("10"), e.CAS)
		}, map[string]int64{"cmd_get": 1, "get_hits": 1, "cmd_set": 1, "cas_hits": 1}},
		{"cas badval", func() { c.Cas("num", 0, 0, []byte("x"), 999999) },
			map[string]int64{"cmd_set": 1, "cas_badval": 1}},
		{"cas miss", func() { c.Cas("absent", 0, 0, []byte("x"), 1) },
			map[string]int64{"cmd_set": 1, "cas_misses": 1}},
		{"flush_all", func() { c.FlushAll() },
			map[string]int64{"cmd_flush": 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := statsDelta(t, c, tc.step, counterKeys)
			for k, want := range tc.want {
				if d[k] != want {
					t.Errorf("%s delta = %d, want %d (full delta %v)", k, d[k], want, d)
				}
			}
			// Exactly-once accounting: nothing else may have moved.
			for k, got := range d {
				if _, expected := tc.want[k]; !expected && got != 0 {
					t.Errorf("unexpected %s delta = %d (full delta %v)", k, got, d)
				}
			}
		})
	}
}

// rawExchange writes one command over a raw connection and reads the
// response until a line is complete.
func rawExchange(t *testing.T, conn net.Conn, cmd string) string {
	t.Helper()
	if _, err := conn.Write([]byte(cmd)); err != nil {
		t.Fatalf("write %q: %v", cmd, err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	var got strings.Builder
	for !strings.HasSuffix(got.String(), "\r\n") {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read after %q: %v (got %q)", cmd, err, got.String())
		}
		got.Write(buf[:n])
	}
	return got.String()
}

// TestFlushAllDelayBoundary pins the flush_all delay validation at the
// boundary: 0 and 1 are accepted, a negative delay is rejected with
// CLIENT_ERROR — it must never reach the store, where a past epoch with a
// fresh CAS watermark would instantly kill every current item.
func TestFlushAllDelayBoundary(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ht-clht-lb", Capacity: 1 << 10})
	now := time.Now().Unix()
	s.Store().now = func() int64 { return now }
	c := dialT(t, s)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	c.Set("survivor", 0, 0, []byte("v"))
	if got := rawExchange(t, conn, "flush_all -1\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("flush_all -1 = %q, want CLIENT_ERROR", got)
	}
	// The rejected flush must not have scheduled an epoch.
	if _, ok, _ := c.Get("survivor"); !ok {
		t.Fatal("rejected flush_all -1 still killed items")
	}
	if got := rawExchange(t, conn, "flush_all 1\r\n"); got != "OK\r\n" {
		t.Fatalf("flush_all 1 = %q, want OK", got)
	}
	// Delay 1: alive this second, dead the next.
	if _, ok, _ := c.Get("survivor"); !ok {
		t.Fatal("item died before the 1s flush delay elapsed")
	}
	now += 1
	if _, ok, _ := c.Get("survivor"); ok {
		t.Fatal("item survived past the 1s flush epoch")
	}
	c.Set("second", 0, 0, []byte("v"))
	if got := rawExchange(t, conn, "flush_all 0\r\n"); got != "OK\r\n" {
		t.Fatalf("flush_all 0 = %q, want OK", got)
	}
	if _, ok, _ := c.Get("second"); ok {
		t.Fatal("item survived flush_all 0")
	}
}

// TestIdleConnectionReclaimed is the idle-timeout e2e test: a client that
// goes silent must have its connection (goroutine, accept-pool slot) closed
// by the server after IdleTimeout, while a client with live traffic — even
// traffic slower than the timeout would allow if it ever went fully idle —
// stays connected.
func TestIdleConnectionReclaimed(t *testing.T) {
	s := startServerCfg(t, Config{
		Algo:        "ht-clht-lb",
		Capacity:    1 << 10,
		IdleTimeout: 150 * time.Millisecond,
	})
	// Active client: keeps issuing requests with gaps below the timeout.
	active := dialT(t, s)
	if err := active.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Silent client: connects, proves it is served, then never sends again.
	silent, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	if got := rawExchange(t, silent, "version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("version = %q", got)
	}
	// No wait for currConns == 2 here: on a slow machine the silent
	// connection may be reclaimed before we would observe it, which is
	// exactly the behavior under test.

	deadline := time.Now().Add(5 * time.Second)
	for s.currConns.Load() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("silent connection not reclaimed: %d conns", s.currConns.Load())
		}
		// Keep the active connection busy at a sub-timeout cadence.
		if _, _, err := active.Get("k"); err != nil {
			t.Fatalf("active client died: %v", err)
		}
		time.Sleep(40 * time.Millisecond)
	}
	// The reclaimed one was the silent one: the active client still works.
	if _, ok, err := active.Get("k"); err != nil || !ok {
		t.Fatalf("active client after idle reap: %v %v", ok, err)
	}
	// And the silent socket is dead: the next read reports closure.
	silent.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := silent.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent connection still open after idle timeout")
	}
}

// TestLoadgenReportsShards: the generator picks the shard count up from the
// server's stats and carries it into the BENCH run.
func TestLoadgenReportsShards(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ll-lazy", Capacity: 1 << 10, Shards: 4})
	res, err := RunLoadgen(LoadgenConfig{
		Addr:     s.Addr().String(),
		Conns:    2,
		Pipeline: 4,
		Duration: 100 * time.Millisecond,
		Keys:     256,
	})
	if err != nil {
		t.Fatalf("RunLoadgen: %v", err)
	}
	if res.Algo != "ll-lazy" || res.Shards != 4 {
		t.Fatalf("loadgen saw algo=%q shards=%d, want ll-lazy/4", res.Algo, res.Shards)
	}
	if b := BenchRunOf(res); b.Shards != 4 {
		t.Fatalf("BenchRun shards = %d, want 4", b.Shards)
	}
}
