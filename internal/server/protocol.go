// Package server puts the library on the wire: a memcached-text-protocol
// server over the typed facades, so any registered algorithm — CLHT, the
// Fraser skip list, the Harris list, BST-TK, … — can front real network
// traffic. The paper names memcached's hash table as a canonical CSDS
// deployment (§1, §7); this package is that deployment, end to end.
//
// The layers, bottom up:
//
//   - protocol.go — framing: ReadCommandInto parses one request (command
//     line plus optional data block) from a buffered stream into reused
//     per-connection scratch, tolerating frames split across arbitrary read
//     boundaries and resynchronizing after malformed lines. The steady-state
//     parse performs no heap allocation: keys point into the read buffer
//     (or retained scratch) and numbers are parsed in place. ReadBatchInto
//     drains every complete frame a pipelining client has already buffered
//     into one reused Batch — the free batch the server amortizes over.
//   - store.go — memcached item semantics (flags, CAS tokens, lazy
//     expiry, incr/decr) over ascylib.StringMap, i.e. over any registered
//     structure, with value blocks recycled through SSMEM epochs. Pins
//     capture the clock once and carry the shard-grouped GetBatch scratch.
//   - server.go — the TCP front: a sharded-accept worker pool, one
//     goroutine per connection, per-connection read/write buffering, and
//     pipelining: requests execute in batches under a single store pin
//     (epochs, pin-pool traffic, and clock reads amortize across the
//     burst), and responses are flushed only when the input buffer runs
//     dry, so a burst of n requests costs O(1) flushes, not n.
//   - client.go — a minimal client for the same protocol, with explicit
//     send/receive halves so callers can pipeline.
//   - loadgen.go — a closed-loop pipelined load generator driving any
//     memcached-protocol endpoint with the workload package's mixes,
//     recording per-op latency percentiles; itself allocation-free per
//     operation so client-side GC pauses cannot pollute the samples.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Protocol limits. MaxKeyLen is the memcached limit; the line limit bounds
// multi-get command lines (a few hundred max-length keys).
const (
	MaxKeyLen          = 250
	MaxCommandLine     = 1 << 14 // 16 KiB
	DefaultMaxItemSize = 1 << 20 // 1 MiB values
	// MaxRangeKeys caps how many entries one mrange may return. The client
	// asks for a limit; the server clamps it here, so a scan can never stage
	// an unbounded response no matter what the wire asks for.
	MaxRangeKeys = 1000
)

// Op enumerates the protocol commands the server speaks.
type Op uint8

// The commands of the memcached text protocol served here.
const (
	OpGet Op = iota
	OpGets
	OpSet
	OpAdd
	OpReplace
	OpCas
	OpDelete
	OpIncr
	OpDecr
	OpStats
	OpVersion
	OpFlushAll
	OpQuit
	// The ordered-keyspace extension (served only with Config.Ordered):
	// "mrange <lo> <hi> <limit>" enumerates lo <= key <= hi in lexicographic
	// order, framed exactly like a multi-get response (VALUE stanzas, END);
	// "mmin" / "mmax" return the extreme entry the same way.
	OpMRange
	OpMMin
	OpMMax
	// The persistence extension (served only with Config.SnapshotPath):
	// "msnap" takes a snapshot to the configured file — memcached's
	// bgsave analogue — answering OK on success.
	OpMSnap
)

var opNames = [...]string{
	OpGet: "get", OpGets: "gets", OpSet: "set", OpAdd: "add",
	OpReplace: "replace", OpCas: "cas", OpDelete: "delete", OpIncr: "incr",
	OpDecr: "decr", OpStats: "stats", OpVersion: "version",
	OpFlushAll: "flush_all", OpQuit: "quit",
	OpMRange: "mrange", OpMMin: "mmin", OpMMax: "mmax",
	OpMSnap: "msnap",
}

// String returns the wire verb.
func (o Op) String() string { return opNames[o] }

// Command is one parsed request. Its byte-slice fields point into the
// connection's read buffer or the Scratch it was parsed with, so they are
// valid only until the next ReadCommandInto on the same connection — the
// request loop fully executes each command before reading the next, and the
// store copies what it retains, so nothing ever aliases a dead buffer.
type Command struct {
	Op Op
	// Keys holds the keys of a retrieval command (get/gets).
	Keys [][]byte
	// Key is the single key of a storage/arithmetic/delete command.
	Key []byte
	// Flags, Exptime, and Data belong to storage commands; Data is the
	// value block, already stripped of its trailing CRLF.
	Flags   uint32
	Exptime int64
	Data    []byte
	// CasID is the compare token of a cas command.
	CasID uint64
	// Delta is the incr/decr operand.
	Delta uint64
	// NoReply suppresses the response line.
	NoReply bool
}

// reset clears the public fields for reuse.
func (c *Command) reset() {
	*c = Command{}
}

// Scratch is the retained per-connection parse state: the split-fields
// table, a copy buffer for storage-command keys (which would otherwise be
// invalidated by reading the data block), and the grow-only data-block
// buffer. One Scratch per connection makes the steady-state parse
// allocation-free.
type Scratch struct {
	fields  [][]byte
	keyBuf  [MaxKeyLen]byte
	dataBuf []byte
	keys    [][]byte
}

// ProtoError is a protocol-level failure. Resp is the full response line to
// send the client (without CRLF); Fatal means the stream cannot be
// resynchronized and the connection must close. Non-fatal errors leave the
// reader positioned at the next command line — for storage commands that
// means the data block announced by the (parseable) size field has been
// consumed, so one malformed request can never smuggle its payload into
// the command stream. NoReply is set when the failing command line asked
// for noreply: the server then suppresses the error response too, keeping
// noreply pipelines aligned (as memcached does).
type ProtoError struct {
	Resp    string
	Fatal   bool
	NoReply bool
}

// Error implements error.
func (e *ProtoError) Error() string { return e.Resp }

func clientErr(format string, args ...any) *ProtoError {
	return &ProtoError{Resp: "CLIENT_ERROR " + fmt.Sprintf(format, args...)}
}

// ErrUnknownCommand is the bare-"ERROR" response of the protocol.
var ErrUnknownCommand = &ProtoError{Resp: "ERROR"}

// readLine reads one CRLF-terminated line, rejecting lines longer than
// MaxCommandLine. On an overlong line it discards through the newline so
// the stream stays framed, and returns a non-fatal ProtoError.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Discard the rest of the oversized line, then report.
		for err == bufio.ErrBufferFull {
			_, err = r.ReadSlice('\n')
		}
		if err != nil {
			return nil, fatalIO(err)
		}
		return nil, clientErr("command line too long")
	}
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fatalIO(err)
	}
	if len(line) > MaxCommandLine {
		// The buffer may be larger than the protocol limit; enforce the
		// limit itself. The newline was already consumed, so the stream
		// stays framed.
		return nil, clientErr("command line too long")
	}
	// Strip the LF and an optional preceding CR.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// fatalIO wraps a transport error; the connection is beyond recovery.
func fatalIO(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// validKey reports whether k is a legal memcached key: 1..MaxKeyLen bytes,
// no whitespace or control characters.
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 0x7f {
			return false
		}
	}
	return true
}

// splitFields splits line on ASCII whitespace into dst (reused), the
// allocation-free analog of strings.Fields.
func splitFields(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	i := 0
	for i < len(line) {
		for i < len(line) && isSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !isSpace(line[i]) {
			i++
		}
		if i > start {
			dst = append(dst, line[start:i])
		}
	}
	return dst
}

func isSpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// parseU64 parses an unsigned decimal without allocating. No length cap:
// zero-padded numerals of any length are legal (as with strconv); the
// overflow check bounds the value, and the command-line limit bounds the
// input.
func parseU64(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false // overflow
		}
		v = v*10 + d
	}
	return v, true
}

// parseI64 parses a signed decimal without allocating.
func parseI64(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseU64(b)
	if !ok {
		return 0, false
	}
	if neg {
		if v > 1<<63 {
			return 0, false
		}
		return -int64(v), true
	}
	if v > 1<<63-1 {
		return 0, false
	}
	return int64(v), true
}

var noreplyBytes = []byte("noreply")

// ReadCommand parses the next request from r into a freshly allocated
// Command with its own Scratch. It is the convenience form for tests and
// one-shot use; the server's request loop uses ReadCommandInto with
// per-connection state. The returned command's byte fields are valid until
// the next read from r.
func ReadCommand(r *bufio.Reader, maxItem int) (*Command, error) {
	cmd := &Command{}
	if err := ReadCommandInto(r, maxItem, cmd, &Scratch{}); err != nil {
		return nil, err
	}
	return cmd, nil
}

// ReadCommandInto parses the next request from r into cmd, reusing sc: the
// command line and, for storage commands, the data block. maxItem bounds
// the data block size (<= 0 means DefaultMaxItemSize). Oversized values are
// consumed from the stream and reported as a non-fatal ProtoError, so one
// abusive request does not desynchronize the connection. io.EOF is returned
// only at a clean boundary between requests.
//
// The reader's buffer must hold at least MaxCommandLine bytes (the server
// and client constructors guarantee this).
func ReadCommandInto(r *bufio.Reader, maxItem int, cmd *Command, sc *Scratch) error {
	if maxItem <= 0 {
		maxItem = DefaultMaxItemSize
	}
	line, err := readLine(r)
	if err != nil {
		return err
	}
	cmd.reset()
	sc.fields = splitFields(line, sc.fields)
	// Decide the noreply question now: parseFields may consume a data
	// block, and that read refills the bufio buffer the field slices
	// alias, so they cannot be trusted after an error.
	n := len(sc.fields)
	askedNoreply := n > 0 && bytes.Equal(sc.fields[n-1], noreplyBytes)
	if err := parseFields(r, sc.fields, maxItem, cmd, sc); err != nil {
		var pe *ProtoError
		if errors.As(err, &pe) && !pe.NoReply && askedNoreply {
			// The failing command asked for noreply; suppress the error
			// response as well (a copy — some ProtoErrors are shared).
			cp := *pe
			cp.NoReply = true
			return &cp
		}
		return err
	}
	return nil
}

// parseFields parses one split command line (and, for storage commands,
// the trailing data block) into cmd.
func parseFields(r *bufio.Reader, fields [][]byte, maxItem int, cmd *Command, sc *Scratch) error {
	if len(fields) == 0 {
		return ErrUnknownCommand
	}
	switch string(fields[0]) { // compiled to a no-alloc comparison switch
	case "get", "gets":
		cmd.Op = OpGet
		if len(fields[0]) == 4 {
			cmd.Op = OpGets
		}
		if len(fields) < 2 {
			return clientErr("get requires at least one key")
		}
		for _, k := range fields[1:] {
			if !validKey(k) {
				return clientErr("bad key")
			}
		}
		// The keys alias the read buffer, which stays untouched until the
		// next command is read; reuse the retained table to carry them.
		sc.keys = append(sc.keys[:0], fields[1:]...)
		cmd.Keys = sc.keys
		return nil

	case "set", "add", "replace", "cas":
		switch fields[0][0] {
		case 's':
			cmd.Op = OpSet
		case 'a':
			cmd.Op = OpAdd
		case 'r':
			cmd.Op = OpReplace
		default:
			cmd.Op = OpCas
		}
		want := 5 // verb key flags exptime bytes
		if cmd.Op == OpCas {
			want = 6 // ... casid
		}
		// The size field decides recoverability: when it parses, the data
		// block it announces is consumed even if the rest of the line is
		// malformed, so the stream stays aligned on command boundaries.
		// When the size cannot be located or parsed, the block length is
		// unknowable and the connection must close (the alternative —
		// interpreting the client's data bytes as commands — is exactly
		// the request-smuggling shape).
		if len(fields) < 5 {
			return &ProtoError{Resp: "CLIENT_ERROR bad command line format", Fatal: true}
		}
		size, ok := parseU64(fields[4])
		if !ok || size > 1<<62 {
			return &ProtoError{Resp: "CLIENT_ERROR bad command line format", Fatal: true}
		}
		badLine := func(format string, args ...any) error {
			if err := discard(r, int64(size)+2); err != nil {
				return fatalIO(err)
			}
			return clientErr(format, args...)
		}
		n := len(fields)
		if n == want+1 && bytes.Equal(fields[n-1], noreplyBytes) {
			cmd.NoReply = true
			n--
		}
		if n != want {
			return badLine("bad command line format")
		}
		if !validKey(fields[1]) {
			return badLine("bad key")
		}
		flags, ok1 := parseU64(fields[2])
		exptime, ok2 := parseI64(fields[3])
		if !ok1 || flags > 1<<32-1 || !ok2 {
			return badLine("bad command line format")
		}
		if cmd.Op == OpCas {
			casid, ok := parseU64(fields[5])
			if !ok {
				return badLine("bad command line format")
			}
			cmd.CasID = casid
		}
		cmd.Flags = uint32(flags)
		cmd.Exptime = exptime
		if size > uint64(maxItem) {
			// Swallow the block so the next command parses cleanly.
			if err := discard(r, int64(size)+2); err != nil {
				return fatalIO(err)
			}
			return &ProtoError{Resp: "SERVER_ERROR object too large for cache", NoReply: cmd.NoReply}
		}
		// Reading the data block recycles the read buffer the key points
		// into: copy the key into retained scratch first.
		cmd.Key = sc.keyBuf[:copy(sc.keyBuf[:], fields[1])]
		if sc.dataBuf == nil || cap(sc.dataBuf) < int(size) {
			n := int(size)
			if n < 64 {
				n = 64 // floor, so a zero-length value still gets a non-nil Data
			}
			sc.dataBuf = make([]byte, n)
		}
		cmd.Data = sc.dataBuf[:size]
		if _, err := io.ReadFull(r, cmd.Data); err != nil {
			return fatalIO(err)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(r, crlf[:]); err != nil {
			return fatalIO(err)
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			// The block did not end where the length said: the stream
			// cannot be trusted to be aligned on a command boundary.
			return &ProtoError{Resp: "CLIENT_ERROR bad data chunk", Fatal: true}
		}
		return nil

	case "delete":
		cmd.Op = OpDelete
		n := len(fields)
		if n == 3 && bytes.Equal(fields[2], noreplyBytes) {
			cmd.NoReply = true
			n--
		}
		if n != 2 {
			return clientErr("bad command line format")
		}
		cmd.Key = fields[1]
		if !validKey(cmd.Key) {
			return clientErr("bad key")
		}
		return nil

	case "incr", "decr":
		cmd.Op = OpIncr
		if fields[0][0] == 'd' {
			cmd.Op = OpDecr
		}
		n := len(fields)
		if n == 4 && bytes.Equal(fields[3], noreplyBytes) {
			cmd.NoReply = true
			n--
		}
		if n != 3 {
			return clientErr("bad command line format")
		}
		cmd.Key = fields[1]
		if !validKey(cmd.Key) {
			return clientErr("bad key")
		}
		delta, ok := parseU64(fields[2])
		if !ok {
			return clientErr("invalid numeric delta argument")
		}
		cmd.Delta = delta
		return nil

	case "stats":
		// Stats sub-arguments (slabs, items, …) are accepted and answered
		// with the general statistics.
		cmd.Op = OpStats
		return nil

	case "version":
		cmd.Op = OpVersion
		return nil

	case "flush_all":
		cmd.Op = OpFlushAll
		n := len(fields)
		if n > 1 && bytes.Equal(fields[n-1], noreplyBytes) {
			cmd.NoReply = true
			n--
		}
		if n > 2 {
			return clientErr("bad command line format")
		}
		if n == 2 {
			// Optional delay: invalidate everything stored up to now at
			// now+delay seconds (carried in Exptime).
			delay, ok := parseI64(fields[1])
			if !ok || delay < 0 {
				return clientErr("invalid flush_all delay")
			}
			cmd.Exptime = delay
		}
		return nil

	case "mrange":
		// mrange <lo> <hi> <limit> — the bounds are keys (inclusive), the
		// limit a positive count the server additionally clamps to
		// MaxRangeKeys. No noreply form: a scan exists to return data. The
		// bounds ride in Keys (like a multi-get's keys, aliasing the read
		// buffer), the limit in Delta.
		cmd.Op = OpMRange
		if len(fields) != 4 {
			return clientErr("mrange requires: mrange <lo> <hi> <limit>")
		}
		if !validKey(fields[1]) || !validKey(fields[2]) {
			return clientErr("bad key")
		}
		limit, ok := parseU64(fields[3])
		if !ok || limit == 0 {
			return clientErr("bad mrange limit")
		}
		sc.keys = append(sc.keys[:0], fields[1], fields[2])
		cmd.Keys = sc.keys
		cmd.Delta = limit
		return nil

	case "mmin", "mmax":
		cmd.Op = OpMMin
		if fields[0][2] == 'a' {
			cmd.Op = OpMMax
		}
		if len(fields) != 1 {
			return clientErr("bad command line format")
		}
		return nil

	case "msnap":
		cmd.Op = OpMSnap
		if len(fields) != 1 {
			return clientErr("bad command line format")
		}
		return nil

	case "quit":
		cmd.Op = OpQuit
		return nil
	}
	return ErrUnknownCommand
}

// discard drops n bytes from r.
func discard(r *bufio.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}

// --- batched framing ----------------------------------------------------

// DefaultMaxBatch bounds how many requests one ReadBatchInto call drains.
// The read buffer bounds a batch's total frame bytes anyway; this bounds the
// per-connection entry/scratch tables a deep pipeline can grow. Frames left
// buffered beyond the cap are simply picked up by the next batch, so the cap
// costs no latency.
const DefaultMaxBatch = 512

// BatchEntry is one slot of a parsed batch: either a command (Err nil) or an
// in-order recoverable protocol error to report in the command's place.
type BatchEntry struct {
	Cmd Command
	// Err, when non-nil, means this slot is a protocol error: Cmd is
	// invalid, and the server responds with Err.Resp (unless Err.NoReply)
	// exactly where the failed command's response would have gone, keeping
	// pipelined responses aligned. A Fatal Err is always the last entry.
	Err *ProtoError
}

// batchDataRetention bounds the data-block buffer capacity a Batch keeps
// across rounds, summed over its slots. A batch's non-first frames all come
// out of the read buffer (64 KiB by default), so this budget keeps uniform
// workloads allocation-free between batches while preventing a pathological
// burst shape (many slots each ratcheted to a large value) from pinning
// MaxBatch × large-value bytes per connection forever.
const batchDataRetention = 128 << 10

// Batch is the retained per-connection batch state: the entry table and one
// Scratch per slot. Per-slot scratches are what let a whole batch of parsed
// commands stay alive at once — ReadCommandInto's single-Scratch contract
// ("valid until the next read") covers one command, not a pipeline.
// Scratches are held by pointer so growing the table never relocates a
// keyBuf out from under an already-parsed command.
type Batch struct {
	Entries []BatchEntry
	scs     []*Scratch
}

// shedData releases per-slot data buffers beyond the retention budget. The
// caller must be between batches: entries from the previous round alias
// these buffers while they are live. Slot 0 is exempt — it serves the
// blocking first frame, the only one that may exceed the read buffer, and
// keeping it matches the per-command path's one-Scratch-per-connection
// retention (a client looping large sets stays allocation-free).
func (b *Batch) shedData() {
	budget := int64(batchDataRetention)
	for i, sc := range b.scs {
		if i == 0 {
			continue
		}
		if budget -= int64(cap(sc.dataBuf)); budget < 0 {
			sc.dataBuf = nil
		}
	}
}

// slot appends and returns the next entry with its dedicated scratch.
func (b *Batch) slot() (*BatchEntry, *Scratch) {
	i := len(b.Entries)
	if i < cap(b.Entries) {
		b.Entries = b.Entries[:i+1]
	} else {
		b.Entries = append(b.Entries, BatchEntry{})
	}
	for len(b.scs) <= i {
		b.scs = append(b.scs, &Scratch{})
	}
	e := &b.Entries[i]
	e.Err = nil
	return e, b.scs[i]
}

// truncate drops the last (unfilled) entry again.
func (b *Batch) truncate() { b.Entries = b.Entries[:len(b.Entries)-1] }

// nextFieldOf returns the first whitespace-separated field of line and the
// remainder after it, without building a field table.
func nextFieldOf(line []byte) (field, rest []byte) {
	i := 0
	for i < len(line) && isSpace(line[i]) {
		i++
	}
	start := i
	for i < len(line) && !isSpace(line[i]) {
		i++
	}
	return line[start:i], line[i:]
}

// frameExtra returns how many bytes beyond the command line (and its LF) the
// frame consumes: size+2 for a storage command whose size field parses, 0
// otherwise. It mirrors parseFields' consumption exactly — including the
// error paths, which either discard the same announced block (recoverable)
// or consume nothing past the line (fatal) — and errs on the side of
// demanding more, never less, so a frame it calls complete can always be
// parsed without refilling the read buffer. The result is int64 on purpose:
// announced sizes run up to 2^62, and truncating through int would wrap on
// 32-bit platforms and report a mostly-unbuffered frame as complete.
func frameExtra(line []byte) int64 {
	verb, rest := nextFieldOf(line)
	switch string(verb) { // no-alloc comparison switch
	case "set", "add", "replace", "cas":
	default:
		return 0
	}
	// Fields 1..3 are key/flags/exptime; field 4 announces the block size.
	var f []byte
	for i := 0; i < 4; i++ {
		f, rest = nextFieldOf(rest)
	}
	size, ok := parseU64(f)
	if !ok || size > 1<<62 {
		return 0 // unparseable size: the fatal path reads nothing further
	}
	return int64(size) + 2
}

// frameBuffered reports whether r's buffer already holds one complete
// request frame, so parsing it cannot trigger a buffer refill. A refill
// would slide the buffered window and dangle the key slices of commands
// parsed earlier in the same batch, so this check is what makes batched
// parsing sound — and it is also what keeps ReadBatchInto from blocking
// after its first command.
func frameBuffered(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	buf, err := r.Peek(n)
	if err != nil {
		return false
	}
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return false
	}
	line := buf[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return int64(n) >= int64(i+1)+frameExtra(line)
}

// ReadBatchInto drains pipelined requests from r into b, reusing its entry
// and scratch tables. The first command is read exactly like ReadCommandInto
// (blocking if the stream is mid-frame); after that, parsing continues only
// while a complete frame is already buffered — never blocking and never
// refilling the read buffer — up to maxBatch entries (<= 0 means
// DefaultMaxBatch). This is the free batch a pipelining client hands the
// server: everything it queued behind the first request.
//
// Recoverable protocol errors become in-order entries with Err set, so the
// response stream stays aligned with the request stream. A fatal protocol
// error becomes the batch's last entry (its Err.Fatal tells the caller to
// close after responding), and a quit command likewise ends the batch. The
// returned error is non-nil only for transport failures on the first
// command (io.EOF at a clean request boundary); in that case no entries are
// returned.
func ReadBatchInto(r *bufio.Reader, maxItem, maxBatch int, b *Batch) (int, error) {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	b.shedData() // the previous round's entries are dead; cap retained buffers
	b.Entries = b.Entries[:0]
	for len(b.Entries) < maxBatch {
		if len(b.Entries) > 0 && !frameBuffered(r) {
			break
		}
		e, sc := b.slot()
		if err := ReadCommandInto(r, maxItem, &e.Cmd, sc); err != nil {
			var pe *ProtoError
			if errors.As(err, &pe) {
				e.Err = pe
				if pe.Fatal {
					break
				}
				continue
			}
			// Transport error or EOF. Only the first command can block, so
			// only it can see one; the batch is empty.
			b.truncate()
			return 0, err
		}
		if e.Cmd.Op == OpQuit {
			break
		}
	}
	return len(b.Entries), nil
}
