// Package server puts the library on the wire: a memcached-text-protocol
// server over the typed facades, so any registered algorithm — CLHT, the
// Fraser skip list, the Harris list, BST-TK, … — can front real network
// traffic. The paper names memcached's hash table as a canonical CSDS
// deployment (§1, §7); this package is that deployment, end to end.
//
// The layers, bottom up:
//
//   - protocol.go — framing: ReadCommand parses one request (command line
//     plus optional data block) from a buffered stream, tolerating frames
//     split across arbitrary read boundaries and resynchronizing after
//     malformed lines.
//   - store.go — memcached item semantics (flags, CAS tokens, lazy
//     expiry, incr/decr) over ascylib.StringMap, i.e. over any registered
//     structure.
//   - server.go — the TCP front: a sharded-accept worker pool, one
//     goroutine per connection, per-connection read/write buffering, and
//     pipelining (responses are flushed only when the input buffer runs
//     dry, so a burst of n requests costs O(1) flushes, not n).
//   - client.go — a minimal client for the same protocol, with explicit
//     send/receive halves so callers can pipeline.
//   - loadgen.go — a closed-loop pipelined load generator driving any
//     memcached-protocol endpoint with the workload package's mixes,
//     recording per-op latency percentiles.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol limits. MaxKeyLen is the memcached limit; the line limit bounds
// multi-get command lines (a few hundred max-length keys).
const (
	MaxKeyLen          = 250
	MaxCommandLine     = 1 << 14 // 16 KiB
	DefaultMaxItemSize = 1 << 20 // 1 MiB values
)

// Op enumerates the protocol commands the server speaks.
type Op uint8

// The commands of the memcached text protocol served here.
const (
	OpGet Op = iota
	OpGets
	OpSet
	OpAdd
	OpReplace
	OpCas
	OpDelete
	OpIncr
	OpDecr
	OpStats
	OpVersion
	OpFlushAll
	OpQuit
)

var opNames = [...]string{
	OpGet: "get", OpGets: "gets", OpSet: "set", OpAdd: "add",
	OpReplace: "replace", OpCas: "cas", OpDelete: "delete", OpIncr: "incr",
	OpDecr: "decr", OpStats: "stats", OpVersion: "version",
	OpFlushAll: "flush_all", OpQuit: "quit",
}

// String returns the wire verb.
func (o Op) String() string { return opNames[o] }

// Command is one parsed request.
type Command struct {
	Op Op
	// Keys holds the keys of a retrieval command (get/gets).
	Keys []string
	// Key is the single key of a storage/arithmetic/delete command.
	Key string
	// Flags, Exptime, and Data belong to storage commands; Data is the
	// value block, already stripped of its trailing CRLF.
	Flags   uint32
	Exptime int64
	Data    []byte
	// CasID is the compare token of a cas command.
	CasID uint64
	// Delta is the incr/decr operand.
	Delta uint64
	// NoReply suppresses the response line.
	NoReply bool
}

// ProtoError is a protocol-level failure. Resp is the full response line to
// send the client (without CRLF); Fatal means the stream cannot be
// resynchronized and the connection must close. Non-fatal errors leave the
// reader positioned at the next command line — for storage commands that
// means the data block announced by the (parseable) size field has been
// consumed, so one malformed request can never smuggle its payload into
// the command stream. NoReply is set when the failing command line asked
// for noreply: the server then suppresses the error response too, keeping
// noreply pipelines aligned (as memcached does).
type ProtoError struct {
	Resp    string
	Fatal   bool
	NoReply bool
}

// Error implements error.
func (e *ProtoError) Error() string { return e.Resp }

func clientErr(format string, args ...any) *ProtoError {
	return &ProtoError{Resp: "CLIENT_ERROR " + fmt.Sprintf(format, args...)}
}

// ErrUnknownCommand is the bare-"ERROR" response of the protocol.
var ErrUnknownCommand = &ProtoError{Resp: "ERROR"}

// readLine reads one CRLF-terminated line, rejecting lines longer than
// MaxCommandLine. On an overlong line it discards through the newline so
// the stream stays framed, and returns a non-fatal ProtoError.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Discard the rest of the oversized line, then report.
		for err == bufio.ErrBufferFull {
			_, err = r.ReadSlice('\n')
		}
		if err != nil {
			return nil, fatalIO(err)
		}
		return nil, clientErr("command line too long")
	}
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fatalIO(err)
	}
	if len(line) > MaxCommandLine {
		// The buffer may be larger than the protocol limit; enforce the
		// limit itself. The newline was already consumed, so the stream
		// stays framed.
		return nil, clientErr("command line too long")
	}
	// Strip the LF and an optional preceding CR.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// fatalIO wraps a transport error; the connection is beyond recovery.
func fatalIO(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// validKey reports whether k is a legal memcached key: 1..MaxKeyLen bytes,
// no whitespace or control characters.
func validKey(k string) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 0x7f {
			return false
		}
	}
	return true
}

// ReadCommand parses the next request from r: the command line and, for
// storage commands, the data block. maxItem bounds the data block size
// (<= 0 means DefaultMaxItemSize). Oversized values are consumed from the
// stream and reported as a non-fatal ProtoError, so one abusive request
// does not desynchronize the connection. io.EOF is returned only at a
// clean boundary between requests.
//
// The reader's buffer must hold at least MaxCommandLine bytes (the server
// and client constructors guarantee this).
func ReadCommand(r *bufio.Reader, maxItem int) (*Command, error) {
	if maxItem <= 0 {
		maxItem = DefaultMaxItemSize
	}
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(line))
	cmd, err := parseFields(r, fields, maxItem)
	if err != nil {
		var pe *ProtoError
		if errors.As(err, &pe) && !pe.NoReply &&
			len(fields) > 0 && fields[len(fields)-1] == "noreply" {
			// The failing command asked for noreply; suppress the error
			// response as well (a copy — some ProtoErrors are shared).
			cp := *pe
			cp.NoReply = true
			return nil, &cp
		}
		return nil, err
	}
	return cmd, nil
}

// parseFields parses one split command line (and, for storage commands,
// the trailing data block).
func parseFields(r *bufio.Reader, fields []string, maxItem int) (*Command, error) {
	if len(fields) == 0 {
		return nil, ErrUnknownCommand
	}
	cmd := &Command{}
	switch fields[0] {
	case "get", "gets":
		cmd.Op = OpGet
		if fields[0] == "gets" {
			cmd.Op = OpGets
		}
		if len(fields) < 2 {
			return nil, clientErr("get requires at least one key")
		}
		for _, k := range fields[1:] {
			if !validKey(k) {
				return nil, clientErr("bad key")
			}
		}
		cmd.Keys = fields[1:]
		return cmd, nil

	case "set", "add", "replace", "cas":
		switch fields[0] {
		case "set":
			cmd.Op = OpSet
		case "add":
			cmd.Op = OpAdd
		case "replace":
			cmd.Op = OpReplace
		case "cas":
			cmd.Op = OpCas
		}
		want := 5 // verb key flags exptime bytes
		if cmd.Op == OpCas {
			want = 6 // ... casid
		}
		// The size field decides recoverability: when it parses, the data
		// block it announces is consumed even if the rest of the line is
		// malformed, so the stream stays aligned on command boundaries.
		// When the size cannot be located or parsed, the block length is
		// unknowable and the connection must close (the alternative —
		// interpreting the client's data bytes as commands — is exactly
		// the request-smuggling shape).
		if len(fields) < 5 {
			return nil, &ProtoError{Resp: "CLIENT_ERROR bad command line format", Fatal: true}
		}
		size, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil || size < 0 {
			return nil, &ProtoError{Resp: "CLIENT_ERROR bad command line format", Fatal: true}
		}
		badLine := func(format string, args ...any) (*Command, error) {
			if err := discard(r, size+2); err != nil {
				return nil, fatalIO(err)
			}
			return nil, clientErr(format, args...)
		}
		n := len(fields)
		if n == want+1 && fields[n-1] == "noreply" {
			cmd.NoReply = true
			n--
		}
		if n != want {
			return badLine("bad command line format")
		}
		cmd.Key = fields[1]
		if !validKey(cmd.Key) {
			return badLine("bad key")
		}
		flags, err1 := strconv.ParseUint(fields[2], 10, 32)
		exptime, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return badLine("bad command line format")
		}
		if cmd.Op == OpCas {
			casid, err := strconv.ParseUint(fields[5], 10, 64)
			if err != nil {
				return badLine("bad command line format")
			}
			cmd.CasID = casid
		}
		cmd.Flags = uint32(flags)
		cmd.Exptime = exptime
		if size > int64(maxItem) {
			// Swallow the block so the next command parses cleanly.
			if err := discard(r, size+2); err != nil {
				return nil, fatalIO(err)
			}
			return nil, &ProtoError{Resp: "SERVER_ERROR object too large for cache", NoReply: cmd.NoReply}
		}
		cmd.Data = make([]byte, size)
		if _, err := io.ReadFull(r, cmd.Data); err != nil {
			return nil, fatalIO(err)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(r, crlf[:]); err != nil {
			return nil, fatalIO(err)
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			// The block did not end where the length said: the stream
			// cannot be trusted to be aligned on a command boundary.
			return nil, &ProtoError{Resp: "CLIENT_ERROR bad data chunk", Fatal: true}
		}
		return cmd, nil

	case "delete":
		cmd.Op = OpDelete
		n := len(fields)
		if n == 3 && fields[2] == "noreply" {
			cmd.NoReply = true
			n--
		}
		if n != 2 {
			return nil, clientErr("bad command line format")
		}
		cmd.Key = fields[1]
		if !validKey(cmd.Key) {
			return nil, clientErr("bad key")
		}
		return cmd, nil

	case "incr", "decr":
		cmd.Op = OpIncr
		if fields[0] == "decr" {
			cmd.Op = OpDecr
		}
		n := len(fields)
		if n == 4 && fields[3] == "noreply" {
			cmd.NoReply = true
			n--
		}
		if n != 3 {
			return nil, clientErr("bad command line format")
		}
		cmd.Key = fields[1]
		if !validKey(cmd.Key) {
			return nil, clientErr("bad key")
		}
		delta, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, clientErr("invalid numeric delta argument")
		}
		cmd.Delta = delta
		return cmd, nil

	case "stats":
		// Stats sub-arguments (slabs, items, …) are accepted and answered
		// with the general statistics.
		cmd.Op = OpStats
		return cmd, nil

	case "version":
		cmd.Op = OpVersion
		return cmd, nil

	case "flush_all":
		cmd.Op = OpFlushAll
		n := len(fields)
		if n > 1 && fields[n-1] == "noreply" {
			cmd.NoReply = true
			n--
		}
		if n > 2 {
			return nil, clientErr("bad command line format")
		}
		if n == 2 {
			// Optional delay: invalidate everything stored up to now at
			// now+delay seconds (carried in Exptime).
			delay, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || delay < 0 {
				return nil, clientErr("invalid flush_all delay")
			}
			cmd.Exptime = delay
		}
		return cmd, nil

	case "quit":
		cmd.Op = OpQuit
		return cmd, nil
	}
	return nil, ErrUnknownCommand
}

// discard drops n bytes from r.
func discard(r *bufio.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}
