package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// errNoKeys rejects a keyless retrieval before it reaches the wire: a bare
// "get\r\n" is a malformed frame the server answers with CLIENT_ERROR,
// which would desynchronize every response queued behind it.
var errNoKeys = errors.New("client: get requires at least one key")

// Client speaks the memcached text protocol over one connection. The
// synchronous methods (Get, Set, …) send, flush, and read the response.
// The Send*/Recv* halves expose the wire's natural pipelining: queue any
// number of requests, Flush once, then receive the responses in order.
// A Client is not safe for concurrent use; open one per goroutine.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch [24]byte // number formatting without fmt
	fields  [][]byte // reused by the zero-alloc receive paths
}

// Dial connects to a memcached-protocol server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientConn(c), nil
}

// NewClientConn wraps an already-established transport as a Client. It is
// the seam the chaos harness plugs into: a faultnet.Conn (or any other
// net.Conn) goes in, and the protocol code above it cannot tell the
// difference.
func NewClientConn(c net.Conn) *Client {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		c:  c,
		br: newReader(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close sends quit and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintf(c.bw, "quit\r\n")
	c.bw.Flush()
	return c.c.Close()
}

// Abort closes the transport without touching the buffers. Unlike every
// other method it is safe to call from another goroutine, to unblock a
// Client whose owner is mid-send or mid-receive.
func (c *Client) Abort() error { return c.c.Close() }

// Flush pushes queued requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Entry is one retrieved value.
type Entry struct {
	Key   string
	Flags uint32
	CAS   uint64
	Data  []byte
}

// --- pipelined send half ---

// SendGet queues a get (or gets, when withCAS) for the given keys. An empty
// key list is rejected without writing anything — the frame it would emit is
// malformed, and a pipelined caller must not poison its own response stream.
func (c *Client) SendGet(withCAS bool, keys ...string) error {
	if len(keys) == 0 {
		return errNoKeys
	}
	verb := "get"
	if withCAS {
		verb = "gets"
	}
	c.bw.WriteString(verb)
	for _, k := range keys {
		c.bw.WriteByte(' ')
		c.bw.WriteString(k)
	}
	_, err := c.bw.Write(crlf)
	return err
}

// SendGet1 queues a single-key get without the variadic call's slice — the
// load generator's guaranteed-no-alloc form.
func (c *Client) SendGet1(withCAS bool, key string) error {
	if withCAS {
		c.bw.WriteString("gets ")
	} else {
		c.bw.WriteString("get ")
	}
	c.bw.WriteString(key)
	_, err := c.bw.Write(crlf)
	return err
}

// writeUint appends one space-prefixed decimal to the send buffer without
// allocating (the load generator drives millions of these per second).
func (c *Client) writeUint(v uint64) {
	c.bw.WriteByte(' ')
	c.bw.Write(strconv.AppendUint(c.scratch[:0], v, 10))
}

func (c *Client) writeInt(v int64) {
	c.bw.WriteByte(' ')
	c.bw.Write(strconv.AppendInt(c.scratch[:0], v, 10))
}

// SendStore queues a storage command: verb is "set", "add", "replace", or
// "cas" (casid is only written for cas). Allocation-free.
func (c *Client) SendStore(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) error {
	c.bw.WriteString(verb)
	c.bw.WriteByte(' ')
	c.bw.WriteString(key)
	c.writeUint(uint64(flags))
	c.writeInt(exptime)
	c.writeUint(uint64(len(data)))
	if verb == "cas" {
		c.writeUint(casid)
	}
	c.bw.Write(crlf)
	c.bw.Write(data)
	_, err := c.bw.Write(crlf)
	return err
}

// SendMRange queues an ordered range scan: lo <= key <= hi, at most limit
// entries. The response is framed exactly like a get's (VALUE stanzas then
// END), so any of the get receive halves pairs with it — RecvGet to
// materialize the entries, RecvGetN for the load generator's
// allocation-free accounting. Allocation-free.
func (c *Client) SendMRange(lo, hi string, limit uint64) error {
	c.bw.WriteString("mrange ")
	c.bw.WriteString(lo)
	c.bw.WriteByte(' ')
	c.bw.WriteString(hi)
	c.writeUint(limit)
	_, err := c.bw.Write(crlf)
	return err
}

// SendMMin queues an mmin (smallest entry; get-framed response).
func (c *Client) SendMMin() error {
	_, err := c.bw.WriteString("mmin\r\n")
	return err
}

// SendMMax queues an mmax (largest entry; get-framed response).
func (c *Client) SendMMax() error {
	_, err := c.bw.WriteString("mmax\r\n")
	return err
}

// SendMSnap queues an msnap (on-demand snapshot to the server's configured
// file; replies OK once the file is durable).
func (c *Client) SendMSnap() error {
	_, err := c.bw.WriteString("msnap\r\n")
	return err
}

// MSnap triggers a snapshot synchronously. A nil error means the server
// replied OK: the snapshot file is complete and durable on disk.
func (c *Client) MSnap() error {
	if err := c.SendMSnap(); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("msnap: %s", line)
	}
	return nil
}

// MRange scans [lo, hi] synchronously, returning at most limit entries in
// ascending lexicographic order.
func (c *Client) MRange(lo, hi string, limit uint64) ([]Entry, error) {
	if err := c.SendMRange(lo, hi, limit); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvGet()
}

// SendDelete queues a delete. Allocation-free.
func (c *Client) SendDelete(key string) error {
	c.bw.WriteString("delete ")
	c.bw.WriteString(key)
	_, err := c.bw.Write(crlf)
	return err
}

// SendIncrDecr queues an incr or decr. Allocation-free.
func (c *Client) SendIncrDecr(key string, delta uint64, incr bool) error {
	if incr {
		c.bw.WriteString("incr ")
	} else {
		c.bw.WriteString("decr ")
	}
	c.bw.WriteString(key)
	c.writeUint(delta)
	_, err := c.bw.Write(crlf)
	return err
}

// --- pipelined receive half ---

// readLine reads one response line (without CRLF).
func (c *Client) readLine() (string, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// RecvGet receives the response of one SendGet: the entries found, in
// server order.
func (c *Client) RecvGet() ([]Entry, error) {
	var out []Entry
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if err := serverError(line); err != nil {
			return nil, err
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[0] != "VALUE" {
			return nil, fmt.Errorf("client: malformed VALUE line %q", line)
		}
		flags, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("client: bad flags in %q", line)
		}
		size, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("client: bad size in %q", line)
		}
		e := Entry{Key: f[1], Flags: uint32(flags)}
		if len(f) >= 5 {
			if e.CAS, err = strconv.ParseUint(f[4], 10, 64); err != nil {
				return nil, fmt.Errorf("client: bad cas in %q", line)
			}
		}
		e.Data = make([]byte, size)
		if _, err := io.ReadFull(c.br, e.Data); err != nil {
			return nil, err
		}
		var term [2]byte
		if _, err := io.ReadFull(c.br, term[:]); err != nil {
			return nil, err
		}
		if term[0] != '\r' || term[1] != '\n' {
			return nil, fmt.Errorf("client: value block not CRLF-terminated")
		}
		out = append(out, e)
	}
}

// RecvLine receives a single-line response (STORED, DELETED, NOT_FOUND, a
// decimal, …) for any queued single-line-response command.
func (c *Client) RecvLine() (string, error) { return c.readLine() }

// readLineSlice reads one response line without allocating; the slice is
// valid until the next read. Response lines always fit the read buffer.
func (c *Client) readLineSlice() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// RecvGetN consumes the response of one SendGet, discarding the payloads,
// and returns the number of entries and their total data bytes. It is the
// allocation-free receive half the load generator uses: hit accounting
// without materializing keys or values, so client-side GC activity cannot
// leak into the latency samples.
func (c *Client) RecvGetN() (entries int, dataBytes int64, err error) {
	for {
		line, err := c.readLineSlice()
		if err != nil {
			return entries, dataBytes, err
		}
		if len(line) == 3 && line[0] == 'E' && string(line) == "END" {
			return entries, dataBytes, nil
		}
		c.fields = splitFields(line, c.fields)
		if len(c.fields) < 4 || string(c.fields[0]) != "VALUE" {
			if err := serverError(string(line)); err != nil {
				return entries, dataBytes, err
			}
			return entries, dataBytes, fmt.Errorf("client: malformed VALUE line %q", line)
		}
		size, ok := parseU64(c.fields[3])
		if !ok {
			return entries, dataBytes, fmt.Errorf("client: bad size in %q", line)
		}
		// Discard the data block and its CRLF terminator.
		toSkip := int(size)
		for toSkip > 0 {
			n, err := c.br.Discard(toSkip)
			toSkip -= n
			if err != nil {
				return entries, dataBytes, err
			}
		}
		b0, err := c.br.ReadByte()
		if err != nil {
			return entries, dataBytes, err
		}
		b1, err := c.br.ReadByte()
		if err != nil {
			return entries, dataBytes, err
		}
		if b0 != '\r' || b1 != '\n' {
			return entries, dataBytes, fmt.Errorf("client: value block not CRLF-terminated")
		}
		entries++
		dataBytes += int64(size)
	}
}

// RecvMRangeN consumes the response of one SendMRange, discarding the
// payloads, and returns the entry count and total data bytes. A single
// server answers a scan with exactly get framing (VALUE stanzas then END),
// so this IS the discarding multi-get receive; the name exists because a
// cluster endpoint's scan receive must additionally pop its pending-limit
// queue and truncate the merged count, and the load generator drives both
// through one interface.
func (c *Client) RecvMRangeN() (entries int, dataBytes int64, err error) {
	return c.RecvGetN()
}

// RecvStored receives a storage response and reports whether it was
// STORED. EXISTS/NOT_STORED/NOT_FOUND report false with no error; error
// responses become errors. Allocation-free on the expected responses.
func (c *Client) RecvStored() (bool, error) {
	line, err := c.readLineSlice()
	if err != nil {
		return false, err
	}
	switch string(line) {
	case "STORED":
		return true, nil
	case "NOT_STORED", "EXISTS", "NOT_FOUND":
		return false, nil
	}
	if err := serverError(string(line)); err != nil {
		return false, err
	}
	return false, fmt.Errorf("client: unexpected storage response %q", line)
}

// RecvDeleted receives a delete response. Allocation-free on the expected
// responses.
func (c *Client) RecvDeleted() (bool, error) {
	line, err := c.readLineSlice()
	if err != nil {
		return false, err
	}
	switch string(line) {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	if err := serverError(string(line)); err != nil {
		return false, err
	}
	return false, fmt.Errorf("client: unexpected delete response %q", line)
}

// --- synchronous convenience methods ---

// Get retrieves one key.
func (c *Client) Get(key string) (Entry, bool, error) {
	if err := c.SendGet(false, key); err != nil {
		return Entry{}, false, err
	}
	if err := c.Flush(); err != nil {
		return Entry{}, false, err
	}
	es, err := c.RecvGet()
	if err != nil || len(es) == 0 {
		return Entry{}, false, err
	}
	return es[0], true, nil
}

// Gets retrieves one key with its CAS token.
func (c *Client) Gets(key string) (Entry, bool, error) {
	if err := c.SendGet(true, key); err != nil {
		return Entry{}, false, err
	}
	if err := c.Flush(); err != nil {
		return Entry{}, false, err
	}
	es, err := c.RecvGet()
	if err != nil || len(es) == 0 {
		return Entry{}, false, err
	}
	return es[0], true, nil
}

// GetMulti retrieves several keys in one round trip.
func (c *Client) GetMulti(keys ...string) (map[string]Entry, error) {
	if err := c.SendGet(false, keys...); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	es, err := c.RecvGet()
	if err != nil {
		return nil, err
	}
	out := make(map[string]Entry, len(es))
	for _, e := range es {
		out[e.Key] = e
	}
	return out, nil
}

func (c *Client) store(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) (bool, error) {
	if err := c.SendStore(verb, key, flags, exptime, data, casid); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvStored()
}

// Set stores unconditionally.
func (c *Client) Set(key string, flags uint32, exptime int64, data []byte) error {
	ok, err := c.store("set", key, flags, exptime, data, 0)
	if err == nil && !ok {
		return fmt.Errorf("client: set of %q not stored", key)
	}
	return err
}

// Add stores only if absent; reports whether it stored.
func (c *Client) Add(key string, flags uint32, exptime int64, data []byte) (bool, error) {
	return c.store("add", key, flags, exptime, data, 0)
}

// Replace stores only if present; reports whether it stored.
func (c *Client) Replace(key string, flags uint32, exptime int64, data []byte) (bool, error) {
	return c.store("replace", key, flags, exptime, data, 0)
}

// Cas stores only if the item's token still matches; reports whether it
// stored (false covers both EXISTS and NOT_FOUND).
func (c *Client) Cas(key string, flags uint32, exptime int64, data []byte, casid uint64) (bool, error) {
	return c.store("cas", key, flags, exptime, data, casid)
}

// Delete removes a key; reports whether an item was deleted.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.SendDelete(key); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	return c.RecvDeleted()
}

// Incr adjusts the decimal value under key upward, returning the new
// value; ok is false when the key was absent.
func (c *Client) Incr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr(key, delta, true)
}

// Decr adjusts the decimal value under key downward (floored at 0).
func (c *Client) Decr(key string, delta uint64) (uint64, bool, error) {
	return c.incrDecr(key, delta, false)
}

func (c *Client) incrDecr(key string, delta uint64, incr bool) (uint64, bool, error) {
	if err := c.SendIncrDecr(key, delta, incr); err != nil {
		return 0, false, err
	}
	if err := c.Flush(); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" {
		return 0, false, nil
	}
	if err := serverError(line); err != nil {
		return 0, false, err
	}
	v, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("client: unexpected incr/decr response %q", line)
	}
	return v, true, nil
}

// SendStats queues a stats request; pair with RecvStats. The split halves
// exist for fan-out callers (the cluster client pipelines one stats request
// to every node, then collects) — synchronous use wants Stats.
func (c *Client) SendStats() error {
	_, err := c.bw.WriteString("stats\r\n")
	return err
}

// SendFlushAll queues a flush_all with the given delay (0 flushes
// immediately); the response is one "OK" line (RecvLine).
func (c *Client) SendFlushAll(delay int64) error {
	c.bw.WriteString("flush_all")
	c.writeInt(delay)
	_, err := c.bw.Write(crlf)
	return err
}

// Stats retrieves the server's statistics.
func (c *Client) Stats() (map[string]string, error) {
	if err := c.SendStats(); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvStats()
}

// RecvStats receives the response of one SendStats.
func (c *Client) RecvStats() (map[string]string, error) {
	out := map[string]string{}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if err := serverError(line); err != nil {
			return nil, err
		}
		f := strings.SplitN(line, " ", 3)
		if len(f) == 3 && f[0] == "STAT" {
			out[f[1]] = f[2]
		}
	}
}

// Version retrieves the server's version banner.
func (c *Client) Version() (string, error) {
	if _, err := fmt.Fprintf(c.bw, "version\r\n"); err != nil {
		return "", err
	}
	if err := c.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if err := serverError(line); err != nil {
		return "", err
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// FlushAll empties the server's store.
func (c *Client) FlushAll() error {
	if err := c.SendFlushAll(0); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("client: unexpected flush_all response %q", line)
	}
	return nil
}
