package server

import (
	"errors"
	"strings"
	"time"
)

// ServerError is a protocol-level error line — "ERROR", "CLIENT_ERROR …",
// "SERVER_ERROR …" — received where a response was expected. The distinction
// it carries matters to every caller that pipelines: a ServerError means the
// server *answered*, so the connection is still response-aligned and usable
// for the requests queued behind it, whereas a transport error means the
// stream's framing is gone and nothing further on the conn can be trusted.
// The cluster failover layer keys on exactly this split (protocol error →
// node healthy, transport error → node suspect).
type ServerError struct {
	// Line is the raw response line, e.g. "SERVER_ERROR busy".
	Line string
}

func (e *ServerError) Error() string { return "server: " + e.Line }

// serverError converts an error-class response line into a *ServerError;
// non-error lines return nil.
func serverError(line string) error {
	if line == "ERROR" || strings.HasPrefix(line, "CLIENT_ERROR") ||
		strings.HasPrefix(line, "SERVER_ERROR") {
		return &ServerError{Line: line}
	}
	return nil
}

// DegradedError marks an error synthesized locally by a degraded-mode client:
// the request was routed to a node currently down, no bytes crossed the wire,
// and the client's pipeline is still perfectly aligned. Load generators and
// proxies use the distinction to keep driving through a node outage — a
// degraded error is countable and continuable, a transport error is not.
// Defined here (not in the cluster package) so server-level consumers like
// the load generator can test for it without importing the cluster layer.
type DegradedError interface {
	error
	Degraded() bool
}

// IsDegraded reports whether err, or anything it wraps, is a DegradedError.
func IsDegraded(err error) bool {
	var d DegradedError
	return errors.As(err, &d) && d.Degraded()
}

// verifyTimeout bounds the liveness probe of one DialRetryVerified attempt,
// so a connection that accepts but never answers cannot stall the retry loop
// past the caller's deadline.
const verifyTimeout = time.Second

// DialRetry dials addr, retrying failed connection attempts with bounded,
// jittered exponential backoff until timeout elapses. A freshly exec'd
// server loses the race against its first client all the time (multi-process
// cluster boots make it a certainty), and connection refused during that
// window is a scheduling artifact, not an error — so the client absorbs it
// here instead of every launcher script growing its own sleep loop. A
// timeout <= 0 degenerates to a single attempt.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	return dialRetry(addr, timeout, false)
}

// DialRetryVerified is DialRetry with a liveness probe per attempt: after a
// successful dial it round-trips a version request and only returns a client
// the server actually answered. This is the reconnect primitive for
// failover — a rebooting node's kernel can accept connections before the
// process serves them (and a dying one accepts, then resets), and handing
// such a half-alive connection back to the router would only fail over
// again. Probe failures retry under the same backoff as dial failures.
func DialRetryVerified(addr string, timeout time.Duration) (*Client, error) {
	return dialRetry(addr, timeout, true)
}

func dialRetry(addr string, timeout time.Duration, verify bool) (*Client, error) {
	deadline := time.Now().Add(timeout)
	backoff := 5 * time.Millisecond
	for {
		c, err := Dial(addr)
		if err == nil && verify {
			c.c.SetDeadline(time.Now().Add(verifyTimeout))
			if _, verr := c.Version(); verr != nil {
				c.Abort()
				err = verr
			} else {
				c.c.SetDeadline(time.Time{})
			}
		}
		if err == nil {
			return c, nil
		}
		if timeout <= 0 || !time.Now().Before(deadline) {
			return nil, err
		}
		// Full jitter over the current backoff window, so N clients racing
		// one booting server spread out instead of stampeding in lockstep.
		sleep := time.Duration(uint64(time.Now().UnixNano()) % uint64(backoff))
		if remain := time.Until(deadline); sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep + time.Millisecond)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}
