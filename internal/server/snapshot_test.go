package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// ---------------------------------------------------------------------------
// The linearizable-cut differential: snapshot while writers churn, then
// prove every recovered record was its key's live value at some instant
// inside the snapshot window — no ghost keys, no resurrected values, no
// expired items.
//
// The oracle construction: each key is owned by exactly one writer, so its
// operation history is an exact sequence. Every operation records a
// conservative interval [t0, t1] (clock read before issue and after
// completion) containing its linearization point. The value stored by set
// number j on a key is therefore possibly visible from ops[j].t0 until
// ops[j+1].t1 (the next operation's latest possible linearization), or
// forever if none follows. A snapshot taken over [snapStart, snapEnd]
// observes each key at one instant inside that window, so:
//
//   - soundness: a recovered value must be some set in its key's history
//     whose possible-visibility interval intersects the window;
//   - completeness: a value definitely visible across the WHOLE window
//     (its set completed before snapStart, the next operation — if any —
//     began after snapEnd) must be recovered;
//   - expiry: a set issued already-expired (negative exptime) is dead from
//     birth and must never be recovered, though it still terminates the
//     previous value's visibility.
// ---------------------------------------------------------------------------

type snapOpKind uint8

const (
	opSet snapOpKind = iota
	opDel
	opExpSet // set with already-past expiry: terminates visibility, value never live
)

type snapOp struct {
	kind   snapOpKind
	seq    int   // value identity for sets
	t0, t1 int64 // conservative interval containing the linearization point
}

func snapKey(w, k int) string { return fmt.Sprintf("snapk-w%d-k%03d", w, k) }

func snapVal(seq int) []byte { return []byte(fmt.Sprintf("s%08d-payloadpayload", seq)) }

func TestSnapshotLinearizableCutDifferential(t *testing.T) {
	for _, algo := range []string{"ht-clht-lb", "ll-lazy", "sl-fraser-opt"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(t *testing.T) {
				runSnapshotDifferential(t, algo, shards)
			})
		}
	}
}

func runSnapshotDifferential(t *testing.T, algo string, shards int) {
	const (
		writers    = 3
		keysPer    = 48
		churnFor   = 25 * time.Millisecond
		settleTime = 10 * time.Millisecond
	)
	st, err := NewStore(algo, 1<<12, true, shards, false)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	mono := func() int64 { return int64(time.Since(base)) }

	hist := make([][][]snapOp, writers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		hist[w] = make([][]snapOp, keysPer)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(0x9E3779B97F4A7C15 * uint64(w+1))
			next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
			seq := 0
			for !stop.Load() {
				k := int(next() % keysPer)
				kind := opSet
				switch next() % 10 {
				case 0, 1:
					kind = opDel
				case 2:
					kind = opExpSet
				}
				seq++
				key := []byte(snapKey(w, k))
				t0 := mono()
				p := st.Pin()
				switch kind {
				case opSet:
					st.Set(p, key, 0, 0, snapVal(seq))
				case opExpSet:
					st.Set(p, key, 0, -1, snapVal(seq))
				case opDel:
					st.Delete(p, key)
				}
				p.Unpin()
				t1 := mono()
				hist[w][k] = append(hist[w][k], snapOp{kind: kind, seq: seq, t0: t0, t1: t1})
			}
		}(w)
	}

	// Let histories build, then take the cut mid-churn.
	time.Sleep(churnFor)
	var buf bytes.Buffer
	snapStart := mono()
	items, err := st.SnapshotTo(&buf)
	snapEnd := mono()
	if err != nil {
		t.Fatalf("SnapshotTo: %v", err)
	}
	time.Sleep(settleTime) // churn continues past the cut on purpose
	stop.Store(true)
	wg.Wait()

	// Index the snapshot's records straight off the file bytes.
	recovered := map[string]string{}
	sr, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		key := string(rec.Key)
		if _, dup := recovered[key]; dup {
			t.Fatalf("key %q appears twice in the snapshot", key)
		}
		recovered[key] = string(rec.Data)
	}
	if uint64(len(recovered)) != items {
		t.Fatalf("SnapshotTo reported %d items, file holds %d", items, len(recovered))
	}

	// Soundness: every recovered (key, value) was possibly live at some
	// instant inside [snapStart, snapEnd].
	for key, val := range recovered {
		var w, k int
		if _, err := fmt.Sscanf(key, "snapk-w%d-k%03d", &w, &k); err != nil || w >= writers || k >= keysPer {
			t.Fatalf("ghost key %q recovered (never written)", key)
		}
		var seq int
		if _, err := fmt.Sscanf(val, "s%08d", &seq); err != nil {
			t.Fatalf("key %q recovered with unparseable value %q", key, val)
		}
		ops := hist[w][k]
		idx := -1
		for i, op := range ops {
			if op.seq == seq {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatalf("key %q recovered value seq %d that was never written", key, seq)
		}
		op := ops[idx]
		if op.kind != opSet {
			t.Fatalf("key %q recovered value of a %v operation (seq %d) — an expired or deleted write surfaced", key, op.kind, seq)
		}
		if string(snapVal(seq)) != val {
			t.Fatalf("key %q value corrupted: %q", key, val)
		}
		visEnd := int64(1<<62 - 1)
		if idx+1 < len(ops) {
			visEnd = ops[idx+1].t1
		}
		if op.t0 > snapEnd || visEnd < snapStart {
			t.Fatalf("key %q recovered seq %d visible only [%d,%d], outside snapshot window [%d,%d]",
				key, seq, op.t0, visEnd, snapStart, snapEnd)
		}
	}

	// Completeness: a value definitely live across the whole window must
	// be in the cut.
	definite := 0
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPer; k++ {
			ops := hist[w][k]
			for i, op := range ops {
				if op.kind != opSet || op.t1 >= snapStart {
					continue
				}
				if i+1 < len(ops) && ops[i+1].t0 <= snapEnd {
					continue // a later op may have landed inside the window
				}
				definite++
				key := snapKey(w, k)
				got, ok := recovered[key]
				if !ok {
					t.Fatalf("key %s definitely live across the window (seq %d) but missing from the snapshot", key, op.seq)
				}
				if got != string(snapVal(op.seq)) {
					t.Fatalf("key %s definitely held seq %d across the window, snapshot has %q", key, op.seq, got)
				}
			}
		}
	}

	// The differential needs real churn to mean anything: the cut must
	// contain something, and some keys must have been definitely stable.
	if len(recovered) == 0 {
		t.Fatal("vacuous run: empty snapshot")
	}
	if definite == 0 {
		t.Log("note: no definitely-stable keys this run (all churned mid-window)")
	}

	// And the file must rebuild a working store: every recovered key gets
	// its recovered value back through the public read path.
	st2, err := NewStore(algo, 1<<12, true, shards, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st2.LoadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if res.Loaded != uint64(len(recovered)) || res.Expired != 0 {
		t.Fatalf("LoadFrom: loaded %d expired %d, want %d/0", res.Loaded, res.Expired, len(recovered))
	}
	p := st2.Pin()
	defer p.Unpin()
	for key, val := range recovered {
		it, ok := st2.Get(p, []byte(key))
		if !ok || string(it.Data) != val {
			t.Fatalf("restored store: key %q = %q, %v; want %q", key, it.Data, ok, val)
		}
	}
	if st2.Items() != len(recovered) {
		t.Fatalf("restored store has %d items, want %d", st2.Items(), len(recovered))
	}
}

// ---------------------------------------------------------------------------
// Satellite: expiry oracle on load — records already expired at load time
// are dead on arrival: never inserted, never charged to loaded, and gone
// from the read path without reaper involvement.
// ---------------------------------------------------------------------------

func TestSnapshotExpiryOracleOnLoad(t *testing.T) {
	// Build a snapshot stream by hand with a frozen clock.
	const nowUnix = 1_754_000_000
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{Algo: "ht-clht-lb", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	type tc struct {
		key      string
		expireAt int64
		live     bool
	}
	cases := []tc{
		{"never-expires", 0, true},
		{"future", nowUnix + 1000, true},
		{"boundary-now", nowUnix, false},       // ExpireAt <= now is dead
		{"long-dead", nowUnix - 86_400, false}, // expired a day before boot
		{"just-dead", nowUnix - 1, false},
		{"far-future", nowUnix + 30*86_400, true},
	}
	for _, c := range cases {
		if err := w.Add([]byte(c.key), 7, c.expireAt, []byte("v-"+c.key)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := NewStore("ht-clht-lb", 1<<10, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	st.now = func() int64 { return nowUnix }

	res, err := st.LoadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantLive, wantDead := 0, 0
	for _, c := range cases {
		if c.live {
			wantLive++
		} else {
			wantDead++
		}
	}
	if res.Loaded != uint64(wantLive) || res.Expired != uint64(wantDead) {
		t.Fatalf("LoadFrom: loaded=%d expired=%d, want %d/%d", res.Loaded, res.Expired, wantLive, wantDead)
	}
	// The dead records were never inserted — not "inserted then reaped":
	// the store's item count says so directly (Items counts even
	// not-yet-collected expired entries).
	if st.Items() != wantLive {
		t.Fatalf("Items() = %d, want %d (expired records must never be inserted)", st.Items(), wantLive)
	}
	p := st.Pin()
	defer p.Unpin()
	for _, c := range cases {
		it, ok := st.Get(p, []byte(c.key))
		if ok != c.live {
			t.Fatalf("Get(%q) present=%v, want %v", c.key, ok, c.live)
		}
		if c.live {
			if string(it.Data) != "v-"+c.key || it.Flags != 7 || it.ExpireAt != c.expireAt {
				t.Fatalf("Get(%q) = %+v: flags/expiry must survive the restart byte-for-byte", c.key, it)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Satellite: TTLs survive restart as absolute wallclock — an item stored
// with a relative exptime keeps its original deadline through
// snapshot/restore, rather than getting a fresh lease.
// ---------------------------------------------------------------------------

func TestSnapshotTTLAbsoluteAcrossRestart(t *testing.T) {
	clock := int64(1_754_000_000)
	st, err := NewStore("ht-clht-lb", 1<<10, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	st.now = func() int64 { return clock }
	p := st.Pin()
	st.Set(p, []byte("ttl"), 0, 100, []byte("v")) // expires at clock+100
	p.Unpin()

	var buf bytes.Buffer
	if _, err := st.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Restart 60 "seconds" later: 40 seconds of TTL must remain.
	st2, err := NewStore("ht-clht-lb", 1<<10, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	clock2 := clock + 60
	st2.now = func() int64 { return clock2 }
	if _, err := st2.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	p2 := st2.Pin()
	if _, ok := st2.Get(p2, []byte("ttl")); !ok {
		t.Fatal("item should still be live 60s after store (TTL 100s)")
	}
	p2.Unpin()
	clock2 = clock + 101
	p3 := st2.Pin()
	if _, ok := st2.Get(p3, []byte("ttl")); ok {
		t.Fatal("item must expire at its ORIGINAL absolute deadline, not restart+100")
	}
	p3.Unpin()
}

// ---------------------------------------------------------------------------
// Server-level: msnap over the wire, warm boot, shutdown snapshot, corrupt
// file boot, and the post-mortem stats line.
// ---------------------------------------------------------------------------

func startSnapServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerMSnapWarmBoot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	s1 := startSnapServer(t, Config{Algo: "ht-clht-lb", SnapshotPath: path})

	c, err := Dial(s1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Set(fmt.Sprintf("key-%04d", i), uint32(i), 0, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.MSnap(); err != nil {
		t.Fatalf("msnap: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["snapshot_items"] != fmt.Sprint(n) || st["snapshots_taken"] != "1" || st["snapshot_errors"] != "0" {
		t.Fatalf("stats after msnap: items=%s taken=%s errs=%s", st["snapshot_items"], st["snapshots_taken"], st["snapshot_errors"])
	}
	if st["snapshot_last_unix"] == "0" || st["snapshot_bytes"] == "0" {
		t.Fatalf("stats after msnap: last=%s bytes=%s", st["snapshot_last_unix"], st["snapshot_bytes"])
	}
	c.Close()
	// Hard close — no drain, no final snapshot — simulating a kill. The
	// msnap file alone must warm the next boot.
	s1.Close()

	s2 := startSnapServer(t, Config{Algo: "ht-clht-lb", SnapshotPath: path})
	c2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2["loaded_items"] != fmt.Sprint(n) {
		t.Fatalf("warm boot loaded_items = %s, want %d", st2["loaded_items"], n)
	}
	if st2["curr_items"] != fmt.Sprint(n) {
		t.Fatalf("warm boot curr_items = %s, want %d", st2["curr_items"], n)
	}
	for _, i := range []int{0, 7, 123, n - 1} {
		e, ok, err := c2.Get(fmt.Sprintf("key-%04d", i))
		if err != nil || !ok || string(e.Data) != fmt.Sprintf("val-%04d", i) || e.Flags != uint32(i) {
			t.Fatalf("warm boot get key-%04d = %+v ok=%v err=%v", i, e, ok, err)
		}
	}
}

func TestServerMSnapDisabled(t *testing.T) {
	s := startSnapServer(t, Config{Algo: "ht-clht-lb"})
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.MSnap()
	if err == nil || !strings.Contains(err.Error(), "snapshot disabled") {
		t.Fatalf("msnap on snapshot-less server: %v", err)
	}
	// The connection survives the refusal.
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestServerShutdownFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	s1 := startSnapServer(t, Config{Algo: "sl-fraser-opt", Ordered: true, SnapshotPath: path})
	c, err := Dial(s1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("key-%04d", i), 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// No msnap was ever issued: the file exists purely because Shutdown
	// takes the final cut.
	hdr, items, err := snapshot.VerifyFile(path)
	if err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	if items != 100 || hdr.Algo != "sl-fraser-opt" || !hdr.Ordered {
		t.Fatalf("final snapshot: items=%d hdr=%+v", items, hdr)
	}

	s2 := startSnapServer(t, Config{Algo: "sl-fraser-opt", Ordered: true, SnapshotPath: path})
	if got := s2.StatsMap()["loaded_items"]; got != "100" {
		t.Fatalf("warm boot after Shutdown: loaded_items = %s", got)
	}
}

func TestServerBootFromCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	if err := os.WriteFile(path, []byte("this is not a snapshot file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs []string
	var mu sync.Mutex
	s := startSnapServer(t, Config{Algo: "ht-clht-lb", SnapshotPath: path, Logf: func(f string, a ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	}})
	// Boots empty, serves, and logged loudly.
	st := s.StatsMap()
	if st["loaded_items"] != "0" || st["curr_items"] != "0" || st["snapshot_errors"] != "1" {
		t.Fatalf("corrupt boot: loaded=%s curr=%s errs=%s", st["loaded_items"], st["curr_items"], st["snapshot_errors"])
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "SNAPSHOT REJECTED") {
		t.Fatalf("corrupt snapshot not logged loudly: %q", joined)
	}
	// The damaged file is left in place for the operator...
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("corrupt file was removed: %v", err)
	}
	// ...and the server still serves and can replace it with a good one.
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.MSnap(); err != nil {
		t.Fatal(err)
	}
	if _, items, err := snapshot.VerifyFile(path); err != nil || items != 1 {
		t.Fatalf("msnap over corrupt file: items=%d err=%v", items, err)
	}
}

func TestServerBackgroundSnapshotTicker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	s := startSnapServer(t, Config{Algo: "ht-clht-lb", SnapshotPath: path, SnapshotInterval: 20 * time.Millisecond})
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.StatsMap(); st["snapshots_taken"] != "0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background ticker never snapshotted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := snapshot.VerifyFile(path); err != nil {
		t.Fatalf("ticker snapshot invalid: %v", err)
	}
	// Close stops the ticker goroutine (stopSnapshotLoop waits for it).
	s.Close()
}

// TestServerFinalStatsEmitted is the satellite moved-emission proof: the
// post-mortem line comes from the server itself on Close, so embedded and
// test users get it without cmd/ascyserve's signal path — and it carries
// the snapshot fields.
func TestServerFinalStatsEmitted(t *testing.T) {
	dir := t.TempDir()
	var logs []string
	var mu sync.Mutex
	s := startSnapServer(t, Config{Algo: "ht-clht-lb", SnapshotPath: filepath.Join(dir, "snap.db"), Logf: func(f string, a ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	}})
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Set("k", 0, 0, []byte("v"))
	c.MSnap()
	c.Close()
	s.Close()
	s.Close() // idempotent: the line must not repeat

	mu.Lock()
	defer mu.Unlock()
	count := 0
	var line string
	for _, l := range logs {
		if strings.Contains(l, "final stats:") {
			count++
			line = l
		}
	}
	if count != 1 {
		t.Fatalf("final stats emitted %d times, want 1: %q", count, logs)
	}
	for _, field := range []string{"conns=", "sets=", "panics=", "snapshots=1", "loaded_items=0"} {
		if !strings.Contains(line, field) {
			t.Fatalf("final stats line missing %q: %q", field, line)
		}
	}
}
