package server

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// startScanServer boots an ordered (or not) server for the wire-level scan
// tests and returns a connected client.
func startScanServer(t *testing.T, algo string, shards int, ordered bool) *Client {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", Algo: algo, Shards: shards, Ordered: ordered})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	t.Cleanup(func() { s.Close(); <-done })
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestServerMRangeWire drives the scan verbs over the wire: inclusive
// bounds, limit truncation at the server's sorted prefix, inverted ranges,
// extremes, and the refusal line on an unordered server.
func TestServerMRangeWire(t *testing.T) {
	for _, tc := range []struct {
		algo   string
		shards int
	}{
		{"sl-fraser-opt", 1},
		{"sl-fraser-opt", 4},
		{"ht-clht-lb", 4}, // snapshot+sort path must speak the same protocol
	} {
		t.Run(fmt.Sprintf("%s/shards-%d", tc.algo, tc.shards), func(t *testing.T) {
			cl := startScanServer(t, tc.algo, tc.shards, true)
			keys := []string{"apple", "banana", "cherry", "date", "elder", "fig", "grape"}
			for i, k := range keys {
				if err := cl.Set(k, uint32(i), 0, []byte("v-"+k)); err != nil {
					t.Fatal(err)
				}
			}
			wantKeys := func(es []Entry, want ...string) {
				t.Helper()
				var got []string
				for _, e := range es {
					got = append(got, e.Key)
				}
				if strings.Join(got, ",") != strings.Join(want, ",") {
					t.Fatalf("scan returned %v, want %v", got, want)
				}
			}

			es, err := cl.MRange("banana", "elder", 100)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys(es, "banana", "cherry", "date", "elder")
			for _, e := range es {
				if string(e.Data) != "v-"+e.Key {
					t.Fatalf("entry %q carries data %q", e.Key, e.Data)
				}
			}

			// Limit truncates the sorted prefix, not an arbitrary subset.
			es, err = cl.MRange("banana", "elder", 2)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys(es, "banana", "cherry")

			// Bounds need not be stored keys; inverted ranges yield nothing.
			es, err = cl.MRange("ap", "bz", 100)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys(es, "apple", "banana")
			es, err = cl.MRange("z", "a", 100)
			if err != nil {
				t.Fatal(err)
			}
			if len(es) != 0 {
				t.Fatalf("inverted range returned %d entries", len(es))
			}

			// Extremes.
			for _, x := range []struct {
				send func() error
				want string
			}{
				{cl.SendMMin, "apple"},
				{cl.SendMMax, "grape"},
			} {
				if err := x.send(); err != nil {
					t.Fatal(err)
				}
				if err := cl.Flush(); err != nil {
					t.Fatal(err)
				}
				es, err := cl.RecvGet()
				if err != nil {
					t.Fatal(err)
				}
				if len(es) != 1 || es[0].Key != x.want {
					t.Fatalf("extreme returned %v, want [%s]", es, x.want)
				}
			}
		})
	}

	t.Run("refused-when-unordered", func(t *testing.T) {
		cl := startScanServer(t, "ht-clht-lb", 1, false)
		if err := cl.Set("k", 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.MRange("a", "z", 10); err == nil || !strings.Contains(err.Error(), "ordered keyspace disabled") {
			t.Fatalf("unordered mrange error = %v, want the ordered-disabled refusal", err)
		}
		// The refusal is recoverable: the connection keeps serving.
		if e, ok, err := cl.Get("k"); err != nil || !ok || string(e.Data) != "v" {
			t.Fatalf("get after refused scan: %q %v %v", e.Data, ok, err)
		}
	})
}

// TestServerScanChurn is the wire churn differential: writers hammer an
// ordered server with sets and deletes while a scanner issues bounded
// mranges. Every response must hold the scan invariants regardless of
// interleaving — strictly ascending key order, no duplicates, every key
// within bounds, never more than the limit, and every returned value
// well-formed (the value a writer stored for that key). Run with -race this
// doubles as the wire-level ordered-map churn gate.
func TestServerScanChurn(t *testing.T) {
	for _, algo := range []string{"sl-fraser-opt", "ht-clht-lb"} {
		t.Run(algo, func(t *testing.T) {
			s, err := New(Config{Addr: "127.0.0.1:0", Algo: algo, Shards: 4, Ordered: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Listen(); err != nil {
				t.Fatal(err)
			}
			srvDone := make(chan struct{})
			go func() { s.Serve(); close(srvDone) }()
			defer func() { s.Close(); <-srvDone }()
			addr := s.Addr().String()

			const (
				writers  = 3
				keySpace = 200
				limit    = 32
			)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := Dial(addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					rng := xrand.New(uint64(w) + 7)
					for !stop.Load() {
						k := fmt.Sprintf("c%03d", rng.Uint64n(keySpace))
						if rng.Uint64n(3) == 0 {
							if _, err := cl.Delete(k); err != nil {
								t.Error(err)
								return
							}
						} else if err := cl.Set(k, 0, 0, []byte("val-"+k)); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}

			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			rng := xrand.New(99)
			deadline := time.Now().Add(800 * time.Millisecond)
			scans := 0
			for time.Now().Before(deadline) {
				lo := fmt.Sprintf("c%03d", rng.Uint64n(keySpace))
				hi := fmt.Sprintf("c%03d", rng.Uint64n(keySpace))
				if lo > hi {
					lo, hi = hi, lo
				}
				es, err := cl.MRange(lo, hi, limit)
				if err != nil {
					t.Fatal(err)
				}
				if len(es) > limit {
					t.Fatalf("scan [%s,%s] returned %d > limit %d", lo, hi, len(es), limit)
				}
				for i, e := range es {
					if e.Key < lo || e.Key > hi {
						t.Fatalf("scan [%s,%s] returned out-of-range key %q", lo, hi, e.Key)
					}
					if i > 0 && es[i-1].Key >= e.Key {
						t.Fatalf("scan [%s,%s] not strictly ascending: %q then %q", lo, hi, es[i-1].Key, e.Key)
					}
					if string(e.Data) != "val-"+e.Key {
						t.Fatalf("key %q carries foreign data %q", e.Key, e.Data)
					}
				}
				scans++
			}
			stop.Store(true)
			wg.Wait()
			if scans == 0 {
				t.Fatal("scanner made no progress")
			}
		})
	}
}

// TestStoreRangeScanSemantics covers the store layer directly: live-item
// filtering (expired entries are skipped without counting against the
// limit), the shard-spanning walk, and Min/MaxItem against an oracle.
func TestStoreRangeScanSemantics(t *testing.T) {
	st, err := NewStore("sl-fraser-opt", 1<<10, false, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ordered() {
		t.Fatal("store built ordered reports unordered")
	}
	rng := rand.New(rand.NewSource(5))
	var alive []string
	p := st.Pin()
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("s%04d", rng.Intn(2000))
		if rng.Intn(4) == 0 {
			// An already-expired item: stored, but never live.
			st.Set(p, []byte(k), 0, -1, []byte("dead"))
			for j, a := range alive {
				if a == k {
					alive = append(alive[:j], alive[j+1:]...)
					break
				}
			}
		} else {
			st.Set(p, []byte(k), 0, 0, []byte("live-"+k))
			found := false
			for _, a := range alive {
				if a == k {
					found = true
					break
				}
			}
			if !found {
				alive = append(alive, k)
			}
		}
	}
	p.Unpin()
	sort.Strings(alive)

	p = st.Pin()
	defer p.Unpin()
	var got []string
	n := st.RangeScan(p, []byte("s"), []byte("s9999"), 0, func(k string, it Item) bool {
		got = append(got, k)
		if string(it.Data) != "live-"+k {
			t.Fatalf("key %q yielded data %q", k, it.Data)
		}
		return true
	})
	if n != len(got) {
		t.Fatalf("RangeScan reported %d, yielded %d", n, len(got))
	}
	if strings.Join(got, ",") != strings.Join(alive, ",") {
		t.Fatalf("RangeScan live set mismatch:\n got %v\nwant %v", got, alive)
	}

	// Limit counts live items only.
	if len(alive) > 5 {
		var first []string
		st.RangeScan(p, []byte("s"), []byte("s9999"), 5, func(k string, _ Item) bool {
			first = append(first, k)
			return true
		})
		if strings.Join(first, ",") != strings.Join(alive[:5], ",") {
			t.Fatalf("limited scan = %v, want first 5 of %v", first, alive[:5])
		}
	}

	if k, _, ok := st.MinItem(p); !ok || k != alive[0] {
		t.Fatalf("MinItem = %q/%v, want %q", k, ok, alive[0])
	}
	if k, _, ok := st.MaxItem(p); !ok || k != alive[len(alive)-1] {
		t.Fatalf("MaxItem = %q/%v, want %q", k, ok, alive[len(alive)-1])
	}
}
