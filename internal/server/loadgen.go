package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Conn is the endpoint surface the load generator drives: the pipelined
// send/receive halves plus the handful of synchronous calls the harness
// phases (preload, stats snapshots) need. *Client implements it for a single
// server; the cluster package's client implements it for N-node scale-out —
// the generator itself cannot import that package (it lives above this one),
// so the seam is this interface plus the Dial factory on LoadgenConfig.
type Conn interface {
	SendGet(withCAS bool, keys ...string) error
	SendGet1(withCAS bool, key string) error
	SendStore(verb, key string, flags uint32, exptime int64, data []byte, casid uint64) error
	SendDelete(key string) error
	// SendMRange/RecvMRangeN are the ordered-scan pair: a single server
	// answers with get framing (RecvMRangeN is RecvGetN there), a cluster
	// endpoint fans out and accounts the merged, limit-truncated result.
	SendMRange(lo, hi string, limit uint64) error
	Flush() error
	RecvGetN() (entries int, dataBytes int64, err error)
	RecvMRangeN() (entries int, dataBytes int64, err error)
	RecvStored() (bool, error)
	RecvDeleted() (bool, error)
	Add(key string, flags uint32, exptime int64, data []byte) (bool, error)
	Stats() (map[string]string, error)
	FlushAll() error
	Close() error
	Abort() error
}

// nodeView is the optional per-node side of a Conn: a cluster client exposes
// its node list and per-node statistics so the run can report per-node load
// and achieved batch depth. Single-server connections simply don't.
type nodeView interface {
	Addrs() []string
	NodeStats() ([]map[string]string, error)
}

// healthView is the optional failover side of a Conn: a cluster client
// reports how many responses it synthesized under degraded mode and how many
// node failovers/reconnects it performed, so a chaos run's BENCH artifact
// records the outage alongside the throughput it was measured under.
type healthView interface {
	DegradedCounts() (misses, errs uint64)
	NodeFailovers() (failovers, reconnects uint64)
}

// LoadgenConfig configures one load-generation run against a
// memcached-protocol endpoint.
type LoadgenConfig struct {
	// Addr is the target server.
	Addr string
	// Dial overrides the connection factory. nil dials Addr directly (with
	// DialTimeout retry); cluster mode passes a factory that opens one
	// cluster client (its own connection per node) per generator connection.
	Dial func() (Conn, error)
	// DialTimeout bounds the connect retry window of the default factory
	// (see DialRetry); 0 falls back to the fill() default. Freshly exec'd
	// servers lose the boot race against their first client routinely, so
	// the generator absorbs that window instead of failing the run.
	DialTimeout time.Duration
	// FlushBefore issues a flush_all before preloading, so back-to-back
	// sweep runs against reused server processes start from an empty store
	// instead of inheriting the previous run's keys.
	FlushBefore bool
	// Conns is the number of client connections (each driven by its own
	// sender/receiver goroutine pair).
	Conns int
	// Pipeline is the closed-loop window: each connection keeps up to
	// this many requests outstanding. 1 degenerates to strict
	// request/response.
	Pipeline int
	// Duration of the measured window.
	Duration time.Duration
	// Keys is the hot keyspace size N. Preload fills N random keys drawn
	// from [1..2N] — the paper's protocol carried onto the wire — so gets
	// start near a 50% hit rate and the update mix holds it there.
	Keys int
	// ValueSize is the stored value size in bytes.
	ValueSize int
	// Mix is the operation mix, shared with the in-process harness:
	// searches become gets, inserts sets, removes deletes, and range
	// scans multi-gets of MultiGet consecutive keys.
	Mix workload.Mix
	// MultiGet is the batch size a range-scan draw turns into on a
	// non-ordered endpoint (the multi-get fallback; default 10).
	MultiGet int
	// ScanSpan is the key-index span of one range-scan draw against an
	// ordered endpoint: the scan runs [keys[i], keys[i+span]] with limit
	// span, so both the range width and the response size are bounded.
	// Defaults to MultiGet, keeping scan and fallback payloads comparable.
	ScanSpan int
	// KeyDist selects the key-draw distribution: "uniform" (default) or
	// "zipf:<s>" with skew s > 1 (e.g. "zipf:1.2") — hot-key skew, drawn via
	// the standard bounded zipf sampler over the same seeded generator, so
	// runs stay reproducible.
	KeyDist string
	// SampleEvery samples the latency of every n-th request per class
	// (default 4; 1 records everything).
	SampleEvery int
	// Seed makes runs reproducible; connection i uses Seed+i.
	Seed uint64
	// TolerateDegraded keeps the run driving through degraded responses
	// (server.IsDegraded errors from a failover-capable endpoint): instead
	// of failing the connection, the receiver counts the synthesized
	// response and moves on. This is what lets a chaos run measure
	// throughput THROUGH a node outage rather than aborting at its edge.
	TolerateDegraded bool

	// scanOK is resolved during preload from the endpoint's stats ("ordered"
	// yes/no): real mrange scans when the server is ordered, the multi-get
	// fallback otherwise. zipfS is KeyDist parsed (0 = uniform).
	scanOK bool
	zipfS  float64
}

// parseKeyDist parses a KeyDist spec into the zipf skew (0 for uniform).
func parseKeyDist(spec string) (float64, error) {
	switch {
	case spec == "" || spec == "uniform":
		return 0, nil
	case strings.HasPrefix(spec, "zipf:"):
		s, err := strconv.ParseFloat(spec[len("zipf:"):], 64)
		if err != nil || s <= 1 {
			return 0, fmt.Errorf("loadgen: bad key distribution %q (want zipf:<s> with s > 1)", spec)
		}
		return s, nil
	}
	return 0, fmt.Errorf("loadgen: bad key distribution %q (want \"uniform\" or \"zipf:<s>\")", spec)
}

// xrandSource adapts the workload generator's xorshift128+ stream to
// math/rand's Source64, so the stdlib's bounded zipf sampler can draw from
// the same reproducible per-connection streams — no new dependency, no
// second seeding scheme.
type xrandSource struct{ s *xrand.State }

func (x xrandSource) Uint64() uint64  { return x.s.Uint64() }
func (x xrandSource) Int63() int64    { return int64(x.s.Uint64() >> 1) }
func (x xrandSource) Seed(seed int64) { x.s.Seed(uint64(seed)) }

func (c *LoadgenConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.MultiGet <= 0 {
		c.MultiGet = 10
	}
	if c.ScanSpan <= 0 {
		c.ScanSpan = c.MultiGet
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
}

// connect opens one endpoint connection per the config: the Dial factory
// when set, otherwise a retrying dial of Addr.
func (c *LoadgenConfig) connect() (Conn, error) {
	if c.Dial != nil {
		return c.Dial()
	}
	return DialRetry(c.Addr, c.DialTimeout)
}

// Latency classes of the load generator.
const (
	lgGet = iota
	lgSet
	lgDelete
	lgMGet
	lgRange
	numLgClasses
)

var lgClassNames = [numLgClasses]string{"get", "set", "delete", "mget", "mrange"}

// pending is one in-flight request: what the receiver must parse, and when
// it left (t0 zero when the request is not latency-sampled).
type pending struct {
	class int8
	t0    time.Time
}

// LoadgenResult aggregates one run.
type LoadgenResult struct {
	Cfg     LoadgenConfig
	Algo    string // from the server's stats ("algo"), if it reports one
	Shards  int    // from the server's stats ("shards"); 0 when not reported
	Elapsed time.Duration

	// CPUs is GOMAXPROCS at the time the run was driven — the multi-core
	// sweep's independent variable (see RunCPUSweep). For self-served runs
	// it bounds server and generator together, matching the paper's
	// n-thread configurations.
	CPUs int

	// BatchDepthAvg is the server-side achieved batch depth over the run
	// (Δcmd_batched / Δbatches from the server's stats): how many pipelined
	// commands the server actually executed per pin/epoch/clock/dispatch
	// round. 0 when the server does not report batch stats; 1.0 means no
	// amortization happened. For a cluster run the deltas are summed across
	// nodes, so this is the traffic-weighted average; NodeLoads has the
	// per-node values.
	BatchDepthAvg float64

	// NodeLoads is the per-node server-side accounting of a cluster run,
	// indexed like the cluster's address list (empty for single-server
	// runs): each node's served requests and achieved batch depth over the
	// run window, so uneven routing or per-node amortization loss is visible
	// instead of averaged away.
	NodeLoads []NodeLoad

	// Failover accounting of a degraded-tolerant run (zero for single-server
	// runs and outage-free cluster runs). Degraded is how many requests the
	// receiver saw answered with a synthesized degraded response; the
	// DegradedMisses/DegradedErrors pair is the endpoint's own count of
	// synthesized misses and errors (reads absorbed as misses never surface
	// as receiver errors, so the client-side count is the authoritative one);
	// NodeFailovers/NodeReconnects count connection losses and verified
	// recoveries across the run's connections.
	Degraded       uint64
	DegradedMisses uint64
	DegradedErrors uint64
	NodeFailovers  uint64
	NodeReconnects uint64

	Ops        uint64 // requests completed (a multi-get or scan counts once)
	Gets       uint64
	GetHits    uint64
	GetMisses  uint64
	Sets       uint64
	Deletes    uint64
	DeleteHits uint64
	MGets      uint64
	MGetKeys   uint64
	Scans      uint64 // mrange scans completed (ordered endpoints only)
	ScanKeys   uint64 // entries those scans returned

	// ScanFallback is true when the mix asked for range scans but the
	// endpoint is not ordered, so every scan draw ran as the multi-get
	// fallback (counted under MGets). A BENCH comparing scan throughput
	// must not read a fallback run as a native one.
	ScanFallback bool

	// Warm-restart accounting (v7), read from the endpoint's stats at
	// preload time: WarmStart is true when the server booted from a
	// snapshot (loaded_items > 0), LoadedItems how many items that warm
	// boot recovered, and SnapshotLoadMS how long the load took. All zero
	// against servers without persistence. Snapshots counts snapshots the
	// server took during the run window (Δsnapshots_taken) — the
	// during-load degradation comparison's marker: a baseline run has 0.
	WarmStart      bool
	LoadedItems    uint64
	SnapshotLoadMS float64
	Snapshots      uint64

	// Latency is the send-to-response distribution per class plus "all".
	Latency map[string]stats.Summary

	// Client-side generator hygiene, measured across the driving window:
	// heap allocations per completed request and total GC pause time.
	// They separate server regressions from generator noise — a latency
	// shift with flat ClientAllocsPerOp and GCPause is the server's. In
	// self-served runs (in-process server) the process-wide counters
	// include the server's own allocations; over-the-wire runs isolate
	// the client.
	ClientAllocsPerOp float64
	ClientGCPause     time.Duration
	ClientNumGC       uint32
}

// NodeLoad is one cluster node's share of a run: the requests it served and
// the batch depth it achieved over the run window (deltas of its own stats).
type NodeLoad struct {
	Addr          string
	Reqs          uint64
	BatchDepthAvg float64
}

// ReqsServed sums a server's served-command counters from a stats map — the
// per-node load measure the cluster's aggregated stats and the load
// generator's per-node reporting share.
func ReqsServed(st map[string]string) uint64 {
	var n uint64
	for _, k := range [...]string{"cmd_get", "cmd_set", "cmd_delete", "cmd_incr", "cmd_decr", "cmd_flush", "cmd_mrange", "cmd_mmin", "cmd_mmax"} {
		v, _ := strconv.ParseUint(st[k], 10, 64)
		n += v
	}
	return n
}

// nodeSnap is one node's cumulative counters at a phase boundary.
type nodeSnap struct {
	reqs, batches, batched uint64
}

func snapNodes(per []map[string]string) []nodeSnap {
	out := make([]nodeSnap, len(per))
	for i, st := range per {
		out[i].reqs = ReqsServed(st)
		out[i].batches, _ = strconv.ParseUint(st["batches"], 10, 64)
		out[i].batched, _ = strconv.ParseUint(st["cmd_batched"], 10, 64)
	}
	return out
}

// Throughput returns completed requests per second.
func (r LoadgenResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MissRate returns the get miss fraction.
func (r LoadgenResult) MissRate() float64 {
	if r.Gets == 0 {
		return 0
	}
	return float64(r.GetMisses) / float64(r.Gets)
}

// lgConn is the per-connection accounting. The sender goroutine owns the
// send side, the receiver everything else; the aggregation reads both after
// the connection's goroutines are joined.
type lgConn struct {
	ops, gets, hits, misses, sets, dels, delHits, mgets, mgetKeys uint64
	scans, scanKeys                                               uint64
	degraded                                                      uint64 // degraded responses tolerated by the receiver
	degMisses, degErrors                                          uint64 // endpoint's synthesized-response counts
	failovers, reconnects                                         uint64 // endpoint's node failover/recovery counts
	lat                                                           [numLgClasses]stats.Recorder
	all                                                           stats.Recorder
	dead                                                          atomic.Bool // receiver failed; sender must stop
	sendErr, recvErr                                              error
}

// RunLoadgen preloads the keyspace, then drives the server closed-loop for
// the configured duration: each connection pairs a sender that draws
// operations from the mix with a receiver that consumes responses, coupled
// by a channel whose capacity is the pipeline depth — the window refills
// exactly as fast as responses drain it. The sender flushes its write
// buffer before any enqueue that could block, so the server always holds
// every request the receiver is waiting on.
func RunLoadgen(cfg LoadgenConfig) (LoadgenResult, error) {
	cfg.fill()
	zipfS, err := parseKeyDist(cfg.KeyDist)
	if err != nil {
		return LoadgenResult{Cfg: cfg}, err
	}
	cfg.zipfS = zipfS
	res := LoadgenResult{Cfg: cfg, CPUs: runtime.GOMAXPROCS(0)}

	// Key table: draws index [1..2N] like the paper's key range.
	keys := make([]string, 2*cfg.Keys+1)
	for i := range keys {
		keys[i] = "k" + strconv.Itoa(i)
	}
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}

	// Preload N distinct random keys.
	pre, err := cfg.connect()
	if err != nil {
		return res, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
	}
	if cfg.FlushBefore {
		if err := pre.FlushAll(); err != nil {
			pre.Close()
			return res, fmt.Errorf("loadgen: flush_all: %w", err)
		}
	}
	// Walk the whole key domain in a seeded random order, stopping at N
	// stored. A bounded sweep rather than rejection sampling: against a
	// server that already holds data (a second run, a shared instance)
	// fewer than N keys may be absent, and the sweep terminates anyway.
	prng := xrand.New(cfg.Seed + 0x5eed)
	perm := make([]uint64, 2*cfg.Keys)
	for i := range perm {
		perm[i] = uint64(i) + 1
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := prng.Uint64n(uint64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for n, ki := 0, 0; n < cfg.Keys && ki < len(perm); ki++ {
		stored, err := pre.Add(keys[perm[ki]], 0, 0, value)
		if err != nil {
			pre.Close()
			return res, fmt.Errorf("loadgen: preload: %w", err)
		}
		if stored {
			n++
		}
	}
	var batches0, batched0, snaps0 uint64
	if st, err := pre.Stats(); err == nil {
		res.Algo = st["algo"]
		if n, err := strconv.Atoi(st["shards"]); err == nil {
			res.Shards = n
		}
		// Batch counters are cumulative since server start; snapshot them
		// so the run reports its own achieved depth, not history's.
		batches0, _ = strconv.ParseUint(st["batches"], 10, 64)
		batched0, _ = strconv.ParseUint(st["cmd_batched"], 10, 64)
		// Warm-restart accounting (v7): a server that booted from a
		// snapshot reports what it recovered and how long the load took.
		res.LoadedItems, _ = strconv.ParseUint(st["loaded_items"], 10, 64)
		res.WarmStart = res.LoadedItems > 0
		res.SnapshotLoadMS, _ = strconv.ParseFloat(st["snapshot_load_ms"], 64)
		snaps0, _ = strconv.ParseUint(st["snapshots_taken"], 10, 64)
		// Ordered capability probe: a "yes" (identical on every node, so a
		// cluster's aggregated stats carry it through) routes range draws
		// to real mrange scans; anything else falls back to multi-gets.
		cfg.scanOK = st["ordered"] == "yes"
	}
	if cfg.Mix.RangePct > 0 && !cfg.scanOK {
		res.ScanFallback = true
	}
	// Cluster endpoints also expose per-node stats; snapshot those too so
	// the run can report each node's own load and batch depth.
	var nodeAddrs []string
	var nodes0 []nodeSnap
	if nv, ok := pre.(nodeView); ok {
		nodeAddrs = append([]string(nil), nv.Addrs()...)
		if per, err := nv.NodeStats(); err == nil {
			nodes0 = snapNodes(per)
		}
	}
	pre.Close()

	states := make([]*lgConn, cfg.Conns)
	clients := make([]Conn, 0, cfg.Conns)
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.Duration)
	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	begin := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		cs := &lgConn{}
		states[i] = cs
		cl, err := cfg.connect()
		if err != nil {
			// Stop and join the connections already running before
			// reporting: leaving them loading the server after the call
			// returned an error would corrupt any follow-up run.
			for _, st := range states[:i] {
				st.dead.Store(true)
			}
			for _, c := range clients {
				c.Abort()
			}
			wg.Wait()
			return res, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		clients = append(clients, cl)
		wg.Add(1)
		go func(i int, cl Conn, cs *lgConn) {
			defer wg.Done()
			defer cl.Close()
			window := make(chan pending, cfg.Pipeline)
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				lgReceive(cl, cs, cfg.TolerateDegraded, window)
			}()
			cs.sendErr = lgSend(cl, cs, cfg, i, keys, value, deadline, window)
			cl.Flush()
			close(window)
			rwg.Wait()
			// Harvest the endpoint's own failover accounting before Close
			// tears it down (a fresh post-run connection would read zeros).
			if hv, ok := cl.(healthView); ok {
				cs.degMisses, cs.degErrors = hv.DegradedCounts()
				cs.failovers, cs.reconnects = hv.NodeFailovers()
			}
		}(i, cl, cs)
	}
	wg.Wait()
	res.Elapsed = time.Since(begin)
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)
	res.ClientGCPause = time.Duration(mem1.PauseTotalNs - mem0.PauseTotalNs)
	res.ClientNumGC = mem1.NumGC - mem0.NumGC

	var all stats.Recorder
	var lat [numLgClasses]stats.Recorder
	var firstErr error
	for _, cs := range states {
		if firstErr == nil {
			if cs.recvErr != nil {
				firstErr = cs.recvErr
			} else if cs.sendErr != nil {
				firstErr = cs.sendErr
			}
		}
		res.Degraded += cs.degraded
		res.DegradedMisses += cs.degMisses
		res.DegradedErrors += cs.degErrors
		res.NodeFailovers += cs.failovers
		res.NodeReconnects += cs.reconnects
		res.Ops += cs.ops
		res.Gets += cs.gets
		res.GetHits += cs.hits
		res.GetMisses += cs.misses
		res.Sets += cs.sets
		res.Deletes += cs.dels
		res.DeleteHits += cs.delHits
		res.MGets += cs.mgets
		res.MGetKeys += cs.mgetKeys
		res.Scans += cs.scans
		res.ScanKeys += cs.scanKeys
		all.Merge(&cs.all)
		for cl := range lat {
			lat[cl].Merge(&cs.lat[cl])
		}
	}
	if firstErr != nil {
		return res, fmt.Errorf("loadgen: connection error: %w", firstErr)
	}
	if res.Ops > 0 {
		res.ClientAllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(res.Ops)
	}
	// Achieved server-side batch depth over the run window — global, and
	// per node when the endpoint exposes a node view.
	if post, err := cfg.connect(); err == nil {
		if st, err := post.Stats(); err == nil {
			batches1, _ := strconv.ParseUint(st["batches"], 10, 64)
			batched1, _ := strconv.ParseUint(st["cmd_batched"], 10, 64)
			// Both deltas must be forward: a node restart mid-run resets
			// counters, and an unsigned wrap here would report an absurd
			// depth instead of honestly reporting none.
			if batches1 > batches0 && batched1 >= batched0 {
				res.BatchDepthAvg = float64(batched1-batched0) / float64(batches1-batches0)
			}
			// Snapshots taken inside the run window (v7). Forward-only,
			// like the batch deltas: a restart mid-run resets counters.
			if snaps1, _ := strconv.ParseUint(st["snapshots_taken"], 10, 64); snaps1 > snaps0 {
				res.Snapshots = snaps1 - snaps0
			}
		}
		if nv, ok := post.(nodeView); ok && len(nodes0) > 0 {
			if per, err := nv.NodeStats(); err == nil && len(per) == len(nodes0) {
				nodes1 := snapNodes(per)
				res.NodeLoads = make([]NodeLoad, len(nodes1))
				for i := range nodes1 {
					// A node that restarted mid-run (chaos) reset its
					// counters, making the post-run value smaller than the
					// snapshot; the unsigned delta would wrap to garbage.
					// The absolute post-restart value — what the reborn
					// process served — is the honest lower bound.
					n1, n0 := nodes1[i], nodes0[i]
					if n1.reqs < n0.reqs || n1.batches < n0.batches || n1.batched < n0.batched {
						n0 = nodeSnap{}
					}
					nl := NodeLoad{Addr: nodeAddrs[i], Reqs: n1.reqs - n0.reqs}
					if db := n1.batches - n0.batches; db > 0 {
						nl.BatchDepthAvg = float64(n1.batched-n0.batched) / float64(db)
					}
					res.NodeLoads[i] = nl
				}
			}
		}
		post.Close()
	}
	res.Latency = map[string]stats.Summary{"all": all.Summarize()}
	for cl := range lat {
		if lat[cl].Count() > 0 {
			res.Latency[lgClassNames[cl]] = lat[cl].Summarize()
		}
	}
	return res, nil
}

// lgSend is the sender half of one connection: draw, encode, enqueue. It
// returns when the deadline passes, the receiver dies, or a send fails.
// The loop body allocates nothing: keys come from the prebuilt table, the
// multi-get batch is a reused scratch slice, and the send paths format
// numbers into retained buffers.
func lgSend(cl Conn, cs *lgConn, cfg LoadgenConfig, conn int, keys []string, value []byte, deadline time.Time, window chan pending) error {
	rng := xrand.New(cfg.Seed + uint64(conn) + 1)
	kr := uint64(2 * cfg.Keys)
	// draw picks a key index in [1, kr]: uniform by default, or the bounded
	// zipf sampler over its own xorshift stream when the config asked for
	// hot-key skew. Neither path allocates per draw.
	draw := func() uint64 { return rng.Uint64n(kr) + 1 }
	if cfg.zipfS > 0 {
		zr := rand.New(xrandSource{xrand.New(cfg.Seed + uint64(conn) + 0x21bf)})
		zipf := rand.NewZipf(zr, cfg.zipfS, 1, kr-1)
		draw = func() uint64 { return zipf.Uint64() + 1 }
	}
	var countdown [numLgClasses]int
	batch := make([]string, 0, cfg.MultiGet)
	for time.Now().Before(deadline) && !cs.dead.Load() {
		k := keys[draw()]
		kind := cfg.Mix.Next(rng)
		var p pending
		var err error
		switch kind {
		case workload.KindSearch:
			p.class = lgGet
			err = cl.SendGet1(false, k)
		case workload.KindInsert:
			p.class = lgSet
			err = cl.SendStore("set", k, 0, 0, value, 0)
		case workload.KindRemove:
			p.class = lgDelete
			err = cl.SendDelete(k)
		case workload.KindRange:
			if cfg.scanOK {
				// Real ordered scan. The table's keys are "k<index>", which
				// is NOT lexicographic in the index ("k10" < "k2"), so the
				// two drawn endpoints are compared as the server will compare
				// them — as strings — and swapped into scan order. The limit
				// is the span, bounding the response like the fallback's
				// batch size does.
				p.class = lgRange
				start := draw()
				end := start + uint64(cfg.ScanSpan)
				if end >= uint64(len(keys)) {
					end = uint64(len(keys)) - 1
				}
				lo, hi := keys[start], keys[end]
				if lo > hi {
					lo, hi = hi, lo
				}
				err = cl.SendMRange(lo, hi, uint64(cfg.ScanSpan))
				break
			}
			p.class = lgMGet
			start := rng.Uint64n(kr) + 1
			batch = batch[:0]
			for j := 0; j < cfg.MultiGet && int(start)+j < len(keys); j++ {
				batch = append(batch, keys[start+uint64(j)])
			}
			err = cl.SendGet(false, batch...)
		}
		if err != nil {
			return err
		}
		if countdown[p.class] == 0 {
			countdown[p.class] = cfg.SampleEvery
			p.t0 = time.Now()
		}
		countdown[p.class]--
		// Never block on a full window with unflushed requests: the
		// receiver could be waiting on bytes still in our buffer.
		if len(window) == cap(window) {
			if err := cl.Flush(); err != nil {
				return err
			}
		}
		window <- p
	}
	return nil
}

// lgReceive is the receiver half: parse responses in request order. On an
// error it marks the connection dead and drains the window so the sender
// never blocks against a gone receiver. Responses are consumed through the
// discarding receive paths, so the steady-state loop allocates nothing and
// the latency samples never include client GC work.
//
// With tolerate set, a degraded error (a failover-capable endpoint
// synthesizing "node down" for a request it could not route) is a counted
// outcome, not a failure: the pipeline behind it is still aligned, so the
// run keeps driving straight through the outage. The degraded response is
// excluded from the latency samples — it was synthesized locally in
// nanoseconds and would only dilute the distribution of real round trips.
func lgReceive(cl Conn, cs *lgConn, tolerate bool, window chan pending) {
	fail := func(err error) {
		cs.recvErr = err
		cs.dead.Store(true)
		for range window {
		}
	}
	// Pre-grow the recorders so sampling appends do not allocate mid-run.
	const reserve = 1 << 14
	cs.all.Reserve(reserve)
	for cl := range cs.lat {
		cs.lat[cl].Reserve(reserve / 2)
	}
	for p := range window {
		degraded := false
		switch p.class {
		case lgGet, lgMGet:
			es, _, err := cl.RecvGetN()
			if err != nil {
				if !tolerate || !IsDegraded(err) {
					fail(err)
					return
				}
				degraded = true
			} else if p.class == lgGet {
				cs.gets++
				if es > 0 {
					cs.hits++
				} else {
					cs.misses++
				}
			} else {
				cs.mgets++
				cs.mgetKeys += uint64(es)
			}
		case lgRange:
			es, _, err := cl.RecvMRangeN()
			if err != nil {
				if !tolerate || !IsDegraded(err) {
					fail(err)
					return
				}
				degraded = true
			} else {
				cs.scans++
				cs.scanKeys += uint64(es)
			}
		case lgSet:
			if _, err := cl.RecvStored(); err != nil {
				if !tolerate || !IsDegraded(err) {
					fail(err)
					return
				}
				degraded = true
			} else {
				cs.sets++
			}
		case lgDelete:
			ok, err := cl.RecvDeleted()
			if err != nil {
				if !tolerate || !IsDegraded(err) {
					fail(err)
					return
				}
				degraded = true
			} else {
				cs.dels++
				if ok {
					cs.delHits++
				}
			}
		}
		cs.ops++
		if degraded {
			cs.degraded++
			continue
		}
		if !p.t0.IsZero() {
			cs.lat[p.class].AddSince(p.t0)
			cs.all.AddSince(p.t0)
		}
	}
}

// --- BENCH_server.json ---

// BenchSchema identifies the BENCH_server.json layout. v2 added the per-run
// client pipeline depth and the server-side achieved batch depth; v3 added
// cluster scale-out (per-run node count, per-node request and batch-depth
// arrays) and the client machine's gomaxprocs/numcpu in the shared config;
// v4 makes the core count a per-run variable — each run records the
// GOMAXPROCS it was driven at ("cpus") plus its scaling efficiency against
// the matching single-core run, so the multi-core sweep (the paper's
// x-axis) lives in one artifact instead of one file per core count; v5 adds
// the failover accounting of a degraded-tolerant run (degraded misses and
// errors, node failovers and reconnects), so chaos-run throughput carries
// the outage it was measured under; v6 adds the ordered-scan dimension —
// per-run range_pct (the scan-mix sweep's variable), scan counts/keys, and
// the scan_fallback marker separating native mrange runs from multi-get
// fallbacks, plus scan_span and key_dist in the shared config; v7 adds the
// persistence dimension — per-run warm_start/loaded_items/snapshot_load_ms
// (warm-vs-cold restart comparisons) and snapshots (background snapshots
// taken inside the run window, the during-load degradation marker).
const BenchSchema = "ascylib/bench-server/v7"

// BenchRun is one load-generation run in machine-readable form.
type BenchRun struct {
	Algo string `json:"algo"`
	// Shards is the server-side keyspace partition count the run was
	// served with (0 for servers that predate the stat).
	Shards int `json:"shards"`
	// Pipeline is the client-side closed-loop window of this run; the
	// sweep varies it per run, so it lives here rather than in Config.
	Pipeline int `json:"pipeline"`
	// RangePct is the scan share of this run's mix (v6): the scan-mix
	// sweep varies it per run, so it lives here; Config.RangePct keeps the
	// sweep's base value for older readers.
	RangePct int `json:"range_pct"`
	// CPUs is the GOMAXPROCS this run was driven at (v4): the multi-core
	// sweep's independent variable.
	CPUs int `json:"cpus"`
	// ScalingEfficiency is T(c)/(c·T(1)) against the run with the fewest
	// cpus in the same (algo, shards, pipeline, nodes) group — 1.0 is
	// perfect linear scaling, computed by WriteBench across the sweep's
	// runs. 0 when the file holds no matching baseline (single-point runs).
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// BatchDepthAvg is the server-side achieved batch depth over the run
	// (see LoadgenResult.BatchDepthAvg).
	BatchDepthAvg float64 `json:"batch_depth_avg"`
	// Nodes is how many server processes served the run (1 = single
	// server); NodeReqs and NodeBatchDepthAvg are that many entries, in
	// cluster address order, for cluster runs — per-node served requests
	// and achieved batch depth, so uneven load is visible in the artifact.
	Nodes             int       `json:"nodes"`
	NodeReqs          []uint64  `json:"node_reqs,omitempty"`
	NodeBatchDepthAvg []float64 `json:"node_batch_depth_avg,omitempty"`
	// Failover accounting (v5): responses the endpoint synthesized under
	// degraded mode and the node failovers/reconnects behind them. All zero
	// for single-server runs and outage-free cluster runs.
	DegradedMisses uint64  `json:"degraded_misses"`
	DegradedErrors uint64  `json:"degraded_errors"`
	NodeFailovers  uint64  `json:"node_failovers"`
	NodeReconnects uint64  `json:"node_reconnects"`
	Ops            uint64  `json:"ops"`
	DurationS      float64 `json:"duration_s"`
	ThroughputOpsS float64 `json:"throughput_ops_s"`
	MissRate       float64 `json:"miss_rate"`
	Gets           uint64  `json:"gets"`
	GetHits        uint64  `json:"get_hits"`
	GetMisses      uint64  `json:"get_misses"`
	Sets           uint64  `json:"sets"`
	Deletes        uint64  `json:"deletes"`
	MultiGets      uint64  `json:"multi_gets"`
	MultiGetKeys   uint64  `json:"multi_get_keys"`
	Scans          uint64  `json:"scans"`
	ScanKeys       uint64  `json:"scan_keys"`
	ScanFallback   bool    `json:"scan_fallback"`
	// Persistence accounting (v7): whether the serving node booted warm
	// from a snapshot (and what that cost), plus how many background
	// snapshots were taken during the run window — 0 marks a no-snapshot
	// baseline in a during-load degradation comparison.
	WarmStart      bool                         `json:"warm_start"`
	LoadedItems    uint64                       `json:"loaded_items"`
	SnapshotLoadMS float64                      `json:"snapshot_load_ms"`
	Snapshots      uint64                       `json:"snapshots"`
	LatencyUS      map[string]stats.SummaryJSON `json:"latency_us"`
	// Generator hygiene (see LoadgenResult): client-side allocations per
	// request and GC pause totals over the driving window.
	ClientAllocsPerOp float64 `json:"client_allocs_per_op"`
	ClientGCPauseUS   float64 `json:"client_gc_pause_us"`
	ClientNumGC       uint32  `json:"client_num_gc"`
}

// BenchFile is the BENCH_server.json document: the loadgen configuration
// and one run per algorithm driven. Since v2 the pipeline depth lives on
// each run (the sweep varies it), not in the shared config.
type BenchFile struct {
	Schema string `json:"schema"`
	Config struct {
		Conns       int     `json:"conns"`
		DurationS   float64 `json:"duration_s"`
		Keys        int     `json:"keys"`
		ValueSize   int     `json:"value_size"`
		UpdatePct   int     `json:"update_pct"`
		RangePct    int     `json:"range_pct"`
		MultiGet    int     `json:"multi_get"`
		ScanSpan    int     `json:"scan_span"`
		KeyDist     string  `json:"key_dist"`
		SampleEvery int     `json:"sample_every"`
		Seed        uint64  `json:"seed"`
		// The generator machine's parallelism at run time (v3): scale-out
		// and multi-core results are meaningless without them.
		GOMAXPROCS int `json:"gomaxprocs"`
		NumCPU     int `json:"numcpu"`
	} `json:"config"`
	Runs []BenchRun `json:"runs"`
}

// BenchRunOf digests a result for the bench file.
func BenchRunOf(r LoadgenResult) BenchRun {
	b := BenchRun{
		Algo:           r.Algo,
		Shards:         r.Shards,
		Pipeline:       r.Cfg.Pipeline,
		RangePct:       r.Cfg.Mix.RangePct,
		CPUs:           r.CPUs,
		BatchDepthAvg:  r.BatchDepthAvg,
		Nodes:          1,
		DegradedMisses: r.DegradedMisses,
		DegradedErrors: r.DegradedErrors,
		NodeFailovers:  r.NodeFailovers,
		NodeReconnects: r.NodeReconnects,
		Ops:            r.Ops,
		DurationS:      r.Elapsed.Seconds(),
		ThroughputOpsS: r.Throughput(),
		MissRate:       r.MissRate(),
		Gets:           r.Gets,
		GetHits:        r.GetHits,
		GetMisses:      r.GetMisses,
		Sets:           r.Sets,
		Deletes:        r.Deletes,
		MultiGets:      r.MGets,
		MultiGetKeys:   r.MGetKeys,
		Scans:          r.Scans,
		ScanKeys:       r.ScanKeys,
		ScanFallback:   r.ScanFallback,
		WarmStart:      r.WarmStart,
		LoadedItems:    r.LoadedItems,
		SnapshotLoadMS: r.SnapshotLoadMS,
		Snapshots:      r.Snapshots,
		LatencyUS:      map[string]stats.SummaryJSON{},

		ClientAllocsPerOp: r.ClientAllocsPerOp,
		ClientGCPauseUS:   float64(r.ClientGCPause) / 1e3,
		ClientNumGC:       r.ClientNumGC,
	}
	if len(r.NodeLoads) > 0 {
		b.Nodes = len(r.NodeLoads)
		for _, nl := range r.NodeLoads {
			b.NodeReqs = append(b.NodeReqs, nl.Reqs)
			b.NodeBatchDepthAvg = append(b.NodeBatchDepthAvg, nl.BatchDepthAvg)
		}
	}
	for name, s := range r.Latency {
		b.LatencyUS[name] = s.JSON()
	}
	return b
}

// WriteBench writes the BENCH_server.json document for a set of runs that
// shared one configuration.
func WriteBench(path string, cfg LoadgenConfig, runs []LoadgenResult) error {
	cfg.fill()
	var f BenchFile
	f.Schema = BenchSchema
	f.Config.Conns = cfg.Conns
	f.Config.DurationS = cfg.Duration.Seconds()
	f.Config.Keys = cfg.Keys
	f.Config.ValueSize = cfg.ValueSize
	f.Config.UpdatePct = cfg.Mix.UpdatePct
	f.Config.RangePct = cfg.Mix.RangePct
	f.Config.MultiGet = cfg.MultiGet
	f.Config.ScanSpan = cfg.ScanSpan
	if cfg.KeyDist == "" {
		f.Config.KeyDist = "uniform"
	} else {
		f.Config.KeyDist = cfg.KeyDist
	}
	f.Config.SampleEvery = cfg.SampleEvery
	f.Config.Seed = cfg.Seed
	f.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	f.Config.NumCPU = runtime.NumCPU()
	f.Runs = []BenchRun{}
	for _, r := range runs {
		f.Runs = append(f.Runs, BenchRunOf(r))
	}
	fillScalingEfficiency(f.Runs)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fillScalingEfficiency stamps each run's scaling efficiency against the
// fewest-cpus run of its own (algo, shards, pipeline, nodes) group:
// eff(c) = (T(c)/c) / (T(c0)/c0), the per-core throughput relative to the
// baseline — exactly T(c)/(c·T(1)) when the sweep includes cpus=1. A group
// with a single core count (no sweep) gets no efficiency figures: a 1.0
// there would claim a measurement that was never taken.
func fillScalingEfficiency(runs []BenchRun) {
	type groupKey struct {
		algo                    string
		shards, pipeline, nodes int
	}
	base := map[groupKey]*BenchRun{}
	multi := map[groupKey]bool{}
	for i := range runs {
		r := &runs[i]
		if r.CPUs <= 0 || r.ThroughputOpsS <= 0 {
			continue
		}
		k := groupKey{r.Algo, r.Shards, r.Pipeline, r.Nodes}
		if b, ok := base[k]; !ok {
			base[k] = r
		} else if r.CPUs < b.CPUs {
			base[k] = r
			multi[k] = true
		} else if r.CPUs > b.CPUs {
			multi[k] = true
		}
	}
	for i := range runs {
		r := &runs[i]
		if r.CPUs <= 0 || r.ThroughputOpsS <= 0 {
			continue
		}
		k := groupKey{r.Algo, r.Shards, r.Pipeline, r.Nodes}
		if b := base[k]; multi[k] && b != nil {
			perCore := r.ThroughputOpsS / float64(r.CPUs)
			basePerCore := b.ThroughputOpsS / float64(b.CPUs)
			r.ScalingEfficiency = perCore / basePerCore
		}
	}
}

// RunCPUSweep runs fn once per requested core count, setting GOMAXPROCS
// for the duration of each call and restoring the previous value after the
// sweep — the -cpu flag's engine, shared by the wire loadgen and the
// in-process figure benches. Entries above NumCPU still run (GOMAXPROCS
// accepts them; the kernel just has fewer cores to offer), so a committed
// sweep records what the machine could actually deliver rather than
// silently truncating the axis.
func RunCPUSweep(cpus []int, fn func(cpus int) error) error {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, c := range cpus {
		if c <= 0 {
			return fmt.Errorf("loadgen: invalid cpu count %d in sweep", c)
		}
		runtime.GOMAXPROCS(c)
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}
