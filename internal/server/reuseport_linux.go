//go:build linux

package server

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT's option number on Linux (asm-generic
// sockets). The frozen syscall package predates the constant, so it is
// spelled out here rather than imported.
const soReusePort = 0xf

// reusePortAvailable reports whether this platform can bind multiple
// listeners to one port and have the kernel shard connections across them.
const reusePortAvailable = true

// listenReusePort binds addr with SO_REUSEPORT set before bind(2). Several
// such listeners can share one port; the kernel hashes each incoming
// 4-tuple to exactly one of their accept queues, so connection setup under
// a connect storm spreads across accept workers in the kernel — no thundering
// herd on a shared queue, no cross-core bouncing of one listener's lock.
func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
