package server

import (
	"sync/atomic"

	"repro/internal/pad"
)

// wireStats is one connection's private share of the server's wire counters.
//
// Through PR 6 these counters were store-global atomics on the Server —
// every get on every connection bumped cmd_get and get_hits on the same two
// cache lines, so with N cores serving N connections the hottest stores in
// the request loop were cross-core line transfers that grew linearly with
// the request rate: a textbook serialization-by-bookkeeping bottleneck
// (ASCY4's deferred-work tax, paid on every operation). The fix is the same
// move the store made for value pools: shard by the natural unit of
// parallelism. Each connection leases one wireStats slot for its lifetime;
// all hot-path counter writes land in the slot, whose leading/trailing pads
// keep it off every other connection's lines, and the rare readers (the
// stats command, tests) aggregate across slots on demand.
//
// The fields are still atomics — each slot has exactly one writer, but
// aggregation reads run concurrently with it, and uncontended atomic adds on
// an exclusively-held line cost roughly a plain store. Slots are pooled:
// released on connection close and reused by the next connection, so the
// slot table is bounded by peak concurrent connections, and counters are
// cumulative across the connections that shared a slot — exactly the
// server-lifetime semantics the global counters had.
type wireStats struct {
	_ pad.CacheLinePad

	cmdGet, cmdSet, cmdDelete, cmdIncr, cmdDecr, cmdFlush atomic.Uint64
	cmdMRange, cmdMMin, cmdMMax, rangeKeys                atomic.Uint64
	cmdMSnap                                              atomic.Uint64
	getHits, getMisses                                    atomic.Uint64
	deleteHits, deleteMisses                              atomic.Uint64
	incrHits, incrMisses                                  atomic.Uint64
	decrHits, decrMisses                                  atomic.Uint64
	casHits, casMisses, casBadval                         atomic.Uint64
	protoErrors                                           atomic.Uint64
	bytesRead, bytesWritten                               atomic.Uint64
	batches, cmdBatched                                   atomic.Uint64
	batchHist                                             [batchHistBuckets]atomic.Uint64

	_ pad.CacheLinePad
}

// wireTotals is the aggregated, plain-value form of the counters — what the
// stats command renders.
type wireTotals struct {
	cmdGet, cmdSet, cmdDelete, cmdIncr, cmdDecr, cmdFlush uint64
	cmdMRange, cmdMMin, cmdMMax, rangeKeys                uint64
	cmdMSnap                                              uint64
	getHits, getMisses                                    uint64
	deleteHits, deleteMisses                              uint64
	incrHits, incrMisses                                  uint64
	decrHits, decrMisses                                  uint64
	casHits, casMisses, casBadval                         uint64
	protoErrors                                           uint64
	bytesRead, bytesWritten                               uint64
	batches, cmdBatched                                   uint64
	batchHist                                             [batchHistBuckets]uint64
}

// addInto accumulates the slot's counters into t.
func (w *wireStats) addInto(t *wireTotals) {
	t.cmdGet += w.cmdGet.Load()
	t.cmdSet += w.cmdSet.Load()
	t.cmdDelete += w.cmdDelete.Load()
	t.cmdIncr += w.cmdIncr.Load()
	t.cmdDecr += w.cmdDecr.Load()
	t.cmdFlush += w.cmdFlush.Load()
	t.cmdMRange += w.cmdMRange.Load()
	t.cmdMMin += w.cmdMMin.Load()
	t.cmdMMax += w.cmdMMax.Load()
	t.rangeKeys += w.rangeKeys.Load()
	t.cmdMSnap += w.cmdMSnap.Load()
	t.getHits += w.getHits.Load()
	t.getMisses += w.getMisses.Load()
	t.deleteHits += w.deleteHits.Load()
	t.deleteMisses += w.deleteMisses.Load()
	t.incrHits += w.incrHits.Load()
	t.incrMisses += w.incrMisses.Load()
	t.decrHits += w.decrHits.Load()
	t.decrMisses += w.decrMisses.Load()
	t.casHits += w.casHits.Load()
	t.casMisses += w.casMisses.Load()
	t.casBadval += w.casBadval.Load()
	t.protoErrors += w.protoErrors.Load()
	t.bytesRead += w.bytesRead.Load()
	t.bytesWritten += w.bytesWritten.Load()
	t.batches += w.batches.Load()
	t.cmdBatched += w.cmdBatched.Load()
	for i := range w.batchHist {
		t.batchHist[i] += w.batchHist[i].Load()
	}
}

// acquireWireStats leases a counter slot for one connection: a parked slot
// when one is free, a fresh one otherwise (the registry is append-only, so
// aggregation never misses counts from live or retired slots). With the
// globalWireStats reference mode on, every connection shares slot 0 — the
// exact pre-sharding behavior, kept as the differential-test baseline.
func (s *Server) acquireWireStats() *wireStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if s.cfg.globalWireStats {
		return s.statsAll[0]
	}
	if n := len(s.statsFree); n > 0 {
		ws := s.statsFree[n-1]
		s.statsFree[n-1] = nil
		s.statsFree = s.statsFree[:n-1]
		return ws
	}
	ws := &wireStats{}
	s.statsAll = append(s.statsAll, ws)
	return ws
}

// releaseWireStats parks a connection's slot for reuse. Counters are NOT
// reset — they are the server's history, summed on aggregation.
func (s *Server) releaseWireStats(ws *wireStats) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if s.cfg.globalWireStats {
		return
	}
	s.statsFree = append(s.statsFree, ws)
}

// wireTotals sums every slot ever leased.
func (s *Server) wireTotals() wireTotals {
	s.statsMu.Lock()
	all := s.statsAll
	s.statsMu.Unlock()
	var t wireTotals
	for _, ws := range all {
		ws.addInto(&t)
	}
	return t
}
