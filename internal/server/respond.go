package server

import (
	"bufio"
	"io"
	"strconv"
)

// newReader builds the protocol-side buffered reader, never smaller than
// MaxCommandLine so ReadCommand's line framing works.
func newReader(r io.Reader, size int) *bufio.Reader {
	if size < MaxCommandLine {
		size = MaxCommandLine
	}
	return bufio.NewReaderSize(r, size)
}

// newWriter builds the response writer.
func newWriter(w io.Writer, size int) *respWriter {
	if size <= 0 {
		size = 64 << 10
	}
	return &respWriter{w: bufio.NewWriterSize(w, size)}
}

// respWriter renders protocol responses. All methods buffer; call Flush to
// push to the transport. Write errors stick in the underlying bufio.Writer
// and surface at Flush — the connection loop checks there.
type respWriter struct {
	w       *bufio.Writer
	scratch [24]byte
}

var crlf = []byte{'\r', '\n'}

// line writes s followed by CRLF.
func (w *respWriter) line(s string) {
	w.w.WriteString(s)
	w.w.Write(crlf)
}

// reply writes the response line unless the command asked for noreply.
func (w *respWriter) reply(cmd *Command, s string) {
	if !cmd.NoReply {
		w.line(s)
	}
}

// replyUint writes a bare decimal response (the incr/decr result).
func (w *respWriter) replyUint(cmd *Command, v uint64) {
	if cmd.NoReply {
		return
	}
	w.w.Write(strconv.AppendUint(w.scratch[:0], v, 10))
	w.w.Write(crlf)
}

// value writes one VALUE stanza of a get/gets response. key may point into
// the connection's read buffer; its bytes are copied into the write buffer
// here.
func (w *respWriter) value(key []byte, it Item, withCAS bool) {
	w.w.WriteString("VALUE ")
	w.w.Write(key)
	w.w.WriteByte(' ')
	w.w.Write(strconv.AppendUint(w.scratch[:0], uint64(it.Flags), 10))
	w.w.WriteByte(' ')
	w.w.Write(strconv.AppendInt(w.scratch[:0], int64(len(it.Data)), 10))
	if withCAS {
		w.w.WriteByte(' ')
		w.w.Write(strconv.AppendUint(w.scratch[:0], it.CAS, 10))
	}
	w.w.Write(crlf)
	w.w.Write(it.Data)
	w.w.Write(crlf)
}

// valueStr is value for keys the store holds as strings — the mrange and
// mmin/mmax emit path. WriteString copies the key bytes straight into the
// write buffer, so emitting a scanned entry allocates nothing per key.
func (w *respWriter) valueStr(key string, it Item, withCAS bool) {
	w.w.WriteString("VALUE ")
	w.w.WriteString(key)
	w.w.WriteByte(' ')
	w.w.Write(strconv.AppendUint(w.scratch[:0], uint64(it.Flags), 10))
	w.w.WriteByte(' ')
	w.w.Write(strconv.AppendInt(w.scratch[:0], int64(len(it.Data)), 10))
	if withCAS {
		w.w.WriteByte(' ')
		w.w.Write(strconv.AppendUint(w.scratch[:0], it.CAS, 10))
	}
	w.w.Write(crlf)
	w.w.Write(it.Data)
	w.w.Write(crlf)
}

// Flush pushes buffered responses to the transport.
func (w *respWriter) Flush() error { return w.w.Flush() }
