package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// repeatReader endlessly replays one frame, so a parse loop can run in
// steady state without touching the allocator for input.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

// TestServerGetPathZeroAlloc is the PR's end-to-end allocation gate: a
// pipelined get hit — ReadCommandInto → Store.Get → VALUE staging — must
// perform zero heap allocations per request in steady state, for both the
// hash-table headliner and an SSMEM-recycling ordered backend, and with the
// keyspace sharded (the per-shard pin routing runs on pooled frames, so
// sharding must not reintroduce a per-request allocation).
func TestServerGetPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so Pin() itself allocates")
	}
	for _, tc := range []struct {
		algo   string
		shards int
	}{
		{"ht-clht-lb", 1},
		{"ht-clht-lf", 1},
		{"ht-clht-lb", 4},
		{"ll-lazy", 4},
	} {
		algo := tc.algo
		t.Run(fmt.Sprintf("%s/shards-%d", algo, tc.shards), func(t *testing.T) {
			s, err := New(Config{Algo: algo, Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			p := s.store.Pin()
			s.store.Set(p, []byte("hotkey"), 7, 0, bytes.Repeat([]byte("v"), 100))
			p.Unpin()

			br := bufio.NewReaderSize(&repeatReader{frame: []byte("get hotkey\r\n")}, 1<<16)
			bw := newWriter(io.Discard, 0)
			ws := s.acquireWireStats()
			var cmd Command
			var sc Scratch
			step := func() {
				if err := ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc); err != nil {
					t.Fatal(err)
				}
				p := s.store.Pin()
				s.execute(p, &cmd, bw, ws)
				p.Unpin()
			}
			for i := 0; i < 64; i++ {
				step() // reach steady state (scratch sized, pools primed)
			}
			if avg := testing.AllocsPerRun(512, step); avg != 0 {
				t.Fatalf("pipelined get hit allocates %.2f/op, want 0", avg)
			}
			if ws.getHits.Load() == 0 || ws.getMisses.Load() != 0 {
				t.Fatalf("gate did not exercise hits: hits=%d misses=%d",
					ws.getHits.Load(), ws.getMisses.Load())
			}
		})
	}
}

// TestServerBatchedGetPathZeroAlloc is the batch-path allocation gate: a
// deep pipelined burst — ReadBatchInto over 64 buffered get frames
// (single-key and shard-grouped multi-key), executed under one pin — must
// stay at zero heap allocations per batch in steady state. This is the PR 3
// invariant carried onto the amortized path: batching must not buy its
// speed with per-command garbage.
func TestServerBatchedGetPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so Pin() itself allocates")
	}
	for _, tc := range []struct {
		algo   string
		shards int
	}{
		{"ht-clht-lb", 1},
		{"ht-clht-lb", 4},
		{"ll-lazy", 4},
		{"sl-fraser-opt", 4},
	} {
		t.Run(fmt.Sprintf("%s/shards-%d", tc.algo, tc.shards), func(t *testing.T) {
			s, err := New(Config{Algo: tc.algo, Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			p := s.store.Pin()
			for i := 0; i < 8; i++ {
				s.store.Set(p, []byte(fmt.Sprintf("key%d", i)), 7, 0, bytes.Repeat([]byte("v"), 100))
			}
			p.Unpin()
			// 62 single-key gets plus one 8-key multi-get: 63 commands per
			// burst, every one a hit, the multi-get spanning every shard.
			frame := bytes.Repeat([]byte("get key1\r\n"), 62)
			frame = append(frame, []byte("get key0 key1 key2 key3 key4 key5 key6 key7\r\n")...)
			br := bufio.NewReaderSize(&repeatReader{frame: frame}, 1<<16)
			bw := newWriter(io.Discard, 0)
			ws := s.acquireWireStats()
			var b Batch
			step := func() {
				n, err := ReadBatchInto(br, DefaultMaxItemSize, 63, &b)
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					t.Fatal("empty batch")
				}
				if s.executeBatch(&b, bw, ws) {
					t.Fatal("batch asked to close the connection")
				}
			}
			for i := 0; i < 32; i++ {
				step() // steady state: batch tables sized, pools primed
			}
			if avg := testing.AllocsPerRun(256, step); avg != 0 {
				t.Fatalf("batched get burst allocates %.2f/batch, want 0", avg)
			}
			if ws.getMisses.Load() != 0 {
				t.Fatalf("gate keys missed: misses=%d", ws.getMisses.Load())
			}
			if got := ws.cmdBatched.Load() / ws.batches.Load(); got < 32 {
				t.Fatalf("achieved batch depth %d, want >= 32 (batching not engaged)", got)
			}
		})
	}
}

// TestStoreDataPoolingNoAliasing hammers one key with concurrent sets and
// pinned gets: a reader must never observe a value block that a recycled
// write has begun overwriting (every byte of the returned Data must agree).
// Run under -race: the SSMEM epoch edges are what make this pass.
func TestStoreDataPoolingNoAliasing(t *testing.T) {
	st, err := NewStore("ht-clht-lb", 64, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("aliased")
	const valLen = 256
	mkVal := func(b byte) []byte { return bytes.Repeat([]byte{b}, valLen) }
	p0 := st.Pin()
	st.Set(p0, key, 0, 0, mkVal('a'))
	p0.Unpin()

	const writers, rounds = 3, 3000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := st.Pin()
			it, ok := st.Get(p, key)
			if ok {
				if len(it.Data) != valLen {
					readerErr = errOf("len = %d", len(it.Data))
					p.Unpin()
					return
				}
				first := it.Data[0]
				for i, b := range it.Data {
					if b != first {
						readerErr = errOf("torn value at %d: %q vs %q", i, b, first)
						p.Unpin()
						return
					}
				}
			}
			p.Unpin()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := mkVal(byte('b' + w))
			for i := 0; i < rounds; i++ {
				p := st.Pin() // per op, as the server pins per request
				st.Set(p, key, 0, 0, val)
				p.Unpin()
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if st.BufStats().Frees == 0 {
		t.Fatal("no value blocks were retired through the pool")
	}
}

// TestStoreDataPoolReuseBalance: blocks are freed at most once and reuse
// actually happens (without -race; see race_on_test.go for why sync.Pool
// churn strands garbage under the detector).
func TestStoreDataPoolReuseBalance(t *testing.T) {
	st, err := NewStore("ht-clht-lb", 64, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'x'}, 100)
	key := []byte("k")
	for i := 0; i < 4000; i++ {
		// Pin per operation: an open pin is an open epoch, and garbage
		// freed inside it can never be reclaimed until it closes.
		p := st.Pin()
		st.Set(p, key, 0, 0, val)
		p.Unpin()
	}
	bs := st.BufStats()
	if bs.Frees > bs.Allocs {
		t.Fatalf("more frees than allocs (double free): %+v", bs)
	}
	if bs.Garbage < 0 {
		t.Fatalf("negative garbage (double hand-out): %+v", bs)
	}
	if bs.Reused == 0 && !raceEnabled {
		t.Fatalf("no block reuse after 4000 overwrites: %+v", bs)
	}
}

// TestStoreReapsExpiredOnGet: a dead item observed by a read is physically
// removed (bounded, non-blocking) instead of lingering until a mutation
// touches the key.
func TestStoreReapsExpiredOnGet(t *testing.T) {
	st, err := NewStore("ht-clht-lb", 64, true, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1000)
	st.now = func() int64 { return now }
	p := st.Pin()
	st.Set(p, []byte("ttl"), 0, 100, []byte("soon-dead"))
	st.Set(p, []byte("keep"), 0, 0, []byte("alive"))
	p.Unpin()
	if st.Items() != 2 {
		t.Fatalf("items = %d, want 2", st.Items())
	}
	now += 200 // expire "ttl"
	// Re-pin: a pin fixes its timestamp at creation (one clock read per
	// request batch), so the advanced clock is seen by the next pin — as it
	// is by the next request batch in the server.
	p = st.Pin()
	defer p.Unpin()
	if _, ok := st.Get(p, []byte("ttl")); ok {
		t.Fatal("expired item visible")
	}
	if st.Items() != 1 {
		t.Fatalf("corpse not reaped on read: items = %d, want 1", st.Items())
	}
	if _, ok := st.Get(p, []byte("keep")); !ok {
		t.Fatal("live item lost")
	}
	// The reaped block went back to the pool.
	if st.BufStats().Frees == 0 {
		t.Fatal("reaped value block was not freed to the pool")
	}
}

func errOf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestWriteTimeoutUnblocksStalledClient: a client that stops reading must
// not hold its connection (and with it the request's epoch pin, which
// gates value-block reclamation for the whole store) forever — the write
// deadline closes the connection.
func TestWriteTimeoutUnblocksStalledClient(t *testing.T) {
	s, err := New(Config{
		Addr:            "127.0.0.1:0",
		Algo:            "ht-clht-lb",
		WriteBufferSize: 1 << 10, // tiny, so responses flush inline
		WriteTimeout:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Serve(); close(done) }()
	defer func() { s.Close(); <-done }()

	// Store a value much larger than the write buffer.
	big := bytes.Repeat([]byte("v"), 1<<16)
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Set("big", 0, 0, big); err != nil {
		t.Fatal(err)
	}
	// Raw connection that requests the value repeatedly and never reads:
	// the server's flushes must hit the deadline, not block forever.
	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for i := 0; i < 64; i++ {
		if _, err := raw.Write([]byte("get big\r\n")); err != nil {
			break // server already gave up on us: fine
		}
	}
	// The stalled connection must die, after which the healthy client
	// still gets served (reclamation was not wedged).
	deadline := time.Now().Add(5 * time.Second)
	for s.currConns.Load() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled connection not closed: %d conns", s.currConns.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok, err := cl.Get("big"); err != nil || !ok {
		t.Fatalf("healthy client after stall: %v %v", ok, err)
	}
	cl.Close()
}

// TestServerScanPathAllocGate is the ordered-scan allocation gate: a
// pipelined mrange — ReadCommandInto → Store.RangeScan → VALUE staging per
// returned key — must not allocate per RESULT KEY. The per-scan cost is a
// small constant (closure captures escaping through the generic range
// layers: rangeBytes → Map.Range → RangeAscend each pin their state on the
// heap), so the gate measures the same scan at two widths and requires the
// identical figure — a per-key allocation would separate them by the width
// difference — plus an absolute cap so the constant cannot quietly grow.
func TestServerScanPathAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, so Pin() itself allocates")
	}
	for _, tc := range []struct {
		algo   string
		shards int
	}{
		{"sl-fraser-opt", 1},
		{"sl-fraser-opt", 4},
		{"ll-lazy", 1},
	} {
		t.Run(fmt.Sprintf("%s/shards-%d", tc.algo, tc.shards), func(t *testing.T) {
			s, err := New(Config{Algo: tc.algo, Shards: tc.shards, Ordered: true})
			if err != nil {
				t.Fatal(err)
			}
			p := s.store.Pin()
			for i := 0; i < 32; i++ {
				s.store.Set(p, []byte(fmt.Sprintf("scan%02d", i)), 7, 0, bytes.Repeat([]byte("v"), 32))
			}
			p.Unpin()
			measure := func(frame string, wantKeys float64) float64 {
				br := bufio.NewReaderSize(&repeatReader{frame: []byte(frame)}, 1<<16)
				bw := newWriter(io.Discard, 0)
				ws := s.acquireWireStats()
				var cmd Command
				var sc Scratch
				step := func() {
					if err := ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc); err != nil {
						t.Fatal(err)
					}
					p := s.store.Pin()
					s.execute(p, &cmd, bw, ws)
					p.Unpin()
				}
				for i := 0; i < 64; i++ {
					step()
				}
				avg := testing.AllocsPerRun(512, step)
				got := float64(ws.rangeKeys.Load()) / float64(ws.cmdMRange.Load())
				if got != wantKeys {
					t.Fatalf("scan %q returned %.1f keys/scan, want %.0f", frame, got, wantKeys)
				}
				return avg
			}
			// Same request shape, 4 vs 28 in-range keys: the limit never
			// truncates, so every scan stages its full result.
			narrow := measure("mrange scan10 scan13 100\r\n", 4)
			wide := measure("mrange scan02 scan29 100\r\n", 28)
			if narrow != wide {
				t.Fatalf("scan allocations scale with result size: %.2f at 4 keys vs %.2f at 28 keys (want equal — zero per result key)", narrow, wide)
			}
			if wide > 12 {
				t.Fatalf("mrange allocates %.2f/scan, want the O(1) constant <= 12", wide)
			}
		})
	}
}
