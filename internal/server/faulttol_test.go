package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestPanicIsolation: an injected handler panic must kill only the
// connection that triggered it. The process, its listeners, and every other
// connection keep serving, and the event is visible in handler_panics.
func TestPanicIsolation(t *testing.T) {
	s, err := New(Config{
		Addr: "127.0.0.1:0", Algo: "ht-clht-lb", Capacity: 1 << 10,
		ChaosPanicKey: "chaos-boom",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })

	healthy := dialT(t, s)
	if err := healthy.Set("alive", 0, 0, []byte("yes")); err != nil {
		t.Fatal(err)
	}

	victim := dialT(t, s)
	_, _, err = victim.Get("chaos-boom")
	if err == nil {
		t.Fatal("get of the panic key returned a response; want a dead conn")
	}
	// The victim conn is gone for good, not just for one command.
	if _, verr := victim.Version(); verr == nil {
		t.Fatal("victim conn still answering after a handler panic")
	}

	// Everyone else is untouched.
	if e, ok, err := healthy.Get("alive"); err != nil || !ok || string(e.Data) != "yes" {
		t.Fatalf("healthy conn after panic: %+v, %v, %v", e, ok, err)
	}
	// And new connections are accepted.
	fresh := dialT(t, s)
	if _, err := fresh.Version(); err != nil {
		t.Fatalf("fresh conn after panic: %v", err)
	}

	if got := s.StatsMap()["handler_panics"]; got != "1" {
		t.Fatalf("handler_panics = %q, want 1", got)
	}
}

// TestMaxConnsShed: at the connection cap the accept loop must answer
// "SERVER_ERROR busy" and close, rather than hang the dialer or kill an
// established connection — and must admit again once a slot frees.
func TestMaxConnsShed(t *testing.T) {
	s, err := New(Config{
		Addr: "127.0.0.1:0", Algo: "ht-clht-lb", Capacity: 1 << 10,
		MaxConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })

	first, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Round-trip so the connection is registered before we try to exceed it.
	if _, err := first.Version(); err != nil {
		t.Fatal(err)
	}

	over, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(over).ReadString('\n')
	if err != nil {
		t.Fatalf("reading shed response: %v", err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "SERVER_ERROR busy" {
		t.Fatalf("shed line = %q, want SERVER_ERROR busy", got)
	}
	if got := s.StatsMap()["conns_shed"]; got != "1" {
		t.Fatalf("conns_shed = %q, want 1", got)
	}
	// The established conn was never disturbed.
	if _, err := first.Version(); err != nil {
		t.Fatalf("capped conn broken by shed: %v", err)
	}

	// Free the slot; a new dial must eventually be admitted (the release is
	// asynchronous with our Close, so poll).
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(s.Addr().String())
		if err == nil {
			if _, verr := c.Version(); verr == nil {
				c.Close()
				break
			}
			c.Abort()
		}
		if time.Now().After(deadline) {
			t.Fatal("connection slot never freed after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownDrain: Shutdown must let in-flight pipelined work complete —
// every request the client already flushed gets its response — and then
// return, leaving the server fully closed.
func TestShutdownDrain(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	c := dialT(t, s)

	const burst = 200
	for i := 0; i < burst; i++ {
		if err := c.SendStore("set", fmt.Sprintf("drain-%d", i), 0, 0, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to pull the burst off the socket before the
	// drain deadline lands.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	for i := 0; i < burst; i++ {
		stored, err := c.RecvStored()
		if err != nil {
			t.Fatalf("response %d lost during drain: %v", i, err)
		}
		if !stored {
			t.Fatalf("response %d: not stored", i)
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Post-shutdown the listener is gone.
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestCloseIdempotent: Close must be callable any number of times, from any
// goroutine, and always return nil after the first success.
func TestCloseIdempotent(t *testing.T) {
	s := startServer(t, "ht-clht-lb")
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- s.Close() }()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Close: %v", err)
		}
	}
}

// TestCloseRacesServeStartup: Close concurrent with Listen/Serve startup
// must never leak a live listener — whichever side wins, the server ends
// closed and Serve returns cleanly.
func TestCloseRacesServeStartup(t *testing.T) {
	for i := 0; i < 20; i++ {
		s, err := New(Config{Addr: "127.0.0.1:0", Algo: "ht-clht-lb", Capacity: 1 << 8})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- s.ListenAndServe() }()
		if i%2 == 0 {
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", i, err)
		}
		if err := <-serveErr; err != nil {
			t.Fatalf("iter %d: ListenAndServe after racing Close: %v", i, err)
		}
		// If Serve lost the race before installing its listener, there is no
		// address; if it won, the listener must now be closed.
		if addr := s.Addr(); addr != nil {
			if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
				t.Fatalf("iter %d: listener leaked past Close", i)
			}
		}
	}
}
