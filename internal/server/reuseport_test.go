package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestReusePortShardedAccept: with ReusePort on, Listen must bind one
// listener per accept worker on the same resolved port (on Linux), every
// connection must land on a working request loop regardless of which
// kernel queue it hashed to, and stats must aggregate across all of them.
// On platforms without SO_REUSEPORT the same config must degrade to the
// single shared listener and still serve.
func TestReusePortShardedAccept(t *testing.T) {
	s := startServerCfg(t, Config{Algo: "ht-clht-lb", ReusePort: true, AcceptWorkers: 4})
	if runtime.GOOS == "linux" {
		if !s.ReusePortActive() || len(s.lns) != 4 {
			t.Fatalf("ReusePortActive=%v listeners=%d, want sharded 4-way on linux",
				s.ReusePortActive(), len(s.lns))
		}
		for _, ln := range s.lns[1:] {
			if ln.Addr().String() != s.Addr().String() {
				t.Fatalf("sibling listener bound %v, primary %v", ln.Addr(), s.Addr())
			}
		}
	} else if s.ReusePortActive() {
		t.Fatalf("ReusePortActive on %s, expected shared-listener fallback", runtime.GOOS)
	}

	// Enough connections that the kernel's 4-tuple hash spreads them over
	// multiple accept queues (which queue each lands on is not ours to
	// pick — correctness is that every one serves).
	const conns, opsPer = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				t.Errorf("conn %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("rp-%d-%d", w, i)
				if err := c.Set(k, 0, 0, []byte(k)); err != nil {
					t.Errorf("conn %d: set: %v", w, err)
					return
				}
				if e, ok, err := c.Get(k); err != nil || !ok || string(e.Data) != k {
					t.Errorf("conn %d: get = %v %v %q", w, err, ok, e.Data)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	m := s.StatsMap()
	if got := m["cmd_set"]; got != fmt.Sprint(conns*opsPer) {
		t.Fatalf("cmd_set = %s across sharded listeners, want %d", got, conns*opsPer)
	}
	if got := m["get_hits"]; got != fmt.Sprint(conns*opsPer) {
		t.Fatalf("get_hits = %s across sharded listeners, want %d", got, conns*opsPer)
	}
}
