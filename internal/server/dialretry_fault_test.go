package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// serveVersion runs a minimal protocol endpoint behind l that answers only
// "version" — just enough surface for DialRetryVerified's liveness probe.
// Everything interesting (resets, accept-then-die) is injected by the
// faultnet listener in front of it.
func serveVersion(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if !strings.HasPrefix(line, "version") {
						return
					}
					if _, err := fmt.Fprintf(c, "VERSION %s\r\n", Version); err != nil {
						return
					}
				}
			}(c)
		}
	}()
}

// TestDialRetryVerifiedAbsorbsAcceptReset: a rebooting node accepts and then
// resets its first connections (the kernel's backlog answers before the
// process serves). DialRetryVerified must burn through that window under
// backoff and hand back only a connection the server actually answered.
func TestDialRetryVerifiedAbsorbsAcceptReset(t *testing.T) {
	ln, err := faultnet.Listen("127.0.0.1:0", faultnet.Config{CloseOnAccept: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	serveVersion(t, ln)

	c, err := DialRetryVerified(ln.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatalf("DialRetryVerified through accept-reset window: %v", err)
	}
	defer c.Close()
	if v, err := c.Version(); err != nil || v != Version {
		t.Fatalf("probe-verified conn: Version = %q, %v", v, err)
	}
	if n := ln.Accepted(); n < 3 {
		t.Fatalf("listener accepted %d conns; the reset window (2) was never crossed", n)
	}
}

// TestDialRetryVerifiedRefusedThenSuccess: connection refused (no listener
// yet) followed by a late bind — the full boot race. Plain dialing is
// covered elsewhere; this pins the verified variant, whose probe must also
// pass once the listener appears.
func TestDialRetryVerifiedRefusedThenSuccess(t *testing.T) {
	addr := reserveAddr(t)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := faultnet.Listen(addr, faultnet.Config{})
		if err != nil {
			return
		}
		t.Cleanup(func() { ln.Close() })
		serveVersion(t, ln)
	}()

	c, err := DialRetryVerified(addr, 10*time.Second)
	if err != nil {
		t.Fatalf("DialRetryVerified across late bind: %v", err)
	}
	defer c.Close()
	if v, err := c.Version(); err != nil || v != Version {
		t.Fatalf("Version = %q, %v", v, err)
	}
}

// TestDialRetryVerifiedExpiresOnMuteServer: a server that accepts but never
// answers is exactly the half-alive state the probe exists to reject. The
// retry window must expire and surface the last probe error instead of
// returning the dead-but-dialable connection (which plain DialRetry,
// probeless, happily accepts — pinned here so the contrast stays true).
func TestDialRetryVerifiedExpiresOnMuteServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	// Accept and hold: bytes in, nothing out.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	if c, err := DialRetry(ln.Addr().String(), time.Second); err != nil {
		t.Fatalf("probeless DialRetry against a mute server: %v", err)
	} else {
		c.Abort()
	}

	start := time.Now()
	_, err = DialRetryVerified(ln.Addr().String(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("DialRetryVerified returned a connection from a mute server")
	}
	// One probe costs up to verifyTimeout; the window plus a final probe
	// bounds the call.
	if d := time.Since(start); d > 300*time.Millisecond+2*verifyTimeout {
		t.Fatalf("expiry took %v; window leaked past deadline + probe bound", d)
	}
}
