// Server-side persistence lifecycle: warm boot, on-demand and periodic
// snapshots, and the post-mortem stats line.
//
// The division of labor: internal/snapshot owns the bytes and the
// crash-safe file protocol, Store.SnapshotTo/LoadFrom own the consistent
// cut and the rebuild, and this file owns *when* — boot, the msnap verb,
// the ticker, Shutdown — plus the counters that make all of it observable
// through stats.
package server

import (
	"errors"
	"io"
	"os"
	"time"

	"repro/internal/snapshot"
)

// respSnapshotDisabled answers msnap on a server without a snapshot path.
// Recoverable, like respOrderedDisabled: the connection keeps serving.
const respSnapshotDisabled = "SERVER_ERROR snapshot disabled (start with -snapshot)"

// TakeSnapshot writes a snapshot of the live keyspace to the configured
// path via the crash-safe protocol (temp file + fsync + atomic rename) and
// returns what it wrote. Concurrent callers serialize on snapMu — at most
// one snapshot write is in flight — while serving continues untouched: the
// cut holds only one shard's epoch at a time, never a store-wide lock.
func (s *Server) TakeSnapshot() (items uint64, size int64, err error) {
	if s.cfg.SnapshotPath == "" {
		return 0, 0, errors.New("server: snapshot disabled (no SnapshotPath)")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	size, err = snapshot.WriteFile(s.cfg.SnapshotPath, func(f io.Writer) error {
		var serr error
		items, serr = s.store.SnapshotTo(f)
		return serr
	})
	if err != nil {
		s.snapErrs.Add(1)
		return items, size, err
	}
	s.snapLastUnix.Store(time.Now().Unix())
	s.snapCount.Add(1)
	s.snapItems.Store(items)
	s.snapBytes.Store(uint64(size))
	return items, size, nil
}

// snapshotLoop is the background ticker (Config.SnapshotInterval). It runs
// until stopSnapshotLoop; errors are counted and logged, never fatal.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			if _, _, err := s.TakeSnapshot(); err != nil {
				s.logf("server: background snapshot: %v", err)
			}
		}
	}
}

// stopSnapshotLoop stops the ticker goroutine (if running) and waits for
// any in-flight tick snapshot to finish. Idempotent.
func (s *Server) stopSnapshotLoop() {
	s.snapStopOnce.Do(func() { close(s.snapStop) })
	s.snapWG.Wait()
}

// loadSnapshot is the warm-boot path, called from New when SnapshotPath is
// set. The file is fully verified before a single item is inserted — the
// empty-or-previous guarantee: a damaged file (any truncation, any CRC
// mismatch) loads nothing at all, logs loudly, and the server boots empty
// with the file left in place for the operator. A missing file is an
// ordinary cold boot.
func (s *Server) loadSnapshot() {
	path := s.cfg.SnapshotPath
	start := time.Now()
	if _, _, err := snapshot.VerifyFile(path); err != nil {
		if os.IsNotExist(err) {
			return // cold boot: no snapshot yet
		}
		s.snapErrs.Add(1)
		s.logf("server: SNAPSHOT REJECTED: %s failed verification (%v); booting with an EMPTY store — the file is untouched", path, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		s.snapErrs.Add(1)
		s.logf("server: snapshot open %s: %v; booting empty", path, err)
		return
	}
	defer f.Close()
	res, err := s.store.LoadFrom(f)
	if err != nil {
		// Verified a moment ago, so this is a racing writer or an I/O
		// fault mid-read; whatever loaded stays (items are individually
		// valid — every record clears its block CRC before it is
		// returned), and the error is loud.
		s.snapErrs.Add(1)
		s.logf("server: snapshot load %s: %v after %d items; continuing with the partial load", path, err, res.Loaded)
	}
	s.loadedItems.Store(res.Loaded)
	s.loadExpired.Store(res.Expired)
	s.loadMicros.Store(time.Since(start).Microseconds())
	s.logf("server: warm restart: loaded %d items from %s in %s (%d already-expired records skipped)",
		res.Loaded, path, time.Since(start).Round(time.Millisecond), res.Expired)
}

// emitFinalStats prints the post-mortem line, exactly once, whichever path
// closes the server. It lives here on the server (not in cmd/ascyserve's
// signal handler) so embedded and test users get a last word too — a chaos
// harness killing nodes greps for it. Quiet without Config.Logf, like all
// server logging.
func (s *Server) emitFinalStats() {
	s.finalStats.Do(func() {
		if s.cfg.Logf == nil {
			return
		}
		st := s.StatsMap()
		s.logf("server: final stats: conns=%s gets=%s sets=%s panics=%s shed=%s snapshots=%s snapshot_errors=%s loaded_items=%s",
			st["total_connections"], st["cmd_get"], st["cmd_set"],
			st["handler_panics"], st["conns_shed"],
			st["snapshots_taken"], st["snapshot_errors"], st["loaded_items"])
	})
}
