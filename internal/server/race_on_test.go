//go:build race

package server

// raceEnabled: under the race detector sync.Pool randomly drops Puts, so
// epoch buffer allocators churn and pending garbage strands (reclaimed by
// the Go GC, never reused). Reuse-rate assertions only hold without -race;
// the safety assertions hold always.
const raceEnabled = true
