package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"testing"
)

// statsDiffKeys is the full deterministic wire-counter surface: every
// counter whose value is a pure function of the (deterministic) workload,
// regardless of how connections interleave. Timing-dependent keys —
// uptime, time, curr_connections (close is asynchronous), the batch-depth
// family (how commands clump into batches depends on scheduling), and the
// value-pool ledger (reuse depends on GC timing) — are the only exclusions.
var statsDiffKeys = []string{
	"cmd_get", "cmd_set", "cmd_delete", "cmd_incr", "cmd_decr", "cmd_flush",
	"get_hits", "get_misses",
	"delete_hits", "delete_misses",
	"incr_hits", "incr_misses",
	"decr_hits", "decr_misses",
	"cas_hits", "cas_misses", "cas_badval",
	"protocol_errors",
	"bytes_read", "bytes_written",
	"curr_items", "total_connections",
}

// runStatsWorkload boots a server (per-connection stat slots by default,
// the pre-sharding single-global-slot reference when global is set), drives
// an identical randomized mixed-verb stream from several concurrent
// connections — keyspaces partitioned per connection so every hit/miss
// outcome is deterministic under any interleaving — plus one malformed
// frame (protocol_errors) and one final flush_all, and returns the server's
// stats map read in-process.
func runStatsWorkload(t *testing.T, global bool) map[string]string {
	t.Helper()
	s := startServerCfg(t, Config{Algo: "ht-clht-lb", Shards: 4, globalWireStats: global})
	addr := s.Addr().String()

	const conns = 6
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("conn %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			key := func(i int) string { return fmt.Sprintf("w%d-%d", w, i) }
			for i := 0; i < 400; i++ {
				k := key(rng.Intn(32))
				var err error
				switch rng.Intn(12) {
				case 0, 1:
					err = c.Set(k, uint32(i), 0, []byte("v-"+k))
				case 2:
					_, err = c.Add(k, 0, 0, []byte("a-"+k))
				case 3:
					_, err = c.Replace(k, 0, 0, []byte("r-"+k))
				case 4, 5, 6:
					_, _, err = c.Get(k)
				case 7:
					// A gets→cas pair: hit when the entry exists (the token
					// is private to this connection's keyspace), a cas miss
					// otherwise; every third round deliberately corrupts the
					// token for a cas_badval.
					var e Entry
					var ok bool
					if e, ok, err = c.Gets(k); err == nil && ok {
						casid := e.CAS
						if i%3 == 0 {
							casid += 7777
						}
						_, err = c.Cas(k, 1, 0, []byte("c-"+k), casid)
					} else if err == nil {
						_, err = c.Cas(k, 1, 0, []byte("c-"+k), 12345)
					}
				case 8:
					_, err = c.Delete(k)
				case 9:
					// Counter keys live in their own per-connection range so
					// incr/decr outcomes (hit, miss, or non-numeric error)
					// are scripted, not raced.
					nk := fmt.Sprintf("w%d-ctr-%d", w, rng.Intn(4))
					if i%5 == 0 {
						err = c.Set(nk, 0, 0, []byte(strconv.Itoa(i)))
					} else {
						_, _, err = c.Incr(nk, 3)
					}
				case 10:
					_, _, err = c.Decr(fmt.Sprintf("w%d-ctr-%d", w, rng.Intn(4)), 1)
				case 11:
					_, err = c.GetMulti(key(0), key(1), k)
				}
				if err != nil {
					t.Errorf("conn %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// One raw connection sends a malformed verb (counts a protocol error,
	// keeps serving) and then the single flush_all, at a point where no
	// other traffic is in flight — so its effect on curr_items and the
	// flush/get counters is deterministic.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	br := bufio.NewReader(raw)
	for _, frame := range []string{"bogus nonsense\r\n", "flush_all\r\n", "get w0-0\r\n"} {
		if _, err := raw.Write([]byte(frame)); err != nil {
			t.Fatalf("raw write %q: %v", frame, err)
		}
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("raw read after %q: %v", frame, err)
		}
	}

	return s.StatsMap()
}

// TestPerConnStatsDifferential is the sharding-correctness gate for the
// wire counters: the per-connection padded slots must aggregate to byte-
// identical values against the old store-global atomics (kept alive as the
// globalWireStats reference mode) across a randomized concurrent mixed-verb
// stream. Any counter dropped on the slot-lease path, double-counted on
// release, or missed by aggregation diverges here.
func TestPerConnStatsDifferential(t *testing.T) {
	sharded := runStatsWorkload(t, false)
	global := runStatsWorkload(t, true)
	for _, k := range statsDiffKeys {
		sv, ok := sharded[k]
		if !ok {
			t.Errorf("sharded stats missing %q", k)
			continue
		}
		gv, ok := global[k]
		if !ok {
			t.Errorf("global stats missing %q", k)
			continue
		}
		if sv != gv {
			t.Errorf("%s: sharded=%s global=%s", k, sv, gv)
		}
	}
	// The workload must actually have exercised the interesting paths —
	// a differential between two zeros proves nothing.
	for _, k := range []string{"cmd_get", "cmd_set", "get_hits", "get_misses",
		"cas_hits", "cas_badval", "delete_hits", "incr_hits", "protocol_errors"} {
		if sharded[k] == "0" {
			t.Errorf("workload never hit %s (counter is 0)", k)
		}
	}
}
