// Wire-path microbenchmarks: the parse→store→respond loop in isolation,
// with -benchmem as the allocation ledger (the alloc gates in alloc_test.go
// assert the get path at exactly zero).
package server

import (
	"testing"
)

func BenchmarkWireGetPath(b *testing.B) {
	s, _ := New(Config{Algo: "ht-clht-lb"})
	p := s.store.Pin()
	s.store.Set(p, []byte("hotkey"), 7, 0, []byte("0123456789"))
	p.Unpin()
	br := newReader(&repeatReader{frame: []byte("get hotkey\r\n")}, 1<<16)
	bw := newWriter(devNull{}, 0)
	var cmd Command
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc)
		s.execute(&cmd, bw)
	}
}

func BenchmarkWireSetPath(b *testing.B) {
	s, _ := New(Config{Algo: "ht-clht-lb"})
	br := newReader(&repeatReader{frame: []byte("set hotkey 0 0 10\r\n0123456789\r\n")}, 1<<16)
	bw := newWriter(devNull{}, 0)
	var cmd Command
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc)
		s.execute(&cmd, bw)
	}
}

type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
