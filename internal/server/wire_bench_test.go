// Wire-path microbenchmarks: the parse→store→respond loop in isolation,
// with -benchmem as the allocation ledger (the alloc gates in alloc_test.go
// assert the get path at exactly zero). The Batched variants measure the
// amortized path — one pin, one clock read, and one dispatch round per
// burst — against the per-command baseline; b.N counts commands in both, so
// ns/op is directly comparable.
package server

import (
	"bytes"
	"testing"
)

func BenchmarkWireGetPath(b *testing.B) {
	s, _ := New(Config{Algo: "ht-clht-lb"})
	p := s.store.Pin()
	s.store.Set(p, []byte("hotkey"), 7, 0, []byte("0123456789"))
	p.Unpin()
	br := newReader(&repeatReader{frame: []byte("get hotkey\r\n")}, 1<<16)
	bw := newWriter(devNull{}, 0)
	ws := s.acquireWireStats()
	var cmd Command
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc)
		p := s.store.Pin()
		s.execute(p, &cmd, bw, ws)
		p.Unpin()
	}
}

// BenchmarkWireGetPathBatched drives the batch path at a fixed depth: one
// ReadBatchInto + executeBatch round per `depth` commands.
func BenchmarkWireGetPathBatched(b *testing.B) {
	const depth = 64
	s, _ := New(Config{Algo: "ht-clht-lb"})
	p := s.store.Pin()
	s.store.Set(p, []byte("hotkey"), 7, 0, []byte("0123456789"))
	p.Unpin()
	frame := bytes.Repeat([]byte("get hotkey\r\n"), depth)
	br := newReader(&repeatReader{frame: frame}, 1<<16)
	bw := newWriter(devNull{}, 0)
	ws := s.acquireWireStats()
	var batch Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		if _, err := ReadBatchInto(br, DefaultMaxItemSize, depth, &batch); err != nil {
			b.Fatal(err)
		}
		s.executeBatch(&batch, bw, ws)
	}
}

func BenchmarkWireSetPath(b *testing.B) {
	s, _ := New(Config{Algo: "ht-clht-lb"})
	br := newReader(&repeatReader{frame: []byte("set hotkey 0 0 10\r\n0123456789\r\n")}, 1<<16)
	bw := newWriter(devNull{}, 0)
	ws := s.acquireWireStats()
	var cmd Command
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReadCommandInto(br, DefaultMaxItemSize, &cmd, &sc)
		p := s.store.Pin()
		s.execute(p, &cmd, bw, ws)
		p.Unpin()
	}
}

type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
