package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Version is the server's protocol banner.
const Version = "ascylib-go/2.1"

// Config configures a Server.
type Config struct {
	// Addr is the listen address, e.g. ":11211" or "127.0.0.1:0".
	Addr string
	// Algo is the registry name of the backing structure.
	Algo string
	// Capacity sizes the backing structure (hash-table buckets, total
	// across shards); <= 0 picks the store default.
	Capacity int
	// Shards hash-partitions the keyspace across that many independent
	// structure instances, each with its own value-block pool and SSMEM
	// epochs (see Store) — the knob that lets the list and tree families
	// serve multi-core traffic instead of serializing on one structure.
	// <= 0 means 1 (a single instance).
	Shards int
	// Ordered keys the store with the order-preserving encoding (see
	// ascylib.OrderedStringMap) and range-partitions shards, lighting up the
	// mrange/mmin/mmax commands: scans enumerate the keyspace in true
	// lexicographic order. Without it those commands answer SERVER_ERROR —
	// and hash placement stays uniform, which is why it is opt-in: ordered
	// placement is what makes scans cheap on the sorted structures, and what
	// clusters buckets on a hash table.
	Ordered bool
	// AcceptWorkers is the size of the sharded-accept pool: that many
	// goroutines block in Accept concurrently, so connection setup under
	// a connect storm spreads across cores instead of serializing on one
	// accept loop. <= 0 means GOMAXPROCS, capped at 8.
	AcceptWorkers int
	// MaxConns caps concurrently open connections. At the cap the accept
	// path sheds: the newcomer gets one "SERVER_ERROR busy" line and an
	// immediate close, so it learns the server is saturated instead of
	// hanging — the graceful half of overload, where the alternative is
	// unbounded goroutine growth until the process dies for everyone.
	// <= 0 means unlimited.
	MaxConns int
	// ChaosPanicKey arms the chaos harness's panic injector: a get of
	// exactly this key panics in the handler, exercising the per-connection
	// panic isolation (the panic is recovered, counted in handler_panics,
	// and closes only that connection — never the process). Empty disables
	// injection; production configs leave it empty.
	ChaosPanicKey string
	// ReusePort shards the listener itself: every accept worker gets its
	// own SO_REUSEPORT socket bound to the same address, so the kernel
	// hash-distributes incoming connections across per-worker accept
	// queues instead of all workers contending on one queue's lock. On
	// platforms without SO_REUSEPORT support this degrades gracefully to
	// the single shared listener (ReusePortActive reports which).
	ReusePort bool
	// MaxItemSize bounds value blocks; <= 0 means DefaultMaxItemSize.
	MaxItemSize int
	// MaxBatch bounds how many pipelined requests one batch executes under
	// a single store pin (see ReadBatchInto): a client that has queued n
	// requests in the read buffer hands the server a free batch, and the
	// per-request fixed costs — pin-frame pool traffic, per-shard epoch
	// brackets, the clock read, and the response flush — amortize across
	// it. <= 0 picks DefaultMaxBatch; 1 disables batching (the per-command
	// path, kept for differential testing and as the depth-1 baseline).
	MaxBatch int
	// ReadBufferSize / WriteBufferSize size the per-connection bufio
	// buffers; <= 0 picks 64 KiB reads (never below MaxCommandLine) and
	// 64 KiB writes.
	ReadBufferSize  int
	WriteBufferSize int
	// NoValuePooling disables SSMEM recycling of stored value blocks
	// (see Store); by default the serving path recycles them.
	NoValuePooling bool
	// WriteTimeout bounds each TCP write; a connection that cannot accept
	// bytes for this long is closed. Bounded writes matter beyond hygiene:
	// a request's epoch pin spans its response staging, and an epoch that
	// never closes stalls value-block reclamation for the whole store, so
	// an unbounded write would let one dead-slow client grow server memory
	// without limit. 0 picks 30 seconds; negative disables the deadline.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a connection may sit with no bytes
	// arriving before the server reclaims it. Without it, an idle or
	// half-open client pins its goroutine (and its slot in the connection
	// table) forever — a slow leak under real traffic, where peers
	// disappear without a FIN all the time. The deadline is re-armed on
	// every read, so any traffic keeps a connection alive indefinitely;
	// a request already in progress is still subject to it (a client that
	// stalls mid-frame for the whole window is indistinguishable from a
	// dead one). 0 picks 5 minutes; negative disables the deadline.
	IdleTimeout time.Duration
	// SnapshotPath, when non-empty, enables the persistence layer (see
	// persist.go and internal/snapshot): the file is loaded on New (warm
	// restart — a corrupt or truncated file logs loudly and boots empty,
	// never crashes), the msnap verb snapshots to it on demand, Shutdown
	// writes a final snapshot after the drain, and SnapshotInterval adds
	// a background ticker. Writes are crash-safe (temp + fsync + atomic
	// rename): dying mid-write leaves the previous file intact.
	SnapshotPath string
	// SnapshotInterval is the background snapshot period; 0 disables the
	// ticker (msnap and the shutdown snapshot still work). Ignored
	// without SnapshotPath.
	SnapshotInterval time.Duration
	// Logf, when set, receives connection-level error logs.
	Logf func(format string, args ...any)

	// globalWireStats reverts the per-connection wire counters (see
	// wirestats.go) to one shared slot that every connection writes —
	// the pre-sharding behavior, where each request's bookkeeping bounced
	// cache lines between every core serving traffic. It exists only as
	// the reference side of the stats differential test; production paths
	// never set it.
	globalWireStats bool
}

func (c *Config) fill() {
	if c.Algo == "" {
		c.Algo = "ht-clht-lb"
	}
	if c.AcceptWorkers <= 0 {
		c.AcceptWorkers = runtime.GOMAXPROCS(0)
		if c.AcceptWorkers > 8 {
			c.AcceptWorkers = 8
		}
	}
	if c.MaxItemSize <= 0 {
		c.MaxItemSize = DefaultMaxItemSize
	}
	if c.ReadBufferSize < MaxCommandLine {
		c.ReadBufferSize = 64 << 10
	}
	if c.WriteBufferSize <= 0 {
		c.WriteBufferSize = 64 << 10
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
}

// batchHistBuckets is the number of power-of-two batch-depth histogram
// buckets: 1, 2–3, 4–7, …, 128–255, 256+.
const batchHistBuckets = 9

// respOrderedDisabled answers the ordered-keyspace commands on a server
// whose store was not built with Config.Ordered. It is recoverable — the
// connection keeps serving — and tells the operator exactly which knob is
// missing.
const respOrderedDisabled = "SERVER_ERROR ordered keyspace disabled (start with -ordered)"

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Server is a memcached-protocol TCP server over one Store.
type Server struct {
	cfg   Config
	store *Store
	ln    net.Listener
	// lns holds every bound listener: just ln normally, one per accept
	// worker when SO_REUSEPORT sharding engaged (see Config.ReusePort).
	lns   []net.Listener
	start time.Time

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// draining flips when Shutdown begins: accept loops stop taking new
	// connections and connReader stops re-arming idle deadlines, so every
	// handler finishes the requests already received and then exits at its
	// next blocking read.
	draining atomic.Bool

	// Connection accounting (accept-path only, so contention-free in the
	// request loop). The per-request wire counters live in per-connection
	// wireStats slots (see wirestats.go) and are aggregated on demand.
	totalConns atomic.Uint64
	currConns  atomic.Int64

	// Fault accounting: handler panics recovered (each closed exactly one
	// connection, never the process) and connections shed at the MaxConns
	// cap.
	panics atomic.Uint64
	shed   atomic.Uint64

	// Wire-counter slot registry: statsAll is append-only (every slot ever
	// leased, live or parked), statsFree the parked ones awaiting reuse.
	statsMu   sync.Mutex
	statsAll  []*wireStats
	statsFree []*wireStats

	// Persistence bookkeeping (see serversnap.go). snapMu single-flights
	// snapshot writes: the ticker, msnap, and the shutdown snapshot
	// serialize on it, so two writers can never race on the temp file.
	snapMu       sync.Mutex
	snapStop     chan struct{}
	snapStopOnce sync.Once
	snapLoopOnce sync.Once
	snapWG       sync.WaitGroup
	snapLastUnix atomic.Int64
	snapCount    atomic.Uint64
	snapItems    atomic.Uint64
	snapBytes    atomic.Uint64
	snapErrs     atomic.Uint64
	loadedItems  atomic.Uint64
	loadExpired  atomic.Uint64
	loadMicros   atomic.Int64

	// finalStats makes the post-mortem stats line single-shot whichever
	// path closes the server first.
	finalStats sync.Once
}

// New builds a server (not yet listening) for cfg.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if a, ok := core.Get(cfg.Algo); !ok {
		return nil, fmt.Errorf("server: unknown algorithm %q", cfg.Algo)
	} else if !a.Safe {
		return nil, fmt.Errorf("server: algorithm %q is an unsynchronized async baseline; refusing to serve it", cfg.Algo)
	}
	st, err := NewStore(cfg.Algo, cfg.Capacity, !cfg.NoValuePooling, cfg.Shards, cfg.Ordered)
	if err != nil {
		return nil, err
	}
	// Seed one counter slot: the shared slot in globalWireStats mode, the
	// first connection's otherwise.
	ws0 := &wireStats{}
	srv := &Server{
		cfg:       cfg,
		store:     st,
		conns:     map[net.Conn]struct{}{},
		statsAll:  []*wireStats{ws0},
		statsFree: []*wireStats{ws0},
		snapStop:  make(chan struct{}),
	}
	if cfg.SnapshotPath != "" {
		// Warm restart. Never fatal: a missing file is a cold boot, a
		// damaged one logs loudly and boots empty (the file itself is
		// left in place for the operator).
		srv.loadSnapshot()
	}
	return srv, nil
}

// Store returns the backing store (for in-process inspection and tests).
func (s *Server) Store() *Store { return s.store }

// ErrServerClosed reports that Listen (or Serve's implicit Listen) found the
// server already closed. Serve treats it as a clean shutdown: Close racing
// Serve's startup is an ordinary sequence, not an error.
var ErrServerClosed = errors.New("server: already closed")

// install publishes freshly bound listeners, unless Close already won the
// race — in which case the listeners are closed on the spot and the caller
// gets ErrServerClosed, so a Close that finished before Listen can never be
// trumped by a server that starts serving afterwards.
func (s *Server) install(lns []net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		return ErrServerClosed
	}
	s.ln, s.lns = lns[0], lns
	s.start = time.Now()
	s.mu.Unlock()
	return nil
}

// Listen binds the configured address. After Listen returns, Addr reports
// the actual address (useful with port 0). With ReusePort set on a capable
// platform, one SO_REUSEPORT listener is bound per accept worker — the
// first on the configured address, the rest on the concrete address it
// resolved to (so ":0" sweeps work: every sibling binds the chosen port).
func (s *Server) Listen() error {
	if s.cfg.ReusePort && reusePortAvailable && s.cfg.AcceptWorkers > 1 {
		ln, err := listenReusePort(s.cfg.Addr)
		if err != nil {
			return err
		}
		lns := []net.Listener{ln}
		for i := 1; i < s.cfg.AcceptWorkers; i++ {
			sib, err := listenReusePort(ln.Addr().String())
			if err != nil {
				for _, l := range lns {
					l.Close()
				}
				return err
			}
			lns = append(lns, sib)
		}
		return s.install(lns)
	}
	if s.cfg.ReusePort && !reusePortAvailable {
		s.logf("server: SO_REUSEPORT unavailable on this platform; using one shared listener")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.install([]net.Listener{ln})
}

// ReusePortActive reports whether the accept path is running one
// SO_REUSEPORT listener per worker (false before Listen, or when the
// platform forced the shared-listener fallback).
func (s *Server) ReusePortActive() bool { return len(s.lns) > 1 }

// Addr returns the bound listen address; nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept pool and blocks until Close. It returns nil on a
// clean shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			if errors.Is(err, ErrServerClosed) {
				return nil // Close won the startup race; a clean shutdown
			}
			return err
		}
	}
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotInterval > 0 {
		s.snapLoopOnce.Do(func() {
			s.snapWG.Add(1)
			go s.snapshotLoop()
		})
	}
	var awg sync.WaitGroup
	for i := 0; i < s.cfg.AcceptWorkers; i++ {
		// With per-worker SO_REUSEPORT listeners each worker accepts on
		// its own socket; otherwise every worker shares the one listener.
		ln := s.lns[i%len(s.lns)]
		awg.Add(1)
		go func() {
			defer awg.Done()
			s.acceptLoop(ln)
		}()
	}
	awg.Wait()
	s.wg.Wait()
	return nil
}

// ListenAndServe is Listen followed by Serve. Like Serve, losing the
// startup race to a concurrent Close is a clean shutdown, not an error.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		if errors.Is(err, ErrServerClosed) {
			return nil
		}
		return err
	}
	return s.Serve()
}

// Close stops accepting, closes every open connection, and waits for the
// connection handlers to drain. It is idempotent and safe to call from any
// goroutine, concurrently with Serve's startup included: whichever of
// Listen and Close runs second observes the other (see install), so a
// server closed before it ever bound stays closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	lns := s.lns
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.stopSnapshotLoop()
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) && err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	s.emitFinalStats()
	return err
}

// Shutdown drains the server: it stops accepting, lets every connection
// finish the requests it has already received (a blocked read returns at
// once — an idle connection holds nothing in flight — while a handler mid-
// batch completes the batch and flushes its responses), and then closes.
// If ctx expires first, the remaining connections are closed hard. Either
// way Serve returns nil and the server ends fully stopped; Shutdown after
// Shutdown (or Close) is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	// Wake every blocked read with an already-past deadline. Requests whose
	// bytes have arrived still execute — bufio serves them without touching
	// the socket — so the drain boundary is exactly "what the server had
	// received when Shutdown began". connReader sees draining and leaves
	// the past deadline in place rather than re-arming the idle timeout.
	past := time.Unix(1, 0)
	for _, c := range conns {
		c.SetReadDeadline(past)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Final snapshot, after the drain boundary: every request the server
	// accepted before Shutdown has executed, so the cut is the server's
	// last word — what a warm restart will serve. Failure is logged and
	// counted, never fatal to the shutdown.
	if s.cfg.SnapshotPath != "" {
		s.stopSnapshotLoop()
		if _, _, serr := s.TakeSnapshot(); serr != nil {
			s.logf("server: final snapshot: %v", serr)
		}
	}
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// acceptLoop is one worker of the sharded-accept pool, accepting on its
// assigned listener.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("server: accept: %v", err)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if s.draining.Load() {
			c.Close()
			continue
		}
		if s.cfg.MaxConns > 0 && s.currConns.Load() >= int64(s.cfg.MaxConns) {
			// At the cap: tell the newcomer why and hang up, off the
			// accept loop's critical path (a peer that never reads must
			// not stall accepting for everyone else).
			s.shed.Add(1)
			go shedConn(c)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.totalConns.Add(1)
		s.currConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.currConns.Add(-1)
				c.Close()
			}()
			// Panic isolation: a panic in this connection's handler — a
			// store bug, a parser edge, an injected chaos fault — costs
			// exactly this connection. The deferred recover runs before
			// the cleanup defers above, so the connection is still
			// unregistered and closed, and the epoch pin (executeBatch's
			// own defer) has already been released during unwinding.
			defer func() {
				if r := recover(); r != nil {
					s.panics.Add(1)
					s.logf("server: %s: handler panic (connection closed, server continues): %v\n%s",
						c.RemoteAddr(), r, debug.Stack())
				}
			}()
			s.handleConn(c)
		}()
	}
}

// shedConn delivers the over-capacity refusal: one error line, bounded by a
// short write deadline, then a close.
func shedConn(c net.Conn) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	c.Write([]byte("SERVER_ERROR busy\r\n"))
	c.Close()
}

// handleConn runs the request loop of one connection. Pipelining: requests
// are read in batches — everything completely buffered behind the first
// (blocking) frame, up to MaxBatch — and each batch executes under one
// store pin, so the per-request fixed costs (pin-frame pool traffic,
// per-shard epoch brackets, the clock read) amortize across the burst. The
// response writer is flushed only when the read buffer has no complete
// further input, so a burst of n requests costs O(1) TCP writes. The loop
// owns one Batch (entries plus per-slot scratch) for its lifetime, so the
// steady-state request path (parse → store → respond) performs no heap
// allocation.
func (s *Server) handleConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	ws := s.acquireWireStats()
	defer s.releaseWireStats(ws)
	r := newConnReader(c, s, ws)
	br := newReader(r, s.cfg.ReadBufferSize)
	bw := newWriter(&connWriter{c: c, ws: ws, timeout: s.cfg.WriteTimeout}, s.cfg.WriteBufferSize)
	var b Batch
	for {
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		n, err := ReadBatchInto(br, s.cfg.MaxItemSize, s.cfg.MaxBatch, &b)
		if n > 0 && s.executeBatch(&b, bw, ws) {
			bw.Flush()
			return
		}
		if err != nil {
			// Transport error or EOF: flush whatever is pending and stop.
			bw.Flush()
			return
		}
	}
}

// executeBatch applies one parsed batch to the store under a single pin and
// reports whether the connection must close (quit or a fatal protocol
// error). The epoch pin spans the whole batch — including the staging of
// every response value into the write buffer — so a value block handed out
// by Get cannot be recycled before its bytes are copied out, and a batch of
// n commands costs one pin-frame round-trip and at most one epoch bracket
// per touched shard instead of n.
func (s *Server) executeBatch(b *Batch, w *respWriter, ws *wireStats) (closed bool) {
	n := len(b.Entries)
	ws.batches.Add(1)
	ws.cmdBatched.Add(uint64(n))
	ws.batchHist[batchBucket(n)].Add(1)
	p := s.store.Pin()
	defer p.Unpin()
	for i := range b.Entries {
		e := &b.Entries[i]
		if e.Err != nil {
			ws.protoErrors.Add(1)
			if !e.Err.NoReply {
				w.line(e.Err.Resp)
			}
			if e.Err.Fatal {
				return true
			}
			continue
		}
		if e.Cmd.Op == OpQuit {
			return true
		}
		s.execute(p, &e.Cmd, w, ws)
	}
	return false
}

// batchBucket maps a batch depth onto its histogram bucket: bucket i covers
// [2^i, 2^(i+1)), with the last bucket open-ended.
func batchBucket(n int) int {
	b := 0
	for n > 1 && b < batchHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// execute applies one command to the store under the batch's pin, counts it
// into the connection's wireStats slot, and writes its response.
func (s *Server) execute(p Pin, cmd *Command, w *respWriter, ws *wireStats) {
	switch cmd.Op {
	case OpGet, OpGets:
		ws.cmdGet.Add(1)
		if s.cfg.ChaosPanicKey != "" {
			for _, k := range cmd.Keys {
				if string(k) == s.cfg.ChaosPanicKey {
					panic("chaos: injected handler panic on key " + string(k))
				}
			}
		}
		withCAS := cmd.Op == OpGets
		if len(cmd.Keys) > 1 {
			// Multi-get: route, group by shard, and walk shard-grouped
			// under the already-open pin; responses come back in request
			// order (see Store.GetBatch).
			s.store.GetBatch(p, cmd.Keys, func(i int, it Item, ok bool) {
				if !ok {
					ws.getMisses.Add(1)
					return
				}
				ws.getHits.Add(1)
				w.value(cmd.Keys[i], it, withCAS)
			})
		} else {
			for _, k := range cmd.Keys {
				it, ok := s.store.Get(p, k)
				if !ok {
					ws.getMisses.Add(1)
					continue
				}
				ws.getHits.Add(1)
				w.value(k, it, withCAS)
			}
		}
		w.line("END")

	case OpSet:
		ws.cmdSet.Add(1)
		s.store.Set(p, cmd.Key, cmd.Flags, cmd.Exptime, cmd.Data)
		w.reply(cmd, "STORED")

	case OpAdd:
		ws.cmdSet.Add(1)
		if s.store.Add(p, cmd.Key, cmd.Flags, cmd.Exptime, cmd.Data) {
			w.reply(cmd, "STORED")
		} else {
			w.reply(cmd, "NOT_STORED")
		}

	case OpReplace:
		ws.cmdSet.Add(1)
		if s.store.Replace(p, cmd.Key, cmd.Flags, cmd.Exptime, cmd.Data) {
			w.reply(cmd, "STORED")
		} else {
			w.reply(cmd, "NOT_STORED")
		}

	case OpCas:
		ws.cmdSet.Add(1)
		switch s.store.CompareAndSwap(p, cmd.Key, cmd.Flags, cmd.Exptime, cmd.Data, cmd.CasID) {
		case CasStored:
			ws.casHits.Add(1)
			w.reply(cmd, "STORED")
		case CasExists:
			ws.casBadval.Add(1)
			w.reply(cmd, "EXISTS")
		default:
			ws.casMisses.Add(1)
			w.reply(cmd, "NOT_FOUND")
		}

	case OpDelete:
		ws.cmdDelete.Add(1)
		if s.store.Delete(p, cmd.Key) {
			ws.deleteHits.Add(1)
			w.reply(cmd, "DELETED")
		} else {
			ws.deleteMisses.Add(1)
			w.reply(cmd, "NOT_FOUND")
		}

	case OpIncr, OpDecr:
		incr := cmd.Op == OpIncr
		cmds, hits, misses := &ws.cmdIncr, &ws.incrHits, &ws.incrMisses
		if !incr {
			cmds, hits, misses = &ws.cmdDecr, &ws.decrHits, &ws.decrMisses
		}
		cmds.Add(1)
		nv, status := s.store.IncrDecr(p, cmd.Key, cmd.Delta, incr)
		switch status {
		case IncrOK:
			hits.Add(1)
			w.replyUint(cmd, nv)
		case IncrNotFound:
			misses.Add(1)
			w.reply(cmd, "NOT_FOUND")
		default:
			// The key was found (that is what made the value inspectable),
			// so the outcome is a hit — as memcached counts it. Every
			// incr/decr lands in exactly one of hit or miss.
			hits.Add(1)
			w.reply(cmd, "CLIENT_ERROR cannot increment or decrement non-numeric value")
		}

	case OpMRange:
		ws.cmdMRange.Add(1)
		if !s.store.Ordered() {
			w.line(respOrderedDisabled)
			return
		}
		// The parser guarantees a positive limit; the server clamps it so a
		// scan can never stage more than MaxRangeKeys stanzas. An inverted
		// range (lo > hi) walks no shards and answers a bare END. The emit
		// path is valueStr over the store's own key strings — nothing is
		// allocated per returned entry.
		limit := int(cmd.Delta)
		if limit > MaxRangeKeys {
			limit = MaxRangeKeys
		}
		n := s.store.RangeScan(p, cmd.Keys[0], cmd.Keys[1], limit, func(k string, it Item) bool {
			w.valueStr(k, it, false)
			return true
		})
		ws.rangeKeys.Add(uint64(n))
		w.line("END")

	case OpMMin, OpMMax:
		cnt := &ws.cmdMMin
		if cmd.Op == OpMMax {
			cnt = &ws.cmdMMax
		}
		cnt.Add(1)
		if !s.store.Ordered() {
			w.line(respOrderedDisabled)
			return
		}
		var (
			k  string
			it Item
			ok bool
		)
		if cmd.Op == OpMMin {
			k, it, ok = s.store.MinItem(p)
		} else {
			k, it, ok = s.store.MaxItem(p)
		}
		if ok {
			w.valueStr(k, it, false)
		}
		w.line("END")

	case OpMSnap:
		ws.cmdMSnap.Add(1)
		if s.cfg.SnapshotPath == "" {
			w.line(respSnapshotDisabled)
			return
		}
		// Synchronous by design: OK on the wire means the snapshot file
		// is durable on disk — the client can SIGKILL the server the
		// moment it reads the reply (the CI smoke job does exactly
		// that). The write runs under snapMu, not the store: every
		// other connection keeps serving while the cut is taken.
		if _, _, err := s.TakeSnapshot(); err != nil {
			s.logf("server: msnap: %v", err)
			w.line("SERVER_ERROR snapshot failed")
			return
		}
		w.line("OK")

	case OpStats:
		for _, kv := range s.Stats() {
			w.line("STAT " + kv[0] + " " + kv[1])
		}
		w.line("END")

	case OpVersion:
		w.line("VERSION " + Version)

	case OpFlushAll:
		// The parser rejects negative delays; this guard keeps the store's
		// flush epoch in the future even if a new command path (or an
		// in-process caller) hands one through — a past epoch with a fresh
		// CAS watermark would silently kill every current item.
		if cmd.Exptime < 0 {
			w.reply(cmd, "CLIENT_ERROR invalid flush_all delay")
			return
		}
		ws.cmdFlush.Add(1)
		s.store.FlushAll(p, cmd.Exptime)
		w.reply(cmd, "OK")
	}
}

// Stats returns the server statistics as ordered (name, value) pairs — the
// classic memcached counters plus "algo", so clients (and the load
// generator's BENCH output) can see which structure is serving.
func (s *Server) Stats() [][2]string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	t := s.wireTotals()
	pairs := [][2]string{
		{"uptime", strconv.FormatInt(int64(time.Since(s.start)/time.Second), 10)},
		{"time", strconv.FormatInt(time.Now().Unix(), 10)},
		{"version", Version},
		{"pointer_size", "64"},
		{"algo", s.store.Algo()},
		{"shards", strconv.Itoa(s.store.Shards())},
		{"ordered", yesNo(s.store.Ordered())},
		{"threads", strconv.Itoa(s.cfg.AcceptWorkers)},
		{"curr_connections", strconv.FormatInt(s.currConns.Load(), 10)},
		{"total_connections", u(s.totalConns.Load())},
		{"bytes_read", u(t.bytesRead)},
		{"bytes_written", u(t.bytesWritten)},
		{"cmd_get", u(t.cmdGet)},
		{"cmd_set", u(t.cmdSet)},
		{"cmd_delete", u(t.cmdDelete)},
		{"cmd_incr", u(t.cmdIncr)},
		{"cmd_decr", u(t.cmdDecr)},
		{"cmd_flush", u(t.cmdFlush)},
		{"cmd_mrange", u(t.cmdMRange)},
		{"cmd_mmin", u(t.cmdMMin)},
		{"cmd_mmax", u(t.cmdMMax)},
		{"cmd_msnap", u(t.cmdMSnap)},
		{"range_keys_returned", u(t.rangeKeys)},
		{"get_hits", u(t.getHits)},
		{"get_misses", u(t.getMisses)},
		{"delete_hits", u(t.deleteHits)},
		{"delete_misses", u(t.deleteMisses)},
		{"incr_hits", u(t.incrHits)},
		{"incr_misses", u(t.incrMisses)},
		{"decr_hits", u(t.decrHits)},
		{"decr_misses", u(t.decrMisses)},
		{"cas_hits", u(t.casHits)},
		{"cas_misses", u(t.casMisses)},
		{"cas_badval", u(t.casBadval)},
		{"protocol_errors", u(t.protoErrors)},
		{"handler_panics", u(s.panics.Load())},
		{"conns_shed", u(s.shed.Load())},
		{"curr_items", strconv.Itoa(s.store.Items())},
	}
	// Batch accounting: how well the pipelined bursts amortize. The depth
	// histogram buckets are powers of two; batch_depth_avg is the achieved
	// server-side batch depth (1.0 means no amortization — every command
	// paid its own pin, epochs, and clock read).
	batches, batched := t.batches, t.cmdBatched
	avg := 0.0
	if batches > 0 {
		avg = float64(batched) / float64(batches)
	}
	pairs = append(pairs,
		[2]string{"batches", u(batches)},
		[2]string{"cmd_batched", u(batched)},
		[2]string{"batch_depth_avg", strconv.FormatFloat(avg, 'f', 2, 64)},
	)
	for i := range t.batchHist {
		lo := 1 << i
		name := fmt.Sprintf("batch_depth_%d_%d", lo, 2*lo-1)
		if i == 0 {
			name = "batch_depth_1"
		} else if i == batchHistBuckets-1 {
			name = fmt.Sprintf("batch_depth_%d_plus", lo)
		}
		pairs = append(pairs, [2]string{name, u(t.batchHist[i])})
	}
	// Value-block pool counters (ASCY4 on the serving path); zero when
	// pooling is disabled.
	bs := s.store.BufStats()
	pairs = append(pairs,
		[2]string{"value_pool_allocs", u(bs.Allocs)},
		[2]string{"value_pool_reused", u(bs.Reused)},
	)
	// Persistence counters (zero without Config.SnapshotPath):
	// snapshot_last_unix/_items/_bytes describe the last successful
	// snapshot, loaded_items/snapshot_load_ms the warm boot (loaded_items
	// counts only items actually inserted — records already expired at
	// load time are in neither).
	pairs = append(pairs,
		[2]string{"snapshots_taken", u(s.snapCount.Load())},
		[2]string{"snapshot_last_unix", strconv.FormatInt(s.snapLastUnix.Load(), 10)},
		[2]string{"snapshot_items", u(s.snapItems.Load())},
		[2]string{"snapshot_bytes", u(s.snapBytes.Load())},
		[2]string{"snapshot_errors", u(s.snapErrs.Load())},
		[2]string{"loaded_items", u(s.loadedItems.Load())},
		[2]string{"load_expired_skipped", u(s.loadExpired.Load())},
		[2]string{"snapshot_load_ms", strconv.FormatFloat(float64(s.loadMicros.Load())/1000, 'f', 3, 64)},
	)
	return pairs
}

// StatsMap returns Stats as a map.
func (s *Server) StatsMap() map[string]string {
	m := map[string]string{}
	for _, kv := range s.Stats() {
		m[kv[0]] = kv[1]
	}
	return m
}

// connReader counts bytes into the server's stats and enforces the idle
// timeout: the read deadline is re-armed before every Read, so a silent or
// half-open client times out and is reclaimed while any live traffic keeps
// the connection open.
type connReader struct {
	c       net.Conn
	ws      *wireStats
	srv     *Server
	timeout time.Duration
}

func newConnReader(c net.Conn, s *Server, ws *wireStats) *connReader {
	return &connReader{c: c, ws: ws, srv: s, timeout: s.cfg.IdleTimeout}
}

func (r *connReader) Read(p []byte) (int, error) {
	if r.srv.draining.Load() {
		// Shutdown set a past deadline to drain this connection; re-arming
		// the idle timeout here would undo it and hold the drain open.
	} else if r.timeout > 0 {
		r.c.SetReadDeadline(time.Now().Add(r.timeout))
	}
	n, err := r.c.Read(p)
	if n > 0 {
		r.ws.bytesRead.Add(uint64(n))
	}
	return n, err
}

// connWriter counts bytes out and enforces the per-write deadline.
type connWriter struct {
	c       net.Conn
	ws      *wireStats
	timeout time.Duration
}

func (w *connWriter) Write(p []byte) (int, error) {
	if w.timeout > 0 {
		w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	n, err := w.c.Write(p)
	if n > 0 {
		w.ws.bytesWritten.Add(uint64(n))
	}
	return n, err
}
