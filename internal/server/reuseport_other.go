//go:build !linux

package server

import (
	"errors"
	"net"
)

// reusePortAvailable: non-Linux builds fall back to one shared listener —
// Listen degrades gracefully rather than failing the server.
const reusePortAvailable = false

func listenReusePort(addr string) (net.Listener, error) {
	return nil, errors.New("server: SO_REUSEPORT unsupported on this platform")
}
