package ssmem

import (
	"runtime"
	"sync"
	"testing"
)

// TestStripedFastPathAffinity: a goroutine that Puts and re-Gets must be
// served from its own stripe slot — the per-P affinity path — not from the
// shared sync.Pool, once the slot is primed.
func TestStripedFastPathAffinity(t *testing.T) {
	p := NewPool[obj](4)
	const rounds = 256
	for i := 0; i < rounds; i++ {
		a := p.Get()
		a.OpStart()
		a.Free(a.Alloc())
		a.OpEnd()
		p.Put(a)
	}
	hits, misses := p.StripeStats()
	// The first Get necessarily misses (nothing parked yet); everything
	// after must come from the stripe slot: same goroutine, same hint,
	// nobody competing.
	if hits < rounds-1 {
		t.Fatalf("stripe fast path served %d of %d gets (misses=%d), want >= %d",
			hits, rounds, misses, rounds-1)
	}

	bp := NewBufPool(4)
	for i := 0; i < rounds; i++ {
		a := bp.Get()
		a.OpStart()
		a.Free(a.Alloc(64))
		a.OpEnd()
		bp.Put(a)
	}
	if hits, misses := bp.StripeStats(); hits < rounds-1 {
		t.Fatalf("BufPool stripe fast path served %d of %d gets (misses=%d)",
			hits, rounds, misses)
	}
}

// TestStripedPoolConcurrentChurn is the -race gate for the striped fast
// path: many goroutines lease, allocate, free, and park concurrently while
// GC cycles clear the sync.Pool underneath. The race detector asserts the
// slot handoffs are properly synchronized; the counters assert no operation
// was lost or double-served.
func TestStripedPoolConcurrentChurn(t *testing.T) {
	p := NewPool[obj](8)
	bp := NewBufPool(8)
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a := Pin(p)
				o := a.Alloc()
				FreeTo(a, o)
				Unpin(p, a)

				ba := bp.Get()
				ba.OpStart()
				b := ba.Alloc(48)
				ba.Free(b)
				ba.OpEnd()
				bp.Put(ba)
				if i%64 == 0 {
					runtime.GC() // clear the sync.Pool; stripes must not care
				}
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.Allocs != workers*per || s.Frees != workers*per {
		t.Fatalf("pool aggregate = %+v, want %d allocs/frees", s, workers*per)
	}
	if s := bp.Stats(); s.Allocs != workers*per || s.Frees != workers*per {
		t.Fatalf("bufpool aggregate = %+v, want %d allocs/frees", s, workers*per)
	}
	// Ownership stayed bounded: the stripe layer must not have minted
	// allocators beyond peak concurrent leases.
	p.mu.Lock()
	n := len(p.all)
	p.mu.Unlock()
	if n > workers {
		t.Fatalf("allocator table grew to %d with %d workers", n, workers)
	}
}

// TestStripedPoolReuseBalance: with the striped fast path on, recycling
// still actually recycles — the reuse-rate floor the allocs ledger gates.
// An allocator that kept migrating would strand its free lists; affinity
// must keep them warm enough that steady churn reuses well over half its
// allocations, and the stripe path must be serving the traffic.
func TestStripedPoolReuseBalance(t *testing.T) {
	p := NewPool[obj](8)
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		a := Pin(p)
		o := a.Alloc()
		FreeTo(a, o)
		Unpin(p, a)
	}
	s := p.Stats()
	if rate := s.ReuseRate(); rate < 0.5 {
		t.Fatalf("reuse rate %.2f with striping on, want >= 0.5 (%+v)", rate, s)
	}
	hits, misses := p.StripeStats()
	if hits == 0 || hits < misses {
		t.Fatalf("stripe path idle under churn: hits=%d misses=%d", hits, misses)
	}
}
