// Per-P allocator affinity: a striped fast path fronting the pools.
//
// Pool and BufPool park idle allocators in a sync.Pool, which already gives
// rough per-P locality — but the runtime clears sync.Pools on every GC cycle
// and migrates cached items between Ps through its shared victim lists, so
// under sustained multi-core load an allocator (and the warm free lists it
// carries) keeps changing owners, and every migration drags its cache lines
// across cores. That is exactly the deferred-work cache traffic ASCY4 warns
// about, resurfacing inside the memory manager itself.
//
// The stripe layer removes it: a small GOMAXPROCS-sized array of
// cache-line-isolated parking slots, indexed by a goroutine-affine hint.
// Put parks the allocator in the caller's slot; the next Get from the same
// stripe takes it back with one uncontended atomic swap — no sync.Pool, no
// GC interference, no cross-slot sharing. Goroutines that collide on a slot
// (or arrive after a steal) simply fall through to the existing
// sync.Pool + lease-and-adopt path, so the stripe is purely an affinity
// accelerator: ownership, bounding, and the epoch protocol are unchanged.
package ssmem

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/pad"
)

// maxStripes bounds the slot array; beyond this the marginal affinity win
// does not pay for the aggregation scan.
const maxStripes = 64

// stripeSlot is one parking space. The pointer and its hit counter share the
// slot's private line; leading and trailing pads keep neighbors (and the
// enclosing struct's other fields) off it, so a slot is written only by the
// goroutines hashing to it.
type stripeSlot[A any] struct {
	_    pad.CacheLinePad
	p    atomic.Pointer[A]
	hits atomic.Uint64
	_    [pad.CacheLineSize - 16]byte
}

// stripes is the striped parking lot shared by Pool and BufPool.
type stripes[A any] struct {
	slots []stripeSlot[A]
	mask  uint32
	// misses counts Gets that fell through to the slow path; padded so the
	// (rare) contended bumps stay off the slots' lines.
	misses pad.Padded
}

// newStripes sizes the lot to the host's parallelism at construction time
// (rounded up to a power of two, capped). GOMAXPROCS can change later — the
// -cpu sweeps do exactly that — but a stripe count fixed at the larger of
// GOMAXPROCS and NumCPU keeps every plausible setting covered.
func newStripes[A any]() *stripes[A] {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c > n {
		n = c
	}
	size := 1
	for size < n {
		size <<= 1
	}
	if size > maxStripes {
		size = maxStripes
	}
	return &stripes[A]{slots: make([]stripeSlot[A], size), mask: uint32(size - 1)}
}

// stripeHint derives a goroutine-affine stripe index. Goroutine stacks are
// distinct heap allocations of at least 2 KiB, so the address of any stack
// variable, with the low in-stack bits dropped, separates goroutines while
// staying stable across the shallow call-depth differences between a Get and
// its matching Put. A finalizing multiply spreads the surviving bits so the
// mask sees all of them. This is affinity by goroutine rather than by P —
// indistinguishable for the server's goroutine-per-connection loops, and
// always safe: the hint only picks a slot, never protects anything.
func stripeHint() uint32 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) >> 11
	h *= 0x9E3779B97F4A7C15
	return uint32(h >> 32)
}

// take removes and returns the caller-stripe's parked allocator, nil when
// the slot is empty.
func (s *stripes[A]) take(hint uint32) *A {
	return s.slots[hint&s.mask].p.Swap(nil)
}

// park stores a into the caller's slot, failing (false) when it is occupied.
func (s *stripes[A]) park(hint uint32, a *A) bool {
	return s.slots[hint&s.mask].p.CompareAndSwap(nil, a)
}

// hit credits a fast-path hand-out to the caller's slot.
func (s *stripes[A]) hit(hint uint32) {
	s.slots[hint&s.mask].hits.Add(1)
}

// miss counts a slow-path fall-through.
func (s *stripes[A]) miss() {
	atomic.AddUint64(&s.misses.Value, 1)
}

// stats sums fast-path hits and slow-path misses across the lot.
func (s *stripes[A]) stats() (hits, misses uint64) {
	for i := range s.slots {
		hits += s.slots[i].hits.Load()
	}
	return hits, atomic.LoadUint64(&s.misses.Value)
}
