package ssmem

import (
	"runtime"
	"sync"
	"testing"
)

// TestPoolSingleHandOut: an object freed once is handed out at most once —
// the pool never duplicates a node (the "returns a node at most once"
// invariant the structure-level recycling relies on).
func TestPoolSingleHandOut(t *testing.T) {
	p := NewPool[obj](1)
	a := p.Get()
	const n = 64
	freed := make(map[*obj]bool, n)
	for i := 0; i < n; i++ {
		a.OpStart()
		o := a.Alloc()
		a.Free(o)
		a.OpEnd()
		freed[o] = true
	}
	live := make(map[*obj]int)
	for i := 0; i < 4*n; i++ {
		a.OpStart()
		o := a.Alloc()
		a.OpEnd()
		live[o]++
		if live[o] > 1 {
			t.Fatalf("object %p handed out twice without an intervening free", o)
		}
	}
	p.Put(a)
	if s := p.Stats(); s.Reused == 0 {
		t.Fatalf("no reuse recorded: %+v", s)
	}
	_ = freed
}

// TestPoolStatsAggregate: Stats sums across every allocator the pool ever
// created, including ones parked in the pool.
func TestPoolStatsAggregate(t *testing.T) {
	p := NewPool[obj](4)
	var wg sync.WaitGroup
	const workers, per = 4, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := p.Get()
			defer p.Put(a)
			for i := 0; i < per; i++ {
				a.OpStart()
				o := a.Alloc()
				a.Free(o)
				a.OpEnd()
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Allocs != workers*per || s.Frees != workers*per {
		t.Fatalf("aggregate = %+v, want %d allocs/frees", s, workers*per)
	}
}

// TestCollectorRegisterConcurrentWithChecks: registration is rare but must
// not race with the lock-free snapshot/safe reads. Run under -race.
func TestCollectorRegisterConcurrentWithChecks(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			b := NewAllocator[obj](c, 1)
			b.OpStart()
			b.OpEnd()
		}
	}()
	for i := 0; i < 2000; i++ {
		a.OpStart()
		o := a.Alloc()
		a.Free(o)
		a.OpEnd()
		a.Collect()
	}
	<-done
}

func TestBufAllocatorClassReuse(t *testing.T) {
	c := NewCollector()
	a := NewBufAllocator(c, 1)
	a.OpStart()
	b := a.Alloc(100) // 128-byte class
	if cap(b) != 128 || len(b) != 100 {
		t.Fatalf("cap/len = %d/%d, want 128/100", cap(b), len(b))
	}
	a.Free(b)
	a.OpEnd()
	a.OpStart()
	b2 := a.Alloc(120)
	a.OpEnd()
	if cap(b2) != 128 {
		t.Fatalf("second alloc cap = %d", cap(b2))
	}
	if &b2[:1][0] != &b[:1][0] {
		t.Fatal("block not reused after safe epoch")
	}
	if s := a.Stats(); s.Reused != 1 {
		t.Fatalf("stats = %+v, want Reused=1", s)
	}
}

func TestBufAllocatorEpochBlocksReuse(t *testing.T) {
	c := NewCollector()
	reader := NewBufAllocator(c, 1)
	writer := NewBufAllocator(c, 1)

	reader.OpStart() // holds an epoch open

	writer.OpStart()
	b := writer.Alloc(64)
	writer.Free(b)
	writer.OpEnd()

	writer.OpStart()
	b2 := writer.Alloc(64)
	writer.OpEnd()
	if &b[0] == &b2[0] {
		t.Fatal("block reused while another goroutine was inside an operation")
	}
	reader.OpEnd()
}

func TestBufAllocatorDropsForeignBlocks(t *testing.T) {
	c := NewCollector()
	a := NewBufAllocator(c, 1)
	a.Free(make([]byte, 0, 100)) // not a class size: dropped
	a.Free(nil)
	oversize := a.Alloc(1 << 20) // above the top class: plain heap
	if cap(oversize) != 1<<20 {
		t.Fatalf("oversize cap = %d", cap(oversize))
	}
	a.Free(oversize[: 0 : 1<<20])
	if s := a.Stats(); s.Frees != 0 {
		t.Fatalf("foreign/oversize blocks were pooled: %+v", s)
	}
}

func TestBufClassFor(t *testing.T) {
	cases := map[int]int{1: 0, 32: 0, 33: 1, 64: 1, 65: 2, 1 << 16: numBufClass - 1}
	for n, want := range cases {
		if got := bufClassFor(n); got != want {
			t.Fatalf("bufClassFor(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestPoolBoundedAcrossGC: the runtime clears sync.Pools on every GC
// cycle; the lease-and-adopt scheme must re-adopt registered allocators
// instead of creating new ones, so the allocator table (and with it the
// collector's thread registry and the retained free lists) stays bounded
// by peak concurrent leases, not by process lifetime.
func TestPoolBoundedAcrossGC(t *testing.T) {
	p := NewPool[obj](4)
	for i := 0; i < 50; i++ {
		a := p.Get()
		a.OpStart()
		a.Free(a.Alloc())
		a.OpEnd()
		p.Put(a)
		runtime.GC() // drops the sync.Pool reference; the table keeps ownership
	}
	p.mu.Lock()
	n := len(p.all)
	p.mu.Unlock()
	if n > 2 {
		t.Fatalf("allocator table grew to %d across GC cycles, want <= 2", n)
	}
	bp := NewBufPool(4)
	for i := 0; i < 50; i++ {
		a := bp.Get()
		a.OpStart()
		a.Free(a.Alloc(64))
		a.OpEnd()
		bp.Put(a)
		runtime.GC()
	}
	bp.mu.Lock()
	bn := len(bp.all)
	bp.mu.Unlock()
	if bn > 2 {
		t.Fatalf("buffer allocator table grew to %d across GC cycles, want <= 2", bn)
	}
}

func TestBufPoolAggregate(t *testing.T) {
	p := NewBufPool(1)
	a := p.Get()
	a.OpStart()
	b := a.Alloc(48)
	a.Free(b)
	a.OpEnd()
	p.Put(a)
	if s := p.Stats(); s.Allocs != 1 || s.Frees != 1 {
		t.Fatalf("aggregate = %+v", s)
	}
}
