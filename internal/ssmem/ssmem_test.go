package ssmem

import (
	"testing"
)

type obj struct{ v int }

func TestAllocReusesAfterSafeEpoch(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 4)
	var freed []*obj
	for i := 0; i < 4; i++ {
		a.OpStart()
		p := a.Alloc()
		freed = append(freed, p)
		a.Free(p) // 4th Free hits the threshold and stamps the batch
		a.OpEnd()
	}
	// No other thread is registered, and this thread is quiescent:
	// the batch is reclaimable.
	a.OpStart()
	p := a.Alloc()
	a.OpEnd()
	found := false
	for _, f := range freed {
		if f == p {
			found = true
		}
	}
	if !found {
		t.Fatal("allocation did not reuse reclaimed memory")
	}
	if s := a.Stats(); s.Reused != 1 || s.Collected != 4 {
		t.Fatalf("stats = %+v, want Reused=1 Collected=4", s)
	}
}

func TestNoReuseWhileThreadActive(t *testing.T) {
	c := NewCollector()
	writer := NewAllocator[obj](c, 1)
	reader := NewAllocator[obj](c, 1)

	reader.OpStart() // reader enters an operation and stays there

	writer.OpStart()
	p := writer.Alloc()
	writer.Free(p) // threshold 1: stamped immediately, snapshot sees reader active
	writer.OpEnd()

	writer.OpStart()
	q := writer.Alloc()
	if q == p {
		t.Fatal("memory reused while another thread was inside an operation")
	}
	writer.Free(q)
	writer.OpEnd()

	reader.OpEnd() // reader leaves; the old batches become safe

	writer.OpStart()
	r := writer.Alloc()
	writer.OpEnd()
	if r != p && r != q {
		t.Fatal("memory still not reused after the reader quiesced")
	}
}

func TestThresholdBatching(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 10)
	for i := 0; i < 9; i++ {
		a.Free(&obj{})
	}
	if len(a.released) != 0 {
		t.Fatalf("batch released before threshold: %d", len(a.released))
	}
	a.Free(&obj{})
	if len(a.released) != 1 {
		t.Fatalf("batch not released at threshold: %d", len(a.released))
	}
	if a.Stats().Garbage != 10 {
		t.Fatalf("garbage = %d, want 10", a.Stats().Garbage)
	}
}

func TestFlushRelease(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 100)
	a.Free(&obj{})
	a.FlushRelease()
	if got := a.Collect(); got != 1 {
		t.Fatalf("collected %d, want 1", got)
	}
}

func TestDefaultThreshold(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 0)
	if a.threshold != DefaultThreshold {
		t.Fatalf("threshold = %d, want %d", a.threshold, DefaultThreshold)
	}
	if DefaultThreshold != 512 {
		t.Fatalf("paper default is 512 freed locations, got %d", DefaultThreshold)
	}
}

func TestCrossThreadVisibility(t *testing.T) {
	c := NewCollector()
	a := NewAllocator[obj](c, 1)
	b := NewAllocator[obj](c, 1)

	b.OpStart()
	a.OpStart()
	p := a.Alloc()
	a.Free(p)
	a.OpEnd()
	// b still active: not reclaimable.
	a.OpStart()
	if q := a.Alloc(); q == p {
		t.Fatal("reused while b active")
	}
	a.OpEnd()
	b.OpEnd()
	b.OpStart()
	b.OpEnd()
	// Now safe.
	a.OpStart()
	reclaimed := a.Collect()
	a.OpEnd()
	if reclaimed == 0 && a.Stats().Reused == 0 {
		t.Fatal("batch never became reclaimable after all threads quiesced")
	}
}
