// Package ssmem is a Go port of SSMEM, the paper's epoch-based memory
// allocator with garbage collection (§3).
//
// SSMEM's contract: memory that a thread frees "does not become available
// until a GC pass decides that it is safe to be reused", where safe means no
// other thread can still hold a reference. SSMEM detects this with per-thread
// activity timestamps: each thread bumps its timestamp as it enters and
// leaves data-structure operations, freed memory is stamped with a snapshot
// of all timestamps, and a stamped batch becomes reusable once every thread
// has either advanced past the snapshot or is quiescent. The collector is
// non-blocking — "it is based on per-thread counters that are incremented to
// indicate activity" — and the amount of garbage allowed before a GC pass is
// configurable, exactly as in the paper (512 locations by default, 128 on
// the TLB-constrained Tilera).
//
// In Go the runtime GC already guarantees memory safety, so SSMEM here
// serves the role it plays in the paper's re-engineered urcu hash table
// (ASCY4): recycling nodes without making removals wait for a grace period,
// and bounding garbage — which in Go also means keeping per-operation heap
// allocation (and the GC pressure it induces) off the hot path. The epoch
// protocol is implemented and tested in full: Alloc never returns an object
// while any thread that was active at Free time is still inside the same
// operation.
//
// Three layers build on the protocol:
//
//   - Allocator[T] — the paper's per-thread allocator for one node type.
//   - Pool[T] — a goroutine-friendly pool of Allocators sharing one
//     Collector (the sync.Pool-of-allocators pattern the urcu table
//     introduced), with aggregate Stats.
//   - BufPool / BufAllocator — the same epochs applied to size-classed
//     []byte blocks, used by the server to recycle Item.Data values.
package ssmem

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// DefaultThreshold is the number of freed objects that accumulate before a
// batch is released for collection — the paper's default of 512 freed
// locations.
const DefaultThreshold = 512

// Collector coordinates the epoch timestamps of all threads that share a
// set of allocators. One Collector per data structure instance.
//
// The registered-thread set is append-only and published through an atomic
// pointer, so the hot-path epoch checks (snapshot on batch release, safe on
// collection) are wait-free reads that never serialize on a mutex;
// registration itself is rare and takes a lock only to order appends.
type Collector struct {
	mu      sync.Mutex // serializes register appends only
	threads atomic.Pointer[[]*threadTS]
}

type threadTS struct {
	ts pad.Padded // atomic; odd = inside an operation, even = quiescent
}

func (t *threadTS) load() uint64 { return atomic.LoadUint64(&t.ts.Value) }
func (t *threadTS) bump()        { atomic.AddUint64(&t.ts.Value, 1) }

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

func (c *Collector) register() *threadTS {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &threadTS{}
	var old []*threadTS
	if p := c.threads.Load(); p != nil {
		old = *p
	}
	// Copy-on-write append: readers hold the old slice, which stays valid.
	next := make([]*threadTS, len(old)+1)
	copy(next, old)
	next[len(old)] = t
	c.threads.Store(&next)
	return t
}

func (c *Collector) loadThreads() []*threadTS {
	if p := c.threads.Load(); p != nil {
		return *p
	}
	return nil
}

// snapshot copies every thread's current timestamp.
func (c *Collector) snapshot() []uint64 {
	ths := c.loadThreads()
	snap := make([]uint64, len(ths))
	for i, t := range ths {
		snap[i] = t.load()
	}
	return snap
}

// safe reports whether a batch stamped with snap can be reused: every thread
// that was inside an operation at stamping time (odd timestamp) has since
// advanced. Threads registered after the stamp cannot hold references to the
// batch (it was already unreachable), so the check covers only the stamped
// prefix.
func (c *Collector) safe(snap []uint64) bool {
	ths := c.loadThreads()
	for i, s := range snap {
		if s%2 == 1 && ths[i].load() == s {
			return false
		}
	}
	return true
}

// Stats reports allocator activity, mirroring ssmem's debug counters.
type Stats struct {
	Allocs    uint64 // objects handed out
	Frees     uint64 // objects passed to Free
	Reused    uint64 // allocations satisfied from reclaimed memory
	Collected uint64 // objects moved from released batches to the free list
	GCPasses  uint64 // collection attempts that reclaimed at least one batch
	Garbage   int64  // objects currently freed but not yet reusable
}

// ReuseRate returns the fraction of allocations served from recycled
// memory — the headline number EXPERIMENTS.md reports per structure.
func (s Stats) ReuseRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.Reused) / float64(s.Allocs)
}

// Add accumulates o into s field by field — the one summation the
// shard-aggregating callers (sharded sets, sharded stores) share.
func (s *Stats) Add(o Stats) {
	s.Allocs += o.Allocs
	s.Frees += o.Frees
	s.Reused += o.Reused
	s.Collected += o.Collected
	s.GCPasses += o.GCPasses
	s.Garbage += o.Garbage
}

// counters is the internal, atomically-updated form of Stats. The owning
// goroutine is the only writer, but aggregate Stats() readers (the registry
// probe, the harness) may run concurrently, so loads and stores go through
// sync/atomic.
type counters struct {
	allocs, frees, reused, collected, gcPasses atomic.Uint64
	garbage                                    atomic.Int64
}

func (c *counters) stats() Stats {
	return Stats{
		Allocs:    c.allocs.Load(),
		Frees:     c.frees.Load(),
		Reused:    c.reused.Load(),
		Collected: c.collected.Load(),
		GCPasses:  c.gcPasses.Load(),
		Garbage:   c.garbage.Load(),
	}
}

type batch[T any] struct {
	items []*T
	snap  []uint64
}

// Allocator is a per-thread SSMEM allocator for objects of type T. It must
// only be used by the goroutine that created it; cross-thread frees go
// through that thread's own allocator, as in ssmem (freeing memory allocated
// elsewhere is allowed, freeing concurrently from one allocator is not).
type Allocator[T any] struct {
	c         *Collector
	ts        *threadTS
	threshold int
	leased    atomic.Bool // claimed by a Pool lease (see Pool.Get)

	free     []*T       // reclaimed, ready for reuse
	cur      []*T       // freed in the current epoch window
	released []batch[T] // stamped batches awaiting safety

	stats counters
}

// NewAllocator registers a new per-thread allocator with c. threshold is the
// garbage bound before a free batch is stamped and released for collection
// (the paper's configurable "amount of garbage SSMEM allows before
// performing GC"); values < 1 use DefaultThreshold.
func NewAllocator[T any](c *Collector, threshold int) *Allocator[T] {
	if threshold < 1 {
		threshold = DefaultThreshold
	}
	return &Allocator[T]{c: c, ts: c.register(), threshold: threshold}
}

// OpStart marks the owning thread as inside a data-structure operation.
// Structures integrated with SSMEM call this on operation entry; references
// obtained before OpStart or after OpEnd must not be retained.
func (a *Allocator[T]) OpStart() { a.ts.bump() }

// OpEnd marks the owning thread quiescent.
func (a *Allocator[T]) OpEnd() { a.ts.bump() }

// Alloc returns an object, reusing reclaimed memory when a GC pass has
// proven it safe, and falling back to the Go heap otherwise.
func (a *Allocator[T]) Alloc() *T {
	a.stats.allocs.Add(1)
	if len(a.free) == 0 && len(a.released) > 0 {
		a.Collect()
	}
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.stats.reused.Add(1)
		a.stats.garbage.Add(-1)
		return p
	}
	return new(T)
}

// Free hands an object back to the allocator. The object becomes reusable
// only after every thread active now has left its current operation.
func (a *Allocator[T]) Free(p *T) {
	a.stats.frees.Add(1)
	a.stats.garbage.Add(1)
	a.cur = append(a.cur, p)
	if len(a.cur) >= a.threshold {
		a.releaseBatch()
	}
}

func (a *Allocator[T]) releaseBatch() {
	if len(a.cur) == 0 {
		return
	}
	a.released = append(a.released, batch[T]{items: a.cur, snap: a.c.snapshot()})
	a.cur = nil
}

// Collect attempts a GC pass: every released batch whose timestamp snapshot
// has been superseded moves to the free list. It returns the number of
// objects reclaimed.
func (a *Allocator[T]) Collect() int {
	reclaimed := 0
	kept := a.released[:0]
	for _, b := range a.released {
		if a.c.safe(b.snap) {
			a.free = append(a.free, b.items...)
			reclaimed += len(b.items)
		} else {
			kept = append(kept, b)
		}
	}
	a.released = kept
	if reclaimed > 0 {
		a.stats.gcPasses.Add(1)
		a.stats.collected.Add(uint64(reclaimed))
	}
	return reclaimed
}

// FlushRelease stamps any pending frees immediately instead of waiting for
// the threshold. Tests and shutdown paths use it.
func (a *Allocator[T]) FlushRelease() { a.releaseBatch() }

// Stats returns a copy of the allocator's counters. Safe to call from any
// goroutine.
func (a *Allocator[T]) Stats() Stats { return a.stats.stats() }

// --- Pool: the sync.Pool-of-allocators pattern --------------------------

// Pool hands out per-goroutine Allocators that share one Collector: the
// pattern the re-engineered urcu table uses so any number of goroutines can
// recycle nodes without owning a long-lived allocator. Get/Put bracket one
// operation (or any window in which the caller keeps references).
//
// Ownership lives in the `all` table, not in the sync.Pool: the sync.Pool
// only caches lease references (cheap per-P fast path), and every
// allocator carries a leased flag claimed by CAS. When the runtime clears
// the sync.Pool on a GC cycle (or race mode drops a Put), the allocator is
// simply re-adopted from `all` on the next miss instead of being created
// anew — so the allocator count, the retained free lists, and the
// collector's thread registry are all bounded by peak concurrent leases,
// not by process lifetime.
type Pool[T any] struct {
	c         *Collector
	threshold int
	stripes   *stripes[Allocator[T]]
	p         sync.Pool

	mu  sync.Mutex
	all []*Allocator[T]
}

// NewPool builds a pool with its own Collector. threshold is per allocator
// (values < 1 use DefaultThreshold).
func NewPool[T any](threshold int) *Pool[T] {
	return &Pool[T]{c: NewCollector(), threshold: threshold, stripes: newStripes[Allocator[T]]()}
}

// Collector returns the shared collector (tests use it to build cooperating
// standalone allocators).
func (p *Pool[T]) Collector() *Collector { return p.c }

// Get leases an allocator for the calling goroutine. The fast path is the
// caller's stripe slot (see stripe.go): one uncontended swap hands back the
// allocator the same goroutine parked last, free lists still warm. Stripe
// misses fall through to the sync.Pool + lease-and-adopt slow path.
func (p *Pool[T]) Get() *Allocator[T] {
	hint := stripeHint()
	if a := p.stripes.take(hint); a != nil {
		if a.leased.CompareAndSwap(false, true) {
			p.stripes.hit(hint)
			return a
		}
		// Stale: an adopter claimed this allocator straight from the
		// table while it sat parked. Drop the reference and go slow.
	}
	p.stripes.miss()
	for {
		a, _ := p.p.Get().(*Allocator[T])
		if a == nil {
			return p.adoptOrCreate()
		}
		if a.leased.CompareAndSwap(false, true) {
			return a
		}
		// The parked reference went stale: an adopter claimed this
		// allocator straight from the table. Drop it and try again.
	}
}

// adoptOrCreate reclaims an unleased allocator from the table (one whose
// sync.Pool reference was dropped by a GC cycle), creating a fresh one
// only when every registered allocator is simultaneously leased.
func (p *Pool[T]) adoptOrCreate() *Allocator[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.all {
		if a.leased.CompareAndSwap(false, true) {
			return a
		}
	}
	a := NewAllocator[T](p.c, p.threshold)
	a.leased.Store(true)
	p.all = append(p.all, a)
	return a
}

// Put returns a leased allocator. The allocator must be quiescent (every
// OpStart matched by OpEnd). It parks in the caller's stripe slot when that
// is free, overflowing to the sync.Pool otherwise.
func (p *Pool[T]) Put(a *Allocator[T]) {
	a.leased.Store(false)
	if p.stripes.park(stripeHint(), a) {
		return
	}
	p.p.Put(a)
}

// StripeStats reports the striped fast path's hit/miss split: hits are Gets
// served from the caller's own stripe slot (the per-P affinity path), misses
// fell through to the shared sync.Pool + adopt path.
func (p *Pool[T]) StripeStats() (hits, misses uint64) { return p.stripes.stats() }

// Stats aggregates the counters of every allocator the pool created. The
// per-allocator counters are read atomically, so the aggregate is safe (if
// momentarily inconsistent) under concurrency; quiesce first for exact
// numbers.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	all := p.all
	p.mu.Unlock()
	var s Stats
	for _, a := range all {
		s.Add(a.Stats())
	}
	return s
}

// Pin leases an allocator from p and opens its epoch bracket; nil-safe (a
// nil pool — recycling off — yields a nil allocator, and every helper
// below treats nil as a no-op). This is the one-liner every recycling
// structure opens its operations with.
func Pin[T any](p *Pool[T]) *Allocator[T] {
	if p == nil {
		return nil
	}
	a := p.Get()
	a.OpStart()
	return a
}

// Unpin closes the bracket opened by Pin and returns the allocator.
func Unpin[T any](p *Pool[T], a *Allocator[T]) {
	if a == nil {
		return
	}
	a.OpEnd()
	p.Put(a)
}

// FreeTo frees n through a; nil-safe in both arguments (no allocator means
// the Go GC owns the node).
func FreeTo[T any](a *Allocator[T], n *T) {
	if a != nil && n != nil {
		a.Free(n)
	}
}

// PoolStats returns p's aggregate counters, zero for a nil pool — the
// nil-safe form behind the structures' RecycleStats methods.
func PoolStats[T any](p *Pool[T]) Stats {
	if p == nil {
		return Stats{}
	}
	return p.Stats()
}

// --- BufPool: epoch-recycled byte blocks --------------------------------

// Buffer size classes: powers of two from minBufClass to maxBufClass bytes.
// Requests above the top class fall through to the Go heap (they are rare —
// the server's default item cap is 1 MiB but typical values are tens to
// hundreds of bytes).
const (
	minBufShift = 5  // 32 B
	maxBufShift = 16 // 64 KiB
	numBufClass = maxBufShift - minBufShift + 1
)

func bufClassFor(n int) int {
	c := 0
	for sz := 1 << minBufShift; sz < n; sz <<= 1 {
		c++
	}
	return c
}

type bufBatch struct {
	items [][]byte
	snap  []uint64
}

type bufClass struct {
	free     [][]byte
	cur      [][]byte
	released []bufBatch
}

// BufAllocator is the per-goroutine face of a BufPool: size-classed []byte
// allocation with SSMEM epoch reclamation. Like Allocator, it is
// single-goroutine; OpStart/OpEnd bracket the window in which blocks
// obtained from the shared structure may still be referenced.
type BufAllocator struct {
	c         *Collector
	ts        *threadTS
	threshold int
	leased    atomic.Bool // claimed by a BufPool lease
	classes   [numBufClass]bufClass
	stats     counters
}

// NewBufAllocator registers a buffer allocator with c.
func NewBufAllocator(c *Collector, threshold int) *BufAllocator {
	if threshold < 1 {
		threshold = DefaultThreshold
	}
	return &BufAllocator{c: c, ts: c.register(), threshold: threshold}
}

// OpStart marks the owning goroutine as inside an operation.
func (a *BufAllocator) OpStart() { a.ts.bump() }

// OpEnd marks the owning goroutine quiescent.
func (a *BufAllocator) OpEnd() { a.ts.bump() }

// Alloc returns a block of length n, recycled when provably safe. Blocks
// larger than the top size class come from the Go heap and are simply
// dropped on Free.
func (a *BufAllocator) Alloc(n int) []byte {
	a.stats.allocs.Add(1)
	if n > 1<<maxBufShift {
		return make([]byte, n)
	}
	ci := bufClassFor(n)
	cl := &a.classes[ci]
	if len(cl.free) == 0 && len(cl.released) > 0 {
		a.collectClass(cl)
	}
	if ln := len(cl.free); ln > 0 {
		b := cl.free[ln-1]
		cl.free[ln-1] = nil
		cl.free = cl.free[:ln-1]
		a.stats.reused.Add(1)
		a.stats.garbage.Add(-1)
		return b[:n]
	}
	return make([]byte, n, 1<<(minBufShift+ci))
}

// Free hands a block back. Blocks whose capacity is not an exact size class
// (not allocated by a BufAllocator) are dropped to the Go GC.
func (a *BufAllocator) Free(b []byte) {
	c := cap(b)
	if c == 0 || c > 1<<maxBufShift || c&(c-1) != 0 || c < 1<<minBufShift {
		return
	}
	a.stats.frees.Add(1)
	a.stats.garbage.Add(1)
	ci := bufClassFor(c)
	cl := &a.classes[ci]
	cl.cur = append(cl.cur, b[:0])
	if len(cl.cur) >= a.threshold {
		a.releaseClass(cl)
	}
}

func (a *BufAllocator) releaseClass(cl *bufClass) {
	if len(cl.cur) == 0 {
		return
	}
	cl.released = append(cl.released, bufBatch{items: cl.cur, snap: a.c.snapshot()})
	cl.cur = nil
}

func (a *BufAllocator) collectClass(cl *bufClass) int {
	reclaimed := 0
	kept := cl.released[:0]
	for _, b := range cl.released {
		if a.c.safe(b.snap) {
			cl.free = append(cl.free, b.items...)
			reclaimed += len(b.items)
		} else {
			kept = append(kept, b)
		}
	}
	cl.released = kept
	if reclaimed > 0 {
		a.stats.gcPasses.Add(1)
		a.stats.collected.Add(uint64(reclaimed))
	}
	return reclaimed
}

// FlushRelease stamps all pending frees across every size class.
func (a *BufAllocator) FlushRelease() {
	for i := range a.classes {
		a.releaseClass(&a.classes[i])
	}
}

// Stats returns the allocator's counters. Safe from any goroutine.
func (a *BufAllocator) Stats() Stats { return a.stats.stats() }

// BufPool is Pool for byte blocks: per-goroutine BufAllocators over one
// Collector, with aggregate Stats. Ownership follows Pool's lease-and-adopt
// scheme, so dropped sync.Pool references never leak allocators or their
// retained block lists.
type BufPool struct {
	c         *Collector
	threshold int
	stripes   *stripes[BufAllocator]
	p         sync.Pool

	mu  sync.Mutex
	all []*BufAllocator
}

// NewBufPool builds a buffer pool with its own Collector.
func NewBufPool(threshold int) *BufPool {
	return &BufPool{c: NewCollector(), threshold: threshold, stripes: newStripes[BufAllocator]()}
}

// Get leases a buffer allocator for the calling goroutine, trying the
// caller's stripe slot first (see Pool.Get).
func (p *BufPool) Get() *BufAllocator {
	hint := stripeHint()
	if a := p.stripes.take(hint); a != nil {
		if a.leased.CompareAndSwap(false, true) {
			p.stripes.hit(hint)
			return a
		}
	}
	p.stripes.miss()
	for {
		a, _ := p.p.Get().(*BufAllocator)
		if a == nil {
			return p.adoptOrCreate()
		}
		if a.leased.CompareAndSwap(false, true) {
			return a
		}
	}
}

func (p *BufPool) adoptOrCreate() *BufAllocator {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range p.all {
		if a.leased.CompareAndSwap(false, true) {
			return a
		}
	}
	a := NewBufAllocator(p.c, p.threshold)
	a.leased.Store(true)
	p.all = append(p.all, a)
	return a
}

// Put returns a leased allocator (must be quiescent), parking it in the
// caller's stripe slot when free.
func (p *BufPool) Put(a *BufAllocator) {
	a.leased.Store(false)
	if p.stripes.park(stripeHint(), a) {
		return
	}
	p.p.Put(a)
}

// StripeStats reports the striped fast path's hit/miss split (see
// Pool.StripeStats).
func (p *BufPool) StripeStats() (hits, misses uint64) { return p.stripes.stats() }

// Stats aggregates across every allocator the pool created.
func (p *BufPool) Stats() Stats {
	p.mu.Lock()
	all := p.all
	p.mu.Unlock()
	var s Stats
	for _, a := range all {
		s.Add(a.Stats())
	}
	return s
}
