// Package ssmem is a Go port of SSMEM, the paper's epoch-based memory
// allocator with garbage collection (§3).
//
// SSMEM's contract: memory that a thread frees "does not become available
// until a GC pass decides that it is safe to be reused", where safe means no
// other thread can still hold a reference. SSMEM detects this with per-thread
// activity timestamps: each thread bumps its timestamp as it enters and
// leaves data-structure operations, freed memory is stamped with a snapshot
// of all timestamps, and a stamped batch becomes reusable once every thread
// has either advanced past the snapshot or is quiescent. The collector is
// non-blocking — "it is based on per-thread counters that are incremented to
// indicate activity" — and the amount of garbage allowed before a GC pass is
// configurable, exactly as in the paper (512 locations by default, 128 on
// the TLB-constrained Tilera).
//
// In Go the runtime GC already guarantees memory safety, so SSMEM here
// serves the role it plays in the paper's re-engineered urcu hash table
// (ASCY4): recycling nodes without making removals wait for a grace period,
// and bounding garbage. The epoch protocol is implemented and tested in
// full: Alloc never returns an object while any thread that was active at
// Free time is still inside the same operation.
package ssmem

import (
	"sync"
	"sync/atomic"

	"repro/internal/pad"
)

// DefaultThreshold is the number of freed objects that accumulate before a
// batch is released for collection — the paper's default of 512 freed
// locations.
const DefaultThreshold = 512

// Collector coordinates the epoch timestamps of all threads that share a
// set of allocators. One Collector per data structure instance.
type Collector struct {
	mu      sync.Mutex
	threads []*threadTS
}

type threadTS struct {
	ts pad.Padded // atomic; odd = inside an operation, even = quiescent
}

func (t *threadTS) load() uint64 { return atomic.LoadUint64(&t.ts.Value) }
func (t *threadTS) bump()        { atomic.AddUint64(&t.ts.Value, 1) }

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

func (c *Collector) register() *threadTS {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &threadTS{}
	c.threads = append(c.threads, t)
	return t
}

// snapshot copies every thread's current timestamp.
func (c *Collector) snapshot() []uint64 {
	c.mu.Lock()
	ths := c.threads
	c.mu.Unlock()
	snap := make([]uint64, len(ths))
	for i, t := range ths {
		snap[i] = t.load()
	}
	return snap
}

// safe reports whether a batch stamped with snap can be reused: every thread
// that was inside an operation at stamping time (odd timestamp) has since
// advanced.
func (c *Collector) safe(snap []uint64) bool {
	c.mu.Lock()
	ths := c.threads
	c.mu.Unlock()
	for i, s := range snap {
		if s%2 == 1 && ths[i].load() == s {
			return false
		}
	}
	return true
}

// Stats reports allocator activity, mirroring ssmem's debug counters.
type Stats struct {
	Allocs    uint64 // objects handed out
	Frees     uint64 // objects passed to Free
	Reused    uint64 // allocations satisfied from reclaimed memory
	Collected uint64 // objects moved from released batches to the free list
	GCPasses  uint64 // collection attempts that reclaimed at least one batch
	Garbage   int    // objects currently freed but not yet reusable
}

type batch[T any] struct {
	items []*T
	snap  []uint64
}

// Allocator is a per-thread SSMEM allocator for objects of type T. It must
// only be used by the goroutine that created it; cross-thread frees go
// through that thread's own allocator, as in ssmem (freeing memory allocated
// elsewhere is allowed, freeing concurrently from one allocator is not).
type Allocator[T any] struct {
	c         *Collector
	ts        *threadTS
	threshold int

	free     []*T       // reclaimed, ready for reuse
	cur      []*T       // freed in the current epoch window
	released []batch[T] // stamped batches awaiting safety

	stats Stats
}

// NewAllocator registers a new per-thread allocator with c. threshold is the
// garbage bound before a free batch is stamped and released for collection
// (the paper's configurable "amount of garbage SSMEM allows before
// performing GC"); values < 1 use DefaultThreshold.
func NewAllocator[T any](c *Collector, threshold int) *Allocator[T] {
	if threshold < 1 {
		threshold = DefaultThreshold
	}
	return &Allocator[T]{c: c, ts: c.register(), threshold: threshold}
}

// OpStart marks the owning thread as inside a data-structure operation.
// Structures integrated with SSMEM call this on operation entry; references
// obtained before OpStart or after OpEnd must not be retained.
func (a *Allocator[T]) OpStart() { a.ts.bump() }

// OpEnd marks the owning thread quiescent.
func (a *Allocator[T]) OpEnd() { a.ts.bump() }

// Alloc returns an object, reusing reclaimed memory when a GC pass has
// proven it safe, and falling back to the Go heap otherwise.
func (a *Allocator[T]) Alloc() *T {
	a.stats.Allocs++
	if len(a.free) == 0 && len(a.released) > 0 {
		a.Collect()
	}
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.stats.Reused++
		a.stats.Garbage--
		return p
	}
	return new(T)
}

// Free hands an object back to the allocator. The object becomes reusable
// only after every thread active now has left its current operation.
func (a *Allocator[T]) Free(p *T) {
	a.stats.Frees++
	a.stats.Garbage++
	a.cur = append(a.cur, p)
	if len(a.cur) >= a.threshold {
		a.releaseBatch()
	}
}

func (a *Allocator[T]) releaseBatch() {
	if len(a.cur) == 0 {
		return
	}
	a.released = append(a.released, batch[T]{items: a.cur, snap: a.c.snapshot()})
	a.cur = nil
}

// Collect attempts a GC pass: every released batch whose timestamp snapshot
// has been superseded moves to the free list. It returns the number of
// objects reclaimed.
func (a *Allocator[T]) Collect() int {
	reclaimed := 0
	kept := a.released[:0]
	for _, b := range a.released {
		if a.c.safe(b.snap) {
			a.free = append(a.free, b.items...)
			reclaimed += len(b.items)
		} else {
			kept = append(kept, b)
		}
	}
	a.released = kept
	if reclaimed > 0 {
		a.stats.GCPasses++
		a.stats.Collected += uint64(reclaimed)
	}
	return reclaimed
}

// FlushRelease stamps any pending frees immediately instead of waiting for
// the threshold. Tests and shutdown paths use it.
func (a *Allocator[T]) FlushRelease() { a.releaseBatch() }

// Stats returns a copy of the allocator's counters.
func (a *Allocator[T]) Stats() Stats { return a.stats }
