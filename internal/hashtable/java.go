package hashtable

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/pad"
	"repro/internal/perf"
)

// nStripes is the paper's lock count for the java table ("we use 512 locks").
const nStripes = 512

// jNode is an immutable chain node: key, val and next never change after
// publication, so lock-free readers always see consistent chains. Removal
// copies the chain prefix instead of mutating, exactly like the classic
// ConcurrentHashMap segments.
type jNode struct {
	key  core.Key
	val  core.Value
	next *jNode
}

// jTable is one generation of the bucket array. Resizing installs a new
// generation; readers pick up whichever generation they load.
type jTable struct {
	buckets []atomic.Pointer[jNode]
	mask    uint64
}

// Java is the java hash table of Table 1: a fixed set of 512 stripe locks
// protects updates, reads are lock-free over immutable chains, and the table
// resizes by doubling. The paper credits its fine-grained (per-region)
// resizing for spreading memory across NUMA nodes; here the analogous
// property is that resize copies run stripe by stripe.
type Java struct {
	table        atomic.Pointer[jTable]
	stripes      [nStripes]paddedLock
	counts       [nStripes]pad.Padded // per-stripe element counts (atomic)
	readOnlyFail bool
	resizing     atomic.Bool
}

type paddedLock struct {
	l locks.TAS
	_ [pad.CacheLineSize - 4]byte
}

// NewJava builds a table with cfg.Buckets initial buckets (power-of-two).
func NewJava(cfg core.Config) *Java {
	n := pow2(cfg.Buckets)
	if n < nStripes {
		n = nStripes
	}
	t := &jTable{buckets: make([]atomic.Pointer[jNode], n), mask: uint64(n - 1)}
	j := &Java{readOnlyFail: cfg.ReadOnlyFail}
	j.table.Store(t)
	return j
}

func (j *Java) stripe(h uint64) *locks.TAS {
	return &j.stripes[h&(nStripes-1)].l
}

func findJ(head *jNode, k core.Key, c *perf.Ctx) (*jNode, bool) {
	for n := head; n != nil; n = n.next {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			return n, true
		}
	}
	return nil, false
}

// SearchCtx implements core.Instrumented. Lock-free: one atomic bucket load
// plus an immutable chain walk.
func (j *Java) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	t := j.table.Load()
	h := mix(k)
	if n, ok := findJ(t.buckets[h&t.mask].Load(), k, c); ok {
		return n.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (j *Java) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	h := mix(k)
	if j.readOnlyFail {
		// ASCY3: the paper notes that enabling it on java "requires an
		// additional search... before starting with the code of the
		// update" — beneficial overall, small cost on success.
		c.ParseBegin()
		t := j.table.Load()
		_, dup := findJ(t.buckets[h&t.mask].Load(), k, c)
		c.ParseEnd()
		if dup {
			return false
		}
	}
	lk := j.stripe(h)
	lk.Lock()
	c.Inc(perf.EvLock)
	t := j.table.Load() // reload under the lock: resize may have run
	b := &t.buckets[h&t.mask]
	head := b.Load()
	if _, dup := findJ(head, k, c); dup {
		lk.Unlock()
		return false
	}
	b.Store(&jNode{key: k, val: v, next: head})
	c.Inc(perf.EvStore)
	cnt := atomic.AddUint64(&j.counts[h&(nStripes-1)].Value, 1)
	lk.Unlock()
	// Resize check outside the stripe lock; cheap heuristic on the
	// stripe's own share of the load factor.
	if cnt*nStripes > uint64(len(t.buckets))*3 {
		j.resize(t)
	}
	return true
}

// RemoveCtx implements core.Instrumented.
func (j *Java) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	h := mix(k)
	if j.readOnlyFail {
		c.ParseBegin()
		t := j.table.Load()
		_, in := findJ(t.buckets[h&t.mask].Load(), k, c)
		c.ParseEnd()
		if !in {
			return 0, false
		}
	}
	lk := j.stripe(h)
	lk.Lock()
	c.Inc(perf.EvLock)
	t := j.table.Load()
	b := &t.buckets[h&t.mask]
	head := b.Load()
	target, in := findJ(head, k, c)
	if !in {
		lk.Unlock()
		return 0, false
	}
	// Rebuild the prefix above the removed node; the suffix is shared.
	newHead := target.next
	for n := head; n != target; n = n.next {
		newHead = &jNode{key: n.key, val: n.val, next: newHead}
		c.Inc(perf.EvStore)
	}
	b.Store(newHead)
	c.Inc(perf.EvStore)
	atomic.AddUint64(&j.counts[h&(nStripes-1)].Value, ^uint64(0))
	lk.Unlock()
	return target.val, true
}

// resize doubles the bucket array. It takes every stripe lock in order (so
// all updates quiesce), rebuilds, installs, and releases. Readers never
// block: they keep using the old generation until the new one is published.
func (j *Java) resize(old *jTable) {
	if !j.resizing.CompareAndSwap(false, true) {
		return // someone else is resizing
	}
	defer j.resizing.Store(false)
	if j.table.Load() != old {
		return // already resized past this generation
	}
	for i := range j.stripes {
		j.stripes[i].l.Lock()
	}
	cur := j.table.Load()
	if cur == old {
		n := len(cur.buckets) * 2
		nt := &jTable{buckets: make([]atomic.Pointer[jNode], n), mask: uint64(n - 1)}
		for i := range cur.buckets {
			for node := cur.buckets[i].Load(); node != nil; node = node.next {
				h := mix(node.key) & nt.mask
				nt.buckets[h].Store(&jNode{key: node.key, val: node.val, next: nt.buckets[h].Load()})
			}
		}
		j.table.Store(nt)
	}
	for i := range j.stripes {
		j.stripes[i].l.Unlock()
	}
}

// Search looks up k.
func (j *Java) Search(k core.Key) (core.Value, bool) { return j.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (j *Java) Insert(k core.Key, v core.Value) bool { return j.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (j *Java) Remove(k core.Key) (core.Value, bool) { return j.RemoveCtx(nil, k) }

// Size counts elements. Quiescent use only.
func (j *Java) Size() int {
	t := j.table.Load()
	n := 0
	for i := range t.buckets {
		for node := t.buckets[i].Load(); node != nil; node = node.next {
			n++
		}
	}
	return n
}

// Buckets reports the current bucket-array size (tests observe resizing).
func (j *Java) Buckets() int { return len(j.table.Load().buckets) }

// ForEach implements core.Iterable: a read-only sweep of one table
// generation's immutable chains. Like Size, quiescent-snapshot semantics.
func (j *Java) ForEach(yield func(core.Key, core.Value) bool) {
	t := j.table.Load()
	for i := range t.buckets {
		for node := t.buckets[i].Load(); node != nil; node = node.next {
			if !yield(node.key, node.val) {
				return
			}
		}
	}
}
