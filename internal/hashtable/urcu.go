package hashtable

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/pad"
	"repro/internal/perf"
	"repro/internal/rcu"
	"repro/internal/ssmem"
)

// uNode is an RCU-protected chain node. next is atomic because readers
// traverse while writers unlink; key and val are written only before
// publication (or after a full grace period / SSMEM epoch, for recycled
// nodes).
type uNode struct {
	key  core.Key
	val  core.Value
	next atomic.Pointer[uNode]
}

// URCU is the urcu hash table of Table 1: searches run lock-free inside RCU
// read-side critical sections; updates take a per-bucket lock; and — the
// defining cost — "after each successful removal, it waits for all ongoing
// operations to complete before freeing the memory".
//
// With waitGP == false this is the paper's re-engineered variant (§3): the
// same reader-visible structure, but memory is handed to SSMEM's epoch-based
// collector instead of synchronously waiting for a grace period, moving the
// update path's store profile close to the sequential algorithm (ASCY4).
type URCU struct {
	buckets []uBucket
	mask    uint64
	dom     *rcu.Domain
	waitGP  bool

	// pool is the SSMEM side (urcu-ssmem only): per-goroutine epoch
	// allocators over one collector — the pattern ssmem.Pool centralizes
	// and the Recycle-enabled lists and skip lists reuse.
	pool *ssmem.Pool[uNode]
}

type uBucket struct {
	head atomic.Pointer[uNode]
	lock locks.TAS
	_    [pad.CacheLineSize - 16]byte
}

// NewURCU builds a table with cfg.Buckets buckets. waitGP selects the
// original (grace-period-waiting) behaviour; false selects urcu-ssmem.
func NewURCU(cfg core.Config, waitGP bool) *URCU {
	n := pow2(cfg.Buckets)
	u := &URCU{
		buckets: make([]uBucket, n),
		mask:    uint64(n - 1),
		dom:     rcu.NewDomain(),
		waitGP:  waitGP,
	}
	if !waitGP {
		u.pool = ssmem.NewPool[uNode](cfg.RecycleThreshold)
	}
	return u
}

// RecycleStats implements core.Recycler; zero for the grace-period variant.
func (u *URCU) RecycleStats() ssmem.Stats {
	if u.pool == nil {
		return ssmem.Stats{}
	}
	return u.pool.Stats()
}

// SearchCtx implements core.Instrumented. The chain walk happens inside a
// read-side critical section: an RCU one in the original, an SSMEM epoch in
// the re-engineered variant (which is how freed nodes stay safe to recycle
// without the remover ever waiting).
func (u *URCU) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	if u.waitGP {
		rd := u.dom.ReadLock()
		defer rd.Unlock()
		return u.find(c, k)
	}
	a := u.pool.Get()
	a.OpStart()
	v, ok := u.find(c, k)
	a.OpEnd()
	u.pool.Put(a)
	return v, ok
}

func (u *URCU) find(c *perf.Ctx, k core.Key) (core.Value, bool) {
	b := &u.buckets[mix(k)&u.mask]
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			return n.val, true
		}
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (u *URCU) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	b := &u.buckets[mix(k)&u.mask]
	b.lock.Lock()
	c.Inc(perf.EvLock)
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			b.lock.Unlock()
			return false
		}
	}
	var node *uNode
	if u.waitGP {
		node = &uNode{key: k, val: v}
	} else {
		// urcu-ssmem recycles nodes through the epoch allocator.
		a := u.pool.Get()
		a.OpStart()
		node = a.Alloc()
		a.OpEnd()
		u.pool.Put(a)
		node.key, node.val = k, v
	}
	node.next.Store(b.head.Load())
	b.head.Store(node)
	c.Inc(perf.EvStore)
	b.lock.Unlock()
	return true
}

// RemoveCtx implements core.Instrumented.
func (u *URCU) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	b := &u.buckets[mix(k)&u.mask]
	b.lock.Lock()
	c.Inc(perf.EvLock)
	var pred *uNode
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			succ := n.next.Load()
			if pred == nil {
				b.head.Store(succ)
			} else {
				pred.next.Store(succ)
			}
			c.Inc(perf.EvStore)
			v := n.val
			b.lock.Unlock()
			if u.waitGP {
				// The URCU contract: block until every reader
				// that might hold n has left its critical
				// section. This wait is what Figure 2b charges
				// the urcu table for.
				u.dom.Synchronize()
				c.Inc(perf.EvWait)
			} else {
				// ASCY4 variant: stamp the node with SSMEM
				// epochs; reuse happens once provably safe,
				// with no waiting on this path.
				a := u.pool.Get()
				a.OpStart()
				a.Free(n)
				a.OpEnd()
				u.pool.Put(a)
			}
			return v, true
		}
		pred = n
	}
	b.lock.Unlock()
	return 0, false
}

// Search looks up k.
func (u *URCU) Search(k core.Key) (core.Value, bool) { return u.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (u *URCU) Insert(k core.Key, v core.Value) bool { return u.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (u *URCU) Remove(k core.Key) (core.Value, bool) { return u.RemoveCtx(nil, k) }

// Size counts elements. Quiescent use only.
func (u *URCU) Size() int {
	n := 0
	for i := range u.buckets {
		for node := u.buckets[i].head.Load(); node != nil; node = node.next.Load() {
			n++
		}
	}
	return n
}

// ForEach implements core.Iterable. Like every read in this table, the sweep
// runs inside a read-side critical section — an RCU one in the original, an
// SSMEM epoch in the re-engineered variant — because removed nodes are
// recycled and are only safe to read from inside one. Each bucket is its own
// section so yield never executes with the epoch pinned.
func (u *URCU) ForEach(yield func(core.Key, core.Value) bool) {
	var batch []uNode
	for i := range u.buckets {
		batch = batch[:0]
		if u.waitGP {
			rd := u.dom.ReadLock()
			for node := u.buckets[i].head.Load(); node != nil; node = node.next.Load() {
				batch = append(batch, uNode{key: node.key, val: node.val})
			}
			rd.Unlock()
		} else {
			a := u.pool.Get()
			a.OpStart()
			for node := u.buckets[i].head.Load(); node != nil; node = node.next.Load() {
				batch = append(batch, uNode{key: node.key, val: node.val})
			}
			a.OpEnd()
			u.pool.Put(a)
		}
		for j := range batch {
			if !yield(batch[j].key, batch[j].val) {
				return
			}
		}
	}
}
