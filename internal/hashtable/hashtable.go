// Package hashtable implements the hash-table algorithms of Table 1: chained
// tables built from one linked list per bucket (coupling, pugh, lazy, copy,
// harris), a ConcurrentHashMap-style striped-lock table (java), a TBB-style
// reader-writer-lock table (tbb), and the URCU table together with the
// paper's ASCY4 re-engineering of it (urcu-ssmem, §3).
//
// The "-no" variants disable ASCY3 (read-only failed updates); Figure 6
// measures exactly that difference.
package hashtable

import (
	"repro/internal/core"
	"repro/internal/linkedlist"
	"repro/internal/perf"
)

// mix spreads the key bits so that power-of-two masking indexes well even on
// dense integer key ranges (the workloads use [1..2N]).
func mix(k core.Key) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// pow2 rounds n up to a power of two (minimum 1).
func pow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Chained is a fixed-size bucket array with one list per bucket — the shape
// of the paper's coupling/pugh/lazy/copy/harris hash tables. The per-bucket
// structure provides all synchronization; the bucket array is immutable.
type Chained struct {
	buckets []core.Instrumented
	mask    uint64
}

// NewChained builds a table of cfg.Buckets (rounded up to a power of two)
// buckets, with each bucket created by newBucket.
func NewChained(cfg core.Config, newBucket func() core.Instrumented) *Chained {
	n := pow2(cfg.Buckets)
	t := &Chained{buckets: make([]core.Instrumented, n), mask: uint64(n - 1)}
	for i := range t.buckets {
		t.buckets[i] = newBucket()
	}
	return t
}

func (t *Chained) bucket(k core.Key) core.Instrumented {
	return t.buckets[mix(k)&t.mask]
}

// SearchCtx implements core.Instrumented.
func (t *Chained) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	return t.bucket(k).SearchCtx(c, k)
}

// InsertCtx implements core.Instrumented.
func (t *Chained) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	return t.bucket(k).InsertCtx(c, k, v)
}

// RemoveCtx implements core.Instrumented.
func (t *Chained) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	return t.bucket(k).RemoveCtx(c, k)
}

// Search looks up k.
func (t *Chained) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *Chained) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *Chained) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size sums the bucket sizes. Quiescent use only.
func (t *Chained) Size() int {
	n := 0
	for _, b := range t.buckets {
		n += b.Size()
	}
	return n
}

// ForEach implements core.Iterable by delegating to the per-bucket lists
// (every list in internal/linkedlist is Iterable). Enumeration order is by
// bucket, not by key.
func (t *Chained) ForEach(yield func(core.Key, core.Value) bool) {
	stop := false
	for _, b := range t.buckets {
		b.(core.Iterable).ForEach(func(k core.Key, v core.Value) bool {
			if !yield(k, v) {
				stop = true
			}
			return !stop
		})
		if stop {
			return
		}
	}
}

func register(name string, class core.Class, desc string, safe, ascy bool, f func(cfg core.Config) core.Set) {
	core.Register(core.Algorithm{
		Name:      "ht-" + name,
		Structure: core.HashTable,
		Class:     class,
		Desc:      desc,
		Safe:      safe,
		ASCY:      ascy,
		New:       f,
	})
}

func chainedOver(list func(core.Config) core.Instrumented) func(core.Config) core.Set {
	return func(cfg core.Config) core.Set {
		// Per-bucket chains are short; the bucket structures inherit
		// the table's ReadOnlyFail setting.
		return NewChained(cfg, func() core.Instrumented { return list(cfg) })
	}
}

func init() {
	register("async", core.Seq,
		"sequential chained hash table run unsynchronized; the async upper bound",
		false, false,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewSeq(cfg) }))
	register("coupling", core.FullyLockBased,
		"one lock-coupling list per bucket",
		true, false,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewCoupling(cfg) }))
	register("pugh", core.LockBased,
		"one pugh list per bucket",
		true, true,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewPugh(cfg) }))
	register("pugh-no", core.LockBased,
		"pugh table with ASCY3 disabled",
		true, false,
		func(cfg core.Config) core.Set {
			cfg.ReadOnlyFail = false
			return chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewPugh(cfg) })(cfg)
		})
	register("lazy", core.LockBased,
		"one lazy list per bucket",
		true, true,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewLazy(cfg) }))
	register("lazy-no", core.LockBased,
		"lazy table with ASCY3 disabled",
		true, false,
		func(cfg core.Config) core.Set {
			cfg.ReadOnlyFail = false
			return chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewLazy(cfg) })(cfg)
		})
	register("copy", core.LockBased,
		"one copy-on-write array per bucket",
		true, false,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewCopy(cfg) }))
	register("copy-no", core.LockBased,
		"copy table with ASCY3 disabled",
		true, false,
		func(cfg core.Config) core.Set {
			cfg.ReadOnlyFail = false
			return chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewCopy(cfg) })(cfg)
		})
	register("harris", core.LockFree,
		"one harris-opt list per bucket (Table 1: harris hash table)",
		true, true,
		chainedOver(func(cfg core.Config) core.Instrumented { return linkedlist.NewHarris(cfg, true) }))
	register("java", core.LockBased,
		"ConcurrentHashMap-style: 512 lock stripes, lock-free reads on immutable chains, resizing",
		true, false, func(cfg core.Config) core.Set { return NewJava(cfg) })
	register("java-no", core.LockBased,
		"java table with ASCY3 disabled: failed updates still lock their stripe",
		true, false, func(cfg core.Config) core.Set { cfg.ReadOnlyFail = false; return NewJava(cfg) })
	register("tbb", core.FullyLockBased,
		"TBB-style: striped reader-writer locks; even searches acquire the read side",
		true, false, func(cfg core.Config) core.Set { return NewTBB(cfg) })
	register("urcu", core.LockBased,
		"URCU 0.8-style: lock-free reads under RCU; each successful removal waits for a grace period",
		true, false, func(cfg core.Config) core.Set { return NewURCU(cfg, true) })
	register("urcu-ssmem", core.LockBased,
		"the paper's ASCY4 re-engineering of urcu: SSMEM epochs replace the blocking grace period",
		true, true, func(cfg core.Config) core.Set { return NewURCU(cfg, false) })
}
