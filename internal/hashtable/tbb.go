package hashtable

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pad"
	"repro/internal/perf"
)

// TBB models Intel TBB's concurrent_hash_map as described in Table 1: a
// fully lock-based table whose operations — including searches — take
// striped reader-writer locks, with resizing support. Acquiring even the
// read side of an RW lock writes the lock word, so searches are not ASCY1;
// the paper's Figure 2b shows the resulting scalability gap on read-heavy
// workloads, and this port preserves that behaviour by construction.
type TBB struct {
	mu       [nStripes]paddedRW
	table    atomic.Pointer[tbbTable]
	counts   [nStripes]pad.Padded
	resizing atomic.Bool
}

type paddedRW struct {
	l sync.RWMutex
	_ [pad.CacheLineSize - 24]byte
}

type tbbNode struct {
	key  core.Key
	val  core.Value
	next *tbbNode
}

type tbbTable struct {
	buckets []*tbbNode
	mask    uint64
}

// NewTBB builds a table with cfg.Buckets initial buckets.
func NewTBB(cfg core.Config) *TBB {
	n := pow2(cfg.Buckets)
	if n < nStripes {
		n = nStripes
	}
	t := &TBB{}
	t.table.Store(&tbbTable{buckets: make([]*tbbNode, n), mask: uint64(n - 1)})
	return t
}

// SearchCtx implements core.Instrumented. Takes the stripe's read lock — a
// shared-memory RMW — before touching the chain.
func (t *TBB) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	h := mix(k)
	mu := &t.mu[h&(nStripes-1)].l
	mu.RLock()
	c.Inc(perf.EvLock)
	defer mu.RUnlock()
	tab := t.table.Load()
	for n := tab.buckets[h&tab.mask]; n != nil; n = n.next {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			return n.val, true
		}
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (t *TBB) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	h := mix(k)
	mu := &t.mu[h&(nStripes-1)].l
	mu.Lock()
	c.Inc(perf.EvLock)
	tab := t.table.Load()
	i := h & tab.mask
	for n := tab.buckets[i]; n != nil; n = n.next {
		c.Inc(perf.EvTraverse)
		if n.key == k {
			mu.Unlock()
			return false
		}
	}
	tab.buckets[i] = &tbbNode{key: k, val: v, next: tab.buckets[i]}
	c.Inc(perf.EvStore)
	cnt := atomic.AddUint64(&t.counts[h&(nStripes-1)].Value, 1)
	mu.Unlock()
	if cnt*nStripes > uint64(len(tab.buckets))*3 {
		t.resize(tab)
	}
	return true
}

// RemoveCtx implements core.Instrumented.
func (t *TBB) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	h := mix(k)
	mu := &t.mu[h&(nStripes-1)].l
	mu.Lock()
	c.Inc(perf.EvLock)
	defer mu.Unlock()
	tab := t.table.Load()
	i := h & tab.mask
	for pp := &tab.buckets[i]; *pp != nil; pp = &(*pp).next {
		c.Inc(perf.EvTraverse)
		if n := *pp; n.key == k {
			*pp = n.next
			c.Inc(perf.EvStore)
			atomic.AddUint64(&t.counts[h&(nStripes-1)].Value, ^uint64(0))
			return n.val, true
		}
	}
	return 0, false
}

// resize doubles the bucket array under all write locks.
func (t *TBB) resize(old *tbbTable) {
	if !t.resizing.CompareAndSwap(false, true) {
		return
	}
	defer t.resizing.Store(false)
	if t.table.Load() != old {
		return
	}
	for i := range t.mu {
		t.mu[i].l.Lock()
	}
	cur := t.table.Load()
	if cur == old {
		n := len(cur.buckets) * 2
		nt := &tbbTable{buckets: make([]*tbbNode, n), mask: uint64(n - 1)}
		for i := range cur.buckets {
			for node := cur.buckets[i]; node != nil; node = node.next {
				h := mix(node.key) & nt.mask
				nt.buckets[h] = &tbbNode{key: node.key, val: node.val, next: nt.buckets[h]}
			}
		}
		t.table.Store(nt)
	}
	for i := range t.mu {
		t.mu[i].l.Unlock()
	}
}

// Search looks up k.
func (t *TBB) Search(k core.Key) (core.Value, bool) { return t.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (t *TBB) Insert(k core.Key, v core.Value) bool { return t.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (t *TBB) Remove(k core.Key) (core.Value, bool) { return t.RemoveCtx(nil, k) }

// Size counts elements. Quiescent use only.
func (t *TBB) Size() int {
	tab := t.table.Load()
	n := 0
	for i := range tab.buckets {
		for node := tab.buckets[i]; node != nil; node = node.next {
			n++
		}
	}
	return n
}

// ForEach implements core.Iterable. Bucket index and stripe index are both
// power-of-two masks of the same hash, so bucket i is guarded by stripe
// i&(nStripes-1): each bucket's chain is copied out under its stripe's read
// lock and yielded unlocked (yield must not write the table's stripe being
// scanned anyway — so, symmetrically with the other fully-lock-based scans,
// yield must not call back into the table).
func (t *TBB) ForEach(yield func(core.Key, core.Value) bool) {
	tab := t.table.Load()
	var batch []tbbNode
	for i := range tab.buckets {
		mu := &t.mu[uint64(i)&(nStripes-1)].l
		mu.RLock()
		batch = batch[:0]
		for node := tab.buckets[i]; node != nil; node = node.next {
			batch = append(batch, *node)
		}
		mu.RUnlock()
		for j := range batch {
			if !yield(batch[j].key, batch[j].val) {
				return
			}
		}
	}
}
