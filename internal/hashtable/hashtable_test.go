package hashtable

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/settest"
)

func TestConformance(t *testing.T) {
	for _, name := range []string{
		"ht-async", "ht-coupling", "ht-pugh", "ht-pugh-no", "ht-lazy",
		"ht-lazy-no", "ht-copy", "ht-copy-no", "ht-harris", "ht-java",
		"ht-java-no", "ht-tbb", "ht-urcu", "ht-urcu-ssmem",
	} {
		// Small tables exercise chains.
		settest.RunRegistered(t, name, core.Capacity(64))
	}
}

func TestJavaResizeGrows(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 64 // floor is nStripes
	j := NewJava(cfg)
	before := j.Buckets()
	const n = 10000
	for k := core.Key(1); k <= n; k++ {
		if !j.Insert(k, core.Value(k)) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	if j.Buckets() <= before {
		t.Fatalf("java table did not resize: %d -> %d", before, j.Buckets())
	}
	for k := core.Key(1); k <= n; k++ {
		v, ok := j.Search(k)
		if !ok || v != core.Value(k) {
			t.Fatalf("search(%d) = (%d,%v) after resize", k, v, ok)
		}
	}
}

func TestJavaResizeUnderConcurrency(t *testing.T) {
	cfg := core.DefaultConfig()
	j := NewJava(cfg)
	const workers = 8
	const perWorker = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := core.Key(w*perWorker + 1)
			for i := core.Key(0); i < perWorker; i++ {
				j.Insert(base+i, core.Value(base+i))
			}
		}(w)
	}
	wg.Wait()
	if got := j.Size(); got != workers*perWorker {
		t.Fatalf("size = %d, want %d", got, workers*perWorker)
	}
	for k := core.Key(1); k <= workers*perWorker; k += 97 {
		if v, ok := j.Search(k); !ok || v != core.Value(k) {
			t.Fatalf("search(%d) failed after concurrent resize", k)
		}
	}
}

// TestURCURemovalWaitsForReaders: a removal must block until a concurrent
// reader inside its critical section finishes. We simulate a slow reader by
// holding a read-side handle open directly on the table's domain.
func TestURCURemovalWaitsForReaders(t *testing.T) {
	u := NewURCU(core.DefaultConfig(), true)
	u.Insert(1, 10)
	rd := u.dom.ReadLock()
	done := make(chan struct{})
	go func() {
		u.Remove(1) // must block on Synchronize
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("removal completed while a reader was still inside its critical section")
	default:
	}
	// Give the remover a chance to actually reach Synchronize, then
	// release the reader; the removal must now complete.
	for i := 0; i < 1000; i++ {
		select {
		case <-done:
			t.Fatal("removal completed early")
		default:
		}
	}
	rd.Unlock()
	<-done
	if _, ok := u.Search(1); ok {
		t.Fatal("key still present after removal")
	}
}

// TestURCUSSMEMRemovalDoesNotWait: the ASCY4 variant must complete removals
// while a reader handle from the RCU domain is outstanding (it uses SSMEM
// epochs, not grace periods).
func TestURCUSSMEMRemovalDoesNotWait(t *testing.T) {
	u := NewURCU(core.DefaultConfig(), false)
	u.Insert(1, 10)
	rd := u.dom.ReadLock() // would block the waitGP variant
	defer rd.Unlock()
	done := make(chan struct{})
	go func() {
		u.Remove(1)
		close(done)
	}()
	<-done
	if _, ok := u.Search(1); ok {
		t.Fatal("key still present after removal")
	}
}

// TestASCY3JavaLatencyEvents mirrors Figure 6's setup: with ASCY3 the failed
// update is read-only; the "-no" variant locks its stripe.
func TestASCY3JavaLatencyEvents(t *testing.T) {
	mk := func(ro bool) *Java {
		cfg := core.DefaultConfig()
		cfg.ReadOnlyFail = ro
		return NewJava(cfg)
	}
	with, without := mk(true), mk(false)
	for k := core.Key(2); k <= 200; k += 2 {
		with.Insert(k, 0)
		without.Insert(k, 0)
	}
	ctxWith, ctxWithout := &perf.Ctx{}, &perf.Ctx{}
	for k := core.Key(2); k <= 200; k += 2 {
		with.InsertCtx(ctxWith, k, 1)
		without.InsertCtx(ctxWithout, k, 1)
	}
	if n := ctxWith.Count(perf.EvLock); n != 0 {
		t.Errorf("ASCY3 java: %d locks on failed inserts, want 0", n)
	}
	if n := ctxWithout.Count(perf.EvLock); n == 0 {
		t.Error("java-no: failed inserts took no locks; variant is not exercising ASCY3-off")
	}
}

// TestTBBSearchLocks documents the tbb behaviour the paper highlights: even
// searches acquire (reader) locks.
func TestTBBSearchLocks(t *testing.T) {
	b := NewTBB(core.DefaultConfig())
	b.Insert(1, 1)
	ctx := &perf.Ctx{}
	b.SearchCtx(ctx, 1)
	b.SearchCtx(ctx, 2)
	if n := ctx.Count(perf.EvLock); n != 2 {
		t.Fatalf("tbb searches took %d locks, want 2", n)
	}
}

func TestChainedDistribution(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Buckets = 128
	ht := NewChained(cfg, func() core.Instrumented { return nil })
	if len(ht.buckets) != 128 {
		t.Fatalf("buckets = %d, want 128", len(ht.buckets))
	}
	// mix must spread sequential keys across buckets.
	seen := map[uint64]bool{}
	for k := core.Key(1); k <= 1000; k++ {
		seen[mix(k)&ht.mask] = true
	}
	if len(seen) < 100 {
		t.Fatalf("sequential keys hit only %d/128 buckets", len(seen))
	}
}
