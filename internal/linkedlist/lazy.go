package linkedlist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
	"repro/internal/ssmem"
)

// lazyNode: next and marked are read optimistically, so both are atomic;
// they are only written with the node's lock held.
type lazyNode struct {
	key    core.Key
	val    core.Value
	next   atomic.Pointer[lazyNode]
	marked atomic.Bool
	lock   locks.TAS
}

// Lazy is the lazy list of Heller et al. (Table 1): nodes are deleted in two
// steps — logical marking, then physical unlinking — both under per-node
// locks, while searches traverse without any synchronization and simply
// check the mark. The search already satisfies ASCY1; with ReadOnlyFail
// (ASCY3, the library default) unsuccessful updates are read-only too.
// With cfg.Recycle, the remover — the unique physical unlinker, since it
// holds both node locks — frees the node through an SSMEM epoch allocator
// for reuse; searches are epoch-bracketed so a traversal can never observe
// a node being reinitialized.
type Lazy struct {
	core.OrderedVia
	head         *lazyNode
	readOnlyFail bool
	rec          *ssmem.Pool[lazyNode]
}

// NewLazy returns an empty lazy list.
func NewLazy(cfg core.Config) *Lazy {
	tail := &lazyNode{key: tailKey}
	head := &lazyNode{key: headKey}
	head.next.Store(tail)
	s := &Lazy{head: head, readOnlyFail: cfg.ReadOnlyFail, rec: newNodePool[lazyNode](cfg)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// RecycleStats implements core.Recycler.
func (l *Lazy) RecycleStats() ssmem.Stats { return ssmem.PoolStats(l.rec) }

// allocLazy returns a node with key/val set and the mark clear; recycled
// nodes are private until published, so plain resets are safe.
func allocLazy(a *ssmem.Allocator[lazyNode], k core.Key, v core.Value) *lazyNode {
	if a == nil {
		return &lazyNode{key: k, val: v}
	}
	n := a.Alloc()
	n.key, n.val = k, v
	n.marked.Store(false)
	return n
}

// parse optimistically walks to the first node with key >= k.
func (l *Lazy) parse(c *perf.Ctx, k core.Key) (pred, curr *lazyNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < k {
		c.Inc(perf.EvTraverse)
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate re-checks, with locks held, that pred and curr are unmarked and
// still adjacent — the lazy list's classic post-lock validation.
func validateLazy(pred, curr *lazyNode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// SearchCtx implements core.Instrumented. Wait-free: no stores, no retries.
func (l *Lazy) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	return l.searchPinned(c, k)
}

// searchPinned is the search body; the caller holds the epoch bracket.
func (l *Lazy) searchPinned(c *perf.Ctx, k core.Key) (core.Value, bool) {
	curr := l.head
	for curr.key < k {
		c.Inc(perf.EvTraverse)
		curr = curr.next.Load()
	}
	if curr.key == k && !curr.marked.Load() {
		return curr.val, true
	}
	return 0, false
}

// SearchBatch implements core.Batcher: the whole batch of wait-free
// traversals runs under a single SSMEM epoch bracket, so a pipelined burst
// of n reads pays one allocator lease and one OpStart/OpEnd instead of n —
// the per-operation fixed cost the paper blames for poor scaling, amortized
// away. Reclamation of nodes freed meanwhile is delayed by at most the
// batch's lifetime.
func (l *Lazy) SearchBatch(keys []core.Key, vals []core.Value, found []bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for i, k := range keys {
		vals[i], found[i] = l.searchPinned(nil, k)
	}
}

// InsertCtx implements core.Instrumented.
func (l *Lazy) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for {
		c.ParseBegin()
		pred, curr := l.parse(c, k)
		c.ParseEnd()
		if l.readOnlyFail && curr.key == k && !curr.marked.Load() {
			return false // ASCY3: fail without a single store
		}
		pred.lock.Lock()
		c.Inc(perf.EvLock)
		if !validateLazy(pred, curr) {
			pred.lock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		if curr.key == k {
			// Only reachable with ASCY3 off (or a racing insert of
			// the same key that won validation first).
			pred.lock.Unlock()
			return false
		}
		n := allocLazy(a, k, v)
		n.next.Store(curr)
		pred.next.Store(n)
		c.Inc(perf.EvStore)
		pred.lock.Unlock()
		return true
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Lazy) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for {
		c.ParseBegin()
		pred, curr := l.parse(c, k)
		c.ParseEnd()
		if l.readOnlyFail && (curr.key != k || curr.marked.Load()) {
			return 0, false // ASCY3: fail without a single store
		}
		pred.lock.Lock()
		c.Inc(perf.EvLock)
		curr.lock.Lock()
		c.Inc(perf.EvLock)
		if !validateLazy(pred, curr) {
			curr.lock.Unlock()
			pred.lock.Unlock()
			c.Inc(perf.EvParseRestart)
			continue
		}
		if curr.key != k {
			curr.lock.Unlock()
			pred.lock.Unlock()
			return 0, false
		}
		curr.marked.Store(true) // logical delete
		c.Inc(perf.EvStore)
		pred.next.Store(curr.next.Load()) // physical delete
		c.Inc(perf.EvStore)
		val := curr.val
		curr.lock.Unlock()
		pred.lock.Unlock()
		// Holding both locks made us the unique unlinker; the node is
		// unreachable for new traversals and epoch-protected for ongoing
		// ones.
		ssmem.FreeTo(a, curr)
		return val, true
	}
}

// Search looks up k.
func (l *Lazy) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Lazy) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Lazy) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts unmarked elements. Quiescent use only.
func (l *Lazy) Size() int {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	n := 0
	for curr := l.head.next.Load(); curr.key != tailKey; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}
