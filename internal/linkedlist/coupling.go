package linkedlist

import (
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/perf"
)

// cplNode is protected by its own lock; next is only read or written while
// the node's lock is held (hand-over-hand), so it needs no atomics.
type cplNode struct {
	lock locks.TAS
	key  core.Key
	val  core.Value
	next *cplNode
}

// Coupling is the fully lock-based list: every operation, including search,
// performs hand-over-hand (lock-coupling) locking while parsing. It is the
// canonical non-scalable baseline of Figure 2a — every traversal writes
// every node's lock word, maximizing coherence traffic.
type Coupling struct {
	core.OrderedVia
	head *cplNode
}

// NewCoupling returns an empty lock-coupling list.
func NewCoupling(cfg core.Config) *Coupling {
	tail := &cplNode{key: tailKey}
	head := &cplNode{key: headKey, next: tail}
	s := &Coupling{head: head}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// traverse walks to the update point with lock coupling and returns pred and
// curr with both locks held.
func (l *Coupling) traverse(c *perf.Ctx, k core.Key) (pred, curr *cplNode) {
	pred = l.head
	pred.lock.Lock()
	c.Inc(perf.EvLock)
	curr = pred.next
	curr.lock.Lock()
	c.Inc(perf.EvLock)
	for curr.key < k {
		c.Inc(perf.EvTraverse)
		pred.lock.Unlock()
		pred = curr
		curr = curr.next
		curr.lock.Lock()
		c.Inc(perf.EvLock)
	}
	return pred, curr
}

// SearchCtx implements core.Instrumented.
func (l *Coupling) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	pred, curr := l.traverse(c, k)
	defer pred.lock.Unlock()
	defer curr.lock.Unlock()
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Coupling) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	c.ParseBegin()
	pred, curr := l.traverse(c, k)
	c.ParseEnd()
	defer pred.lock.Unlock()
	defer curr.lock.Unlock()
	if curr.key == k {
		return false
	}
	pred.next = &cplNode{key: k, val: v, next: curr}
	c.Inc(perf.EvStore)
	return true
}

// RemoveCtx implements core.Instrumented.
func (l *Coupling) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	c.ParseBegin()
	pred, curr := l.traverse(c, k)
	c.ParseEnd()
	defer pred.lock.Unlock()
	defer curr.lock.Unlock()
	if curr.key != k {
		return 0, false
	}
	pred.next = curr.next
	c.Inc(perf.EvStore)
	return curr.val, true
}

// Search looks up k.
func (l *Coupling) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Coupling) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Coupling) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts elements. Quiescent use only.
func (l *Coupling) Size() int {
	n := 0
	for curr := l.head.next; curr.key != tailKey; curr = curr.next {
		n++
	}
	return n
}
