// Ordered iteration (v2 surface) for the linked lists. Every list is a
// sorted set, so ascend is a plain bounded traversal from the head; the
// per-type differences are the node encoding and the liveness check, exactly
// as in the Size methods. Each type embeds core.OrderedVia, which derives
// ForEach/Range/Min/Max from the ascend iterator (constructors wire it up).
// Traversals are read-only (ASCY1-style: no stores, no locks, no retries)
// except Coupling's, and like Size they observe each element at some point
// during the call rather than one atomic snapshot.
package linkedlist

import (
	"repro/internal/core"
	"repro/internal/ssmem"
)

// ascend implements core.AscendFunc over the async list, bounded like every
// Seq traversal.
func (l *Seq) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	steps := 0
	for curr := l.head.next; curr != nil && curr.key != tailKey; curr = curr.next {
		if steps++; l.limit > 0 && steps > l.limit {
			return
		}
		if curr.key >= lo && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc hand-over-hand, like every other
// coupling traversal; the fully lock-based class pays for its scans too.
// yield must not call back into the list.
func (l *Coupling) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	pred := l.head
	pred.lock.Lock()
	for {
		curr := pred.next
		curr.lock.Lock()
		pred.lock.Unlock()
		if curr.key == tailKey {
			curr.lock.Unlock()
			return
		}
		if curr.key >= lo && !yield(curr.key, curr.val) {
			curr.lock.Unlock()
			return
		}
		pred = curr
	}
}

// ascend implements core.AscendFunc, skipping logically deleted nodes.
func (l *Pugh) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	for curr := l.head.next.Load(); curr.key != tailKey; curr = curr.next.Load() {
		if curr.key >= lo && !curr.deleted.Load() && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc, skipping marked nodes. With recycling
// the traversal pins an epoch for its whole duration (including yield), so
// no node it can reach is reinitialized underneath it.
func (l *Lazy) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for curr := l.head.next.Load(); curr.key != tailKey; curr = curr.next.Load() {
		if curr.key >= lo && !curr.marked.Load() && !yield(curr.key, curr.val) {
			return
		}
	}
}

// ascend implements core.AscendFunc over one immutable snapshot:
// binary-search to lo, then walk the array. Scans over a snapshot are fully
// linearizable.
func (l *Copy) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	s := l.snap.Load()
	i, _ := s.find(lo)
	for ; i < len(s.keys); i++ {
		if !yield(s.keys[i], s.vals[i]) {
			return
		}
	}
}

// Min implements core.Ordered in O(1) from the snapshot (shadowing the
// embedded scan).
func (l *Copy) Min() (core.Key, core.Value, bool) {
	s := l.snap.Load()
	if len(s.keys) == 0 {
		return 0, 0, false
	}
	return s.keys[0], s.vals[0], true
}

// Max implements core.Ordered in O(1) from the snapshot.
func (l *Copy) Max() (core.Key, core.Value, bool) {
	s := l.snap.Load()
	if len(s.keys) == 0 {
		return 0, 0, false
	}
	return s.keys[len(s.keys)-1], s.vals[len(s.keys)-1], true
}

// lfAscend is the shared Harris/Michael traversal over the lfNode/lfRef
// encoding, skipping marked nodes.
func lfAscend(head, tail *lfNode, lo core.Key, yield func(core.Key, core.Value) bool) {
	for curr := head.next.Load().n; curr != tail; {
		ref := curr.next.Load()
		if curr.key >= lo && !ref.marked && !yield(curr.key, curr.val) {
			return
		}
		curr = ref.n
	}
}

// ascend implements core.AscendFunc (epoch-pinned under recycling, like
// Lazy's).
func (l *Harris) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	lfAscend(l.head, l.tail, lo, yield)
}

// ascend implements core.AscendFunc (epoch-pinned under recycling).
func (l *Michael) ascend(lo core.Key, yield func(core.Key, core.Value) bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	lfAscend(l.head, l.tail, lo, yield)
}
