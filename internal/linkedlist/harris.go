package linkedlist

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/ssmem"
)

// lfRef is an immutable (successor, marked) record. A node's next field
// holds a *lfRef; CASing the field therefore validates successor and mark
// together, which is the Go/GC-safe rendering of Harris's tagged pointer.
// marked set on a node's own next record means the node is logically
// deleted.
type lfRef struct {
	n      *lfNode
	marked bool
}

type lfNode struct {
	key  core.Key
	val  core.Value
	next atomic.Pointer[lfRef]
}

func newLFNode(k core.Key, v core.Value, succ *lfNode) *lfNode {
	n := &lfNode{key: k, val: v}
	n.next.Store(&lfRef{n: succ})
	return n
}

// Harris is Harris's lock-free list (Table 1). Deletions mark with one CAS
// and physically unlink with a second; traversals remove the logically
// deleted nodes they pass over and restart if that cleanup fails.
//
// With optimized == true this is harris-opt, the paper's ASCY1–2
// re-engineering (§5): the search performs no stores, no helping, and never
// restarts — it simply ignores marked nodes — and the update parse does not
// restart when a cleanup CAS fails. Figure 4 measures the difference.
//
// With cfg.Recycle, physically detached nodes are recycled through SSMEM
// epochs (see recycle.go for the ownership discipline) instead of becoming
// GC garbage — ASCY4's memory-management half.
type Harris struct {
	core.OrderedVia
	head, tail *lfNode
	optimized  bool
	rec        *ssmem.Pool[lfNode]
}

// NewHarris returns an empty Harris list; optimized selects harris-opt.
func NewHarris(cfg core.Config, optimized bool) *Harris {
	tail := newLFNode(tailKey, 0, nil)
	head := newLFNode(headKey, 0, tail)
	s := &Harris{head: head, tail: tail, optimized: optimized, rec: newNodePool[lfNode](cfg)}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

// RecycleStats implements core.Recycler.
func (l *Harris) RecycleStats() ssmem.Stats { return ssmem.PoolStats(l.rec) }

// search is Harris's search: it returns adjacent (left, right) with
// left.key < k <= right.key and right unmarked, unlinking any marked span in
// between. leftRef is the record in left.next that points at right, needed
// by the callers' CASes.
func (l *Harris) search(a *ssmem.Allocator[lfNode], c *perf.Ctx, k core.Key) (left *lfNode, leftRef *lfRef, right *lfNode) {
searchAgain:
	for {
		t := l.head
		tRef := t.next.Load()
		// Phase 1: find left and right, remembering the last unmarked
		// node before the candidate.
		for {
			if !tRef.marked {
				left = t
				leftRef = tRef
			}
			t = tRef.n
			if t == l.tail {
				break
			}
			c.Inc(perf.EvTraverse)
			tRef = t.next.Load()
			if !tRef.marked && t.key >= k {
				break
			}
		}
		right = t
		// Phase 2: already adjacent?
		if leftRef.n == right {
			if right != l.tail && right.next.Load().marked {
				c.Inc(perf.EvRestart)
				continue searchAgain // right got deleted underneath us
			}
			return left, leftRef, right
		}
		// Phase 3: unlink the marked span [leftRef.n .. right).
		newRef := &lfRef{n: right}
		if left.next.CompareAndSwap(leftRef, newRef) {
			c.Inc(perf.EvCAS)
			c.Inc(perf.EvCleanup)
			freeLFSpan(a, leftRef.n, right)
			if right != l.tail && right.next.Load().marked {
				c.Inc(perf.EvRestart)
				continue searchAgain
			}
			return left, newRef, right
		}
		c.Inc(perf.EvCASFail)
		c.Inc(perf.EvRestart)
	}
}

// parseOpt is the ASCY2 parse: walk once, keeping the last unmarked node as
// left; never help, never restart. Callers' CASes provide the validation.
func (l *Harris) parseOpt(c *perf.Ctx, k core.Key) (left *lfNode, leftRef *lfRef, right *lfNode) {
	left = l.head
	leftRef = left.next.Load()
	t := leftRef.n
	for t != l.tail {
		tRef := t.next.Load()
		if !tRef.marked {
			if t.key >= k {
				break
			}
			left = t
			leftRef = tRef
		}
		c.Inc(perf.EvTraverse)
		t = tRef.n
	}
	return left, leftRef, t
}

// SearchCtx implements core.Instrumented.
func (l *Harris) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	return l.searchPinned(a, c, k)
}

// searchPinned is the search body; the caller holds the epoch bracket.
func (l *Harris) searchPinned(a *ssmem.Allocator[lfNode], c *perf.Ctx, k core.Key) (core.Value, bool) {
	if l.optimized {
		// ASCY1: traverse ignoring marks; no stores, no retries.
		curr := l.head.next.Load().n
		for curr != l.tail && curr.key < k {
			c.Inc(perf.EvTraverse)
			curr = curr.next.Load().n
		}
		if curr != l.tail && curr.key == k && !curr.next.Load().marked {
			return curr.val, true
		}
		return 0, false
	}
	_, _, right := l.search(a, c, k)
	if right != l.tail && right.key == k {
		return right.val, true
	}
	return 0, false
}

// SearchBatch implements core.Batcher: one epoch bracket for the whole
// batch (see Lazy.SearchBatch). The unoptimized variant's searches may
// still unlink marked spans mid-batch; they free into the same held
// allocator, exactly as they would per operation.
func (l *Harris) SearchBatch(keys []core.Key, vals []core.Value, found []bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for i, k := range keys {
		vals[i], found[i] = l.searchPinned(a, nil, k)
	}
}

func (l *Harris) parse(a *ssmem.Allocator[lfNode], c *perf.Ctx, k core.Key) (left *lfNode, leftRef *lfRef, right *lfNode) {
	if l.optimized {
		return l.parseOpt(c, k)
	}
	return l.search(a, c, k)
}

// InsertCtx implements core.Instrumented.
func (l *Harris) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	var n *lfNode // allocated once, reused across CAS retries
	for {
		c.ParseBegin()
		left, leftRef, right := l.parse(a, c, k)
		c.ParseEnd()
		if right != l.tail && right.key == k {
			// Lock-free lists fail read-only by nature (ASCY3). A node
			// allocated on an earlier iteration was never published.
			ssmem.FreeTo(a, n)
			return false
		}
		if n == nil {
			n = allocLF(a, k, v)
		}
		n.next.Store(&lfRef{n: right})
		if left.next.CompareAndSwap(leftRef, &lfRef{n: n}) {
			c.Inc(perf.EvCAS)
			// The CAS also swallowed any marked span the optimized
			// parse stepped over.
			freeLFSpan(a, leftRef.n, right)
			return true
		}
		c.Inc(perf.EvCASFail)
		c.Inc(perf.EvRestart)
	}
}

// RemoveCtx implements core.Instrumented.
func (l *Harris) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	for {
		c.ParseBegin()
		left, leftRef, right := l.parse(a, c, k)
		c.ParseEnd()
		if right == l.tail || right.key != k {
			return 0, false
		}
		rRef := right.next.Load()
		if rRef.marked {
			if l.optimized {
				return 0, false // already logically deleted
			}
			c.Inc(perf.EvRestart)
			continue
		}
		// Step 1: logical deletion — mark right's next record.
		if !right.next.CompareAndSwap(rRef, &lfRef{n: rRef.n, marked: true}) {
			c.Inc(perf.EvCASFail)
			c.Inc(perf.EvRestart)
			continue
		}
		c.Inc(perf.EvCAS)
		val := right.val // we own the logical delete; read before any free
		// Step 2: physical deletion — best effort; on failure the next
		// search (or update parse) cleans up.
		if left.next.CompareAndSwap(leftRef, &lfRef{n: rRef.n}) {
			c.Inc(perf.EvCAS)
			// Detached [leftRef.n .. rRef.n): right plus any marked
			// span the parse stepped over.
			freeLFSpan(a, leftRef.n, rRef.n)
		} else {
			c.Inc(perf.EvCASFail)
			if !l.optimized {
				l.search(a, c, k) // harris: eagerly clean up
			}
		}
		return val, true
	}
}

// Search looks up k.
func (l *Harris) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Harris) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Harris) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts unmarked elements. Quiescent use only.
func (l *Harris) Size() int {
	a := ssmem.Pin(l.rec)
	defer ssmem.Unpin(l.rec, a)
	n := 0
	for curr := l.head.next.Load().n; curr != l.tail; {
		ref := curr.next.Load()
		if !ref.marked {
			n++
		}
		curr = ref.n
	}
	return n
}
