package linkedlist

import (
	"repro/internal/core"
	"repro/internal/perf"
)

// seqNode is a plain, unsynchronized list node.
type seqNode struct {
	key  core.Key
	val  core.Value
	next *seqNode
}

// Seq is the sequential sorted linked list. Used on its own it is a correct
// single-threaded set; shared by several goroutines without synchronization
// it is the paper's "async" upper bound — an intentionally incorrect
// deployment whose throughput approximates the best any correct concurrent
// list could achieve (§1, §4).
//
// Because racing updates can malform the list (the paper observes e.g.
// lengthened paths), traversals are bounded by Config.AsyncStepLimit so a
// cycle cannot hang the harness; a bailed-out traversal reports "not found",
// which only ever makes the async bound look slightly worse.
type Seq struct {
	core.OrderedVia
	head  *seqNode
	limit int
}

// NewSeq returns an empty sequential list.
func NewSeq(cfg core.Config) *Seq {
	tail := &seqNode{key: tailKey}
	head := &seqNode{key: headKey, next: tail}
	s := &Seq{head: head, limit: cfg.AsyncStepLimit}
	s.OrderedVia = core.OrderedVia{Ascend: s.ascend}
	return s
}

func (l *Seq) parse(c *perf.Ctx, k core.Key) (pred, curr *seqNode) {
	pred = l.head
	curr = pred.next
	steps := 0
	for curr.key < k {
		c.Inc(perf.EvTraverse)
		pred = curr
		curr = curr.next
		if curr == nil {
			// Malformed under races: treat as end of list.
			return pred, &seqNode{key: tailKey}
		}
		if steps++; l.limit > 0 && steps > l.limit {
			return pred, &seqNode{key: tailKey}
		}
	}
	return pred, curr
}

// SearchCtx implements core.Instrumented.
func (l *Seq) SearchCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	_, curr := l.parse(c, k)
	if curr.key == k {
		return curr.val, true
	}
	return 0, false
}

// InsertCtx implements core.Instrumented.
func (l *Seq) InsertCtx(c *perf.Ctx, k core.Key, v core.Value) bool {
	c.ParseBegin()
	pred, curr := l.parse(c, k)
	c.ParseEnd()
	if curr.key == k {
		return false
	}
	pred.next = &seqNode{key: k, val: v, next: curr}
	c.Inc(perf.EvStore)
	return true
}

// RemoveCtx implements core.Instrumented.
func (l *Seq) RemoveCtx(c *perf.Ctx, k core.Key) (core.Value, bool) {
	c.ParseBegin()
	pred, curr := l.parse(c, k)
	c.ParseEnd()
	if curr.key != k {
		return 0, false
	}
	pred.next = curr.next
	c.Inc(perf.EvStore)
	return curr.val, true
}

// Search looks up k.
func (l *Seq) Search(k core.Key) (core.Value, bool) { return l.SearchCtx(nil, k) }

// Insert adds (k, v) if k is absent.
func (l *Seq) Insert(k core.Key, v core.Value) bool { return l.InsertCtx(nil, k, v) }

// Remove deletes k if present.
func (l *Seq) Remove(k core.Key) (core.Value, bool) { return l.RemoveCtx(nil, k) }

// Size counts elements. Quiescent use only.
func (l *Seq) Size() int {
	n := 0
	steps := 0
	for curr := l.head.next; curr != nil && curr.key != tailKey; curr = curr.next {
		n++
		if steps++; l.limit > 0 && steps > l.limit {
			break
		}
	}
	return n
}
