// Package linkedlist implements the seven linked-list algorithms of Table 1
// plus harris-opt, the paper's ASCY1–2 re-engineering of harris (§5).
//
// All lists are sorted sets over 64-bit keys with head/tail sentinels
// (key 0 and key MaxUint64 respectively; workload keys live strictly
// between). The lock-free lists encode Harris's marked pointer as an
// immutable (successor, marked) record swapped by CAS — the GC-safe Go
// equivalent of stealing a pointer tag bit in C: a CAS on the record pointer
// atomically validates both the successor and the mark, exactly like a CAS
// on a tagged word.
package linkedlist

import (
	"math"

	"repro/internal/core"
)

const (
	headKey = core.Key(0)
	tailKey = core.Key(math.MaxUint64)
)

func register(name string, class core.Class, desc string, safe, ascy bool, f func(cfg core.Config) core.Set) {
	core.Register(core.Algorithm{
		Name:      "ll-" + name,
		Structure: core.LinkedList,
		Class:     class,
		Desc:      desc,
		Safe:      safe,
		ASCY:      ascy,
		Ordered:   true, // every list is a sorted set with native Range
		New:       f,
	})
}

func init() {
	register("async", core.Seq,
		"sequential linked list run unsynchronized; the paper's incorrect asynchronized upper bound",
		false, false, func(cfg core.Config) core.Set { return NewSeq(cfg) })
	register("coupling", core.FullyLockBased,
		"hand-over-hand locking on every operation (Herlihy & Shavit)",
		true, false, func(cfg core.Config) core.Set { return NewCoupling(cfg) })
	register("pugh", core.LockBased,
		"optimistic parse, per-node locks with validation, pointer reversal on delete (Pugh '90)",
		true, true, func(cfg core.Config) core.Set { return NewPugh(cfg) })
	register("pugh-no", core.LockBased,
		"pugh with ASCY3 disabled: unsuccessful updates still lock",
		true, false, func(cfg core.Config) core.Set { cfg.ReadOnlyFail = false; return NewPugh(cfg) })
	register("lazy", core.LockBased,
		"lazy list: logical mark then physical unlink under locks; wait-free search (Heller et al.)",
		true, true, func(cfg core.Config) core.Set { return NewLazy(cfg) })
	register("lazy-no", core.LockBased,
		"lazy with ASCY3 disabled: unsuccessful updates still lock",
		true, false, func(cfg core.Config) core.Set { cfg.ReadOnlyFail = false; return NewLazy(cfg) })
	register("copy", core.LockBased,
		"copy-on-write sorted array under a global lock (CopyOnWriteArrayList-style)",
		true, false, func(cfg core.Config) core.Set { return NewCopy(cfg) })
	register("copy-no", core.LockBased,
		"copy with ASCY3 disabled: unsuccessful updates take the global lock",
		true, false, func(cfg core.Config) core.Set { cfg.ReadOnlyFail = false; return NewCopy(cfg) })
	register("harris", core.LockFree,
		"lock-free list with two-step (mark, unlink) deletes; searches clean up and may restart (Harris '01)",
		true, false, func(cfg core.Config) core.Set { return NewHarris(cfg, false) })
	register("harris-opt", core.LockFree,
		"harris re-engineered with ASCY1-2: searches/parses ignore marked nodes, never store, never restart",
		true, true, func(cfg core.Config) core.Set { return NewHarris(cfg, true) })
	register("michael", core.LockFree,
		"Michael's refactoring of harris: per-node unlink during traversal, restart from head on conflict",
		true, false, func(cfg core.Config) core.Set { return NewMichael(cfg) })
}
