package linkedlist_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/linkedlist"
	"repro/internal/settest"
)

func recycleCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Recycle = true
	cfg.RecycleThreshold = 8 // tiny batches so reuse happens fast in tests
	return cfg
}

// TestRecycleConformance runs the full conformance suite (including the
// concurrent portion; run with -race) over the recycling variants: the
// semantics must be indistinguishable from the GC-backed defaults.
func TestRecycleConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() core.Set
	}{
		{"harris", func() core.Set { return linkedlist.NewHarris(recycleCfg(), false) }},
		{"harris-opt", func() core.Set { return linkedlist.NewHarris(recycleCfg(), true) }},
		{"michael", func() core.Set { return linkedlist.NewMichael(recycleCfg()) }},
		{"lazy", func() core.Set { return linkedlist.NewLazy(recycleCfg()) }},
	} {
		t.Run(tc.name, func(t *testing.T) { settest.Run(t, true, tc.mk) })
	}
}

// TestRecycleReuseHappens churns one small list hard enough that the epoch
// allocator must serve allocations from recycled nodes, and checks the
// counters balance: everything freed was freed exactly once (frees never
// exceed allocations), and reuse actually occurred.
func TestRecycleReuseHappens(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() core.Set
	}{
		{"harris", func() core.Set { return linkedlist.NewHarris(recycleCfg(), false) }},
		{"harris-opt", func() core.Set { return linkedlist.NewHarris(recycleCfg(), true) }},
		{"michael", func() core.Set { return linkedlist.NewMichael(recycleCfg()) }},
		{"lazy", func() core.Set { return linkedlist.NewLazy(recycleCfg()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			const workers, rounds, span = 4, 400, 16
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := core.Key(1 + w*span)
					for r := 0; r < rounds; r++ {
						for k := base; k < base+span; k++ {
							s.Insert(k, core.Value(k))
						}
						for k := base; k < base+span; k++ {
							s.Search(k)
							s.Remove(k)
						}
					}
				}(w)
			}
			wg.Wait()
			if got := s.Size(); got != 0 {
				t.Fatalf("size after drain = %d, want 0", got)
			}
			st := s.(core.Recycler).RecycleStats()
			if st.Frees > st.Allocs {
				t.Fatalf("more frees than allocations (double free): %+v", st)
			}
			if st.Reused == 0 && !raceEnabled {
				t.Fatalf("no node reuse under churn: %+v", st)
			}
			if st.Garbage < 0 {
				t.Fatalf("negative garbage (double hand-out): %+v", st)
			}
		})
	}
}

// TestRecycleOffIsInert: without the knob the structures never register an
// allocator and report zero stats.
func TestRecycleOffIsInert(t *testing.T) {
	s := linkedlist.NewHarris(core.DefaultConfig(), true)
	s.Insert(1, 1)
	s.Remove(1)
	if st := s.RecycleStats(); st != (s.RecycleStats()) || st.Allocs != 0 {
		t.Fatalf("stats with recycling off = %+v, want zero", st)
	}
}
