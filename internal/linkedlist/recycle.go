// SSMEM node recycling for the dynamic-node lists (ASCY4 carried to Go):
// behind core.Config.Recycle, removed nodes are routed through per-goroutine
// epoch allocators (ssmem.Pool) and reused once no concurrent operation can
// still hold them, instead of becoming Go GC garbage. Every operation —
// including read-only searches and scans — brackets itself with
// ssmem.Pin/Unpin so the epoch protocol knows which traversals are in
// flight.
//
// Ownership discipline for the lock-free lists (who may Free a node):
// exactly the thread whose CAS physically detaches it. A successful CAS on
// an unmarked next-record detaches the chain segment between the record's
// old successor and the CAS's new target; every node in that segment is
// logically deleted with a frozen (marked, immutable) next record, so the
// winner can walk the detached segment and free each node exactly once.
// Competing detachments of overlapping segments are impossible: they would
// have to CAS the same predecessor record (only one wins) or a marked
// record (never done). The lazy list is simpler: the remover holds both
// node locks and is the unique physical unlinker.
//
// ABA safety: CASes compare *lfRef record pointers, which are always fresh
// heap allocations — only the nodes are recycled — so a recycled node can
// never make a stale CAS succeed.
package linkedlist

import (
	"repro/internal/core"
	"repro/internal/ssmem"
)

// newNodePool builds the shared allocator pool for a list when cfg asks for
// recycling; nil means recycling is off and the nil-safe ssmem helpers
// (Pin/Unpin/FreeTo/PoolStats) all no-op.
func newNodePool[T any](cfg core.Config) *ssmem.Pool[T] {
	if !cfg.Recycle {
		return nil
	}
	return ssmem.NewPool[T](cfg.RecycleThreshold)
}

// allocLF returns an lfNode with key and val set; the caller installs the
// next record. Falls back to the Go heap when recycling is off.
func allocLF(a *ssmem.Allocator[lfNode], k core.Key, v core.Value) *lfNode {
	if a == nil {
		return &lfNode{key: k, val: v}
	}
	n := a.Alloc()
	n.key, n.val = k, v
	return n
}

// freeLFSpan frees every node of the physically detached chain segment
// [from, to). The segment's nodes are all marked, and a marked node's next
// record is immutable, so the walk is safe and terminates at to.
func freeLFSpan(a *ssmem.Allocator[lfNode], from, to *lfNode) {
	if a == nil {
		return
	}
	for n := from; n != to; {
		next := n.next.Load().n
		a.Free(n)
		n = next
	}
}
